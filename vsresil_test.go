package vsresil_test

import (
	"context"
	"path/filepath"
	"testing"

	"vsresil"
)

// TestFacadeStudy exercises the public API end to end: input
// generation, a study with a small campaign, quality analysis and
// image output.
func TestFacadeStudy(t *testing.T) {
	preset := vsresil.TestScale()
	preset.Frames = 8
	seq := vsresil.Input2(preset)
	res, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
		Input:             seq,
		Algorithm:         vsresil.AlgVS,
		Trials:            60,
		Class:             vsresil.GPR,
		AnalyzeSDCQuality: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatalf("RunStudy: %v", err)
	}
	if res.GoldenImage == nil || res.GoldenImage.W == 0 {
		t.Fatal("no golden panorama")
	}
	rates := res.Rates()
	var sum float64
	for _, r := range rates {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("outcome rates sum to %v", sum)
	}
	path := filepath.Join(t.TempDir(), "pano.pgm")
	if err := vsresil.SavePGM(path, res.GoldenImage); err != nil {
		t.Fatalf("SavePGM: %v", err)
	}
}

// TestFacadeAlgorithms checks the variant enumeration and naming.
func TestFacadeAlgorithms(t *testing.T) {
	algs := vsresil.Algorithms()
	if len(algs) != 4 {
		t.Fatalf("Algorithms() = %d", len(algs))
	}
	want := []string{"VS", "VS_RFD", "VS_KDS", "VS_SM"}
	for i, a := range algs {
		if a.String() != want[i] {
			t.Errorf("algorithm %d = %s, want %s", i, a, want[i])
		}
	}
}

// TestFacadePresets checks the re-exported presets and inputs.
func TestFacadePresets(t *testing.T) {
	if vsresil.PaperScale().Frames != 1000 {
		t.Error("paper scale frames")
	}
	p := vsresil.TestScale()
	p.Frames = 4
	if got := vsresil.Input1(p).Len(); got != 4 {
		t.Errorf("Input1 length %d", got)
	}
	if got := vsresil.Input2(p).Len(); got != 4 {
		t.Errorf("Input2 length %d", got)
	}
	_ = vsresil.BenchScale()
}

// TestFacadeOutcomeConstants pins the re-exported outcome order to the
// paper's taxonomy.
func TestFacadeOutcomeConstants(t *testing.T) {
	if vsresil.OutcomeMask.String() != "Mask" ||
		vsresil.OutcomeCrash.String() != "Crash" ||
		vsresil.OutcomeSDC.String() != "SDC" ||
		vsresil.OutcomeHang.String() != "Hang" {
		t.Error("outcome naming mismatch")
	}
	if vsresil.GPR.String() != "GPR" || vsresil.FPR.String() != "FPR" {
		t.Error("register class naming mismatch")
	}
}
