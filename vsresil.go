// Package vsresil reproduces "Impact of Software Approximations on the
// Resiliency of a Video Summarization System" (DSN 2018): an
// end-to-end UAV video summarization application, its three software
// approximations, an AFI-style architectural fault-injection
// framework, an SDC quality metric, and a performance/energy model —
// all in pure Go with no external dependencies.
//
// The root package is a thin facade over the implementation packages;
// it exposes the study API (one call runs a variant, injects faults
// and analyzes SDC quality) plus the building blocks most downstream
// users need. See the examples/ directory for runnable programs and
// cmd/experiments for the per-figure reproduction harness.
//
//	seq := vsresil.Input1(vsresil.BenchScale())
//	res, err := vsresil.RunStudy(ctx, vsresil.StudyConfig{
//	    Input:     seq,
//	    Algorithm: vsresil.AlgRFD,
//	    Trials:    1000,
//	    Class:     vsresil.GPR,
//	})
package vsresil

import (
	"context"

	"vsresil/internal/core"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// Re-exported study API (the paper's primary contribution).
type (
	// StudyConfig configures one (input, algorithm) resiliency study.
	StudyConfig = core.StudyConfig
	// StudyResult aggregates a study's outputs.
	StudyResult = core.StudyResult
)

// RunStudy executes a resiliency study: golden run, energy metrics,
// fault-injection campaign and SDC quality analysis.
func RunStudy(ctx context.Context, cfg StudyConfig) (*StudyResult, error) {
	return core.Run(ctx, cfg)
}

// Algorithm variants of the VS application (§IV).
type Algorithm = vs.Algorithm

// The paper's approximation variants, in its order.
const (
	AlgVS  = vs.AlgVS
	AlgRFD = vs.AlgRFD
	AlgKDS = vs.AlgKDS
	AlgSM  = vs.AlgSM
)

// Algorithms returns every VS variant in paper order.
func Algorithms() []Algorithm { return vs.Algorithms() }

// Register classes for fault injection (§V-B).
type Class = fault.Class

// Register classes.
const (
	GPR = fault.GPR
	FPR = fault.FPR
)

// Fault-injection outcomes (§V-A).
type Outcome = fault.Outcome

// Outcomes in the paper's order.
const (
	OutcomeMask  = fault.OutcomeMask
	OutcomeCrash = fault.OutcomeCrash
	OutcomeSDC   = fault.OutcomeSDC
	OutcomeHang  = fault.OutcomeHang
)

// Sequence is a synthetic input video with ground truth.
type Sequence = virat.Sequence

// Preset scales a generated input.
type Preset = virat.Preset

// Input1 generates the fast-panning, scene-cut-heavy input (the
// analogue of VIRAT clip 09152008flight2tape1_2).
func Input1(p Preset) *Sequence { return virat.Input1(p) }

// Input2 generates the slow, smooth input (the analogue of VIRAT clip
// 09152008flight2tape2_4).
func Input2(p Preset) *Sequence { return virat.Input2(p) }

// PaperScale approximates the paper's input sizes (1000 frames).
func PaperScale() Preset { return virat.PaperScale() }

// BenchScale is a laptop-friendly scale that preserves the paper's
// contrasts.
func BenchScale() Preset { return virat.BenchScale() }

// TestScale keeps unit tests fast.
func TestScale() Preset { return virat.TestScale() }

// Gray is the 8-bit image type produced by the pipeline.
type Gray = imgproc.Gray

// SavePGM and SavePNG write panorama images to disk.
var (
	SavePGM = imgproc.SavePGM
	SavePNG = imgproc.SavePNG
)

// StitchResult is the output of one application run: mini-panoramas
// plus per-frame registration reports.
type StitchResult = stitch.Result
