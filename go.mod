module vsresil

go 1.22
