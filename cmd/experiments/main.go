// Command experiments regenerates the data behind every figure of the
// paper's evaluation section.
//
// Usage:
//
//	experiments -fig all -scale small
//	experiments -fig 11b -trials 1000
//	experiments -fig 6 -images ./out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"vsresil/internal/experiments"
	"vsresil/internal/virat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 5, 6, 8, 9, 10, 11a, 11b, 12, 13 or all")
		scaleName = flag.String("scale", "small", "experiment scale: small, bench or paper")
		frames    = flag.Int("frames", 0, "override frames per input")
		trials    = flag.Int("trials", 0, "override injections per campaign")
		qtrials   = flag.Int("quality-trials", 0, "override injections for the SDC-quality study")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "campaign worker bound (0 = GOMAXPROCS)")
		images    = flag.String("images", "", "directory for the Fig 6/13 output images")
	)
	flag.Parse()

	o, err := optionsFor(*scaleName)
	if err != nil {
		return err
	}
	if *frames > 0 {
		o.Preset.Frames = *frames
	}
	if *trials > 0 {
		o.Trials = *trials
	}
	if *qtrials > 0 {
		o.QualityTrials = *qtrials
	}
	o.Seed = *seed
	o.Workers = *workers
	o.ImageDir = *images

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := strings.ToLower(*fig)
	ran := 0
	for _, e := range allExperiments() {
		if want != "all" && want != e.name {
			continue
		}
		// Ablations are opt-in: they study this reproduction's modeling
		// knobs, not the paper's figures.
		if want == "all" && strings.HasPrefix(e.name, "ablation") {
			continue
		}
		ran++
		start := time.Now()
		if err := e.run(ctx, o, os.Stdout); err != nil {
			return fmt.Errorf("fig %s: %w", e.name, err)
		}
		fmt.Printf("[fig %s done in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}

func optionsFor(scale string) (experiments.Options, error) {
	switch strings.ToLower(scale) {
	case "small":
		return experiments.DefaultOptions(), nil
	case "bench":
		o := experiments.DefaultOptions()
		o.Preset = virat.BenchScale()
		o.Trials = 1000
		o.QualityTrials = 2000
		return o, nil
	case "paper":
		return experiments.PaperOptions(), nil
	default:
		return experiments.Options{}, fmt.Errorf("unknown scale %q (want small, bench or paper)", scale)
	}
}

// experiment binds a figure name to its runner.
type experiment struct {
	name string
	run  func(ctx context.Context, o experiments.Options, out *os.File) error
}

func allExperiments() []experiment {
	return []experiment{
		{"5", func(_ context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig5(o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"6", func(_ context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig6(o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"8", func(_ context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"9", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig9(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"10", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig10(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"11a", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig11a(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"11b", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig11b(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"12", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig12(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"13", func(_ context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.Fig13(o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"ablation-window", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.AblationWindow(ctx, o, nil)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
		{"ablation-blend", func(ctx context.Context, o experiments.Options, out *os.File) error {
			r, err := experiments.AblationBlend(ctx, o)
			if err != nil {
				return err
			}
			r.Write(out, o)
			return nil
		}},
	}
}
