// Command experiments regenerates the data behind every figure of the
// paper's evaluation section.
//
// Usage:
//
//	experiments -fig all -scale small
//	experiments -fig 11b -trials 1000
//	experiments -fig 6 -images ./out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"vsresil/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 5, 6, 8, 9, 10, 11a, 11b, 12, 13, all, or the opt-in matrix/adaptive/ablation-* extras")
		scaleName = flag.String("scale", "small", "experiment scale: small, bench or paper")
		frames    = flag.Int("frames", 0, "override frames per input")
		trials    = flag.Int("trials", 0, "override injections per campaign")
		qtrials   = flag.Int("quality-trials", 0, "override injections for the SDC-quality study")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		workers   = flag.Int("workers", 0, "campaign worker bound (0 = GOMAXPROCS)")
		images    = flag.String("images", "", "directory for the Fig 6/13 output images")
		precision = flag.Float64("precision", 0, "adaptive experiment target half-width (0 = 0.05)")
		conf      = flag.Float64("confidence", 0, "adaptive experiment interval level (0 = 0.95)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	o, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	if *frames > 0 {
		o.Preset.Frames = *frames
	}
	if *trials > 0 {
		o.Trials = *trials
	}
	if *qtrials > 0 {
		o.QualityTrials = *qtrials
	}
	o.Seed = *seed
	o.Workers = *workers
	o.ImageDir = *images
	o.Precision = *precision
	o.Confidence = *conf

	// SIGINT/SIGTERM cancel the experiment context so long campaign
	// runs stop at a trial boundary instead of dying mid-trial.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	want := strings.ToLower(*fig)
	ran := 0
	for _, e := range experiments.Registry() {
		if want != "all" && !strings.EqualFold(want, e.Name) {
			continue
		}
		// Ablations are opt-in: they study this reproduction's modeling
		// knobs, not the paper's figures.
		if want == "all" && e.Ablation {
			continue
		}
		ran++
		start := time.Now()
		if err := e.Run(ctx, o, os.Stdout); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Printf("[fig %s interrupted after %s]\n", e.Name, time.Since(start).Round(time.Millisecond))
				return nil
			}
			return fmt.Errorf("fig %s: %w", e.Name, err)
		}
		fmt.Printf("[fig %s done in %s]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
