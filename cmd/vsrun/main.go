// Command vsrun executes one VS variant on a synthetic input and
// writes the resulting panorama(s) plus a run summary.
//
// Usage:
//
//	vsrun -input 1 -alg VS_RFD -scale bench -out pano.pgm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vsresil/internal/energy"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vsrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.Int("input", 1, "input video: 1 (fast pan, scene cuts) or 2 (slow sweep)")
		scenario = flag.String("scenario", "", "capture scenario: identity (default) or a +-chain of noise, lowlight, fog, blocking, jitter")
		sumName  = flag.String("summarizer", "vs", "summarizer backend: vs (panorama stitching) or storyboard (keyframe filmstrip)")
		algName  = flag.String("alg", "VS", "vs-backend algorithm: VS, VS_RFD, VS_KDS or VS_SM")
		scale    = flag.String("scale", "bench", "input scale: test, bench or paper")
		frames   = flag.Int("frames", 0, "override the preset's frame count")
		out      = flag.String("out", "panorama.pgm", "output path for the primary panorama (.pgm or .png)")
		allOut   = flag.String("all-out", "", "optional directory to write every mini-panorama into")
		seed     = flag.Uint64("seed", 0x5EED, "pipeline seed")
		quiet    = flag.Bool("q", false, "suppress the per-frame report")
	)
	flag.Parse()

	alg, err := vs.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	preset, err := virat.ParsePreset(*scale, *frames)
	if err != nil {
		return err
	}
	sc, err := virat.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	seq, err := virat.GenerateInput(*input, preset, sc)
	if err != nil {
		return err
	}
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = *seed
	sum, err := summarize.Parse(*sumName, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("rendering %s: %d frames %dx%d\n", seq.Name, seq.Len(), seq.FrameW, seq.FrameH)
	vframes := seq.Frames()

	// A Meter (rather than a fault machine) gathers the energy-model
	// inputs: same op accounting, no injection machinery, plus per-stage
	// wall time.
	m := probe.NewMeter()
	res, err := summarize.Run(sum, vframes, m)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}

	if !*quiet {
		printReport(res)
		printStages(m)
	}
	met := energy.DefaultModel().Measure(m)
	fmt.Printf("model: %d instructions, IPC %.3f, time %.3fs, energy %.1fJ\n",
		met.Instructions, met.IPC, met.TimeSec, met.EnergyJ)

	prim := res.Primary()
	fmt.Printf("primary panorama: %dx%d from %d frames (%d mini-panoramas, %d discarded)\n",
		prim.Image.W, prim.Image.H, prim.Frames, len(res.Panoramas), res.Discarded)
	if err := saveImage(*out, prim.Image); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *allOut != "" {
		if err := os.MkdirAll(*allOut, 0o755); err != nil {
			return err
		}
		for i, p := range res.Panoramas {
			path := fmt.Sprintf("%s/mini_%02d.pgm", *allOut, i)
			if err := imgproc.SavePGM(path, p.Image); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d frames)\n", path, p.Frames)
		}
	}
	return nil
}

func printReport(res *stitch.Result) {
	var hom, aff, disc, segs int
	for _, r := range res.Reports {
		switch r.Status {
		case stitch.StatusHomography:
			hom++
		case stitch.StatusAffine:
			aff++
		case stitch.StatusDiscarded:
			disc++
		case stitch.StatusNewSegment:
			segs++
		}
	}
	fmt.Printf("registration: %d homography, %d affine fallback, %d discarded, %d segment starts\n",
		hom, aff, disc, segs)
}

// printStages reports the Meter's per-stage profile for stages with
// any activity.
func printStages(m *probe.Meter) {
	fmt.Println("stage profile:")
	for _, rs := range m.Snapshot() {
		var ops uint64
		for _, n := range rs.Ops {
			ops += n
		}
		if ops == 0 && rs.IntTaps == 0 && rs.FPTaps == 0 {
			continue
		}
		fmt.Printf("  %-22s %8.3fs  %12d ops  %10d int taps  %10d fp taps\n",
			rs.Region, rs.Wall.Seconds(), ops, rs.IntTaps, rs.FPTaps)
	}
}

func saveImage(path string, img *imgproc.Gray) error {
	if strings.HasSuffix(strings.ToLower(path), ".png") {
		return imgproc.SavePNG(path, img)
	}
	return imgproc.SavePGM(path, img)
}
