package main

import (
	"strings"
	"testing"
)

func TestCampaignModeValidate(t *testing.T) {
	cases := []struct {
		name string
		mode campaignMode
		want string // "" = valid; otherwise a substring of the error
	}{
		{"uniform default", campaignMode{Summarizer: "vs"}, ""},
		{"stratified in process", campaignMode{Stratified: true, Summarizer: "vs"}, ""},
		{"stratified on fabric", campaignMode{Stratified: true, Summarizer: "vs", Fabric: "http://coord"}, "drop -fabric"},
		{"stratified non-vs summarizer", campaignMode{Stratified: true, Summarizer: "storyboard"}, "only the vs summarizer"},
		{"both planners", campaignMode{Stratified: true, Adaptive: true, Summarizer: "vs"}, "pick one"},
		{"adaptive in process", campaignMode{Adaptive: true, Summarizer: "vs", Precision: 0.05, Confidence: 0.95}, ""},
		{"adaptive defaults", campaignMode{Adaptive: true, Summarizer: "vs"}, ""},
		{"adaptive on fabric", campaignMode{Adaptive: true, Summarizer: "vs", Fabric: "http://coord", Precision: 0.02}, ""},
		{"adaptive non-vs summarizer", campaignMode{Adaptive: true, Summarizer: "storyboard"}, ""},
		{"explicit trials without adaptive", campaignMode{Summarizer: "vs", TrialsSet: true}, ""},
		{"explicit trials with adaptive", campaignMode{Adaptive: true, Summarizer: "vs", TrialsSet: true}, "drop -trials"},
		{"precision without adaptive", campaignMode{Summarizer: "vs", Precision: 0.1}, "add -adaptive"},
		{"confidence without adaptive", campaignMode{Summarizer: "vs", Confidence: 0.9}, "add -adaptive"},
		{"precision too wide", campaignMode{Adaptive: true, Summarizer: "vs", Precision: 0.5}, "outside (0, 0.5)"},
		{"precision negative", campaignMode{Adaptive: true, Summarizer: "vs", Precision: -0.01}, "outside (0, 0.5)"},
		{"confidence at one", campaignMode{Adaptive: true, Summarizer: "vs", Confidence: 1}, "outside (0, 1)"},
		{"confidence negative", campaignMode{Adaptive: true, Summarizer: "vs", Confidence: -0.5}, "outside (0, 1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mode.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestIsVSSummarizer(t *testing.T) {
	for name, want := range map[string]bool{
		"vs":         true,
		"":           true, // "" defaults to the paper's VS pipeline
		"storyboard": false,
		"nonsense":   false,
	} {
		if got := isVSSummarizer(name); got != want {
			t.Errorf("isVSSummarizer(%q) = %v, want %v", name, got, want)
		}
	}
}
