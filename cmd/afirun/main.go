// Command afirun runs an AFI-style fault-injection campaign against
// one (scenario, summarizer, algorithm) workload cell and reports the
// Mask/Crash/SDC/Hang breakdown, coverage statistics and (optionally)
// the SDC quality distribution.
//
// Usage:
//
//	afirun -input 1 -alg VS -class gpr -trials 1000
//	afirun -scenario lowlight+fog -summarizer storyboard -trials 1000
//
// With -fabric the campaign runs on a vsd cluster instead of in
// process: the spec is submitted to a coordinator (vsd -coordinator),
// split into -shards leased ranges executed by joined workers, and the
// merged result — bit-identical to a local run — is printed the same
// way:
//
//	afirun -fabric http://host:8080 -trials 1000 -shards 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fabric"
	"vsresil/internal/fault"
	"vsresil/internal/quality"
	"vsresil/internal/stitch"
	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "afirun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input      = flag.Int("input", 1, "input video: 1 or 2")
		scenario   = flag.String("scenario", "", "capture scenario: identity (default) or a +-chain of noise, lowlight, fog, blocking, jitter")
		sumName    = flag.String("summarizer", "vs", "summarizer backend: vs (panorama stitching) or storyboard (keyframe filmstrip)")
		algName    = flag.String("alg", "VS", "vs-backend algorithm: VS, VS_RFD, VS_KDS or VS_SM")
		className  = flag.String("class", "gpr", "register class: gpr or fpr")
		scale      = flag.String("scale", "test", "input scale: test, bench or paper")
		frames     = flag.Int("frames", 24, "override the preset's frame count (0 = preset default)")
		trials     = flag.Int("trials", 1000, "number of error injections")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "parallel trial workers per shard (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "split the campaign into this many concurrently executed shards (results merge bit-identically)")
		sdcEDs     = flag.Bool("sdc-quality", false, "classify every SDC's Egregiousness Degree")
		regionStr  = flag.String("region", "", "restrict injections to one function (e.g. remapBilinear)")
		stratified = flag.Bool("stratified", false, "use the Relyzer-style equivalence-class campaign (per-stratum sampling, population-weighted estimate)")
		adaptive   = flag.Bool("adaptive", false, "use the confidence-driven planner: allocate rounds to the widest-interval strata and stop at the precision target (replaces -trials)")
		precision  = flag.Float64("precision", 0, "adaptive target half-width for every per-stratum outcome rate (0 = 0.05)")
		confidence = flag.Float64("confidence", 0, "adaptive confidence level for the intervals (0 = 0.95)")
		fabricAddr = flag.String("fabric", "", "run on a vsd cluster: coordinator base URL, e.g. http://host:8080 (-shards becomes the cluster shard count)")
	)
	flag.Parse()
	trialsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trials" {
			trialsSet = true
		}
	})

	mode := campaignMode{
		Stratified: *stratified,
		Adaptive:   *adaptive,
		Fabric:     *fabricAddr,
		Summarizer: *sumName,
		Precision:  *precision,
		Confidence: *confidence,
		TrialsSet:  trialsSet,
	}
	if err := mode.validate(); err != nil {
		return err
	}

	if *fabricAddr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runFabric(ctx, *fabricAddr, fabric.CampaignSpec{
			Algorithm:  *algName,
			Scenario:   *scenario,
			Summarizer: *sumName,
			Class:      *className,
			Region:     *regionStr,
			Input:      *input,
			Scale:      *scale,
			Frames:     *frames,
			Trials:     *trials,
			Seed:       *seed,
			Workers:    *workers,
			KeepSDC:    *sdcEDs,
			Adaptive:   *adaptive,
			Precision:  *precision,
			Confidence: *confidence,
		}, *shards)
	}

	alg, err := vs.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	class, err := fault.ParseClass(*className)
	if err != nil {
		return err
	}
	region, err := fault.ParseRegion(*regionStr)
	if err != nil {
		return err
	}
	preset, err := virat.ParsePreset(*scale, *frames)
	if err != nil {
		return err
	}
	sc, err := virat.ParseScenario(*scenario)
	if err != nil {
		return err
	}
	seq, err := virat.GenerateInput(*input, preset, sc)
	if err != nil {
		return err
	}
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = *seed
	sum, err := summarize.Parse(*sumName, cfg)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the campaign context: in-flight trials
	// finish, the partial outcome table is printed, and the process
	// exits cleanly instead of being killed mid-trial.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *stratified {
		return runStratified(ctx, campaign.Summarize(sum, seq), class, *trials, *seed, *workers, alg, seq)
	}
	if *adaptive {
		return runAdaptive(ctx, campaign.Summarize(sum, seq), class, region,
			*seed, *workers, *shards, *precision, *confidence, alg, seq)
	}

	fmt.Printf("campaign: %s [%s] on %s, %v faults, %d trials, region=%s, shards=%d\n",
		sum.Name(), alg, seq.Name, class, *trials, region, *shards)
	var runner campaign.Runner
	crun, err := runner.RunSharded(ctx, campaign.Spec{
		Workload: campaign.Summarize(sum, seq),
		Class:    class,
		Region:   region,
		Trials:   *trials,
		Seed:     *seed,
		Workers:  *workers,
		SDC:      campaign.SDCPolicy{Keep: *sdcEDs},
	}, *shards)
	interrupted := err != nil && errors.Is(err, context.Canceled) && crun != nil
	if err != nil && !interrupted {
		return err
	}
	res := crun.Fault
	if interrupted {
		fmt.Printf("interrupted: %d/%d trials completed, reporting partial results\n", res.Completed, *trials)
	}

	fmt.Printf("golden run: %d taps in site space, %d total steps\n", res.TotalTaps, res.GoldenSteps)
	fmt.Printf("%-8s %8s %8s\n", "outcome", "count", "rate")
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		fmt.Printf("%-8s %8d %8.3f\n", o, res.Counts[o], res.Rate(o))
	}
	if crashes := res.Counts[fault.OutcomeCrash]; crashes > 0 {
		fmt.Printf("crash split: %.0f%% segv-like, %.0f%% abort-like (paper: 92%%/8%%)\n",
			100*float64(res.CrashCounts[fault.CrashSegv])/float64(crashes),
			100*float64(res.CrashCounts[fault.CrashAbort])/float64(crashes))
	}
	fmt.Printf("register coverage chi2 vs uniform: %.1f (expect ~%d)\n",
		res.RegHist.ChiSquareUniform(), fault.NumRegisters-1)
	fmt.Printf("rate-curve knee: ~%d injections\n", res.Curve.Knee(0.02))
	if s := res.Sched; s.Batched > 0 {
		fmt.Printf("bucket scheduler: %d trials in %d checkpoint buckets (%d restores saved, %d early-masked, %d converged)\n",
			s.Batched, s.Buckets, s.RestoresSaved, s.EarlyMasks, s.Converged)
	}
	fmt.Printf("campaign wall time: %s (%.1f trials/s)\n",
		crun.Elapsed.Round(time.Millisecond), float64(crun.Executed)/crun.Elapsed.Seconds())

	if *sdcEDs {
		golden, gox, goy, err := stitch.DecodePrimary(res.GoldenOutput)
		if err != nil {
			return fmt.Errorf("decode golden: %w", err)
		}
		var eds []quality.ED
		qcfg := quality.DefaultConfig()
		for _, enc := range res.SDCOutputs() {
			faulty, fox, foy, err := stitch.DecodePrimary(enc)
			if err != nil {
				faulty = nil
			}
			eds = append(eds, quality.ClassifyPlaced(golden, faulty, gox, goy, fox, foy, qcfg))
		}
		curve := quality.NewCurve(eds, 40)
		fmt.Printf("SDC quality: %d SDCs, %d egregious (norm > 100%%)\n", curve.Total, curve.Egregious)
		for _, k := range []int{0, 2, 5, 10, 20, 40} {
			fmt.Printf("  ED <= %-3d: %5.1f%% of SDCs\n", k, 100*curve.FractionAtOrBelow(k))
		}
	}
	return nil
}

// runFabric submits the campaign to a cluster coordinator, polls its
// progress, and prints the merged result. The cluster merge is proven
// bit-identical to a local -shards run, so the numbers printed here
// are the numbers an in-process campaign with the same spec produces.
func runFabric(ctx context.Context, base string, spec fabric.CampaignSpec, shards int) error {
	cl := &fabric.Client{Base: base}
	id, err := cl.Submit(ctx, spec, shards)
	if err != nil {
		return err
	}
	if spec.Adaptive {
		fmt.Printf("fabric adaptive campaign %s: %s on input %d (%s), %s faults, %d round-shards via %s\n",
			id, spec.Algorithm, max(spec.Input, 1), spec.Scale, spec.Class, shards, base)
	} else {
		fmt.Printf("fabric campaign %s: %s on input %d (%s), %s faults, %d trials, %d shards via %s\n",
			id, spec.Algorithm, max(spec.Input, 1), spec.Scale, spec.Class, spec.Trials, shards, base)
	}

	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	lastDone := -1
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.TrialsDone != lastDone {
			fmt.Printf("  shards %d/%d, trials %d/%d\n",
				st.ShardsDone, st.ShardsTotal, st.TrialsDone, st.TrialsTotal)
			lastDone = st.TrialsDone
		}
		switch st.State {
		case "done":
			if spec.Adaptive {
				return printFabricAdaptiveResult(ctx, cl, id)
			}
			return printFabricResult(ctx, cl, id)
		case "failed":
			return fmt.Errorf("cluster campaign failed: %s", st.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func printFabricResult(ctx context.Context, cl *fabric.Client, id string) error {
	res, err := cl.Result(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("golden run: %d taps in site space, %d total steps\n", res.TotalTaps, res.GoldenSteps)
	fmt.Printf("%-8s %8s %8s\n", "outcome", "count", "rate")
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		fmt.Printf("%-8s %8d %8.3f\n", o, res.Counts[o.String()], res.Rates[o.String()])
	}
	if crashes := res.Counts[fault.OutcomeCrash.String()]; crashes > 0 && len(res.CrashSplit) > 0 {
		fmt.Printf("crash split: %.0f%% segv-like, %.0f%% abort-like (paper: 92%%/8%%)\n",
			100*float64(res.CrashSplit[fault.CrashSegv.String()])/float64(crashes),
			100*float64(res.CrashSplit[fault.CrashAbort.String()])/float64(crashes))
	}
	fmt.Printf("register coverage chi2 vs uniform: %.1f (expect ~%d)\n",
		res.RegChi2, fault.NumRegisters-1)
	fmt.Printf("rate-curve knee: ~%d injections\n", res.CurveKnee)
	if res.SDCKept > 0 {
		fmt.Printf("SDC outputs retained on coordinator: %d\n", res.SDCKept)
	}
	fmt.Printf("cluster wall time: %s\n", time.Duration(res.ElapsedSec*float64(time.Second)).Round(time.Millisecond))
	return nil
}

// runStratified executes the Relyzer-style equivalence-class campaign
// through the planner seam and prints the per-stratum table plus the
// weighted estimate.
func runStratified(ctx context.Context, wl campaign.Workload,
	class fault.Class, trials int, seed uint64, workers int,
	alg vs.Algorithm, seq *virat.Sequence) error {
	perStratum := trials / 24 // comparable total effort to -trials
	if perStratum < 5 {
		perStratum = 5
	}
	fmt.Printf("stratified campaign: %s on %s, %v faults, %d trials/stratum\n",
		alg, seq.Name, class, perStratum)
	start := time.Now()
	var runner campaign.Runner
	res, err := runner.RunStratified(ctx, wl, fault.StratifiedConfig{
		TrialsPerStratum: perStratum,
		Class:            class,
		Seed:             seed,
		Workers:          workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-10s %10s %8s %8s %8s %8s\n",
		"region", "bits", "population", "Mask", "Crash", "SDC", "Hang")
	for i := range res.Strata {
		s := &res.Strata[i]
		r := s.Rates()
		fmt.Printf("%-24s %-10s %10d %8.3f %8.3f %8.3f %8.3f\n",
			s.Region, s.Bits, s.Population,
			r[fault.OutcomeMask], r[fault.OutcomeCrash], r[fault.OutcomeSDC], r[fault.OutcomeHang])
	}
	w := res.WeightedRates()
	fmt.Printf("weighted estimate (%d trials): Mask %.3f Crash %.3f SDC %.3f Hang %.3f\n",
		res.Trials,
		w[fault.OutcomeMask], w[fault.OutcomeCrash], w[fault.OutcomeSDC], w[fault.OutcomeHang])
	fmt.Printf("campaign wall time: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runAdaptive executes the confidence-driven campaign: rounds flow to
// the strata with the widest outcome-rate intervals until every rate
// is within the precision target, and the savings against the
// fixed-budget design are reported alongside the weighted estimate.
func runAdaptive(ctx context.Context, w campaign.Workload,
	class fault.Class, region fault.Region, seed uint64,
	workers, shards int, precision, confidence float64,
	alg vs.Algorithm, seq *virat.Sequence) error {
	spec := campaign.Spec{
		Workload: w,
		Class:    class,
		Region:   region,
		Seed:     seed,
		Workers:  workers,
		Adaptive: &campaign.AdaptiveSpec{Precision: precision, Confidence: confidence},
	}
	fmt.Printf("adaptive campaign: %s on %s, %v faults, region=%s\n",
		alg, seq.Name, class, region)
	var runner campaign.Runner
	res, err := runner.RunAdaptive(ctx, spec, shards)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-10s %10s %8s %11s %5s\n",
		"region", "bits", "population", "trials", "half-width", "done")
	for _, s := range res.Strata {
		fmt.Printf("%-24s %-10s %10d %8d %11.4f %5v\n",
			s.Region, s.Bits, s.Population, s.Trials, s.HalfWidth, s.Done)
	}
	wr := res.Stratified.WeightedRates()
	fmt.Printf("weighted estimate (%d trials, %d rounds): Mask %.3f Crash %.3f SDC %.3f Hang %.3f\n",
		res.Trials, res.Rounds,
		wr[fault.OutcomeMask], wr[fault.OutcomeCrash], wr[fault.OutcomeSDC], wr[fault.OutcomeHang])
	if res.Converged {
		fmt.Printf("converged in %d trials; fixed-budget equivalent %d (%.1fx savings)\n",
			res.Trials, res.FixedBudget, float64(res.FixedBudget)/float64(res.Trials))
	} else {
		fmt.Printf("budget exhausted at %d trials (fixed-budget equivalent %d)\n",
			res.Trials, res.FixedBudget)
	}
	if st := res.Session; st.RoundsServed > 0 {
		if preps := st.BucketPrepHits + st.BucketPrepMisses; preps > 0 {
			fmt.Printf("executor session: %d rounds, bucket-prep cache %d/%d hits (%.0f%%), %d worker slots reused\n",
				st.RoundsServed, st.BucketPrepHits, preps,
				100*float64(st.BucketPrepHits)/float64(preps), st.WorkersReused)
		} else {
			fmt.Printf("executor session: %d rounds, %d worker slots reused\n",
				st.RoundsServed, st.WorkersReused)
		}
	}
	fmt.Printf("campaign wall time: %s\n", res.Elapsed.Round(time.Millisecond))
	return nil
}

// printFabricAdaptiveResult renders a finished adaptive cluster
// campaign the same way the local runAdaptive does.
func printFabricAdaptiveResult(ctx context.Context, cl *fabric.Client, id string) error {
	res, err := cl.AdaptiveResult(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-10s %10s %8s %11s %5s\n",
		"region", "bits", "population", "trials", "half-width", "done")
	for _, s := range res.Strata {
		fmt.Printf("%-24s %-10s %10d %8d %11.4f %5v\n",
			s.Region, s.Bits, s.Population, s.Trials, s.HalfWidth, s.Done)
	}
	fmt.Printf("weighted estimate (%d trials, %d rounds): Mask %.3f Crash %.3f SDC %.3f Hang %.3f\n",
		res.Trials, res.Rounds,
		res.Rates[fault.OutcomeMask.String()], res.Rates[fault.OutcomeCrash.String()],
		res.Rates[fault.OutcomeSDC.String()], res.Rates[fault.OutcomeHang.String()])
	if res.Converged {
		fmt.Printf("converged in %d trials; fixed-budget equivalent %d (%.1fx savings)\n",
			res.Trials, res.FixedBudget, float64(res.FixedBudget)/float64(res.Trials))
	} else {
		fmt.Printf("budget exhausted at %d trials (fixed-budget equivalent %d)\n",
			res.Trials, res.FixedBudget)
	}
	fmt.Printf("cluster wall time: %s\n", time.Duration(res.ElapsedSec*float64(time.Second)).Round(time.Millisecond))
	return nil
}
