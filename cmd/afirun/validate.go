package main

import (
	"errors"
	"fmt"

	"vsresil/internal/summarize"
	"vsresil/internal/vs"
)

// campaignMode is the cross-flag shape of one afirun invocation: which
// planner drives the campaign and where it executes. validate is the
// single home of the mutual-exclusion rules that used to be scattered
// across main()'s flag handling (the -stratified/-fabric conflict and
// the vs-only stratified restriction among them).
type campaignMode struct {
	Stratified bool    // -stratified: fixed per-stratum planner
	Adaptive   bool    // -adaptive: confidence-driven planner
	Fabric     string  // -fabric coordinator URL ("" = in process)
	Summarizer string  // -summarizer backend name
	Precision  float64 // -precision target half-width
	Confidence float64 // -confidence interval level
	TrialsSet  bool    // -trials was given explicitly on the command line
}

// validate enforces the planner/placement rules before any work runs.
func (m campaignMode) validate() error {
	if m.Stratified && m.Adaptive {
		return errors.New("-stratified and -adaptive select different planners; pick one")
	}
	if m.Stratified {
		if m.Fabric != "" {
			return errors.New("-stratified campaigns run in process; drop -fabric")
		}
		if !isVSSummarizer(m.Summarizer) {
			return fmt.Errorf("-stratified supports only the vs summarizer, not %s", m.Summarizer)
		}
	}
	if !m.Adaptive {
		if m.Precision != 0 {
			return errors.New("-precision is an adaptive-planner knob; add -adaptive")
		}
		if m.Confidence != 0 {
			return errors.New("-confidence is an adaptive-planner knob; add -adaptive")
		}
		return nil
	}
	if m.TrialsSet {
		return errors.New("-trials is the fixed-budget knob; adaptive campaigns size themselves — drop -trials or tune -precision/-confidence")
	}
	if m.Precision < 0 || m.Precision >= 0.5 {
		return fmt.Errorf("-precision %v outside (0, 0.5)", m.Precision)
	}
	if m.Confidence < 0 || m.Confidence >= 1 {
		return fmt.Errorf("-confidence %v outside (0, 1)", m.Confidence)
	}
	return nil
}

// isVSSummarizer reports whether name parses to the panorama-stitching
// vs backend — the only one the stratified region map covers.
func isVSSummarizer(name string) bool {
	s, err := summarize.Parse(name, vs.DefaultConfig(vs.AlgVS))
	if err != nil {
		return false
	}
	_, ok := s.(summarize.VS)
	return ok
}
