// Command vsgen renders a synthetic aerial input video to disk as a
// PGM frame sequence plus a ground-truth pose file, so the inputs can
// be inspected or fed to external tools.
//
// Usage:
//
//	vsgen -input 1 -scale bench -outdir ./input1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vsresil/internal/imgproc"
	"vsresil/internal/virat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vsgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input  = flag.Int("input", 1, "input video: 1 or 2")
		scale  = flag.String("scale", "test", "input scale: test, bench or paper")
		frames = flag.Int("frames", 0, "override the preset's frame count")
		outdir = flag.String("outdir", "frames", "output directory")
		world  = flag.Bool("world", false, "also write the full world bitmap")
	)
	flag.Parse()

	p, err := virat.ParsePreset(*scale, *frames)
	if err != nil {
		return err
	}
	seq, err := virat.ParseInput(*input, p)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	for i := 0; i < seq.Len(); i++ {
		path := filepath.Join(*outdir, fmt.Sprintf("frame_%04d.pgm", i))
		if err := imgproc.SavePGM(path, seq.Frame(i)); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d frames of %s to %s\n", seq.Len(), seq.Name, *outdir)

	poses, err := os.Create(filepath.Join(*outdir, "poses.csv"))
	if err != nil {
		return err
	}
	defer poses.Close()
	fmt.Fprintln(poses, "frame,x,y,heading,zoom,cut")
	cutSet := map[int]bool{}
	for _, c := range seq.Cuts {
		cutSet[c] = true
	}
	for i, pose := range seq.Poses {
		cut := 0
		if cutSet[i] {
			cut = 1
		}
		fmt.Fprintf(poses, "%d,%.3f,%.3f,%.5f,%.4f,%d\n", i, pose.X, pose.Y, pose.Heading, pose.Zoom, cut)
	}
	if err := poses.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote ground-truth poses.csv (%d cuts)\n", len(seq.Cuts))

	if *world {
		path := filepath.Join(*outdir, "world.pgm")
		if err := imgproc.SavePGM(path, seq.World.Img); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%dx%d)\n", path, seq.World.Img.W, seq.World.Img.H)
	}
	return nil
}
