// Command vsd is the video-summarization daemon: a job-queue service
// that runs summarization requests, fault-injection campaigns and
// paper-figure experiments over HTTP.
//
// Usage:
//
//	vsd -addr :8080 -workers 2 -journal vsd.journal
//
// Submit work with POST /v1/jobs, poll GET /v1/jobs/{id}, fetch
// GET /v1/jobs/{id}/result; see the README's "Running the daemon"
// section for curl examples. SIGINT/SIGTERM drain the queue: running
// campaigns checkpoint their completed trials to the journal and the
// next start resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vsresil/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		journal    = flag.String("journal", "vsd.journal", "job journal path (\"\" = in-memory only)")
		checkpoint = flag.Int("checkpoint-every", 25, "campaign trials per journal checkpoint batch")
		grace      = flag.Duration("grace", 10*time.Second, "shutdown drain budget")
		debugAddr  = flag.String("debug-addr", "", "pprof debug listen address, e.g. localhost:6060 (\"\" = disabled)")
	)
	flag.Parse()

	svc, err := service.New(service.Config{
		Workers:         *workers,
		JournalPath:     *journal,
		CheckpointEvery: *checkpoint,
	})
	if err != nil {
		return err
	}

	// The profiler listens on its own mux and (typically loopback-only)
	// address so /debug/pprof is never exposed on the service port.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				fmt.Fprintln(os.Stderr, "vsd: debug server:", err)
			}
		}()
		fmt.Printf("vsd: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("vsd: listening on %s (workers=%d, journal=%q)\n", *addr, *workers, *journal)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("vsd: draining (running campaigns checkpoint to the journal)")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("vsd: drained cleanly")
	return nil
}
