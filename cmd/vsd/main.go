// Command vsd is the video-summarization daemon: a job-queue service
// that runs summarization requests, fault-injection campaigns and
// paper-figure experiments over HTTP.
//
// Usage:
//
//	vsd -addr :8080 -workers 2 -journal vsd.journal
//
// Submit work with POST /v1/jobs, poll GET /v1/jobs/{id}, fetch
// GET /v1/jobs/{id}/result; see the README's "Running the daemon"
// section for curl examples. SIGINT/SIGTERM drain the queue: running
// campaigns checkpoint their completed trials to the journal and the
// next start resumes them.
//
// A vsd can also be one node of a campaign cluster:
//
//	vsd -addr :8080 -coordinator            # serve the fabric coordinator API
//	vsd -addr :8081 -join http://host:8080  # lease and execute shards
//
// A coordinator decomposes submitted campaigns into leased shards,
// reassigns the shards of dead workers, and merges completed shards
// bit-identically to a single-node run; cmd/afirun submits with
// -fabric. One process may do both (-coordinator -join pointing at
// itself) to put the coordinator's cores to work too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vsresil/internal/fabric"
	"vsresil/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		journal    = flag.String("journal", "vsd.journal", "job journal path (\"\" = in-memory only)")
		checkpoint = flag.Int("checkpoint-every", 25, "campaign trials per journal checkpoint batch")
		compact    = flag.Int("compact-every", 4096, "journal records between runtime compactions")
		grace      = flag.Duration("grace", 10*time.Second, "shutdown drain budget")
		debugAddr  = flag.String("debug-addr", "", "pprof debug listen address, e.g. localhost:6060 (\"\" = disabled)")

		coordinator   = flag.Bool("coordinator", false, "serve the campaign-cluster coordinator API on this daemon")
		fabricJournal = flag.String("fabric-journal", "vsd.fabric.journal", "coordinator lease/result journal path (\"\" = in-memory only)")
		leaseTTL      = flag.Duration("lease-ttl", fabric.DefaultLeaseTTL, "shard lease duration; a worker silent this long is reassigned")
		join          = flag.String("join", "", "join a coordinator at this base URL as a shard worker, e.g. http://host:8080")
		workerID      = flag.String("worker-id", "", "worker identity on the fabric (default host:pid)")
	)
	flag.Parse()

	var coord *fabric.Coordinator
	if *coordinator {
		var err error
		coord, err = fabric.NewCoordinator(fabric.Config{
			LeaseTTL:    *leaseTTL,
			JournalPath: *fabricJournal,
		})
		if err != nil {
			return err
		}
	}

	svc, err := service.New(service.Config{
		Workers:         *workers,
		JournalPath:     *journal,
		CheckpointEvery: *checkpoint,
		CompactEvery:    *compact,
		Fabric:          coord,
	})
	if err != nil {
		return err
	}

	// The profiler listens on its own mux and (typically loopback-only)
	// address so /debug/pprof is never exposed on the service port.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				fmt.Fprintln(os.Stderr, "vsd: debug server:", err)
			}
		}()
		fmt.Printf("vsd: pprof on http://%s/debug/pprof/\n", *debugAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("vsd: listening on %s (workers=%d, journal=%q)\n", *addr, *workers, *journal)
	if coord != nil {
		fmt.Printf("vsd: fabric coordinator up (lease TTL %s, journal %q)\n", *leaseTTL, *fabricJournal)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	workerDone := make(chan struct{})
	if *join != "" {
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		w := &fabric.Worker{ID: id, Client: &fabric.Client{Base: *join}}
		go func() {
			defer close(workerDone)
			fmt.Printf("vsd: joined fabric at %s as %q\n", *join, id)
			w.Run(ctx)
		}()
	} else {
		close(workerDone)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("vsd: draining (running campaigns checkpoint to the journal)")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	<-workerDone
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if coord != nil {
		if err := coord.Close(); err != nil {
			return fmt.Errorf("fabric drain: %w", err)
		}
	}
	fmt.Println("vsd: drained cleanly")
	return nil
}
