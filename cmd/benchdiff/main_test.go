package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLedger writes a two-section ledger and returns its path.
func writeLedger(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const ledgerBody = `{
  "before": {
    "BenchmarkCampaignThroughput": {"ns/op": 100, "trials/s": 90, "B/op": 1000},
    "BenchmarkRetired": {"ns/op": 5}
  },
  "after": {
    "BenchmarkCampaignThroughput": {"ns/op": 200, "trials/s": 40, "B/op": 1000},
    "BenchmarkNew": {"ns/op": 7, "widgets": 3}
  }
}`

// TestCompareAdvisory checks that without -gate the comparison reports
// regressions and one-sided entries but never fails.
func TestCompareAdvisory(t *testing.T) {
	path := writeLedger(t, ledgerBody)
	if err := runCompare([]string{"-in", path}); err != nil {
		t.Fatalf("advisory compare failed: %v", err)
	}
}

// TestCompareGate checks that -gate turns matching regressions into a
// non-zero exit, while non-matching benchmarks stay advisory.
func TestCompareGate(t *testing.T) {
	path := writeLedger(t, ledgerBody)
	err := runCompare([]string{"-in", path, "-gate", "CampaignThroughput", "-threshold", "0.10"})
	if err == nil {
		t.Fatal("gated compare passed despite a 2x ns/op regression")
	}
	if !strings.Contains(err.Error(), "gated regression") {
		t.Fatalf("gate failure = %v, want gated regression report", err)
	}
	// Gate on a benchmark that did not regress beyond threshold.
	relaxed := writeLedger(t, `{
  "before": {"BenchmarkCampaignThroughput": {"trials/s": 100}},
  "after":  {"BenchmarkCampaignThroughput": {"trials/s": 95}}
}`)
	if err := runCompare([]string{"-in", relaxed, "-gate", "CampaignThroughput", "-threshold", "0.10"}); err != nil {
		t.Fatalf("gated compare within threshold failed: %v", err)
	}
}

// TestCompareGateMatchesNothing checks the gate refuses to vacuously
// pass when its pattern selects no gateable metric.
func TestCompareGateMatchesNothing(t *testing.T) {
	path := writeLedger(t, ledgerBody)
	err := runCompare([]string{"-in", path, "-gate", "NoSuchBenchmark"})
	if err == nil || !strings.Contains(err.Error(), "matched no gateable metrics") {
		t.Fatalf("vacuous gate = %v, want matched-nothing error", err)
	}
}

// TestCompareOneSided checks that benchmarks or counters present in
// only one section are tolerated, including when the sections share
// nothing gateable.
func TestCompareOneSided(t *testing.T) {
	path := writeLedger(t, `{
  "before": {"BenchmarkOld": {"ns/op": 5}},
  "after":  {"BenchmarkNew": {"ns/op": 7}}
}`)
	if err := runCompare([]string{"-in", path}); err != nil {
		t.Fatalf("disjoint sections should be advisory-clean, got: %v", err)
	}
}

// TestMissingLedgerFiles checks that a nonexistent -in path produces
// an error naming the missing file and suggesting the fix, for both
// subcommands.
func TestMissingLedgerFiles(t *testing.T) {
	gone := filepath.Join(t.TempDir(), "nope.json")
	err := runCompare([]string{"-in", gone})
	if err == nil || !strings.Contains(err.Error(), gone) || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("compare on missing ledger = %v, want error naming %s", err, gone)
	}
	err = runParse([]string{"-in", gone})
	if err == nil || !strings.Contains(err.Error(), gone) || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("parse on missing input = %v, want error naming %s", err, gone)
	}
}
