// Command benchdiff turns `go test -bench` output into a committed
// JSON ledger and gates performance regressions against it.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . > bench.out
//	benchdiff parse -label after -in bench.out -out BENCH_2.json
//	benchdiff compare -in BENCH_2.json -before before -after after
//
// parse merges one labeled section (e.g. "before", "after") into the
// JSON file, preserving the other sections. compare prints the
// percentage delta of every metric across the union of both sections'
// benchmarks — entries present on only one side (a benchmark or
// counter that was added or retired) are reported, not errors. By
// default the report is advisory and compare always exits zero; pass
// -gate with a benchmark-name regexp to fail on regressions beyond
// -threshold in the gated set: ns/op, B/op and allocs/op may not grow,
// and rate metrics such as trials/s may not shrink.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("benchdiff "+name, flag.ContinueOnError)
}

// Ledger is the JSON file layout: label -> benchmark -> unit -> value.
type Ledger map[string]map[string]map[string]float64

// lowerBetter units must not increase; higherBetter units must not
// decrease. Units in neither set (e.g. modelled-instructions, which
// counts work, not speed) are informational and never gate.
var (
	lowerBetter  = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}
	higherBetter = map[string]bool{"trials/s": true, "MB/s": true}
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchdiff parse|compare [flags]")
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:])
	case "compare":
		return runCompare(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want parse or compare)", args[0])
	}
}

func runParse(args []string) error {
	fs := newFlagSet("parse")
	label := fs.String("label", "after", "section to write the parsed results under")
	in := fs.String("in", "", "benchmark output file (\"\" = stdin)")
	out := fs.String("out", "BENCH_2.json", "JSON ledger to merge into")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f := os.Stdin
	if *in != "" {
		var err error
		if f, err = os.Open(*in); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("benchmark input %s does not exist; save 'go test -bench' output there or pipe it on stdin", *in)
			}
			return err
		}
		defer f.Close()
	}
	section, err := parseBench(f)
	if err != nil {
		return err
	}
	if len(section) == 0 {
		return fmt.Errorf("no Benchmark lines found in input")
	}

	ledger := Ledger{}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &ledger); err != nil {
			return fmt.Errorf("%s: %w", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	ledger[*label] = section

	enc, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: wrote %d benchmarks to %s[%q]\n", len(section), *out, *label)
	return nil
}

func runCompare(args []string) error {
	fs := newFlagSet("compare")
	in := fs.String("in", "BENCH_2.json", "JSON ledger to compare")
	before := fs.String("before", "before", "baseline section label")
	after := fs.String("after", "after", "candidate section label")
	threshold := fs.Float64("threshold", 0.10, "allowed relative regression in the gated set")
	gate := fs.String("gate", "", "regexp of benchmark names whose regressions fail the comparison (\"\" = advisory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var gateRE *regexp.Regexp
	if *gate != "" {
		var err error
		if gateRE, err = regexp.Compile(*gate); err != nil {
			return fmt.Errorf("-gate: %w", err)
		}
	}

	raw, err := os.ReadFile(*in)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("benchmark ledger %s does not exist; create it with 'benchdiff parse -out %s' first", *in, *in)
	}
	if err != nil {
		return err
	}
	var ledger Ledger
	if err := json.Unmarshal(raw, &ledger); err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	base, ok := ledger[*before]
	if !ok {
		return fmt.Errorf("%s: no %q section", *in, *before)
	}
	cand, ok := ledger[*after]
	if !ok {
		return fmt.Errorf("%s: no %q section", *in, *after)
	}

	names := unionKeys(base, cand)
	if len(names) == 0 {
		return fmt.Errorf("%s: sections %q and %q are both empty", *in, *before, *after)
	}

	gated := 0
	shared := 0
	var failures []string
	for _, name := range names {
		for _, unit := range unionKeys(base[name], cand[name]) {
			b, haveB := base[name][unit]
			a, haveA := cand[name][unit]
			switch {
			case !haveB:
				// One-sided: the candidate grew a benchmark or counter
				// the baseline never reported. Nothing to diff against.
				fmt.Printf("%-44s %-22s %14s -> %-14.6g (new)\n", name, unit, "-", a)
				continue
			case !haveA:
				fmt.Printf("%-44s %-22s %14.6g -> %-14s (gone)\n", name, unit, b, "-")
				continue
			}
			shared++
			delta := "    n/a"
			if b != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(a-b)/b)
			}
			var bad bool
			switch {
			case lowerBetter[unit]:
				bad = b != 0 && a > b*(1+*threshold)
			case higherBetter[unit]:
				bad = b != 0 && a < b*(1-*threshold)
			}
			mark := ""
			if bad {
				if gateRE != nil && gateRE.MatchString(name) {
					mark = "  REGRESSION"
					failures = append(failures, fmt.Sprintf("%s %s %+.1f%%", name, unit, 100*(a-b)/b))
				} else {
					mark = "  regressed (advisory)"
				}
			}
			if gateRE != nil && gateRE.MatchString(name) && (lowerBetter[unit] || higherBetter[unit]) {
				gated++
			}
			fmt.Printf("%-44s %-22s %14.6g -> %-14.6g %s%s\n", name, unit, b, a, delta, mark)
		}
	}
	if gateRE != nil && gated == 0 {
		return fmt.Errorf("-gate %q matched no gateable metrics", *gate)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gated regression(s) beyond %.0f%%: %s",
			len(failures), *threshold*100, strings.Join(failures, "; "))
	}
	if gateRE != nil {
		fmt.Printf("benchdiff: %d gated metrics within %.0f%% of %q (%d compared)\n",
			gated, *threshold*100, *before, shared)
	} else {
		fmt.Printf("benchdiff: compared %d metrics against %q (advisory, no gate)\n", shared, *before)
	}
	return nil
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// benchLine matches one `go test -bench` result line:
// BenchmarkName[-procs] <iterations> <value> <unit> [<value> <unit>]...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts benchmark -> unit -> value from go test output.
func parseBench(f *os.File) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[3])
		vals := out[name]
		if vals == nil {
			vals = map[string]float64{}
			out[name] = vals
		}
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			vals[rest[i+1]] = v
		}
	}
	return out, sc.Err()
}
