// Package wp implements the paper's "WP" toy benchmark (§V-C): a
// standalone application that takes an image and a transformation
// matrix as inputs, calls WarpPerspective on them, and returns the
// transformed image as its output.
//
// The paper uses WP to ask whether the resiliency of a hot kernel
// (WarpPerspective is 54.4% of VS's execution time) predicts the
// resiliency of the full end-to-end application, and finds that it
// does not: inside VS, the warp output flows into further computation
// and overlapping frames, so many errors that corrupt WP's output are
// masked downstream (§VI-C). The Fig 11b experiment injects faults
// into the same two functions (warpPerspectiveInvoker and
// remapBilinear) in both programs and compares outcome rates.
package wp

import (
	"fmt"

	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/virat"
	"vsresil/internal/warp"
)

// Bench is one configured WP application instance.
type Bench struct {
	Src        *imgproc.Gray
	H          geom.Homography
	DstW, DstH int
}

// New builds a WP benchmark over the given source image and transform.
func New(src *imgproc.Gray, h geom.Homography, dstW, dstH int) *Bench {
	return &Bench{Src: src, H: h, DstW: dstW, DstH: dstH}
}

// Default builds the standard WP instance used by the case study: a
// frame rendered from the synthetic Input 1 world and a representative
// inter-frame homography (small rotation + translation + mild zoom),
// i.e. exactly the kind of (image, matrix) pair VS feeds
// WarpPerspective.
func Default(preset virat.Preset) *Bench {
	seq := virat.Input1(preset)
	src := seq.Frame(0)
	h := geom.Translation(float64(src.W)/12, float64(src.H)/16).
		Mul(geom.RotationAbout(0.06, float64(src.W)/2, float64(src.H)/2)).
		Mul(geom.Scaling(1.04, 1.04))
	return New(src, h, src.W+src.W/6, src.H+src.H/6)
}

// Run executes the benchmark under the sink and returns the
// serialized output image. RunMachine adapts it for campaigns.
func (b *Bench) Run(s probe.Sink) ([]byte, error) {
	dst, err := warp.WarpPerspective(b.Src, b.H, b.DstW, b.DstH, s)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 8+len(dst.Pix))
	out = append(out,
		byte(dst.W), byte(dst.W>>8), byte(dst.W>>16), byte(dst.W>>24),
		byte(dst.H), byte(dst.H>>8), byte(dst.H>>16), byte(dst.H>>24))
	out = append(out, dst.Pix...)
	return out, nil
}

// App returns the fault.App for campaign use: the benchmark run with
// the campaign's machine threaded through the probe seam.
func (b *Bench) App() fault.App {
	return func(m *fault.Machine) ([]byte, error) { return b.Run(m) }
}

// stagedBench is the trivial single-stage fault.StagedApp view of WP:
// the whole benchmark is one WarpPerspective call, so there is no
// fault-free prefix to skip. The seam exists so WP campaigns flow
// through the same differential trial executor as VS.
type stagedBench struct{ b *Bench }

// Staged returns the stage-resumable campaign view of the benchmark.
func (b *Bench) Staged() fault.StagedApp { return stagedBench{b: b} }

// RunFull executes the single stage; there are no interior boundaries,
// so snap is never called and every trial runs in full.
func (s stagedBench) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	return s.b.Run(m)
}

// Resume can never be reached — RunFull records no checkpoints — so a
// call means checkpoint bookkeeping went wrong somewhere; surface it
// instead of silently running from the start with seeded counters.
func (s stagedBench) Resume(m *fault.Machine, state any) ([]byte, error) {
	return nil, fmt.Errorf("wp: resume from unexpected checkpoint state %T", state)
}
