package wp

import (
	"context"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
)

func TestDefaultRuns(t *testing.T) {
	b := Default(virat.TestScale())
	out, err := b.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 8+b.DstW*b.DstH {
		t.Errorf("output length %d, want %d", len(out), 8+b.DstW*b.DstH)
	}
}

func TestRunDeterministic(t *testing.T) {
	b := Default(virat.TestScale())
	a, err := b.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Run(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(c) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

func TestWPTapsConcentrateInWarpRegions(t *testing.T) {
	b := Default(virat.TestScale())
	m := fault.New()
	if _, err := b.Run(m); err != nil {
		t.Fatal(err)
	}
	warpTaps := m.RegionTaps(fault.GPR, fault.RWarpInvoker) +
		m.RegionTaps(fault.GPR, fault.RRemapBilinear)
	if warpTaps == 0 {
		t.Fatal("no warp taps")
	}
	if frac := float64(warpTaps) / float64(m.GPRTaps()); frac < 0.95 {
		t.Errorf("warp tap fraction %v; WP should be almost entirely warp", frac)
	}
}

func TestWPCampaignClassifies(t *testing.T) {
	b := Default(virat.TestScale())
	res, err := fault.RunCampaign(context.Background(), fault.Config{
		Trials: 150, Class: fault.GPR, Region: fault.RAny, Seed: 3, Workers: 4,
	}, b.App())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 150 {
		t.Errorf("classified %d trials", total)
	}
	// WP has no downstream computation: its landed faults should
	// produce visible SDC or crash more often than full VS would in
	// the same code (tested end-to-end in the experiments package);
	// here just require that some non-masked outcomes exist.
	if res.Counts[fault.OutcomeMask] == total {
		t.Error("every WP fault masked — implausible for a kernel-only app")
	}
}
