// Package fabric turns N vsd processes into one campaign cluster.
//
// A Coordinator decomposes a campaign into plan-index ranges via
// campaign.Spec.Shards(k) and leases them to worker vsds over HTTP.
// Leases carry deadlines and are journaled (the same JSONL
// fold-and-compact shape as internal/service's job journal), so a
// dead worker's shard is reassigned after its lease expires and a
// restarted coordinator replays its lease table instead of starting
// over. When every shard is leased, an idle worker steals the shard
// with the most remaining trials (a duplicate lease); the first
// journaled completion wins and later duplicates are discarded.
//
// Distribution changes where trials run, not what they compute.
// Campaign plans are pre-generated from the seed, so a worker's shard
// draws exactly the plans the single-node run would; the worker ships
// back only fault.TrialRecords plus retained SDC bytes, and the
// coordinator rebuilds each shard's full fault.Result locally through
// the campaign resume path (zero re-execution — plans, histograms and
// the rate curve regenerate deterministically) before campaign.Merge
// recombines the shards bit-identically to the unsharded Runner run.
package fabric

import (
	"fmt"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/plan"
	"vsresil/internal/summarize"
	"vsresil/internal/vs"

	"vsresil/internal/virat"
)

// CampaignSpec is the wire form of a cluster campaign: everything a
// worker needs to rebuild the exact same campaign.Spec the coordinator
// decomposed. Only synthetic inputs are supported on the fabric —
// uploaded frame sets would have to ship to every worker.
type CampaignSpec struct {
	// Algorithm is the VS variant under test (default VS). A custom
	// WorkloadBuilder may interpret this freely (the test harness keys
	// toy workloads off it).
	Algorithm string `json:"algorithm,omitempty"`
	// Scenario is the capture scenario applied to the synthetic input:
	// "" or "identity" for the clean baseline, or a "+"-chain of
	// degradations (e.g. "lowlight+fog").
	Scenario string `json:"scenario,omitempty"`
	// Summarizer selects the backend: "" or "vs" for panorama
	// stitching, "storyboard" for the keyframe filmstrip.
	Summarizer string `json:"summarizer,omitempty"`
	// Class is the register class: "gpr" or "fpr" (default gpr).
	Class string `json:"class,omitempty"`
	// Region restricts injections to one function ("" = whole app).
	Region string `json:"region,omitempty"`
	// Input selects the synthetic sequence (1 or 2, default 1).
	Input int `json:"input,omitempty"`
	// Scale is the preset size: "test", "bench" or "paper".
	Scale string `json:"scale,omitempty"`
	// Frames overrides the preset's frame count (0 = preset default).
	Frames int `json:"frames,omitempty"`
	// Trials is the full campaign size (required, > 0).
	Trials int `json:"trials"`
	// Seed makes the campaign reproducible across the cluster.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds each worker's own trial parallelism
	// (0 = GOMAXPROCS on the worker).
	Workers int `json:"workers,omitempty"`
	// KeepSDC retains SDC output bytes; MaxSDC caps how many (<= 0 =
	// unlimited). Retention is deterministic across any decomposition:
	// the merged result keeps the MaxSDC lowest-plan-index SDCs.
	KeepSDC bool `json:"keep_sdc,omitempty"`
	MaxSDC  int  `json:"max_sdc,omitempty"`
	// Adaptive switches the campaign from the fixed Trials budget to
	// confidence-driven allocation: the coordinator plans rounds from
	// the merged per-stratum counts and leases plan-carrying round
	// shards until every stratum rate is within Precision at
	// Confidence. Trials is ignored; the budget cap is MaxTrials
	// (0 = the fixed-budget equivalent).
	Adaptive bool `json:"adaptive,omitempty"`
	// Precision is the target Wilson half-width (0 = 0.05) and
	// Confidence the interval level (0 = 0.95) for adaptive campaigns.
	Precision  float64 `json:"precision,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// RoundSize is the per-round trial budget after the bootstrap
	// (0 = planner default); MaxTrials caps the total allocation.
	RoundSize int `json:"round_size,omitempty"`
	MaxTrials int `json:"max_trials,omitempty"`
}

// Validate checks the declarative fields without building a workload.
func (cs *CampaignSpec) Validate() error {
	if cs.Adaptive {
		if cs.Precision < 0 || cs.Precision >= 0.5 {
			return fmt.Errorf("fabric: adaptive precision %v outside [0, 0.5)", cs.Precision)
		}
		if cs.Confidence < 0 || cs.Confidence >= 1 {
			return fmt.Errorf("fabric: adaptive confidence %v outside [0, 1)", cs.Confidence)
		}
		if cs.RoundSize < 0 || cs.MaxTrials < 0 {
			return fmt.Errorf("fabric: negative adaptive round size or trial cap")
		}
	} else if cs.Trials <= 0 {
		return fmt.Errorf("fabric: campaign needs trials > 0, got %d", cs.Trials)
	}
	if _, err := fault.ParseClass(cs.Class); err != nil {
		return err
	}
	if _, err := fault.ParseRegion(cs.Region); err != nil {
		return err
	}
	if _, err := virat.ParseScenario(cs.Scenario); err != nil {
		return err
	}
	if _, err := summarize.Parse(cs.Summarizer, vs.DefaultConfig(vs.AlgVS)); err != nil {
		return err
	}
	return nil
}

// WorkloadBuilder maps a wire spec to the workload a campaign injects
// into. Coordinator and workers must use the same builder: the merge's
// bit-identity argument assumes every node captures the same golden
// run, which holds because workloads are deterministic functions of
// the spec.
type WorkloadBuilder func(cs CampaignSpec) (campaign.Workload, error)

// DefaultWorkload resolves the spec's (scenario, summarizer, algorithm)
// cell against the synthetic input through the campaign registry. A
// spec with empty scenario/summarizer fields builds the identity/vs
// workload — byte-identical to the pre-matrix VS constructor.
func DefaultWorkload(cs CampaignSpec) (campaign.Workload, error) {
	preset, err := virat.ParsePreset(cs.Scale, cs.Frames)
	if err != nil {
		return campaign.Workload{}, err
	}
	input := cs.Input
	if input == 0 {
		input = 1
	}
	cell := campaign.Cell{Scenario: cs.Scenario, Summarizer: cs.Summarizer, Algorithm: cs.Algorithm}
	return cell.Workload(input, preset, cs.Seed)
}

// campaignSpec translates the wire spec (plus one shard window) into
// the engine Spec a node runs. The same translation runs on workers
// (to execute the shard) and on the coordinator (to rebuild shard
// results through the resume path), which is what keeps both sides'
// plan spaces identical.
func (cs CampaignSpec) campaignSpec(w campaign.Workload, shard campaign.Shard) (campaign.Spec, error) {
	class, err := fault.ParseClass(cs.Class)
	if err != nil {
		return campaign.Spec{}, err
	}
	region, err := fault.ParseRegion(cs.Region)
	if err != nil {
		return campaign.Spec{}, err
	}
	return campaign.Spec{
		Workload: w,
		Class:    class,
		Region:   region,
		Trials:   cs.Trials,
		Seed:     cs.Seed,
		Workers:  cs.Workers,
		SDC:      campaign.SDCPolicy{Keep: cs.KeepSDC, Max: cs.MaxSDC},
		Shard:    shard,
	}, nil
}

// planWindow is the plan-index range shard i of k covers — the same
// split campaign.Spec.Shards produces.
func planWindow(trials, i, k int) (lo, hi int) {
	if k <= 1 {
		return 0, trials
	}
	return i * trials / k, (i + 1) * trials / k
}

// SDCOutput carries one retained SDC trial's corrupted output bytes,
// keyed by plan index. Data marshals as base64 on the wire.
type SDCOutput struct {
	Index int    `json:"i"`
	Data  []byte `json:"d"`
}

// Lease is one granted plan-index range: the campaign context a worker
// needs plus the deadline discipline it must keep.
type Lease struct {
	ID       string       `json:"id"`
	Campaign string       `json:"campaign"`
	Spec     CampaignSpec `json:"spec"`
	// ShardIndex/ShardCount place the lease in the decomposition;
	// PlanLo/PlanHi are the resulting plan-index window [lo, hi).
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	PlanLo     int `json:"plan_lo"`
	PlanHi     int `json:"plan_hi"`
	// TTL is the lease duration: a worker must heartbeat well inside
	// it or the shard is reassigned.
	TTL time.Duration `json:"ttl_ns"`
	// Plans, when non-empty, makes this a round-shard lease of an
	// adaptive campaign: the worker executes exactly these plans (plan
	// index PlanLo+i for Plans[i]) instead of regenerating a window
	// from the seed. ShardIndex then names the coordinator's global
	// shard slot, not a position in a static decomposition.
	Plans []fault.Plan `json:"plans,omitempty"`
}

// ShardResult is a worker's completed shard: the checkpoint records of
// every trial in the window (indices are plan indices) plus the SDC
// outputs its retention policy kept.
type ShardResult struct {
	Worker   string              `json:"worker"`
	Lease    string              `json:"lease"`
	Campaign string              `json:"campaign"`
	Shard    int                 `json:"shard"`
	Recs     []fault.TrialRecord `json:"recs"`
	SDC      []SDCOutput         `json:"sdc,omitempty"`
}

// CampaignStatus is the wire form of a cluster campaign's progress.
type CampaignStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
	TrialsDone  int    `json:"trials_done"`
	TrialsTotal int    `json:"trials_total"`
	Error       string `json:"error,omitempty"`
}

// CampaignResult is the wire form of a finished cluster campaign —
// the same aggregates the single-node CampaignResult reports, computed
// from the bit-identical merged result.
type CampaignResult struct {
	Class       string             `json:"class"`
	Region      string             `json:"region"`
	Trials      int                `json:"trials"`
	Shards      int                `json:"shards"`
	Completed   int                `json:"completed"`
	TotalTaps   uint64             `json:"total_taps"`
	GoldenSteps uint64             `json:"golden_steps"`
	Counts      map[string]int     `json:"counts"`
	Rates       map[string]float64 `json:"rates"`
	CrashSplit  map[string]int     `json:"crash_split,omitempty"`
	RegChi2     float64            `json:"reg_chi2"`
	CurveKnee   int                `json:"curve_knee"`
	SDCKept     int                `json:"sdc_kept,omitempty"`
	ElapsedSec  float64            `json:"elapsed_sec"`
}

// wireResult renders the merged engine result for the API.
func wireResult(cs CampaignSpec, shards int, res *campaign.Result) *CampaignResult {
	fres := res.Fault
	out := &CampaignResult{
		Class:       fres.Config.Class.String(),
		Region:      fres.Config.Region.String(),
		Trials:      cs.Trials,
		Shards:      shards,
		Completed:   fres.Completed,
		TotalTaps:   fres.TotalTaps,
		GoldenSteps: fres.GoldenSteps,
		Counts:      make(map[string]int),
		Rates:       make(map[string]float64),
		RegChi2:     fres.RegHist.ChiSquareUniform(),
		CurveKnee:   fres.Curve.Knee(0.02),
		SDCKept:     len(fres.SDCOutputs()),
		ElapsedSec:  res.Elapsed.Seconds(),
	}
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		out.Counts[o.String()] = fres.Counts[o]
		out.Rates[o.String()] = fres.Rate(o)
	}
	if len(fres.CrashCounts) > 0 {
		out.CrashSplit = make(map[string]int)
		for k, n := range fres.CrashCounts {
			out.CrashSplit[k.String()] = n
		}
	}
	return out
}

// AdaptiveStratumResult is one stratum's final estimate on the wire.
type AdaptiveStratumResult struct {
	Region     string         `json:"region"`
	Bits       string         `json:"bits"`
	Population uint64         `json:"population"`
	Trials     int            `json:"trials"`
	Counts     map[string]int `json:"counts"`
	HalfWidth  float64        `json:"half_width"`
	Done       bool           `json:"done"`
}

// AdaptiveCampaignResult is the wire form of a finished adaptive
// cluster campaign: the population-weighted rates plus the per-stratum
// precision the allocation actually reached, and the fixed-budget
// trial count the early stopping is measured against.
type AdaptiveCampaignResult struct {
	Class       string                  `json:"class"`
	Region      string                  `json:"region"`
	Precision   float64                 `json:"precision"`
	Confidence  float64                 `json:"confidence"`
	Rounds      int                     `json:"rounds"`
	Trials      int                     `json:"trials"`
	FixedBudget int                     `json:"fixed_budget"`
	Converged   bool                    `json:"converged"`
	Rates       map[string]float64      `json:"rates"`
	Strata      []AdaptiveStratumResult `json:"strata"`
	ElapsedSec  float64                 `json:"elapsed_sec"`
}

// adaptiveWireResult renders the planner's final state for the API.
func adaptiveWireResult(cs CampaignSpec, planner *plan.Adaptive) *AdaptiveCampaignResult {
	cfg := planner.Config()
	strata := planner.Strata()
	out := &AdaptiveCampaignResult{
		Class:       cfg.Class.String(),
		Region:      cfg.Region.String(),
		Precision:   cfg.Precision,
		Confidence:  cfg.Confidence,
		Rounds:      planner.Rounds(),
		Trials:      planner.Total(),
		FixedBudget: plan.FixedBudget(cfg.Precision, cfg.Confidence, len(strata)),
		Converged:   planner.Converged(),
		Rates:       make(map[string]float64),
		Strata:      make([]AdaptiveStratumResult, len(strata)),
	}
	for o, rate := range planner.Result().WeightedRates() {
		out.Rates[fault.Outcome(o).String()] = rate
	}
	for i, s := range strata {
		ws := AdaptiveStratumResult{
			Region:     s.Region.String(),
			Bits:       s.Bits.String(),
			Population: s.Population,
			Trials:     s.Trials,
			Counts:     make(map[string]int),
			HalfWidth:  s.HalfWidth,
			Done:       s.Done,
		}
		for o, n := range s.Counts {
			ws.Counts[fault.Outcome(o).String()] = n
		}
		out.Strata[i] = ws
	}
	return out
}
