package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
)

func adaptiveWireSpec() CampaignSpec {
	return CampaignSpec{
		Algorithm:  "toy",
		Class:      "fpr",
		Seed:       23,
		Workers:    2,
		Adaptive:   true,
		Precision:  0.05,
		Confidence: 0.95,
	}
}

// localAdaptive runs the wire spec through the single-node adaptive
// engine — the ground truth the cluster's trial set must match.
func localAdaptive(t *testing.T, cs CampaignSpec) *campaign.AdaptiveResult {
	t.Helper()
	w, err := toyBuild(cs)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	class, err := fault.ParseClass(cs.Class)
	if err != nil {
		t.Fatalf("parse class: %v", err)
	}
	region, err := fault.ParseRegion(cs.Region)
	if err != nil {
		t.Fatalf("parse region: %v", err)
	}
	var runner campaign.Runner
	res, err := runner.RunAdaptive(context.Background(), campaign.Spec{
		Workload: w,
		Class:    class,
		Region:   region,
		Seed:     cs.Seed,
		Workers:  cs.Workers,
		Adaptive: &campaign.AdaptiveSpec{
			Precision:  cs.Precision,
			Confidence: cs.Confidence,
			RoundSize:  cs.RoundSize,
			MaxTrials:  cs.MaxTrials,
		},
	}, 1)
	if err != nil {
		t.Fatalf("local adaptive run: %v", err)
	}
	return res
}

// executeAdaptiveLease runs a plan-carrying lease locally and returns
// the ShardResult a worker would ship.
func executeAdaptiveLease(t *testing.T, l Lease, worker string) ShardResult {
	t.Helper()
	if len(l.Plans) == 0 {
		t.Fatalf("lease %s of %s carries no plans", l.ID, l.Campaign)
	}
	w, err := toyBuild(l.Spec)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	spec, err := l.Spec.campaignSpec(w, campaign.Shard{})
	if err != nil {
		t.Fatalf("translate spec: %v", err)
	}
	var runner campaign.Runner
	res, err := runner.RunPlans(context.Background(), spec, l.Plans, l.PlanLo)
	if err != nil {
		t.Fatalf("run plan lease: %v", err)
	}
	out := ShardResult{Worker: worker, Lease: l.ID, Campaign: l.Campaign, Shard: l.ShardIndex}
	for i := range res.Fault.Trials {
		out.Recs = append(out.Recs, res.Fault.Trials[i].Record(l.PlanLo+i))
	}
	return out
}

// drainAdaptive plays a synchronous single worker against the
// coordinator until the campaign terminates: lease, execute, complete.
func drainAdaptive(t *testing.T, c *Coordinator, id, worker string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		switch st.State {
		case campDone:
			return
		case campFailed:
			t.Fatalf("campaign failed: %s", st.Error)
		}
		l, ok, err := c.Lease(worker)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if !ok {
			time.Sleep(time.Millisecond) // driver between rounds
			continue
		}
		if _, err := c.Complete(executeAdaptiveLease(t, l, worker)); err != nil {
			t.Fatalf("complete: %v", err)
		}
	}
	t.Fatal("adaptive campaign did not finish in 30s")
}

// TestClusterAdaptiveEquivalence is the adaptive acceptance property:
// a confidence-driven campaign executed by a live HTTP cluster lands
// on the byte-identical trial set the single-node RunAdaptive draws,
// converges on every stratum, and beats the fixed budget by >= 5x.
func TestClusterAdaptiveEquivalence(t *testing.T) {
	cs := adaptiveWireSpec()
	base := localAdaptive(t, cs)
	if !base.Converged {
		t.Fatalf("baseline did not converge in %d trials", base.Trials)
	}

	coord, err := NewCoordinator(Config{Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := &Client{Base: srv.URL}

	id, err := client.Submit(context.Background(), cs, 3)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, name := range []string{"live-1", "live-2"} {
		w := &Worker{
			ID:       name,
			Client:   &Client{Base: srv.URL},
			Workload: toyBuild,
			Poll:     5 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	waitDone(t, coord, id)
	cancel()

	recs, err := coord.AdaptiveRecords(id)
	if err != nil {
		t.Fatalf("adaptive records: %v", err)
	}
	if !reflect.DeepEqual(recs, base.Records) {
		t.Error("cluster trial records diverge from single-node baseline")
	}

	res, err := client.AdaptiveResult(context.Background(), id)
	if err != nil {
		t.Fatalf("wire result: %v", err)
	}
	if res.Trials != base.Trials || res.Rounds != base.Rounds || !res.Converged {
		t.Errorf("wire result trials=%d rounds=%d converged=%v, want %d/%d/true",
			res.Trials, res.Rounds, res.Converged, base.Trials, base.Rounds)
	}
	if res.Trials*5 > res.FixedBudget {
		t.Errorf("adaptive spent %d trials vs fixed budget %d — want >= 5x savings",
			res.Trials, res.FixedBudget)
	}
	for _, s := range res.Strata {
		if !s.Done {
			t.Errorf("stratum %s/%s not at target (half-width %.4f)", s.Region, s.Bits, s.HalfWidth)
		}
	}
}

// TestClusterAdaptiveFanoutInvariance: the observed trial set is
// identical for every round-shard count.
func TestClusterAdaptiveFanoutInvariance(t *testing.T) {
	cs := adaptiveWireSpec()
	base := localAdaptive(t, cs)
	for _, fanout := range []int{1, 4} {
		c, err := NewCoordinator(Config{Workload: toyBuild})
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		id, err := c.Submit(cs, fanout)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		drainAdaptive(t, c, id, "solo")
		recs, err := c.AdaptiveRecords(id)
		if err != nil {
			t.Fatalf("adaptive records: %v", err)
		}
		if !reflect.DeepEqual(recs, base.Records) {
			t.Errorf("fanout=%d: cluster trial records diverge from baseline", fanout)
		}
		c.Close()
	}
}

// TestCoordinatorRestartAdaptive closes the coordinator after the
// bootstrap round and replays the journal: the restarted round driver
// must fold the journaled shards without re-executing them and finish
// on the identical trial set.
func TestCoordinatorRestartAdaptive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	cs := adaptiveWireSpec()
	base := localAdaptive(t, cs)

	c1, err := NewCoordinator(Config{JournalPath: path, Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	id, err := c1.Submit(cs, 2)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Complete the two bootstrap round-shards, then die.
	completed := 0
	deadline := time.Now().Add(30 * time.Second)
	for completed < 2 && time.Now().Before(deadline) {
		l, ok, err := c1.Lease("a")
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if _, err := c1.Complete(executeAdaptiveLease(t, l, "a")); err != nil {
			t.Fatalf("complete: %v", err)
		}
		completed++
	}
	if completed != 2 {
		t.Fatal("bootstrap round never fully leased")
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2, err := NewCoordinator(Config{JournalPath: path, Workload: toyBuild})
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	defer c2.Close()
	drainAdaptive(t, c2, id, "b")
	recs, err := c2.AdaptiveRecords(id)
	if err != nil {
		t.Fatalf("adaptive records: %v", err)
	}
	if !reflect.DeepEqual(recs, base.Records) {
		t.Error("restarted cluster's trial records diverge from baseline")
	}
	res, err := c2.Result(id)
	if err != nil {
		t.Fatalf("wire result after restart: %v", err)
	}
	if !strings.Contains(string(res), "\"converged\":true") {
		t.Errorf("journaled wire result not converged: %s", res)
	}
}

// TestAdaptiveSpecValidation: the wire-level precision/confidence
// checks reject malformed adaptive specs, and non-adaptive specs still
// require a trial budget.
func TestAdaptiveSpecValidation(t *testing.T) {
	c, err := NewCoordinator(Config{Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	bad := adaptiveWireSpec()
	bad.Precision = 0.7
	if _, err := c.Submit(bad, 1); err == nil {
		t.Error("precision 0.7 accepted")
	}
	bad = adaptiveWireSpec()
	bad.Confidence = 1.5
	if _, err := c.Submit(bad, 1); err == nil {
		t.Error("confidence 1.5 accepted")
	}
	nonAdaptive := adaptiveWireSpec()
	nonAdaptive.Adaptive = false
	if _, err := c.Submit(nonAdaptive, 1); err == nil {
		t.Error("non-adaptive spec without trials accepted")
	}
	// A zero-knob adaptive spec is valid: the planner defaults apply.
	ok := CampaignSpec{Algorithm: "toy", Class: "fpr", Seed: 1, Adaptive: true}
	if err := ok.Validate(); err != nil {
		t.Errorf("defaulted adaptive spec rejected: %v", err)
	}
}
