package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/plan"
)

// Campaign lifecycle states on the coordinator.
const (
	campRunning = "running"
	campDone    = "done"
	campFailed  = "failed"
)

// Errors the HTTP layer maps to status codes.
var (
	ErrNoCampaign  = errors.New("fabric: no such campaign")
	ErrNotFinished = errors.New("fabric: campaign has not finished")
	ErrClosed      = errors.New("fabric: coordinator closed")
)

// DefaultLeaseTTL is how long a shard lease lives without a heartbeat
// before the shard is reassigned.
const DefaultLeaseTTL = 15 * time.Second

// Config parameterizes a Coordinator.
type Config struct {
	// LeaseTTL is the lease duration (default DefaultLeaseTTL).
	// Workers heartbeat at TTL/3; expiry reassigns the shard.
	LeaseTTL time.Duration
	// JournalPath enables durability: campaigns, leases and shard
	// results are journaled and replayed by the next start ("" =
	// in-memory only).
	JournalPath string
	// Workload maps wire specs to workloads (default DefaultWorkload).
	// Must match the builder every joined worker uses.
	Workload WorkloadBuilder
}

// lease is one granted shard assignment.
type lease struct {
	id       string
	campaign string
	shard    int
	worker   string
	deadline time.Time
	// progress is the worker's last heartbeat-reported completed-trial
	// count, feeding the work-stealing policy and the trials gauge.
	progress int
}

// shardState tracks one plan-index range of a campaign.
type shardState struct {
	lo, hi int
	done   bool
	// recs/sdc hold the winning completion (set once, with done).
	recs []fault.TrialRecord
	sdc  []SDCOutput
	// leases are the active assignments; more than one means the shard
	// was stolen.
	leases map[string]*lease
	// round/plans are set on adaptive round-shards only: round groups
	// the shard for journal snapshots, and plans carries the planner's
	// trial window. A nil plans on an adaptive shard (a replayed round
	// the restarted driver has not regenerated yet) is not leasable.
	round int
	plans []fault.Plan
}

// camp is one cluster campaign.
type camp struct {
	id         string
	spec       CampaignSpec
	shards     []*shardState
	state      string
	err        string
	doneShards int
	// result is the merged engine result (in-memory only); resultJSON
	// is its wire rendering, which is what the journal persists.
	result     *campaign.Result
	resultJSON json.RawMessage
	started    time.Time
	finalizing bool
	// fanout is the round-shard count of an adaptive campaign (the
	// static decomposition journals len(shards) instead); notify wakes
	// the round driver on shard completions, and adaptiveRecs holds the
	// finished campaign's trial records in plan order (in-memory only).
	fanout       int
	notify       chan struct{}
	adaptiveRecs []fault.TrialRecord
}

func newCamp(id string, spec CampaignSpec, k int) *camp {
	cm := &camp{id: id, spec: spec, state: campRunning, fanout: k}
	if spec.Adaptive {
		// Round-shards are appended as the planner emits rounds.
		cm.notify = make(chan struct{}, 1)
		return cm
	}
	cm.shards = make([]*shardState, k)
	for i := range cm.shards {
		lo, hi := planWindow(spec.Trials, i, k)
		cm.shards[i] = &shardState{lo: lo, hi: hi, leases: make(map[string]*lease)}
	}
	return cm
}

// Coordinator owns the cluster's campaign table: it leases shards to
// workers, reassigns them on expiry, arbitrates duplicate completions
// and merges finished campaigns bit-identically to a single-node run.
type Coordinator struct {
	cfg     Config
	journal *journal
	build   WorkloadBuilder
	runner  *campaign.Runner

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sweepDone  chan struct{}
	finalizeWG sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	camps     map[string]*camp
	order     []*camp
	leases    map[string]*lease
	campSeq   int
	leaseSeq  int
	lastSeen  map[string]time.Time // worker id -> last contact
	trialRing trialRing

	// counters for /metrics
	leasesIssued  uint64
	leasesExpired uint64
	leasesStolen  uint64
	dupResults    uint64
	trialsDone    uint64
	roundsDone    uint64
}

// NewCoordinator builds a Coordinator, replays and compacts its
// journal (if configured) and starts the lease-expiry sweeper.
// Campaigns whose shards all completed before a crash but that never
// merged are finalized again in the background.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Workload == nil {
		cfg.Workload = DefaultWorkload
	}
	c := &Coordinator{
		cfg:       cfg,
		build:     cfg.Workload,
		runner:    &campaign.Runner{Goldens: campaign.NewGoldenCache(4)},
		camps:     make(map[string]*camp),
		leases:    make(map[string]*lease),
		lastSeen:  make(map[string]time.Time),
		sweepDone: make(chan struct{}),
	}
	c.baseCtx, c.baseCancel = context.WithCancel(context.Background())

	if cfg.JournalPath != "" {
		camps, campSeq, leaseSeq, err := replayJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		// Snapshot-on-replay compaction: the rewritten journal holds
		// live state only, so lease churn never accumulates across
		// restarts.
		if err := compactJournal(cfg.JournalPath, camps); err != nil {
			return nil, err
		}
		jl, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = jl
		c.campSeq, c.leaseSeq = campSeq, leaseSeq
		for _, cm := range camps {
			c.camps[cm.id] = cm
			c.order = append(c.order, cm)
			for _, sh := range cm.shards {
				for id, l := range sh.leases {
					c.leases[id] = l
				}
			}
			if cm.spec.Adaptive {
				if cm.state == campRunning {
					// Resume the round driver: completed rounds replay
					// from the journaled records, the partial one
					// re-leases its unfinished shards.
					c.finalizeWG.Add(1)
					go c.driveAdaptive(cm)
				}
				continue
			}
			if cm.state == campRunning && cm.doneShards == len(cm.shards) {
				c.finalize(cm)
			}
		}
	}

	go c.sweeper()
	return c, nil
}

// Close stops the sweeper, waits for in-flight merges and closes the
// journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.baseCancel()
	<-c.sweepDone
	c.finalizeWG.Wait()
	return c.journal.close()
}

// Submit registers a campaign decomposed into shards leases. It
// validates the spec by building its workload once (the same
// deterministic construction every worker will perform).
func (c *Coordinator) Submit(spec CampaignSpec, shards int) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if shards < 1 {
		shards = 1
	}
	if !spec.Adaptive && shards > spec.Trials {
		shards = spec.Trials
	}
	if _, err := c.build(spec); err != nil {
		return "", err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrClosed
	}
	c.campSeq++
	cm := newCamp(fmt.Sprintf("c%d", c.campSeq), spec, shards)
	cm.started = time.Now()
	c.camps[cm.id] = cm
	c.order = append(c.order, cm)
	if spec.Adaptive {
		// Registered under c.mu so Close (which flips closed under the
		// same lock before waiting) cannot race the Add.
		c.finalizeWG.Add(1)
	}
	c.mu.Unlock()

	c.journal.append(record{Op: "campaign", Campaign: cm.id, Spec: &cm.spec, Shards: shards})
	if spec.Adaptive {
		go c.driveAdaptive(cm)
	}
	return cm.id, nil
}

// Lease grants worker the next shard: the oldest campaign's first
// unleased shard, or — when every remaining shard is already leased —
// a duplicate lease on the one with the most remaining trials (work
// stealing; the straggler and the thief race, first journaled result
// wins). ok is false when the cluster has no work.
func (c *Coordinator) Lease(worker string) (Lease, bool, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Lease{}, false, ErrClosed
	}
	c.lastSeen[worker] = now
	c.expireLocked(now)

	cm, shard := c.pickPending()
	stolen := false
	if cm == nil {
		cm, shard = c.pickSteal(worker)
		stolen = cm != nil
	}
	if cm == nil {
		return Lease{}, false, nil
	}
	c.leaseSeq++
	sh := cm.shards[shard]
	l := &lease{
		id:       fmt.Sprintf("l%d", c.leaseSeq),
		campaign: cm.id,
		shard:    shard,
		worker:   worker,
		deadline: now.Add(c.cfg.LeaseTTL),
	}
	sh.leases[l.id] = l
	c.leases[l.id] = l
	c.leasesIssued++
	if stolen {
		c.leasesStolen++
	}
	d := l.deadline
	c.journal.append(record{
		Op: "lease", Campaign: cm.id, Lease: l.id, Shard: shard,
		Worker: worker, Deadline: &d,
	})
	return Lease{
		ID:         l.id,
		Campaign:   cm.id,
		Spec:       cm.spec,
		ShardIndex: shard,
		ShardCount: len(cm.shards),
		PlanLo:     sh.lo,
		PlanHi:     sh.hi,
		TTL:        c.cfg.LeaseTTL,
		Plans:      sh.plans,
	}, true, nil
}

// pickPending returns the oldest running campaign's first shard with
// no active lease; caller holds c.mu.
func (c *Coordinator) pickPending() (*camp, int) {
	for _, cm := range c.order {
		if cm.state != campRunning {
			continue
		}
		for i, sh := range cm.shards {
			if cm.spec.Adaptive && sh.plans == nil {
				continue // round not regenerated yet (or already folded)
			}
			if !sh.done && len(sh.leases) == 0 {
				return cm, i
			}
		}
	}
	return nil, -1
}

// pickSteal returns the singly-leased shard with the most remaining
// trials (by last heartbeat), skipping shards the asking worker
// already holds — duplicating a worker's own lease buys nothing.
// Caller holds c.mu.
func (c *Coordinator) pickSteal(worker string) (*camp, int) {
	var bestCamp *camp
	best, bestLeft := -1, 0
	for _, cm := range c.order {
		if cm.state != campRunning {
			continue
		}
		for i, sh := range cm.shards {
			if cm.spec.Adaptive && sh.plans == nil {
				continue
			}
			if sh.done || len(sh.leases) != 1 {
				continue
			}
			left := sh.hi - sh.lo
			mine := false
			for _, l := range sh.leases {
				left -= l.progress
				mine = mine || l.worker == worker
			}
			if mine || left <= 1 {
				continue
			}
			if left > bestLeft {
				bestCamp, best, bestLeft = cm, i, left
			}
		}
	}
	return bestCamp, best
}

// Heartbeat extends a lease and records the worker's progress. ok is
// false when the lease is gone (expired, stolen-and-beaten, or its
// shard already completed) — the worker should abandon the run.
func (c *Coordinator) Heartbeat(worker, leaseID string, done int) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSeen[worker] = now
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	if done > l.progress {
		c.noteTrials(now, done-l.progress)
		l.progress = done
	}
	return true
}

// Complete accepts a worker's shard result. The first completion per
// shard is journaled and wins; duplicates (from stolen or expired
// leases that finished anyway) are counted and discarded. Completing
// the last shard triggers the background merge.
func (c *Coordinator) Complete(res ShardResult) (bool, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastSeen[res.Worker] = now
	cm := c.camps[res.Campaign]
	if cm == nil {
		return false, ErrNoCampaign
	}
	if res.Shard < 0 || res.Shard >= len(cm.shards) {
		return false, fmt.Errorf("fabric: shard %d outside campaign %s (%d shards)", res.Shard, cm.id, len(cm.shards))
	}
	sh := cm.shards[res.Shard]
	if sh.done {
		c.dupResults++
		delete(c.leases, res.Lease)
		delete(sh.leases, res.Lease)
		return false, nil
	}
	recs := dedupRecords(res.Recs)
	if err := validateShard(sh, recs); err != nil {
		return false, err
	}
	if l := c.leases[res.Lease]; l != nil {
		c.noteTrials(now, (sh.hi-sh.lo)-l.progress)
	} else {
		c.noteTrials(now, sh.hi-sh.lo)
	}
	sh.done = true
	sh.recs = recs
	sh.sdc = res.SDC
	// Retire every lease on the shard: stolen twins and stale holders
	// learn on their next heartbeat and abandon the duplicate run.
	for id := range sh.leases {
		delete(c.leases, id)
	}
	sh.leases = make(map[string]*lease)
	cm.doneShards++
	// The journal write is the tie-break commit point: it happens
	// under c.mu, before the completion is acknowledged.
	c.journal.append(record{Op: "shard", Campaign: cm.id, Shard: res.Shard, Recs: recs, SDC: res.SDC})
	if cm.spec.Adaptive {
		// Wake the round driver; it folds the outcomes and decides
		// whether another round is needed. The merge-on-last-shard path
		// below is the static campaigns' only.
		select {
		case cm.notify <- struct{}{}:
		default:
		}
		return true, nil
	}
	if cm.doneShards == len(cm.shards) {
		c.finalize(cm)
	}
	return true, nil
}

// validateShard checks that records tile the shard's plan window
// exactly; deeper validation happens in the resume rebuild.
func validateShard(sh *shardState, recs []fault.TrialRecord) error {
	if len(recs) != sh.hi-sh.lo {
		return fmt.Errorf("fabric: shard result has %d records, want %d", len(recs), sh.hi-sh.lo)
	}
	for i, rec := range recs {
		if rec.Index != sh.lo+i {
			return fmt.Errorf("fabric: shard result record %d has plan index %d, want %d", i, rec.Index, sh.lo+i)
		}
	}
	return nil
}

// finalize rebuilds every shard's full fault.Result through the
// campaign resume path and merges them. Caller holds c.mu; the heavy
// work (one golden capture, zero trial executions) runs in the
// background.
func (c *Coordinator) finalize(cm *camp) {
	if cm.finalizing {
		return
	}
	cm.finalizing = true
	c.finalizeWG.Add(1)
	go func() {
		defer c.finalizeWG.Done()
		res, err := c.merge(cm)
		c.mu.Lock()
		if err != nil && errors.Is(err, context.Canceled) {
			// Shutdown interrupted the merge: leave the campaign
			// running so the restarted coordinator (which replays all
			// shards done) finalizes it again.
			cm.finalizing = false
			c.mu.Unlock()
			return
		}
		if err != nil {
			cm.state = campFailed
			cm.err = err.Error()
		} else {
			cm.state = campDone
			cm.result = res
			wire := wireResult(cm.spec, len(cm.shards), res)
			if !cm.started.IsZero() {
				wire.ElapsedSec = time.Since(cm.started).Seconds()
			}
			cm.resultJSON, _ = json.Marshal(wire)
		}
		state, errMsg, resJSON := cm.state, cm.err, cm.resultJSON
		c.mu.Unlock()
		c.journal.append(record{Op: "state", Campaign: cm.id, State: state, Err: errMsg, Result: resJSON})
	}()
}

// merge reconstructs the single-node result from the journaled shard
// records. Each shard re-runs through Runner.Run with every trial
// supplied as a resume record: no trial executes, but plans,
// histograms and the rate curve regenerate from the seed exactly as
// they did on the worker, and the retained SDC bytes reattach by plan
// index. campaign.Merge then rebuilds the unsharded result — the same
// bit-identity path RunSharded uses in one process.
func (c *Coordinator) merge(cm *camp) (*campaign.Result, error) {
	w, err := c.build(cm.spec)
	if err != nil {
		return nil, err
	}
	parts := make([]*campaign.Result, len(cm.shards))
	for i, sh := range cm.shards {
		spec, err := cm.spec.campaignSpec(w, campaign.Shard{Index: i, Count: len(cm.shards)})
		if err != nil {
			return nil, err
		}
		spec.Resume = sh.recs
		part, err := c.runner.Run(c.baseCtx, spec)
		if err != nil {
			return nil, fmt.Errorf("fabric: rebuild shard %d: %w", i, err)
		}
		for _, out := range sh.sdc {
			local := out.Index - sh.lo
			if local < 0 || local >= len(part.Fault.Trials) {
				return nil, fmt.Errorf("fabric: shard %d SDC output index %d outside window [%d,%d)", i, out.Index, sh.lo, sh.hi)
			}
			if part.Fault.Trials[local].Outcome == fault.OutcomeSDC {
				part.Fault.Trials[local].Output = out.Data
			}
		}
		parts[i] = part
	}
	return campaign.Merge(parts...)
}

// driveAdaptive is an adaptive campaign's round loop: regenerate the
// planner from the spec, and for each emitted round create (or, after
// a restart, re-adopt) its round-shards, wait until workers complete
// them all, and fold the outcomes back into the planner. Allocation
// depends only on the merged per-stratum counts, and the counts only
// on the plans, so the cluster's trial set is bit-identical to a
// single-node RunAdaptive at the same seed — for any fanout, worker
// set or restart point.
func (c *Coordinator) driveAdaptive(cm *camp) {
	defer c.finalizeWG.Done()
	fail := func(err error) {
		c.mu.Lock()
		cm.state = campFailed
		cm.err = err.Error()
		c.mu.Unlock()
		c.journal.append(record{Op: "state", Campaign: cm.id, State: campFailed, Err: err.Error()})
	}
	w, err := c.build(cm.spec)
	if err != nil {
		fail(err)
		return
	}
	golden, err := c.runner.GoldenFor(w)
	if err != nil {
		fail(err)
		return
	}
	class, err := fault.ParseClass(cm.spec.Class)
	if err != nil {
		fail(err)
		return
	}
	region, err := fault.ParseRegion(cm.spec.Region)
	if err != nil {
		fail(err)
		return
	}
	planner, err := plan.NewAdaptive(golden, plan.AdaptiveConfig{
		Class:      class,
		Region:     region,
		Seed:       cm.spec.Seed,
		Precision:  cm.spec.Precision,
		Confidence: cm.spec.Confidence,
		RoundSize:  cm.spec.RoundSize,
		MaxTrials:  cm.spec.MaxTrials,
	})
	if err != nil {
		fail(err)
		return
	}

	cursor := 0 // shards consumed by the rounds processed so far
	var recs []fault.TrialRecord
	for {
		round, ok := planner.Next()
		if !ok {
			break
		}
		outcomes, roundRecs, err := c.runRound(cm, round, &cursor)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// Shutdown mid-round: leave the campaign running so the
				// restarted coordinator resumes it from the journal.
				return
			}
			fail(err)
			return
		}
		planner.Observe(round, outcomes)
		recs = append(recs, roundRecs...)
		c.mu.Lock()
		c.roundsDone++
		c.mu.Unlock()
	}

	wire := adaptiveWireResult(cm.spec, planner)
	c.mu.Lock()
	cm.state = campDone
	cm.adaptiveRecs = recs
	if !cm.started.IsZero() {
		wire.ElapsedSec = time.Since(cm.started).Seconds()
	}
	cm.resultJSON, _ = json.Marshal(wire)
	resJSON := cm.resultJSON
	c.mu.Unlock()
	c.journal.append(record{Op: "state", Campaign: cm.id, State: campDone, Result: resJSON})
}

// runRound executes one planner round through the cluster: slice it
// into fanout round-shards (journaling the windows so a restart can
// re-home replayed results), publish the plans so workers can lease
// them, and block until every shard completes. Outcomes and records
// come back in plan order. Rounds whose shards all completed before a
// restart fold without any leasing or execution.
func (c *Coordinator) runRound(cm *camp, round plan.Round, cursor *int) ([]fault.Outcome, []fault.TrialRecord, error) {
	n := len(round.Plans)
	k := cm.fanout
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	c.mu.Lock()
	base := *cursor
	if base == len(cm.shards) {
		// Fresh round: append its shard table and journal the windows
		// (under c.mu, like every other journal commit point).
		windows := make([][2]int, k)
		for j := 0; j < k; j++ {
			lo, hi := round.Lo+j*n/k, round.Lo+(j+1)*n/k
			windows[j] = [2]int{lo, hi}
			cm.shards = append(cm.shards, &shardState{
				lo: lo, hi: hi, round: round.Index,
				leases: make(map[string]*lease),
			})
		}
		c.journal.append(record{Op: "round", Campaign: cm.id, Round: round.Index, Windows: windows})
	}
	if base+k > len(cm.shards) {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("fabric: adaptive round %d shard table diverged from journal", round.Index)
	}
	shards := cm.shards[base : base+k]
	for j, sh := range shards {
		lo, hi := round.Lo+j*n/k, round.Lo+(j+1)*n/k
		if sh.lo != lo || sh.hi != hi {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("fabric: adaptive round %d window [%d,%d) diverged from journaled [%d,%d)",
				round.Index, lo, hi, sh.lo, sh.hi)
		}
		if !sh.done {
			sh.plans = round.Plans[sh.lo-round.Lo : sh.hi-round.Lo]
		}
	}
	*cursor = base + k
	c.mu.Unlock()

	for {
		c.mu.Lock()
		pending := 0
		for _, sh := range shards {
			if !sh.done {
				pending++
			}
		}
		c.mu.Unlock()
		if pending == 0 {
			break
		}
		select {
		case <-cm.notify:
		case <-c.baseCtx.Done():
			return nil, nil, context.Canceled
		}
	}

	outcomes := make([]fault.Outcome, n)
	recs := make([]fault.TrialRecord, 0, n)
	c.mu.Lock()
	for _, sh := range shards {
		for i, rec := range sh.recs {
			outcomes[sh.lo-round.Lo+i] = rec.Outcome
			recs = append(recs, rec)
		}
		sh.plans = nil // folded: frees the plans, shard no longer leasable
	}
	c.mu.Unlock()
	return outcomes, recs, nil
}

// AdaptiveRecords returns a finished adaptive campaign's observed
// trial records in plan order — the equivalence tests compare them
// against a single-node RunAdaptive. In-memory only: nil result after
// a post-completion restart (only the wire rendering is journaled).
func (c *Coordinator) AdaptiveRecords(id string) ([]fault.TrialRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cm := c.camps[id]
	if cm == nil {
		return nil, ErrNoCampaign
	}
	if !cm.spec.Adaptive {
		return nil, fmt.Errorf("fabric: campaign %s is not adaptive", id)
	}
	if cm.state == campFailed {
		return nil, fmt.Errorf("fabric: campaign %s failed: %s", id, cm.err)
	}
	if cm.state != campDone {
		return nil, ErrNotFinished
	}
	return cm.adaptiveRecs, nil
}

// Status reports a campaign's cluster-wide progress.
func (c *Coordinator) Status(id string) (CampaignStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cm := c.camps[id]
	if cm == nil {
		return CampaignStatus{}, ErrNoCampaign
	}
	st := CampaignStatus{
		ID: cm.id, State: cm.state, Error: cm.err,
		ShardsTotal: len(cm.shards), TrialsTotal: cm.spec.Trials,
	}
	if cm.spec.Adaptive {
		// The planner grows the campaign round by round; total = the
		// allocation so far, not a fixed budget.
		st.TrialsTotal = 0
		for _, sh := range cm.shards {
			st.TrialsTotal += sh.hi - sh.lo
		}
	}
	for _, sh := range cm.shards {
		if sh.done {
			st.ShardsDone++
			st.TrialsDone += sh.hi - sh.lo
			continue
		}
		best := 0
		for _, l := range sh.leases {
			if l.progress > best {
				best = l.progress
			}
		}
		st.TrialsDone += best
	}
	return st, nil
}

// Result returns a finished campaign's wire result.
func (c *Coordinator) Result(id string) (json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cm := c.camps[id]
	if cm == nil {
		return nil, ErrNoCampaign
	}
	if cm.state == campFailed {
		return nil, fmt.Errorf("fabric: campaign %s failed: %s", id, cm.err)
	}
	if cm.state != campDone || cm.resultJSON == nil {
		return nil, ErrNotFinished
	}
	return cm.resultJSON, nil
}

// Merged returns a finished campaign's full in-memory engine result —
// the equivalence tests compare it against a single-node run. It is
// nil after a restart (only the wire rendering is journaled).
func (c *Coordinator) Merged(id string) (*campaign.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cm := c.camps[id]
	if cm == nil {
		return nil, ErrNoCampaign
	}
	if cm.state != campDone {
		return nil, ErrNotFinished
	}
	return cm.result, nil
}

// sweeper periodically expires dead leases so abandoned shards return
// to the pending pool even when no worker is asking for work.
func (c *Coordinator) sweeper() {
	defer close(c.sweepDone)
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// expireLocked drops leases past their deadline; their shards become
// pending again. Caller holds c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		if cm := c.camps[l.campaign]; cm != nil {
			delete(cm.shards[l.shard].leases, id)
		}
		c.leasesExpired++
	}
}

// trialRing is a per-second ring of cluster-wide trial completions
// backing the trials/s gauge (same shape as the service's).
type trialRing struct {
	slots [16]struct {
		sec int64
		n   uint64
	}
}

// noteTrials credits n completed trials to the ring; caller holds c.mu.
func (c *Coordinator) noteTrials(now time.Time, n int) {
	if n <= 0 {
		return
	}
	c.trialsDone += uint64(n)
	sec := now.Unix()
	slot := &c.trialRing.slots[sec%int64(len(c.trialRing.slots))]
	if slot.sec != sec {
		slot.sec = sec
		slot.n = 0
	}
	slot.n += uint64(n)
}

// trialsPerSec computes the rate over a 10s window; caller holds c.mu.
func (c *Coordinator) trialsPerSec(now time.Time) float64 {
	const window = 10 * time.Second
	cutoff := now.Add(-window).Unix()
	var n uint64
	for _, s := range c.trialRing.slots {
		if s.sec > cutoff {
			n += s.n
		}
	}
	return float64(n) / window.Seconds()
}

// WriteMetrics renders the fabric gauges in the service's text
// exposition format; the vsd /metrics endpoint appends it when the
// daemon runs as a coordinator.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	horizon := now.Add(-2 * c.cfg.LeaseTTL)
	for _, t := range c.lastSeen {
		if t.After(horizon) {
			alive++
		}
	}
	byState := map[string]int{campRunning: 0, campDone: 0, campFailed: 0}
	shardsDone, shardsTotal := 0, 0
	for _, cm := range c.camps {
		byState[cm.state]++
		shardsDone += cm.doneShards
		shardsTotal += len(cm.shards)
	}
	fmt.Fprintf(w, "# fabric coordinator metrics\n")
	fmt.Fprintf(w, "vsd_fabric_workers_alive %d\n", alive)
	fmt.Fprintf(w, "vsd_fabric_leases_active %d\n", len(c.leases))
	fmt.Fprintf(w, "vsd_fabric_leases_issued_total %d\n", c.leasesIssued)
	fmt.Fprintf(w, "vsd_fabric_leases_expired_total %d\n", c.leasesExpired)
	fmt.Fprintf(w, "vsd_fabric_leases_stolen_total %d\n", c.leasesStolen)
	fmt.Fprintf(w, "vsd_fabric_duplicate_results_total %d\n", c.dupResults)
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "vsd_fabric_campaigns{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(w, "vsd_fabric_shards_done %d\n", shardsDone)
	fmt.Fprintf(w, "vsd_fabric_shards_total %d\n", shardsTotal)
	fmt.Fprintf(w, "vsd_fabric_trials_total %d\n", c.trialsDone)
	fmt.Fprintf(w, "vsd_fabric_trials_per_sec %.1f\n", c.trialsPerSec(now))
	fmt.Fprintf(w, "vsd_fabric_adaptive_rounds_total %d\n", c.roundsDone)
}
