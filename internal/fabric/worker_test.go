package fabric

import (
	"context"
	"testing"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
)

// TestWorkerSessionReuse pins the lease-to-lease amortization:
// successive round-shard leases of one campaign share the cached
// executor session, and a lease for a different campaign rolls the
// cache over, retiring the old session.
func TestWorkerSessionReuse(t *testing.T) {
	runner := &campaign.Runner{Goldens: campaign.NewGoldenCache(4)}
	c := &workerSessions{runner: runner, build: toyBuild}
	defer c.close()

	s1, err := c.acquire(Lease{ID: "l1", Campaign: "c1", Spec: toyWireSpec()})
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	s2, err := c.acquire(Lease{ID: "l2", Campaign: "c1", Spec: toyWireSpec()})
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if s2 != s1 {
		t.Error("second lease of the same campaign did not reuse the cached session")
	}

	other := toyWireSpec()
	other.Seed = 99
	s3, err := c.acquire(Lease{ID: "l3", Campaign: "c2", Spec: other})
	if err != nil {
		t.Fatalf("rollover acquire: %v", err)
	}
	if s3 == s1 {
		t.Fatal("different campaign was served the old session")
	}
	// The rollover must have closed the retired session: a window run
	// on it is refused before any trial executes.
	if _, err := s1.sess.RunPlans(context.Background(), s1.spec, []fault.Plan{{}}, 0); err == nil {
		t.Error("retired session still accepts plan windows")
	}
	// The live session still executes.
	plans := fault.GeneratePlans(other.Seed, fault.GPR, fault.RAny,
		fault.WindowFor(fault.GPR, 0), 4, s3.sess.Golden().Taps(fault.GPR, fault.RAny))
	res, err := s3.sess.RunPlans(context.Background(), s3.spec, plans, 0)
	if err != nil {
		t.Fatalf("live session window: %v", err)
	}
	if res.Fault.Completed != len(plans) {
		t.Errorf("live session completed %d trials, want %d", res.Fault.Completed, len(plans))
	}
}
