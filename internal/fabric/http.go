package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Mount attaches the coordinator API to a mux (the vsd service mounts
// it next to the job-queue API when running with -coordinator):
//
//	POST /v1/fabric/campaigns           submit a CampaignSpec to the cluster
//	GET  /v1/fabric/campaigns/{id}      cluster-wide progress
//	GET  /v1/fabric/campaigns/{id}/result   the merged campaign result
//	POST /v1/fabric/lease               worker requests a shard lease
//	POST /v1/fabric/heartbeat           worker extends a lease, reports progress
//	POST /v1/fabric/results             worker submits a completed shard
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fabric/campaigns", c.handleSubmit)
	mux.HandleFunc("GET /v1/fabric/campaigns/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/fabric/campaigns/{id}/result", c.handleResult)
	mux.HandleFunc("POST /v1/fabric/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fabric/results", c.handleComplete)
}

// maxBodyBytes bounds protocol bodies; shard results carry retained
// SDC outputs, everything else is small.
const maxBodyBytes = 256 << 20

type submitRequest struct {
	Spec   CampaignSpec `json:"spec"`
	Shards int          `json:"shards"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Done   int    `json:"done"`
}

type okResponse struct {
	OK bool `json:"ok"`
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id, err := c.Submit(req.Spec, req.Shards)
	if err != nil {
		writeFabricError(w, err)
		return
	}
	writeFabricJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := c.Status(r.PathValue("id"))
	if err != nil {
		writeFabricError(w, err)
		return
	}
	writeFabricJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, err := c.Result(r.PathValue("id"))
	if err != nil {
		writeFabricError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	l, ok, err := c.Lease(req.Worker)
	if err != nil {
		writeFabricError(w, err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeFabricJSON(w, http.StatusOK, l)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeFabricJSON(w, http.StatusOK, okResponse{OK: c.Heartbeat(req.Worker, req.Lease, req.Done)})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var res ShardResult
	if !decodeBody(w, r, &res) {
		return
	}
	accepted, err := c.Complete(res)
	if err != nil {
		writeFabricError(w, err)
		return
	}
	writeFabricJSON(w, http.StatusOK, okResponse{OK: accepted})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeFabricJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeFabricError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoCampaign):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		code = http.StatusConflict
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeFabricJSON(w, code, map[string]string{"error": err.Error()})
}

// Client talks to a coordinator; cmd/afirun submits campaigns through
// it and fabric.Worker leases work through it.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// post sends v as JSON and decodes the response into out (when out is
// non-nil and the response is not 204).
func (cl *Client) post(ctx context.Context, path string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, apiError(resp.StatusCode, data)
	}
	if out != nil {
		return resp.StatusCode, json.Unmarshal(data, out)
	}
	return resp.StatusCode, nil
}

func (cl *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

func apiError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fabric: coordinator: %s (HTTP %d)", e.Error, code)
	}
	return fmt.Errorf("fabric: coordinator returned HTTP %d", code)
}

// Submit sends a campaign to the cluster and returns its id.
func (cl *Client) Submit(ctx context.Context, spec CampaignSpec, shards int) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if _, err := cl.post(ctx, "/v1/fabric/campaigns", submitRequest{Spec: spec, Shards: shards}, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Status fetches cluster-wide campaign progress.
func (cl *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	var st CampaignStatus
	err := cl.get(ctx, "/v1/fabric/campaigns/"+id, &st)
	return st, err
}

// Result fetches a finished campaign's merged result.
func (cl *Client) Result(ctx context.Context, id string) (*CampaignResult, error) {
	var res CampaignResult
	if err := cl.get(ctx, "/v1/fabric/campaigns/"+id+"/result", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// AdaptiveResult fetches a finished adaptive campaign's wire result
// (the same endpoint as Result, decoded into the adaptive shape).
func (cl *Client) AdaptiveResult(ctx context.Context, id string) (*AdaptiveCampaignResult, error) {
	var res AdaptiveCampaignResult
	if err := cl.get(ctx, "/v1/fabric/campaigns/"+id+"/result", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Lease asks for a shard; ok is false when the cluster has no work.
func (cl *Client) Lease(ctx context.Context, worker string) (Lease, bool, error) {
	var l Lease
	code, err := cl.post(ctx, "/v1/fabric/lease", leaseRequest{Worker: worker}, &l)
	if err != nil {
		return Lease{}, false, err
	}
	return l, code != http.StatusNoContent, nil
}

// Heartbeat extends a lease; ok false means the lease is gone and the
// worker should abandon the shard.
func (cl *Client) Heartbeat(ctx context.Context, worker, leaseID string, done int) (bool, error) {
	var out okResponse
	if _, err := cl.post(ctx, "/v1/fabric/heartbeat", heartbeatRequest{Worker: worker, Lease: leaseID, Done: done}, &out); err != nil {
		return false, err
	}
	return out.OK, nil
}

// Complete submits a finished shard; ok false means a duplicate lost
// the completion race (harmless — the winner's bytes are identical).
func (cl *Client) Complete(ctx context.Context, res ShardResult) (bool, error) {
	var out okResponse
	if _, err := cl.post(ctx, "/v1/fabric/results", res, &out); err != nil {
		return false, err
	}
	return out.OK, nil
}
