package fabric

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
)

// Worker joins a coordinator and executes leased shards through the
// campaign engine. One Worker runs one shard at a time; its trial
// parallelism inside the shard comes from the spec's Workers field.
type Worker struct {
	// ID names this worker in leases and metrics.
	ID string
	// Client reaches the coordinator.
	Client *Client
	// Runner executes shards. nil gets a private runner with a small
	// golden cache — repeated leases of the same campaign skip the
	// fault-free capture.
	Runner *campaign.Runner
	// Workload maps wire specs to workloads (default DefaultWorkload);
	// must match the coordinator's builder.
	Workload WorkloadBuilder
	// Poll is the idle backoff between lease requests when the cluster
	// has no work (default 500ms).
	Poll time.Duration
	// OnLease, if set, observes every granted lease (test hook).
	OnLease func(l Lease)
}

// Run pulls leases until ctx is canceled. Transient coordinator errors
// (it may be restarting) back off and retry; a canceled context is the
// only way out.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return fmt.Errorf("fabric: worker %q has no client", w.ID)
	}
	build := w.Workload
	if build == nil {
		build = DefaultWorkload
	}
	runner := w.Runner
	if runner == nil {
		runner = &campaign.Runner{Goldens: campaign.NewGoldenCache(4)}
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		l, ok, err := w.Client.Lease(ctx, w.ID)
		if err != nil || !ok {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if w.OnLease != nil {
			w.OnLease(l)
		}
		w.runLease(ctx, runner, build, l)
	}
}

// runLease executes one leased shard and submits the result. Failures
// are not reported back — the lease simply expires and the shard is
// reassigned, which is the same path a worker crash takes.
func (w *Worker) runLease(ctx context.Context, runner *campaign.Runner, build WorkloadBuilder, l Lease) {
	workload, err := build(l.Spec)
	if err != nil {
		return
	}
	// Plan-carrying leases (adaptive round-shards) execute exactly the
	// shipped plans; shard placement is then the coordinator's concern,
	// not a static decomposition the worker recomputes.
	shard := campaign.Shard{Index: l.ShardIndex, Count: l.ShardCount}
	if len(l.Plans) > 0 {
		shard = campaign.Shard{}
	}
	spec, err := l.Spec.campaignSpec(workload, shard)
	if err != nil {
		return
	}
	var done atomic.Int64
	spec.OnTrial = func(fault.TrialRecord) { done.Add(1) }

	// Heartbeat at TTL/3 so two beats can be lost before the lease
	// expires. A "lost" answer means the shard completed elsewhere or
	// the lease was reassigned: abandon the run.
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := l.TTL / 3
		if interval <= 0 {
			interval = DefaultLeaseTTL / 3
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				ok, err := w.Client.Heartbeat(leaseCtx, w.ID, l.ID, int(done.Load()))
				if err == nil && !ok {
					cancel()
					return
				}
			}
		}
	}()

	var res *campaign.Result
	if len(l.Plans) > 0 {
		res, err = runner.RunPlans(leaseCtx, spec, l.Plans, l.PlanLo)
	} else {
		res, err = runner.Run(leaseCtx, spec)
	}
	cancel()
	<-hbDone
	if err != nil || res == nil {
		return
	}

	// Ship back the shard's checkpoint records (plan-indexed) and
	// whatever SDC outputs the retention policy kept. Everything else
	// — histograms, curve, crash split — regenerates bit-identically
	// on the coordinator from these plus the seed.
	out := ShardResult{
		Worker:   w.ID,
		Lease:    l.ID,
		Campaign: l.Campaign,
		Shard:    l.ShardIndex,
		Recs:     make([]fault.TrialRecord, 0, len(res.Fault.Trials)),
	}
	for i := range res.Fault.Trials {
		t := &res.Fault.Trials[i]
		out.Recs = append(out.Recs, t.Record(l.PlanLo+i))
		if t.Output != nil {
			out.SDC = append(out.SDC, SDCOutput{Index: l.PlanLo + i, Data: t.Output})
		}
	}
	// Completion races the coordinator's expiry and any thief; losing
	// is harmless because every completion of this shard is
	// bit-identical.
	w.Client.Complete(ctx, out)
}
