package fabric

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
)

// Worker joins a coordinator and executes leased shards through the
// campaign engine. One Worker runs one shard at a time; its trial
// parallelism inside the shard comes from the spec's Workers field.
type Worker struct {
	// ID names this worker in leases and metrics.
	ID string
	// Client reaches the coordinator.
	Client *Client
	// Runner executes shards. nil gets a private runner with a small
	// golden cache — repeated leases of the same campaign skip the
	// fault-free capture.
	Runner *campaign.Runner
	// Workload maps wire specs to workloads (default DefaultWorkload);
	// must match the coordinator's builder.
	Workload WorkloadBuilder
	// Poll is the idle backoff between lease requests when the cluster
	// has no work (default 500ms).
	Poll time.Duration
	// OnLease, if set, observes every granted lease (test hook).
	OnLease func(l Lease)
}

// Run pulls leases until ctx is canceled. Transient coordinator errors
// (it may be restarting) back off and retry; a canceled context is the
// only way out.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil {
		return fmt.Errorf("fabric: worker %q has no client", w.ID)
	}
	build := w.Workload
	if build == nil {
		build = DefaultWorkload
	}
	runner := w.Runner
	if runner == nil {
		runner = &campaign.Runner{Goldens: campaign.NewGoldenCache(4)}
	}
	sessions := &workerSessions{runner: runner, build: build}
	defer sessions.close()
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		l, ok, err := w.Client.Lease(ctx, w.ID)
		if err != nil || !ok {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if w.OnLease != nil {
			w.OnLease(l)
		}
		w.runLease(ctx, runner, sessions, build, l)
	}
}

// workerSessions caches one open executor session per campaign (the
// latest): successive round-shard leases of the same adaptive campaign
// reuse the workload, golden resolution, worker pool and bucket
// preparations instead of paying the full cold start per lease. One
// worker runs one lease at a time, so a single slot is exactly the
// working set; a lease for a different campaign closes the old session
// and opens the session for the new one.
type workerSessions struct {
	runner *campaign.Runner
	build  WorkloadBuilder
	cur    *leaseSession
}

// leaseSession is the cached campaign execution state: the built spec
// (workload included) and the open session.
type leaseSession struct {
	campaign string
	spec     campaign.Spec
	sess     *campaign.Session
}

// acquire returns the session for l's campaign, opening one (and
// retiring the previous campaign's) if needed. Only plan-carrying
// leases go through here, so the spec is built with an empty static
// shard — plan windows come per lease.
func (c *workerSessions) acquire(l Lease) (*leaseSession, error) {
	if c.cur != nil && c.cur.campaign == l.Campaign {
		return c.cur, nil
	}
	c.close()
	workload, err := c.build(l.Spec)
	if err != nil {
		return nil, err
	}
	spec, err := l.Spec.campaignSpec(workload, campaign.Shard{})
	if err != nil {
		return nil, err
	}
	sess, err := c.runner.OpenSession(spec)
	if err != nil {
		return nil, err
	}
	c.cur = &leaseSession{campaign: l.Campaign, spec: spec, sess: sess}
	return c.cur, nil
}

// close retires the cached session, if any.
func (c *workerSessions) close() {
	if c.cur != nil {
		c.cur.sess.Close()
		c.cur = nil
	}
}

// runLease executes one leased shard and submits the result. Failures
// are not reported back — the lease simply expires and the shard is
// reassigned, which is the same path a worker crash takes.
func (w *Worker) runLease(ctx context.Context, runner *campaign.Runner, sessions *workerSessions, build WorkloadBuilder, l Lease) {
	// Plan-carrying leases (adaptive round-shards) execute exactly the
	// shipped plans; shard placement is then the coordinator's concern,
	// not a static decomposition the worker recomputes. They run through
	// the worker's cached campaign session, so successive round-shards of
	// one campaign share workload, golden, pool and bucket preparations.
	var spec campaign.Spec
	var ls *leaseSession
	if len(l.Plans) > 0 {
		var err error
		ls, err = sessions.acquire(l)
		if err != nil {
			return
		}
		spec = ls.spec
	} else {
		workload, err := build(l.Spec)
		if err != nil {
			return
		}
		spec, err = l.Spec.campaignSpec(workload, campaign.Shard{Index: l.ShardIndex, Count: l.ShardCount})
		if err != nil {
			return
		}
	}
	var done atomic.Int64
	spec.OnTrial = func(fault.TrialRecord) { done.Add(1) }

	// Heartbeat at TTL/3 so two beats can be lost before the lease
	// expires. A "lost" answer means the shard completed elsewhere or
	// the lease was reassigned: abandon the run.
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := l.TTL / 3
		if interval <= 0 {
			interval = DefaultLeaseTTL / 3
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
				ok, err := w.Client.Heartbeat(leaseCtx, w.ID, l.ID, int(done.Load()))
				if err == nil && !ok {
					cancel()
					return
				}
			}
		}
	}()

	var res *campaign.Result
	var err error
	if ls != nil {
		res, err = ls.sess.RunPlans(leaseCtx, spec, l.Plans, l.PlanLo)
	} else {
		res, err = runner.Run(leaseCtx, spec)
	}
	cancel()
	<-hbDone
	if err != nil || res == nil {
		return
	}

	// Ship back the shard's checkpoint records (plan-indexed) and
	// whatever SDC outputs the retention policy kept. Everything else
	// — histograms, curve, crash split — regenerates bit-identically
	// on the coordinator from these plus the seed.
	out := ShardResult{
		Worker:   w.ID,
		Lease:    l.ID,
		Campaign: l.Campaign,
		Shard:    l.ShardIndex,
		Recs:     make([]fault.TrialRecord, 0, len(res.Fault.Trials)),
	}
	for i := range res.Fault.Trials {
		t := &res.Fault.Trials[i]
		out.Recs = append(out.Recs, t.Record(l.PlanLo+i))
		if t.Output != nil {
			out.SDC = append(out.SDC, SDCOutput{Index: l.PlanLo + i, Data: t.Output})
		}
	}
	// Completion races the coordinator's expiry and any thief; losing
	// is harmless because every completion of this shard is
	// bit-identical.
	w.Client.Complete(ctx, out)
}
