package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
)

// toyApp mirrors the campaign package's miniature workload: a
// realistic mix of crash-prone indices, SDC-prone pixels and
// mask-prone saturated floats, cheap enough to run whole clusters of
// campaigns in-process.
func toyApp(m *fault.Machine) ([]byte, error) {
	buf := make([]uint8, 64)
	for i := range buf {
		buf[i] = uint8(i * 3)
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx])
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

// toyBuild is the WorkloadBuilder every node in these tests shares;
// the Algorithm field keys the toy workload exactly the way real specs
// key VS variants.
func toyBuild(cs CampaignSpec) (campaign.Workload, error) {
	if cs.Algorithm != "toy" {
		return DefaultWorkload(cs)
	}
	return campaign.NewWorkload("toy", "toy", toyApp), nil
}

func toyWireSpec() CampaignSpec {
	return CampaignSpec{
		Algorithm: "toy",
		Class:     "gpr",
		Trials:    60,
		Seed:      7,
		Workers:   2,
		KeepSDC:   true,
		MaxSDC:    3,
	}
}

// singleNode runs the wire spec unsharded in one process — the ground
// truth every cluster result must be bit-identical to.
func singleNode(t *testing.T, cs CampaignSpec) *campaign.Result {
	t.Helper()
	w, err := toyBuild(cs)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	spec, err := cs.campaignSpec(w, campaign.Shard{})
	if err != nil {
		t.Fatalf("translate spec: %v", err)
	}
	var runner campaign.Runner
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	return res
}

// requireIdentical compares every campaign observable of two results.
func requireIdentical(t *testing.T, label string, a, b *fault.Result) {
	t.Helper()
	if a.Completed != b.Completed {
		t.Errorf("%s: completed %d vs %d", label, a.Completed, b.Completed)
	}
	if a.Counts != b.Counts {
		t.Errorf("%s: outcome counts differ: %v vs %v", label, a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.CrashCounts, b.CrashCounts) {
		t.Errorf("%s: crash splits differ: %v vs %v", label, a.CrashCounts, b.CrashCounts)
	}
	if !reflect.DeepEqual(a.RegHist.Counts, b.RegHist.Counts) {
		t.Errorf("%s: register histograms differ", label)
	}
	if !reflect.DeepEqual(a.BitHist.Counts, b.BitHist.Counts) {
		t.Errorf("%s: bit histograms differ", label)
	}
	if !reflect.DeepEqual(a.Curve.Checkpoints, b.Curve.Checkpoints) {
		t.Errorf("%s: rate-curve checkpoints differ", label)
	}
	if !reflect.DeepEqual(a.Curve.Snapshots, b.Curve.Snapshots) {
		t.Errorf("%s: rate-curve snapshots differ", label)
	}
	if !bytes.Equal(a.GoldenOutput, b.GoldenOutput) {
		t.Errorf("%s: golden outputs differ", label)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Outcome != tb.Outcome || ta.Crash != tb.Crash || ta.Landed != tb.Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, ta.Outcome, ta.Crash, ta.Landed, tb.Outcome, tb.Crash, tb.Landed)
		}
		if (ta.Output == nil) != (tb.Output == nil) || !bytes.Equal(ta.Output, tb.Output) {
			t.Errorf("%s: trial %d SDC output retention differs", label, i)
		}
	}
}

// waitDone polls until the campaign reaches a terminal state.
func waitDone(t *testing.T, c *Coordinator, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		switch st.State {
		case campDone:
			return
		case campFailed:
			t.Fatalf("campaign failed: %s", st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in 30s")
}

// executeLease runs a lease's shard to completion locally and returns
// the ShardResult a worker would ship — the synchronous core of
// Worker.runLease, used where tests need deterministic completion
// order.
func executeLease(t *testing.T, l Lease, worker string) ShardResult {
	t.Helper()
	w, err := toyBuild(l.Spec)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	spec, err := l.Spec.campaignSpec(w, campaign.Shard{Index: l.ShardIndex, Count: l.ShardCount})
	if err != nil {
		t.Fatalf("translate spec: %v", err)
	}
	var runner campaign.Runner
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run shard %d: %v", l.ShardIndex, err)
	}
	out := ShardResult{Worker: worker, Lease: l.ID, Campaign: l.Campaign, Shard: l.ShardIndex}
	for i := range res.Fault.Trials {
		tr := &res.Fault.Trials[i]
		out.Recs = append(out.Recs, tr.Record(l.PlanLo+i))
		if tr.Output != nil {
			out.SDC = append(out.SDC, SDCOutput{Index: l.PlanLo + i, Data: tr.Output})
		}
	}
	return out
}

func metricValue(t *testing.T, c *Coordinator, name string) int {
	t.Helper()
	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		var v int
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, buf.String())
	return 0
}

// TestClusterEquivalence is the headline acceptance property: a
// campaign executed by a real HTTP cluster — two live workers plus one
// that takes a lease and dies without ever heartbeating — merges
// bit-identically to the single-node run, with the dead worker's shard
// reassigned after its lease expires.
func TestClusterEquivalence(t *testing.T) {
	coord, err := NewCoordinator(Config{
		LeaseTTL: 50 * time.Millisecond,
		Workload: toyBuild,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := &Client{Base: srv.URL}

	cs := toyWireSpec()
	id, err := client.Submit(context.Background(), cs, 5)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The doomed worker grabs one shard and is never heard from again;
	// its lease must expire and the shard reach a live worker. Waiting
	// for the expiry before any live worker exists makes the kill path
	// deterministic (otherwise a thief can duplicate the shard first).
	if _, ok, err := client.Lease(context.Background(), "doomed"); err != nil || !ok {
		t.Fatalf("doomed worker lease: ok=%v err=%v", ok, err)
	}
	expiryDeadline := time.Now().Add(5 * time.Second)
	for metricValue(t, coord, "vsd_fabric_leases_expired_total") == 0 {
		if time.Now().After(expiryDeadline) {
			t.Fatal("doomed worker's lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, name := range []string{"live-1", "live-2"} {
		w := &Worker{
			ID:       name,
			Client:   &Client{Base: srv.URL},
			Workload: toyBuild,
			Poll:     10 * time.Millisecond,
		}
		go w.Run(ctx)
	}

	waitDone(t, coord, id)
	cancel()

	merged, err := coord.Merged(id)
	if err != nil {
		t.Fatalf("merged result: %v", err)
	}
	base := singleNode(t, cs)
	requireIdentical(t, "cluster", base.Fault, merged.Fault)

	if n := metricValue(t, coord, "vsd_fabric_leases_expired_total"); n < 1 {
		t.Errorf("leases_expired_total = %d, want >= 1 (the doomed worker's)", n)
	}

	// The wire result renders the same aggregates.
	res, err := client.Result(context.Background(), id)
	if err != nil {
		t.Fatalf("wire result: %v", err)
	}
	if res.Completed != base.Fault.Completed || res.Trials != cs.Trials {
		t.Errorf("wire result completed=%d trials=%d, want %d/%d",
			res.Completed, res.Trials, base.Fault.Completed, cs.Trials)
	}
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		if res.Counts[o.String()] != base.Fault.Counts[o] {
			t.Errorf("wire count %v = %d, want %d", o, res.Counts[o.String()], base.Fault.Counts[o])
		}
	}
}

// TestClusterEquivalenceBatching runs the real staged VS workload —
// the one whose golden checkpoints feed the bucket scheduler — through
// a live cluster with batching and tiling enabled, and demands the
// merge stay bit-identical to a single-node run executed the classic
// way (batching and tiling off). The toy workload above is unstaged
// and never enters the batched path; this is the variant that proves
// checkpoint-bucket execution survives shard decomposition over the
// wire.
func TestClusterEquivalenceBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster batching equivalence is not -short")
	}
	defer func() {
		fastpath.SetBatching(true)
		fastpath.SetTiling(true)
	}()
	cs := CampaignSpec{
		Algorithm: "VS",
		Class:     "gpr",
		Scale:     "test",
		Frames:    6,
		Trials:    24,
		Seed:      0x5EED5,
		Workers:   2,
		KeepSDC:   true,
		MaxSDC:    3,
	}

	fastpath.SetBatching(false)
	fastpath.SetTiling(false)
	base := singleNode(t, cs)

	fastpath.SetBatching(true)
	fastpath.SetTiling(true)
	coord, err := NewCoordinator(Config{Workload: DefaultWorkload})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := &Client{Base: srv.URL}

	id, err := client.Submit(context.Background(), cs, 3)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, name := range []string{"live-1", "live-2"} {
		w := &Worker{
			ID:     name,
			Client: &Client{Base: srv.URL},
			Poll:   10 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	waitDone(t, coord, id)
	cancel()

	merged, err := coord.Merged(id)
	if err != nil {
		t.Fatalf("merged result: %v", err)
	}
	// Scheduler statistics are node-local and do not cross the wire
	// (shards ship trial records, and the coordinator rebuilds results
	// through the resume path), so only the campaign observables are
	// compared here; TestCampaignBatchingSchedStats covers the stats.
	requireIdentical(t, "batched cluster vs classic single-node", base.Fault, merged.Fault)
}

// TestCoordinatorRestart closes a coordinator mid-campaign and reopens
// it on the same journal: completed shards must not be re-leased, and
// the campaign must finish bit-identical to the single-node run.
func TestCoordinatorRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.journal")
	cs := toyWireSpec()

	c1, err := NewCoordinator(Config{JournalPath: path, Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	id, err := c1.Submit(cs, 4)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Complete two shards, then die.
	doneShards := map[int]bool{}
	for i := 0; i < 2; i++ {
		l, ok, err := c1.Lease("a")
		if err != nil || !ok {
			t.Fatalf("lease %d: ok=%v err=%v", i, ok, err)
		}
		doneShards[l.ShardIndex] = true
		if accepted, err := c1.Complete(executeLease(t, l, "a")); err != nil || !accepted {
			t.Fatalf("complete shard %d: accepted=%v err=%v", l.ShardIndex, accepted, err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2, err := NewCoordinator(Config{JournalPath: path, Workload: toyBuild})
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	defer c2.Close()
	st, err := c2.Status(id)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if st.ShardsDone != 2 || st.TrialsDone != 30 {
		t.Fatalf("restart replayed %d shards / %d trials done, want 2 / 30", st.ShardsDone, st.TrialsDone)
	}
	// The remaining leases must cover exactly the two unfinished shards.
	for i := 0; i < 2; i++ {
		l, ok, err := c2.Lease("b")
		if err != nil || !ok {
			t.Fatalf("post-restart lease %d: ok=%v err=%v", i, ok, err)
		}
		if doneShards[l.ShardIndex] {
			t.Fatalf("restarted coordinator re-leased completed shard %d", l.ShardIndex)
		}
		if accepted, err := c2.Complete(executeLease(t, l, "b")); err != nil || !accepted {
			t.Fatalf("complete shard %d: accepted=%v err=%v", l.ShardIndex, accepted, err)
		}
	}
	if _, ok, err := c2.Lease("b"); err != nil || ok {
		t.Fatalf("lease after all shards done: ok=%v err=%v, want no work", ok, err)
	}

	waitDone(t, c2, id)
	merged, err := c2.Merged(id)
	if err != nil {
		t.Fatalf("merged result: %v", err)
	}
	requireIdentical(t, "restarted", singleNode(t, cs).Fault, merged.Fault)
}

// TestLeaseExpiry: a worker that takes a shard and goes silent loses
// it — the next asking worker gets the same shard back.
func TestLeaseExpiry(t *testing.T) {
	c, err := NewCoordinator(Config{LeaseTTL: 50 * time.Millisecond, Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	cs := toyWireSpec()
	if _, err := c.Submit(cs, 2); err != nil {
		t.Fatalf("submit: %v", err)
	}
	l1, ok, err := c.Lease("silent")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	time.Sleep(120 * time.Millisecond) // two TTLs, no heartbeat

	if c.Heartbeat("silent", l1.ID, 3) {
		t.Error("heartbeat on an expired lease reported alive")
	}
	// Both shards are grantable again; one of the two fresh leases must
	// re-cover the expired shard.
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		l, ok, err := c.Lease("fresh")
		if err != nil || !ok {
			t.Fatalf("re-lease %d: ok=%v err=%v", i, ok, err)
		}
		got[l.ShardIndex] = true
	}
	if !got[l1.ShardIndex] {
		t.Errorf("expired shard %d was never re-leased (got %v)", l1.ShardIndex, got)
	}
	if n := metricValue(t, c, "vsd_fabric_leases_expired_total"); n < 1 {
		t.Errorf("leases_expired_total = %d, want >= 1", n)
	}
}

// TestWorkStealing: when every shard is leased, an idle worker
// duplicates the lease with the most remaining trials; whichever copy
// completes first wins and the duplicate is discarded.
func TestWorkStealing(t *testing.T) {
	c, err := NewCoordinator(Config{LeaseTTL: time.Minute, Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	cs := toyWireSpec()
	id, err := c.Submit(cs, 2) // shards [0,30) and [30,60)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	la, ok, _ := c.Lease("a")
	if !ok {
		t.Fatal("worker a got no first lease")
	}
	lb, ok, _ := c.Lease("a")
	if !ok {
		t.Fatal("worker a got no second lease")
	}
	// a is far along on its first shard, barely started on the second.
	c.Heartbeat("a", la.ID, 25)
	c.Heartbeat("a", lb.ID, 5)

	stolen, ok, err := c.Lease("thief")
	if err != nil || !ok {
		t.Fatalf("thief lease: ok=%v err=%v", ok, err)
	}
	if stolen.ShardIndex != lb.ShardIndex {
		t.Fatalf("thief got shard %d, want the laggard %d", stolen.ShardIndex, lb.ShardIndex)
	}
	if n := metricValue(t, c, "vsd_fabric_leases_stolen_total"); n != 1 {
		t.Errorf("leases_stolen_total = %d, want 1", n)
	}
	// a's own other shard is never offered back to a.
	if _, ok, _ := c.Lease("a"); ok {
		t.Error("worker a was offered a duplicate of its own lease")
	}

	// The straggler and the thief both finish the contested shard; the
	// first journaled completion wins, the duplicate is discarded.
	contested := executeLease(t, lb, "a")
	if accepted, err := c.Complete(contested); err != nil || !accepted {
		t.Fatalf("first completion: accepted=%v err=%v", accepted, err)
	}
	dup := executeLease(t, stolen, "thief")
	if accepted, err := c.Complete(dup); err != nil || accepted {
		t.Fatalf("duplicate completion: accepted=%v err=%v, want discarded", accepted, err)
	}
	if n := metricValue(t, c, "vsd_fabric_duplicate_results_total"); n != 1 {
		t.Errorf("duplicate_results_total = %d, want 1", n)
	}

	if accepted, err := c.Complete(executeLease(t, la, "a")); err != nil || !accepted {
		t.Fatalf("final completion: accepted=%v err=%v", accepted, err)
	}
	waitDone(t, c, id)
	merged, err := c.Merged(id)
	if err != nil {
		t.Fatalf("merged result: %v", err)
	}
	requireIdentical(t, "stolen", singleNode(t, cs).Fault, merged.Fault)
}

// TestShardResultValidation: results that do not tile their window are
// rejected before they can poison the merge.
func TestShardResultValidation(t *testing.T) {
	c, err := NewCoordinator(Config{Workload: toyBuild})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	if _, err := c.Submit(toyWireSpec(), 2); err != nil {
		t.Fatalf("submit: %v", err)
	}
	l, ok, _ := c.Lease("a")
	if !ok {
		t.Fatal("no lease")
	}
	res := executeLease(t, l, "a")
	res.Recs = res.Recs[:len(res.Recs)-1] // drop one trial
	if _, err := c.Complete(res); err == nil {
		t.Error("short shard result accepted")
	}
	res2 := executeLease(t, l, "a")
	res2.Recs[0].Index += 1 // mis-window: first index duplicated with second
	if _, err := c.Complete(res2); err == nil {
		t.Error("mis-indexed shard result accepted")
	}
}
