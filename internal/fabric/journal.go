package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"vsresil/internal/fault"
)

// The coordinator journal follows internal/service's JSONL shape: one
// op-tagged record per line, folded on replay, compacted to a snapshot
// after every successful replay so restarts never re-read unbounded
// lease churn. The ops:
//
//	{"op":"campaign","campaign":"c1","spec":{...},"shards":4}
//	{"op":"round","campaign":"c1","round":1,"windows":[[24,36],[36,48]]}
//	{"op":"lease","campaign":"c1","lease":"l7","shard":2,"worker":"w1","deadline":...}
//	{"op":"shard","campaign":"c1","shard":2,"recs":[...],"sdc":[...]}
//	{"op":"state","campaign":"c1","state":"done","result":{...}}
//
// A shard record is the commit point of "first journaled result wins":
// the coordinator writes it under its mutex before acknowledging a
// completion, so replay (which keeps the first shard record per index
// and drops the rest) agrees with the live tie-break.
//
// Round records exist only for adaptive campaigns: each one appends
// the round's shard windows to the campaign's shard table, so replayed
// shard results land on the right indices. The plans themselves are
// not journaled — the restarted coordinator's planner regenerates them
// (and the windows) deterministically from the spec plus the journaled
// outcomes.
type record struct {
	Op       string              `json:"op"`
	Campaign string              `json:"campaign,omitempty"`
	Spec     *CampaignSpec       `json:"spec,omitempty"`
	Shards   int                 `json:"shards,omitempty"`
	Lease    string              `json:"lease,omitempty"`
	Shard    int                 `json:"shard,omitempty"`
	Worker   string              `json:"worker,omitempty"`
	Deadline *time.Time          `json:"deadline,omitempty"`
	Recs     []fault.TrialRecord `json:"recs,omitempty"`
	SDC      []SDCOutput         `json:"sdc,omitempty"`
	State    string              `json:"state,omitempty"`
	Err      string              `json:"err,omitempty"`
	Result   json.RawMessage     `json:"result,omitempty"`
	Round    int                 `json:"round,omitempty"`
	Windows  [][2]int            `json:"windows,omitempty"`
}

// journal serializes appends; a nil *journal (no path configured) is a
// valid no-op sink, so in-memory coordinators skip every durability
// branch.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

func (jl *journal) append(rec record) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return // unserializable record: skip rather than wedge the cluster
	}
	jl.w.Write(data)
	jl.w.WriteByte('\n')
	jl.w.Flush()
}

func (jl *journal) close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.w.Flush()
	err := jl.f.Close()
	jl.f = nil
	return err
}

// replayJournal folds the journal into the coordinator's campaign
// table. Missing file means a fresh start; malformed lines (a torn
// final write) are skipped, not fatal. Live leases are restored with
// their journaled deadlines — expired ones are swept by the normal
// reassignment path once the coordinator runs.
func replayJournal(path string) (camps []*camp, maxCampSeq, maxLeaseSeq int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fabric: open journal for replay: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*camp)
	var order []*camp
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // shard records carry SDC bytes
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		switch rec.Op {
		case "campaign":
			if rec.Spec == nil || rec.Campaign == "" || rec.Spec.Validate() != nil || rec.Shards < 1 {
				continue
			}
			if byID[rec.Campaign] != nil {
				continue
			}
			cm := newCamp(rec.Campaign, *rec.Spec, rec.Shards)
			byID[rec.Campaign] = cm
			order = append(order, cm)
			maxCampSeq = maxSeq(maxCampSeq, rec.Campaign, "c")
		case "round":
			cm := byID[rec.Campaign]
			if cm == nil || !cm.spec.Adaptive || len(rec.Windows) == 0 {
				continue
			}
			for _, w := range rec.Windows {
				cm.shards = append(cm.shards, &shardState{
					lo: w[0], hi: w[1], round: rec.Round,
					leases: make(map[string]*lease),
				})
			}
		case "lease":
			cm := byID[rec.Campaign]
			if cm == nil || rec.Shard < 0 || rec.Shard >= len(cm.shards) || rec.Deadline == nil {
				continue
			}
			sh := cm.shards[rec.Shard]
			if sh.done {
				continue
			}
			sh.leases[rec.Lease] = &lease{
				id: rec.Lease, campaign: cm.id, shard: rec.Shard,
				worker: rec.Worker, deadline: *rec.Deadline,
			}
			maxLeaseSeq = maxSeq(maxLeaseSeq, rec.Lease, "l")
		case "shard":
			cm := byID[rec.Campaign]
			if cm == nil || rec.Shard < 0 || rec.Shard >= len(cm.shards) {
				continue
			}
			sh := cm.shards[rec.Shard]
			if sh.done {
				continue // first journaled result wins
			}
			sh.done = true
			sh.recs = dedupRecords(rec.Recs)
			sh.sdc = rec.SDC
			sh.leases = make(map[string]*lease)
			cm.doneShards++
		case "state":
			if cm := byID[rec.Campaign]; cm != nil && rec.State != "" {
				cm.state = rec.State
				cm.err = rec.Err
				cm.resultJSON = rec.Result
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("fabric: replay journal: %w", err)
	}
	return order, maxCampSeq, maxLeaseSeq, nil
}

// maxSeq folds an id of the form "<prefix><n>" into a running max.
func maxSeq(cur int, id, prefix string) int {
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return cur
	}
	if n, err := strconv.Atoi(id[len(prefix):]); err == nil && n > cur {
		return n
	}
	return cur
}

// dedupRecords sorts records by plan index and keeps the first of any
// duplicates — the resume path rejects duplicate indices outright, so
// a journal that double-recorded a trial (e.g. a compaction racing an
// append) must fold cleanly here.
func dedupRecords(recs []fault.TrialRecord) []fault.TrialRecord {
	if len(recs) == 0 {
		return nil
	}
	out := append([]fault.TrialRecord(nil), recs...)
	sortRecords(out)
	n := 1
	for i := 1; i < len(out); i++ {
		if out[i].Index != out[n-1].Index {
			out[n] = out[i]
			n++
		}
	}
	return out[:n]
}

// sortRecords orders trial records by plan index (insertion over the
// small per-shard slices the fabric moves; workers already send them
// ordered, so this is usually a no-op verification pass).
func sortRecords(recs []fault.TrialRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Index < recs[j-1].Index; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// snapshotRecords renders the folded campaign table back to journal
// records: campaign + completed shards + live leases for running
// campaigns, campaign + terminal state (with result) for finished
// ones. This is both the replay-time compaction and the runtime
// rewrite target.
func snapshotRecords(camps []*camp) []record {
	var recs []record
	for _, cm := range camps {
		shards := len(cm.shards)
		if cm.spec.Adaptive {
			shards = cm.fanout
		}
		recs = append(recs, record{Op: "campaign", Campaign: cm.id, Spec: &cm.spec, Shards: shards})
		if cm.spec.Adaptive {
			if cm.state != campRunning {
				// Finished adaptive campaigns replay from the state
				// record alone; the round/shard history is dead weight.
				recs = append(recs, record{Op: "state", Campaign: cm.id, State: cm.state, Err: cm.err, Result: cm.resultJSON})
				continue
			}
			// Re-emit the round structure so shard indices stay valid.
			for i := 0; i < len(cm.shards); {
				j, r := i, cm.shards[i].round
				var windows [][2]int
				for j < len(cm.shards) && cm.shards[j].round == r {
					windows = append(windows, [2]int{cm.shards[j].lo, cm.shards[j].hi})
					j++
				}
				recs = append(recs, record{Op: "round", Campaign: cm.id, Round: r, Windows: windows})
				i = j
			}
		}
		for i, sh := range cm.shards {
			if sh.done {
				recs = append(recs, record{Op: "shard", Campaign: cm.id, Shard: i, Recs: sh.recs, SDC: sh.sdc})
				continue
			}
			for _, l := range sh.leases {
				d := l.deadline
				recs = append(recs, record{
					Op: "lease", Campaign: cm.id, Lease: l.id, Shard: i,
					Worker: l.worker, Deadline: &d,
				})
			}
		}
		if cm.state != campRunning {
			recs = append(recs, record{Op: "state", Campaign: cm.id, State: cm.state, Err: cm.err, Result: cm.resultJSON})
		}
	}
	return recs
}

// compactJournal rewrites the snapshot to path atomically, dropping
// the superseded lease/shard churn accumulated before a restart.
func compactJournal(path string, camps []*camp) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fabric: compact journal: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range snapshotRecords(camps) {
		enc.Encode(rec)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fabric: compact journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fabric: compact journal: %w", err)
	}
	return os.Rename(tmp, path)
}
