package energy

import (
	"math"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func TestMeasureEmptyMachine(t *testing.T) {
	m := fault.New()
	met := DefaultModel().Measure(m)
	if met.Instructions != 0 || met.Cycles != 0 || met.IPC != 0 {
		t.Errorf("empty machine metrics: %+v", met)
	}
}

func TestMeasureKnownOps(t *testing.T) {
	m := fault.New()
	m.Ops(fault.OpInt, 100)  // 100 cycles
	m.Ops(fault.OpFloat, 50) // 100 cycles
	m.Ops(fault.OpLoad, 10)  // 25 cycles
	mo := DefaultModel()
	met := mo.Measure(m)
	if met.Instructions != 160 {
		t.Errorf("instructions = %d", met.Instructions)
	}
	wantCycles := 100.0 + 100 + 25
	if math.Abs(met.Cycles-wantCycles) > 1e-9 {
		t.Errorf("cycles = %v, want %v", met.Cycles, wantCycles)
	}
	if math.Abs(met.IPC-160/wantCycles) > 1e-12 {
		t.Errorf("IPC = %v", met.IPC)
	}
	if met.TimeSec <= 0 || met.PowerW <= mo.StaticPowerW || met.EnergyJ <= 0 {
		t.Errorf("derived metrics: %+v", met)
	}
}

func TestNormalizeBaselineIsUnity(t *testing.T) {
	m := fault.New()
	m.Ops(fault.OpInt, 1000)
	met := DefaultModel().Measure(m)
	n, err := Normalize(met, met)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if n.IPC != 1 || n.Time != 1 || n.Energy != 1 {
		t.Errorf("self-normalized = %+v", n)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	if _, err := Normalize(Metrics{}, Metrics{}); err == nil {
		t.Error("expected error for degenerate baseline")
	}
}

func TestRegionCycles(t *testing.T) {
	m := fault.New()
	restore := m.Enter(fault.RWarpInvoker)
	m.Ops(fault.OpFloat, 10)
	restore()
	m.Ops(fault.OpFloat, 5)
	mo := DefaultModel()
	if got := mo.RegionCycles(m, fault.RWarpInvoker); got != 20 {
		t.Errorf("warp cycles = %v, want 20", got)
	}
	if got := mo.RegionCycles(m, fault.RApp); got != 10 {
		t.Errorf("app cycles = %v, want 10", got)
	}
}

// The Fig 5 mechanism: approximate variants run fewer operations of
// the same mix, so their normalized time and energy drop below 1 while
// IPC stays close to 1.
func TestApproximationsReduceEnergyNotIPC(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 10
	frames := virat.Input1(p).Frames()
	mo := DefaultModel()

	run := func(alg vs.Algorithm) Metrics {
		app := vs.New(vs.DefaultConfig(alg), len(frames))
		m := fault.New()
		if _, err := app.Run(frames, m); err != nil {
			t.Fatalf("%v run: %v", alg, err)
		}
		return mo.Measure(m)
	}

	base := run(vs.AlgVS)
	for _, alg := range []vs.Algorithm{vs.AlgRFD, vs.AlgKDS, vs.AlgSM} {
		met := run(alg)
		n, err := Normalize(met, base)
		if err != nil {
			t.Fatalf("normalize %v: %v", alg, err)
		}
		if n.Time >= 1.02 {
			t.Errorf("%v normalized time = %v, expected < 1", alg, n.Time)
		}
		if n.Energy >= 1.02 {
			t.Errorf("%v normalized energy = %v, expected < 1", alg, n.Energy)
		}
		if n.IPC < 0.85 || n.IPC > 1.15 {
			t.Errorf("%v normalized IPC = %v, expected ~1", alg, n.IPC)
		}
		// Energy tracks time when power is ~flat.
		if math.Abs(n.Energy-n.Time) > 0.15 {
			t.Errorf("%v energy (%v) does not track time (%v)", alg, n.Energy, n.Time)
		}
	}
}

func BenchmarkMeasure(b *testing.B) {
	m := fault.New()
	m.Ops(fault.OpInt, 12345)
	m.Ops(fault.OpFloat, 999)
	mo := DefaultModel()
	for i := 0; i < b.N; i++ {
		mo.Measure(m)
	}
}
