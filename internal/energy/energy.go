// Package energy models the performance and energy characterization
// of Fig 5. The paper measures IPC, execution time and energy on an
// IBM POWER server and observes that (a) IPC — and therefore power —
// stays nearly constant across the baseline and the approximate
// algorithms, and (b) energy consequently tracks execution time.
//
// This reproduction derives the same quantities from the operation
// accounting gathered through the probe seam during a run — by the
// fault machine in campaigns or a probe.Meter in live serving: each
// operation class has a nominal CPI, cycles follow from the op mix,
// and the energy model charges a constant-power core for the computed
// runtime. Because approximations reduce the *amount* of work (frames
// dropped, key points skipped, single-NN matching) without changing
// the *kind* of work, IPC stays flat and energy scales with time —
// the exact mechanism behind Fig 5.
package energy

import (
	"fmt"

	"vsresil/internal/probe"
)

// Model holds the machine parameters of the simulated core, loosely
// based on a server-class in-order issue approximation of the paper's
// POWER machine.
type Model struct {
	// CPI is the average cycles per operation for each op class.
	CPI [probe.NumOpClasses]float64
	// FrequencyHz is the core clock.
	FrequencyHz float64
	// StaticPowerW is the leakage + uncore power drawn regardless of
	// activity.
	StaticPowerW float64
	// DynamicPowerW is the switching power at full activity (IPC = 1).
	DynamicPowerW float64
}

// DefaultModel returns the parameters used throughout the
// reproduction.
func DefaultModel() Model {
	return Model{
		CPI: [probe.NumOpClasses]float64{
			probe.OpInt:    1.0,
			probe.OpFloat:  2.0,
			probe.OpLoad:   2.5,
			probe.OpStore:  2.0,
			probe.OpBranch: 1.3,
		},
		FrequencyHz:   3.0e9,
		StaticPowerW:  35,
		DynamicPowerW: 85,
	}
}

// Metrics summarizes one application run.
type Metrics struct {
	Instructions uint64
	Cycles       float64
	IPC          float64
	TimeSec      float64
	PowerW       float64
	EnergyJ      float64
}

// Measure derives run metrics from the op accounting of a completed
// run — any probe.Counters: a campaign's fault machine or a metered
// serving run's probe.Meter.
func (mo Model) Measure(cs probe.Counters) Metrics {
	var instructions uint64
	var cycles float64
	for c := probe.OpClass(0); c < probe.NumOpClasses; c++ {
		n := probe.TotalOps(cs, c)
		instructions += n
		cycles += float64(n) * mo.CPI[c]
	}
	met := Metrics{Instructions: instructions, Cycles: cycles}
	if cycles > 0 {
		met.IPC = float64(instructions) / cycles
	}
	if mo.FrequencyHz > 0 {
		met.TimeSec = cycles / mo.FrequencyHz
	}
	met.PowerW = mo.StaticPowerW + mo.DynamicPowerW*met.IPC
	met.EnergyJ = met.PowerW * met.TimeSec
	return met
}

// RegionCycles returns the cycles attributed to one region — the
// per-function breakdown behind the Fig 8 execution profile.
func (mo Model) RegionCycles(cs probe.Counters, r probe.Region) float64 {
	var cycles float64
	for c := probe.OpClass(0); c < probe.NumOpClasses; c++ {
		cycles += float64(cs.OpCount(r, c)) * mo.CPI[c]
	}
	return cycles
}

// Normalized expresses this run's metrics relative to a baseline run,
// the form Fig 5 reports (values normalized to the corresponding
// baseline VS).
type Normalized struct {
	IPC    float64
	Time   float64
	Energy float64
}

// Normalize divides the metrics by the baseline's.
func Normalize(run, baseline Metrics) (Normalized, error) {
	if baseline.IPC == 0 || baseline.TimeSec == 0 || baseline.EnergyJ == 0 {
		return Normalized{}, fmt.Errorf("energy: degenerate baseline %+v", baseline)
	}
	return Normalized{
		IPC:    run.IPC / baseline.IPC,
		Time:   run.TimeSec / baseline.TimeSec,
		Energy: run.EnergyJ / baseline.EnergyJ,
	}, nil
}
