package fault

import (
	"fmt"
	"strings"
)

// ParseClass maps a register-class name to a Class: "gpr" or "fpr",
// case-insensitively; "" defaults to GPR. The CLIs and the vsd wire
// format share this parser.
func ParseClass(name string) (Class, error) {
	switch strings.ToLower(name) {
	case "", "gpr":
		return GPR, nil
	case "fpr":
		return FPR, nil
	default:
		return 0, fmt.Errorf("fault: unknown register class %q (want gpr or fpr)", name)
	}
}

// ParseRegion maps a function name to an injection region,
// case-insensitively; "" defaults to RAny (whole application).
func ParseRegion(name string) (Region, error) {
	if name == "" {
		return RAny, nil
	}
	for r := Region(0); r < NumRegions; r++ {
		if strings.EqualFold(r.String(), name) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown region %q", name)
}
