// Package fault reproduces the paper's Application Fault Injection
// (AFI) tool: single-bit flips in the architectural register file
// (GPRs and FPRs) at a uniformly random point of the application's
// execution, with outcomes classified as Mask, SDC, Crash or Hang
// (§V-A, §V-B).
//
// # Fault model
//
// The original AFI perturbs an unmodified binary's register state from
// outside the process. A pure-Go reproduction cannot reach machine
// registers, so the pipeline is instrumented with *taps*: every
// architecturally meaningful value crossing (array indices, loop
// bounds, packed pixel bytes, descriptor words, floating-point
// intermediates) flows through a Machine. Each tap advances a
// dynamic-instruction counter — the analogue of the execution cycle at
// which AFI fires.
//
// A Plan picks a register class (GPR/FPR), a register id in [0,32), a
// bit in [0,64) and a cycle (tap index). Because a bit flipped in a
// physical register only matters if the register holds a live value
// that is subsequently read, the machine models liveness with a
// *window*: the flip lands at the planned cycle and corrupts the first
// tapped value within the next Window taps whose attributed register
// (a deterministic hash of the tap index) matches the planned
// register. If no such tap occurs inside the window, the flipped
// register was dead or is rewritten first and the fault is masked —
// exactly the dominant masking mechanism the paper reports. GPR values
// have long lifetimes (large window); FPR values in this workload are
// transient conversions (§VI-A), giving them a small window and hence
// the paper's >99% FPR masking.
//
// Values narrower than the 64-bit register (e.g. 8-bit pixels) are
// truncated on write-back by the caller, so flips in high bits of
// packed data are architecturally masked, again matching hardware.
//
// Outcome detection mirrors AFI's Fault Monitor: a recovered runtime
// panic is a Crash (segmentation-fault analogue), an application error
// return is a Crash (abort analogue), exceeding a step budget is a
// Hang, a byte-identical output is a Mask and anything else is an SDC.
package fault

import (
	"fmt"
	"math"

	"vsresil/internal/probe"
	"vsresil/internal/stats"
)

// Class selects the register file under test.
type Class uint8

// Register classes, matching the paper's separate GPR and FPR
// campaigns.
const (
	GPR Class = iota
	FPR
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case GPR:
		return "GPR"
	case FPR:
		return "FPR"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Region identifies the function-level scope a tap executes in. The
// type (and its constants below) now lives in package probe — the
// instrumentation seam shared by every sink — and is aliased here so
// campaign code and plans keep reading naturally as fault.Region.
type Region = probe.Region

// Regions of the video summarization application, re-exported from
// package probe. RWarpInvoker and RRemapBilinear are the paper's two
// hot functions (WarpPerspective's callees).
const (
	RApp           = probe.RApp
	RFASTDetect    = probe.RFASTDetect
	RORBDescribe   = probe.RORBDescribe
	RMatch         = probe.RMatch
	RRANSAC        = probe.RRANSAC
	RWarpInvoker   = probe.RWarpInvoker
	RRemapBilinear = probe.RRemapBilinear
	RBlend         = probe.RBlend
	RDecode        = probe.RDecode
	NumRegions     = probe.NumRegions

	// RAny is used in plans to mean "no region restriction".
	RAny = probe.RAny
)

// OpClass categorizes accounted operations for the performance/energy
// model (package energy); aliased from package probe.
type OpClass = probe.OpClass

// Operation classes, re-exported from package probe.
const (
	OpInt        = probe.OpInt
	OpFloat      = probe.OpFloat
	OpLoad       = probe.OpLoad
	OpStore      = probe.OpStore
	OpBranch     = probe.OpBranch
	NumOpClasses = probe.NumOpClasses
)

// NumRegisters is the architectural register file size per class (the
// paper's POWER machine has 32 GPRs and 32 FPRs; Fig 9b histograms
// injections over 32 GPRs).
const NumRegisters = 32

// RegisterBits is the width of each architectural register.
const RegisterBits = 64

// Plan describes a single fault-injection experiment.
type Plan struct {
	Class  Class
	Reg    int    // register id in [0, NumRegisters)
	Bit    int    // bit position in [0, RegisterBits)
	Site   uint64 // dynamic tap index (the "cycle") within Class (and Region if set)
	Window uint64 // liveness window in taps; 0 means never hits (always masked)
	Region Region // RAny for whole-program injection
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	return fmt.Sprintf("%s r%d bit%d site%d win%d region=%s",
		p.Class, p.Reg, p.Bit, p.Site, p.Window, p.Region)
}

// hangError is the sentinel panic value raised when the step budget is
// exhausted; the trial runner maps it to OutcomeHang.
type hangError struct{ steps uint64 }

func (h hangError) Error() string {
	return fmt.Sprintf("fault: step budget exhausted after %d steps", h.steps)
}

// maskResolved is the sentinel panic value raised by the early-mask
// cutoff: the plan's liveness window expired without the flip landing
// on a live value, so every tap so far returned its input unchanged
// and the rest of the run is provably the golden run. The trial runner
// maps it to OutcomeMask with Landed=false — exactly what running the
// suffix to completion would classify.
type maskResolved struct{}

// Machine carries fault-injection state and operation accounting
// through one run of the application — end to end for golden captures,
// or from a restored stage boundary onward for campaign trials that
// skip their fault-free prefix (the counters are then fast-forwarded
// with SeedCounters so the suffix taps index identically). It is the
// injecting implementation of probe.Sink — the stage packages accept
// any Sink, and campaigns thread a Machine through that seam. Tap
// methods remain nil-safe for legacy call sites, but uninstrumented
// runs should use probe.Nop{} (the devirtualized clean path) rather
// than a nil *Machine.
//
// Machine is not safe for concurrent use; every trial gets its own.
type Machine struct {
	plan *Plan

	region Region

	gprCount uint64 // dynamic GPR-class taps so far
	fprCount uint64 // dynamic FPR-class taps so far

	// Region-scoped tap counters, used when the plan restricts the
	// injection to a function (Fig 11b).
	regionGPR [NumRegions]uint64
	regionFPR [NumRegions]uint64

	steps uint64
	// stepLimit is the hang threshold in taps: one compare per step,
	// with ^uint64(0) standing in for "unlimited" so golden runs pay no
	// extra branch.
	stepLimit uint64

	// armedGPR/armedFPR say a still-unresolved plan targets that class.
	// At most one is ever set; both are false on golden machines and
	// after the plan fires or conclusively misses, which keeps the tap
	// fast path to a single bool test instead of a plan dereference.
	armedGPR bool
	armedFPR bool
	injected bool // a bit was actually flipped

	// earlyMask makes a window expiry without injection abandon the
	// run via the maskResolved sentinel instead of executing the
	// (provably golden) suffix. Only campaign trial machines enable it;
	// see EnableEarlyMask.
	earlyMask bool

	ops [NumRegions][NumOpClasses]uint64

	// regionStack holds the regions saved by Enter; restoreFn pops it.
	// Sharing one preallocated restore function across all Enter calls
	// keeps Enter allocation-free even when called through the generic
	// kernels, where a per-call closure could not be stack-allocated.
	regionStack []Region
	restoreFn   func()
}

// Machine is the injecting probe.Sink.
var _ probe.Sink = (*Machine)(nil)

// Machine's op accounting drives the energy/profilesim models.
var _ probe.Counters = (*Machine)(nil)

// New returns a counting machine with no fault plan (a golden run).
func New() *Machine {
	m := &Machine{region: RApp, stepLimit: ^uint64(0), regionStack: make([]Region, 0, 8)}
	m.restoreFn = m.restoreRegion
	return m
}

// NewWithPlan returns a machine that will execute the given plan.
// stepBudget bounds total taps before the run is declared hung; use 0
// for unlimited (golden runs).
func NewWithPlan(p Plan, stepBudget uint64) *Machine {
	m := &Machine{plan: &p, stepLimit: stepBudget, region: RApp, regionStack: make([]Region, 0, 8)}
	if stepBudget == 0 {
		m.stepLimit = ^uint64(0)
	}
	m.armedGPR = p.Class == GPR
	m.armedFPR = p.Class == FPR
	m.restoreFn = m.restoreRegion
	return m
}

// restoreRegion pops the region saved by the matching Enter. Enter and
// its restore pair LIFO (callers defer the restore), so a shared pop
// is equivalent to per-call capture.
func (m *Machine) restoreRegion() {
	if n := len(m.regionStack); n > 0 {
		m.region = m.regionStack[n-1]
		m.regionStack = m.regionStack[:n-1]
	}
}

// Injected reports whether the plan's bit flip actually landed on a
// live value during the run.
func (m *Machine) Injected() bool {
	if m == nil {
		return false
	}
	return m.injected
}

// Resolved reports that no armed plan remains: the flip either landed
// (Injected) or its liveness window conclusively expired. Golden
// machines (no plan) are resolved from the start. From a resolved
// machine's point of view every future tap returns its input
// unchanged, which is what licenses the inert kernel fast path.
func (m *Machine) Resolved() bool {
	if m == nil {
		return true
	}
	return !m.armedGPR && !m.armedFPR
}

// EnableEarlyMask arms the resolved-plan cutoff: if the plan's window
// expires without the flip landing, the machine abandons the run (via
// an internal sentinel panic the campaign runner classifies) instead
// of executing the suffix. The cutoff is sound exactly because a
// never-landed plan leaves every tapped value untouched: the run's
// dataflow is the golden run's, its output would compare equal, and
// the hang budget (a multiple of golden steps) cannot expire on the
// golden path. Campaign trial machines enable it behind the
// fastpath.Batching gate; machines whose ops/taps are read to
// completion (golden captures, meters) must not.
func (m *Machine) EnableEarlyMask() {
	if m != nil {
		m.earlyMask = true
	}
}

// CanSkipTaps reports whether a kernel about to execute at most span
// taps may run tap-free: no armed plan site is reachable within the
// span (so no tap could fire, arm-check or disarm) and the hang budget
// cannot expire inside it. span's class and region counters must be
// upper bounds on the kernel's tap footprint; Steps must bound the
// total. Callers that take the skip must afterwards bulk-advance the
// counters by the kernel's exact footprint with AdvanceTaps, so that
// every later tap indexes the site space exactly as if the kernel had
// executed its instrumented loop.
func (m *Machine) CanSkipTaps(span TapCounters) bool {
	if m == nil {
		return true
	}
	if m.steps+span.Steps > m.stepLimit {
		return false
	}
	if m.armedGPR {
		p := m.plan
		scoped, need := m.gprCount, span.GPR
		if p.Region != RAny {
			scoped, need = m.regionGPR[p.Region], span.RegionGPR[p.Region]
		}
		// All in-kernel tap indices are scoped..scoped+need-1; they stay
		// strictly below the site iff scoped+need <= Site. (An already
		// expired window fails this too — the next in-region tap must
		// run instrumented so it performs the disarm.)
		if scoped+need > p.Site {
			return false
		}
	}
	if m.armedFPR {
		p := m.plan
		scoped, need := m.fprCount, span.FPR
		if p.Region != RAny {
			scoped, need = m.regionFPR[p.Region], span.RegionFPR[p.Region]
		}
		if scoped+need > p.Site {
			return false
		}
	}
	return true
}

// AdvanceTaps bulk-advances the machine's tap counters by span — the
// exact footprint of a kernel that ran tap-free after CanSkipTaps.
// Register attribution hashes whole-program class counters and plan
// sites index scoped counters, so advancing all families exactly keeps
// every subsequent tap bit-identical to the instrumented execution.
func (m *Machine) AdvanceTaps(span TapCounters) {
	if m == nil {
		return
	}
	m.steps += span.Steps
	m.gprCount += span.GPR
	m.fprCount += span.FPR
	for r := range m.regionGPR {
		m.regionGPR[r] += span.RegionGPR[r]
		m.regionFPR[r] += span.RegionFPR[r]
	}
}

// OpsIn records n operations of class c in region r regardless of the
// current region — the bulk-accounting entry for inert kernels, whose
// instrumented loops would have attributed per-tap ops to the regions
// they swap through.
func (m *Machine) OpsIn(r Region, c OpClass, n uint64) {
	if m == nil || r >= NumRegions || c >= NumOpClasses {
		return
	}
	m.ops[r][c] += n
}

// GPRTaps returns the number of GPR-class taps executed.
func (m *Machine) GPRTaps() uint64 {
	if m == nil {
		return 0
	}
	return m.gprCount
}

// FPRTaps returns the number of FPR-class taps executed.
func (m *Machine) FPRTaps() uint64 {
	if m == nil {
		return 0
	}
	return m.fprCount
}

// RegionTaps returns the number of taps of class c executed inside
// region r.
func (m *Machine) RegionTaps(c Class, r Region) uint64 {
	if m == nil || r >= NumRegions {
		return 0
	}
	if c == GPR {
		return m.regionGPR[r]
	}
	return m.regionFPR[r]
}

// Steps returns the dynamic step count (total taps).
func (m *Machine) Steps() uint64 {
	if m == nil {
		return 0
	}
	return m.steps
}

// OpCount returns the accounted operations of the given class within
// region r.
func (m *Machine) OpCount(r Region, c OpClass) uint64 {
	if m == nil || r >= NumRegions || c >= NumOpClasses {
		return 0
	}
	return m.ops[r][c]
}

// TotalOps returns the accounted operations of class c across all
// regions.
func (m *Machine) TotalOps(c OpClass) uint64 {
	if m == nil {
		return 0
	}
	var t uint64
	for r := Region(0); r < NumRegions; r++ {
		t += m.ops[r][c]
	}
	return t
}

// Enter switches the current region and returns a restore function;
// use as: defer m.Enter(fault.RMatch)().
func (m *Machine) Enter(r Region) func() {
	if m == nil {
		return func() {}
	}
	m.regionStack = append(m.regionStack, m.region)
	if r < NumRegions {
		m.region = r
	}
	return m.restoreFn
}

// Swap switches the current region and returns the previous one. It
// is the allocation-free alternative to Enter for per-pixel hot paths:
//
//	prev := m.Swap(fault.RRemapBilinear)
//	...
//	m.Swap(prev)
func (m *Machine) Swap(r Region) Region {
	if m == nil {
		return RApp
	}
	prev := m.region
	if r < NumRegions {
		m.region = r
	}
	return prev
}

// CurrentRegion returns the active accounting region.
func (m *Machine) CurrentRegion() Region {
	if m == nil {
		return RApp
	}
	return m.region
}

// Ops records n operations of class c in the current region. Kernels
// call this with bulk counts (e.g. once per scanline) so accounting
// overhead stays negligible.
func (m *Machine) Ops(c OpClass, n uint64) {
	if m == nil || c >= NumOpClasses {
		return
	}
	m.ops[m.region][c] += n
}

func (m *Machine) bumpStep() {
	m.steps++
	if m.steps > m.stepLimit {
		panic(hangError{steps: m.steps})
	}
}

// tapGPR is the common GPR-class tap. It returns v with the planned
// bit flipped if this tap is the injection target.
func (m *Machine) tapGPR(v uint64) uint64 {
	idx := m.gprCount
	m.gprCount++
	m.regionGPR[m.region]++
	m.ops[m.region][OpInt]++
	m.bumpStep()
	if !m.armedGPR {
		return v
	}
	p := m.plan
	site := idx
	if p.Region != RAny {
		if p.Region != m.region {
			return v
		}
		site = m.regionGPR[m.region] - 1
	}
	if site < p.Site {
		return v
	}
	if site >= p.Site+p.Window {
		m.armedGPR = false // register rewritten or dead: fault masked
		if m.earlyMask {
			panic(maskResolved{})
		}
		return v
	}
	if int(stats.Hash64(idx)%NumRegisters) != p.Reg {
		return v
	}
	m.armedGPR = false
	m.injected = true
	return v ^ (1 << uint(p.Bit))
}

// tapFPR is the common FPR-class tap on the raw IEEE-754 bits.
func (m *Machine) tapFPR(bits uint64) uint64 {
	idx := m.fprCount
	m.fprCount++
	m.regionFPR[m.region]++
	m.ops[m.region][OpFloat]++
	m.bumpStep()
	if !m.armedFPR {
		return bits
	}
	p := m.plan
	site := idx
	if p.Region != RAny {
		if p.Region != m.region {
			return bits
		}
		site = m.regionFPR[m.region] - 1
	}
	if site < p.Site {
		return bits
	}
	if site >= p.Site+p.Window {
		m.armedFPR = false
		if m.earlyMask {
			panic(maskResolved{})
		}
		return bits
	}
	if int(stats.Hash64(idx^0xF0F0)%NumRegisters) != p.Reg {
		return bits
	}
	m.armedFPR = false
	m.injected = true
	return bits ^ (1 << uint(p.Bit))
}

// Idx taps an address-forming integer (array index, offset, stride).
// Corruption of high bits typically produces out-of-bounds accesses —
// the paper's dominant GPR crash mechanism (92% segmentation faults).
func (m *Machine) Idx(v int) int {
	if m == nil {
		return v
	}
	return int(int64(m.tapGPR(uint64(int64(v)))))
}

// Cnt taps a loop bound or trip count. Corruption can inflate the
// bound, which the step budget eventually classifies as a Hang.
func (m *Machine) Cnt(v int) int {
	if m == nil {
		return v
	}
	return int(int64(m.tapGPR(uint64(int64(v)))))
}

// Pix taps an 8-bit pixel held in a 64-bit register. The write-back
// truncation masks flips in bits 8..63 exactly as a byte store from a
// wide register would.
func (m *Machine) Pix(v uint8) uint8 {
	if m == nil {
		return v
	}
	return uint8(m.tapGPR(uint64(v)))
}

// Word taps a full-width integer datum (descriptor word, accumulator).
func (m *Machine) Word(v uint64) uint64 {
	if m == nil {
		return v
	}
	return m.tapGPR(v)
}

// F64 taps a floating-point intermediate held in an FPR.
func (m *Machine) F64(v float64) float64 {
	if m == nil {
		return v
	}
	return math.Float64frombits(m.tapFPR(math.Float64bits(v)))
}
