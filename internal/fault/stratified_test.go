package fault

import (
	"context"
	"math"
	"testing"
)

func TestBitGroupBounds(t *testing.T) {
	total := 0
	for bg := BitGroup(0); bg < NumBitGroups; bg++ {
		lo, hi := bg.bounds()
		if lo > hi || lo < 0 || hi > 63 {
			t.Errorf("%s bounds [%d,%d]", bg, lo, hi)
		}
		total += bg.groupWidth()
		if bg.String() == "" {
			t.Error("empty bit group string")
		}
	}
	if total != RegisterBits {
		t.Errorf("bit groups cover %d bits, want %d", total, RegisterBits)
	}
	if BitGroup(9).String() == "" {
		t.Error("unknown bit group string")
	}
}

func TestStratumRatesEmpty(t *testing.T) {
	var s Stratum
	for _, r := range s.Rates() {
		if r != 0 {
			t.Error("empty stratum rates should be zero")
		}
	}
}

func TestStratifiedCampaignStructure(t *testing.T) {
	res, err := RunStratifiedCampaign(context.Background(), StratifiedConfig{
		TrialsPerStratum: 10,
		Class:            GPR,
		Seed:             1,
		Workers:          2,
	}, toyApp)
	if err != nil {
		t.Fatalf("RunStratifiedCampaign: %v", err)
	}
	if len(res.Strata) == 0 {
		t.Fatal("no strata")
	}
	if res.Trials != len(res.Strata)*10 {
		t.Errorf("trials = %d, want %d", res.Trials, len(res.Strata)*10)
	}
	var popSum uint64
	for i := range res.Strata {
		s := &res.Strata[i]
		popSum += s.Population
		total := 0
		for _, c := range s.Counts {
			total += c
		}
		if total != 10 {
			t.Errorf("stratum %s/%s sampled %d, want 10", s.Region, s.Bits, total)
		}
	}
	if popSum != res.TotalPopulation {
		t.Error("population sum mismatch")
	}
	// Weighted rates are a convex combination: they sum to 1.
	var sum float64
	for _, r := range res.WeightedRates() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weighted rates sum to %v", sum)
	}
}

func TestStratifiedMatchesUniformEstimate(t *testing.T) {
	// The Relyzer-style weighted estimate should agree with a plain
	// uniform campaign on the same app within statistical noise.
	uniform, err := RunCampaign(context.Background(), Config{
		Trials: 600, Class: GPR, Region: RAny, Seed: 5, Workers: 2,
	}, toyApp)
	if err != nil {
		t.Fatalf("uniform campaign: %v", err)
	}
	strat, err := RunStratifiedCampaign(context.Background(), StratifiedConfig{
		TrialsPerStratum: 60, Class: GPR, Seed: 5, Workers: 2,
	}, toyApp)
	if err != nil {
		t.Fatalf("stratified campaign: %v", err)
	}
	u := uniform.Rates()
	s := strat.WeightedRates()
	for o := Outcome(0); o < NumOutcomes; o++ {
		if d := math.Abs(u[o] - s[o]); d > 0.12 {
			t.Errorf("%s: uniform %.3f vs stratified %.3f (diff %.3f)", o, u[o], s[o], d)
		}
	}
}

func TestStratifiedNoTaps(t *testing.T) {
	app := func(m *Machine) ([]byte, error) { return []byte{1}, nil }
	if _, err := RunStratifiedCampaign(context.Background(), StratifiedConfig{
		TrialsPerStratum: 5, Class: GPR,
	}, app); err == nil {
		t.Error("expected ErrNoTaps")
	}
}

func TestStratifiedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStratifiedCampaign(ctx, StratifiedConfig{
		TrialsPerStratum: 1000, Class: GPR, Seed: 1,
	}, toyApp); err == nil {
		t.Error("expected cancellation error")
	}
}

func TestStratifiedGoldenFailure(t *testing.T) {
	app := func(m *Machine) ([]byte, error) { return nil, context.Canceled }
	if _, err := RunStratifiedCampaign(context.Background(), StratifiedConfig{
		TrialsPerStratum: 1, Class: GPR,
	}, app); err == nil {
		t.Error("expected golden failure error")
	}
}
