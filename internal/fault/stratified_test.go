package fault

import "testing"

func TestBitGroupBounds(t *testing.T) {
	total := 0
	for bg := BitGroup(0); bg < NumBitGroups; bg++ {
		lo, hi := bg.Bounds()
		if lo > hi || lo < 0 || hi > 63 {
			t.Errorf("%s bounds [%d,%d]", bg, lo, hi)
		}
		total += bg.Width()
		if bg.String() == "" {
			t.Error("empty bit group string")
		}
	}
	if total != RegisterBits {
		t.Errorf("bit groups cover %d bits, want %d", total, RegisterBits)
	}
	if BitGroup(9).String() == "" {
		t.Error("unknown bit group string")
	}
}

func TestStratumRatesEmpty(t *testing.T) {
	var s Stratum
	for _, r := range s.Rates() {
		if r != 0 {
			t.Error("empty stratum rates should be zero")
		}
	}
}
