package fault

import (
	"fmt"
	"sort"
)

// CheckpointSchema versions the golden checkpoint layout: the set of
// stage boundaries an application snapshots and the meaning of the
// counters recorded at each. Any change to where the pipeline places
// its boundaries — or to the tap stream between them — must bump this
// constant; the drift-guard test pins the golden counter stream per
// schema version, so a silent change fails loudly instead of quietly
// invalidating resumed trials.
const CheckpointSchema = 1

// TapCounters is a point-in-time snapshot of a Machine's dynamic tap
// counters — the coordinates of a stage boundary in the injection-site
// space. Op accounting is deliberately excluded: trial machines' op
// counts are never read (only golden and metered runs feed the energy
// model), so resumed trials do not need them.
type TapCounters struct {
	// Steps is the total tap count (the hang-budget clock).
	Steps uint64
	// GPR and FPR are the whole-program per-class tap counts.
	GPR, FPR uint64
	// RegionGPR and RegionFPR are the per-region per-class tap counts.
	RegionGPR, RegionFPR [NumRegions]uint64
}

// For returns the counter that indexes the injection-site space of
// class c scoped to region r (RAny means whole-program).
func (tc *TapCounters) For(c Class, r Region) uint64 {
	if r == RAny {
		if c == GPR {
			return tc.GPR
		}
		return tc.FPR
	}
	if r >= NumRegions {
		return 0
	}
	if c == GPR {
		return tc.RegionGPR[r]
	}
	return tc.RegionFPR[r]
}

// Counters returns a snapshot of the machine's tap counters. Together
// with SeedCounters it forms the checkpoint seam: counters captured at
// a golden stage boundary, seeded into a trial machine, make the
// resumed suffix tap-for-tap identical to the same suffix of a full
// run.
func (m *Machine) Counters() TapCounters {
	return TapCounters{
		Steps:     m.steps,
		GPR:       m.gprCount,
		FPR:       m.fprCount,
		RegionGPR: m.regionGPR,
		RegionFPR: m.regionFPR,
	}
}

// SeedCounters fast-forwards the machine's tap counters to tc, as if
// it had already executed the golden prefix ending there. All four
// counter families must be seeded together: plan sites index the
// class (or class+region) stream, register attribution hashes the
// whole-program class counter even for region-scoped plans, and the
// hang budget is measured in total steps.
func (m *Machine) SeedCounters(tc TapCounters) {
	m.steps = tc.Steps
	m.gprCount = tc.GPR
	m.fprCount = tc.FPR
	m.regionGPR = tc.RegionGPR
	m.regionFPR = tc.RegionFPR
}

// Checkpoint is one stage-boundary snapshot of a golden run: the tap
// counters at the boundary plus the application's resumable state.
// State is owned by the golden run and shared by every trial that
// resumes from it — StagedApp.Resume must treat it as immutable
// (copy-on-restore).
type Checkpoint struct {
	// Name labels the boundary (e.g. "features[3]", "composite").
	Name string
	// Counters is the machine's tap geometry at the boundary.
	Counters TapCounters
	// State is the application-defined resumable pipeline state.
	State any
}

// StagedApp is the differential-execution view of an application: the
// same computation as a fault.App, but expressed as resumable stages
// so a campaign can skip the fault-free prefix of a trial.
//
// Implementations carry a hard equivalence obligation: for any plan,
// RunFull from the start and Resume from any boundary whose counters
// do not exceed the plan's site must produce byte-identical output and
// an identical tap suffix.
type StagedApp interface {
	// RunFull executes every stage. When snap is non-nil it is called
	// at each stage boundary, before the stage's first tap, with a
	// label and a state snapshot valid for a later Resume; snapshots
	// must stay usable (and immutable) after RunFull returns. The
	// machine's counters at the moment of the call locate the boundary.
	RunFull(m *Machine, snap func(name string, state any)) ([]byte, error)
	// Resume executes only the stages at and after the boundary whose
	// state is given, on a machine whose counters were seeded with the
	// boundary's. state is shared across trials and must not be
	// mutated.
	Resume(m *Machine, state any) ([]byte, error)
}

// BoundaryGuard is the convergence probe a batched campaign hands to
// ResumeGuarded: the app calls it at every stage boundary it crosses
// after the resume point, before the boundary's first tap, with the
// boundary's label and current state. A true return means the trial
// has provably re-joined the golden run — the app abandons the suffix
// and the campaign classifies the trial from the golden output.
type BoundaryGuard func(name string, state any) bool

// BatchStagedApp extends StagedApp for checkpoint-bucket campaigns:
// per-bucket restore amortization and boundary-convergence cutoffs.
// The equivalence obligation extends correspondingly — for any plan,
// ResumeGuarded must classify exactly as Resume run to completion
// would, whatever the guard decides.
type BatchStagedApp interface {
	StagedApp
	// PrepareResume is called once per checkpoint bucket with the
	// boundary's shared state and returns an immutable view every
	// ResumeGuarded in the bucket may consume (e.g. precomputed
	// composite canvas bounds, which carry no taps and are identical
	// across the bucket's trials). It may return nil when the boundary
	// offers nothing to amortize.
	PrepareResume(state any) any
	// ResumeGuarded is Resume plus the bucket seam: prep is the shared
	// PrepareResume view (nil when absent) and guard, when non-nil, is
	// consulted at each later stage boundary; if it fires the app stops
	// and returns converged=true with a nil output. state and prep are
	// shared across trials and must not be mutated.
	ResumeGuarded(m *Machine, state, prep any, guard BoundaryGuard) (out []byte, converged bool, err error)
	// StateEqual reports whether two resumable states of the same
	// boundary are bit-equal — floating-point fields compared on their
	// IEEE-754 bits, so +0/-0 and NaN payload differences count as
	// divergence. It backs the convergence guard's soundness: equal
	// counters + bit-equal state + a resolved plan imply the remaining
	// suffix is the golden suffix.
	StateEqual(a, b any) bool
}

// CaptureGoldenStaged executes one fault-free run of the staged app,
// recording a checkpoint at every stage boundary. The returned golden
// run carries everything CaptureGolden records plus the checkpoint
// stream that lets RunCampaign skip fault-free trial prefixes.
func CaptureGoldenStaged(sa StagedApp) (*GoldenRun, error) {
	m := New()
	var cps []Checkpoint
	out, err := sa.RunFull(m, func(name string, state any) {
		cps = append(cps, Checkpoint{Name: name, Counters: m.Counters(), State: state})
	})
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	g := newGoldenRun(out, m)
	g.Checkpoints = cps
	g.Schema = CheckpointSchema
	return g, nil
}

// CheckpointFor returns the latest checkpoint a trial of plan p can
// resume from: the last boundary whose class/region-scoped counter
// does not exceed the plan's site. Every tap in the prefix before that
// boundary has a scoped index below the site, so the plan can neither
// fire nor resolve there — the prefix is provably fault-free and its
// state is bit-identical to the golden snapshot. Returns nil when the
// site precedes the first boundary (or no checkpoints were recorded).
func (g *GoldenRun) CheckpointFor(p Plan) *Checkpoint {
	if n := g.CheckpointIndexFor(p); n >= 0 {
		return &g.Checkpoints[n]
	}
	return nil
}

// CheckpointIndexFor returns the index of the checkpoint CheckpointFor
// would resume plan p from, or -1 when the site precedes the first
// boundary. The bucket scheduler groups plans by this index.
func (g *GoldenRun) CheckpointIndexFor(p Plan) int {
	// Boundary counters are monotone in capture order, so the viable
	// prefix of the checkpoint stream is contiguous.
	n := sort.Search(len(g.Checkpoints), func(i int) bool {
		return g.Checkpoints[i].Counters.For(p.Class, p.Region) > p.Site
	})
	return n - 1
}
