package fault

import (
	"context"
	"reflect"
	"testing"
)

// retainedSDCIndices returns the trial indices whose SDC output bytes
// were kept.
func retainedSDCIndices(res *Result) []int {
	var kept []int
	for i := range res.Trials {
		if res.Trials[i].Output != nil {
			kept = append(kept, i)
		}
	}
	return kept
}

// TestSDCRetentionDeterministic pins the MaxSDCOutputs contract: the
// retained subset is the lowest-index SDC trials, independent of
// worker count and completion order.
func TestSDCRetentionDeterministic(t *testing.T) {
	run := func(workers int) *Result {
		res, err := RunCampaign(context.Background(), Config{
			Trials: 300, Class: GPR, Region: RAny, Seed: 11,
			Workers: workers, KeepSDCOutputs: true, MaxSDCOutputs: 2,
		}, toyApp)
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		return res
	}
	serial := run(1)
	kept := retainedSDCIndices(serial)
	if len(kept) == 0 {
		t.Fatal("campaign produced no retained SDC outputs; pick a different seed")
	}
	if len(kept) > 2 {
		t.Fatalf("retained %d outputs, cap is 2", len(kept))
	}
	// The serial run completes trials in order, so its retained set is
	// the lowest-index SDCs by construction; every parallel schedule
	// must converge on the same set.
	var lowest []int
	for i := range serial.Trials {
		if serial.Trials[i].Outcome == OutcomeSDC {
			lowest = append(lowest, i)
			if len(lowest) == 2 {
				break
			}
		}
	}
	if !reflect.DeepEqual(kept, lowest) {
		t.Errorf("serial retention %v is not the lowest-index SDC set %v", kept, lowest)
	}
	for _, workers := range []int{2, 8} {
		parallel := run(workers)
		if got := retainedSDCIndices(parallel); !reflect.DeepEqual(got, kept) {
			t.Errorf("workers=%d retained %v, want %v", workers, got, kept)
		}
	}
}
