package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// sessionStagedToy is a two-stage staged view of toyApp's tap mix for
// the session tests: stage "transform" snapshots the filled buffer so
// resumed trials share the boundary state. Counters let the tests
// assert the skip/prep paths engaged.
type sessionStagedToy struct {
	fulls, resumes *atomic.Int64
}

func newSessionStagedToy() sessionStagedToy {
	return sessionStagedToy{fulls: new(atomic.Int64), resumes: new(atomic.Int64)}
}

func (s sessionStagedToy) run(m *Machine, snap func(string, any), buf []uint8) ([]byte, error) {
	if buf == nil {
		b := make([]uint8, 64)
		for i := range b {
			b[i] = m.Pix(uint8(i * 3))
		}
		if snap != nil {
			snap("transform", b[:len(b):len(b)])
		}
		buf = b
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx])
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

func (s sessionStagedToy) RunFull(m *Machine, snap func(name string, state any)) ([]byte, error) {
	s.fulls.Add(1)
	return s.run(m, snap, nil)
}

func (s sessionStagedToy) Resume(m *Machine, state any) ([]byte, error) {
	s.resumes.Add(1)
	return s.run(m, nil, state.([]uint8))
}

// stitchWindows folds per-window results into one trial table of the
// full plan space, so the session path can be compared against the
// one-shot campaign trial by trial.
func stitchWindows(t *testing.T, total int, wins []*Result, offsets []int) []Trial {
	t.Helper()
	trials := make([]Trial, total)
	seen := make([]bool, total)
	for w, res := range wins {
		for i := range res.Trials {
			gi := offsets[w] + i
			if seen[gi] {
				t.Fatalf("plan index %d covered by two windows", gi)
			}
			trials[gi] = res.Trials[i]
			seen[gi] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("plan index %d not covered by any window", i)
		}
	}
	return trials
}

func requireSameTrials(t *testing.T, label string, a, b []Trial) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Outcome != b[i].Outcome || a[i].Crash != b[i].Crash || a[i].Landed != b[i].Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, a[i].Outcome, a[i].Crash, a[i].Landed, b[i].Outcome, b[i].Crash, b[i].Landed)
		}
	}
}

// TestSessionWindowsMatchRunCampaign is the tentpole equivalence at the
// fault layer: successive windows through one persistent session must
// reproduce the one-shot campaign bit for bit, and the session must
// visibly amortize its pool across windows.
func TestSessionWindowsMatchRunCampaign(t *testing.T) {
	const total = 60
	base := Config{Trials: total, Class: GPR, Region: RAny, Seed: 11, Workers: 2}
	baseline, err := RunCampaign(context.Background(), base, toyApp)
	if err != nil {
		t.Fatalf("one-shot campaign: %v", err)
	}

	golden, err := CaptureGolden(toyApp)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	s, err := NewSession(SessionConfig{App: toyApp, Golden: golden, Workers: 2})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	var wins []*Result
	offsets := []int{0, 20, 40}
	for _, lo := range offsets {
		cfg := base
		cfg.Trials = 20
		cfg.PlanOffset = lo
		cfg.PlanTrials = total
		res, err := s.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("session window [%d,%d): %v", lo, lo+20, err)
		}
		wins = append(wins, res)
	}
	requireSameTrials(t, "session windows vs one-shot",
		stitchWindows(t, total, wins, offsets), baseline.Trials)

	st := s.Stats()
	if st.RoundsServed != 3 {
		t.Errorf("RoundsServed = %d, want 3", st.RoundsServed)
	}
	if st.WorkersSpawned > 2 {
		t.Errorf("WorkersSpawned = %d, want <= 2 (pool must be reused)", st.WorkersSpawned)
	}
	if st.WorkersReused == 0 {
		t.Error("WorkersReused = 0: later windows did not reuse the pool")
	}
}

// TestSessionBucketPrepCache checks the staged path: checkpoint-bucket
// preparations are cached for the session's lifetime, so windows after
// the first see cache hits — and the cached preparation changes no
// observable.
func TestSessionBucketPrepCache(t *testing.T) {
	const total = 60
	st := newSessionStagedToy()
	base := Config{Trials: total, Class: GPR, Region: RAny, Seed: 3, Workers: 2, Staged: st}
	baseline, err := RunCampaign(context.Background(), base, nil)
	if err != nil {
		t.Fatalf("one-shot staged campaign: %v", err)
	}

	golden, err := CaptureGoldenStaged(st)
	if err != nil {
		t.Fatalf("CaptureGoldenStaged: %v", err)
	}
	s, err := NewSession(SessionConfig{Staged: st, Golden: golden, Workers: 2})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	var wins []*Result
	offsets := []int{0, 30}
	for _, lo := range offsets {
		cfg := base
		cfg.Trials = 30
		cfg.PlanOffset = lo
		cfg.PlanTrials = total
		res, err := s.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("session window [%d,%d): %v", lo, lo+30, err)
		}
		wins = append(wins, res)
	}
	requireSameTrials(t, "staged session windows vs one-shot",
		stitchWindows(t, total, wins, offsets), baseline.Trials)

	stats := s.Stats()
	if stats.BucketPrepMisses == 0 {
		t.Error("BucketPrepMisses = 0: no bucket was ever prepared")
	}
	if stats.BucketPrepHits == 0 {
		t.Error("BucketPrepHits = 0: the second window did not reuse the prep cache")
	}
	if st.resumes.Load() == 0 {
		t.Error("no trial resumed from a checkpoint — staged path never engaged")
	}
}

// TestSessionConcurrentWindows runs disjoint windows of one campaign
// through the same session from concurrent goroutines (the adaptive
// round sub-shard pattern) and checks the stitched result against the
// one-shot campaign.
func TestSessionConcurrentWindows(t *testing.T) {
	const total = 60
	base := Config{Trials: total, Class: FPR, Region: RAny, Seed: 29, Workers: 2}
	baseline, err := RunCampaign(context.Background(), base, toyApp)
	if err != nil {
		t.Fatalf("one-shot campaign: %v", err)
	}

	golden, err := CaptureGolden(toyApp)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	s, err := NewSession(SessionConfig{App: toyApp, Golden: golden, Workers: 4})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	offsets := []int{0, 15, 30, 45}
	wins := make([]*Result, len(offsets))
	errs := make([]error, len(offsets))
	var wg sync.WaitGroup
	for w, lo := range offsets {
		wg.Add(1)
		go func(w, lo int) {
			defer wg.Done()
			cfg := base
			cfg.Trials = 15
			cfg.PlanOffset = lo
			cfg.PlanTrials = total
			wins[w], errs[w] = s.Run(context.Background(), cfg)
		}(w, lo)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("concurrent window %d: %v", w, err)
		}
	}
	requireSameTrials(t, "concurrent session windows vs one-shot",
		stitchWindows(t, total, wins, offsets), baseline.Trials)
}

// TestSessionValidation covers the session-specific error surface:
// construction without an app or golden, a config golden that is not
// the session's, and Run after Close.
func TestSessionValidation(t *testing.T) {
	golden, err := CaptureGolden(toyApp)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}

	if _, err := NewSession(SessionConfig{Golden: golden}); err == nil {
		t.Error("NewSession without app accepted")
	}
	if _, err := NewSession(SessionConfig{App: toyApp}); err == nil {
		t.Error("NewSession without golden accepted")
	}

	s, err := NewSession(SessionConfig{App: toyApp, Golden: golden})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	other, err := CaptureGolden(toyApp)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	cfg := Config{Trials: 5, Class: GPR, Region: RAny, Seed: 1, Golden: other}
	if _, err := s.Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "session golden") {
		t.Errorf("foreign golden: got %v, want session-golden mismatch error", err)
	}

	s.Close()
	s.Close() // idempotent
	cfg.Golden = golden
	if _, err := s.Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Run on closed session: got %v, want closed error", err)
	}
}
