package fault

import (
	"fmt"
	"io"
	"sort"
)

// This file implements the paper's §VI-A crash-site analysis: "we see
// no clear trend that corruption of certain registers or bit positions
// in the registers are more likely to result in a Crash". The
// Analysis type cross-tabulates campaign trials by register id and bit
// position so that claim can be checked quantitatively.

// Analysis cross-tabulates a campaign's trials.
type Analysis struct {
	// ByRegister[r][o] counts outcome o for injections into register r.
	ByRegister [NumRegisters][NumOutcomes]int
	// ByBit[b][o] counts outcome o for injections into bit b.
	ByBit [RegisterBits][NumOutcomes]int
	// ByBitGroup aggregates ByBit into the three architectural groups.
	ByBitGroup [NumBitGroups][NumOutcomes]int
	// Total is the number of trials analyzed.
	Total int
}

// Analyze builds the cross-tabulation from a campaign result.
func Analyze(res *Result) *Analysis {
	a := &Analysis{}
	for _, t := range res.Trials {
		if t.Plan.Reg >= 0 && t.Plan.Reg < NumRegisters {
			a.ByRegister[t.Plan.Reg][t.Outcome]++
		}
		if t.Plan.Bit >= 0 && t.Plan.Bit < RegisterBits {
			a.ByBit[t.Plan.Bit][t.Outcome]++
			a.ByBitGroup[bitGroupOf(t.Plan.Bit)][t.Outcome]++
		}
		a.Total++
	}
	return a
}

// bitGroupOf maps a bit position to its group.
func bitGroupOf(bit int) BitGroup {
	switch {
	case bit < 8:
		return BitsLow
	case bit < 32:
		return BitsMid
	default:
		return BitsHigh
	}
}

// CrashRateByRegister returns each register's crash rate (NaN-free: 0
// when no injections hit the register).
func (a *Analysis) CrashRateByRegister() [NumRegisters]float64 {
	var out [NumRegisters]float64
	for r := 0; r < NumRegisters; r++ {
		total := 0
		for _, c := range a.ByRegister[r] {
			total += c
		}
		if total > 0 {
			out[r] = float64(a.ByRegister[r][OutcomeCrash]) / float64(total)
		}
	}
	return out
}

// RegisterCrashSpread returns the max-min crash rate across registers
// with at least minSamples injections — the paper's "no clear trend"
// is a small spread.
func (a *Analysis) RegisterCrashSpread(minSamples int) float64 {
	lo, hi := 1.0, 0.0
	seen := false
	for r := 0; r < NumRegisters; r++ {
		total := 0
		for _, c := range a.ByRegister[r] {
			total += c
		}
		if total < minSamples {
			continue
		}
		seen = true
		rate := float64(a.ByRegister[r][OutcomeCrash]) / float64(total)
		if rate < lo {
			lo = rate
		}
		if rate > hi {
			hi = rate
		}
	}
	if !seen {
		return 0
	}
	return hi - lo
}

// GroupRates returns the outcome rates of one bit group.
func (a *Analysis) GroupRates(g BitGroup) [NumOutcomes]float64 {
	var out [NumOutcomes]float64
	total := 0
	for _, c := range a.ByBitGroup[g] {
		total += c
	}
	if total == 0 {
		return out
	}
	for o, c := range a.ByBitGroup[g] {
		out[o] = float64(c) / float64(total)
	}
	return out
}

// Write renders the analysis tables.
func (a *Analysis) Write(w io.Writer) {
	fmt.Fprintf(w, "outcome rates by bit group (%d trials):\n", a.Total)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "bits", "Mask", "Crash", "SDC", "Hang")
	for g := BitGroup(0); g < NumBitGroups; g++ {
		r := a.GroupRates(g)
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f\n", g,
			r[OutcomeMask], r[OutcomeCrash], r[OutcomeSDC], r[OutcomeHang])
	}
	rates := a.CrashRateByRegister()
	type regRate struct {
		reg  int
		rate float64
	}
	sorted := make([]regRate, NumRegisters)
	for r := range rates {
		sorted[r] = regRate{r, rates[r]}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rate > sorted[j].rate })
	fmt.Fprintf(w, "crash-rate spread across registers: %.3f (>=5 samples each)\n",
		a.RegisterCrashSpread(5))
	fmt.Fprintf(w, "most / least crash-prone registers: r%d (%.2f) / r%d (%.2f)\n",
		sorted[0].reg, sorted[0].rate, sorted[NumRegisters-1].reg, sorted[NumRegisters-1].rate)
}
