package fault

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vsresil/internal/fastpath"
)

// SessionConfig parameterizes a persistent executor session.
type SessionConfig struct {
	// App runs the application end to end (trials with no usable
	// checkpoint, and the golden fallback).
	App App
	// Staged, when non-nil, is the stage-resumable view of the same
	// app (see Config.Staged).
	Staged StagedApp
	// Golden is the precomputed golden run every window of this session
	// executes against. Required: a session exists to amortize work
	// across plan windows of one campaign, and those windows share one
	// golden by construction.
	Golden *GoldenRun
	// Workers caps the session's worker pool (0 = GOMAXPROCS). Workers
	// are spawned lazily up to min(Workers, pending trials of the
	// current window) and then kept for the session's lifetime.
	Workers int
}

// SessionStats counts what a session amortized across its windows. All
// numbers are observational — they never influence an execution
// observable — and deterministic in the sequence of Run calls (never in
// worker timing).
type SessionStats struct {
	// BucketPrepHits counts checkpoint buckets served from the
	// session's preparation cache; BucketPrepMisses counts buckets
	// prepared for the first time. One-shot campaigns see only misses;
	// the adaptive round loop turns all rounds after the first into
	// hits.
	BucketPrepHits   uint64
	BucketPrepMisses uint64
	// RoundsServed is the number of plan windows executed.
	RoundsServed uint64
	// WorkersSpawned is the number of pool goroutines started over the
	// session's lifetime; WorkersReused accumulates, per window, how
	// many of the workers it needed already existed.
	WorkersSpawned uint64
	WorkersReused  uint64
}

// Add folds another session's counters into s (fabric workers
// aggregate one entry per campaign).
func (s *SessionStats) Add(o SessionStats) {
	s.BucketPrepHits += o.BucketPrepHits
	s.BucketPrepMisses += o.BucketPrepMisses
	s.RoundsServed += o.RoundsServed
	s.WorkersSpawned += o.WorkersSpawned
	s.WorkersReused += o.WorkersReused
}

// Session is a persistent campaign executor: it owns the worker pool,
// the checkpoint-bucket preparation cache and the golden reference for
// the lifetime of one campaign, and executes successive plan windows
// (Run) without tearing anything down between them. RunCampaign is the
// one-shot wrapper: open, run one window, close.
//
// Reuse cannot shift results. The cached per-bucket preparation is a
// pure function of the immutable golden checkpoint state (see
// BatchStagedApp.PrepareResume), worker-pool lifetime is invisible to
// trials (each trial owns its machine and writes only its own result
// slot), and every window accumulates its Result in plan-index order
// exactly as the one-shot executor does — so a session-run window is
// bit-identical to a RunCampaign call with the same Config.
//
// Run may be called from multiple goroutines concurrently (adaptive
// round sub-shards share one session); Close must not race with Run.
type Session struct {
	app    App
	staged StagedApp
	bapp   BatchStagedApp // staged's batch view, type-asserted once
	golden *GoldenRun
	cap    int

	jobCh chan sessionJob

	mu      sync.Mutex
	spawned int
	closed  bool
	preps   map[int]*schedBucket // checkpoint index -> shared bucket
	stats   SessionStats
}

// NewSession opens a persistent executor session. The caller must
// Close it when the campaign is over.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.App == nil && cfg.Staged == nil {
		return nil, fmt.Errorf("fault: session has no application")
	}
	if cfg.Golden == nil {
		return nil, fmt.Errorf("fault: session requires a golden run")
	}
	capWorkers := cfg.Workers
	if capWorkers <= 0 {
		capWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		app:    cfg.App,
		staged: cfg.Staged,
		golden: cfg.Golden,
		cap:    capWorkers,
		jobCh:  make(chan sessionJob),
		preps:  make(map[int]*schedBucket),
	}
	if cfg.Staged != nil {
		s.bapp, _ = cfg.Staged.(BatchStagedApp)
	}
	return s, nil
}

// Golden returns the session's golden run.
func (s *Session) Golden() *GoldenRun { return s.golden }

// Stats returns a snapshot of the session's reuse counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close shuts the worker pool down. Idempotent; must not race with Run.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobCh)
}

// sessionJob is one unit of pool work: a trial batch of a specific
// window. Jobs of concurrent windows interleave on the shared channel;
// each completion is signaled on its own window's WaitGroup.
type sessionJob struct {
	win   *windowRun
	batch trialBatch
}

// windowRun is the per-Run state a pool worker needs to execute a
// batch of one window: the trial table, the execution invariants and
// the serialized post-trial hooks.
type windowRun struct {
	cfg    *Config
	plans  []Plan
	golden *GoldenRun
	skip   bool
	exec   *trialExec
	trials []Trial
	done   []bool

	hookMu  sync.Mutex // serializes OnTrial/OnSDCOutput and cap accounting
	keptSDC []int
	wg      sync.WaitGroup
}

// runWorker is the pool goroutine body: drain jobs until Close.
func (s *Session) runWorker() {
	for job := range s.jobCh {
		job.win.runBatch(job.batch)
		job.win.wg.Done()
	}
}

// ensureWorkers grows the pool to n goroutines (bounded by the session
// cap) and accounts spawn/reuse. Never shrinks: an idle pool goroutine
// costs only its blocked channel receive.
func (s *Session) ensureWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.cap {
		n = s.cap
	}
	reused := s.spawned
	if reused > n {
		reused = n
	}
	s.stats.WorkersReused += uint64(reused)
	for s.spawned < n {
		go s.runWorker()
		s.spawned++
		s.stats.WorkersSpawned++
	}
}

// buckets resolves the checkpoint buckets for the given sorted index
// list against the session cache, so bucket preparation (the
// once-per-bucket composite plan) is paid once per campaign rather
// than once per window.
func (s *Session) buckets(cpIdxs []int) map[int]*schedBucket {
	out := make(map[int]*schedBucket, len(cpIdxs))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ci := range cpIdxs {
		if ci < 0 {
			continue
		}
		b := s.preps[ci]
		if b == nil {
			b = &schedBucket{cp: &s.golden.Checkpoints[ci], cpIdx: ci}
			s.preps[ci] = b
			s.stats.BucketPrepMisses++
		} else {
			s.stats.BucketPrepHits++
		}
		out[ci] = b
	}
	return out
}

// Run executes one plan window through the session. It is
// bit-identical to RunCampaign(ctx, cfg, app) for the same Config —
// the session only changes where the worker pool and bucket
// preparations live — and shares its partial-result contract: on
// context cancellation the partial Result comes back with a non-nil
// error.
//
// cfg.Golden, when set, must be the session's golden run; cfg.Staged
// and the app are fixed at session construction and cfg's copies are
// ignored.
func (s *Session) Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: non-positive trial count %d", cfg.Trials)
	}
	planTrials := cfg.PlanTrials
	if planTrials == 0 {
		planTrials = cfg.Trials
	}
	if cfg.PlanOffset < 0 || cfg.PlanOffset+cfg.Trials > planTrials {
		return nil, fmt.Errorf("fault: plan window [%d,%d) outside plan space [0,%d)",
			cfg.PlanOffset, cfg.PlanOffset+cfg.Trials, planTrials)
	}
	if cfg.Golden != nil && cfg.Golden != s.golden {
		return nil, fmt.Errorf("fault: config golden differs from session golden")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("fault: session is closed")
	}
	s.stats.RoundsServed++
	s.mu.Unlock()

	golden := s.golden
	goldenOut := golden.Output
	// Prefix skipping needs both sides of the seam: a staged app to
	// resume into and a golden run that recorded boundaries under the
	// current schema. Anything else (plain goldens, schema drift, the
	// kill switch) degrades to full execution.
	skip := s.staged != nil && len(golden.Checkpoints) > 0 &&
		golden.Schema == CheckpointSchema && fastpath.PrefixSkip()

	totalTaps := golden.Taps(cfg.Class, cfg.Region)
	if totalTaps == 0 {
		return nil, ErrNoTaps
	}

	window := WindowFor(cfg.Class, cfg.Window)
	stepFactor := cfg.StepFactor
	if stepFactor <= 0 {
		stepFactor = DefaultStepFactor
	}
	budget := uint64(float64(golden.Steps) * stepFactor)

	var plans []Plan
	if cfg.Plans != nil {
		// A planner supplied the exact plans for this window.
		if len(cfg.Plans) != cfg.Trials {
			return nil, fmt.Errorf("fault: %d explicit plans for %d trials", len(cfg.Plans), cfg.Trials)
		}
		plans = cfg.Plans
	} else {
		// Pre-generate the full plan space from the seed so results
		// depend on neither worker scheduling nor shard decomposition:
		// a shard draws the same plans the unsharded campaign would
		// and executes only its window.
		plans = GeneratePlans(cfg.Seed, cfg.Class, cfg.Region, window, planTrials, totalTaps)
		plans = plans[cfg.PlanOffset : cfg.PlanOffset+cfg.Trials]
	}

	trials := make([]Trial, cfg.Trials)
	done := make([]bool, cfg.Trials)
	for _, rec := range cfg.Resume {
		// Record indices are plan indices; map them into this run's
		// window.
		local := rec.Index - cfg.PlanOffset
		if local < 0 || local >= cfg.Trials {
			return nil, fmt.Errorf("fault: resume record index %d out of range [%d,%d)",
				rec.Index, cfg.PlanOffset, cfg.PlanOffset+cfg.Trials)
		}
		if rec.Outcome >= NumOutcomes {
			return nil, fmt.Errorf("fault: resume record %d has invalid outcome %d", rec.Index, rec.Outcome)
		}
		if done[local] {
			return nil, fmt.Errorf("fault: duplicate resume record for trial %d", rec.Index)
		}
		trials[local] = Trial{
			Plan:    plans[local],
			Outcome: rec.Outcome,
			Crash:   rec.Crash,
			Landed:  rec.Landed,
		}
		done[local] = true
	}

	pending := make([]int, 0, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		if !done[i] {
			pending = append(pending, i)
		}
	}
	workers := cfg.Workers
	if workers <= 0 || workers > s.cap {
		workers = s.cap
	}
	// Never run more workers than pending plans: a mostly-resumed
	// window needs fewer than the pool cap.
	if workers > len(pending) {
		workers = len(pending)
	}

	// Bucket batching groups the pending plans by the checkpoint they
	// resume from, so each bucket restores/prepares the shared boundary
	// view once per campaign; the suffix cutoffs ride on the same gate.
	// Scheduling stays an implementation detail: trials write their own
	// result slots and the final accumulation below runs in plan-index
	// order, so shard/merge/journal-resume observables are bit-identical
	// with batching on or off.
	batch := skip && fastpath.Batching()
	var sched SchedStats
	var jobs []trialBatch
	if batch {
		byCp := make(map[int][]int)
		for _, i := range pending {
			ci := golden.CheckpointIndexFor(plans[i])
			byCp[ci] = append(byCp[ci], i)
		}
		cpIdxs := make([]int, 0, len(byCp))
		for ci := range byCp {
			cpIdxs = append(cpIdxs, ci)
		}
		sort.Ints(cpIdxs)
		shared := s.buckets(cpIdxs)
		// Large buckets are fed to workers in chunks so one bucket
		// cannot serialize the pool (and cancellation stays responsive);
		// chunks of a bucket still share its once-per-campaign prepared
		// view.
		chunk := 1
		if workers > 0 {
			chunk = (len(pending) + workers*4 - 1) / (workers * 4)
		}
		if chunk > maxBucketChunk {
			chunk = maxBucketChunk
		}
		if chunk < 1 {
			chunk = 1
		}
		for _, ci := range cpIdxs {
			idxs := byCp[ci]
			b := shared[ci] // nil for ci < 0 (pre-first-boundary trials)
			if b != nil {
				sched.Buckets++
				sched.Batched += len(idxs)
				sched.BucketSizes = append(sched.BucketSizes, len(idxs))
			}
			for lo := 0; lo < len(idxs); lo += chunk {
				hi := lo + chunk
				if hi > len(idxs) {
					hi = len(idxs)
				}
				jobs = append(jobs, trialBatch{bucket: b, idxs: idxs[lo:hi]})
			}
		}
		sched.RestoresSaved = sched.Batched - sched.Buckets
	} else {
		for lo := 0; lo < len(pending); lo++ {
			jobs = append(jobs, trialBatch{idxs: pending[lo : lo+1]})
		}
	}

	exec := &trialExec{
		budget:    budget,
		goldenOut: goldenOut,
		// keepSDC makes the trial hold on to SDC output bytes; the
		// post-trial hook decides whether they are streamed, retained
		// or dropped once the cap is reached.
		keepSDC: cfg.KeepSDCOutputs || cfg.OnSDCOutput != nil,
		app:     s.app,
		staged:  s.staged,
		golden:  golden,
		// The suffix cutoffs share the batching gate: both are executor
		// optimizations whose soundness argument (resolved plan ⇒ golden
		// suffix) is documented with the bucket scheduler, and turning
		// the gate off restores classic trial-at-a-time execution.
		earlyMask: fastpath.Batching(),
	}
	if batch {
		exec.bapp = s.bapp
	}

	win := &windowRun{
		cfg:    &cfg,
		plans:  plans,
		golden: golden,
		skip:   skip,
		exec:   exec,
		trials: trials,
		done:   done,
	}
	s.ensureWorkers(workers)

	win.wg.Add(len(jobs))
	fed := 0
	var ctxErr error
feed:
	for _, job := range jobs {
		select {
		case s.jobCh <- sessionJob{win: win, batch: job}:
			fed++
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	// Jobs never fed still hold WaitGroup slots; release them so Wait
	// observes only the in-flight work.
	win.wg.Add(fed - len(jobs))
	win.wg.Wait()
	sched.EarlyMasks = int(exec.earlyMasks.Load())
	sched.Converged = int(exec.converged.Load())

	res := NewResult(cfg, goldenOut, golden.Steps, totalTaps)
	res.Trials = trials
	res.Sched = sched
	for i := range trials {
		if done[i] {
			res.Accumulate(&trials[i])
		}
	}
	if ctxErr != nil {
		return res, fmt.Errorf("fault: campaign interrupted after %d/%d trials: %w", res.Completed, cfg.Trials, ctxErr)
	}
	return res, nil
}

// runBatch executes one trial batch of this window on the calling pool
// worker.
func (w *windowRun) runBatch(job trialBatch) {
	cfg, exec := w.cfg, w.exec
	var cp *Checkpoint
	var prep any
	cpIdx := -1
	if b := job.bucket; b != nil {
		cp, cpIdx = b.cp, b.cpIdx
		if exec.bapp != nil {
			// Once per bucket per campaign, not per window, chunk or
			// trial: the first chunk scheduled prepares the shared view,
			// every later chunk — including chunks of later windows —
			// reuses it.
			b.prepOnce.Do(func() { b.prep = exec.bapp.PrepareResume(cp.State) })
			prep = b.prep
		}
	}
	for _, i := range job.idxs {
		tcp := cp
		if job.bucket == nil && w.skip {
			tcp = w.golden.CheckpointFor(w.plans[i])
		}
		t := exec.run(w.plans[i], tcp, cpIdx, prep)
		w.hookMu.Lock()
		if t.Output != nil {
			switch {
			case cfg.OnSDCOutput != nil:
				cfg.OnSDCOutput(t.Record(cfg.PlanOffset+i), t.Output)
				t.Output = nil
			case cfg.MaxSDCOutputs > 0:
				if len(w.keptSDC) < cfg.MaxSDCOutputs {
					w.keptSDC = append(w.keptSDC, i)
				} else {
					// Cap reached: evict the highest retained index if
					// this trial precedes it, else drop this trial's
					// output.
					hi := 0
					for j := 1; j < len(w.keptSDC); j++ {
						if w.keptSDC[j] > w.keptSDC[hi] {
							hi = j
						}
					}
					if i < w.keptSDC[hi] {
						w.trials[w.keptSDC[hi]].Output = nil
						w.keptSDC[hi] = i
					} else {
						t.Output = nil
					}
				}
			}
		}
		w.trials[i] = t
		w.done[i] = true
		if cfg.OnTrial != nil {
			cfg.OnTrial(t.Record(cfg.PlanOffset + i))
		}
		w.hookMu.Unlock()
	}
}
