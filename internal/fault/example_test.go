package fault_test

import (
	"fmt"

	"vsresil/internal/fault"
)

// ExampleGoldenRun_Taps shows how a golden capture sizes the
// injection-site space a campaign draws plans from: per class for
// whole-program campaigns, per class and region for function-scoped
// ones (the Fig 11b hot-function study).
func ExampleGoldenRun_Taps() {
	app := func(m *fault.Machine) ([]byte, error) {
		done := m.Enter(fault.RFASTDetect)
		for i := 0; i < 5; i++ {
			m.Idx(i) // five GPR-class taps inside the detector
		}
		done()
		m.F64(0.5) // one FPR-class tap in the app region
		return []byte("out"), nil
	}
	g, err := fault.CaptureGolden(app)
	if err != nil {
		panic(err)
	}
	fmt.Println("GPR sites:", g.Taps(fault.GPR, fault.RAny))
	fmt.Println("FPR sites:", g.Taps(fault.FPR, fault.RAny))
	fmt.Println("detector GPR sites:", g.Taps(fault.GPR, fault.RFASTDetect))
	fmt.Println("detector FPR sites:", g.Taps(fault.FPR, fault.RFASTDetect))
	// Output:
	// GPR sites: 5
	// FPR sites: 1
	// detector GPR sites: 5
	// detector FPR sites: 0
}

// ExampleGoldenRun_CheckpointFor shows plan bucketing for golden-prefix
// skipping: a staged capture records tap counters at each stage
// boundary, and CheckpointFor picks the last boundary a plan's
// injection site has not yet passed — the point a trial can safely
// resume from instead of re-executing its fault-free prefix.
func ExampleGoldenRun_CheckpointFor() {
	staged := stagedFunc(func(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
		for i := 0; i < 10; i++ {
			m.Idx(i) // stage one: ten GPR taps
		}
		if snap != nil {
			snap("stage-two", nil)
		}
		for i := 0; i < 5; i++ {
			m.Idx(i) // stage two: five more
		}
		return []byte("out"), nil
	})
	g, err := fault.CaptureGoldenStaged(staged)
	if err != nil {
		panic(err)
	}
	early := fault.Plan{Class: fault.GPR, Region: fault.RAny, Site: 3}
	late := fault.Plan{Class: fault.GPR, Region: fault.RAny, Site: 12}
	fmt.Println("site 3 resumes from:", name(g.CheckpointFor(early)))
	fmt.Println("site 12 resumes from:", name(g.CheckpointFor(late)))
	fmt.Println("boundary GPR counter:", g.CheckpointFor(late).Counters.For(fault.GPR, fault.RAny))
	// Output:
	// site 3 resumes from: the start (full run)
	// site 12 resumes from: stage-two
	// boundary GPR counter: 10
}

// stagedFunc adapts a function to fault.StagedApp for examples; Resume
// just re-enters the suffix (this toy's only boundary state is nil).
type stagedFunc func(m *fault.Machine, snap func(name string, state any)) ([]byte, error)

func (f stagedFunc) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	return f(m, snap)
}

func (f stagedFunc) Resume(m *fault.Machine, state any) ([]byte, error) {
	out := make([]byte, 0)
	for i := 0; i < 5; i++ {
		m.Idx(i)
	}
	return append(out, "out"...), nil
}

func name(cp *fault.Checkpoint) string {
	if cp == nil {
		return "the start (full run)"
	}
	return cp.Name
}
