package fault

import (
	"context"
	"fmt"
	"runtime"

	"vsresil/internal/stats"
)

// The paper leaves "more comprehensive and higher precision techniques
// such as Relyzer" to future work (§V-A). Relyzer's key idea is fault-
// site equivalence: many dynamic fault sites behave alike, so
// injecting into a few representatives of each equivalence class and
// weighting by class population estimates full-coverage resiliency at
// a fraction of the cost. This file implements a statistical variant:
// the site space is stratified by (function region, bit group) — the
// two strongest behavioral predictors in this workload — and each
// stratum is sampled independently.

// BitGroup partitions register bit positions by architectural effect:
// low bits perturb values slightly, middle bits produce large value
// and address errors, high bits flip signs and magnitudes.
type BitGroup uint8

// Bit groups.
const (
	BitsLow  BitGroup = iota // bits 0-7
	BitsMid                  // bits 8-31
	BitsHigh                 // bits 32-63
	NumBitGroups
)

// String implements fmt.Stringer.
func (b BitGroup) String() string {
	switch b {
	case BitsLow:
		return "bits0-7"
	case BitsMid:
		return "bits8-31"
	case BitsHigh:
		return "bits32-63"
	default:
		return fmt.Sprintf("BitGroup(%d)", uint8(b))
	}
}

// bounds returns the inclusive bit range of the group.
func (b BitGroup) bounds() (int, int) {
	switch b {
	case BitsLow:
		return 0, 7
	case BitsMid:
		return 8, 31
	default:
		return 32, 63
	}
}

// groupWidth returns the number of bit positions in the group.
func (b BitGroup) groupWidth() int {
	lo, hi := b.bounds()
	return hi - lo + 1
}

// Stratum is one fault-site equivalence class.
type Stratum struct {
	Region Region
	Bits   BitGroup
	// Population is the stratum's share of the total site space
	// (region taps × bit positions).
	Population uint64
	// Counts are the sampled outcome counts within the stratum.
	Counts [NumOutcomes]int
}

// Rates returns the stratum's outcome rates.
func (s *Stratum) Rates() [NumOutcomes]float64 {
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	var out [NumOutcomes]float64
	if total == 0 {
		return out
	}
	for o := range s.Counts {
		out[o] = float64(s.Counts[o]) / float64(total)
	}
	return out
}

// StratifiedConfig parameterizes an equivalence-class campaign.
type StratifiedConfig struct {
	// TrialsPerStratum is the number of injections sampled from each
	// non-empty stratum (default 20).
	TrialsPerStratum int
	// Class selects the register file.
	Class Class
	// Seed, Workers, StepFactor, Window as in Config.
	Seed       uint64
	Workers    int
	StepFactor float64
	Window     uint64
}

// StratifiedResult aggregates an equivalence-class campaign.
type StratifiedResult struct {
	Strata []Stratum
	// TotalPopulation is the size of the whole weighted site space.
	TotalPopulation uint64
	// Trials is the total number of injections performed.
	Trials int
}

// WeightedRates estimates the whole-program outcome rates by weighting
// each stratum's sampled rates with its population share — the
// Relyzer-style full-coverage estimate.
func (r *StratifiedResult) WeightedRates() [NumOutcomes]float64 {
	var out [NumOutcomes]float64
	if r.TotalPopulation == 0 {
		return out
	}
	for i := range r.Strata {
		s := &r.Strata[i]
		rates := s.Rates()
		w := float64(s.Population) / float64(r.TotalPopulation)
		for o := range out {
			out[o] += w * rates[o]
		}
	}
	return out
}

// RunStratifiedCampaign executes the equivalence-class campaign: one
// golden run sizes every stratum, then TrialsPerStratum injections are
// sampled per non-empty stratum on a bounded worker pool.
func RunStratifiedCampaign(ctx context.Context, cfg StratifiedConfig, app App) (*StratifiedResult, error) {
	if cfg.TrialsPerStratum <= 0 {
		cfg.TrialsPerStratum = 20
	}
	golden := New()
	goldenOut, err := app(golden)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	window := cfg.Window
	if window == 0 {
		if cfg.Class == GPR {
			window = DefaultGPRWindow
		} else {
			window = DefaultFPRWindow
		}
	}
	stepFactor := cfg.StepFactor
	if stepFactor <= 0 {
		stepFactor = DefaultStepFactor
	}
	budget := uint64(float64(golden.Steps()) * stepFactor)

	res := &StratifiedResult{}
	rng := stats.NewRNG(cfg.Seed)
	type job struct {
		stratum int
		plan    Plan
	}
	var jobs []job
	for region := Region(0); region < NumRegions; region++ {
		taps := golden.RegionTaps(cfg.Class, region)
		if taps == 0 {
			continue
		}
		for bg := BitGroup(0); bg < NumBitGroups; bg++ {
			st := Stratum{
				Region:     region,
				Bits:       bg,
				Population: taps * uint64(bg.groupWidth()),
			}
			res.TotalPopulation += st.Population
			idx := len(res.Strata)
			res.Strata = append(res.Strata, st)
			lo, hi := bg.bounds()
			for t := 0; t < cfg.TrialsPerStratum; t++ {
				jobs = append(jobs, job{stratum: idx, plan: Plan{
					Class:  cfg.Class,
					Reg:    rng.Intn(NumRegisters),
					Bit:    lo + rng.Intn(hi-lo+1),
					Site:   rng.Uint64() % taps,
					Window: window,
					Region: region,
				}})
			}
		}
	}
	if len(jobs) == 0 {
		return nil, ErrNoTaps
	}

	outcomes := make([]Outcome, len(jobs))
	exec := &trialExec{budget: budget, goldenOut: goldenOut, app: app}
	if err := runJobs(ctx, cfg.Workers, len(jobs), func(i int) {
		trial := exec.run(jobs[i].plan, nil, -1, nil)
		outcomes[i] = trial.Outcome
	}); err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res.Strata[j.stratum].Counts[outcomes[i]]++
	}
	res.Trials = len(jobs)
	return res, nil
}

// runJobs executes fn(0..n-1) on a bounded worker pool, stopping early
// on context cancellation.
func runJobs(ctx context.Context, workers, n int, fn func(int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idxCh := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idxCh {
				fn(i)
			}
			done <- struct{}{}
		}()
	}
	var ctxErr error
feed:
	for i := 0; i < n; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(idxCh)
	for w := 0; w < workers; w++ {
		<-done
	}
	if ctxErr != nil {
		return fmt.Errorf("fault: stratified campaign interrupted: %w", ctxErr)
	}
	return nil
}
