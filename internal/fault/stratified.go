package fault

import "fmt"

// The paper leaves "more comprehensive and higher precision techniques
// such as Relyzer" to future work (§V-A). Relyzer's key idea is fault-
// site equivalence: many dynamic fault sites behave alike, so
// injecting into a few representatives of each equivalence class and
// weighting by class population estimates full-coverage resiliency at
// a fraction of the cost. This file defines the stratification model:
// the site space is stratified by (function region, bit group) — the
// two strongest behavioral predictors in this workload — and each
// stratum is sampled independently. The drivers live behind the
// planner seam: plan.Stratified reproduces the fixed per-stratum
// draw, plan.Adaptive reallocates rounds by interval width, and
// campaign.Runner executes either through the same trial executor as
// every other campaign.

// BitGroup partitions register bit positions by architectural effect:
// low bits perturb values slightly, middle bits produce large value
// and address errors, high bits flip signs and magnitudes.
type BitGroup uint8

// Bit groups.
const (
	BitsLow  BitGroup = iota // bits 0-7
	BitsMid                  // bits 8-31
	BitsHigh                 // bits 32-63
	NumBitGroups
)

// String implements fmt.Stringer.
func (b BitGroup) String() string {
	switch b {
	case BitsLow:
		return "bits0-7"
	case BitsMid:
		return "bits8-31"
	case BitsHigh:
		return "bits32-63"
	default:
		return fmt.Sprintf("BitGroup(%d)", uint8(b))
	}
}

// Bounds returns the inclusive bit range of the group.
func (b BitGroup) Bounds() (int, int) {
	switch b {
	case BitsLow:
		return 0, 7
	case BitsMid:
		return 8, 31
	default:
		return 32, 63
	}
}

// Width returns the number of bit positions in the group.
func (b BitGroup) Width() int {
	lo, hi := b.Bounds()
	return hi - lo + 1
}

// Stratum is one fault-site equivalence class.
type Stratum struct {
	Region Region
	Bits   BitGroup
	// Population is the stratum's share of the total site space
	// (region taps × bit positions).
	Population uint64
	// Counts are the sampled outcome counts within the stratum.
	Counts [NumOutcomes]int
}

// Rates returns the stratum's outcome rates.
func (s *Stratum) Rates() [NumOutcomes]float64 {
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	var out [NumOutcomes]float64
	if total == 0 {
		return out
	}
	for o := range s.Counts {
		out[o] = float64(s.Counts[o]) / float64(total)
	}
	return out
}

// StratifiedConfig parameterizes an equivalence-class campaign.
type StratifiedConfig struct {
	// TrialsPerStratum is the number of injections sampled from each
	// non-empty stratum (default 20).
	TrialsPerStratum int
	// Class selects the register file.
	Class Class
	// Seed, Workers, StepFactor, Window as in Config.
	Seed       uint64
	Workers    int
	StepFactor float64
	Window     uint64
}

// StratifiedResult aggregates an equivalence-class campaign.
type StratifiedResult struct {
	Strata []Stratum
	// TotalPopulation is the size of the whole weighted site space.
	TotalPopulation uint64
	// Trials is the total number of injections performed.
	Trials int
}

// WeightedRates estimates the whole-program outcome rates by weighting
// each stratum's sampled rates with its population share — the
// Relyzer-style full-coverage estimate.
func (r *StratifiedResult) WeightedRates() [NumOutcomes]float64 {
	var out [NumOutcomes]float64
	if r.TotalPopulation == 0 {
		return out
	}
	for i := range r.Strata {
		s := &r.Strata[i]
		rates := s.Rates()
		w := float64(s.Population) / float64(r.TotalPopulation)
		for o := range out {
			out[o] += w * rates[o]
		}
	}
	return out
}
