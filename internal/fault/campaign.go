package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vsresil/internal/stats"
)

// Outcome is the paper's four-way classification of an injected
// fault's effect (§V-A).
type Outcome uint8

// Outcomes in the paper's order.
const (
	OutcomeMask Outcome = iota
	OutcomeCrash
	OutcomeSDC
	OutcomeHang
	NumOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeMask:
		return "Mask"
	case OutcomeCrash:
		return "Crash"
	case OutcomeSDC:
		return "SDC"
	case OutcomeHang:
		return "Hang"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// CrashKind subdivides crashes the way the paper's analysis does
// (§VI-A): 92% segmentation-fault-like signals vs 8% application
// aborts from internal constraint violations.
type CrashKind uint8

// Crash subcategories.
const (
	CrashNone  CrashKind = iota
	CrashSegv            // recovered runtime panic (memory access violation analogue)
	CrashAbort           // application returned an internal-constraint error
)

// String implements fmt.Stringer.
func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashSegv:
		return "segv"
	case CrashAbort:
		return "abort"
	default:
		return fmt.Sprintf("CrashKind(%d)", uint8(k))
	}
}

// App is one run of the application under test. It must be safe to
// call concurrently with distinct machines and must produce a
// deterministic output for a nil-plan machine (the golden run).
// The returned bytes are the application's output artifact (for VS, an
// encoded panorama); AFI's result check is a byte comparison.
type App func(m *Machine) ([]byte, error)

// Default liveness windows, in taps. GPR values (indices, bounds,
// pixels in flight) stay live across many instructions; FPR values in
// this workload are convert-transform-convert temporaries (§VI-A), so
// a flipped FPR bit almost never meets a live use.
const (
	DefaultGPRWindow = 96
	DefaultFPRWindow = 2
)

// DefaultStepFactor sizes the hang budget as a multiple of the golden
// run's step count.
const DefaultStepFactor = 4

// Config parameterizes a fault-injection campaign.
type Config struct {
	// Trials is the number of error injections (the paper uses 1000
	// per register class, 5000 for the SDC-quality study).
	Trials int
	// Class selects GPR or FPR injections.
	Class Class
	// Region restricts injections to one function (RAny = whole app).
	Region Region
	// Window overrides the liveness window (0 = class default).
	Window uint64
	// Seed makes the campaign reproducible.
	Seed uint64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// StepFactor sizes the hang budget as a multiple of golden steps
	// (0 = DefaultStepFactor).
	StepFactor float64
	// KeepSDCOutputs retains the corrupted output bytes of every SDC
	// trial for quality analysis (Fig 12).
	KeepSDCOutputs bool
	// CheckpointEvery controls the rate-curve snapshot interval
	// (0 = Trials/20, for Fig 9a).
	CheckpointEvery int
}

// Trial records one injection experiment.
type Trial struct {
	Plan    Plan
	Outcome Outcome
	Crash   CrashKind
	// Landed reports whether the flip hit a live value (false means
	// the fault was masked by register deadness/rewrite).
	Landed bool
	// Output holds the corrupted output for SDC trials when
	// Config.KeepSDCOutputs is set.
	Output []byte
	// Err records the crash error for CrashAbort/CrashSegv trials.
	Err error
}

// Result aggregates a campaign.
type Result struct {
	Config Config
	// GoldenOutput is the fault-free output the SDC check compares
	// against.
	GoldenOutput []byte
	// GoldenSteps is the golden run's dynamic step count.
	GoldenSteps uint64
	// TotalTaps is the size of the injection site space.
	TotalTaps uint64
	// Counts holds the number of trials per outcome.
	Counts [NumOutcomes]int
	// CrashCounts subdivides OutcomeCrash by kind.
	CrashCounts map[CrashKind]int
	// RegHist and BitHist are the Fig 9b coverage histograms.
	RegHist *stats.Histogram
	BitHist *stats.Histogram
	// Curve tracks outcome rates vs injection count (Fig 9a).
	Curve *stats.RateCurve
	// Trials holds every trial in plan order.
	Trials []Trial
}

// Rate returns the fraction of trials with the given outcome.
func (r *Result) Rate(o Outcome) float64 {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(total)
}

// Rates returns the Mask, Crash, SDC and Hang rates in outcome order.
func (r *Result) Rates() [NumOutcomes]float64 {
	var out [NumOutcomes]float64
	for o := Outcome(0); o < NumOutcomes; o++ {
		out[o] = r.Rate(o)
	}
	return out
}

// SDCOutputs returns the retained corrupted outputs of SDC trials.
func (r *Result) SDCOutputs() [][]byte {
	var outs [][]byte
	for _, t := range r.Trials {
		if t.Outcome == OutcomeSDC && t.Output != nil {
			outs = append(outs, t.Output)
		}
	}
	return outs
}

// ErrNoTaps is returned when the golden run exposes no injection sites
// for the requested class/region.
var ErrNoTaps = errors.New("fault: golden run executed no taps for the requested class/region")

// RunCampaign executes a statistical fault-injection campaign against
// app: one golden run to size the site space and capture the reference
// output, then cfg.Trials injected runs on a bounded worker pool.
// Trials are deterministic in cfg.Seed regardless of worker count.
func RunCampaign(ctx context.Context, cfg Config, app App) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: non-positive trial count %d", cfg.Trials)
	}
	golden := New()
	goldenOut, err := app(golden)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}

	var totalTaps uint64
	if cfg.Region == RAny {
		if cfg.Class == GPR {
			totalTaps = golden.GPRTaps()
		} else {
			totalTaps = golden.FPRTaps()
		}
	} else {
		totalTaps = golden.RegionTaps(cfg.Class, cfg.Region)
	}
	if totalTaps == 0 {
		return nil, ErrNoTaps
	}

	window := cfg.Window
	if window == 0 {
		if cfg.Class == GPR {
			window = DefaultGPRWindow
		} else {
			window = DefaultFPRWindow
		}
	}
	stepFactor := cfg.StepFactor
	if stepFactor <= 0 {
		stepFactor = DefaultStepFactor
	}
	budget := uint64(float64(golden.Steps()) * stepFactor)

	// Pre-generate all plans from the seed so results do not depend on
	// worker scheduling.
	rng := stats.NewRNG(cfg.Seed)
	plans := make([]Plan, cfg.Trials)
	for i := range plans {
		plans[i] = Plan{
			Class:  cfg.Class,
			Reg:    rng.Intn(NumRegisters),
			Bit:    rng.Intn(RegisterBits),
			Site:   rng.Uint64() % totalTaps,
			Window: window,
			Region: cfg.Region,
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	trials := make([]Trial, cfg.Trials)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				trials[i] = runTrial(plans[i], budget, goldenOut, cfg.KeepSDCOutputs, app)
			}
		}()
	}
	var ctxErr error
feed:
	for i := 0; i < cfg.Trials; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if ctxErr != nil {
		return nil, fmt.Errorf("fault: campaign interrupted: %w", ctxErr)
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = cfg.Trials / 20
		if every == 0 {
			every = 1
		}
	}
	res := &Result{
		Config:       cfg,
		GoldenOutput: goldenOut,
		GoldenSteps:  golden.Steps(),
		TotalTaps:    totalTaps,
		CrashCounts:  make(map[CrashKind]int),
		RegHist:      stats.NewHistogram(NumRegisters),
		BitHist:      stats.NewHistogram(RegisterBits),
		Curve:        stats.NewRateCurve(int(NumOutcomes), every),
		Trials:       trials,
	}
	for _, t := range trials {
		res.Counts[t.Outcome]++
		if t.Outcome == OutcomeCrash {
			res.CrashCounts[t.Crash]++
		}
		res.RegHist.Add(t.Plan.Reg)
		res.BitHist.Add(t.Plan.Bit)
		res.Curve.Add(int(t.Outcome))
	}
	return res, nil
}

// runTrial executes one injection and classifies it, recovering panics
// the way AFI's Fault Monitor catches signals.
func runTrial(plan Plan, budget uint64, goldenOut []byte, keepSDC bool, app App) (trial Trial) {
	trial.Plan = plan
	m := NewWithPlan(plan, budget)
	defer func() {
		trial.Landed = m.Injected()
		if r := recover(); r != nil {
			if h, ok := r.(hangError); ok {
				trial.Outcome = OutcomeHang
				trial.Err = h
				return
			}
			trial.Outcome = OutcomeCrash
			// Go runtime errors (slice bounds, nil dereference) are the
			// analogue of release-build segmentation faults; explicit
			// panics raised by application/library validation are the
			// analogue of assertion aborts (the paper's 92%/8% split,
			// §VI-A).
			if _, isRuntime := r.(runtime.Error); isRuntime {
				trial.Crash = CrashSegv
			} else {
				trial.Crash = CrashAbort
			}
			trial.Err = fmt.Errorf("fault: recovered panic: %v", r)
		}
	}()
	out, err := app(m)
	if err != nil {
		trial.Outcome = OutcomeCrash
		trial.Crash = CrashAbort
		trial.Err = err
		return trial
	}
	if bytesEqual(out, goldenOut) {
		trial.Outcome = OutcomeMask
		return trial
	}
	trial.Outcome = OutcomeSDC
	if keepSDC {
		trial.Output = out
	}
	return trial
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
