package fault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vsresil/internal/stats"
)

// Outcome is the paper's four-way classification of an injected
// fault's effect (§V-A).
type Outcome uint8

// Outcomes in the paper's order.
const (
	OutcomeMask Outcome = iota
	OutcomeCrash
	OutcomeSDC
	OutcomeHang
	NumOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeMask:
		return "Mask"
	case OutcomeCrash:
		return "Crash"
	case OutcomeSDC:
		return "SDC"
	case OutcomeHang:
		return "Hang"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// CrashKind subdivides crashes the way the paper's analysis does
// (§VI-A): 92% segmentation-fault-like signals vs 8% application
// aborts from internal constraint violations.
type CrashKind uint8

// Crash subcategories.
const (
	CrashNone  CrashKind = iota
	CrashSegv            // recovered runtime panic (memory access violation analogue)
	CrashAbort           // application returned an internal-constraint error
)

// String implements fmt.Stringer.
func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashSegv:
		return "segv"
	case CrashAbort:
		return "abort"
	default:
		return fmt.Sprintf("CrashKind(%d)", uint8(k))
	}
}

// App is one run of the application under test. It must be safe to
// call concurrently with distinct machines and must produce a
// deterministic output for a nil-plan machine (the golden run).
// The returned bytes are the application's output artifact (for VS, an
// encoded panorama); AFI's result check is a byte comparison.
type App func(m *Machine) ([]byte, error)

// Default liveness windows, in taps. GPR values (indices, bounds,
// pixels in flight) stay live across many instructions; FPR values in
// this workload are convert-transform-convert temporaries (§VI-A), so
// a flipped FPR bit almost never meets a live use.
const (
	DefaultGPRWindow = 96
	DefaultFPRWindow = 2
)

// DefaultStepFactor sizes the hang budget as a multiple of the golden
// run's step count.
const DefaultStepFactor = 4

// Config parameterizes a fault-injection campaign.
type Config struct {
	// Trials is the number of error injections (the paper uses 1000
	// per register class, 5000 for the SDC-quality study).
	Trials int
	// Class selects GPR or FPR injections.
	Class Class
	// Region restricts injections to one function (RAny = whole app).
	Region Region
	// Window overrides the liveness window (0 = class default).
	Window uint64
	// Seed makes the campaign reproducible.
	Seed uint64
	// Workers bounds the number of concurrent trial workers
	// (0 = GOMAXPROCS). The effective count is clamped to the number
	// of pending trials — plans not already satisfied by Resume
	// records — so a mostly-resumed campaign never spawns idle
	// goroutines. Workers set inter-trial parallelism only; it
	// composes with bucket batching (trials resuming from the same
	// golden checkpoint are fed to workers as bucket chunks, see
	// fastpath.Batching) and with intra-trial kernel tiling
	// (fastpath.Tiling), and results are bit-identical for every
	// worker count either way.
	Workers int
	// StepFactor sizes the hang budget as a multiple of golden steps
	// (0 = DefaultStepFactor).
	StepFactor float64
	// KeepSDCOutputs retains the corrupted output bytes of every SDC
	// trial for quality analysis (Fig 12).
	KeepSDCOutputs bool
	// CheckpointEvery controls the rate-curve snapshot interval
	// (0 = Trials/20, for Fig 9a).
	CheckpointEvery int
	// MaxSDCOutputs caps how many SDC outputs KeepSDCOutputs retains
	// (<= 0 = unlimited). Long campaigns otherwise hold every corrupted
	// panorama in memory at once. Once the cap is hit, SDC trials are
	// still counted but only the MaxSDCOutputs lowest-index SDC trials
	// keep their output bytes — the retained subset is deterministic
	// regardless of worker count and completion order.
	MaxSDCOutputs int
	// OnSDCOutput, if set, streams each SDC trial's corrupted output to
	// the callback instead of retaining it in Result.Trials, bounding
	// campaign memory regardless of SDC count. Invocations are
	// serialized by the campaign. KeepSDCOutputs and MaxSDCOutputs are
	// ignored when OnSDCOutput is set.
	OnSDCOutput func(rec TrialRecord, output []byte)
	// OnTrial, if set, is called once per completed injection with the
	// trial's checkpoint record, in completion order (not index order).
	// Invocations are serialized by the campaign. A service journals
	// these records so an interrupted campaign can be resumed.
	OnTrial func(rec TrialRecord)
	// Resume holds checkpoint records of trials already completed by a
	// previous, interrupted run of the same Config (same Trials, Class,
	// Region, Window and Seed). Those trials are merged into the Result
	// without re-executing; because plans are pre-generated from Seed
	// and each trial is deterministic in its plan, a resumed campaign
	// reaches the same outcome counts as an uninterrupted one.
	Resume []TrialRecord
	// PlanTrials is the plan-space size when this run is one shard of a
	// larger campaign: plans for trials [0, PlanTrials) are
	// pre-generated from Seed exactly as the unsharded campaign would
	// generate them, and this run executes only the window
	// [PlanOffset, PlanOffset+Trials). 0 means Trials (the whole
	// campaign is one shard). TrialRecord indices are plan indices, so
	// checkpoints from a shard replay into the same shard — or into the
	// unsharded campaign — unambiguously.
	PlanTrials int
	// PlanOffset is the first plan index this run executes (sharding).
	PlanOffset int
	// Plans, when non-nil, supplies the exact plans this run executes
	// instead of drawing them from Seed — the planner seam
	// (internal/plan) computes rounds of plans and hands each round to
	// the executor through this field. len(Plans) must equal Trials.
	// PlanOffset still names the plan index of Plans[0] (TrialRecord
	// indices stay plan indices, so journaling and resume work
	// unchanged), and PlanTrials must cover PlanOffset+Trials. Seed is
	// ignored for plan generation when Plans is set.
	Plans []Plan
	// Golden, when non-nil, is a precomputed golden run of the same
	// app, and RunCampaign skips its own fault-free execution. Because
	// the application is deterministic under a nil plan, a captured
	// golden run is valid for every campaign over the same app and
	// input, whatever the class, region or seed — the Fig 9/10/11
	// harnesses share one per app, and the vsd service caches them per
	// job spec.
	Golden *GoldenRun
	// Staged, when non-nil, is the stage-resumable view of the same
	// app, enabling golden-prefix skipping: trials whose injection site
	// falls past a recorded stage boundary resume from that boundary's
	// golden checkpoint instead of re-executing the fault-free prefix.
	// Requires a golden run carrying checkpoints of the current schema
	// (CaptureGoldenStaged); campaigns fall back to full execution
	// otherwise, and the fastpath.PrefixSkip kill switch forces full
	// execution for equivalence testing.
	Staged StagedApp
}

// GoldenRun is the reusable result of one fault-free execution: the
// reference output the SDC check compares against plus the tap-space
// geometry every plan is drawn from. Capture it once with
// CaptureGolden and share it across campaigns of the same app.
type GoldenRun struct {
	// Output is the application's fault-free output artifact.
	Output []byte
	// Steps is the golden run's dynamic step count (sizes hang budgets).
	Steps uint64
	// GPRTaps and FPRTaps are the whole-program tap-space sizes.
	GPRTaps, FPRTaps uint64
	// RegionGPR and RegionFPR are the per-region tap-space sizes.
	RegionGPR, RegionFPR [NumRegions]uint64
	// Checkpoints are the stage-boundary snapshots CaptureGoldenStaged
	// recorded, in execution order; empty for plain captures.
	Checkpoints []Checkpoint
	// Schema is the checkpoint schema version the capture used (see
	// CheckpointSchema). Campaigns only skip prefixes when it matches
	// the current schema, so a golden run serialized or cached across a
	// boundary-layout change degrades to full execution, never to a
	// wrong resume.
	Schema int
}

// Taps returns the injection-site space size for a class/region pair.
func (g *GoldenRun) Taps(c Class, r Region) uint64 {
	if r == RAny {
		if c == GPR {
			return g.GPRTaps
		}
		return g.FPRTaps
	}
	if r >= NumRegions {
		return 0
	}
	if c == GPR {
		return g.RegionGPR[r]
	}
	return g.RegionFPR[r]
}

// CaptureGolden executes one fault-free run of app and returns the
// reusable golden state. The machine's full tap geometry is recorded so
// the result can seed campaigns of any class or region. The result
// carries no checkpoints — use CaptureGoldenStaged when the app has a
// staged view and campaigns should skip fault-free trial prefixes.
func CaptureGolden(app App) (*GoldenRun, error) {
	m := New()
	out, err := app(m)
	if err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	return newGoldenRun(out, m), nil
}

// newGoldenRun records the completed golden machine's tap geometry.
func newGoldenRun(out []byte, m *Machine) *GoldenRun {
	g := &GoldenRun{
		Output:  out,
		Steps:   m.Steps(),
		GPRTaps: m.GPRTaps(),
		FPRTaps: m.FPRTaps(),
	}
	for r := Region(0); r < NumRegions; r++ {
		g.RegionGPR[r] = m.RegionTaps(GPR, r)
		g.RegionFPR[r] = m.RegionTaps(FPR, r)
	}
	return g
}

// TrialRecord is the compact, serializable summary of one completed
// trial — everything a checkpoint needs to avoid rerunning it.
type TrialRecord struct {
	Index   int       `json:"i"`
	Outcome Outcome   `json:"o"`
	Crash   CrashKind `json:"c,omitempty"`
	Landed  bool      `json:"l,omitempty"`
}

// Trial records one injection experiment.
type Trial struct {
	Plan    Plan
	Outcome Outcome
	Crash   CrashKind
	// Landed reports whether the flip hit a live value (false means
	// the fault was masked by register deadness/rewrite).
	Landed bool
	// Output holds the corrupted output for SDC trials when
	// Config.KeepSDCOutputs is set.
	Output []byte
	// Err records the crash error for CrashAbort/CrashSegv trials.
	Err error
}

// Record returns the trial's checkpoint record for position index.
func (t *Trial) Record(index int) TrialRecord {
	return TrialRecord{Index: index, Outcome: t.Outcome, Crash: t.Crash, Landed: t.Landed}
}

// SchedStats reports how the campaign executor organized its trials.
// The numbers are purely observational — scheduling never changes a
// campaign observable — and deterministic in the Config (never in
// worker timing): the bucket decomposition depends only on the plan
// space and the golden checkpoint stream, and the cutoff counts only
// on the per-plan execution.
type SchedStats struct {
	// Buckets is the number of distinct checkpoint buckets scheduled;
	// Batched is the number of trials they covered. Trials whose site
	// precedes the first boundary (or campaigns without batching) run
	// unbatched and appear in neither.
	Buckets int
	Batched int
	// RestoresSaved is the checkpoint restores amortized away by
	// batching: Batched trials shared Buckets restored views instead
	// of restoring one each.
	RestoresSaved int
	// BucketSizes is the trials-per-bucket histogram, in checkpoint
	// (execution) order.
	BucketSizes []int
	// EarlyMasks counts trials abandoned at liveness-window expiry
	// (the flip conclusively missed, so the suffix is the golden run);
	// Converged counts trials abandoned at a later stage boundary
	// whose counters and state had re-joined the golden run bit-exactly.
	// Both classify as Mask, exactly as running the suffix would.
	EarlyMasks int
	Converged  int
}

// merge folds another run's scheduler stats into s (shard merges).
func (s *SchedStats) merge(o SchedStats) {
	s.Buckets += o.Buckets
	s.Batched += o.Batched
	s.RestoresSaved += o.RestoresSaved
	s.BucketSizes = append(s.BucketSizes, o.BucketSizes...)
	s.EarlyMasks += o.EarlyMasks
	s.Converged += o.Converged
}

// MergeSched accumulates another result's scheduler statistics; the
// campaign engine's shard merge calls this alongside Accumulate.
func (r *Result) MergeSched(o *Result) { r.Sched.merge(o.Sched) }

// Result aggregates a campaign.
type Result struct {
	Config Config
	// GoldenOutput is the fault-free output the SDC check compares
	// against.
	GoldenOutput []byte
	// GoldenSteps is the golden run's dynamic step count.
	GoldenSteps uint64
	// TotalTaps is the size of the injection site space.
	TotalTaps uint64
	// Counts holds the number of trials per outcome.
	Counts [NumOutcomes]int
	// CrashCounts subdivides OutcomeCrash by kind.
	CrashCounts map[CrashKind]int
	// RegHist and BitHist are the Fig 9b coverage histograms.
	RegHist *stats.Histogram
	BitHist *stats.Histogram
	// Curve tracks outcome rates vs injection count (Fig 9a).
	Curve *stats.RateCurve
	// Trials holds every trial of this run's plan window in plan order
	// (the whole campaign unless Config selects a shard window, in
	// which case entry i is plan PlanOffset+i). When the campaign was
	// interrupted, entries for never-executed plans are zero-valued;
	// Completed says how many entries are real.
	Trials []Trial
	// Completed is the number of trials actually executed or resumed
	// from a checkpoint; it equals Config.Trials unless the campaign
	// was interrupted.
	Completed int
	// Sched reports how the executor scheduled this run's trials
	// (bucket decomposition, restores amortized, suffix cutoffs).
	Sched SchedStats
}

// Rate returns the fraction of trials with the given outcome.
func (r *Result) Rate(o Outcome) float64 {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(total)
}

// Rates returns the Mask, Crash, SDC and Hang rates in outcome order.
func (r *Result) Rates() [NumOutcomes]float64 {
	var out [NumOutcomes]float64
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for o, c := range r.Counts {
		out[o] = float64(c) / float64(total)
	}
	return out
}

// SDCOutputs returns the retained corrupted outputs of SDC trials.
func (r *Result) SDCOutputs() [][]byte {
	var outs [][]byte
	for _, t := range r.Trials {
		if t.Outcome == OutcomeSDC && t.Output != nil {
			outs = append(outs, t.Output)
		}
	}
	return outs
}

// ErrNoTaps is returned when the golden run exposes no injection sites
// for the requested class/region.
var ErrNoTaps = errors.New("fault: golden run executed no taps for the requested class/region")

// NewResult returns an empty Result for cfg with the aggregate
// structures sized and the golden reference recorded; callers fold
// completed trials in with Accumulate, in plan-index order.
// RunCampaign builds its Result through this path, and the campaign
// engine's shard merge uses the same path — which is what makes a
// merged shard set bit-identical to the unsharded run.
func NewResult(cfg Config, goldenOut []byte, goldenSteps, totalTaps uint64) *Result {
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = cfg.Trials / 20
		if every == 0 {
			every = 1
		}
	}
	return &Result{
		Config:       cfg,
		GoldenOutput: goldenOut,
		GoldenSteps:  goldenSteps,
		TotalTaps:    totalTaps,
		CrashCounts:  make(map[CrashKind]int),
		RegHist:      stats.NewHistogram(NumRegisters),
		BitHist:      stats.NewHistogram(RegisterBits),
		Curve:        stats.NewRateCurve(int(NumOutcomes), every),
	}
}

// Accumulate folds one completed trial into the outcome counts, crash
// split, coverage histograms and rate curve. Trials must be
// accumulated in plan-index order for the curve checkpoints to be
// deterministic. Accumulate does not append to r.Trials — the caller
// owns that slice.
func (r *Result) Accumulate(t *Trial) {
	r.Completed++
	r.Counts[t.Outcome]++
	if t.Outcome == OutcomeCrash {
		r.CrashCounts[t.Crash]++
	}
	r.RegHist.Add(t.Plan.Reg)
	r.BitHist.Add(t.Plan.Bit)
	r.Curve.Add(int(t.Outcome))
}

// WindowFor resolves a liveness-window override against the class
// default: window if non-zero, else DefaultGPRWindow/DefaultFPRWindow.
func WindowFor(class Class, window uint64) uint64 {
	if window != 0 {
		return window
	}
	if class == GPR {
		return DefaultGPRWindow
	}
	return DefaultFPRWindow
}

// GeneratePlans draws the first n plans of the campaign plan space for
// (seed, class, region) over a site space of totalTaps, with every
// plan carrying the given (already resolved, see WindowFor) liveness
// window. This is THE plan stream: RunCampaign, the shard
// decomposition and the static planner all draw from it, which is what
// keeps a shard's plans identical to the unsharded campaign's and the
// planner seam bit-identical to the pre-seam executor.
func GeneratePlans(seed uint64, class Class, region Region, window uint64, n int, totalTaps uint64) []Plan {
	rng := stats.NewRNG(seed)
	plans := make([]Plan, n)
	for i := range plans {
		plans[i] = Plan{
			Class:  class,
			Reg:    rng.Intn(NumRegisters),
			Bit:    rng.Intn(RegisterBits),
			Site:   rng.Uint64() % totalTaps,
			Window: window,
			Region: region,
		}
	}
	return plans
}

// RunCampaign executes a statistical fault-injection campaign against
// app: one golden run to size the site space and capture the reference
// output (skipped when cfg.Golden supplies a precomputed one), then
// cfg.Trials injected runs on a bounded worker pool. Trials are
// deterministic in cfg.Seed regardless of worker count. A trial no
// longer necessarily executes the application end to end: with a
// staged app and a checkpointed golden run, each trial restores the
// latest golden stage boundary before its injection site and executes
// only the remaining stages — bit-identical to a full run, because the
// skipped prefix is provably fault-free for that trial's plan.
//
// RunCampaign is the one-shot wrapper around a Session: it opens a
// persistent executor session, runs the single plan window through it
// and closes it. Callers executing many windows of one campaign (the
// planner round loop, fabric round-shard leases) hold a Session open
// instead and pay the pool/preparation setup once.
//
// If ctx is canceled mid-campaign, RunCampaign stops feeding new
// trials, waits for in-flight ones, and returns the partial Result
// (Completed < Config.Trials) together with a non-nil error wrapping
// ctx's error — callers that want partial data on interruption must
// check the Result even when err != nil.
func RunCampaign(ctx context.Context, cfg Config, app App) (*Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: non-positive trial count %d", cfg.Trials)
	}
	planTrials := cfg.PlanTrials
	if planTrials == 0 {
		planTrials = cfg.Trials
	}
	if cfg.PlanOffset < 0 || cfg.PlanOffset+cfg.Trials > planTrials {
		return nil, fmt.Errorf("fault: plan window [%d,%d) outside plan space [0,%d)",
			cfg.PlanOffset, cfg.PlanOffset+cfg.Trials, planTrials)
	}
	golden := cfg.Golden
	if golden == nil {
		var err error
		if cfg.Staged != nil {
			golden, err = CaptureGoldenStaged(cfg.Staged)
		} else {
			golden, err = CaptureGolden(app)
		}
		if err != nil {
			return nil, err
		}
	}
	s, err := NewSession(SessionConfig{App: app, Staged: cfg.Staged, Golden: golden, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// The session validates cfg.Golden against its own golden; a nil
	// cfg.Golden (we captured above) is accepted and the captured run is
	// used, so Result.Config stays exactly the caller's cfg.
	return s.Run(ctx, cfg)
}

// maxBucketChunk caps how many trials one channel send hands a worker,
// keeping cancellation responsive even when one bucket dominates the
// campaign (the composite bucket typically holds over a third of all
// plans).
const maxBucketChunk = 16

// schedBucket is one checkpoint bucket of the batched schedule: the
// shared golden boundary plus the once-per-bucket prepared view.
type schedBucket struct {
	cp       *Checkpoint
	cpIdx    int
	prepOnce sync.Once
	prep     any
}

// trialBatch is one unit of worker work: a chunk of plan indices
// sharing a resume checkpoint (bucket == nil for unbatched trials,
// which resolve their checkpoint individually).
type trialBatch struct {
	bucket *schedBucket
	idxs   []int
}

// trialExec carries the per-campaign invariants of trial execution so
// workers share one copy; the atomic counters fold into SchedStats
// after the pool drains.
type trialExec struct {
	budget    uint64
	goldenOut []byte
	keepSDC   bool
	app       App
	staged    StagedApp
	bapp      BatchStagedApp // non-nil only when bucket batching is live
	golden    *GoldenRun
	earlyMask bool

	earlyMasks atomic.Int64
	converged  atomic.Int64
}

// run executes one injection and classifies it, recovering panics the
// way AFI's Fault Monitor catches signals. keepSDC retains the
// corrupted output bytes of SDC trials for the caller to stream or
// store.
//
// When cp is non-nil the trial does not execute the whole application:
// the machine's tap counters are fast-forwarded to the checkpoint's
// and the staged app executes only the stages past the boundary. The
// skipped prefix lies strictly before the plan's site in every
// counter the plan reads, so it could neither fire, resolve, hang nor
// crash there — its effects are exactly the golden snapshot the trial
// restores, and the classification below is unchanged.
//
// Two suffix cutoffs ride on the batching gate, both classifying
// without finishing the run:
//
//   - Early mask: when the plan's window expires without an injection,
//     every tap it observed was an identity pass-through, so the whole
//     run is the golden run. The machine raises maskResolved and the
//     trial is classified Mask with Landed=false — exactly what running
//     to completion would record.
//   - Boundary convergence: once the plan is resolved (fired or
//     expired), if a later stage boundary is reached with tap counters
//     equal to the golden checkpoint's and bit-equal state, the
//     remaining suffix is deterministically the golden suffix. The
//     guard fires, the app abandons the run, and the trial is
//     classified Mask with Landed=m.Injected() — again identical to a
//     full run (a landed injection whose effects died before the
//     boundary is a Mask either way).
func (e *trialExec) run(plan Plan, cp *Checkpoint, cpIdx int, prep any) (trial Trial) {
	trial.Plan = plan
	m := NewWithPlan(plan, e.budget)
	if e.earlyMask {
		m.EnableEarlyMask()
	}
	defer func() {
		trial.Landed = m.Injected()
		if r := recover(); r != nil {
			if _, ok := r.(maskResolved); ok {
				trial.Outcome = OutcomeMask
				e.earlyMasks.Add(1)
				return
			}
			if h, ok := r.(hangError); ok {
				trial.Outcome = OutcomeHang
				trial.Err = h
				return
			}
			trial.Outcome = OutcomeCrash
			// Go runtime errors (slice bounds, nil dereference) are the
			// analogue of release-build segmentation faults; explicit
			// panics raised by application/library validation are the
			// analogue of assertion aborts (the paper's 92%/8% split,
			// §VI-A).
			if _, isRuntime := r.(runtime.Error); isRuntime {
				trial.Crash = CrashSegv
			} else {
				trial.Crash = CrashAbort
			}
			trial.Err = fmt.Errorf("fault: recovered panic: %v", r)
		}
	}()
	var out []byte
	var err error
	switch {
	case cp != nil && e.bapp != nil:
		m.SeedCounters(cp.Counters)
		// cursor walks the golden checkpoint stream in lockstep with the
		// boundaries the resumed suffix crosses; a name mismatch means
		// the injection perturbed control flow enough to change the
		// boundary sequence, after which realignment is impossible and
		// the guard disables itself for the rest of the trial.
		cursor := cpIdx + 1
		guard := func(name string, state any) bool {
			if !m.Resolved() || cursor >= len(e.golden.Checkpoints) {
				return false
			}
			gcp := &e.golden.Checkpoints[cursor]
			if gcp.Name != name {
				cursor = len(e.golden.Checkpoints)
				return false
			}
			cursor++
			return m.Counters() == gcp.Counters && e.bapp.StateEqual(gcp.State, state)
		}
		var conv bool
		out, conv, err = e.bapp.ResumeGuarded(m, cp.State, prep, guard)
		if conv && err == nil {
			trial.Outcome = OutcomeMask
			e.converged.Add(1)
			return trial
		}
	case cp != nil:
		m.SeedCounters(cp.Counters)
		out, err = e.staged.Resume(m, cp.State)
	default:
		out, err = e.app(m)
	}
	if err != nil {
		trial.Outcome = OutcomeCrash
		trial.Crash = CrashAbort
		trial.Err = err
		return trial
	}
	if bytes.Equal(out, e.goldenOut) {
		trial.Outcome = OutcomeMask
		return trial
	}
	trial.Outcome = OutcomeSDC
	if e.keepSDC {
		trial.Output = out
	}
	return trial
}
