package fault

import (
	"bytes"
	"context"
	"testing"
)

func TestAnalyzeCrossTabulation(t *testing.T) {
	res := &Result{
		Trials: []Trial{
			{Plan: Plan{Reg: 0, Bit: 0}, Outcome: OutcomeMask},
			{Plan: Plan{Reg: 0, Bit: 40}, Outcome: OutcomeCrash},
			{Plan: Plan{Reg: 1, Bit: 10}, Outcome: OutcomeSDC},
			{Plan: Plan{Reg: 1, Bit: 63}, Outcome: OutcomeCrash},
		},
	}
	a := Analyze(res)
	if a.Total != 4 {
		t.Errorf("Total = %d", a.Total)
	}
	if a.ByRegister[0][OutcomeMask] != 1 || a.ByRegister[0][OutcomeCrash] != 1 {
		t.Error("register 0 counts wrong")
	}
	if a.ByBit[40][OutcomeCrash] != 1 {
		t.Error("bit 40 counts wrong")
	}
	if a.ByBitGroup[BitsLow][OutcomeMask] != 1 ||
		a.ByBitGroup[BitsMid][OutcomeSDC] != 1 ||
		a.ByBitGroup[BitsHigh][OutcomeCrash] != 2 {
		t.Error("bit group counts wrong")
	}
}

func TestBitGroupOf(t *testing.T) {
	cases := map[int]BitGroup{0: BitsLow, 7: BitsLow, 8: BitsMid, 31: BitsMid, 32: BitsHigh, 63: BitsHigh}
	for bit, want := range cases {
		if got := bitGroupOf(bit); got != want {
			t.Errorf("bitGroupOf(%d) = %v, want %v", bit, got, want)
		}
	}
}

func TestGroupRatesEmpty(t *testing.T) {
	a := &Analysis{}
	for _, r := range a.GroupRates(BitsLow) {
		if r != 0 {
			t.Error("empty group rates should be zero")
		}
	}
	if a.RegisterCrashSpread(1) != 0 {
		t.Error("empty spread should be zero")
	}
}

func TestAnalyzeOnRealCampaign(t *testing.T) {
	res, err := RunCampaign(context.Background(), Config{
		Trials: 400, Class: GPR, Region: RAny, Seed: 7, Workers: 2,
	}, toyApp)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	a := Analyze(res)
	if a.Total != 400 {
		t.Fatalf("Total = %d", a.Total)
	}
	// High bits of address-forming values crash more than low bits —
	// the structural claim behind the bit-group partition.
	lo := a.GroupRates(BitsLow)
	hi := a.GroupRates(BitsHigh)
	if hi[OutcomeCrash] <= lo[OutcomeCrash] {
		t.Errorf("high-bit crash rate %.3f not above low-bit %.3f",
			hi[OutcomeCrash], lo[OutcomeCrash])
	}
	var buf bytes.Buffer
	a.Write(&buf)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}
