package fault

import "testing"

// TestCountersSeedRoundtrip checks the checkpoint seam at the machine
// level: counters snapshotted mid-run and seeded into a fresh machine
// make its subsequent taps index exactly like the original's.
func TestCountersSeedRoundtrip(t *testing.T) {
	m := New()
	done := m.Enter(RFASTDetect)
	for i := 0; i < 7; i++ {
		m.Idx(i)
	}
	m.F64(1.5)
	done()
	m.Word(42)

	tc := m.Counters()
	if tc.GPR != 8 || tc.FPR != 1 || tc.Steps != 9 {
		t.Fatalf("counters = %+v, want GPR=8 FPR=1 Steps=9", tc)
	}
	if got := tc.For(GPR, RFASTDetect); got != 7 {
		t.Errorf("For(GPR, RFASTDetect) = %d, want 7", got)
	}
	if got := tc.For(FPR, RAny); got != 1 {
		t.Errorf("For(FPR, RAny) = %d, want 1", got)
	}

	fresh := New()
	fresh.SeedCounters(tc)
	if fresh.Counters() != tc {
		t.Fatalf("seeded counters = %+v, want %+v", fresh.Counters(), tc)
	}
	// The next tap on both machines must occupy the same site index.
	m.Idx(1)
	fresh.Idx(1)
	if m.GPRTaps() != fresh.GPRTaps() || m.Steps() != fresh.Steps() {
		t.Errorf("post-seed taps diverge: (%d,%d) vs (%d,%d)",
			m.GPRTaps(), m.Steps(), fresh.GPRTaps(), fresh.Steps())
	}
}

// TestCheckpointFor checks plan bucketing: the latest boundary not past
// the plan's site, in the counter scoped to the plan's class/region.
func TestCheckpointFor(t *testing.T) {
	g := &GoldenRun{Schema: CheckpointSchema}
	mk := func(name string, gpr, fpr, regGPR uint64) Checkpoint {
		var tc TapCounters
		tc.GPR, tc.FPR = gpr, fpr
		tc.RegionGPR[RMatch] = regGPR
		return Checkpoint{Name: name, Counters: tc}
	}
	g.Checkpoints = []Checkpoint{
		mk("a", 10, 2, 0),
		mk("b", 20, 4, 5),
		mk("c", 30, 9, 11),
	}

	cases := []struct {
		plan Plan
		want string // "" = nil
	}{
		{Plan{Class: GPR, Region: RAny, Site: 9}, ""},    // before first boundary
		{Plan{Class: GPR, Region: RAny, Site: 10}, "a"},  // exactly on a boundary
		{Plan{Class: GPR, Region: RAny, Site: 25}, "b"},  // between boundaries
		{Plan{Class: GPR, Region: RAny, Site: 999}, "c"}, // past the last
		{Plan{Class: FPR, Region: RAny, Site: 3}, "a"},   // FPR counter stream
		{Plan{Class: GPR, Region: RMatch, Site: 4}, "a"}, // region-scoped stream
		{Plan{Class: GPR, Region: RMatch, Site: 7}, "b"},
	}
	for _, c := range cases {
		cp := g.CheckpointFor(c.plan)
		got := ""
		if cp != nil {
			got = cp.Name
		}
		if got != c.want {
			t.Errorf("CheckpointFor(%v) = %q, want %q", c.plan, got, c.want)
		}
	}
}
