package fault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// toyApp is a miniature application with a realistic mix of tap
// classes: it walks a buffer with tapped indices (crash-prone), sums
// tapped pixels (SDC/mask-prone) and runs a tapped float stage that is
// saturated away (mask-prone).
func toyApp(m *Machine) ([]byte, error) {
	buf := make([]uint8, 64)
	for i := range buf {
		buf[i] = uint8(i * 3)
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n != len(buf) {
		// Mimic an application-level sanity check that aborts.
		if n < 0 || n > len(buf) {
			return nil, errors.New("toy: invalid length")
		}
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx]) // panics if idx out of range
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

func TestCampaignGoldenIsMaskFree(t *testing.T) {
	// Window 0 means every plan misses: all outcomes must be Mask.
	res, err := RunCampaign(context.Background(), Config{
		Trials: 50, Class: GPR, Region: RAny, Seed: 1, Workers: 2,
		Window: 1, // still random hits possible; use explicit miss below
	}, func(m *Machine) ([]byte, error) {
		// An app with no taps after the plan site never gets corrupted
		// values, but taps are still counted; use a plan window of 1 on
		// a single-register app to get a mix. Here instead verify that
		// uncorrupted trials mask.
		out := make([]byte, 4)
		for i := 0; i < 4; i++ {
			out[i] = byte(m.Idx(i))
		}
		return out, nil
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 50 {
		t.Errorf("total trials = %d", total)
	}
	// With only 4 GPR taps of tiny values, most flips are masked or
	// produce small index changes; just check classification is
	// exhaustive and rates sum to 1.
	var sum float64
	for _, r := range res.Rates() {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rates sum to %v", sum)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := Config{Trials: 200, Class: GPR, Region: RAny, Seed: 42, Workers: 4}
	a, err := RunCampaign(context.Background(), cfg, toyApp)
	if err != nil {
		t.Fatalf("campaign A: %v", err)
	}
	cfg.Workers = 1
	b, err := RunCampaign(context.Background(), cfg, toyApp)
	if err != nil {
		t.Fatalf("campaign B: %v", err)
	}
	if a.Counts != b.Counts {
		t.Errorf("outcome counts differ across worker counts: %v vs %v", a.Counts, b.Counts)
	}
	for i := range a.Trials {
		if a.Trials[i].Outcome != b.Trials[i].Outcome {
			t.Fatalf("trial %d outcome differs", i)
		}
	}
}

func TestCampaignProducesAllOutcomeMachinery(t *testing.T) {
	res, err := RunCampaign(context.Background(), Config{
		Trials: 400, Class: GPR, Region: RAny, Seed: 7, Workers: 4,
	}, toyApp)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.TotalTaps == 0 || res.GoldenSteps == 0 {
		t.Error("golden run did not count taps")
	}
	if res.Counts[OutcomeMask] == 0 {
		t.Error("expected some masked trials")
	}
	if res.Counts[OutcomeCrash] == 0 {
		t.Error("expected some crashes from corrupted indices")
	}
	if res.RegHist.Total() != 400 || res.BitHist.Total() != 400 {
		t.Error("coverage histograms incomplete")
	}
	if res.Curve.Total() != 400 {
		t.Error("rate curve incomplete")
	}
	if len(res.Curve.Checkpoints) == 0 {
		t.Error("no rate curve checkpoints")
	}
}

func TestCampaignFPRMostlyMasked(t *testing.T) {
	res, err := RunCampaign(context.Background(), Config{
		Trials: 300, Class: FPR, Region: RAny, Seed: 9, Workers: 4,
	}, toyApp)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if rate := res.Rate(OutcomeMask); rate < 0.90 {
		t.Errorf("FPR mask rate = %v, want >= 0.90 (small liveness window)", rate)
	}
}

func TestCampaignKeepsSDCOutputs(t *testing.T) {
	res, err := RunCampaign(context.Background(), Config{
		Trials: 500, Class: GPR, Region: RAny, Seed: 3, Workers: 4,
		KeepSDCOutputs: true,
	}, toyApp)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	outs := res.SDCOutputs()
	if len(outs) != res.Counts[OutcomeSDC] {
		t.Errorf("kept %d SDC outputs, want %d", len(outs), res.Counts[OutcomeSDC])
	}
	for _, o := range outs {
		if bytes.Equal(o, res.GoldenOutput) {
			t.Error("SDC output equals golden output")
		}
	}
}

func TestCampaignHangDetection(t *testing.T) {
	// An app whose loop bound is tapped every iteration: a high-bit
	// corruption inflates the bound and the step budget trips.
	app := func(m *Machine) ([]byte, error) {
		sum := 0
		n := 1000
		for i := 0; i < n; i++ {
			n = m.Cnt(n) // re-tap the bound each iteration
			sum += m.Idx(i) & 1
		}
		return []byte{byte(sum)}, nil
	}
	res, err := RunCampaign(context.Background(), Config{
		Trials: 300, Class: GPR, Region: RAny, Seed: 11, Workers: 4,
		StepFactor: 2,
	}, app)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.Counts[OutcomeHang] == 0 {
		t.Error("expected hang outcomes from corrupted loop bounds")
	}
}

func TestCampaignCrashAbort(t *testing.T) {
	// An app that validates a tapped value and returns an error when it
	// is corrupted — AFI's "abort signal" crash flavor.
	app := func(m *Machine) ([]byte, error) {
		for i := 0; i < 50; i++ {
			v := m.Idx(7)
			if v != 7 {
				return nil, fmt.Errorf("toy: constraint violated: %d", v)
			}
		}
		return []byte{1}, nil
	}
	res, err := RunCampaign(context.Background(), Config{
		Trials: 200, Class: GPR, Region: RAny, Seed: 13, Workers: 2,
	}, app)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.CrashCounts[CrashAbort] == 0 {
		t.Error("expected abort-class crashes")
	}
	if res.CrashCounts[CrashAbort] != res.Counts[OutcomeCrash] {
		t.Error("all crashes here should be aborts")
	}
}

func TestCampaignRegionScoped(t *testing.T) {
	app := func(m *Machine) ([]byte, error) {
		var out []byte
		for i := 0; i < 20; i++ {
			out = append(out, byte(m.Idx(i)))
		}
		restore := m.Enter(RRemapBilinear)
		for i := 0; i < 20; i++ {
			out = append(out, m.Pix(uint8(i)))
		}
		restore()
		return out, nil
	}
	res, err := RunCampaign(context.Background(), Config{
		Trials: 100, Class: GPR, Region: RRemapBilinear, Seed: 5, Workers: 2,
	}, app)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.TotalTaps != 20 {
		t.Errorf("region tap space = %d, want 20", res.TotalTaps)
	}
	// Region-scoped injections into Pix taps can only mask or SDC —
	// never crash (no indices are tapped there).
	if res.Counts[OutcomeCrash] != 0 {
		t.Errorf("region-scoped pixel faults crashed %d times", res.Counts[OutcomeCrash])
	}
}

func TestCampaignErrors(t *testing.T) {
	okApp := func(m *Machine) ([]byte, error) { m.Idx(1); return []byte{0}, nil }

	if _, err := RunCampaign(context.Background(), Config{Trials: 0, Class: GPR, Region: RAny}, okApp); err == nil {
		t.Error("expected error for zero trials")
	}

	failing := func(m *Machine) ([]byte, error) { return nil, errors.New("boom") }
	if _, err := RunCampaign(context.Background(), Config{Trials: 1, Class: GPR, Region: RAny}, failing); err == nil {
		t.Error("expected error for failing golden run")
	}

	noFPR := func(m *Machine) ([]byte, error) { m.Idx(1); return []byte{0}, nil }
	if _, err := RunCampaign(context.Background(), Config{Trials: 1, Class: FPR, Region: RAny}, noFPR); !errors.Is(err, ErrNoTaps) {
		t.Errorf("expected ErrNoTaps, got %v", err)
	}
}

func TestCampaignContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCampaign(ctx, Config{Trials: 10000, Class: GPR, Region: RAny, Seed: 1}, toyApp)
	if err == nil {
		t.Error("expected cancellation error")
	}
}

func TestCampaignResumeMatchesColdRun(t *testing.T) {
	cfg := Config{Trials: 300, Class: GPR, Region: RAny, Seed: 21, Workers: 4}
	cold, err := RunCampaign(context.Background(), cfg, toyApp)
	if err != nil {
		t.Fatalf("cold campaign: %v", err)
	}
	// Pretend the first half completed before an interruption and
	// resume from its checkpoint records.
	var recs []TrialRecord
	for i := 0; i < cfg.Trials/2; i++ {
		recs = append(recs, cold.Trials[i].Record(i))
	}
	rcfg := cfg
	rcfg.Resume = recs
	executed := 0
	rcfg.OnTrial = func(rec TrialRecord) { executed++ }
	warm, err := RunCampaign(context.Background(), rcfg, toyApp)
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if warm.Completed != cfg.Trials {
		t.Errorf("resumed Completed = %d, want %d", warm.Completed, cfg.Trials)
	}
	if executed != cfg.Trials-len(recs) {
		t.Errorf("resumed run executed %d trials, want %d", executed, cfg.Trials-len(recs))
	}
	if warm.Counts != cold.Counts {
		t.Errorf("resumed counts %v differ from cold %v", warm.Counts, cold.Counts)
	}
	if warm.RegHist.ChiSquareUniform() != cold.RegHist.ChiSquareUniform() {
		t.Error("resumed register histogram differs from cold run")
	}
}

func TestCampaignResumeRejectsBadRecords(t *testing.T) {
	base := Config{Trials: 10, Class: GPR, Region: RAny, Seed: 1}
	for name, recs := range map[string][]TrialRecord{
		"out-of-range": {{Index: 10}},
		"negative":     {{Index: -1}},
		"bad-outcome":  {{Index: 0, Outcome: NumOutcomes}},
		"duplicate":    {{Index: 3}, {Index: 3}},
	} {
		cfg := base
		cfg.Resume = recs
		if _, err := RunCampaign(context.Background(), cfg, toyApp); err == nil {
			t.Errorf("%s: expected resume validation error", name)
		}
	}
}

func TestCampaignPartialResultOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 40
	seen := 0
	cfg := Config{
		Trials: 5000, Class: GPR, Region: RAny, Seed: 17, Workers: 2,
		OnTrial: func(TrialRecord) {
			seen++
			if seen == stopAfter {
				cancel()
			}
		},
	}
	res, err := RunCampaign(ctx, cfg, toyApp)
	if err == nil {
		t.Fatal("expected interruption error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("expected partial result on cancellation")
	}
	if res.Completed < stopAfter || res.Completed >= cfg.Trials {
		t.Errorf("partial Completed = %d, want in [%d,%d)", res.Completed, stopAfter, cfg.Trials)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != res.Completed {
		t.Errorf("counts sum %d != Completed %d", total, res.Completed)
	}
}

func TestCampaignSDCOutputCap(t *testing.T) {
	res, err := RunCampaign(context.Background(), Config{
		Trials: 500, Class: GPR, Region: RAny, Seed: 3, Workers: 4,
		KeepSDCOutputs: true, MaxSDCOutputs: 2,
	}, toyApp)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.Counts[OutcomeSDC] <= 2 {
		t.Skipf("only %d SDCs; cap not exercised", res.Counts[OutcomeSDC])
	}
	if got := len(res.SDCOutputs()); got != 2 {
		t.Errorf("retained %d SDC outputs, want cap of 2", got)
	}
}

func TestCampaignStreamsSDCOutputs(t *testing.T) {
	streamed := 0
	res, err := RunCampaign(context.Background(), Config{
		Trials: 500, Class: GPR, Region: RAny, Seed: 3, Workers: 4,
		OnSDCOutput: func(rec TrialRecord, out []byte) {
			streamed++
			if rec.Outcome != OutcomeSDC {
				t.Errorf("streamed record outcome = %v, want SDC", rec.Outcome)
			}
			if len(out) == 0 {
				t.Error("streamed empty SDC output")
			}
		},
	}, toyApp)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if streamed != res.Counts[OutcomeSDC] {
		t.Errorf("streamed %d outputs, want %d", streamed, res.Counts[OutcomeSDC])
	}
	if kept := len(res.SDCOutputs()); kept != 0 {
		t.Errorf("retained %d outputs despite streaming callback", kept)
	}
}

func TestResultRateEmpty(t *testing.T) {
	r := &Result{}
	if r.Rate(OutcomeMask) != 0 {
		t.Error("empty result rate should be 0")
	}
}

func BenchmarkTapIdx(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.Idx(i)
	}
}

func BenchmarkTapIdxWithPlan(b *testing.B) {
	p := Plan{Class: GPR, Reg: 5, Bit: 3, Site: 1 << 60, Window: 10, Region: RAny}
	m := NewWithPlan(p, 0)
	for i := 0; i < b.N; i++ {
		m.Idx(i)
	}
}

func BenchmarkCampaignToyApp(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(context.Background(), Config{
			Trials: 100, Class: GPR, Region: RAny, Seed: uint64(i),
		}, toyApp); err != nil {
			b.Fatal(err)
		}
	}
}
