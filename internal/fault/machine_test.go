package fault

import (
	"math"
	"testing"

	"vsresil/internal/stats"
)

func TestNilMachineIsIdentity(t *testing.T) {
	var m *Machine
	if m.Idx(42) != 42 || m.Cnt(7) != 7 || m.Pix(9) != 9 || m.Word(1e6) != 1e6 {
		t.Error("nil machine changed a value")
	}
	if m.F64(3.5) != 3.5 {
		t.Error("nil machine changed a float")
	}
	if m.GPRTaps() != 0 || m.FPRTaps() != 0 || m.Steps() != 0 {
		t.Error("nil machine counted")
	}
	if m.Injected() {
		t.Error("nil machine injected")
	}
	m.Ops(OpInt, 5) // must not panic
	m.Enter(RMatch)()
	if m.CurrentRegion() != RApp {
		t.Error("nil machine region")
	}
	if m.OpCount(RApp, OpInt) != 0 || m.TotalOps(OpInt) != 0 {
		t.Error("nil machine op counts")
	}
	if m.RegionTaps(GPR, RApp) != 0 {
		t.Error("nil machine region taps")
	}
}

func TestGoldenMachineCountsButDoesNotCorrupt(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		if got := m.Idx(i); got != i {
			t.Fatalf("golden machine corrupted %d -> %d", i, got)
		}
		if got := m.F64(float64(i)); got != float64(i) {
			t.Fatalf("golden machine corrupted float %d", i)
		}
	}
	if m.GPRTaps() != 100 || m.FPRTaps() != 100 {
		t.Errorf("taps = %d/%d", m.GPRTaps(), m.FPRTaps())
	}
	if m.Steps() != 200 {
		t.Errorf("steps = %d", m.Steps())
	}
}

// findRegForSite returns the register that Hash64 attributes to the
// given global GPR tap index, so tests can build plans that are
// guaranteed to land.
func findRegForSite(site uint64) int {
	return int(stats.Hash64(site) % NumRegisters)
}

func TestPlanFlipsExactBit(t *testing.T) {
	const site = 5
	p := Plan{Class: GPR, Reg: findRegForSite(site), Bit: 3, Site: site, Window: 1, Region: RAny}
	m := NewWithPlan(p, 0)
	for i := 0; i < 10; i++ {
		got := m.Idx(100)
		if uint64(i) == site {
			if got != 100^(1<<3) {
				t.Errorf("tap %d = %d, want bit 3 flipped (=%d)", i, got, 100^(1<<3))
			}
		} else if got != 100 {
			t.Errorf("tap %d corrupted to %d", i, got)
		}
	}
	if !m.Injected() {
		t.Error("plan did not report injection")
	}
}

func TestPlanWindowMiss(t *testing.T) {
	const site = 5
	// Pick a register that does NOT match any tap in [site, site+window).
	window := uint64(3)
	used := map[int]bool{}
	for s := uint64(site); s < site+window; s++ {
		used[findRegForSite(s)] = true
	}
	reg := -1
	for r := 0; r < NumRegisters; r++ {
		if !used[r] {
			reg = r
			break
		}
	}
	if reg < 0 {
		t.Skip("all registers used in window (vanishingly unlikely)")
	}
	p := Plan{Class: GPR, Reg: reg, Bit: 0, Site: site, Window: window, Region: RAny}
	m := NewWithPlan(p, 0)
	for i := 0; i < 20; i++ {
		if got := m.Idx(7); got != 7 {
			t.Errorf("missed plan corrupted tap %d", i)
		}
	}
	if m.Injected() {
		t.Error("window miss should not inject")
	}
}

func TestPlanInjectsOnlyOnce(t *testing.T) {
	const site = 2
	p := Plan{Class: GPR, Reg: findRegForSite(site), Bit: 0, Site: site, Window: 50, Region: RAny}
	m := NewWithPlan(p, 0)
	corrupted := 0
	for i := 0; i < 100; i++ {
		if m.Idx(0) != 0 {
			corrupted++
		}
	}
	if corrupted != 1 {
		t.Errorf("corrupted %d taps, want exactly 1", corrupted)
	}
}

func TestPixTruncationMasksHighBits(t *testing.T) {
	const site = 0
	p := Plan{Class: GPR, Reg: findRegForSite(site), Bit: 40, Site: site, Window: 1, Region: RAny}
	m := NewWithPlan(p, 0)
	if got := m.Pix(200); got != 200 {
		t.Errorf("high-bit flip leaked into pixel: %d", got)
	}
	if !m.Injected() {
		t.Error("flip should still count as injected (masked architecturally)")
	}
}

func TestPixLowBitFlipVisible(t *testing.T) {
	const site = 0
	p := Plan{Class: GPR, Reg: findRegForSite(site), Bit: 2, Site: site, Window: 1, Region: RAny}
	m := NewWithPlan(p, 0)
	if got := m.Pix(200); got != 200^4 {
		t.Errorf("Pix = %d, want %d", got, 200^4)
	}
}

func TestF64Flip(t *testing.T) {
	// Find the register for the first FPR tap (hash uses a different salt).
	reg := int(stats.Hash64(0^0xF0F0) % NumRegisters)
	p := Plan{Class: FPR, Reg: reg, Bit: 62, Site: 0, Window: 1, Region: RAny}
	m := NewWithPlan(p, 0)
	got := m.F64(1.0)
	want := math.Float64frombits(math.Float64bits(1.0) ^ (1 << 62))
	if got != want {
		t.Errorf("F64 = %v, want %v", got, want)
	}
}

func TestClassSeparation(t *testing.T) {
	// A GPR plan must never corrupt FPR taps and vice versa.
	p := Plan{Class: GPR, Reg: 0, Bit: 1, Site: 0, Window: 1 << 62, Region: RAny}
	m := NewWithPlan(p, 0)
	for i := 0; i < 50; i++ {
		if got := m.F64(2.5); got != 2.5 {
			t.Fatal("GPR plan corrupted an FPR tap")
		}
	}
}

func TestRegionScopedPlan(t *testing.T) {
	// Inject at region-scoped site 0 of RMatch; taps outside RMatch
	// must be untouched and must not consume the site.
	reg := int(stats.Hash64(10) % NumRegisters) // global idx when RMatch tap runs
	p := Plan{Class: GPR, Reg: reg, Bit: 0, Site: 0, Window: 1, Region: RMatch}
	m := NewWithPlan(p, 0)
	for i := 0; i < 10; i++ { // 10 taps in RApp, global idx 0..9
		if got := m.Idx(4); got != 4 {
			t.Fatal("out-of-region tap corrupted")
		}
	}
	restore := m.Enter(RMatch)
	got := m.Idx(4) // global idx 10, region-scoped idx 0
	restore()
	if got != 4^1 {
		t.Errorf("region-scoped tap = %d, want %d", got, 4^1)
	}
}

func TestRegionTapCounting(t *testing.T) {
	m := New()
	m.Idx(1)
	restore := m.Enter(RRemapBilinear)
	m.Idx(1)
	m.Idx(1)
	m.F64(1)
	restore()
	if got := m.RegionTaps(GPR, RRemapBilinear); got != 2 {
		t.Errorf("region GPR taps = %d, want 2", got)
	}
	if got := m.RegionTaps(FPR, RRemapBilinear); got != 1 {
		t.Errorf("region FPR taps = %d, want 1", got)
	}
	if got := m.RegionTaps(GPR, RApp); got != 1 {
		t.Errorf("app GPR taps = %d, want 1", got)
	}
}

func TestEnterRestoresNesting(t *testing.T) {
	m := New()
	r1 := m.Enter(RMatch)
	if m.CurrentRegion() != RMatch {
		t.Fatal("Enter did not switch")
	}
	r2 := m.Enter(RRANSAC)
	if m.CurrentRegion() != RRANSAC {
		t.Fatal("nested Enter did not switch")
	}
	r2()
	if m.CurrentRegion() != RMatch {
		t.Fatal("restore did not pop to RMatch")
	}
	r1()
	if m.CurrentRegion() != RApp {
		t.Fatal("restore did not pop to RApp")
	}
}

func TestStepBudgetPanicsAsHang(t *testing.T) {
	p := Plan{Class: GPR, Reg: 0, Bit: 0, Site: 1 << 62, Window: 1, Region: RAny}
	m := NewWithPlan(p, 10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected hang panic")
		}
		if _, ok := r.(hangError); !ok {
			t.Fatalf("recovered %T, want hangError", r)
		}
	}()
	for i := 0; i < 100; i++ {
		m.Idx(i)
	}
}

func TestOpsAccounting(t *testing.T) {
	m := New()
	m.Ops(OpLoad, 10)
	restore := m.Enter(RWarpInvoker)
	m.Ops(OpLoad, 5)
	m.Ops(OpFloat, 3)
	restore()
	if got := m.OpCount(RApp, OpLoad); got != 10 {
		t.Errorf("RApp loads = %d", got)
	}
	if got := m.OpCount(RWarpInvoker, OpLoad); got != 5 {
		t.Errorf("warp loads = %d", got)
	}
	if got := m.TotalOps(OpLoad); got != 15 {
		t.Errorf("total loads = %d", got)
	}
	if got := m.TotalOps(OpFloat); got != 3 {
		t.Errorf("total floats = %d", got)
	}
}

func TestTapsCountAsOps(t *testing.T) {
	m := New()
	m.Idx(1)
	m.F64(1)
	if m.TotalOps(OpInt) != 1 || m.TotalOps(OpFloat) != 1 {
		t.Error("taps should count as ops")
	}
}

func TestStringers(t *testing.T) {
	if GPR.String() != "GPR" || FPR.String() != "FPR" {
		t.Error("Class strings")
	}
	if Class(9).String() == "" {
		t.Error("unknown class string empty")
	}
	if RAny.String() != "any" || RRemapBilinear.String() != "remapBilinear" {
		t.Error("Region strings")
	}
	if Region(200).String() == "" {
		t.Error("unknown region string empty")
	}
	for o := OpClass(0); o < NumOpClasses; o++ {
		if o.String() == "" {
			t.Error("op class string empty")
		}
	}
	if OpClass(99).String() == "" {
		t.Error("unknown op class string empty")
	}
	p := Plan{Class: FPR, Reg: 3, Bit: 17, Site: 42, Window: 2, Region: RAny}
	if p.String() == "" {
		t.Error("plan string empty")
	}
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == "" {
			t.Error("outcome string empty")
		}
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome string empty")
	}
	for _, k := range []CrashKind{CrashNone, CrashSegv, CrashAbort, CrashKind(9)} {
		if k.String() == "" {
			t.Error("crash kind string empty")
		}
	}
}
