// Package vs assembles the end-to-end Video Summarization application
// the paper studies (§III), together with its three approximate
// variants (§IV):
//
//   - VS: the precise baseline (FAST+ORB, ratio-test matching, RANSAC
//     homography with affine fallback, mini-panorama stitching).
//   - VS_RFD: Random Frame Dropping — 10% of input frames are dropped
//     (input sampling).
//   - VS_KDS: Key Point Down Sampling — matching runs on one third of
//     the key points (selective computation).
//   - VS_SM: Simple Matching — single nearest neighbor under an
//     absolute distance bound instead of the 2-NN ratio test
//     (algorithmic transformation).
//
// An App is the unit the fault-injection campaign runs: one call of
// Run is one execution of the paper's application binary.
package vs

import (
	"fmt"
	"strings"
	"sync"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/match"
	"vsresil/internal/probe"
	"vsresil/internal/stats"
	"vsresil/internal/stitch"
	"vsresil/internal/warp"
)

// Algorithm identifies a VS variant.
type Algorithm uint8

// The paper's approximation variants, in its presentation order.
// These are the vs backend's algorithm axis; other summarizer
// backends (internal/summarize) have no variant axis.
const (
	AlgVS Algorithm = iota
	AlgRFD
	AlgKDS
	AlgSM
	NumAlgorithms
)

// String implements fmt.Stringer using the paper's names.
func (a Algorithm) String() string {
	switch a {
	case AlgVS:
		return "VS"
	case AlgRFD:
		return "VS_RFD"
	case AlgKDS:
		return "VS_KDS"
	case AlgSM:
		return "VS_SM"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms returns every variant of the vs backend in paper order.
// Iterate NumAlgorithms-agnostically; the count is not part of the
// contract now that summarizer backends are pluggable.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, NumAlgorithms)
	for a := Algorithm(0); a < NumAlgorithms; a++ {
		out = append(out, a)
	}
	return out
}

// ParseAlgorithm maps a paper name (case-insensitively) to a variant;
// "" defaults to the baseline VS. The CLIs and the vsd wire format
// share this parser.
func ParseAlgorithm(name string) (Algorithm, error) {
	if name == "" {
		return AlgVS, nil
	}
	for _, a := range Algorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("vs: unknown algorithm %q (want VS, VS_RFD, VS_KDS or VS_SM)", name)
}

// Config parameterizes an App.
type Config struct {
	Algorithm Algorithm
	// DropFraction is the VS_RFD input sampling rate (default 0.10,
	// the paper's "up to 10% of the input frames being dropped").
	DropFraction float64
	// KeyPointStride is the VS_KDS down-sampling stride (default 3:
	// "matching on a fraction (one-third) of the key points").
	KeyPointStride int
	// Seed fixes all stochastic choices (RFD frame selection, RANSAC
	// sampling) so golden and faulty runs differ only by the injected
	// bit.
	Seed uint64
	// Stitch optionally overrides the stitcher configuration; leave
	// zero for defaults.
	Stitch *stitch.Config
}

// DefaultConfig returns the standard configuration for an algorithm.
func DefaultConfig(a Algorithm) Config {
	return Config{Algorithm: a, DropFraction: 0.10, KeyPointStride: 3, Seed: 0x5EED}
}

// App is one configured VS application instance. It is immutable after
// construction and safe to share across campaign workers (each Run
// call uses only its own state).
type App struct {
	cfg      Config
	stitcher *stitch.Stitcher
	dropSet  map[int]bool // precomputed VS_RFD frame drops, by input index
	nFrames  int          // the input length dropSet was computed for (-1 = none)
}

// New builds an App for the given input length. The input length is
// needed up front because VS_RFD's dropped-frame set must be identical
// across the golden run and every injected run.
func New(cfg Config, nFrames int) *App {
	if cfg.DropFraction <= 0 || cfg.DropFraction >= 1 {
		cfg.DropFraction = 0.10
	}
	if cfg.KeyPointStride <= 1 {
		cfg.KeyPointStride = 3
	}

	scfg := stitch.DefaultConfig()
	if cfg.Stitch != nil {
		scfg = *cfg.Stitch
	}
	scfg.Seed = cfg.Seed
	switch cfg.Algorithm {
	case AlgKDS:
		scfg.KeyPointStride = cfg.KeyPointStride
	case AlgSM:
		scfg.Match = match.SimpleConfig()
	}

	app := &App{cfg: cfg, stitcher: stitch.New(scfg), nFrames: nFrames}
	if cfg.Algorithm == AlgRFD {
		app.dropSet = selectDrops(nFrames, cfg.DropFraction, cfg.Seed)
	}
	return app
}

// selectDrops picks the frames VS_RFD removes, deterministically in
// the seed. Frame 0 is never dropped (it anchors the first segment).
func selectDrops(n int, frac float64, seed uint64) map[int]bool {
	drops := make(map[int]bool)
	if n <= 1 {
		return drops
	}
	k := int(float64(n) * frac)
	if k > n-1 {
		k = n - 1
	}
	r := stats.NewRNG(seed*0x9e3779b97f4a7c15 + 17)
	for len(drops) < k {
		i := 1 + r.Intn(n-1)
		drops[i] = true
	}
	return drops
}

// Config returns the app's configuration.
func (a *App) Config() Config { return a.cfg }

// Dropped returns how many input frames VS_RFD removes for the
// configured input length.
func (a *App) Dropped() int { return len(a.dropSet) }

// Run executes the application on the input frames. The frame slice
// must have the length passed to New. s is any probe.Sink: a
// *fault.Machine for injection campaigns, a *probe.Meter for metered
// serving runs, or probe.Nop{} for the uninstrumented fast path (nil
// is normalized to Nop).
//
// Run first "decodes" the input (copying each retained frame through
// instrumented pixel traffic, the analogue of the video decode and
// downsampling stage) and then stitches.
func (a *App) Run(frames []*imgproc.Gray, s probe.Sink) (*stitch.Result, error) {
	if a.nFrames >= 0 && len(frames) != a.nFrames {
		return nil, fmt.Errorf("vs: got %d frames, configured for %d", len(frames), a.nFrames)
	}
	s = probe.OrNop(s)
	var retained []*imgproc.Gray
	var err error
	if probe.IsNop(s) {
		retained, err = decode(a, frames, probe.Nop{})
	} else if m, ok := s.(*fault.Machine); ok {
		retained, err = decode(a, frames, m)
	} else {
		retained, err = decode(a, frames, s)
	}
	if err != nil {
		return nil, err
	}
	return a.runFrom(pipeState{frames: retained}, s, nil, true)
}

// Pipeline phases, in execution order. A pipeState snapshot taken at
// phase p with its progress counters is exactly the state a resumed
// run needs to execute everything from p onward.
const (
	phaseFeatures  int8 = iota // per-frame FAST+ORB detection
	phasePairs                 // pairwise registration (match + RANSAC)
	phaseComposite             // warp + blend onto mini-panoramas
)

// pipeState is the pipeline's resumable state between stages: which
// phase comes next and everything earlier stages produced. It is
// copyable by design — golden checkpoints retain value snapshots, and
// resumed trials run on plain copies whose slice appends never touch
// the shared snapshot (see snapshot).
type pipeState struct {
	phase    int8
	featDone int // frames whose features are already detected
	frames   []*imgproc.Gray
	feats    []stitch.FrameFeatures
	align    stitch.AlignState
}

// snapshot returns a copy safe to retain across further pipeline
// progress: slice prefixes are capped so any later append — by the
// live golden run or by a trial resumed from the snapshot — allocates
// instead of sharing a tail. Frames and per-frame features are
// read-only once produced, so sharing their storage is safe.
func (st pipeState) snapshot() pipeState {
	st.frames = st.frames[:len(st.frames):len(st.frames)]
	st.feats = st.feats[:len(st.feats):len(st.feats)]
	st.align = st.align.Snapshot()
	return st
}

// runFrom executes the pipeline from st onward: remaining per-frame
// feature detection, the registration pass, then compositing. When
// snap is non-nil it receives a labeled snapshot at every stage
// boundary (before the boundary's first tap) — the golden checkpoint
// capture. recycle returns decoded frames to the pool afterwards; it
// must be false whenever snapshots (or a shared checkpoint the state
// came from) still reference the frames.
func (a *App) runFrom(st pipeState, m probe.Sink, snap func(name string, st pipeState), recycle bool) (*stitch.Result, error) {
	res, _, err := a.runFromGuarded(st, m, snap, nil, nil, recycle)
	return res, err
}

// runFromGuarded is runFrom with the batched-campaign seams threaded
// through: guard, when non-nil, is consulted at every stage boundary
// (the exact positions snap is called at, before the boundary's first
// tap) and a true return abandons the run with converged=true; plan,
// when non-nil, is a precomputed composite canvas plan shared by a
// checkpoint bucket. Neither seam changes a single tap of the stages
// that do execute.
func (a *App) runFromGuarded(st pipeState, m probe.Sink, snap func(name string, st pipeState), guard fault.BoundaryGuard, plan *stitch.CompositePlan, recycle bool) (*stitch.Result, bool, error) {
	boundary := func(name string) bool {
		if snap != nil {
			snap(name, st.snapshot())
		}
		return guard != nil && guard(name, st)
	}
	if st.phase == phaseFeatures {
		if len(st.frames) == 0 {
			return nil, false, stitch.ErrNoFrames
		}
		if st.feats == nil {
			st.feats = make([]stitch.FrameFeatures, 0, len(st.frames))
		}
		for st.featDone < len(st.frames) {
			if boundary(fmt.Sprintf("features[%d]", st.featDone)) {
				return nil, true, nil
			}
			st.feats = append(st.feats, a.stitcher.DetectFrame(st.frames[st.featDone], m))
			st.featDone++
		}
		if boundary("align") {
			return nil, true, nil
		}
		st.align = a.stitcher.BeginAlign(st.frames, m)
		st.phase = phasePairs
	}
	if st.phase == phasePairs {
		for st.align.Next < st.align.N {
			if boundary(fmt.Sprintf("pair[%d]", st.align.Next)) {
				return nil, true, nil
			}
			a.stitcher.AlignStep(st.feats, &st.align, m)
		}
		if boundary("composite") {
			return nil, true, nil
		}
		st.phase = phaseComposite
	}
	res, err := a.stitcher.CompositePlanned(st.frames, &st.align, plan, m)
	// The stitch result references only freshly rendered panoramas,
	// never the decoded frames, so their buffers can feed the next
	// trial's decode. (A crashed trial unwinds past this and simply
	// leaves its frames to the GC.)
	if recycle {
		for _, f := range st.frames {
			putFrame(f)
		}
	}
	return res, false, err
}

// framePool recycles decoded frame buffers across Run calls — the
// decode stage re-copies every input frame each trial, which would
// otherwise be a per-trial allocation proportional to the input size.
var framePool sync.Pool

// maxPooledFramePixels keeps a corrupted-width giant out of the pool.
const maxPooledFramePixels = 1 << 22

// getFrame returns a w x h frame, reusing pooled storage when the
// requested size is sane. The contents are arbitrary — decode
// overwrites (or explicitly zeroes) every byte — and the dimensions
// may be fault-corrupted, in which case allocation falls through to
// imgproc.NewGray to reproduce its exact panic/allocation behavior.
func getFrame(w, h int) *imgproc.Gray {
	if w >= 0 && h >= 0 {
		if n := w * h; n >= 0 && n <= maxPooledFramePixels {
			if v, _ := framePool.Get().(*imgproc.Gray); v != nil && cap(v.Pix) >= n {
				v.W, v.H = w, h
				v.Pix = v.Pix[:n]
				return v
			}
		}
	}
	return imgproc.NewGray(w, h)
}

// putFrame recycles a frame obtained from getFrame.
func putFrame(g *imgproc.Gray) {
	if g == nil || cap(g.Pix) == 0 || cap(g.Pix) > maxPooledFramePixels {
		return
	}
	framePool.Put(g)
}

// RunEncoded is the fault.App adapter: it runs the application and
// returns the serialized panorama set.
func (a *App) RunEncoded(frames []*imgproc.Gray) fault.App {
	return func(m *fault.Machine) ([]byte, error) {
		res, err := a.Run(frames, m)
		if err != nil {
			return nil, err
		}
		return res.Encode(), nil
	}
}

// decode copies the retained input frames into run-private buffers,
// passing a sample of the pixel traffic through sink taps. Corrupted
// writes land only in the private copy, exactly like a decoder writing
// a corrupted frame buffer.
func decode[S probe.Sink](a *App, frames []*imgproc.Gray, m S) ([]*imgproc.Gray, error) {
	defer m.Enter(probe.RDecode)()
	out := make([]*imgproc.Gray, 0, len(frames))
	n := m.Cnt(len(frames))
	if n < 0 || n > len(frames) {
		return nil, fmt.Errorf("vs: corrupted frame count %d", n)
	}
	for i := 0; i < n; i++ {
		if a.dropSet[i] {
			continue // VS_RFD input sampling
		}
		src := frames[m.Idx(i)]
		w := m.Idx(src.W)
		h := src.H
		// A negative corrupted width falls through to imgproc.NewGray's
		// panic (a recoverable crash), but a high-bit flip makes a huge
		// positive width whose allocation is a fatal runtime OOM — bound
		// it like the warp canvas guard. Divide instead of multiplying
		// so a near-MaxInt width cannot overflow past the check.
		if h > 0 && w > warp.MaxCanvasPixels/h {
			return nil, fmt.Errorf("vs: corrupted frame width %d", w)
		}
		dst := getFrame(w, h)
		n := copy(dst.Pix, src.Pix)
		// A recycled buffer holds the previous trial's pixels; zero
		// whatever the copy did not cover (normally nothing — only a
		// corrupted width makes dst larger than src) so the frame is
		// byte-identical to a fresh NewGray + copy.
		for j := n; j < len(dst.Pix); j++ {
			dst.Pix[j] = 0
		}
		// Instrument a strided sample of the pixel stream (tapping
		// every byte would dominate the tap space; the decode stage is
		// a small share of the paper's profile, Fig 8).
		for j := 0; j < len(dst.Pix); j += 97 {
			idx := m.Idx(j)
			dst.Pix[idx] = m.Pix(dst.Pix[idx])
		}
		// Representative video-decode arithmetic (entropy decoding,
		// inverse transform, motion compensation): the non-library
		// share of the paper's Fig 8 profile is dominated by this
		// stage in the original application.
		px := uint64(len(dst.Pix))
		m.Ops(probe.OpInt, px*14)
		m.Ops(probe.OpLoad, px*6)
		m.Ops(probe.OpStore, px*4)
		m.Ops(probe.OpBranch, px*3)
		out = append(out, dst)
	}
	return out, nil
}
