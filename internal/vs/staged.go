package vs

import (
	"fmt"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
)

// stagedApp is the fault.StagedApp view of an App over a fixed input:
// the same computation as RunEncoded, expressed as resumable stages so
// campaigns can skip the fault-free prefix of each trial.
type stagedApp struct {
	app    *App
	frames []*imgproc.Gray
}

// Staged returns the stage-resumable campaign view of the app over the
// given input frames. RunFull with a nil snap hook executes exactly
// what RunEncoded(frames) would — same taps, same bytes — so one
// golden capture serves both paths.
func (a *App) Staged(frames []*imgproc.Gray) fault.StagedApp {
	return &stagedApp{app: a, frames: frames}
}

// RunFull executes every stage: decode, per-frame features, the
// registration pass, compositing. Snapshot boundaries are placed after
// decode ("features[0]"), between per-frame detections, before the
// registration pass ("align"), between frame pairs ("pair[i]") and
// before compositing ("composite") — decode and compositing stay
// atomic because their state (raw frames, float canvases) is the
// expensive part to retain. When snapshots are taken the decoded
// frames are referenced by the golden run forever, so they are not
// recycled into the frame pool.
func (s *stagedApp) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	if s.app.nFrames >= 0 && len(s.frames) != s.app.nFrames {
		return nil, fmt.Errorf("vs: got %d frames, configured for %d", len(s.frames), s.app.nFrames)
	}
	retained, err := decode(s.app, s.frames, m)
	if err != nil {
		return nil, err
	}
	var snapState func(string, pipeState)
	if snap != nil {
		snapState = func(name string, st pipeState) { snap(name, st) }
	}
	res, err := s.app.runFrom(pipeState{frames: retained}, m, snapState, snap == nil)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}

// Resume executes the stages from the checkpointed boundary onward on
// a value copy of the shared golden state. The snapshot's slices are
// capacity-capped, so the copy's appends allocate fresh storage and
// the golden snapshot — including the decoded frames, which therefore
// must not be recycled — is never mutated.
func (s *stagedApp) Resume(m *fault.Machine, state any) ([]byte, error) {
	st, ok := state.(pipeState)
	if !ok {
		return nil, fmt.Errorf("vs: resume state is %T, want pipeState", state)
	}
	res, err := s.app.runFrom(st, m, nil, false)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}
