package vs

import (
	"bytes"
	"fmt"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/stitch"
)

// stagedApp is the fault.StagedApp view of an App over a fixed input:
// the same computation as RunEncoded, expressed as resumable stages so
// campaigns can skip the fault-free prefix of each trial.
type stagedApp struct {
	app    *App
	frames []*imgproc.Gray
}

// The batched campaign seams (per-bucket prepare, guarded resume,
// bit-exact state equality) are part of the contract.
var _ fault.BatchStagedApp = (*stagedApp)(nil)

// Staged returns the stage-resumable campaign view of the app over the
// given input frames. RunFull with a nil snap hook executes exactly
// what RunEncoded(frames) would — same taps, same bytes — so one
// golden capture serves both paths.
func (a *App) Staged(frames []*imgproc.Gray) fault.StagedApp {
	return &stagedApp{app: a, frames: frames}
}

// RunFull executes every stage: decode, per-frame features, the
// registration pass, compositing. Snapshot boundaries are placed after
// decode ("features[0]"), between per-frame detections, before the
// registration pass ("align"), between frame pairs ("pair[i]") and
// before compositing ("composite") — decode and compositing stay
// atomic because their state (raw frames, float canvases) is the
// expensive part to retain. When snapshots are taken the decoded
// frames are referenced by the golden run forever, so they are not
// recycled into the frame pool.
func (s *stagedApp) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	if s.app.nFrames >= 0 && len(s.frames) != s.app.nFrames {
		return nil, fmt.Errorf("vs: got %d frames, configured for %d", len(s.frames), s.app.nFrames)
	}
	retained, err := decode(s.app, s.frames, m)
	if err != nil {
		return nil, err
	}
	var snapState func(string, pipeState)
	if snap != nil {
		snapState = func(name string, st pipeState) { snap(name, st) }
	}
	res, err := s.app.runFrom(pipeState{frames: retained}, m, snapState, snap == nil)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}

// Resume executes the stages from the checkpointed boundary onward on
// a value copy of the shared golden state. The snapshot's slices are
// capacity-capped, so the copy's appends allocate fresh storage and
// the golden snapshot — including the decoded frames, which therefore
// must not be recycled — is never mutated.
func (s *stagedApp) Resume(m *fault.Machine, state any) ([]byte, error) {
	st, ok := state.(pipeState)
	if !ok {
		return nil, fmt.Errorf("vs: resume state is %T, want pipeState", state)
	}
	res, err := s.app.runFrom(st, m, nil, false)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}

// PrepareResume builds the per-bucket shared view: for the composite
// boundary, the canvas plan (per-segment bounds + frame counts), which
// is a tap-free pure function of the immutable golden state and hence
// identical across every trial in the bucket. Earlier boundaries have
// nothing to amortize beyond the state snapshot itself.
func (s *stagedApp) PrepareResume(state any) any {
	st, ok := state.(pipeState)
	if !ok || st.phase != phaseComposite {
		return nil
	}
	return s.app.stitcher.PlanComposite(st.frames, &st.align)
}

// ResumeGuarded is Resume with the bucket seams: the shared composite
// plan (when the boundary is the composite) and the convergence guard,
// consulted at every stage boundary the resumed suffix crosses.
func (s *stagedApp) ResumeGuarded(m *fault.Machine, state, prep any, guard fault.BoundaryGuard) ([]byte, bool, error) {
	st, ok := state.(pipeState)
	if !ok {
		return nil, false, fmt.Errorf("vs: resume state is %T, want pipeState", state)
	}
	plan, _ := prep.(*stitch.CompositePlan)
	res, converged, err := s.app.runFromGuarded(st, m, nil, guard, plan, false)
	if converged {
		return nil, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	return res.Encode(), false, nil
}

// StateEqual compares two pipeline states of the same boundary on
// their bits: phase and progress counters, frame bytes, key points and
// descriptors, and the full registration state. Frames and feature
// storage shared with the golden snapshot short-circuit by pointer
// identity, so the common converged case costs a few pointer compares
// plus a deep scan of only the entries the trial recomputed.
func (s *stagedApp) StateEqual(a, b any) bool {
	sa, okA := a.(pipeState)
	sb, okB := b.(pipeState)
	if !okA || !okB {
		return false
	}
	if sa.phase != sb.phase || sa.featDone != sb.featDone ||
		len(sa.frames) != len(sb.frames) || len(sa.feats) != len(sb.feats) {
		return false
	}
	for i := range sa.frames {
		fa, fb := sa.frames[i], sb.frames[i]
		if fa == fb {
			continue
		}
		if fa == nil || fb == nil || fa.W != fb.W || fa.H != fb.H || !bytes.Equal(fa.Pix, fb.Pix) {
			return false
		}
	}
	for i := range sa.feats {
		if !sa.feats[i].EqualBits(&sb.feats[i]) {
			return false
		}
	}
	return sa.align.EqualBits(&sb.align)
}
