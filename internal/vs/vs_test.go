package vs

import (
	"errors"
	"strings"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
)

func inputFrames(t testing.TB, n int) []*imgproc.Gray {
	t.Helper()
	p := virat.TestScale()
	p.Frames = n
	return virat.Input2(p).Frames()
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		AlgVS: "VS", AlgRFD: "VS_RFD", AlgKDS: "VS_KDS", AlgSM: "VS_SM",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), name)
		}
	}
	if !strings.HasPrefix(Algorithm(99).String(), "Algorithm(") {
		t.Error("unknown algorithm string")
	}
	if len(Algorithms()) != int(NumAlgorithms) {
		t.Error("Algorithms() incomplete")
	}
}

func TestBaselineRunProducesPanorama(t *testing.T) {
	frames := inputFrames(t, 8)
	app := New(DefaultConfig(AlgVS), len(frames))
	res, err := app.Run(frames, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Primary() == nil {
		t.Fatal("no panorama")
	}
	if app.Dropped() != 0 {
		t.Errorf("baseline dropped %d frames", app.Dropped())
	}
}

func TestRFDDropsConfiguredFraction(t *testing.T) {
	frames := inputFrames(t, 10)
	app := New(DefaultConfig(AlgRFD), len(frames))
	if app.Dropped() != 1 {
		t.Errorf("RFD on 10 frames dropped %d, want 1 (10%%)", app.Dropped())
	}
	res, err := app.Run(frames, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := 0
	for _, p := range res.Panoramas {
		total += p.Frames
	}
	if total > 9 {
		t.Errorf("stitched %d frames after dropping 1 of 10", total)
	}
}

func TestRFDDeterministicDropSet(t *testing.T) {
	a := New(DefaultConfig(AlgRFD), 50)
	b := New(DefaultConfig(AlgRFD), 50)
	if len(a.dropSet) != len(b.dropSet) {
		t.Fatal("drop set size differs")
	}
	for k := range a.dropSet {
		if !b.dropSet[k] {
			t.Fatal("drop sets differ for same seed")
		}
	}
	cfg := DefaultConfig(AlgRFD)
	cfg.Seed = 999
	c := New(cfg, 50)
	same := true
	for k := range a.dropSet {
		if !c.dropSet[k] {
			same = false
		}
	}
	if same && len(a.dropSet) > 0 {
		t.Error("different seeds produced identical drop sets")
	}
}

func TestRFDNeverDropsFrameZero(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		cfg := DefaultConfig(AlgRFD)
		cfg.Seed = seed
		app := New(cfg, 20)
		if app.dropSet[0] {
			t.Fatalf("seed %d dropped frame 0", seed)
		}
	}
}

func TestKDSConfiguresStride(t *testing.T) {
	app := New(DefaultConfig(AlgKDS), 5)
	if got := app.stitcher.Config().KeyPointStride; got != 3 {
		t.Errorf("KDS stride = %d, want 3", got)
	}
	base := New(DefaultConfig(AlgVS), 5)
	if got := base.stitcher.Config().KeyPointStride; got != 1 {
		t.Errorf("baseline stride = %d, want 1", got)
	}
}

func TestSMConfiguresSimpleMatching(t *testing.T) {
	app := New(DefaultConfig(AlgSM), 5)
	if app.stitcher.Config().Match.Strategy.String() != "simple-nearest" {
		t.Error("VS_SM did not select simple matching")
	}
}

func TestAllVariantsProduceOutput(t *testing.T) {
	frames := inputFrames(t, 8)
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			app := New(DefaultConfig(alg), len(frames))
			res, err := app.Run(frames, nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Primary() == nil {
				t.Fatal("no panorama")
			}
		})
	}
}

func TestRunRejectsWrongFrameCount(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), 8)
	if _, err := app.Run(frames, nil); err == nil {
		t.Error("expected error for mismatched frame count")
	}
}

func TestRunGoldenDeterminism(t *testing.T) {
	frames := inputFrames(t, 6)
	app := New(DefaultConfig(AlgVS), len(frames))
	a, err := app.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.Run(frames, fault.New())
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Encode(), b.Encode()
	if len(ea) != len(eb) {
		t.Fatal("encoded outputs differ in size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("outputs differ at byte %d", i)
		}
	}
}

func TestDecodeDoesNotMutateSharedFrames(t *testing.T) {
	frames := inputFrames(t, 4)
	backup := make([]*imgproc.Gray, len(frames))
	for i, f := range frames {
		backup[i] = f.Clone()
	}
	app := New(DefaultConfig(AlgVS), len(frames))
	if _, err := app.Run(frames, fault.New()); err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if !frames[i].Equal(backup[i]) {
			t.Fatalf("shared input frame %d was mutated", i)
		}
	}
}

func TestRunEncodedAdapter(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	runApp := app.RunEncoded(frames)
	out, err := runApp(fault.New())
	if err != nil {
		t.Fatalf("RunEncoded: %v", err)
	}
	if len(out) == 0 {
		t.Error("empty encoded output")
	}
}

func TestDecodeRegionAccounting(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	m := fault.New()
	if _, err := app.Run(frames, m); err != nil {
		t.Fatal(err)
	}
	if m.RegionTaps(fault.GPR, fault.RDecode) == 0 {
		t.Error("decode stage executed no taps")
	}
	// The warp kernels must dominate taps — that is what makes the
	// hot-function share in Fig 8 come out right.
	warpTaps := m.RegionTaps(fault.GPR, fault.RWarpInvoker) + m.RegionTaps(fault.GPR, fault.RRemapBilinear)
	if warpTaps < m.RegionTaps(fault.GPR, fault.RDecode) {
		t.Error("warp taps fewer than decode taps; hot-function profile will be wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	app := New(Config{Algorithm: AlgRFD, DropFraction: -1, KeyPointStride: 0}, 10)
	if app.cfg.DropFraction != 0.10 {
		t.Errorf("DropFraction default = %v", app.cfg.DropFraction)
	}
	if app.cfg.KeyPointStride != 3 {
		t.Errorf("KeyPointStride default = %v", app.cfg.KeyPointStride)
	}
}

func TestSelectDropsSmallInputs(t *testing.T) {
	if d := selectDrops(0, 0.1, 1); len(d) != 0 {
		t.Error("drops on empty input")
	}
	if d := selectDrops(1, 0.9, 1); len(d) != 0 {
		t.Error("drops on single frame")
	}
	d := selectDrops(5, 0.99, 1)
	if len(d) > 4 {
		t.Error("dropped too many frames")
	}
}

// frameCountPlan builds a plan that lands exactly on the first GPR tap
// of a run — decode's m.Cnt(len(frames)) — flipping the given bit. Tap
// index 0 attributes to register Hash64(0)%32, so targeting that
// register with Site 0 and window 1 makes the hit deterministic.
func frameCountPlan(bit int) fault.Plan {
	return fault.Plan{
		Class:  fault.GPR,
		Reg:    int(stats.Hash64(0) % fault.NumRegisters),
		Bit:    bit,
		Site:   0,
		Window: 1,
		Region: fault.RAny,
	}
}

func TestDecodeRejectsNegativeFrameCount(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	m := fault.NewWithPlan(frameCountPlan(63), 0)
	_, err := app.Run(frames, m)
	if err == nil {
		t.Fatal("sign-flipped frame count was accepted")
	}
	if !strings.Contains(err.Error(), "corrupted frame count") {
		t.Errorf("unexpected error: %v", err)
	}
	if !m.Injected() {
		t.Error("plan did not land on the frame-count tap")
	}
}

func TestDecodeRejectsInflatedFrameCount(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	// Bit 8 turns 4 into 260: far past the input length, but positive,
	// exercising the upper bound of the validity check.
	m := fault.NewWithPlan(frameCountPlan(8), 0)
	_, err := app.Run(frames, m)
	if err == nil {
		t.Fatal("inflated frame count was accepted")
	}
	if !strings.Contains(err.Error(), "corrupted frame count") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDecodeRejectsHugeFrameWidth(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	// Site 2 is the first frame's width tap (after the count and the
	// frame index). Bit 39 turns 96 into ~5.5e11 — positive, so it
	// must be stopped by the allocation bound before getFrame, not by
	// NewGray's negative-dimension panic.
	m := fault.NewWithPlan(fault.Plan{
		Class:  fault.GPR,
		Reg:    int(stats.Hash64(2) % fault.NumRegisters),
		Bit:    39,
		Site:   2,
		Window: 1,
		Region: fault.RAny,
	}, 0)
	_, err := app.Run(frames, m)
	if err == nil {
		t.Fatal("huge corrupted frame width was accepted")
	}
	if !strings.Contains(err.Error(), "corrupted frame width") {
		t.Errorf("unexpected error: %v", err)
	}
	if !m.Injected() {
		t.Error("plan did not land on the width tap")
	}
}

func TestDecodeLowBitFlipIsNotAnError(t *testing.T) {
	// Bit 2 turns the count 4 into 0: still within [0, len], so the
	// decode itself succeeds but retains nothing.
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	m := fault.NewWithPlan(frameCountPlan(2), 0)
	_, err := app.Run(frames, m)
	// Count 0 passes decode validation and must surface as the
	// stitcher's empty-input error, not the corruption error.
	if !errors.Is(err, stitch.ErrNoFrames) {
		t.Errorf("got %v, want stitch.ErrNoFrames", err)
	}
}

func TestRunEncodedPropagatesDecodeError(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), len(frames))
	runApp := app.RunEncoded(frames)
	out, err := runApp(fault.NewWithPlan(frameCountPlan(63), 0))
	if err == nil {
		t.Fatal("RunEncoded swallowed the decode error")
	}
	if out != nil {
		t.Error("RunEncoded returned output alongside an error")
	}
}

func TestRunEncodedRejectsWrongFrameCount(t *testing.T) {
	frames := inputFrames(t, 4)
	app := New(DefaultConfig(AlgVS), 8)
	if _, err := app.RunEncoded(frames)(fault.New()); err == nil {
		t.Error("RunEncoded accepted a mismatched frame count")
	}
}

func TestRunEmptyInputIsNoFrames(t *testing.T) {
	app := New(DefaultConfig(AlgVS), 0)
	if _, err := app.Run(nil, nil); !errors.Is(err, stitch.ErrNoFrames) {
		t.Errorf("empty input: got %v, want stitch.ErrNoFrames", err)
	}
}

func BenchmarkVSBaseline(b *testing.B) {
	frames := inputFrames(b, 8)
	app := New(DefaultConfig(AlgVS), len(frames))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(frames, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVSInstrumented(b *testing.B) {
	frames := inputFrames(b, 8)
	app := New(DefaultConfig(AlgVS), len(frames))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(frames, fault.New()); err != nil {
			b.Fatal(err)
		}
	}
}
