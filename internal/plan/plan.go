// Package plan is the trial-allocation seam of the campaign engine:
// it decides WHICH injections run, while the fault executor decides
// HOW each one runs. A Planner emits deterministic, seeded rounds of
// fault plans; the campaign Runner (and the fabric coordinator)
// execute each round through the ordinary trial executor and feed the
// observed outcomes back. Three planners cover the repo's designs:
//
//   - Static reproduces the classic fixed-budget plan window
//     (fault.Config.PlanTrials/PlanOffset) byte-for-byte — same seed,
//     same plans, same order — so routing a campaign through the seam
//     changes nothing about its results.
//   - Stratified reproduces the fixed per-stratum Relyzer-style draw
//     that used to live in fault.RunStratifiedCampaign's private loop.
//   - Adaptive reallocates every round to the strata whose outcome-
//     rate confidence intervals are still widest, and stops as soon as
//     every rate is pinned to a target half-width — the
//     sequential-statistics answer to the paper's fixed 48k budget.
//
// Planners are deterministic functions of (golden geometry, seed,
// config, observed outcomes). Outcomes themselves are deterministic in
// the plan, so the full trial set is reproducible across worker
// counts, shard decompositions and journal resume — allocation
// decisions made from merged counts on a cluster coordinator are the
// same decisions a single-node run would make.
package plan

import "vsresil/internal/fault"

// Round is one planner-emitted batch of work. Plans occupy the
// contiguous plan-index window [Lo, Lo+len(Plans)); fault.TrialRecord
// indices are these plan indices, so journaling and resume address
// round trials exactly like static-window trials.
type Round struct {
	// Index is the 0-based round number.
	Index int
	// Lo is the plan index of Plans[0].
	Lo int
	// Plans are the injections to execute, in plan-index order.
	Plans []fault.Plan
	// Strata, when non-nil, maps each plan to the planner's stratum
	// index (see Stratified.Strata / Adaptive.Strata); nil for
	// planners without strata.
	Strata []int
}

// Planner emits rounds until allocation is complete. The driver
// alternates strictly: Next, execute, Observe, Next, ... — a planner
// may panic if Observe is skipped. Next returns ok=false when the
// campaign is complete (either converged or out of budget).
type Planner interface {
	Next() (r Round, ok bool)
	Observe(r Round, outcomes []fault.Outcome)
}

// StratumStatus is a read-only snapshot of one stratum's running
// estimate — what the service exports as per-stratum metrics and the
// CLIs print.
type StratumStatus struct {
	Region     fault.Region
	Bits       fault.BitGroup
	Population uint64
	// Trials is the number of observed injections in the stratum.
	Trials int
	// Counts are the observed outcome counts.
	Counts [fault.NumOutcomes]int
	// HalfWidth is the widest Wilson half-width across the four
	// outcome rates at the planner's confidence (1 when Trials == 0).
	HalfWidth float64
	// Done reports whether the stratum has reached the target
	// half-width (always false for non-adaptive planners).
	Done bool
}
