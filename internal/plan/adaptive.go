package plan

import (
	"fmt"

	"vsresil/internal/fault"
	"vsresil/internal/stats"
)

// AdaptiveConfig parameterizes confidence-driven allocation.
type AdaptiveConfig struct {
	// Class selects the register file; Region restricts the strata to
	// one function (fault.RAny = all).
	Class  fault.Class
	Region fault.Region
	// Seed makes the whole campaign — plans and allocation —
	// reproducible.
	Seed uint64
	// Window overrides the liveness window (0 = class default).
	Window uint64
	// Precision is the target Wilson half-width every per-stratum
	// outcome rate must reach (default 0.05).
	Precision float64
	// Confidence is the two-sided confidence level of the intervals
	// (default 0.95).
	Confidence float64
	// RoundSize is the number of trials allocated per adaptive round
	// after the bootstrap (default 8 per stratum).
	RoundSize int
	// MinPerStratum is the bootstrap allocation that seeds every
	// stratum's estimate in round 0 (default 8).
	MinPerStratum int
	// MaxTrials caps the total allocation (default: the fixed-budget
	// equivalent, FixedBudget(Precision, Confidence, strata) — the
	// planner never spends more than the non-adaptive design would).
	MaxTrials int
}

func (cfg *AdaptiveConfig) withDefaults(strata int) {
	if cfg.Precision <= 0 {
		cfg.Precision = 0.05
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		cfg.Confidence = 0.95
	}
	if cfg.MinPerStratum <= 0 {
		cfg.MinPerStratum = 8
	}
	if cfg.RoundSize <= 0 {
		cfg.RoundSize = 8 * strata
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = FixedBudget(cfg.Precision, cfg.Confidence, strata)
	}
}

// FixedBudget is the per-campaign trial count a fixed (outcome-blind)
// design must commit to guarantee every stratum rate reaches the
// target half-width: the worst-case Wilson sample size per stratum
// times the number of strata. The adaptive planner's savings are
// measured against this number.
func FixedBudget(precision, confidence float64, strata int) int {
	return strata * stats.WilsonFixedN(precision, confidence)
}

// adaptiveStratum is one stratum's running state. Each stratum owns a
// deterministic RNG stream (split from the base seed in stratum
// order), so how many plans OTHER strata drew in earlier rounds never
// changes this stratum's draw sequence — allocation and plan content
// are decoupled, which keeps resumed and re-planned campaigns on the
// identical trial set.
type adaptiveStratum struct {
	site   stratumSite
	rng    *stats.RNG
	counts [fault.NumOutcomes]int
	n      int
}

// Adaptive allocates rounds to the strata whose outcome-rate
// confidence intervals are widest, and stops once every stratum's
// rates are within Precision at Confidence (or MaxTrials is spent).
// Round 0 bootstraps every stratum with MinPerStratum trials; each
// later round splits RoundSize trials across the unfinished strata
// proportionally to their current half-widths (largest-remainder
// rounding, ties to the lower stratum index).
type Adaptive struct {
	cfg         AdaptiveConfig
	strata      []adaptiveStratum
	round       int
	next        int // plan index of the next round's Lo
	outstanding bool
	done        bool
}

// NewAdaptive sizes the strata from the golden run's geometry and
// splits the per-stratum RNG streams from cfg.Seed.
func NewAdaptive(golden *fault.GoldenRun, cfg AdaptiveConfig) (*Adaptive, error) {
	sites := strataFor(golden, cfg.Class, cfg.Region)
	if len(sites) == 0 {
		return nil, fault.ErrNoTaps
	}
	cfg.withDefaults(len(sites))
	a := &Adaptive{cfg: cfg, strata: make([]adaptiveStratum, len(sites))}
	base := stats.NewRNG(cfg.Seed)
	for i, s := range sites {
		a.strata[i] = adaptiveStratum{site: s, rng: base.Split()}
	}
	return a, nil
}

// Config returns the planner's effective (defaulted) configuration.
func (a *Adaptive) Config() AdaptiveConfig { return a.cfg }

// halfWidth is the stratum's convergence measure: the widest Wilson
// half-width across the four outcome rates (1 before any trial).
func (a *Adaptive) halfWidth(s *adaptiveStratum) float64 {
	if s.n == 0 {
		return 1
	}
	hw := 0.0
	for o := 0; o < int(fault.NumOutcomes); o++ {
		if w := stats.WilsonHalfWidth(s.counts[o], s.n, a.cfg.Confidence); w > hw {
			hw = w
		}
	}
	return hw
}

// Total returns the number of trials allocated so far.
func (a *Adaptive) Total() int { return a.next }

// Rounds returns the number of rounds emitted so far.
func (a *Adaptive) Rounds() int { return a.round }

// Converged reports whether every stratum reached the target
// half-width.
func (a *Adaptive) Converged() bool {
	for i := range a.strata {
		if a.halfWidth(&a.strata[i]) > a.cfg.Precision {
			return false
		}
	}
	return true
}

// Next emits the next round, or ok=false when every stratum has
// converged or the budget is spent.
func (a *Adaptive) Next() (Round, bool) {
	if a.outstanding {
		panic("plan: Adaptive.Next before Observe of the previous round")
	}
	if a.done {
		return Round{}, false
	}
	var alloc []int
	if a.round == 0 {
		alloc = make([]int, len(a.strata))
		if full := a.cfg.MinPerStratum * len(a.strata); full > a.cfg.MaxTrials {
			// An explicit cap below the full bootstrap still binds:
			// spread it evenly, remainder to the lower stratum indices.
			base, rem := a.cfg.MaxTrials/len(a.strata), a.cfg.MaxTrials%len(a.strata)
			for i := range alloc {
				alloc[i] = base
				if i < rem {
					alloc[i]++
				}
			}
		} else {
			for i := range alloc {
				alloc[i] = a.cfg.MinPerStratum
			}
		}
	} else {
		alloc = a.allocate()
		if alloc == nil {
			a.done = true
			return Round{}, false
		}
	}
	r := Round{Index: a.round, Lo: a.next}
	window := fault.WindowFor(a.cfg.Class, a.cfg.Window)
	for i := range a.strata {
		s := &a.strata[i]
		lo, hi := s.site.bits.Bounds()
		for t := 0; t < alloc[i]; t++ {
			r.Plans = append(r.Plans, fault.Plan{
				Class:  a.cfg.Class,
				Reg:    s.rng.Intn(fault.NumRegisters),
				Bit:    lo + s.rng.Intn(hi-lo+1),
				Site:   s.rng.Uint64() % s.site.taps,
				Window: window,
				Region: s.site.region,
			})
			r.Strata = append(r.Strata, i)
		}
	}
	a.outstanding = true
	return r, true
}

// allocate splits the next round's budget across unfinished strata
// proportionally to half-width. Returns nil when allocation is
// complete (converged or budget exhausted).
func (a *Adaptive) allocate() []int {
	widths := make([]float64, len(a.strata))
	total := 0.0
	unfinished := 0
	for i := range a.strata {
		hw := a.halfWidth(&a.strata[i])
		if hw > a.cfg.Precision {
			widths[i] = hw
			total += hw
			unfinished++
		}
	}
	if unfinished == 0 || a.next >= a.cfg.MaxTrials {
		return nil
	}
	budget := a.cfg.RoundSize
	if rem := a.cfg.MaxTrials - a.next; budget > rem {
		budget = rem
	}
	alloc := make([]int, len(a.strata))
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, unfinished)
	assigned := 0
	for i, w := range widths {
		if w == 0 {
			continue
		}
		exact := float64(budget) * w / total
		alloc[i] = int(exact)
		assigned += alloc[i]
		fracs = append(fracs, frac{idx: i, rem: exact - float64(alloc[i])})
	}
	// Largest remainder, ties to the lower stratum index — fully
	// deterministic.
	for assigned < budget {
		best := -1
		for j := range fracs {
			if best == -1 || fracs[j].rem > fracs[best].rem {
				best = j
			}
		}
		alloc[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	return alloc
}

// Observe folds the round's outcomes into the per-stratum estimates.
// The round must be the one Next just emitted.
func (a *Adaptive) Observe(r Round, outcomes []fault.Outcome) {
	if !a.outstanding || r.Index != a.round {
		panic(fmt.Sprintf("plan: Observe of round %d, expected outstanding round %d", r.Index, a.round))
	}
	if len(outcomes) != len(r.Plans) {
		panic(fmt.Sprintf("plan: %d outcomes for %d plans", len(outcomes), len(r.Plans)))
	}
	for i, o := range outcomes {
		s := &a.strata[r.Strata[i]]
		s.counts[o]++
		s.n++
	}
	a.next += len(r.Plans)
	a.round++
	a.outstanding = false
}

// Strata snapshots the per-stratum estimates.
func (a *Adaptive) Strata() []StratumStatus {
	out := make([]StratumStatus, len(a.strata))
	for i := range a.strata {
		s := &a.strata[i]
		hw := a.halfWidth(s)
		out[i] = StratumStatus{
			Region:     s.site.region,
			Bits:       s.site.bits,
			Population: s.site.pop,
			Trials:     s.n,
			Counts:     s.counts,
			HalfWidth:  hw,
			Done:       hw <= a.cfg.Precision,
		}
	}
	return out
}

// Result assembles the population-weighted estimate from the observed
// counts, exactly like the fixed stratified campaign's.
func (a *Adaptive) Result() *fault.StratifiedResult {
	res := &fault.StratifiedResult{Strata: make([]fault.Stratum, len(a.strata))}
	for i := range a.strata {
		s := &a.strata[i]
		res.Strata[i] = fault.Stratum{
			Region:     s.site.region,
			Bits:       s.site.bits,
			Population: s.site.pop,
			Counts:     s.counts,
		}
		res.TotalPopulation += s.site.pop
		res.Trials += s.n
	}
	return res
}
