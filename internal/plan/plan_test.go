package plan

import (
	"errors"
	"reflect"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/stats"
)

// toyApp mirrors the campaign package's miniature workload: a
// realistic mix of tap classes, cheap enough to capture a golden run
// per test.
func toyApp(m *fault.Machine) ([]byte, error) {
	buf := make([]uint8, 64)
	for i := range buf {
		buf[i] = uint8(i * 3)
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx])
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

func toyGolden(t *testing.T) *fault.GoldenRun {
	t.Helper()
	g, err := fault.CaptureGolden(toyApp)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	return g
}

// The static planner must emit exactly the window RunCampaign would
// pre-generate: same seed, same stream, same slice.
func TestStaticMatchesGeneratePlans(t *testing.T) {
	g := toyGolden(t)
	taps := g.Taps(fault.GPR, fault.RAny)
	window := fault.WindowFor(fault.GPR, 0)
	full := fault.GeneratePlans(7, fault.GPR, fault.RAny, window, 50, taps)

	for _, tc := range []struct{ trials, planTrials, offset int }{
		{50, 0, 0},
		{20, 50, 0},
		{20, 50, 15},
		{10, 50, 40},
	} {
		p, err := NewStatic(g, StaticConfig{
			Class: fault.GPR, Region: fault.RAny, Seed: 7,
			Trials: tc.trials, PlanTrials: tc.planTrials, PlanOffset: tc.offset,
		})
		if err != nil {
			t.Fatalf("NewStatic(%+v): %v", tc, err)
		}
		r, ok := p.Next()
		if !ok {
			t.Fatalf("NewStatic(%+v): no round", tc)
		}
		if r.Lo != tc.offset {
			t.Errorf("round Lo = %d, want %d", r.Lo, tc.offset)
		}
		if !reflect.DeepEqual(r.Plans, full[tc.offset:tc.offset+tc.trials]) {
			t.Errorf("static window (%+v) diverges from the RunCampaign plan stream", tc)
		}
		if _, ok := p.Next(); ok {
			t.Error("static planner emitted a second round")
		}
	}
}

func TestStaticValidation(t *testing.T) {
	g := toyGolden(t)
	if _, err := NewStatic(g, StaticConfig{Class: fault.GPR, Trials: 0}); err == nil {
		t.Error("expected error for zero trials")
	}
	if _, err := NewStatic(g, StaticConfig{Class: fault.GPR, Trials: 10, PlanTrials: 5}); err == nil {
		t.Error("expected error for window outside plan space")
	}
	empty := &fault.GoldenRun{}
	if _, err := NewStatic(empty, StaticConfig{Class: fault.GPR, Trials: 5}); !errors.Is(err, fault.ErrNoTaps) {
		t.Errorf("expected ErrNoTaps, got %v", err)
	}
}

// The stratified planner draws TrialsPerStratum plans per non-empty
// stratum from one seeded stream in stratum order, each plan inside
// its stratum's bit bounds and tap space.
func TestStratifiedRoundShape(t *testing.T) {
	g := toyGolden(t)
	p, err := NewStratified(g, fault.StratifiedConfig{TrialsPerStratum: 10, Class: fault.GPR, Seed: 1})
	if err != nil {
		t.Fatalf("NewStratified: %v", err)
	}
	r, ok := p.Next()
	if !ok {
		t.Fatal("no round")
	}
	if len(r.Plans) != len(r.Strata) {
		t.Fatalf("plans %d vs strata %d", len(r.Plans), len(r.Strata))
	}
	perStratum := map[int]int{}
	for i, pl := range r.Plans {
		s := r.Strata[i]
		perStratum[s]++
		taps := g.Taps(fault.GPR, pl.Region)
		if pl.Site >= taps {
			t.Errorf("plan %d: site %d outside %d taps of %s", i, pl.Site, taps, pl.Region)
		}
	}
	for s, n := range perStratum {
		if n != 10 {
			t.Errorf("stratum %d drew %d plans, want 10", s, n)
		}
	}

	// Bit bounds per stratum follow the bit-group partition.
	outcomes := make([]fault.Outcome, len(r.Plans))
	p.Observe(r, outcomes)
	res := p.Result()
	if res.Trials != len(r.Plans) {
		t.Errorf("result trials %d, want %d", res.Trials, len(r.Plans))
	}
	for i := range res.Strata {
		st := &res.Strata[i]
		lo, hi := st.Bits.Bounds()
		for j, pl := range r.Plans {
			if r.Strata[j] != i {
				continue
			}
			if pl.Bit < lo || pl.Bit > hi {
				t.Errorf("stratum %s/%s drew bit %d outside [%d,%d]", st.Region, st.Bits, pl.Bit, lo, hi)
			}
		}
		if st.Counts[fault.OutcomeMask] == 0 {
			t.Errorf("stratum %d observed no outcomes", i)
		}
	}

	// Deterministic: a fresh planner with the same seed re-emits the
	// identical round.
	p2, _ := NewStratified(g, fault.StratifiedConfig{TrialsPerStratum: 10, Class: fault.GPR, Seed: 1})
	r2, _ := p2.Next()
	if !reflect.DeepEqual(r.Plans, r2.Plans) || !reflect.DeepEqual(r.Strata, r2.Strata) {
		t.Error("stratified round not deterministic in seed")
	}
}

func TestStratifiedNoTaps(t *testing.T) {
	if _, err := NewStratified(&fault.GoldenRun{}, fault.StratifiedConfig{Class: fault.GPR}); !errors.Is(err, fault.ErrNoTaps) {
		t.Errorf("expected ErrNoTaps, got %v", err)
	}
}

// runPlanner drives an adaptive planner against a synthetic outcome
// oracle and returns the concatenated trial set.
func runPlanner(t *testing.T, a *Adaptive, oracle func(fault.Plan) fault.Outcome) []fault.Plan {
	t.Helper()
	var all []fault.Plan
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			t.Fatal("planner did not terminate")
		}
		r, ok := a.Next()
		if !ok {
			return all
		}
		if r.Lo != len(all) {
			t.Fatalf("round %d Lo = %d, want %d (rounds must be contiguous)", r.Index, r.Lo, len(all))
		}
		outcomes := make([]fault.Outcome, len(r.Plans))
		for i, p := range r.Plans {
			outcomes[i] = oracle(p)
		}
		all = append(all, r.Plans...)
		a.Observe(r, outcomes)
	}
}

// With a constant oracle every stratum is pure: the planner must
// converge with far fewer trials than the fixed-budget equivalent and
// report every stratum done.
func TestAdaptiveConvergesEarlyOnPureStrata(t *testing.T) {
	g := toyGolden(t)
	a, err := NewAdaptive(g, AdaptiveConfig{Class: fault.GPR, Region: fault.RAny, Seed: 3})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	all := runPlanner(t, a, func(fault.Plan) fault.Outcome { return fault.OutcomeMask })
	if !a.Converged() {
		t.Fatal("planner did not converge")
	}
	strata := a.Strata()
	fixed := FixedBudget(a.Config().Precision, a.Config().Confidence, len(strata))
	if len(all)*5 > fixed {
		t.Errorf("adaptive spent %d trials, fixed budget %d — want >=5x savings", len(all), fixed)
	}
	for _, s := range strata {
		if !s.Done {
			t.Errorf("stratum %s/%s not done (half-width %.4f)", s.Region, s.Bits, s.HalfWidth)
		}
		if s.HalfWidth > a.Config().Precision {
			t.Errorf("stratum %s/%s half-width %.4f > precision", s.Region, s.Bits, s.HalfWidth)
		}
	}
	if a.Total() != len(all) {
		t.Errorf("Total() = %d, want %d", a.Total(), len(all))
	}
}

// Identical seeds and identical outcomes must reproduce the identical
// trial sequence; a different seed must not.
func TestAdaptiveDeterministic(t *testing.T) {
	g := toyGolden(t)
	oracle := func(p fault.Plan) fault.Outcome {
		// Outcome depends only on the plan — as real trials do.
		if p.Bit >= 32 {
			return fault.OutcomeCrash
		}
		if p.Site%3 == 0 {
			return fault.OutcomeSDC
		}
		return fault.OutcomeMask
	}
	mk := func(seed uint64) []fault.Plan {
		a, err := NewAdaptive(g, AdaptiveConfig{Class: fault.GPR, Seed: seed, Precision: 0.1})
		if err != nil {
			t.Fatalf("NewAdaptive: %v", err)
		}
		return runPlanner(t, a, oracle)
	}
	one, two := mk(11), mk(11)
	if !reflect.DeepEqual(one, two) {
		t.Error("same seed produced different trial sets")
	}
	if other := mk(12); reflect.DeepEqual(one, other) {
		t.Error("different seed produced the same trial set")
	}
}

// Mixed-rate strata (p near 1/2) need the most trials; the planner
// must route later rounds toward them, not the pure strata.
func TestAdaptiveAllocatesToWidestStrata(t *testing.T) {
	g := toyGolden(t)
	a, err := NewAdaptive(g, AdaptiveConfig{Class: fault.GPR, Seed: 5, Precision: 0.08})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	// Low-bit strata alternate outcomes (p ~ 1/2); others are pure.
	flip := false
	oracle := func(p fault.Plan) fault.Outcome {
		if p.Bit < 8 {
			flip = !flip
			if flip {
				return fault.OutcomeSDC
			}
		}
		return fault.OutcomeMask
	}
	runPlanner(t, a, oracle)
	var mixedMax, pureMax int
	for _, s := range a.Strata() {
		if s.Bits == fault.BitsLow {
			if s.Trials > mixedMax {
				mixedMax = s.Trials
			}
		} else if s.Trials > pureMax {
			pureMax = s.Trials
		}
	}
	if mixedMax <= pureMax {
		t.Errorf("mixed strata got %d trials, pure strata %d — allocation ignored interval width", mixedMax, pureMax)
	}
}

// The budget cap must hold even when strata never converge.
func TestAdaptiveRespectsMaxTrials(t *testing.T) {
	g := toyGolden(t)
	a, err := NewAdaptive(g, AdaptiveConfig{
		Class: fault.GPR, Seed: 9, Precision: 0.001, MaxTrials: 200, RoundSize: 64, MinPerStratum: 4,
	})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	flip := false
	all := runPlanner(t, a, func(fault.Plan) fault.Outcome {
		flip = !flip
		if flip {
			return fault.OutcomeSDC
		}
		return fault.OutcomeMask
	})
	if a.Converged() {
		t.Error("planner cannot converge at precision 0.001 within 200 trials")
	}
	if len(all) > 200 {
		t.Errorf("planner spent %d trials, cap 200", len(all))
	}
}

// A cap below the full bootstrap binds from round 0: the bootstrap is
// spread evenly with the remainder on the lower stratum indices.
func TestAdaptiveCapBelowBootstrap(t *testing.T) {
	g := toyGolden(t)
	a, err := NewAdaptive(g, AdaptiveConfig{Class: fault.GPR, Seed: 9, MaxTrials: 5})
	if err != nil {
		t.Fatalf("NewAdaptive: %v", err)
	}
	all := runPlanner(t, a, func(fault.Plan) fault.Outcome { return fault.OutcomeMask })
	if len(all) != 5 {
		t.Errorf("planner spent %d trials, cap 5", len(all))
	}
	strata := a.Strata()
	for i, s := range strata {
		want := 5 / len(strata)
		if i < 5%len(strata) {
			want++
		}
		if s.Trials != want {
			t.Errorf("stratum %d got %d bootstrap trials, want %d", i, s.Trials, want)
		}
	}
}

// Per-stratum RNG streams: the plans a stratum draws depend only on
// the seed and how many trials THAT stratum has drawn — not on how
// the planner interleaved other strata. Two planners with different
// precisions (hence different allocation paths) must draw each
// stratum's plans as prefixes of the same stream.
func TestAdaptiveStratumStreamsIndependent(t *testing.T) {
	g := toyGolden(t)
	collect := func(precision float64) map[string][]fault.Plan {
		a, err := NewAdaptive(g, AdaptiveConfig{Class: fault.GPR, Seed: 21, Precision: precision})
		if err != nil {
			t.Fatalf("NewAdaptive: %v", err)
		}
		streams := map[string][]fault.Plan{}
		for {
			r, ok := a.Next()
			if !ok {
				return streams
			}
			outcomes := make([]fault.Outcome, len(r.Plans))
			for i, p := range r.Plans {
				key := p.Region.String() + "/" + mustGroup(p.Bit).String()
				streams[key] = append(streams[key], p)
				if p.Site%2 == 0 {
					outcomes[i] = fault.OutcomeSDC
				}
			}
			a.Observe(r, outcomes)
		}
	}
	loose, tight := collect(0.2), collect(0.1)
	for key, ls := range loose {
		ts := tight[key]
		n := len(ls)
		if len(ts) < n {
			n = len(ts)
		}
		if !reflect.DeepEqual(ls[:n], ts[:n]) {
			t.Errorf("stratum %s: plan stream diverges between allocation paths", key)
		}
	}
}

func mustGroup(bit int) fault.BitGroup {
	for bg := fault.BitGroup(0); bg < fault.NumBitGroups; bg++ {
		lo, hi := bg.Bounds()
		if bit >= lo && bit <= hi {
			return bg
		}
	}
	panic("bit outside every group")
}

func TestAdaptiveNoTaps(t *testing.T) {
	if _, err := NewAdaptive(&fault.GoldenRun{}, AdaptiveConfig{Class: fault.GPR}); !errors.Is(err, fault.ErrNoTaps) {
		t.Errorf("expected ErrNoTaps, got %v", err)
	}
}

func TestFixedBudgetMatchesWilsonFixedN(t *testing.T) {
	if got, want := FixedBudget(0.05, 0.95, 6), 6*stats.WilsonFixedN(0.05, 0.95); got != want {
		t.Errorf("FixedBudget = %d, want %d", got, want)
	}
}
