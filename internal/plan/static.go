package plan

import (
	"fmt"

	"vsresil/internal/fault"
)

// StaticConfig parameterizes the classic fixed-budget window.
type StaticConfig struct {
	// Class, Region, Seed, Window as in fault.Config (Window 0 means
	// the class default).
	Class  fault.Class
	Region fault.Region
	Seed   uint64
	Window uint64
	// Trials is the window length, PlanTrials the plan-space size
	// (0 = Trials) and PlanOffset the window start — identical
	// semantics to the same-named fault.Config fields.
	Trials     int
	PlanTrials int
	PlanOffset int
}

// Static emits the classic plan window as a single round: the plans
// are drawn from fault.GeneratePlans — the same stream RunCampaign
// pre-generates — and sliced to [PlanOffset, PlanOffset+Trials), so a
// campaign routed through Static is bit-identical to one that never
// saw the planner seam.
type Static struct {
	cfg       StaticConfig
	totalTaps uint64
	emitted   bool
}

// NewStatic validates cfg against the golden run's site geometry.
func NewStatic(golden *fault.GoldenRun, cfg StaticConfig) (*Static, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("plan: non-positive trial count %d", cfg.Trials)
	}
	if cfg.PlanTrials == 0 {
		cfg.PlanTrials = cfg.Trials
	}
	if cfg.PlanOffset < 0 || cfg.PlanOffset+cfg.Trials > cfg.PlanTrials {
		return nil, fmt.Errorf("plan: window [%d,%d) outside plan space [0,%d)",
			cfg.PlanOffset, cfg.PlanOffset+cfg.Trials, cfg.PlanTrials)
	}
	taps := golden.Taps(cfg.Class, cfg.Region)
	if taps == 0 {
		return nil, fault.ErrNoTaps
	}
	return &Static{cfg: cfg, totalTaps: taps}, nil
}

// Next emits the whole window once.
func (s *Static) Next() (Round, bool) {
	if s.emitted {
		return Round{}, false
	}
	s.emitted = true
	window := fault.WindowFor(s.cfg.Class, s.cfg.Window)
	plans := fault.GeneratePlans(s.cfg.Seed, s.cfg.Class, s.cfg.Region, window, s.cfg.PlanTrials, s.totalTaps)
	return Round{
		Index: 0,
		Lo:    s.cfg.PlanOffset,
		Plans: plans[s.cfg.PlanOffset : s.cfg.PlanOffset+s.cfg.Trials],
	}, true
}

// Observe is a no-op: a static budget never reacts to outcomes.
func (s *Static) Observe(Round, []fault.Outcome) {}
