package plan

import (
	"vsresil/internal/fault"
	"vsresil/internal/stats"
)

// strataFor enumerates the non-empty strata of a golden run's site
// space in the canonical order — regions outer (ascending), bit
// groups inner — optionally restricted to one region. Every planner
// and every layer above (campaign, fabric, service) sees strata in
// this one order, which is what makes per-stratum RNG streams and
// allocation decisions reproducible everywhere.
type stratumSite struct {
	region fault.Region
	bits   fault.BitGroup
	taps   uint64
	pop    uint64
}

func strataFor(golden *fault.GoldenRun, class fault.Class, region fault.Region) []stratumSite {
	var out []stratumSite
	for r := fault.Region(0); r < fault.NumRegions; r++ {
		if region != fault.RAny && r != region {
			continue
		}
		taps := golden.Taps(class, r)
		if taps == 0 {
			continue
		}
		for bg := fault.BitGroup(0); bg < fault.NumBitGroups; bg++ {
			out = append(out, stratumSite{
				region: r,
				bits:   bg,
				taps:   taps,
				pop:    taps * uint64(bg.Width()),
			})
		}
	}
	return out
}

// Stratified emits the classic fixed per-stratum draw as one round:
// TrialsPerStratum plans for every non-empty (region, bit group)
// stratum, drawn from a single seeded RNG in stratum order — exactly
// the stream the old fault.RunStratifiedCampaign private loop drew,
// so re-routing the stratified campaign through the seam preserves
// its plans verbatim.
type Stratified struct {
	cfg     fault.StratifiedConfig
	strata  []stratumSite
	counts  [][fault.NumOutcomes]int
	trials  []int
	emitted bool
}

// NewStratified sizes the strata from the golden run's geometry.
func NewStratified(golden *fault.GoldenRun, cfg fault.StratifiedConfig) (*Stratified, error) {
	if cfg.TrialsPerStratum <= 0 {
		cfg.TrialsPerStratum = 20
	}
	strata := strataFor(golden, cfg.Class, fault.RAny)
	if len(strata) == 0 {
		return nil, fault.ErrNoTaps
	}
	return &Stratified{
		cfg:    cfg,
		strata: strata,
		counts: make([][fault.NumOutcomes]int, len(strata)),
		trials: make([]int, len(strata)),
	}, nil
}

// Next emits the full per-stratum draw once.
func (p *Stratified) Next() (Round, bool) {
	if p.emitted {
		return Round{}, false
	}
	p.emitted = true
	window := fault.WindowFor(p.cfg.Class, p.cfg.Window)
	n := len(p.strata) * p.cfg.TrialsPerStratum
	r := Round{Plans: make([]fault.Plan, 0, n), Strata: make([]int, 0, n)}
	rng := stats.NewRNG(p.cfg.Seed)
	for i, s := range p.strata {
		lo, hi := s.bits.Bounds()
		for t := 0; t < p.cfg.TrialsPerStratum; t++ {
			r.Plans = append(r.Plans, fault.Plan{
				Class:  p.cfg.Class,
				Reg:    rng.Intn(fault.NumRegisters),
				Bit:    lo + rng.Intn(hi-lo+1),
				Site:   rng.Uint64() % s.taps,
				Window: window,
				Region: s.region,
			})
			r.Strata = append(r.Strata, i)
		}
	}
	return r, true
}

// Observe folds the round's outcomes into the per-stratum counts.
func (p *Stratified) Observe(r Round, outcomes []fault.Outcome) {
	for i, o := range outcomes {
		s := r.Strata[i]
		p.counts[s][o]++
		p.trials[s]++
	}
}

// Result assembles the Relyzer-style weighted estimate from the
// observed counts.
func (p *Stratified) Result() *fault.StratifiedResult {
	res := &fault.StratifiedResult{Strata: make([]fault.Stratum, len(p.strata))}
	for i, s := range p.strata {
		res.Strata[i] = fault.Stratum{
			Region:     s.region,
			Bits:       s.bits,
			Population: s.pop,
			Counts:     p.counts[i],
		}
		res.TotalPopulation += s.pop
		res.Trials += p.trials[i]
	}
	return res
}
