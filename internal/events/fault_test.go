package events

import (
	"reflect"
	"strings"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
)

// movedObjectPair builds a frame pair with one moved object, the
// standard detection workload.
func movedObjectPair() (*imgproc.Gray, *imgproc.Gray) {
	bg := imgproc.NewGray(48, 48)
	bg.Fill(100)
	prev := bg.Clone()
	cur := bg.Clone()
	stamp := func(img *imgproc.Gray, cx, cy int) {
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				img.Set(cx+dx, cy+dy, 255)
			}
		}
	}
	stamp(prev, 10, 20)
	stamp(cur, 16, 20)
	return prev, cur
}

// TestDetectMotionSinkEquivalence pins the seam at the events layer:
// detection under a plan-free fault machine, a Meter and the Nop sink
// must agree exactly, and the machine must have seen warp-stage taps —
// proof that DetectMotion's computation is inside the injection space.
func TestDetectMotionSinkEquivalence(t *testing.T) {
	prev, cur := movedObjectPair()
	run := func(s probe.Sink) []Detection {
		dets, err := DetectMotion(prev, cur, geom.Identity(), DefaultDetectConfig(), 1, s)
		if err != nil {
			t.Fatalf("DetectMotion: %v", err)
		}
		return dets
	}
	m := fault.New()
	machine := run(m)
	nop := run(probe.Nop{})
	meter := probe.NewMeter()
	metered := run(meter)
	if !reflect.DeepEqual(machine, nop) {
		t.Errorf("machine vs Nop detections differ: %v vs %v", machine, nop)
	}
	if !reflect.DeepEqual(machine, metered) {
		t.Errorf("machine vs Meter detections differ: %v vs %v", machine, metered)
	}
	warpTaps := m.RegionTaps(fault.GPR, probe.RWarpInvoker) +
		m.RegionTaps(fault.GPR, probe.RRemapBilinear) +
		m.RegionTaps(fault.FPR, probe.RWarpInvoker) +
		m.RegionTaps(fault.FPR, probe.RRemapBilinear)
	if warpTaps == 0 {
		t.Error("no warp-region taps recorded: detection left the injection space")
	}
	if meterTaps := meter.IntTaps(probe.RRemapBilinear) + meter.FPTaps(probe.RRemapBilinear); meterTaps == 0 {
		t.Error("Meter recorded no remapBilinear taps for detection")
	}
}

// TestDetectMotionInjectionLands verifies a fault planned inside the
// warp region lands during detection (the events path is exercised by
// campaigns, not only clean runs).
func TestDetectMotionInjectionLands(t *testing.T) {
	prev, cur := movedObjectPair()
	m := fault.NewWithPlan(fault.Plan{
		Class:  fault.GPR,
		Reg:    3,
		Bit:    2,
		Site:   100,
		Window: 1 << 30,
		Region: probe.RRemapBilinear,
	}, 0)
	if _, err := DetectMotion(prev, cur, geom.Identity(), DefaultDetectConfig(), 1, m); err != nil {
		// A corrupted warp intermediate may surface as a detected error;
		// that is a legitimate campaign outcome, not a test failure.
		t.Logf("injection surfaced as error: %v", err)
	}
	if !m.Injected() {
		t.Error("planned warp-region fault never landed during DetectMotion")
	}
}

// TestDetectMotionStepBudgetHang verifies the machine's bounded
// execution reaches the events path: an exhausted step budget must
// raise the hang sentinel out of DetectMotion, as the campaign trial
// runner expects.
func TestDetectMotionStepBudgetHang(t *testing.T) {
	prev, cur := movedObjectPair()
	m := fault.NewWithPlan(fault.Plan{Class: fault.GPR, Region: fault.RAny}, 50)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("step budget of 50 did not hang detection")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "step budget") {
			panic(r) // not the hang sentinel: re-raise
		}
	}()
	_, _ = DetectMotion(prev, cur, geom.Identity(), DefaultDetectConfig(), 1, m)
}

// TestSummarizeSinkEquivalence runs the full stitch+summarize workflow
// under a plan-free machine and the Nop sink and requires identical
// tracks — the tracker must be deterministic across sinks.
func TestSummarizeSinkEquivalence(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 12
	seq := virat.Input2(p)
	seq.NoiseSigma = 2
	seq.AddMovingObjects(6, 9)
	frames := seq.Frames()
	st := stitch.New(stitch.DefaultConfig())
	res, err := st.Run(frames, probe.Nop{})
	if err != nil {
		t.Fatalf("stitch: %v", err)
	}
	sumMachine, err := Summarize(frames, res, DefaultDetectConfig(), DefaultTrackConfig(), fault.New())
	if err != nil {
		t.Fatalf("Summarize(machine): %v", err)
	}
	sumNop, err := Summarize(frames, res, DefaultDetectConfig(), DefaultTrackConfig(), probe.Nop{})
	if err != nil {
		t.Fatalf("Summarize(nop): %v", err)
	}
	if !reflect.DeepEqual(sumMachine.Tracks, sumNop.Tracks) {
		t.Errorf("machine vs Nop tracks differ: %d vs %d tracks", len(sumMachine.Tracks), len(sumNop.Tracks))
	}
	if !reflect.DeepEqual(sumMachine.Detections, sumNop.Detections) {
		t.Errorf("machine vs Nop detection counts differ")
	}
}
