package events

import (
	"math"
	"testing"

	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
)

func TestConnectedComponents(t *testing.T) {
	// Two separate blobs and one sub-minimum speck on a 8x4 grid.
	w, h := 8, 4
	mask := make([]bool, w*h)
	set := func(x, y int) { mask[y*w+x] = true }
	set(0, 0)
	set(1, 0)
	set(0, 1)
	set(1, 1) // blob A: 4 px
	set(5, 2)
	set(6, 2)
	set(5, 3)
	set(6, 3) // blob B: 4 px
	set(3, 0) // speck: 1 px
	comps := connectedComponents(mask, w, h, 2)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	for _, c := range comps {
		if c.area != 4 {
			t.Errorf("component area %d, want 4", c.area)
		}
	}
}

func TestConnectedComponentsNoWrap(t *testing.T) {
	// Pixels at the end of one row and the start of the next must not
	// merge.
	w, h := 4, 2
	mask := make([]bool, w*h)
	mask[3] = true // (3,0)
	mask[4] = true // (0,1)
	comps := connectedComponents(mask, w, h, 1)
	if len(comps) != 2 {
		t.Fatalf("row wrap merged components: %d", len(comps))
	}
}

func TestDetectMotionStaticSceneEmpty(t *testing.T) {
	g := imgproc.NewGray(48, 48)
	for i := range g.Pix {
		g.Pix[i] = uint8(i % 200)
	}
	dets, err := DetectMotion(g, g.Clone(), geom.Identity(), DefaultDetectConfig(), 1, nil)
	if err != nil {
		t.Fatalf("DetectMotion: %v", err)
	}
	if len(dets) != 0 {
		t.Errorf("static scene produced %d detections", len(dets))
	}
}

func TestDetectMotionFindsMovedObject(t *testing.T) {
	bg := imgproc.NewGray(48, 48)
	bg.Fill(100)
	prev := bg.Clone()
	cur := bg.Clone()
	stamp := func(img *imgproc.Gray, cx, cy int) {
		for dy := -2; dy <= 2; dy++ {
			for dx := -2; dx <= 2; dx++ {
				img.Set(cx+dx, cy+dy, 255)
			}
		}
	}
	stamp(prev, 10, 20)
	stamp(cur, 16, 20) // moved 6 px right
	dets, err := DetectMotion(prev, cur, geom.Identity(), DefaultDetectConfig(), 3, nil)
	if err != nil {
		t.Fatalf("DetectMotion: %v", err)
	}
	if len(dets) == 0 {
		t.Fatal("moved object not detected")
	}
	// The strongest detection must be near either the old or the new
	// location (frame differencing reports both).
	d := dets[0]
	nearNew := math.Hypot(d.X-16, d.Y-20) < 6
	nearOld := math.Hypot(d.X-10, d.Y-20) < 6
	if !nearNew && !nearOld {
		t.Errorf("detection at (%.1f,%.1f), want near (16,20) or (10,20)", d.X, d.Y)
	}
	if d.Frame != 3 {
		t.Errorf("detection frame %d", d.Frame)
	}
}

func TestDetectMotionCompensatesCameraMotion(t *testing.T) {
	// A static textured scene seen by a translating camera: after
	// homography compensation there must be (almost) no motion.
	world := imgproc.NewGray(96, 96)
	for i := range world.Pix {
		world.Pix[i] = uint8((i*31 + i/96*7) % 256)
	}
	crop := func(x0, y0 int) *imgproc.Gray { return world.SubImage(x0, y0, x0+48, y0+48) }
	prev := crop(0, 0)
	cur := crop(6, 0)
	// prev -> cur: content shifts left by 6.
	h := geom.Translation(-6, 0)
	dets, err := DetectMotion(prev, cur, h, DefaultDetectConfig(), 1, nil)
	if err != nil {
		t.Fatalf("DetectMotion: %v", err)
	}
	if len(dets) != 0 {
		t.Errorf("camera motion not compensated: %d detections", len(dets))
	}
}

// buildSummary runs the full stitch+summarize path on a smooth input
// with moving objects.
func buildSummary(t *testing.T, objects int) (*Summary, *stitch.Result, *virat.Sequence) {
	t.Helper()
	p := virat.TestScale()
	p.Frames = 12
	seq := virat.Input2(p)
	seq.NoiseSigma = 2 // light noise so motion detection stays clean
	if objects > 0 {
		seq.AddMovingObjects(objects, 9)
	}
	frames := seq.Frames()
	st := stitch.New(stitch.DefaultConfig())
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatalf("stitch: %v", err)
	}
	sum, err := Summarize(frames, res, DefaultDetectConfig(), DefaultTrackConfig(), nil)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	return sum, res, seq
}

func TestSummarizeTracksMovingObjects(t *testing.T) {
	sum, _, _ := buildSummary(t, 6)
	if len(sum.Tracks) == 0 {
		t.Fatal("no tracks for a scene with moving objects")
	}
	for _, tr := range sum.Tracks {
		if len(tr.Points) != len(tr.Frames) {
			t.Fatalf("track %d points/frames mismatch", tr.ID)
		}
		if len(tr.Points) < DefaultTrackConfig().MinLength {
			t.Errorf("track %d shorter than MinLength", tr.ID)
		}
		// Frames must be strictly increasing.
		for i := 1; i < len(tr.Frames); i++ {
			if tr.Frames[i] <= tr.Frames[i-1] {
				t.Errorf("track %d frames not increasing: %v", tr.ID, tr.Frames)
			}
		}
	}
}

func TestSummarizeStaticSceneFewTracks(t *testing.T) {
	sum, _, _ := buildSummary(t, 0)
	if len(sum.Tracks) > 1 {
		t.Errorf("static scene produced %d tracks", len(sum.Tracks))
	}
}

func TestOverlayDrawsOnCopy(t *testing.T) {
	sum, res, _ := buildSummary(t, 6)
	prim := res.Primary()
	before := prim.Image.Clone()
	over := Overlay(prim.Image, prim.Bounds.MinX, prim.Bounds.MinY, sum.Tracks)
	if !prim.Image.Equal(before) {
		t.Error("Overlay mutated the panorama")
	}
	if len(sum.Tracks) > 0 && over.Equal(prim.Image) {
		t.Error("Overlay drew nothing despite tracks")
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	img := imgproc.NewGray(10, 10)
	drawLine(img, 1, 1, 8, 6, 200)
	if img.At(1, 1) != 200 || img.At(8, 6) != 200 {
		t.Error("line endpoints not drawn")
	}
	// Clipping: must not panic outside bounds.
	drawLine(img, -5, -5, 15, 15, 200)
}

func TestDrawMarkerClips(t *testing.T) {
	img := imgproc.NewGray(4, 4)
	drawMarker(img, 0, 0, 255)
	drawMarker(img, -10, -10, 255) // fully outside: no panic
	if img.At(0, 0) != 255 {
		t.Error("marker center not drawn")
	}
}
