// Package events implements the event-summarization half of the
// paper's UAV multimedia pipeline (Fig 2): detection and tracking of
// moving objects, and the integration step that overlays the tracks on
// the coverage panorama to form the comprehensive summary.
//
// The paper's evaluation focuses on coverage summarization; this
// package completes the described system so downstream users get the
// full workflow. Detection is registration-compensated frame
// differencing (the standard approach for moving cameras): the
// previous frame is warped into the current frame's coordinates using
// the stitcher's homography, the difference is thresholded, and
// connected components above a minimum area become detections. A
// nearest-neighbor tracker associates detections across frames.
package events

import (
	"math"
	"sort"

	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/warp"
)

// Detection is one moving-object observation in frame coordinates.
type Detection struct {
	Frame int
	// X, Y is the component centroid.
	X, Y float64
	// Area is the component pixel count.
	Area int
}

// DetectConfig parameterizes motion detection.
type DetectConfig struct {
	// DiffThreshold is the per-pixel absolute difference needed to
	// mark motion (default 60; it must clear sensor noise).
	DiffThreshold uint8
	// MinArea is the minimum connected-component size in pixels
	// (default 6).
	MinArea int
	// MaxDetections caps the per-frame detections, keeping the largest
	// (default 16).
	MaxDetections int
}

// DefaultDetectConfig returns the standard detection parameters.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{DiffThreshold: 95, MinArea: 8, MaxDetections: 16}
}

// DetectMotion finds moving regions between two registered frames.
// hPrevToCur maps prev's coordinates into cur's. m is any probe.Sink;
// pass probe.Nop{} for an uninstrumented run (nil is normalized by
// the warp stage, the only instrumented computation here).
func DetectMotion(prev, cur *imgproc.Gray, hPrevToCur geom.Homography, cfg DetectConfig, frame int, m probe.Sink) ([]Detection, error) {
	if cfg.DiffThreshold == 0 {
		cfg.DiffThreshold = 60
	}
	if cfg.MinArea <= 0 {
		cfg.MinArea = 6
	}
	if cfg.MaxDetections <= 0 {
		cfg.MaxDetections = 16
	}
	// Warp the previous frame into the current frame's coordinates so
	// camera motion cancels and only scene motion remains.
	aligned, err := warp.WarpPerspective(prev, hPrevToCur, cur.W, cur.H, m)
	if err != nil {
		return nil, err
	}
	// Motion mask: thresholded absolute difference, restricted to the
	// region the warp actually covered (uncovered pixels are black and
	// would read as spurious motion). Both images are lightly blurred
	// first so sub-pixel registration error on sharp static edges does
	// not read as motion.
	curS := imgproc.GaussianBlur(cur, 1, 0.8)
	alignedS := imgproc.GaussianBlur(aligned, 1, 0.8)
	mask := make([]bool, cur.W*cur.H)
	for i := range mask {
		if aligned.Pix[i] == 0 {
			continue // uncovered by the alignment warp
		}
		d := int(curS.Pix[i]) - int(alignedS.Pix[i])
		if d < 0 {
			d = -d
		}
		if d >= int(cfg.DiffThreshold) {
			mask[i] = true
		}
	}
	comps := connectedComponents(mask, cur.W, cur.H, cfg.MinArea)
	dets := make([]Detection, 0, len(comps))
	for _, c := range comps {
		dets = append(dets, Detection{
			Frame: frame,
			X:     c.sumX / float64(c.area),
			Y:     c.sumY / float64(c.area),
			Area:  c.area,
		})
	}
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Area != dets[j].Area {
			return dets[i].Area > dets[j].Area
		}
		if dets[i].Y != dets[j].Y {
			return dets[i].Y < dets[j].Y
		}
		return dets[i].X < dets[j].X
	})
	if len(dets) > cfg.MaxDetections {
		dets = dets[:cfg.MaxDetections]
	}
	return dets, nil
}

// component accumulates a connected region.
type component struct {
	area       int
	sumX, sumY float64
}

// connectedComponents labels 4-connected true regions of at least
// minArea pixels using an iterative flood fill.
func connectedComponents(mask []bool, w, h, minArea int) []component {
	visited := make([]bool, len(mask))
	var comps []component
	var stack []int
	for start := range mask {
		if !mask[start] || visited[start] {
			continue
		}
		var c component
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			c.area++
			c.sumX += float64(x)
			c.sumY += float64(y)
			for _, n := range [4]int{i - 1, i + 1, i - w, i + w} {
				if n < 0 || n >= len(mask) {
					continue
				}
				// Prevent horizontal wrap-around.
				if (n == i-1 && x == 0) || (n == i+1 && x == w-1) {
					continue
				}
				if mask[n] && !visited[n] {
					visited[n] = true
					stack = append(stack, n)
				}
			}
		}
		if c.area >= minArea {
			comps = append(comps, c)
		}
	}
	return comps
}

// Track is a sequence of associated detections for one object, with
// positions lifted into panorama coordinates.
type Track struct {
	ID int
	// Points holds the object's panorama-coordinate path.
	Points []geom.Pt
	// Frames holds the frame index of each point.
	Frames []int
}

// TrackConfig parameterizes association.
type TrackConfig struct {
	// MaxDistance is the association gate in panorama pixels
	// (default 20).
	MaxDistance float64
	// MinLength drops tracks observed fewer than this many times
	// (default 3), suppressing noise detections.
	MinLength int
}

// DefaultTrackConfig returns the standard tracker parameters.
func DefaultTrackConfig() TrackConfig {
	return TrackConfig{MaxDistance: 20, MinLength: 3}
}

// Summary is the event-summarization output: tracks in panorama
// coordinates plus the per-frame detection counts.
type Summary struct {
	Tracks []Track
	// Detections counts raw detections per frame index.
	Detections map[int]int
}

// Summarize runs motion detection over every registered consecutive
// frame pair of a stitching result and associates the detections into
// tracks. Frames the stitcher discarded are skipped (their geometry is
// unknown), exactly as the real pipeline would. m is any probe.Sink;
// pass probe.Nop{} for an uninstrumented run (nil is normalized
// downstream).
func Summarize(frames []*imgproc.Gray, res *stitch.Result, dcfg DetectConfig, tcfg TrackConfig, m probe.Sink) (*Summary, error) {
	if tcfg.MaxDistance <= 0 {
		tcfg.MaxDistance = 20
	}
	if tcfg.MinLength <= 0 {
		tcfg.MinLength = 3
	}
	sum := &Summary{Detections: make(map[int]int)}

	// Registered frames with their panorama transforms, per segment.
	type regFrame struct {
		idx     int
		segment int
		h       geom.Homography
	}
	var regs []regFrame
	for _, rep := range res.Reports {
		if rep.Status == stitch.StatusDiscarded {
			continue
		}
		regs = append(regs, regFrame{idx: rep.Index, segment: rep.Segment, h: rep.H})
	}

	type liveTrack struct {
		track Track
		last  geom.Pt
		seg   int
	}
	var live []*liveTrack
	nextID := 0

	for i := 1; i < len(regs); i++ {
		a, b := regs[i-1], regs[i]
		if a.segment != b.segment {
			continue // no geometric relation across a scene cut
		}
		// prev -> cur homography: cur.h maps cur->panorama; so
		// prevToCur = cur.h^-1 * prev.h.
		bInv, err := b.h.Inverse()
		if err != nil {
			continue
		}
		prevToCur := bInv.Mul(a.h)
		dets, err := DetectMotion(frames[a.idx], frames[b.idx], prevToCur, dcfg, b.idx, m)
		if err != nil {
			return nil, err
		}
		sum.Detections[b.idx] = len(dets)

		// Lift detections to panorama coordinates and associate. Each
		// track takes at most one detection per frame (differencing
		// reports both the old and the new object location; without
		// this guard a track would absorb both).
		taken := map[*liveTrack]bool{}
		for _, d := range dets {
			p := b.h.Apply(geom.Pt{X: d.X, Y: d.Y})
			var best *liveTrack
			bestDist := tcfg.MaxDistance
			for _, lt := range live {
				if lt.seg != b.segment || taken[lt] {
					continue
				}
				if dist := lt.last.Dist(p); dist <= bestDist {
					best, bestDist = lt, dist
				}
			}
			if best == nil {
				lt := &liveTrack{
					track: Track{ID: nextID, Points: []geom.Pt{p}, Frames: []int{b.idx}},
					last:  p,
					seg:   b.segment,
				}
				nextID++
				live = append(live, lt)
				continue
			}
			best.track.Points = append(best.track.Points, p)
			best.track.Frames = append(best.track.Frames, b.idx)
			best.last = p
			taken[best] = true
		}
	}

	for _, lt := range live {
		if len(lt.track.Points) >= tcfg.MinLength {
			sum.Tracks = append(sum.Tracks, lt.track)
		}
	}
	sort.Slice(sum.Tracks, func(i, j int) bool { return sum.Tracks[i].ID < sum.Tracks[j].ID })
	return sum, nil
}

// Overlay draws the tracks onto a copy of the panorama (white
// polylines with endpoint markers) — the paper's integrated
// summarization output ("overlaying the tracks on the panorama").
// origin is the panorama's coordinate origin (Bounds.MinX/MinY).
func Overlay(panorama *imgproc.Gray, originX, originY int, tracks []Track) *imgproc.Gray {
	out := panorama.Clone()
	for _, tr := range tracks {
		for i := 1; i < len(tr.Points); i++ {
			drawLine(out,
				int(tr.Points[i-1].X)-originX, int(tr.Points[i-1].Y)-originY,
				int(tr.Points[i].X)-originX, int(tr.Points[i].Y)-originY, 255)
		}
		if len(tr.Points) > 0 {
			p := tr.Points[len(tr.Points)-1]
			drawMarker(out, int(p.X)-originX, int(p.Y)-originY, 255)
		}
	}
	return out
}

// drawLine draws an anti-alias-free Bresenham line, clipped to bounds.
func drawLine(img *imgproc.Gray, x0, y0, x1, y1 int, shade uint8) {
	dx := int(math.Abs(float64(x1 - x0)))
	dy := -int(math.Abs(float64(y1 - y0)))
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if img.InBounds(x0, y0) {
			img.Set(x0, y0, shade)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// drawMarker stamps a small cross at (x, y).
func drawMarker(img *imgproc.Gray, x, y int, shade uint8) {
	for d := -2; d <= 2; d++ {
		if img.InBounds(x+d, y) {
			img.Set(x+d, y, shade)
		}
		if img.InBounds(x, y+d) {
			img.Set(x, y+d, shade)
		}
	}
}
