package stats

import "math"

// Binomial confidence intervals for the adaptive campaign planner: the
// per-stratum outcome rates of a fault-injection campaign are binomial
// proportions, and the planner keeps injecting into a stratum until the
// interval around every rate is narrower than the target half-width.
//
// WilsonInterval is the working estimator (well-behaved at p near 0 and
// 1, where most strata live — pure-Mask strata are the common case).
// ClopperPearson is the exact tail-inversion interval used as a
// cross-check: it is conservative (never narrower than the nominal
// coverage), so Wilson ⊆ Clopper–Pearson holds approximately and the
// golden tests pin both against published values.

// WilsonInterval returns the Wilson score interval for k successes in n
// trials at the given two-sided confidence level (e.g. 0.95). n == 0
// returns the vacuous interval [0, 1].
func WilsonInterval(k, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	nn := float64(n)
	p := float64(k) / nn
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth returns half the width of the Wilson interval — the
// planner's per-stratum convergence measure.
func WilsonHalfWidth(k, n int, confidence float64) float64 {
	lo, hi := WilsonInterval(k, n, confidence)
	return (hi - lo) / 2
}

// WilsonFixedN returns the smallest n for which the worst-case
// (p = 1/2) Wilson half-width is at most halfWidth — the per-stratum
// budget a fixed (non-adaptive) design must commit to guarantee the
// same precision without looking at outcomes.
func WilsonFixedN(halfWidth, confidence float64) int {
	if halfWidth <= 0 || halfWidth >= 0.5 {
		return 1
	}
	lo, hi := 1, 1
	for worstWilsonHalf(hi, confidence) > halfWidth && hi < 1<<30 {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if worstWilsonHalf(mid, confidence) <= halfWidth {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// worstWilsonHalf is the Wilson half-width at p-hat = 1/2 for n trials.
func worstWilsonHalf(n int, confidence float64) float64 {
	z := NormalQuantile(1 - (1-confidence)/2)
	nn := float64(n)
	denom := 1 + z*z/nn
	return z / denom * math.Sqrt(0.25/nn+z*z/(4*nn*nn))
}

// ClopperPearson returns the exact (conservative) binomial interval for
// k successes in n trials at the given two-sided confidence level. It
// inverts the binomial tails via Beta quantiles:
//
//	lo = BetaInv(alpha/2; k, n-k+1), hi = BetaInv(1-alpha/2; k+1, n-k)
//
// with lo = 0 at k == 0 and hi = 1 at k == n. n == 0 returns [0, 1].
func ClopperPearson(k, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	alpha := 1 - confidence
	lo, hi = 0, 1
	if k > 0 {
		lo = betaQuantile(alpha/2, float64(k), float64(n-k+1))
	}
	if k < n {
		hi = betaQuantile(1-alpha/2, float64(k+1), float64(n-k))
	}
	return lo, hi
}

// NormalQuantile returns the standard normal quantile Phi^-1(p) using
// Acklam's rational approximation (relative error < 1.15e-9), refined
// by one Halley step against math.Erfc. Panics outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile needs p in (0, 1)")
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement step drives the approximation to full
	// float64 precision.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// betaQuantile inverts the regularized incomplete beta function:
// returns x with RegIncBeta(a, b, x) == p, by bisection (the planner
// calls this a handful of times per round; robustness beats speed).
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) by Lentz's continued-fraction method.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (modified Lentz).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
