package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	h := NewHistogram(10)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Add(r.Intn(10))
	}
	// Chi-square with 9 dof: 99.9th percentile ~ 27.9.
	if chi2 := h.ChiSquareUniform(); chi2 > 30 {
		t.Errorf("Intn not uniform: chi2 = %v", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams collided immediately")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Error("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Error("Hash64 trivially collides")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(-1) // ignored
	h.Add(99) // ignored
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[1] != 2 {
		t.Errorf("Counts[1] = %d", h.Counts[1])
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestChiSquareUniformPerfect(t *testing.T) {
	h := NewHistogram(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 25; j++ {
			h.Add(i)
		}
	}
	if chi2 := h.ChiSquareUniform(); chi2 != 0 {
		t.Errorf("perfectly uniform chi2 = %v", chi2)
	}
}

func TestChiSquareEmptyHistogram(t *testing.T) {
	h := NewHistogram(0)
	if chi2 := h.ChiSquareUniform(); chi2 != 0 {
		t.Errorf("empty chi2 = %v", chi2)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	empty := CDF(nil, []float64{1})
	if empty[0] != 0 {
		t.Error("empty CDF should be 0")
	}
}

// Property: CDF is monotonically non-decreasing in the threshold.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		th := []float64{10, 50, 100, 200, 300}
		c := CDF(xs, th)
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateCurve(t *testing.T) {
	rc := NewRateCurve(2, 10)
	for i := 0; i < 100; i++ {
		rc.Add(i % 2)
	}
	if rc.Total() != 100 {
		t.Errorf("Total = %d", rc.Total())
	}
	final := rc.Final()
	if final[0] != 0.5 || final[1] != 0.5 {
		t.Errorf("Final = %v", final)
	}
	if len(rc.Checkpoints) != 10 {
		t.Errorf("checkpoints = %d", len(rc.Checkpoints))
	}
	// Alternating outcomes are stable almost immediately.
	if knee := rc.Knee(0.01); knee > 20 {
		t.Errorf("Knee = %d, expected early stabilization", knee)
	}
}

func TestRateCurveKneeDetectsLateShift(t *testing.T) {
	rc := NewRateCurve(2, 10)
	// First 80 samples category 0, last 20 category 1: the rates keep
	// moving until the very end, so the knee is late.
	for i := 0; i < 80; i++ {
		rc.Add(0)
	}
	for i := 0; i < 20; i++ {
		rc.Add(1)
	}
	if knee := rc.Knee(0.01); knee < 90 {
		t.Errorf("Knee = %d, expected late stabilization", knee)
	}
}

func TestRateCurveEmpty(t *testing.T) {
	rc := NewRateCurve(3, 10)
	if knee := rc.Knee(0.01); knee != 0 {
		t.Errorf("empty Knee = %d", knee)
	}
	f := rc.Final()
	for _, v := range f {
		if v != 0 {
			t.Error("empty Final should be zeros")
		}
	}
}

func TestRateCurveIgnoresBadCategory(t *testing.T) {
	rc := NewRateCurve(2, 1)
	rc.Add(5)
	if rc.Total() != 1 {
		t.Error("total should still advance")
	}
	f := rc.Final()
	if f[0] != 0 || f[1] != 0 {
		t.Error("invalid category should not be counted in any bin")
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}
