package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts occurrences in a fixed number of integer-labelled
// bins (e.g. injections per register id, Fig 9b).
type Histogram struct {
	Counts []int
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{Counts: make([]int, n)}
}

// Add increments bin i; out-of-range values are ignored (they
// correspond to events outside the tracked domain).
func (h *Histogram) Add(i int) {
	if i >= 0 && i < len(h.Counts) {
		h.Counts[i]++
	}
}

// Total returns the number of recorded events.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// ChiSquareUniform returns the chi-square statistic of the histogram
// against a uniform distribution. The Fig 9b uniformity check uses
// this: for k bins and n samples the statistic should be around k-1.
func (h *Histogram) ChiSquareUniform() float64 {
	n := h.Total()
	k := len(h.Counts)
	if n == 0 || k == 0 {
		return 0
	}
	expected := float64(n) / float64(k)
	var chi2 float64
	for _, c := range h.Counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// String renders the histogram as "bin:count" pairs for reports.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", i, c)
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF returns, for each threshold in thresholds, the fraction of xs
// that is <= that threshold. This generates the Fig 12 ED curves
// ("percentage of SDCs with ED less than or equal to X").
func CDF(xs []float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		out[i] = float64(idx) / float64(len(sorted))
	}
	return out
}

// RateCurve tracks how category rates evolve as more samples arrive —
// the Fig 9a "outcome rate vs number of injections" trend curves.
type RateCurve struct {
	categories int
	counts     []int
	total      int
	// Snapshots holds the rate vector after each checkpoint.
	Checkpoints []int
	Snapshots   [][]float64
	every       int
}

// NewRateCurve tracks `categories` outcome classes, snapshotting the
// rates every `every` samples.
func NewRateCurve(categories, every int) *RateCurve {
	if every < 1 {
		every = 1
	}
	return &RateCurve{
		categories: categories,
		counts:     make([]int, categories),
		every:      every,
	}
}

// Add records one sample of the given category.
func (rc *RateCurve) Add(category int) {
	if category >= 0 && category < rc.categories {
		rc.counts[category]++
	}
	rc.total++
	if rc.total%rc.every == 0 {
		rc.snapshot()
	}
}

func (rc *RateCurve) snapshot() {
	rates := make([]float64, rc.categories)
	for i, c := range rc.counts {
		rates[i] = float64(c) / float64(rc.total)
	}
	rc.Checkpoints = append(rc.Checkpoints, rc.total)
	rc.Snapshots = append(rc.Snapshots, rates)
}

// Final returns the rate vector over all samples seen so far.
func (rc *RateCurve) Final() []float64 {
	rates := make([]float64, rc.categories)
	if rc.total == 0 {
		return rates
	}
	for i, c := range rc.counts {
		rates[i] = float64(c) / float64(rc.total)
	}
	return rates
}

// Total returns the number of samples recorded.
func (rc *RateCurve) Total() int { return rc.total }

// Knee estimates the sample count after which every category's rate
// stays within tol (absolute) of its final value — the paper's "knee
// of the trend curves" used to size the campaign (§V-A: ~1000
// injections). It returns the first checkpoint from which all later
// snapshots are stable, or 0 if there are no snapshots.
func (rc *RateCurve) Knee(tol float64) int {
	if len(rc.Snapshots) == 0 {
		return 0
	}
	final := rc.Final()
	stableFrom := len(rc.Snapshots) - 1
	for i := len(rc.Snapshots) - 1; i >= 0; i-- {
		ok := true
		for c := 0; c < rc.categories; c++ {
			if math.Abs(rc.Snapshots[i][c]-final[c]) > tol {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		stableFrom = i
	}
	return rc.Checkpoints[stableFrom]
}
