// Package stats provides the small statistical toolkit shared by the
// reproduction: a deterministic splitmix64 RNG (so every experiment in
// the paper reproduction is replayable from a seed), histograms, CDF
// summaries, running outcome-rate curves and knee detection for the
// error-injection coverage study (Fig 9).
package stats

import "math"

// RNG is a deterministic splitmix64 pseudo-random generator. The zero
// value is a valid generator seeded with 0. It is intentionally tiny
// and allocation-free so RANSAC and the fault-injection campaign can
// embed one per trial without sharing state across goroutines.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// Box-Muller method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new independent generator derived from this one.
// Useful for handing each parallel fault-injection trial its own
// stream without coordination.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Hash64 mixes an arbitrary 64-bit value through the splitmix64
// finalizer. The fault package uses it to attribute tap sites to
// register ids deterministically.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
