package stats

import (
	"math"
	"reflect"
	"testing"
)

// Edge cases for Percentile: empty input, single element, p outside
// [0, 100], interpolation between elements, and input immutability.
func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil, 50) = %v, want 0", got)
	}
	if got := Percentile([]float64{}, 99); got != 0 {
		t.Errorf("Percentile(empty, 99) = %v, want 0", got)
	}

	single := []float64{7.5}
	for _, p := range []float64{-10, 0, 13, 50, 100, 250} {
		if got := Percentile(single, p); got != 7.5 {
			t.Errorf("Percentile([7.5], %v) = %v, want 7.5", p, got)
		}
	}

	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("p<=0 should clamp to min: got %v, want 1", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p=0 should return min: got %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p=100 should return max: got %v, want 4", got)
	}
	if got := Percentile(xs, 150); got != 4 {
		t.Errorf("p>=100 should clamp to max: got %v, want 4", got)
	}
	// rank = 0.5*3 = 1.5 over sorted [1 2 3 4] → 2.5.
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Percentile(%v, 50) = %v, want 2.5", xs, got)
	}
	// rank = 0.25*3 = 0.75 → 1*0.25 + 2*0.75 = 1.75.
	if got := Percentile(xs, 25); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("Percentile(%v, 25) = %v, want 1.75", xs, got)
	}

	if !reflect.DeepEqual(xs, []float64{4, 1, 3, 2}) {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

// Edge cases for CDF: empty samples (all-zero output of the right
// length), empty thresholds, duplicate thresholds and duplicate
// samples, thresholds below/at/above the data range, and the <=
// (inclusive) convention at exact sample values.
func TestCDFEdgeCases(t *testing.T) {
	if got := CDF(nil, []float64{1, 2, 3}); !reflect.DeepEqual(got, []float64{0, 0, 0}) {
		t.Errorf("CDF(nil, _) = %v, want zeros", got)
	}
	if got := CDF([]float64{1, 2}, nil); len(got) != 0 {
		t.Errorf("CDF(_, nil) = %v, want empty", got)
	}

	xs := []float64{1, 2, 2, 3}
	thresholds := []float64{0, 1, 2, 2, 2.5, 3, 4}
	want := []float64{0, 0.25, 0.75, 0.75, 0.75, 1, 1}
	got := CDF(xs, thresholds)
	if len(got) != len(want) {
		t.Fatalf("CDF returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CDF(%v)[%d] (t=%v) = %v, want %v", xs, i, thresholds[i], got[i], want[i])
		}
	}

	// Single sample: step function at the sample value.
	one := CDF([]float64{5}, []float64{4.999, 5, 5.001})
	if !reflect.DeepEqual(one, []float64{0, 1, 1}) {
		t.Errorf("CDF single sample = %v, want [0 1 1]", one)
	}

	if !reflect.DeepEqual(xs, []float64{1, 2, 2, 3}) {
		t.Errorf("CDF mutated its input: %v", xs)
	}
}
