package stats

import (
	"math"
	"testing"
)

// Published golden values. Wilson rows are the worked examples from
// Newcombe, "Two-sided confidence intervals for the single proportion"
// (Statistics in Medicine 17, 1998, Table I); Clopper–Pearson rows are
// the standard exact values (k=0 and k=n rows follow from the closed
// form 1-(alpha/2)^(1/n)).
func TestWilsonIntervalGolden(t *testing.T) {
	cases := []struct {
		k, n   int
		conf   float64
		lo, hi float64
	}{
		{81, 263, 0.95, 0.2553, 0.3662},
		{15, 148, 0.95, 0.0624, 0.1605},
		{0, 20, 0.95, 0.0000, 0.1611},
		{1, 29, 0.95, 0.0061, 0.1718},
	}
	for _, c := range cases {
		lo, hi := WilsonInterval(c.k, c.n, c.conf)
		if math.Abs(lo-c.lo) > 5e-5 || math.Abs(hi-c.hi) > 5e-5 {
			t.Errorf("Wilson(%d/%d, %.2f) = (%.4f, %.4f), want (%.4f, %.4f)",
				c.k, c.n, c.conf, lo, hi, c.lo, c.hi)
		}
	}
}

// The Wilson bounds are the roots of (p-hat - p)^2 = z^2 p(1-p)/n;
// verify both endpoints satisfy the defining quadratic directly.
func TestWilsonIntervalSelfConsistent(t *testing.T) {
	z := NormalQuantile(0.975)
	for _, c := range []struct{ k, n int }{{3, 17}, {50, 100}, {199, 200}} {
		lo, hi := WilsonInterval(c.k, c.n, 0.95)
		p := float64(c.k) / float64(c.n)
		for _, b := range []float64{lo, hi} {
			lhs := (p - b) * (p - b)
			rhs := z * z * b * (1 - b) / float64(c.n)
			if math.Abs(lhs-rhs) > 1e-9 {
				t.Errorf("Wilson(%d/%d) bound %.6f violates defining quadratic: %g vs %g",
					c.k, c.n, b, lhs, rhs)
			}
		}
	}
}

func TestWilsonIntervalDegenerate(t *testing.T) {
	if lo, hi := WilsonInterval(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("n=0 interval = (%v, %v), want (0, 1)", lo, hi)
	}
	lo, hi := WilsonInterval(0, 50, 0.95)
	if lo != 0 {
		t.Errorf("k=0 lower = %v, want exactly 0", lo)
	}
	if hi <= 0 || hi >= 0.2 {
		t.Errorf("k=0/n=50 upper = %v, want small positive", hi)
	}
	lo, hi = WilsonInterval(50, 50, 0.95)
	if hi != 1 {
		t.Errorf("k=n upper = %v, want exactly 1", hi)
	}
	if lo >= 1 || lo <= 0.8 {
		t.Errorf("k=n=50 lower = %v, want near 1", lo)
	}
}

func TestClopperPearsonGolden(t *testing.T) {
	cases := []struct {
		k, n   int
		conf   float64
		lo, hi float64
	}{
		// 1-(0.025)^(1/20) and its mirror.
		{0, 20, 0.95, 0.0000, 0.1684},
		{20, 20, 0.95, 0.8316, 1.0000},
		// Standard exact 95% interval for 5/10.
		{5, 10, 0.95, 0.1871, 0.8129},
		// Newcombe Table I example (a), exact method.
		{81, 263, 0.95, 0.2527, 0.3676},
	}
	for _, c := range cases {
		lo, hi := ClopperPearson(c.k, c.n, c.conf)
		if math.Abs(lo-c.lo) > 5e-5 || math.Abs(hi-c.hi) > 5e-5 {
			t.Errorf("ClopperPearson(%d/%d, %.2f) = (%.4f, %.4f), want (%.4f, %.4f)",
				c.k, c.n, c.conf, lo, hi, c.lo, c.hi)
		}
	}
}

// binomTail computes P(X >= k) for X ~ Binomial(n, p) directly — an
// independent check that the Beta-quantile inversion actually inverts
// the binomial tails the Clopper–Pearson interval is defined by.
func binomTail(k, n int, p float64) float64 {
	sum := 0.0
	for i := k; i <= n; i++ {
		lg := func(x int) float64 { v, _ := math.Lgamma(float64(x + 1)); return v }
		logC := lg(n) - lg(i) - lg(n-i)
		sum += math.Exp(logC + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
	}
	return sum
}

func TestClopperPearsonInvertsBinomialTails(t *testing.T) {
	const alpha = 0.05
	for _, c := range []struct{ k, n int }{{5, 10}, {3, 50}, {81, 263}} {
		lo, hi := ClopperPearson(c.k, c.n, 1-alpha)
		if got := binomTail(c.k, c.n, lo); math.Abs(got-alpha/2) > 1e-6 {
			t.Errorf("P(X>=%d | n=%d, p=lo) = %g, want %g", c.k, c.n, got, alpha/2)
		}
		// Upper bound: P(X <= k | p = hi) = alpha/2.
		if got := 1 - binomTail(c.k+1, c.n, hi); math.Abs(got-alpha/2) > 1e-6 {
			t.Errorf("P(X<=%d | n=%d, p=hi) = %g, want %g", c.k, c.n, got, alpha/2)
		}
	}
}

// Clopper–Pearson is conservative: its interval is never narrower
// than Wilson's for any case the planner will see (the endpoints can
// shift slightly, so compare widths, not containment).
func TestClopperPearsonNoNarrowerThanWilson(t *testing.T) {
	for _, c := range []struct{ k, n int }{{0, 20}, {1, 29}, {5, 10}, {81, 263}, {199, 200}} {
		wlo, whi := WilsonInterval(c.k, c.n, 0.95)
		clo, chi := ClopperPearson(c.k, c.n, 0.95)
		if chi-clo < whi-wlo-1e-9 {
			t.Errorf("CP(%d/%d) width %.6f narrower than Wilson width %.6f",
				c.k, c.n, chi-clo, whi-wlo)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.5, 0},
		{0.025, -1.959963984540054},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %.12f, want %.12f", c.p, got, c.z)
		}
	}
}

func TestWilsonFixedN(t *testing.T) {
	// Sanity anchor: the classic worst-case Wald n for ±5% at 95% is
	// 385; Wilson's is within a couple of trials of that.
	n := WilsonFixedN(0.05, 0.95)
	if n < 380 || n > 390 {
		t.Errorf("WilsonFixedN(0.05, 0.95) = %d, want ~385", n)
	}
	if got := worstWilsonHalf(n, 0.95); got > 0.05 {
		t.Errorf("half-width at n=%d is %g > 0.05", n, got)
	}
	if got := worstWilsonHalf(n-1, 0.95); got <= 0.05 {
		t.Errorf("n=%d is not minimal: half-width at n-1 is %g", n, got)
	}
	if n := WilsonFixedN(0.6, 0.95); n != 1 {
		t.Errorf("degenerate half-width target: n = %d, want 1", n)
	}
}
