package quality

import (
	"math"
	"testing"
	"testing/quick"

	"vsresil/internal/imgproc"
)

func flat(w, h int, v uint8) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	g.Fill(v)
	return g
}

func textured(w, h int) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8(40+((x/4+y/4)%2)*150))
		}
	}
	return g
}

func TestIdenticalImagesZeroNorm(t *testing.T) {
	g := textured(32, 32)
	if n := RelativeL2Norm(g, g.Clone(), DefaultConfig()); n != 0 {
		t.Errorf("identical images norm = %v", n)
	}
}

func TestSmallDifferencesBelowThresholdIgnored(t *testing.T) {
	g := flat(16, 16, 100)
	f := flat(16, 16, 150) // diff 50 < 128: ignored by the threshold
	cfg := Config{}        // no corrections, isolate the threshold behavior
	if n := RelativeL2Norm(g, f, cfg); n != 0 {
		t.Errorf("sub-threshold diff norm = %v, want 0", n)
	}
}

func TestLargeDifferencesCounted(t *testing.T) {
	g := flat(16, 16, 10)
	f := flat(16, 16, 250) // diff 240 > 128 everywhere
	cfg := Config{}
	n := RelativeL2Norm(g, f, cfg)
	// ||diff|| = 240*sqrt(256), ||g|| = 10*sqrt(256) -> 2400%.
	if math.Abs(n-2400) > 1 {
		t.Errorf("norm = %v, want ~2400", n)
	}
}

func TestSinglePixelCorruption(t *testing.T) {
	g := textured(64, 64)
	f := g.Clone()
	f.Set(30, 30, 255) // on a dark cell: diff 215
	cfg := Config{}
	n := RelativeL2Norm(g, f, cfg)
	if n <= 0 {
		t.Error("corruption not detected")
	}
	if n > 5 {
		t.Errorf("single pixel norm = %v, unexpectedly large", n)
	}
}

func TestMissingFaultyOutputIsEgregious(t *testing.T) {
	g := textured(8, 8)
	if n := RelativeL2Norm(g, nil, DefaultConfig()); n <= EgregiousLimit {
		t.Errorf("missing output norm = %v", n)
	}
	if n := RelativeL2Norm(g, imgproc.NewGray(0, 0), DefaultConfig()); n <= EgregiousLimit {
		t.Errorf("empty output norm = %v", n)
	}
}

func TestEmptyGoldenZero(t *testing.T) {
	if n := RelativeL2Norm(nil, textured(4, 4), DefaultConfig()); n != 0 {
		t.Errorf("nil golden norm = %v", n)
	}
}

func TestAlignmentRemovesTranslation(t *testing.T) {
	// A 2px shifted copy: without alignment the checker pattern
	// misregisters (large norm); with alignment the norm collapses.
	g := textured(64, 64)
	f := imgproc.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f.Set(x, y, g.AtClamped(x-2, y))
		}
	}
	noAlign := RelativeL2Norm(g, f, Config{})
	aligned := RelativeL2Norm(g, f, Config{AlignSearch: 4})
	if aligned >= noAlign {
		t.Errorf("alignment did not reduce norm: %v -> %v", noAlign, aligned)
	}
	if aligned > 5 {
		t.Errorf("aligned norm still %v", aligned)
	}
}

func TestLightingNormalization(t *testing.T) {
	// A dark checker (10/100) brightened by 2.5x (25/250): the bright
	// cells differ by 150 > 128 without correction; normalizing the
	// faulty mean back to the golden mean removes the difference.
	g := imgproc.NewGray(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			g.Set(x, y, uint8(10+((x/4+y/4)%2)*90))
		}
	}
	f := imgproc.NewGray(32, 32)
	for i, v := range g.Pix {
		f.Pix[i] = imgproc.SaturateUint8(float64(v) * 2.5)
	}
	raw := RelativeL2Norm(g, f, Config{})
	corrected := RelativeL2Norm(g, f, Config{NormalizeLighting: true})
	if raw <= 0 {
		t.Fatalf("fixture broken: raw norm %v", raw)
	}
	if corrected >= raw {
		t.Errorf("lighting normalization did not reduce norm: %v -> %v", raw, corrected)
	}
}

func TestDifferentSizesComparable(t *testing.T) {
	g := textured(32, 32)
	f := textured(40, 28)
	// Must not panic; the union support pads with zeros which count as
	// large differences where the golden is bright.
	n := RelativeL2Norm(g, f, Config{})
	if n <= 0 {
		t.Errorf("size-mismatched images norm = %v, want > 0", n)
	}
}

func TestClassify(t *testing.T) {
	g := textured(32, 32)
	ed := Classify(g, g.Clone(), DefaultConfig())
	if ed.Degree != 0 || ed.Egregious || ed.Norm != 0 {
		t.Errorf("identical classify = %+v", ed)
	}
	// A blown-out white output against a dark golden: relative norm
	// far above 100% -> egregious.
	dark := flat(32, 32, 30)
	white := flat(32, 32, 255)
	ed = Classify(dark, white, Config{})
	if !ed.Egregious {
		t.Errorf("blown-out image not egregious: %+v", ed)
	}
}

func TestClassifyFloorSemantics(t *testing.T) {
	// The paper: relative_l2_norm of 10.25%% -> ED 10.
	g := flat(100, 1, 100)
	// Build a faulty image whose norm lands strictly between 10 and 11.
	f := g.Clone()
	// One pixel with diff 250 over ||g|| = 100*sqrt(100) = 1000:
	// norm = 250/1000*100 = 25 -> too big; use diff 105? < 128 ignored.
	// Use 2 pixels of diff 150: sqrt(2*150^2)=212 -> 21.2%.
	f.Pix[0] = 250
	ed := Classify(g, f, Config{})
	if ed.Egregious {
		t.Fatalf("unexpected egregious: %+v", ed)
	}
	if ed.Degree != int(math.Floor(ed.Norm)) {
		t.Errorf("ED %d != floor(%v)", ed.Degree, ed.Norm)
	}
}

func TestNewCurve(t *testing.T) {
	eds := []ED{
		{Degree: 0}, {Degree: 2}, {Degree: 2}, {Degree: 5},
		{Egregious: true},
	}
	c := NewCurve(eds, 10)
	if c.Total != 5 || c.Egregious != 1 {
		t.Errorf("curve totals: %+v", c)
	}
	if got := c.FractionAtOrBelow(0); got != 0.2 {
		t.Errorf("F(0) = %v", got)
	}
	if got := c.FractionAtOrBelow(2); got != 0.6 {
		t.Errorf("F(2) = %v", got)
	}
	if got := c.FractionAtOrBelow(10); got != 0.8 {
		t.Errorf("F(10) = %v, egregious must not be counted", got)
	}
	if got := c.FractionAtOrBelow(-1); got != 0 {
		t.Errorf("F(-1) = %v", got)
	}
	if got := c.FractionAtOrBelow(99); got != 0.8 {
		t.Errorf("F(99) clamps = %v", got)
	}
}

func TestNewCurveEmpty(t *testing.T) {
	c := NewCurve(nil, 5)
	if c.Total != 0 || c.FractionAtOrBelow(5) != 0 {
		t.Errorf("empty curve: %+v", c)
	}
}

func TestCurveDegreeAboveMaxClamped(t *testing.T) {
	eds := []ED{{Degree: 50}}
	c := NewCurve(eds, 10)
	if got := c.FractionAtOrBelow(10); got != 1 {
		t.Errorf("clamped degree fraction = %v", got)
	}
	if got := c.FractionAtOrBelow(9); got != 0 {
		t.Errorf("below clamp fraction = %v", got)
	}
}

// Property: the metric is zero iff thresholded differences are absent,
// and always non-negative and monotone under growing corruption.
func TestPropertyNormMonotoneInCorruption(t *testing.T) {
	g := textured(24, 24)
	f := func(k uint8) bool {
		n := int(k) % 64
		f1 := g.Clone()
		f2 := g.Clone()
		// f2 corrupts a superset of f1's pixels.
		for i := 0; i < n; i++ {
			f1.Pix[i*7%len(f1.Pix)] = 255
		}
		for i := 0; i < 2*n; i++ {
			f2.Pix[i*7%len(f2.Pix)] = 255
		}
		cfg := Config{}
		n1 := RelativeL2Norm(g, f1, cfg)
		n2 := RelativeL2Norm(g, f2, cfg)
		return n1 >= 0 && n2 >= n1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRelativeL2Norm(b *testing.B) {
	g := textured(320, 240)
	f := g.Clone()
	f.Set(10, 10, 255)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelativeL2Norm(g, f, cfg)
	}
}
