package quality

import (
	"testing"

	"vsresil/internal/imgproc"
)

func TestPlacePairAlignsOrigins(t *testing.T) {
	g := imgproc.NewGray(4, 4)
	g.Fill(100)
	f := imgproc.NewGray(4, 4)
	f.Fill(200)
	// Same content placed at offset origins: union support is 8x4.
	gp, fp := PlacePair(g, f, 0, 0, 4, 0)
	if gp.W != 8 || fp.W != 8 || gp.H != 4 || fp.H != 4 {
		t.Fatalf("placed sizes %dx%d / %dx%d", gp.W, gp.H, fp.W, fp.H)
	}
	if gp.At(0, 0) != 100 || gp.At(7, 0) != 0 {
		t.Error("golden placement wrong")
	}
	if fp.At(0, 0) != 0 || fp.At(7, 0) != 200 {
		t.Error("faulty placement wrong")
	}
}

func TestClassifyPlacedRemovesOriginShift(t *testing.T) {
	// Identical content, but the faulty canvas's origin differs by 20
	// px (more than any alignment search could recover). Placed
	// comparison must report zero corruption.
	g := imgproc.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = uint8(i % 251)
	}
	f := g.Clone()
	cfg := Config{} // no residual alignment
	naive := Classify(g, f, cfg)
	if naive.Degree != 0 {
		t.Fatalf("sanity: identical images should classify clean, got %+v", naive)
	}
	placed := ClassifyPlaced(g, f, -20, 13, -20, 13, cfg)
	if placed.Degree != 0 || placed.Egregious {
		t.Errorf("shared-origin placement should be clean: %+v", placed)
	}
}

func TestClassifyPlacedChargesCoverageLoss(t *testing.T) {
	// The faulty panorama genuinely lost half its coverage: placed
	// comparison must still report corruption.
	g := imgproc.NewGray(32, 32)
	g.Fill(200)
	f := imgproc.NewGray(16, 32)
	f.Fill(200)
	ed := ClassifyPlaced(g, f, 0, 0, 0, 0, Config{})
	if ed.Degree == 0 && !ed.Egregious {
		t.Errorf("coverage loss not charged: %+v", ed)
	}
}

func TestClassifyPlacedNilFaulty(t *testing.T) {
	g := imgproc.NewGray(8, 8)
	g.Fill(50)
	ed := ClassifyPlaced(g, nil, 0, 0, 0, 0, DefaultConfig())
	if !ed.Egregious {
		t.Errorf("missing output should be egregious: %+v", ed)
	}
}

func TestClassifyPlacedDifferentOrigins(t *testing.T) {
	// Faulty content identical but shifted in panorama coordinates by
	// its recorded origin — the origins encode the shift, so placement
	// realigns it perfectly.
	g := imgproc.NewGray(16, 16)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 3)
	}
	f := g.Clone()
	ed := ClassifyPlaced(g, f, 5, -2, 5, -2, Config{})
	if ed.Degree != 0 {
		t.Errorf("identical panoramas at same origin: %+v", ed)
	}
}
