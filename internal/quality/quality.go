// Package quality implements the paper's SDC quality metric (§V-D):
// given a golden output image and a faulty output image, apply global
// corrective transformations (alignment and lighting), take the pixel
// difference, keep only differences above half the 8-bit range
// (pixel_128_diff_img), and report the relative L2 norm in percent:
//
//	relative_l2_norm = ||pixel_128_diff_img||2 / ||g_img_tr||2 * 100
//
// Each SDC is then assigned an integer Egregiousness Degree (ED) —
// the floor of its relative_l2_norm — and SDCs above 100% are
// classified as egregious (they must be protected and get no ED).
package quality

import (
	"math"
	"sort"

	"vsresil/internal/imgproc"
)

// DiffThreshold is the paper's half-range pixel difference cutoff.
const DiffThreshold = 128

// EgregiousLimit is the relative_l2_norm above which an SDC is
// "automatically categorized as an egregious SDC that must be
// protected" (§V-D).
const EgregiousLimit = 100.0

// Config tunes the corrective transformations applied before
// comparison.
type Config struct {
	// AlignSearch is the translation search radius (pixels) used to
	// remove global offsets between the two images (the paper removes
	// perspective/camera-angle differences before differencing); 0
	// disables alignment.
	AlignSearch int
	// NormalizeLighting scales the faulty image to the golden image's
	// mean intensity before differencing.
	NormalizeLighting bool
}

// DefaultConfig mirrors the paper's corrective step.
func DefaultConfig() Config {
	return Config{AlignSearch: 4, NormalizeLighting: true}
}

// RelativeL2Norm computes the paper's quality metric between a golden
// and a faulty output image, in percent. Larger is worse; identical
// images yield 0.
func RelativeL2Norm(golden, faulty *imgproc.Gray, cfg Config) float64 {
	if golden == nil || len(golden.Pix) == 0 {
		return 0
	}
	if faulty == nil || len(faulty.Pix) == 0 {
		return EgregiousLimit * 2 // missing output: maximally corrupt
	}

	gT, fT, mask := correctiveTransform(golden, faulty, cfg)

	// pixel_diff_img, thresholded at > DiffThreshold, restricted to
	// the support where both (aligned) images have data — the border
	// introduced by the corrective shift carries no content and must
	// not count as corruption.
	var diffSq, goldSq float64
	anyOverlap := false
	w, h := gT.W, gT.H
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if !mask[i] {
				continue
			}
			anyOverlap = true
			d := int(gT.Pix[i]) - int(fT.Pix[i])
			if d < 0 {
				d = -d
			}
			if d > DiffThreshold {
				diffSq += float64(d) * float64(d)
			}
			goldSq += float64(gT.Pix[i]) * float64(gT.Pix[i])
		}
	}
	if !anyOverlap {
		return EgregiousLimit * 2 // disjoint outputs: maximally corrupt
	}
	if goldSq == 0 {
		if diffSq == 0 {
			return 0
		}
		return EgregiousLimit * 2
	}
	return math.Sqrt(diffSq) / math.Sqrt(goldSq) * 100
}

// correctiveTransform implements the paper's global corrections: the
// images are placed on a common support (union of sizes), the faulty
// image is shifted by the translation that best aligns it with the
// golden image, and its lighting is normalized to the golden mean.
// The returned images have identical dimensions.
//
// The boolean mask marks pixels that participate in the comparison.
// Pixels are excluded only in the thin band (at most the alignment
// search radius wide) that the corrective shift itself slides out of
// the faulty support: that band carries no information about the
// fault. Pixels missing because the faulty output is genuinely
// smaller than that band still count as corruption.
func correctiveTransform(golden, faulty *imgproc.Gray, cfg Config) (*imgproc.Gray, *imgproc.Gray, []bool) {
	f := faulty
	if cfg.NormalizeLighting {
		f = normalizeLighting(golden, faulty)
	}
	dx, dy := 0, 0
	if cfg.AlignSearch > 0 {
		dx, dy = bestShift(golden, f, cfg.AlignSearch)
	}
	w := maxInt(golden.W, f.W)
	h := maxInt(golden.H, f.H)
	gT := embed(golden, w, h, 0, 0)
	fT := embed(f, w, h, dx, dy)

	mask := make([]bool, w*h)
	// Faulty support after the shift, in output coordinates.
	sx0, sx1 := -dx, f.W-dx
	sy0, sy1 := -dy, f.H-dy
	r := cfg.AlignSearch
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			inSupport := x >= sx0 && x < sx1 && y >= sy0 && y < sy1
			if inSupport {
				mask[y*w+x] = true
				continue
			}
			// Outside the shifted support: exclude only if the pixel
			// is within the search radius of it (the slide band).
			nearX := x >= sx0-r && x < sx1+r
			nearY := y >= sy0-r && y < sy1+r
			if nearX && nearY {
				continue // slide band: excluded
			}
			mask[y*w+x] = true
		}
	}
	return gT, fT, mask
}

// normalizeLighting scales the faulty image so its mean matches the
// golden image's mean.
func normalizeLighting(golden, faulty *imgproc.Gray) *imgproc.Gray {
	gm := golden.Mean()
	fm := faulty.Mean()
	if fm < 1e-9 {
		return faulty.Clone()
	}
	scale := gm / fm
	if math.Abs(scale-1) < 1e-3 {
		return faulty.Clone()
	}
	out := imgproc.NewGray(faulty.W, faulty.H)
	for i, v := range faulty.Pix {
		out.Pix[i] = imgproc.SaturateUint8(float64(v) * scale)
	}
	return out
}

// bestShift finds the integer translation of f (within +/- radius)
// minimizing the sum of absolute differences against g on a subsampled
// grid. Candidates are visited in order of increasing displacement so
// that on periodic content (where several shifts tie) the smallest
// shift — including zero for identical images — wins.
func bestShift(g, f *imgproc.Gray, radius int) (int, int) {
	type shift struct{ dx, dy int }
	candidates := make([]shift, 0, (2*radius+1)*(2*radius+1))
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			candidates = append(candidates, shift{dx, dy})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		di := candidates[i].dx*candidates[i].dx + candidates[i].dy*candidates[i].dy
		dj := candidates[j].dx*candidates[j].dx + candidates[j].dy*candidates[j].dy
		if di != dj {
			return di < dj
		}
		if candidates[i].dy != candidates[j].dy {
			return candidates[i].dy < candidates[j].dy
		}
		return candidates[i].dx < candidates[j].dx
	})
	bestDx, bestDy := 0, 0
	bestCost := math.Inf(1)
	step := maxInt(1, minInt(g.W, g.H)/64)
	for _, c := range candidates {
		dx, dy := c.dx, c.dy
		{
			var cost float64
			var n int
			for y := 0; y < g.H; y += step {
				fy := y + dy
				if fy < 0 || fy >= f.H {
					continue
				}
				for x := 0; x < g.W; x += step {
					fx := x + dx
					if fx < 0 || fx >= f.W {
						continue
					}
					d := int(g.Pix[y*g.W+x]) - int(f.Pix[fy*f.W+fx])
					if d < 0 {
						d = -d
					}
					cost += float64(d)
					n++
				}
			}
			if n == 0 {
				continue
			}
			cost /= float64(n)
			if cost < bestCost {
				bestCost = cost
				bestDx, bestDy = dx, dy
			}
		}
	}
	return bestDx, bestDy
}

// embed copies img into a w x h frame at offset (-dx, -dy), padding
// with zeros.
func embed(img *imgproc.Gray, w, h, dx, dy int) *imgproc.Gray {
	out := imgproc.NewGray(w, h)
	for y := 0; y < h; y++ {
		sy := y + dy
		if sy < 0 || sy >= img.H {
			continue
		}
		for x := 0; x < w; x++ {
			sx := x + dx
			if sx < 0 || sx >= img.W {
				continue
			}
			out.Pix[y*w+x] = img.Pix[sy*img.W+sx]
		}
	}
	return out
}

// ED holds the egregiousness classification of one SDC.
type ED struct {
	// Norm is the relative_l2_norm in percent.
	Norm float64
	// Degree is floor(Norm) when the SDC is assigned an ED.
	Degree int
	// Egregious marks SDCs with Norm > 100 that "must be protected"
	// and receive no ED.
	Egregious bool
}

// Classify computes the ED of a faulty output against a golden output.
func Classify(golden, faulty *imgproc.Gray, cfg Config) ED {
	norm := RelativeL2Norm(golden, faulty, cfg)
	if norm > EgregiousLimit {
		return ED{Norm: norm, Egregious: true}
	}
	return ED{Norm: norm, Degree: int(math.Floor(norm))}
}

// ClassifyPlaced classifies a faulty panorama against a golden
// panorama with each image placed at its own panorama-coordinate
// origin. Two runs of the pipeline can produce canvases with different
// extents (e.g. an approximation drops frames and the panorama
// shrinks); both panoramas are registered to the same first frame, so
// comparing them in panorama coordinates — rather than corner-aligned
// — removes the spurious shift while still charging genuine coverage
// loss.
func ClassifyPlaced(golden, faulty *imgproc.Gray, gx, gy, fx, fy int, cfg Config) ED {
	if golden == nil || len(golden.Pix) == 0 || faulty == nil || len(faulty.Pix) == 0 {
		return Classify(golden, faulty, cfg)
	}
	minX := minInt(gx, fx)
	minY := minInt(gy, fy)
	w := maxInt(gx+golden.W, fx+faulty.W) - minX
	h := maxInt(gy+golden.H, fy+faulty.H) - minY
	gPlaced := embed(golden, w, h, -(gx - minX), -(gy - minY))
	fPlaced := embed(faulty, w, h, -(fx - minX), -(fy - minY))
	return Classify(gPlaced, fPlaced, cfg)
}

// PlacePair embeds two panoramas on a common support using their
// panorama-coordinate origins, returning same-sized images suitable
// for pixel-wise comparison or difference visualization (Fig 13).
func PlacePair(g, f *imgproc.Gray, gx, gy, fx, fy int) (*imgproc.Gray, *imgproc.Gray) {
	minX := minInt(gx, fx)
	minY := minInt(gy, fy)
	w := maxInt(gx+g.W, fx+f.W) - minX
	h := maxInt(gy+g.H, fy+f.H) - minY
	return embed(g, w, h, -(gx - minX), -(gy - minY)),
		embed(f, w, h, -(fx - minX), -(fy - minY))
}

// Curve summarizes a set of EDs as the Fig 12 CDF: point k is the
// fraction of SDCs with an assigned ED <= k. Egregious SDCs never
// enter the curve, which is why the paper's curves can top out below
// 100%.
type Curve struct {
	// Fraction[k] is the cumulative fraction of all SDCs with ED <= k.
	Fraction []float64
	// Total is the number of SDCs (including egregious ones).
	Total int
	// Egregious is the number of unassigned (ED-less) SDCs.
	Egregious int
}

// NewCurve builds the cumulative ED distribution up to maxED.
func NewCurve(eds []ED, maxED int) Curve {
	c := Curve{Fraction: make([]float64, maxED+1), Total: len(eds)}
	if len(eds) == 0 {
		return c
	}
	counts := make([]int, maxED+1)
	for _, e := range eds {
		if e.Egregious {
			c.Egregious++
			continue
		}
		d := e.Degree
		if d > maxED {
			d = maxED
		}
		counts[d]++
	}
	cum := 0
	for k := 0; k <= maxED; k++ {
		cum += counts[k]
		c.Fraction[k] = float64(cum) / float64(len(eds))
	}
	return c
}

// FractionAtOrBelow returns the fraction of SDCs with ED <= k.
func (c Curve) FractionAtOrBelow(k int) float64 {
	if len(c.Fraction) == 0 {
		return 0
	}
	if k < 0 {
		return 0
	}
	if k >= len(c.Fraction) {
		k = len(c.Fraction) - 1
	}
	return c.Fraction[k]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
