// Package geom provides the 2-D geometry substrate for the video
// summarization pipeline: points, 3x3 projective transforms
// (homographies), 2x3 affine transforms, and the dense linear solvers
// needed to estimate them from point correspondences.
//
// All matrices are small and fixed-size; operations are allocation-free
// where possible so that the RANSAC inner loop stays cheap.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Pt is a 2-D point in image coordinates (x to the right, y down).
type Pt struct {
	X, Y float64
}

// Add returns p + q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Pt) Scale(s float64) Pt { return Pt{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Pt) Dist(q Pt) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Pt) Dist2(q Pt) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// ErrSingular is returned when a linear system or matrix inversion is
// degenerate (e.g. collinear correspondences in homography estimation).
var ErrSingular = errors.New("geom: singular system")

// Homography is a 3x3 projective transform stored row-major:
//
//	| m[0] m[1] m[2] |
//	| m[3] m[4] m[5] |
//	| m[6] m[7] m[8] |
//
// It maps source points to destination points in homogeneous
// coordinates. The zero value is NOT a valid transform; use Identity.
type Homography [9]float64

// Identity returns the identity homography.
func Identity() Homography {
	return Homography{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Translation returns a homography that translates by (tx, ty).
func Translation(tx, ty float64) Homography {
	return Homography{1, 0, tx, 0, 1, ty, 0, 0, 1}
}

// Scaling returns a homography that scales by (sx, sy) about the origin.
func Scaling(sx, sy float64) Homography {
	return Homography{sx, 0, 0, 0, sy, 0, 0, 0, 1}
}

// Rotation returns a homography rotating by theta radians about the origin.
func Rotation(theta float64) Homography {
	c, s := math.Cos(theta), math.Sin(theta)
	return Homography{c, -s, 0, s, c, 0, 0, 0, 1}
}

// RotationAbout returns a homography rotating by theta radians about (cx, cy).
func RotationAbout(theta, cx, cy float64) Homography {
	return Translation(cx, cy).Mul(Rotation(theta)).Mul(Translation(-cx, -cy))
}

// Apply maps the point p through h. If the point maps to the plane at
// infinity (w ~ 0) the result is saturated to very large finite
// coordinates rather than Inf, so downstream bounds arithmetic stays
// finite.
func (h Homography) Apply(p Pt) Pt {
	w := h[6]*p.X + h[7]*p.Y + h[8]
	if math.Abs(w) < 1e-12 {
		w = math.Copysign(1e-12, w)
		if w == 0 {
			w = 1e-12
		}
	}
	return Pt{
		X: (h[0]*p.X + h[1]*p.Y + h[2]) / w,
		Y: (h[3]*p.X + h[4]*p.Y + h[5]) / w,
	}
}

// Mul returns the composition h∘g, i.e. the transform that first
// applies g and then h.
func (h Homography) Mul(g Homography) Homography {
	var r Homography
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += h[3*i+k] * g[3*k+j]
			}
			r[3*i+j] = s
		}
	}
	return r
}

// Det returns the determinant of h.
func (h Homography) Det() float64 {
	return h[0]*(h[4]*h[8]-h[5]*h[7]) -
		h[1]*(h[3]*h[8]-h[5]*h[6]) +
		h[2]*(h[3]*h[7]-h[4]*h[6])
}

// Inverse returns the inverse transform. It returns ErrSingular when
// the determinant is (numerically) zero.
func (h Homography) Inverse() (Homography, error) {
	d := h.Det()
	if math.Abs(d) < 1e-14 {
		return Homography{}, ErrSingular
	}
	inv := 1 / d
	var r Homography
	r[0] = (h[4]*h[8] - h[5]*h[7]) * inv
	r[1] = (h[2]*h[7] - h[1]*h[8]) * inv
	r[2] = (h[1]*h[5] - h[2]*h[4]) * inv
	r[3] = (h[5]*h[6] - h[3]*h[8]) * inv
	r[4] = (h[0]*h[8] - h[2]*h[6]) * inv
	r[5] = (h[2]*h[3] - h[0]*h[5]) * inv
	r[6] = (h[3]*h[7] - h[4]*h[6]) * inv
	r[7] = (h[1]*h[6] - h[0]*h[7]) * inv
	r[8] = (h[0]*h[4] - h[1]*h[3]) * inv
	return r, nil
}

// Normalize scales h so that h[8] == 1 when possible. Homographies are
// equivalence classes under scaling; normalizing makes comparisons and
// conditioning checks meaningful.
func (h Homography) Normalize() Homography {
	if math.Abs(h[8]) < 1e-14 {
		return h
	}
	inv := 1 / h[8]
	var r Homography
	for i := range h {
		r[i] = h[i] * inv
	}
	return r
}

// IsFinite reports whether all entries of h are finite numbers.
func (h Homography) IsFinite() bool {
	for _, v := range h {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Reasonable reports whether h looks like a physically plausible frame
// transform for aerial video: finite, invertible, with bounded
// perspective terms and a scale factor within [minScale, maxScale].
// The stitching pipeline uses this to discard wildly wrong estimates
// (the paper's algorithm similarly discards frames whose transform
// cannot be computed reliably).
func (h Homography) Reasonable(minScale, maxScale float64) bool {
	if !h.IsFinite() {
		return false
	}
	n := h.Normalize()
	// Perspective terms of a near-planar aerial scene are tiny.
	if math.Abs(n[6]) > 0.01 || math.Abs(n[7]) > 0.01 {
		return false
	}
	// Scale from the upper-left 2x2 block.
	s := math.Sqrt(math.Abs(n[0]*n[4] - n[1]*n[3]))
	if math.IsNaN(s) || s < minScale || s > maxScale {
		return false
	}
	return true
}

// String implements fmt.Stringer for debugging output.
func (h Homography) String() string {
	return fmt.Sprintf("[%.4g %.4g %.4g; %.4g %.4g %.4g; %.4g %.4g %.4g]",
		h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7], h[8])
}

// Affine is a 2x3 affine transform stored row-major:
//
//	| a[0] a[1] a[2] |
//	| a[3] a[4] a[5] |
//
// mapping (x, y) -> (a0 x + a1 y + a2, a3 x + a4 y + a5).
type Affine [6]float64

// IdentityAffine returns the identity affine transform.
func IdentityAffine() Affine { return Affine{1, 0, 0, 0, 1, 0} }

// Apply maps p through a.
func (a Affine) Apply(p Pt) Pt {
	return Pt{
		X: a[0]*p.X + a[1]*p.Y + a[2],
		Y: a[3]*p.X + a[4]*p.Y + a[5],
	}
}

// Homography lifts the affine transform to a full projective transform.
func (a Affine) Homography() Homography {
	return Homography{a[0], a[1], a[2], a[3], a[4], a[5], 0, 0, 1}
}

// IsFinite reports whether all entries of a are finite.
func (a Affine) IsFinite() bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
