package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func homographyApproxEq(a, b Homography, tol float64) bool {
	an, bn := a.Normalize(), b.Normalize()
	for i := range an {
		if !approxEq(an[i], bn[i], tol) {
			return false
		}
	}
	return true
}

func TestIdentityApply(t *testing.T) {
	h := Identity()
	pts := []Pt{{0, 0}, {1, 2}, {-3.5, 7.25}, {1e4, -1e4}}
	for _, p := range pts {
		if got := h.Apply(p); got != p {
			t.Errorf("Identity.Apply(%v) = %v", p, got)
		}
	}
}

func TestTranslationApply(t *testing.T) {
	h := Translation(3, -4)
	got := h.Apply(Pt{1, 1})
	want := Pt{4, -3}
	if got != want {
		t.Errorf("Translation.Apply = %v, want %v", got, want)
	}
}

func TestRotationApply(t *testing.T) {
	h := Rotation(math.Pi / 2)
	got := h.Apply(Pt{1, 0})
	if !approxEq(got.X, 0, 1e-12) || !approxEq(got.Y, 1, 1e-12) {
		t.Errorf("Rotation(90deg).Apply(1,0) = %v, want (0,1)", got)
	}
}

func TestRotationAboutFixedPoint(t *testing.T) {
	c := Pt{5, 7}
	h := RotationAbout(1.234, c.X, c.Y)
	got := h.Apply(c)
	if !approxEq(got.X, c.X, 1e-9) || !approxEq(got.Y, c.Y, 1e-9) {
		t.Errorf("rotation about %v moved the center to %v", c, got)
	}
}

func TestMulComposition(t *testing.T) {
	g := Translation(2, 3)
	h := Scaling(2, 2)
	// (h∘g)(p) must equal h(g(p)).
	p := Pt{1, 1}
	composed := h.Mul(g).Apply(p)
	sequential := h.Apply(g.Apply(p))
	if !approxEq(composed.X, sequential.X, 1e-12) || !approxEq(composed.Y, sequential.Y, 1e-12) {
		t.Errorf("composition mismatch: %v vs %v", composed, sequential)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	h := Translation(10, -5).Mul(Rotation(0.3)).Mul(Scaling(1.5, 0.8))
	inv, err := h.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod := h.Mul(inv)
	if !homographyApproxEq(prod, Identity(), 1e-9) {
		t.Errorf("h * h^-1 = %v, want identity", prod)
	}
}

func TestInverseSingular(t *testing.T) {
	var h Homography // all zeros: singular
	if _, err := h.Inverse(); err == nil {
		t.Error("Inverse of zero matrix should fail")
	}
}

func TestApplyNearInfinity(t *testing.T) {
	// A transform whose denominator vanishes at (1, 0) must still
	// return finite coordinates.
	h := Homography{1, 0, 0, 0, 1, 0, -1, 0, 1}
	got := h.Apply(Pt{1, 0})
	if math.IsInf(got.X, 0) || math.IsNaN(got.X) {
		t.Errorf("Apply at horizon produced %v", got)
	}
}

func TestEstimateHomographyExact(t *testing.T) {
	want := Translation(12, -7).Mul(Rotation(0.25)).Mul(Scaling(1.3, 1.3))
	src := []Pt{{0, 0}, {100, 0}, {100, 80}, {0, 80}}
	dst := make([]Pt, len(src))
	for i, p := range src {
		dst[i] = want.Apply(p)
	}
	got, err := EstimateHomography(src, dst)
	if err != nil {
		t.Fatalf("EstimateHomography: %v", err)
	}
	if !homographyApproxEq(got, want, 1e-6) {
		t.Errorf("EstimateHomography = %v, want %v", got, want)
	}
}

func TestEstimateHomographyOverdetermined(t *testing.T) {
	want := Homography{1.02, 0.05, 14, -0.03, 0.98, -22, 1e-5, -2e-5, 1}
	rng := rand.New(rand.NewSource(7))
	var src, dst []Pt
	for i := 0; i < 40; i++ {
		p := Pt{rng.Float64() * 320, rng.Float64() * 240}
		src = append(src, p)
		dst = append(dst, want.Apply(p))
	}
	got, err := EstimateHomography(src, dst)
	if err != nil {
		t.Fatalf("EstimateHomography: %v", err)
	}
	if !homographyApproxEq(got, want, 1e-5) {
		t.Errorf("EstimateHomography = %v, want %v", got, want)
	}
}

func TestEstimateHomographyDegenerate(t *testing.T) {
	// All four source points collinear: the DLT system is singular.
	src := []Pt{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	dst := []Pt{{0, 0}, {2, 2}, {4, 4}, {6, 6}}
	if _, err := EstimateHomography(src, dst); err == nil {
		t.Error("expected error for collinear points")
	}
}

func TestEstimateHomographyTooFew(t *testing.T) {
	src := []Pt{{0, 0}, {1, 0}, {0, 1}}
	if _, err := EstimateHomography(src, src); err == nil {
		t.Error("expected error for 3 correspondences")
	}
}

func TestEstimateAffineExact(t *testing.T) {
	want := Affine{1.1, -0.2, 5, 0.3, 0.9, -8}
	src := []Pt{{0, 0}, {50, 10}, {20, 70}}
	dst := make([]Pt, len(src))
	for i, p := range src {
		dst[i] = want.Apply(p)
	}
	got, err := EstimateAffine(src, dst)
	if err != nil {
		t.Fatalf("EstimateAffine: %v", err)
	}
	for i := range want {
		if !approxEq(got[i], want[i], 1e-8) {
			t.Errorf("EstimateAffine[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEstimateAffineCollinear(t *testing.T) {
	src := []Pt{{0, 0}, {1, 1}, {2, 2}}
	if _, err := EstimateAffine(src, src); err == nil {
		t.Error("expected error for collinear affine points")
	}
}

func TestAffineHomographyLift(t *testing.T) {
	a := Affine{1.5, 0.1, -3, -0.2, 0.8, 12}
	h := a.Homography()
	p := Pt{13, -4}
	pa, ph := a.Apply(p), h.Apply(p)
	if !approxEq(pa.X, ph.X, 1e-12) || !approxEq(pa.Y, ph.Y, 1e-12) {
		t.Errorf("affine lift mismatch: %v vs %v", pa, ph)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
	a := []float64{2, 1, 1, -1}
	b := []float64{5, 1}
	if err := SolveLinear(a, b, 2); err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !approxEq(b[0], 2, 1e-12) || !approxEq(b[1], 1, 1e-12) {
		t.Errorf("solution = %v, want [2 1]", b)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{3, 6}
	if err := SolveLinear(a, b, 2); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{3, 7}
	if err := SolveLinear(a, b, 2); err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !approxEq(b[0], 7, 1e-12) || !approxEq(b[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [7 3]", b)
	}
}

func TestSolveLinearBadShape(t *testing.T) {
	if err := SolveLinear([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Error("expected error for mismatched shapes")
	}
}

func TestCollinear(t *testing.T) {
	if !Collinear(Pt{0, 0}, Pt{1, 1}, Pt{5, 5}) {
		t.Error("points on y=x should be collinear")
	}
	if Collinear(Pt{0, 0}, Pt{1, 0}, Pt{0, 1}) {
		t.Error("triangle corners are not collinear")
	}
}

func TestReasonable(t *testing.T) {
	cases := []struct {
		name string
		h    Homography
		want bool
	}{
		{"identity", Identity(), true},
		{"small rotation", Rotation(0.1), true},
		{"huge scale", Scaling(100, 100), false},
		{"tiny scale", Scaling(0.001, 0.001), false},
		{"strong perspective", Homography{1, 0, 0, 0, 1, 0, 0.5, 0, 1}, false},
		{"nan", Homography{math.NaN(), 0, 0, 0, 1, 0, 0, 0, 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Reasonable(0.3, 3); got != tc.want {
				t.Errorf("Reasonable = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPtOps(t *testing.T) {
	p, q := Pt{3, 4}, Pt{1, 1}
	if got := p.Add(q); got != (Pt{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Pt{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Pt{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(Pt{0, 0}); !approxEq(got, 5, 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Dist2(Pt{0, 0}); !approxEq(got, 25, 1e-12) {
		t.Errorf("Dist2 = %v", got)
	}
}

// Property: estimating a homography from points generated by a known
// valid transform recovers that transform.
func TestPropertyEstimateRecovers(t *testing.T) {
	f := func(txRaw, tyRaw, thetaRaw, scaleRaw uint16) bool {
		tx := float64(txRaw)/655.36 - 50 // [-50, 50)
		ty := float64(tyRaw)/655.36 - 50 // [-50, 50)
		th := float64(thetaRaw) / 65536 * 0.8
		sc := 0.5 + float64(scaleRaw)/65536*1.5 // [0.5, 2)
		want := Translation(tx, ty).Mul(Rotation(th)).Mul(Scaling(sc, sc))
		src := []Pt{{0, 0}, {200, 0}, {200, 150}, {0, 150}, {100, 75}, {37, 113}}
		dst := make([]Pt, len(src))
		for i, p := range src {
			dst[i] = want.Apply(p)
		}
		got, err := EstimateHomography(src, dst)
		if err != nil {
			return false
		}
		return homographyApproxEq(got, want, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a homography times its inverse is the identity for
// well-conditioned similarity transforms.
func TestPropertyInverseIdentity(t *testing.T) {
	f := func(txRaw, thetaRaw uint16) bool {
		tx := float64(txRaw)/256 - 128
		th := float64(thetaRaw) / 65536 * 6.28
		h := Translation(tx, -tx/2).Mul(Rotation(th))
		inv, err := h.Inverse()
		if err != nil {
			return false
		}
		return homographyApproxEq(h.Mul(inv), Identity(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Apply and the lifted affine Homography agree everywhere.
func TestPropertyAffineLiftAgrees(t *testing.T) {
	f := func(xRaw, yRaw int16) bool {
		a := Affine{1.2, -0.1, 4, 0.2, 0.9, -3}
		p := Pt{float64(xRaw) / 16, float64(yRaw) / 16}
		pa, ph := a.Apply(p), a.Homography().Apply(p)
		return approxEq(pa.X, ph.X, 1e-9) && approxEq(pa.Y, ph.Y, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEstimateHomography(b *testing.B) {
	want := Translation(12, -7).Mul(Rotation(0.25))
	rng := rand.New(rand.NewSource(1))
	var src, dst []Pt
	for i := 0; i < 50; i++ {
		p := Pt{rng.Float64() * 320, rng.Float64() * 240}
		src = append(src, p)
		dst = append(dst, want.Apply(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateHomography(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomographyApply(b *testing.B) {
	h := Translation(12, -7).Mul(Rotation(0.25))
	p := Pt{100, 100}
	for i := 0; i < b.N; i++ {
		p = h.Apply(Pt{float64(i % 320), p.Y})
	}
	_ = p
}
