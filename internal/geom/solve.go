package geom

import "math"

// SolveLinear solves the n x n system A x = b in place using
// Gauss-Jordan elimination with partial pivoting. A is row-major with
// stride n. It returns ErrSingular if a pivot is (numerically) zero.
// Both a and b are clobbered; the solution is returned in b.
func SolveLinear(a []float64, b []float64, n int) error {
	if len(a) != n*n || len(b) != n {
		return ErrSingular
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in
		// this column at or below the diagonal.
		pivot := col
		maxAbs := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[pivot*n+j] = a[pivot*n+j], a[col*n+j]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		// Normalize pivot row.
		inv := 1 / a[col*n+col]
		for j := col; j < n; j++ {
			a[col*n+j] *= inv
		}
		b[col] *= inv
		// Eliminate this column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	return nil
}

// solveLinear8 is SolveLinear specialized to the 8x8 system of the
// homography DLT — the RANSAC inner-loop solve. The body is a
// statement-for-statement copy of SolveLinear with n fixed at 8, so
// every floating-point operation executes in the identical order and
// the solution is bit-identical; the constant dimension lets the
// compiler drop the bounds checks the generic solver pays per access.
// Any change to SolveLinear's elimination order must be mirrored here.
func solveLinear8(a *[64]float64, b *[8]float64) error {
	const n = 8
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[pivot*n+j] = a[pivot*n+j], a[col*n+j]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for j := col; j < n; j++ {
			a[col*n+j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	return nil
}

// finite reports whether v is neither NaN nor an infinity.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// normalization holds the similarity transform used to condition point
// sets before DLT (Hartley normalization): translate centroid to the
// origin and scale so the mean distance from the origin is sqrt(2).
type normalization struct {
	cx, cy, s float64
}

// normalizePoints writes the conditioned points into out (len(out)
// must equal len(pts)); taking the destination as a parameter lets
// EstimateHomography keep the minimal-sample case allocation-free.
func normalizePoints(pts []Pt, out []Pt) normalization {
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pts))
	cx /= n
	cy /= n
	var meanDist float64
	for _, p := range pts {
		meanDist += math.Hypot(p.X-cx, p.Y-cy)
	}
	meanDist /= n
	s := math.Sqrt2
	if meanDist > 1e-12 {
		s = math.Sqrt2 / meanDist
	}
	for i, p := range pts {
		out[i] = Pt{(p.X - cx) * s, (p.Y - cy) * s}
	}
	return normalization{cx, cy, s}
}

// matrix returns the homography representing this normalization.
func (nm normalization) matrix() Homography {
	return Homography{nm.s, 0, -nm.s * nm.cx, 0, nm.s, -nm.s * nm.cy, 0, 0, 1}
}

// inverseMatrix returns the homography undoing this normalization.
func (nm normalization) inverseMatrix() Homography {
	inv := 1 / nm.s
	return Homography{inv, 0, nm.cx, 0, inv, nm.cy, 0, 0, 1}
}

// EstimateHomography computes the homography mapping src[i] -> dst[i]
// from at least four correspondences using the normalized Direct
// Linear Transform. With exactly four points it solves the 8x8 system
// exactly; with more it solves the least-squares normal equations.
// It returns ErrSingular for degenerate configurations (e.g. three or
// more collinear points).
func EstimateHomography(src, dst []Pt) (Homography, error) {
	if len(src) < 4 || len(src) != len(dst) {
		return Homography{}, ErrSingular
	}
	// RANSAC calls this with 4-point samples hundreds of times per
	// frame pair; stack buffers keep that hot case allocation-free.
	var sbuf, dbuf [8]Pt
	srcN, dstN := sbuf[:], dbuf[:]
	if len(src) <= len(sbuf) {
		srcN, dstN = sbuf[:len(src)], dbuf[:len(dst)]
	} else {
		srcN = make([]Pt, len(src))
		dstN = make([]Pt, len(dst))
	}
	nsrc := normalizePoints(src, srcN)
	ndst := normalizePoints(dst, dstN)

	// Build the least-squares normal equations A^T A h = A^T b for the
	// 8 unknowns (h8 fixed to 1). Each correspondence contributes two
	// rows:
	//   [x y 1 0 0 0 -x*X -y*X] h = X
	//   [0 0 0 x y 1 -x*Y -y*Y] h = Y
	var ata [64]float64
	var atb [8]float64
	var row [8]float64

	// A^T A is symmetric, and when every row entry is finite the two
	// mirrored accumulations are bit-identical, so computing only the
	// upper triangle and mirroring halves the dominant cost of this
	// function (the RANSAC inner loop). The argument: entry (i,j)
	// sums row[i]*row[j] over calls with row[i] != 0 while (j,i) sums
	// the same (commutative) products over calls with row[j] != 0 —
	// the sets differ only in zero-valued factors, whose +-0 products
	// cannot move an accumulator that starts at +0 (+0 + -0 == +0).
	// A NaN or Inf entry breaks that (Inf*0 is NaN on one side of the
	// diagonal and a skip on the other), so non-finite rows — which
	// only corrupted trials produce — take the full reference
	// accumulation.
	symmetric := true
	for k := range srcN {
		x, y := srcN[k].X, srcN[k].Y
		X, Y := dstN[k].X, dstN[k].Y
		if !finite(x) || !finite(y) || !finite(X) || !finite(Y) ||
			!finite(x*X) || !finite(y*X) || !finite(x*Y) || !finite(y*Y) {
			symmetric = false
			break
		}
	}
	jLo := func(i int) int {
		if symmetric {
			return i
		}
		return 0
	}
	accumulate := func(rhs float64) {
		for i := 0; i < 8; i++ {
			if row[i] == 0 {
				continue
			}
			for j := jLo(i); j < 8; j++ {
				ata[i*8+j] += row[i] * row[j]
			}
			atb[i] += row[i] * rhs
		}
	}
	for k := range srcN {
		x, y := srcN[k].X, srcN[k].Y
		X, Y := dstN[k].X, dstN[k].Y
		row = [8]float64{x, y, 1, 0, 0, 0, -x * X, -y * X}
		accumulate(X)
		row = [8]float64{0, 0, 0, x, y, 1, -x * Y, -y * Y}
		accumulate(Y)
	}
	if symmetric {
		for i := 1; i < 8; i++ {
			for j := 0; j < i; j++ {
				ata[i*8+j] = ata[j*8+i]
			}
		}
	}
	sol := atb
	if err := solveLinear8(&ata, &sol); err != nil {
		return Homography{}, err
	}
	hn := Homography{sol[0], sol[1], sol[2], sol[3], sol[4], sol[5], sol[6], sol[7], 1}
	// Denormalize: H = Tdst^-1 * Hn * Tsrc.
	h := ndst.inverseMatrix().Mul(hn).Mul(nsrc.matrix())
	h = h.Normalize()
	if !h.IsFinite() {
		return Homography{}, ErrSingular
	}
	return h, nil
}

// EstimateAffine computes the affine transform mapping src[i] -> dst[i]
// from at least three correspondences, by least squares for more than
// three. It returns ErrSingular for collinear configurations.
func EstimateAffine(src, dst []Pt) (Affine, error) {
	if len(src) < 3 || len(src) != len(dst) {
		return Affine{}, ErrSingular
	}
	// Two independent 3-unknown least-squares problems (for the x and
	// y output rows) sharing the same 3x3 normal matrix.
	var ata [9]float64
	var atbx, atby [3]float64
	for k := range src {
		r := [3]float64{src[k].X, src[k].Y, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i*3+j] += r[i] * r[j]
			}
			atbx[i] += r[i] * dst[k].X
			atby[i] += r[i] * dst[k].Y
		}
	}
	ataCopy := ata
	solX := atbx
	if err := SolveLinear(ataCopy[:], solX[:], 3); err != nil {
		return Affine{}, err
	}
	ataCopy = ata
	solY := atby
	if err := SolveLinear(ataCopy[:], solY[:], 3); err != nil {
		return Affine{}, err
	}
	a := Affine{solX[0], solX[1], solX[2], solY[0], solY[1], solY[2]}
	if !a.IsFinite() {
		return Affine{}, ErrSingular
	}
	return a, nil
}

// ReprojError returns the Euclidean reprojection error |h(src) - dst|.
func ReprojError(h Homography, src, dst Pt) float64 {
	return h.Apply(src).Dist(dst)
}

// Collinear reports whether the three points are (nearly) collinear,
// using twice the triangle area against a tolerance scaled by the
// points' extent.
func Collinear(a, b, c Pt) bool {
	area2 := math.Abs((b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y))
	// Conservative early outs before paying for three math.Hypot
	// calls (RANSAC runs this on every 4-point sample): each pairwise
	// distance satisfies mc <= hypot <= sqrt2*mc where mc is the max
	// absolute coordinate delta, so with mm = max mc over the pairs,
	// scale^2 lies in [max(1, mm^2), max(1, 2*mm^2)]. area2 at or
	// above the upper threshold can never be collinear; area2 below
	// the lower threshold always is. NaN/Inf inputs fail both
	// comparisons (or match the exact path's verdict, when mm and the
	// true scale overflow together) and fall through.
	m1 := math.Max(math.Abs(b.X-a.X), math.Abs(b.Y-a.Y))
	m2 := math.Max(math.Abs(c.X-b.X), math.Abs(c.Y-b.Y))
	m3 := math.Max(math.Abs(c.X-a.X), math.Abs(c.Y-a.Y))
	mm := math.Max(m1, math.Max(m2, m3))
	if area2 >= 1e-6*math.Max(1, 2*mm*mm) {
		return false
	}
	if area2 < 1e-6*math.Max(1, mm*mm) {
		return true
	}
	scale := math.Max(1, math.Max(a.Dist(b), math.Max(b.Dist(c), a.Dist(c))))
	return area2 < 1e-6*scale*scale
}
