// Inert kernel invocations: when a *fault.Machine can prove that no
// armed plan site is reachable within a kernel's tap footprint (and
// the hang budget cannot expire inside it), every tap the kernel would
// issue is an identity pass-through — so the kernel may run its
// tap-free clean mirror, row-tiled across goroutines, and afterwards
// bulk-advance the tap counters and op accounts by the instrumented
// loop's exact footprint. Later taps then index the injection-site
// space exactly as if the instrumented loop had run, which is what
// keeps campaign results bit-identical with the gate on or off.
//
// The footprint formulas below are derived from (and must stay in
// lockstep with) the instrumented loops in warp.go; the counter-
// exactness test in the warp test suite compares a full instrumented
// run against an inert one, taps, ops and bytes.
package warp

import (
	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
)

// stage1Span is the tap footprint of the instrumented stage-1 warp
// loop over rows scanlines of pixels destination pixels, written of
// which pass the bounds/NaN reject. Per the loop in warpOntoCanvas:
// two Cnt taps for the row bounds, one Idx per row, two F64 per pixel
// (the inverse-mapped coordinates), and per accepted pixel three GPR
// taps inside remapBilinear (two Idx, one Pix) plus the destination
// Idx back in the invoker. Rejected pixels leave remapBilinear before
// its first tap.
func stage1Span(rows, pixels, written uint64) fault.TapCounters {
	var tc fault.TapCounters
	tc.RegionGPR[probe.RWarpInvoker] = 2 + rows + written
	tc.RegionGPR[probe.RRemapBilinear] = 3 * written
	tc.GPR = tc.RegionGPR[probe.RWarpInvoker] + tc.RegionGPR[probe.RRemapBilinear]
	tc.RegionFPR[probe.RWarpInvoker] = 2 * pixels
	tc.FPR = tc.RegionFPR[probe.RWarpInvoker]
	tc.Steps = tc.GPR + tc.FPR
	return tc
}

// stage2Span is the tap footprint of the instrumented stage-2
// composite loop without gain compensation: one Idx per row, in
// RBlend. (With gain compensation the frameGain F64 tap is
// data-dependent, so the machine path falls back to the instrumented
// loop instead of modelling it.)
func stage2Span(rows uint64) fault.TapCounters {
	var tc fault.TapCounters
	tc.RegionGPR[probe.RBlend] = rows
	tc.GPR = rows
	tc.Steps = rows
	return tc
}

// resolveSpan is the tap footprint of resolveCanvas over an
// rows-scanline canvas: two Cnt taps for the dimensions plus one Idx
// per row, all in RBlend.
func resolveSpan(rows uint64) fault.TapCounters {
	var tc fault.TapCounters
	tc.RegionGPR[probe.RBlend] = 2 + rows
	tc.GPR = 2 + rows
	tc.Steps = 2 + rows
	return tc
}

// warpOntoCanvasMachine is WarpOntoCanvas for an injecting machine: it
// runs each stage through the tiled clean mirror whenever CanSkipTaps
// proves the stage inert, falling back to the instrumented loops
// otherwise (per stage — an armed plan targeting the blend region
// still gets a clean stage 1).
func warpOntoCanvasMachine(src *imgproc.Gray, h geom.Homography, c *Canvas, m *fault.Machine) (int, error) {
	if !fastpath.Tiling() || !fastpath.Enabled() {
		return warpOntoCanvas(src, h, c, m)
	}
	inv, err := h.Inverse()
	if err != nil {
		// Match the instrumented path's accounting: it enters and
		// leaves RWarpInvoker without tapping before returning the
		// error, which is a no-op.
		return 0, err
	}
	region := ProjectBounds(h, src.W, src.H).Intersect(c.B)
	if region.Empty() {
		return 0, nil
	}
	tw, th := region.W(), region.H()
	pixels := uint64(tw) * uint64(th)
	// The eligibility check bounds written by pixels (every pixel
	// accepted); the post-hoc advance uses the exact count the clean
	// kernel reports.
	if !m.CanSkipTaps(stage1Span(uint64(th), pixels, pixels)) {
		return warpOntoCanvas(src, h, c, m)
	}
	vals := getFloats(tw*th, false)
	wts := getFloats(tw*th, true)
	defer putFloats(vals)
	defer putFloats(wts)
	cols := getFloats(3*tw, false)
	defer putFloats(cols)
	var proj scanProjector
	proj.init(inv, region.MinX, tw, cols)
	halfW := float64(src.W) / 2
	halfH := float64(src.H) / 2
	written := warpStage1Clean(src, &proj, region, vals, wts, c.Mode, halfW, halfH)
	m.AdvanceTaps(stage1Span(uint64(th), pixels, uint64(written)))
	m.OpsIn(probe.RWarpInvoker, probe.OpInt, 6*pixels+2+uint64(th)+uint64(written))
	m.OpsIn(probe.RWarpInvoker, probe.OpLoad, 4*pixels)
	m.OpsIn(probe.RWarpInvoker, probe.OpFloat, 26*pixels)
	m.OpsIn(probe.RRemapBilinear, probe.OpInt, 3*uint64(written))

	if !c.GainCompensation && m.CanSkipTaps(stage2Span(uint64(th))) {
		forEachBand(th, func(_, lo, hi int) {
			warpStage2Band(c, region, vals, wts, 1.0, lo, hi)
		})
		m.AdvanceTaps(stage2Span(uint64(th)))
		m.OpsIn(probe.RBlend, probe.OpInt, uint64(th))
		m.OpsIn(probe.RBlend, probe.OpLoad, pixels)
		m.OpsIn(probe.RBlend, probe.OpStore, pixels)
	} else {
		warpStage2Instr(c, region, vals, wts, m)
	}
	return written, nil
}

// resolveCanvasMachine is Canvas.Resolve for an injecting machine,
// with the same inert-or-instrumented split as the warp stages.
func resolveCanvasMachine(c *Canvas, m *fault.Machine) *imgproc.Gray {
	h := c.B.H()
	if fastpath.Tiling() && fastpath.Enabled() && m.CanSkipTaps(resolveSpan(uint64(h))) {
		out := imgproc.NewGray(c.B.W(), h)
		forEachBand(h, func(_, lo, hi int) { resolveBand(c, out, lo, hi) })
		m.AdvanceTaps(resolveSpan(uint64(h)))
		wh := uint64(c.B.W()) * uint64(h)
		m.OpsIn(probe.RBlend, probe.OpInt, 2+uint64(h))
		m.OpsIn(probe.RBlend, probe.OpFloat, wh)
		m.OpsIn(probe.RBlend, probe.OpStore, wh)
		return out
	}
	return resolveCanvas(c, m)
}
