package warp

import (
	"math"
	"testing"
	"testing/quick"

	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
)

func gradientImage(w, h int) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, uint8((x*3+y*5)%256))
		}
	}
	return g
}

func TestBoundsOps(t *testing.T) {
	a := Bounds{0, 0, 10, 5}
	if a.W() != 10 || a.H() != 5 || a.Empty() {
		t.Errorf("bounds basics wrong: %+v", a)
	}
	b := Bounds{5, 2, 20, 8}
	u := a.Union(b)
	if u != (Bounds{0, 0, 20, 8}) {
		t.Errorf("Union = %+v", u)
	}
	i := a.Intersect(b)
	if i != (Bounds{5, 2, 10, 5}) {
		t.Errorf("Intersect = %+v", i)
	}
	var empty Bounds
	if !empty.Empty() {
		t.Error("zero bounds should be empty")
	}
	if got := empty.Union(a); got != a {
		t.Errorf("empty union = %+v", got)
	}
	if got := a.Union(empty); got != a {
		t.Errorf("union empty = %+v", got)
	}
	disjoint := Bounds{100, 100, 110, 110}
	if !a.Intersect(disjoint).Empty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestProjectBoundsIdentity(t *testing.T) {
	b := ProjectBounds(geom.Identity(), 100, 50)
	if b.MinX != 0 || b.MinY != 0 || b.MaxX < 100 || b.MaxY < 50 {
		t.Errorf("ProjectBounds identity = %+v", b)
	}
}

func TestProjectBoundsTranslation(t *testing.T) {
	b := ProjectBounds(geom.Translation(10, -20), 100, 50)
	if b.MinX != 10 || b.MinY != -20 {
		t.Errorf("ProjectBounds translation = %+v", b)
	}
}

func TestProjectBoundsDegenerate(t *testing.T) {
	h := geom.Homography{math.NaN(), 0, 0, 0, 1, 0, 0, 0, 1}
	if b := ProjectBounds(h, 10, 10); !b.Empty() {
		t.Errorf("NaN transform bounds = %+v", b)
	}
}

func TestWarpPerspectiveIdentity(t *testing.T) {
	src := gradientImage(40, 30)
	dst, err := WarpPerspective(src, geom.Identity(), 40, 30, nil)
	if err != nil {
		t.Fatalf("WarpPerspective: %v", err)
	}
	if !dst.Equal(src) {
		t.Error("identity warp changed the image")
	}
}

func TestWarpPerspectiveTranslation(t *testing.T) {
	src := gradientImage(40, 30)
	dst, err := WarpPerspective(src, geom.Translation(5, 3), 40, 30, nil)
	if err != nil {
		t.Fatalf("WarpPerspective: %v", err)
	}
	// dst(x, y) = src(x-5, y-3) where defined.
	for y := 3; y < 30; y++ {
		for x := 5; x < 40; x++ {
			if dst.At(x, y) != src.At(x-5, y-3) {
				t.Fatalf("translated pixel (%d,%d) = %d, want %d", x, y, dst.At(x, y), src.At(x-5, y-3))
			}
		}
	}
	// Uncovered region is black.
	if dst.At(0, 0) != 0 {
		t.Error("uncovered pixel not black")
	}
}

func TestWarpPerspectiveSingular(t *testing.T) {
	src := gradientImage(10, 10)
	var h geom.Homography // zero matrix
	if _, err := WarpPerspective(src, h, 10, 10, nil); err == nil {
		t.Error("expected error for singular transform")
	}
}

func TestWarpRoundTripRecoversImage(t *testing.T) {
	// Warp forward then backward: interior pixels should be close to
	// the original (bilinear blur allows small error). The fixture
	// must be smooth — a wrapping gradient has 255->0 jumps where
	// bilinear interpolation legitimately produces large differences.
	src := imgproc.NewGray(60, 60)
	for y := 0; y < 60; y++ {
		for x := 0; x < 60; x++ {
			v := 128 + 90*math.Sin(float64(x)/9)*math.Cos(float64(y)/7)
			src.Set(x, y, imgproc.SaturateUint8(v))
		}
	}
	h := geom.Translation(7.5, 3.25)
	inv, err := h.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := WarpPerspective(src, h, 80, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := WarpPerspective(fwd, inv, 60, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	var worst int
	for y := 2; y < 56; y++ {
		for x := 2; x < 50; x++ {
			d := int(back.At(x, y)) - int(src.At(x, y))
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 30 {
		t.Errorf("round trip worst interior error %d", worst)
	}
}

func TestWarpPerspectiveInstrumentedIdentical(t *testing.T) {
	src := gradientImage(32, 32)
	h := geom.Translation(2, 2).Mul(geom.Rotation(0.1))
	a, err := WarpPerspective(src, h, 40, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WarpPerspective(src, h, 40, 40, fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("instrumentation changed warp output")
	}
}

func TestWarpRegionAccounting(t *testing.T) {
	src := gradientImage(32, 32)
	m := fault.New()
	if _, err := WarpPerspective(src, geom.Identity(), 32, 32, m); err != nil {
		t.Fatal(err)
	}
	if m.RegionTaps(fault.GPR, fault.RWarpInvoker) == 0 {
		t.Error("no taps in warp invoker region")
	}
	if m.RegionTaps(fault.GPR, fault.RRemapBilinear) == 0 {
		t.Error("no taps in remap region")
	}
	if m.RegionTaps(fault.FPR, fault.RWarpInvoker) == 0 {
		t.Error("no FPR taps in warp region")
	}
}

func TestCanvasAccumulateResolve(t *testing.T) {
	c := NewCanvasMode(Bounds{0, 0, 4, 4}, BlendFeather)
	c.Accumulate(1, 1, 100, 1)
	c.Accumulate(1, 1, 200, 1)
	out := c.Resolve(nil)
	if got := out.At(1, 1); got != 150 {
		t.Errorf("blended pixel = %d, want 150", got)
	}
	if got := out.At(0, 0); got != 0 {
		t.Errorf("untouched pixel = %d, want 0", got)
	}
}

func TestCanvasWeightedBlend(t *testing.T) {
	c := NewCanvasMode(Bounds{0, 0, 2, 2}, BlendFeather)
	c.Accumulate(0, 0, 100, 3)
	c.Accumulate(0, 0, 200, 1)
	out := c.Resolve(nil)
	if got := out.At(0, 0); got != 125 {
		t.Errorf("weighted blend = %d, want 125", got)
	}
}

func TestCanvasIgnoresOutside(t *testing.T) {
	c := NewCanvas(Bounds{0, 0, 2, 2})
	c.Accumulate(-1, 0, 50, 1) // silently ignored
	c.Accumulate(5, 5, 50, 1)
	c.Accumulate(0, 0, 50, 0) // zero weight ignored
	if cov := c.Coverage(); cov != 0 {
		t.Errorf("coverage = %v, want 0", cov)
	}
}

func TestCanvasNegativeOrigin(t *testing.T) {
	c := NewCanvas(Bounds{-5, -5, 5, 5})
	c.Accumulate(-5, -5, 77, 1)
	out := c.Resolve(nil)
	if out.W != 10 || out.H != 10 {
		t.Fatalf("canvas image %dx%d", out.W, out.H)
	}
	if out.At(0, 0) != 77 {
		t.Error("negative-origin pixel not mapped to (0,0)")
	}
}

func TestCanvasSizeGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized canvas")
		}
	}()
	NewCanvas(Bounds{0, 0, 1 << 14, 1 << 14})
}

func TestCanvasCoverage(t *testing.T) {
	c := NewCanvas(Bounds{0, 0, 2, 2})
	c.Accumulate(0, 0, 1, 1)
	c.Accumulate(1, 1, 1, 1)
	if cov := c.Coverage(); cov != 0.5 {
		t.Errorf("coverage = %v, want 0.5", cov)
	}
	empty := &Canvas{}
	if empty.Coverage() != 0 {
		t.Error("empty canvas coverage should be 0")
	}
}

func TestWarpOntoCanvasIdentity(t *testing.T) {
	src := gradientImage(20, 20)
	c := NewCanvas(Bounds{0, 0, 20, 20})
	n, err := WarpOntoCanvas(src, geom.Identity(), c, nil)
	if err != nil {
		t.Fatalf("WarpOntoCanvas: %v", err)
	}
	if n == 0 {
		t.Fatal("no pixels written")
	}
	out := c.Resolve(nil)
	// Interior pixels should match the source exactly (single frame,
	// no blending competition).
	for y := 1; y < 19; y++ {
		for x := 1; x < 19; x++ {
			if out.At(x, y) != src.At(x, y) {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, out.At(x, y), src.At(x, y))
			}
		}
	}
}

func TestWarpOntoCanvasOverlapBlends(t *testing.T) {
	// Two constant frames overlap: the blend must land between them.
	a := imgproc.NewGray(10, 10)
	a.Fill(100)
	b := imgproc.NewGray(10, 10)
	b.Fill(200)
	c := NewCanvasMode(Bounds{0, 0, 15, 10}, BlendFeather)
	if _, err := WarpOntoCanvas(a, geom.Identity(), c, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := WarpOntoCanvas(b, geom.Translation(5, 0), c, nil); err != nil {
		t.Fatal(err)
	}
	out := c.Resolve(nil)
	v := out.At(7, 5) // in the overlap
	if v <= 100 || v >= 200 {
		t.Errorf("overlap pixel = %d, want strictly between 100 and 200", v)
	}
}

func TestWarpOntoCanvasCompositionalMasking(t *testing.T) {
	// The §VI-C mechanism: corrupt one frame's pixels, then stitch an
	// identical clean frame over the same area with much higher
	// weight. The later frame dilutes the corruption.
	clean := imgproc.NewGray(10, 10)
	clean.Fill(100)
	corrupted := clean.Clone()
	corrupted.Set(5, 5, 255)

	c1 := NewCanvas(Bounds{0, 0, 10, 10})
	if _, err := WarpOntoCanvas(corrupted, geom.Identity(), c1, nil); err != nil {
		t.Fatal(err)
	}
	only := c1.Resolve(nil)
	if only.At(5, 5) != 255 {
		t.Fatal("corruption should be visible alone")
	}

	c2 := NewCanvas(Bounds{0, 0, 10, 10})
	if _, err := WarpOntoCanvas(corrupted, geom.Identity(), c2, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := WarpOntoCanvas(clean, geom.Identity(), c2, nil); err != nil {
			t.Fatal(err)
		}
	}
	blended := c2.Resolve(nil)
	if got := blended.At(5, 5); got > 130 {
		t.Errorf("overlap did not dilute corruption: %d", got)
	}
}

func TestWarpOntoCanvasOffCanvas(t *testing.T) {
	src := gradientImage(10, 10)
	c := NewCanvas(Bounds{0, 0, 10, 10})
	n, err := WarpOntoCanvas(src, geom.Translation(100, 100), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("off-canvas warp wrote %d pixels", n)
	}
}

func TestWarpOntoCanvasSingular(t *testing.T) {
	src := gradientImage(10, 10)
	c := NewCanvas(Bounds{0, 0, 10, 10})
	var h geom.Homography
	if _, err := WarpOntoCanvas(src, h, c, nil); err == nil {
		t.Error("expected error for singular transform")
	}
}

// Property: warping by a pure translation relocates pixel content
// exactly for integer shifts.
func TestPropertyIntegerTranslationExact(t *testing.T) {
	src := gradientImage(24, 24)
	f := func(dxRaw, dyRaw uint8) bool {
		dx := int(dxRaw % 10)
		dy := int(dyRaw % 10)
		dst, err := WarpPerspective(src, geom.Translation(float64(dx), float64(dy)), 34, 34, nil)
		if err != nil {
			return false
		}
		for y := dy; y < dy+24; y += 5 {
			for x := dx; x < dx+24; x += 5 {
				if dst.At(x, y) != src.At(x-dx, y-dy) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWarpPerspective(b *testing.B) {
	src := gradientImage(320, 240)
	h := geom.Translation(10, 5).Mul(geom.Rotation(0.05))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WarpPerspective(src, h, 340, 260, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarpPerspectiveInstrumented(b *testing.B) {
	src := gradientImage(320, 240)
	h := geom.Translation(10, 5).Mul(geom.Rotation(0.05))
	m := fault.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WarpPerspective(src, h, 340, 260, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarpOntoCanvas(b *testing.B) {
	src := gradientImage(320, 240)
	h := geom.Translation(10, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCanvas(Bounds{0, 0, 340, 260})
		if _, err := WarpOntoCanvas(src, h, c, nil); err != nil {
			b.Fatal(err)
		}
	}
}
