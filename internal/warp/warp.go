// Package warp implements perspective warping — the paper's hot
// function. OpenCV's WarpPerspective accounts for 54.4% of the VS
// application's execution time (Fig 8); it is implemented here, as in
// OpenCV, as an invoker loop (warpPerspectiveInvoker) that inverse-maps
// destination pixels and a bilinear remapper (remapBilinear) that
// samples the source.
//
// The package also provides the panorama canvas that frames are
// composited onto. Compositing overlap is the paper's "compositional
// masking" mechanism (§VI-C): a corrupted frame region can be stitched
// over by a later frame, converting a would-be SDC into a Mask.
package warp

import (
	"math"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
)

// Bounds is an axis-aligned integer rectangle [MinX,MaxX)x[MinY,MaxY).
type Bounds struct {
	MinX, MinY, MaxX, MaxY int
}

// W returns the rectangle width (0 when empty).
func (b Bounds) W() int {
	if b.MaxX <= b.MinX {
		return 0
	}
	return b.MaxX - b.MinX
}

// H returns the rectangle height (0 when empty).
func (b Bounds) H() int {
	if b.MaxY <= b.MinY {
		return 0
	}
	return b.MaxY - b.MinY
}

// Empty reports whether the rectangle has no area.
func (b Bounds) Empty() bool { return b.W() == 0 || b.H() == 0 }

// Union returns the smallest rectangle covering both.
func (b Bounds) Union(o Bounds) Bounds {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Bounds{
		MinX: minInt(b.MinX, o.MinX),
		MinY: minInt(b.MinY, o.MinY),
		MaxX: maxInt(b.MaxX, o.MaxX),
		MaxY: maxInt(b.MaxY, o.MaxY),
	}
}

// Intersect returns the overlap of both rectangles (possibly empty).
func (b Bounds) Intersect(o Bounds) Bounds {
	r := Bounds{
		MinX: maxInt(b.MinX, o.MinX),
		MinY: maxInt(b.MinY, o.MinY),
		MaxX: minInt(b.MaxX, o.MaxX),
		MaxY: minInt(b.MaxY, o.MaxY),
	}
	if r.MaxX < r.MinX {
		r.MaxX = r.MinX
	}
	if r.MaxY < r.MinY {
		r.MaxY = r.MinY
	}
	return r
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ProjectBounds returns the integer bounding box of the four corners
// of a wxh image transformed by h.
func ProjectBounds(h geom.Homography, w, ht int) Bounds {
	corners := [4]geom.Pt{
		{X: 0, Y: 0},
		{X: float64(w - 1), Y: 0},
		{X: float64(w - 1), Y: float64(ht - 1)},
		{X: 0, Y: float64(ht - 1)},
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, c := range corners {
		p := h.Apply(c)
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if math.IsInf(minX, 0) || math.IsInf(minY, 0) || math.IsInf(maxX, 0) || math.IsInf(maxY, 0) ||
		math.IsNaN(minX) || math.IsNaN(minY) || math.IsNaN(maxX) || math.IsNaN(maxY) {
		return Bounds{}
	}
	return Bounds{
		MinX: int(math.Floor(minX)),
		MinY: int(math.Floor(minY)),
		MaxX: int(math.Ceil(maxX)) + 1,
		MaxY: int(math.Ceil(maxY)) + 1,
	}
}

// MaxCanvasPixels guards against corrupted transforms exploding the
// panorama allocation; exceeding it panics, which the fault monitor
// classifies as a crash (the original application would be killed by
// the OOM killer or fail allocation — also a crash).
const MaxCanvasPixels = 1 << 26

// BlendMode selects how overlapping frames combine on a canvas.
type BlendMode uint8

// Blend modes.
const (
	// BlendOverwrite composites frames in order with later frames
	// replacing earlier content — the mosaicking behavior of the
	// paper's pipeline, and the mechanism behind compositional
	// masking (§VI-C): corrupted output of an early frame is erased
	// wherever a later frame covers it.
	BlendOverwrite BlendMode = iota
	// BlendFeather averages overlapping frames with border-feathered
	// weights for seamless blends (an optional quality refinement).
	BlendFeather
)

// Canvas accumulates warped frames in global panorama coordinates.
type Canvas struct {
	B    Bounds
	Mode BlendMode
	// GainCompensation enables per-frame exposure compensation: before
	// a frame is composited, its intensity is scaled so its mean over
	// the already-covered overlap matches the canvas — one of the
	// pipeline's rendering refinements against visible seams (§III-A's
	// "corrective actions"). The gain is clamped to [1/MaxGain, MaxGain].
	GainCompensation bool
	weights          []float64
	values           []float64
	touched          []bool
}

// MaxGain bounds exposure-compensation gains.
const MaxGain = 1.5

// NewCanvas allocates an overwrite-mode canvas covering b.
func NewCanvas(b Bounds) *Canvas {
	return NewCanvasMode(b, BlendOverwrite)
}

// NewCanvasMode allocates a canvas covering b with the given blend
// mode. The backing buffers may come from a package pool (see
// Recycle); they are cleared either way, so a recycled canvas is
// indistinguishable from a fresh one.
func NewCanvasMode(b Bounds, mode BlendMode) *Canvas {
	n := b.W() * b.H()
	if n > MaxCanvasPixels {
		panic("warp: canvas size exceeds safety bound")
	}
	return &Canvas{
		B:       b,
		Mode:    mode,
		weights: getFloats(n, true),
		values:  getFloats(n, true),
		touched: getBools(n),
	}
}

// Recycle returns the canvas's backing buffers to the package pool so
// the next NewCanvasMode in the same process reuses them instead of
// allocating. The canvas must not be used afterwards. Callers that
// only keep the Resolve output (the stitcher) call this once per
// composited segment; it is optional — an un-recycled canvas is simply
// collected by the GC.
func (c *Canvas) Recycle() {
	putFloats(c.weights)
	putFloats(c.values)
	putBools(c.touched)
	c.weights, c.values, c.touched = nil, nil, nil
}

// idx maps global coordinates to buffer offset; callers must ensure
// containment.
func (c *Canvas) idx(x, y int) int {
	return (y-c.B.MinY)*c.B.W() + (x - c.B.MinX)
}

// Contains reports whether the global coordinate lies on the canvas.
func (c *Canvas) Contains(x, y int) bool {
	return x >= c.B.MinX && x < c.B.MaxX && y >= c.B.MinY && y < c.B.MaxY
}

// Accumulate adds a weighted sample at global (x, y), ignoring
// off-canvas coordinates. This is the checked entry point; the warp
// hot loop uses writeIdx with precomputed (crash-prone) indices.
func (c *Canvas) Accumulate(x, y int, v float64, w float64) {
	if !c.Contains(x, y) || w <= 0 {
		return
	}
	c.writeIdx(c.idx(x, y), v, w)
}

// writeIdx stores a sample at a raw buffer offset. Like the compiled
// store through a computed address in the original binary, a corrupted
// offset faults (slice bounds panic -> campaign Crash).
func (c *Canvas) writeIdx(i int, v, w float64) {
	switch c.Mode {
	case BlendFeather:
		c.values[i] += v * w
		c.weights[i] += w
	default: // BlendOverwrite: later frames replace earlier content.
		c.values[i] = v
		c.weights[i] = 1
	}
	c.touched[i] = true
}

// Resolve renders the canvas to an 8-bit image; untouched pixels are
// black. The divide-and-saturate step is floating point funneled
// through the uint8 clamp — the FPR masking path. s is any probe.Sink;
// pass probe.Nop{} for an uninstrumented render (nil is normalized).
func (c *Canvas) Resolve(s probe.Sink) *imgproc.Gray {
	if s = probe.OrNop(s); probe.IsNop(s) {
		if fastpath.Enabled() {
			out := imgproc.NewGray(c.B.W(), c.B.H())
			forEachBand(c.B.H(), func(_, lo, hi int) { resolveBand(c, out, lo, hi) })
			return out
		}
		return resolveCanvas(c, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return resolveCanvasMachine(c, m)
	}
	return resolveCanvas(c, s)
}

func resolveCanvas[S probe.Sink](c *Canvas, m S) *imgproc.Gray {
	defer m.Enter(probe.RBlend)()
	out := imgproc.NewGray(c.B.W(), c.B.H())
	w := m.Cnt(c.B.W())
	h := m.Cnt(c.B.H())
	for y := 0; y < h; y++ {
		m.Ops(probe.OpFloat, uint64(w))
		m.Ops(probe.OpStore, uint64(w))
		rowBase := m.Idx(y * out.W)
		for x := 0; x < w; x++ {
			i := rowBase + x
			if !c.touched[i] {
				continue
			}
			v := c.values[i] / c.weights[i]
			out.Pix[i] = imgproc.SaturateUint8(v)
		}
	}
	return out
}

// resolveBand is the tap-free canvas render over output rows [y0, y1)
// — the same divide-and-saturate expression as resolveCanvas with the
// taps compiled out. Bands write disjoint rows of out.
func resolveBand(c *Canvas, out *imgproc.Gray, y0, y1 int) {
	w := c.B.W()
	for y := y0; y < y1; y++ {
		rowBase := y * out.W
		for x := 0; x < w; x++ {
			i := rowBase + x
			if !c.touched[i] {
				continue
			}
			v := c.values[i] / c.weights[i]
			out.Pix[i] = imgproc.SaturateUint8(v)
		}
	}
}

// Coverage returns the fraction of canvas pixels that received at
// least one sample.
func (c *Canvas) Coverage() float64 {
	if len(c.touched) == 0 {
		return 0
	}
	n := 0
	for _, t := range c.touched {
		if t {
			n++
		}
	}
	return float64(n) / float64(len(c.touched))
}

// WarpOntoCanvas composites src onto the canvas through the transform
// h (src coordinates -> global coordinates). It reproduces OpenCV's
// warpPerspectiveInvoker structure: iterate destination pixels inside
// the projected bounds, inverse-map each through h^-1, and sample the
// source with remapBilinear. Samples are feather-weighted by their
// distance to the source frame border so overlapping frames blend
// smoothly.
//
// It returns the number of destination pixels written. s is any
// probe.Sink; pass probe.Nop{} for an uninstrumented warp (nil is
// normalized). The no-op instantiation additionally runs a tap-free
// scanline kernel for stage 1, so clean serving runs pay no per-pixel
// instrumentation overhead.
func WarpOntoCanvas(src *imgproc.Gray, h geom.Homography, c *Canvas, s probe.Sink) (int, error) {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return warpOntoCanvas(src, h, c, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return warpOntoCanvasMachine(src, h, c, m)
	}
	return warpOntoCanvas(src, h, c, s)
}

func warpOntoCanvas[S probe.Sink](src *imgproc.Gray, h geom.Homography, c *Canvas, m S) (int, error) {
	defer m.Enter(probe.RWarpInvoker)()
	inv, err := h.Inverse()
	if err != nil {
		return 0, err
	}
	region := ProjectBounds(h, src.W, src.H).Intersect(c.B)
	if region.Empty() {
		return 0, nil
	}
	// Stage 1 (the hot function): warp the source into a temporary
	// frame-extent image, exactly like OpenCV's warpPerspective
	// producing a `warped` Mat. Corrupted destination addresses here
	// displace rows *within the frame extent* (or fault), matching
	// the original binary where the invoker writes into the warped
	// temp image rather than the final panorama.
	tw, th := region.W(), region.H()
	// vals needs no clearing: stage 2 and frameGain only read vals[i]
	// where wts[i] != 0, and the single (tapped) store index i writes
	// both arrays together, so every readable vals element is written
	// this call. wts is the "pixel produced" mask and must start zero.
	vals := getFloats(tw*th, false)
	wts := getFloats(tw*th, true) // 0 = pixel not produced
	defer putFloats(vals)
	defer putFloats(wts)
	// The scanline kernel is unconditionally safe here: the column
	// count tw is untapped, so a corrupted row counter or row index
	// never sends tx outside the cached column products, and the
	// projected values are a pure function of (tx, fy) identical to
	// inv.Apply's.
	fast := fastpath.Enabled()
	var proj scanProjector
	if fast {
		cols := getFloats(3*tw, false)
		defer putFloats(cols)
		proj.init(inv, region.MinX, tw, cols)
	}
	written := 0
	halfW := float64(src.W) / 2
	halfH := float64(src.H) / 2
	if _, clean := any(m).(probe.Nop); clean && fast {
		// Devirtualized clean path: identical arithmetic with the taps
		// compiled out and the bilinear sample inlined into the row
		// loop. Bit-exactness vs the instrumented loop under a plan-free
		// sink is pinned by the equivalence tests.
		written = warpStage1Clean(src, &proj, region, vals, wts, c.Mode, halfW, halfH)
	} else {
		y0 := m.Cnt(0)
		y1 := m.Cnt(th)
		for ty := y0; ty < y1; ty++ {
			m.Ops(probe.OpInt, uint64(tw)*6)
			m.Ops(probe.OpLoad, uint64(tw)*4)
			// Per-pixel arithmetic of the inverse map + bilinear sample:
			// 3x3 matrix-vector product (15 flops), perspective divide (2)
			// and bilinear interpolation (7).
			m.Ops(probe.OpFloat, uint64(tw)*24)
			// Destination row base: address arithmetic through a GPR, as
			// in the compiled invoker. Corruption displaces or faults the
			// row's stores.
			rowIdx := m.Idx(ty * tw)
			fy := float64(region.MinY + ty)
			if fast {
				proj.setRow(fy)
			}
			for tx := 0; tx < tw; tx++ {
				// Inverse map the destination pixel to source coordinates.
				// These coordinate temporaries are the workload's dominant
				// floating-point state.
				var spX, spY float64
				if fast {
					spX, spY = proj.at(tx)
				} else {
					sp := inv.Apply(geom.Pt{X: float64(region.MinX + tx), Y: fy})
					spX, spY = sp.X, sp.Y
				}
				sx := m.F64(spX)
				sy := m.F64(spY)
				v, ok := remapBilinear(src, sx, sy, m)
				if !ok {
					continue
				}
				weight := 1.0
				if c.Mode == BlendFeather {
					// Feather weight: 1 at frame center falling toward the
					// border, so seams blend.
					wx := 1 - math.Abs(sx-halfW)/halfW
					wy := 1 - math.Abs(sy-halfH)/halfH
					weight = wx * wy
					if weight < 0.05 {
						weight = 0.05
					}
				}
				// Per-pixel destination address (base + row + column), as
				// the compiled store computes it.
				i := m.Idx(rowIdx + tx)
				vals[i] = float64(v)
				wts[i] = weight
				written++
			}
		}
	}

	// Stage 2: composite the warped frame onto the panorama canvas —
	// the stitching copy of the original pipeline (blend region,
	// bounds-checked like the library's ROI copy).
	if _, clean := any(m).(probe.Nop); clean && fast && !c.GainCompensation {
		forEachBand(th, func(_, lo, hi int) {
			warpStage2Band(c, region, vals, wts, 1.0, lo, hi)
		})
	} else {
		warpStage2Instr(c, region, vals, wts, m)
	}
	return written, nil
}

// warpStage2Instr is the instrumented stage-2 composite loop shared by
// the generic warp and the inert machine path (which uses it whenever
// the blend taps cannot be proven inert, e.g. under gain compensation).
func warpStage2Instr[S probe.Sink](c *Canvas, region Bounds, vals, wts []float64, m S) {
	tw, th := region.W(), region.H()
	restore := m.Enter(probe.RBlend)
	gain := 1.0
	if c.GainCompensation {
		gain = frameGain(c, region, vals, wts, m)
	}
	for ty := 0; ty < th; ty++ {
		m.Ops(probe.OpLoad, uint64(tw))
		m.Ops(probe.OpStore, uint64(tw))
		rowIdx := m.Idx(ty * tw)
		for tx := 0; tx < tw; tx++ {
			i := rowIdx + tx
			if wts[i] == 0 {
				continue
			}
			c.Accumulate(region.MinX+tx, region.MinY+ty, vals[i]*gain, wts[i])
		}
	}
	restore()
}

// warpStage2Band is the tap-free stage-2 composite over destination
// rows [y0, y1): the same accumulate expression as the instrumented
// loop with the taps compiled out. A warped row lands on exactly one
// canvas row, so concurrent bands write disjoint canvas rows.
func warpStage2Band(c *Canvas, region Bounds, vals, wts []float64, gain float64, y0, y1 int) {
	tw := region.W()
	for ty := y0; ty < y1; ty++ {
		rowIdx := ty * tw
		for tx := 0; tx < tw; tx++ {
			i := rowIdx + tx
			if wts[i] == 0 {
				continue
			}
			c.Accumulate(region.MinX+tx, region.MinY+ty, vals[i]*gain, wts[i])
		}
	}
}

// warpStage1Clean is the uninstrumented stage-1 warp: one scanline at
// a time through the cached projector with the bilinear sample inlined
// by hand (the instrumented remapBilinear is too large to inline and
// its per-pixel call would otherwise dominate the clean path). Every
// expression mirrors the instrumented loop exactly — same projection,
// same NaN/bounds rejects, same interpolation association order — so a
// clean run is byte-identical to a plan-free instrumented one. Rows
// are tiled across goroutines when the tiling gate and GOMAXPROCS
// allow; each band writes a disjoint row range of vals/wts and per-
// band written counts are summed in band order, so the result is the
// same for any band count.
func warpStage1Clean(src *imgproc.Gray, proj *scanProjector, region Bounds, vals, wts []float64, mode BlendMode, halfW, halfH float64) int {
	th := region.H()
	n := bandCount(th)
	if n <= 1 {
		return warpStage1Band(src, *proj, region, 0, th, vals, wts, mode, halfW, halfH)
	}
	perBand := make([]int, n)
	forEachBand(th, func(b, lo, hi int) {
		// Each band carries its own projector copy: the column caches
		// are shared read-only, the row products are per-band state.
		perBand[b] = warpStage1Band(src, *proj, region, lo, hi, vals, wts, mode, halfW, halfH)
	})
	written := 0
	for _, w := range perBand {
		written += w
	}
	return written
}

// warpStage1Band runs the clean stage-1 kernel over destination rows
// [y0, y1) of region. proj is taken by value so concurrent bands do
// not share row state.
func warpStage1Band(src *imgproc.Gray, proj scanProjector, region Bounds, y0, y1 int, vals, wts []float64, mode BlendMode, halfW, halfH float64) int {
	tw := region.W()
	fw := float64(src.W - 1)
	fh := float64(src.H - 1)
	written := 0
	for ty := y0; ty < y1; ty++ {
		rowIdx := ty * tw
		proj.setRow(float64(region.MinY + ty))
		for tx := 0; tx < tw; tx++ {
			sx, sy := proj.at(tx)
			if math.IsNaN(sx) || math.IsNaN(sy) || sx < 0 || sy < 0 || sx > fw || sy > fh {
				continue
			}
			x0 := int(sx)
			y0 := int(sy)
			x1 := x0 + 1
			y1 := y0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			if y1 >= src.H {
				y1 = src.H - 1
			}
			p00 := float64(src.Pix[y0*src.W+x0])
			p10 := float64(src.Pix[y0*src.W+x1])
			p01 := float64(src.Pix[y1*src.W+x0])
			p11 := float64(src.Pix[y1*src.W+x1])
			fx := sx - math.Floor(sx)
			fy := sy - math.Floor(sy)
			top := p00 + fx*(p10-p00)
			bot := p01 + fx*(p11-p01)
			v := imgproc.SaturateUint8(top + fy*(bot-top))
			weight := 1.0
			if mode == BlendFeather {
				wx := 1 - math.Abs(sx-halfW)/halfW
				wy := 1 - math.Abs(sy-halfH)/halfH
				weight = wx * wy
				if weight < 0.05 {
					weight = 0.05
				}
			}
			i := rowIdx + tx
			vals[i] = float64(v)
			wts[i] = weight
			written++
		}
	}
	return written
}

// frameGain estimates the exposure gain that matches the incoming
// frame's intensity to the canvas content it overlaps.
func frameGain[S probe.Sink](c *Canvas, region Bounds, vals, wts []float64, m S) float64 {
	tw := region.W()
	var canvasSum, frameSum float64
	var n int
	for ty := 0; ty < region.H(); ty++ {
		gy := region.MinY + ty
		for tx := 0; tx < tw; tx++ {
			i := ty*tw + tx
			if wts[i] == 0 {
				continue
			}
			gx := region.MinX + tx
			if !c.Contains(gx, gy) {
				continue
			}
			ci := c.idx(gx, gy)
			if !c.touched[ci] {
				continue
			}
			canvasSum += c.values[ci] / c.weights[ci]
			frameSum += vals[i]
			n++
		}
	}
	m.Ops(probe.OpFloat, uint64(n)*3)
	if n < 16 || frameSum <= 0 {
		return 1 // not enough overlap to estimate a gain
	}
	gain := m.F64(canvasSum / frameSum)
	if gain > MaxGain {
		gain = MaxGain
	}
	if gain < 1/MaxGain {
		gain = 1 / MaxGain
	}
	if gain != gain { // NaN from a corrupted division
		gain = 1
	}
	return gain
}

// remapBilinear samples src at fractional coordinates with bilinear
// interpolation — the second hot function of the case study (§V-C).
// The integer lattice indices flow through GPR taps (index arithmetic)
// and the fractional weights through FPR taps. Corrupted indices
// access out of bounds and panic, the crash mechanism of the paper's
// GPR campaign.
func remapBilinear[S probe.Sink](src *imgproc.Gray, x, y float64, m S) (uint8, bool) {
	prev := m.Swap(probe.RRemapBilinear)
	defer m.Swap(prev)
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0, false
	}
	if x < 0 || y < 0 || x > float64(src.W-1) || y > float64(src.H-1) {
		return 0, false
	}
	x0 := m.Idx(int(x))
	y0 := m.Idx(int(y))
	x1 := x0 + 1
	y1 := y0 + 1
	if x1 >= src.W {
		x1 = src.W - 1
	}
	if y1 >= src.H {
		y1 = src.H - 1
	}
	// Raw index arithmetic like the release-build library code:
	// base + y*stride + x with no bounds assertion. A corrupted x0/y0
	// faults with a runtime error — the segmentation-fault analogue.
	p00 := float64(m.Pix(src.Pix[y0*src.W+x0]))
	p10 := float64(src.Pix[y0*src.W+x1])
	p01 := float64(src.Pix[y1*src.W+x0])
	p11 := float64(src.Pix[y1*src.W+x1])
	fx := x - math.Floor(x)
	fy := y - math.Floor(y)
	top := p00 + fx*(p10-p00)
	bot := p01 + fx*(p11-p01)
	return imgproc.SaturateUint8(top + fy*(bot-top)), true
}

// WarpPerspective is the standalone hot function: it warps src through
// h into a dstW x dstH image, with destination pixel (x, y) sampling
// source location h^-1(x, y). This is the exact shape of the paper's
// WP toy benchmark (image + matrix in, image out). s is any
// probe.Sink; pass probe.Nop{} for an uninstrumented warp (nil is
// normalized).
func WarpPerspective(src *imgproc.Gray, h geom.Homography, dstW, dstH int, s probe.Sink) (*imgproc.Gray, error) {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return warpPerspective(src, h, dstW, dstH, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return warpPerspective(src, h, dstW, dstH, m)
	}
	return warpPerspective(src, h, dstW, dstH, s)
}

func warpPerspective[S probe.Sink](src *imgproc.Gray, h geom.Homography, dstW, dstH int, m S) (*imgproc.Gray, error) {
	defer m.Enter(probe.RWarpInvoker)()
	inv, err := h.Inverse()
	if err != nil {
		return nil, err
	}
	dst := imgproc.NewGray(dstW, dstH)
	hh := m.Cnt(dstH)
	ww := m.Cnt(dstW)
	// Unlike WarpOntoCanvas, the inner-loop bound ww here is tapped: a
	// corrupted width must keep the original per-pixel semantics (it
	// may hang or fault exactly as the reference loop does), so the
	// scanline kernel only engages when the tapped bound matches the
	// real width its column cache was sized for.
	fast := fastpath.Enabled() && ww == dstW
	var proj scanProjector
	if fast {
		cols := getFloats(3*dstW, false)
		defer putFloats(cols)
		proj.init(inv, 0, dstW, cols)
	}
	if _, clean := any(m).(probe.Nop); clean && fast {
		warpDstClean(src, &proj, dst, hh)
		return dst, nil
	}
	for y := 0; y < hh; y++ {
		m.Ops(probe.OpFloat, uint64(ww)*24)
		m.Ops(probe.OpLoad, uint64(ww)*4)
		m.Ops(probe.OpStore, uint64(ww))
		rowBase := m.Idx(y * dstW)
		if fast {
			proj.setRow(float64(y))
		}
		for x := 0; x < ww; x++ {
			var spX, spY float64
			if fast {
				spX, spY = proj.at(x)
			} else {
				sp := inv.Apply(geom.Pt{X: float64(x), Y: float64(y)})
				spX, spY = sp.X, sp.Y
			}
			sx := m.F64(spX)
			sy := m.F64(spY)
			v, ok := remapBilinear(src, sx, sy, m)
			if !ok {
				continue
			}
			dst.Pix[m.Idx(rowBase+x)] = v
		}
	}
	return dst, nil
}

// warpDstClean is warpPerspective's uninstrumented pixel loop, the
// same hand-inlined bilinear kernel as warpStage1Clean but writing
// straight into the destination image.
func warpDstClean(src *imgproc.Gray, proj *scanProjector, dst *imgproc.Gray, rows int) {
	forEachBand(rows, func(_, lo, hi int) {
		warpDstBand(src, *proj, dst, lo, hi)
	})
}

// warpDstBand renders destination rows [y0, y1); proj is copied per
// band because setRow mutates the row products.
func warpDstBand(src *imgproc.Gray, proj scanProjector, dst *imgproc.Gray, y0, y1 int) {
	fw := float64(src.W - 1)
	fh := float64(src.H - 1)
	for y := y0; y < y1; y++ {
		rowBase := y * dst.W
		proj.setRow(float64(y))
		for x := 0; x < dst.W; x++ {
			sx, sy := proj.at(x)
			if math.IsNaN(sx) || math.IsNaN(sy) || sx < 0 || sy < 0 || sx > fw || sy > fh {
				continue
			}
			x0 := int(sx)
			y0 := int(sy)
			x1 := x0 + 1
			y1 := y0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			if y1 >= src.H {
				y1 = src.H - 1
			}
			p00 := float64(src.Pix[y0*src.W+x0])
			p10 := float64(src.Pix[y0*src.W+x1])
			p01 := float64(src.Pix[y1*src.W+x0])
			p11 := float64(src.Pix[y1*src.W+x1])
			fx := sx - math.Floor(sx)
			fy := sy - math.Floor(sy)
			top := p00 + fx*(p10-p00)
			bot := p01 + fx*(p11-p01)
			dst.Pix[rowBase+x] = imgproc.SaturateUint8(top + fy*(bot-top))
		}
	}
}
