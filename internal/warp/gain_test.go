package warp

import (
	"testing"

	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
)

func TestGainCompensationBrightensDimFrame(t *testing.T) {
	// First frame at intensity 180, second (overlapping) at 90: with
	// compensation the second frame is scaled toward the first, so the
	// non-overlap area it contributes is brighter than 90.
	a := imgproc.NewGray(20, 20)
	a.Fill(180)
	b := imgproc.NewGray(20, 20)
	b.Fill(90)

	run := func(comp bool) uint8 {
		c := NewCanvas(Bounds{0, 0, 30, 20})
		c.GainCompensation = comp
		if _, err := WarpOntoCanvas(a, geom.Identity(), c, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := WarpOntoCanvas(b, geom.Translation(10, 0), c, nil); err != nil {
			t.Fatal(err)
		}
		return c.Resolve(nil).At(27, 10) // area only frame b covers
	}
	plain := run(false)
	comp := run(true)
	if plain != 90 {
		t.Fatalf("uncompensated intensity = %d, want 90", plain)
	}
	if comp <= plain {
		t.Errorf("compensated intensity = %d, want > %d", comp, plain)
	}
	// Gain is clamped at MaxGain: 90*1.5 = 135.
	if comp > 136 {
		t.Errorf("compensated intensity = %d exceeds the gain clamp", comp)
	}
}

func TestGainCompensationIdentityWhenMatched(t *testing.T) {
	// Equal-exposure frames: gain ~1, output unchanged.
	a := imgproc.NewGray(20, 20)
	a.Fill(120)
	c := NewCanvas(Bounds{0, 0, 30, 20})
	c.GainCompensation = true
	if _, err := WarpOntoCanvas(a, geom.Identity(), c, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := WarpOntoCanvas(a, geom.Translation(10, 0), c, nil); err != nil {
		t.Fatal(err)
	}
	out := c.Resolve(nil)
	for _, x := range []int{5, 15, 27} {
		if v := out.At(x, 10); v < 119 || v > 121 {
			t.Errorf("pixel at x=%d is %d, want ~120", x, v)
		}
	}
}

func TestGainSkippedWithoutOverlap(t *testing.T) {
	// A frame landing on untouched canvas has no overlap to estimate
	// from: gain must stay 1.
	a := imgproc.NewGray(10, 10)
	a.Fill(60)
	c := NewCanvas(Bounds{0, 0, 10, 10})
	c.GainCompensation = true
	if _, err := WarpOntoCanvas(a, geom.Identity(), c, nil); err != nil {
		t.Fatal(err)
	}
	if v := c.Resolve(nil).At(5, 5); v != 60 {
		t.Errorf("no-overlap frame scaled: %d", v)
	}
}
