// Row-band tiling for the suffix kernels. The warp/composite loops
// write disjoint output rows, so partitioning the row range into
// contiguous bands and running the bands on goroutines changes nothing
// observable: every band computes exactly the values the sequential
// loop would, into locations no other band touches, and integer
// reductions (pixels written) are summed over bands in index order.
package warp

import (
	"runtime"
	"sync"

	"vsresil/internal/fastpath"
)

// minBandRows is the smallest band worth a goroutine; below roughly
// this many scanlines the spawn/join overhead exceeds the kernel work.
const minBandRows = 32

// bandCount returns how many row bands [0, rows) is split into:
// GOMAXPROCS-bounded when the tiling gate is on and the kernel is tall
// enough to amortize goroutines, else 1 (purely sequential).
func bandCount(rows int) int {
	if !fastpath.Tiling() {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > rows/minBandRows {
		n = rows / minBandRows
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forEachBand partitions [0, rows) into bandCount contiguous bands and
// runs fn(band, lo, hi) for each; bands run concurrently when there is
// more than one. The partition boundaries (b*rows/n) depend only on
// rows and the band count, and the bands are disjoint and cover the
// range, so a kernel whose bands write disjoint rows produces
// byte-identical output for any band count including one.
func forEachBand(rows int, fn func(band, lo, hi int)) {
	n := bandCount(rows)
	if n <= 1 {
		if rows > 0 {
			fn(0, 0, rows)
		}
		return
	}
	var wg sync.WaitGroup
	for b := 0; b < n; b++ {
		lo, hi := b*rows/n, (b+1)*rows/n
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			fn(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}
