// Scanline projection kernel and per-trial scratch pools. The warp
// loops are the campaign hot path (54.4% of VS runtime in the paper's
// Fig 8 profile), so this file trades the per-pixel 3x3 matrix-vector
// product for cached column/row products and recycles the per-call
// float buffers — without changing a single observable value: the
// kernel is bit-identical to geom.Homography.Apply and the pools hand
// back buffers whose readable state matches a fresh allocation.
package warp

import (
	"math"
	"sync"

	"vsresil/internal/geom"
)

// scanProjector evaluates inv.Apply(Pt{gx, fy}) over a run of columns
// with the per-column multiplies hoisted out of the pixel loop. Go
// evaluates h[0]*x + h[1]*y + h[2] as fl(fl(fl(h0·x)+fl(h1·y))+h2),
// each operation individually rounded; caching colX[tx] = fl(h0·gx)
// once per call and rowX = fl(h1·fy) once per row, then summing in the
// same association order, reproduces Apply bit for bit while cutting
// the per-pixel work from 6 multiplies + 6 adds to 6 adds. (True
// incremental accumulation along the scanline would reassociate the
// sums and break bit-exactness; the equivalence property test in
// scan_test.go is the arbiter on every platform.)
type scanProjector struct {
	inv              geom.Homography
	colX, colY, colW []float64
	rowX, rowY, rowW float64
}

// init caches the column products for tw columns starting at global
// x = minX, carving its three arrays out of cols (len >= 3*tw).
func (p *scanProjector) init(inv geom.Homography, minX, tw int, cols []float64) {
	p.inv = inv
	p.colX = cols[0*tw : 1*tw : 1*tw]
	p.colY = cols[1*tw : 2*tw : 2*tw]
	p.colW = cols[2*tw : 3*tw : 3*tw]
	for tx := 0; tx < tw; tx++ {
		gx := float64(minX + tx)
		p.colX[tx] = inv[0] * gx
		p.colY[tx] = inv[3] * gx
		p.colW[tx] = inv[6] * gx
	}
}

// setRow caches the row products for the scanline at source y = fy.
func (p *scanProjector) setRow(fy float64) {
	p.rowX = p.inv[1] * fy
	p.rowY = p.inv[4] * fy
	p.rowW = p.inv[7] * fy
}

// at returns inv.Apply(Pt{minX+tx, fy}).X/.Y for the current row,
// mirroring Apply's expression order and its w clamp exactly.
func (p *scanProjector) at(tx int) (float64, float64) {
	w := p.colW[tx] + p.rowW + p.inv[8]
	if math.Abs(w) < 1e-12 {
		w = math.Copysign(1e-12, w)
		if w == 0 {
			w = 1e-12
		}
	}
	return (p.colX[tx] + p.rowX + p.inv[2]) / w,
		(p.colY[tx] + p.rowY + p.inv[5]) / w
}

// maxPooledElems caps the size of pooled scratch. A fault-corrupted
// transform can demand a near-MaxCanvasPixels canvas once; pooling a
// buffer that large would pin hundreds of megabytes for the rest of
// the campaign, so oversized buffers are left to the GC.
const maxPooledElems = 1 << 21

var (
	floatPool sync.Pool // *[]float64
	boolPool  sync.Pool // *[]bool
)

// getFloats returns a len-n float64 scratch slice. When zero is set
// the contents are cleared (as a fresh make would be); callers that
// only read elements they wrote this call skip the clear.
func getFloats(n int, zero bool) []float64 {
	if v, _ := floatPool.Get().(*[]float64); v != nil && cap(*v) >= n {
		s := (*v)[:n]
		if zero {
			for i := range s {
				s[i] = 0
			}
		}
		return s
	}
	return make([]float64, n)
}

// putFloats recycles a scratch slice obtained from getFloats.
func putFloats(s []float64) {
	if cap(s) == 0 || cap(s) > maxPooledElems {
		return
	}
	s = s[:0]
	floatPool.Put(&s)
}

// getBools returns a cleared len-n bool scratch slice.
func getBools(n int) []bool {
	if v, _ := boolPool.Get().(*[]bool); v != nil && cap(*v) >= n {
		s := (*v)[:n]
		for i := range s {
			s[i] = false
		}
		return s
	}
	return make([]bool, n)
}

// putBools recycles a scratch slice obtained from getBools.
func putBools(s []bool) {
	if cap(s) == 0 || cap(s) > maxPooledElems {
		return
	}
	s = s[:0]
	boolPool.Put(&s)
}
