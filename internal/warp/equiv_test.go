package warp_test

import (
	"bytes"
	"testing"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
	"vsresil/internal/warp"
)

// machineCounters snapshots every observable counter of a fault
// machine: total steps, tap-space sizes per class, and the full
// per-region per-class op-count matrix. The scanline fast path must
// leave all of them bit-identical to the per-pixel reference.
type machineCounters struct {
	steps, gpr, fpr uint64
	regionGPR       [fault.NumRegions]uint64
	regionFPR       [fault.NumRegions]uint64
	ops             [fault.NumRegions][fault.NumOpClasses]uint64
}

func snapshot(m *fault.Machine) machineCounters {
	c := machineCounters{steps: m.Steps(), gpr: m.GPRTaps(), fpr: m.FPRTaps()}
	for r := fault.Region(0); r < fault.NumRegions; r++ {
		c.regionGPR[r] = m.RegionTaps(fault.GPR, r)
		c.regionFPR[r] = m.RegionTaps(fault.FPR, r)
		for oc := fault.OpClass(0); oc < fault.NumOpClasses; oc++ {
			c.ops[r][oc] = m.OpCount(r, oc)
		}
	}
	return c
}

// randomHomography perturbs the identity into a well-conditioned
// projective transform: mild affine distortion, a translation, and a
// small perspective term (large ones project the source off-canvas).
func randomHomography(rng *stats.RNG) geom.Homography {
	return geom.Homography{
		1 + 0.2*(rng.Float64()-0.5), 0.2 * (rng.Float64() - 0.5), 16 * (rng.Float64() - 0.5),
		0.2 * (rng.Float64() - 0.5), 1 + 0.2*(rng.Float64()-0.5), 16 * (rng.Float64() - 0.5),
		0.002 * (rng.Float64() - 0.5), 0.002 * (rng.Float64() - 0.5), 1,
	}
}

func randomGray(rng *stats.RNG, w, h int) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Uint64())
	}
	return g
}

// TestScanlineWarpEquivalence is the tentpole's bit-exactness guard:
// over random homographies, the scanline kernel must produce
// pixel-identical warps AND an identical tap/op stream to the
// per-pixel inv.Apply reference it replaced.
func TestScanlineWarpEquivalence(t *testing.T) {
	defer fastpath.SetEnabled(true)
	rng := stats.NewRNG(0xE0_1D)

	for trial := 0; trial < 30; trial++ {
		src := randomGray(rng, 24+rng.Intn(40), 24+rng.Intn(40))
		h := randomHomography(rng)
		if _, err := h.Inverse(); err != nil {
			continue
		}
		mode := warp.BlendOverwrite
		if trial%2 == 1 {
			mode = warp.BlendFeather
		}

		type out struct {
			canvasPix []uint8
			warpPix   []uint8
			counters  machineCounters
		}
		run := func(enabled bool) out {
			fastpath.SetEnabled(enabled)
			m := fault.New()
			bounds := warp.ProjectBounds(h, src.W, src.H)
			c := warp.NewCanvasMode(bounds, mode)
			if _, err := warp.WarpOntoCanvas(src, h, c, m); err != nil {
				t.Fatalf("trial %d: WarpOntoCanvas: %v", trial, err)
			}
			img := c.Resolve(m)
			wp, err := warp.WarpPerspective(src, h, src.W+8, src.H+8, m)
			if err != nil {
				t.Fatalf("trial %d: WarpPerspective: %v", trial, err)
			}
			return out{
				canvasPix: append([]uint8(nil), img.Pix...),
				warpPix:   append([]uint8(nil), wp.Pix...),
				counters:  snapshot(m),
			}
		}

		fast := run(true)
		ref := run(false)
		if !bytes.Equal(fast.canvasPix, ref.canvasPix) {
			t.Errorf("trial %d (h=%v): canvas pixels differ between scanline and reference", trial, h)
		}
		if !bytes.Equal(fast.warpPix, ref.warpPix) {
			t.Errorf("trial %d (h=%v): WarpPerspective pixels differ between scanline and reference", trial, h)
		}
		if fast.counters != ref.counters {
			t.Errorf("trial %d (h=%v): tap/op counters differ:\n fast %+v\n  ref %+v", trial, h, fast.counters, ref.counters)
		}
	}
}

// TestInertTiledWarpEquivalence guards the tiled inert kernels: with
// tiling on, a machine that cannot be hit inside the warp (here: a
// golden machine) runs the tap-free banded kernels and accounts its
// taps and op counts post hoc from the closed-form spans. That
// accounting must be exact — same pixels, same step count, same
// per-region tap spaces, same op matrix — as the instrumented loop it
// replaces, for every blend mode and for the resolve pass, otherwise a
// later trial resumed from such a golden capture would bucket against
// drifted checkpoint counters.
func TestInertTiledWarpEquivalence(t *testing.T) {
	defer fastpath.SetTiling(true)
	rng := stats.NewRNG(0x71_1ED)

	for trial := 0; trial < 30; trial++ {
		src := randomGray(rng, 24+rng.Intn(40), 24+rng.Intn(40))
		h := randomHomography(rng)
		if _, err := h.Inverse(); err != nil {
			continue
		}
		mode := warp.BlendOverwrite
		if trial%2 == 1 {
			mode = warp.BlendFeather
		}

		run := func(tiled bool) ([]uint8, machineCounters) {
			fastpath.SetTiling(tiled)
			m := fault.New()
			bounds := warp.ProjectBounds(h, src.W, src.H)
			c := warp.NewCanvasMode(bounds, mode)
			if _, err := warp.WarpOntoCanvas(src, h, c, m); err != nil {
				t.Fatalf("trial %d: WarpOntoCanvas: %v", trial, err)
			}
			img := c.Resolve(m)
			return append([]uint8(nil), img.Pix...), snapshot(m)
		}

		tiledPix, tiledCtr := run(true)
		refPix, refCtr := run(false)
		if !bytes.Equal(tiledPix, refPix) {
			t.Errorf("trial %d (h=%v): resolved pixels differ between tiled inert and instrumented", trial, h)
		}
		if tiledCtr != refCtr {
			t.Errorf("trial %d (h=%v): inert tap accounting drifted:\n tiled %+v\n   ref %+v", trial, h, tiledCtr, refCtr)
		}
	}
}
