// Package profilesim reproduces the Fig 8 execution profile: the
// distribution of execution time over the application's functions,
// which the paper extracts with Linux perf. Here the same breakdown
// comes from the per-region operation accounting of an instrumented
// run — any probe.Counters, a campaign machine or a live probe.Meter —
// weighted by the energy model's per-class CPIs.
//
// The paper's headline numbers: ~68% of execution time inside OpenCV
// library functions, with a single function — WarpPerspectiveInvoker —
// consuming 54.4% on its own, which motivates the WP hot-function case
// study (§V-C).
package profilesim

import (
	"sort"

	"vsresil/internal/energy"
	"vsresil/internal/probe"
)

// FunctionShare is one row of the profile.
type FunctionShare struct {
	Region   probe.Region
	Cycles   float64
	Fraction float64
}

// Profile summarizes a run's execution-time distribution.
type Profile struct {
	// ByFunction lists every region's share, largest first.
	ByFunction []FunctionShare
	// LibraryFraction is the share spent in the vision-library
	// regions (the paper's "OpenCV" share, ~68%).
	LibraryFraction float64
	// WarpFraction is the share of WarpPerspectiveInvoker +
	// remapBilinear (the paper's 54.4% hot function).
	WarpFraction float64
	// TotalCycles is the denominator.
	TotalCycles float64
}

// libraryRegions are the regions that correspond to vision-library
// code in the original binary.
var libraryRegions = map[probe.Region]bool{
	probe.RFASTDetect:    true,
	probe.RORBDescribe:   true,
	probe.RMatch:         true,
	probe.RRANSAC:        true,
	probe.RWarpInvoker:   true,
	probe.RRemapBilinear: true,
	probe.RBlend:         true,
}

// Collect builds the execution profile from a completed run's op
// counters (a campaign machine or a live probe.Meter).
func Collect(cs probe.Counters, model energy.Model) Profile {
	var p Profile
	for r := probe.Region(0); r < probe.NumRegions; r++ {
		cycles := model.RegionCycles(cs, r)
		if cycles == 0 {
			continue
		}
		p.ByFunction = append(p.ByFunction, FunctionShare{Region: r, Cycles: cycles})
		p.TotalCycles += cycles
	}
	if p.TotalCycles == 0 {
		return p
	}
	for i := range p.ByFunction {
		f := &p.ByFunction[i]
		f.Fraction = f.Cycles / p.TotalCycles
		if libraryRegions[f.Region] {
			p.LibraryFraction += f.Fraction
		}
		if f.Region == probe.RWarpInvoker || f.Region == probe.RRemapBilinear {
			p.WarpFraction += f.Fraction
		}
	}
	sort.Slice(p.ByFunction, func(i, j int) bool {
		if p.ByFunction[i].Cycles != p.ByFunction[j].Cycles {
			return p.ByFunction[i].Cycles > p.ByFunction[j].Cycles
		}
		return p.ByFunction[i].Region < p.ByFunction[j].Region
	})
	return p
}
