package profilesim

import (
	"testing"

	"vsresil/internal/energy"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func TestCollectEmpty(t *testing.T) {
	p := Collect(fault.New(), energy.DefaultModel())
	if p.TotalCycles != 0 || len(p.ByFunction) != 0 {
		t.Errorf("empty profile: %+v", p)
	}
}

func TestCollectFractionsSumToOne(t *testing.T) {
	m := fault.New()
	m.Ops(fault.OpInt, 100)
	restore := m.Enter(fault.RWarpInvoker)
	m.Ops(fault.OpFloat, 500)
	restore()
	p := Collect(m, energy.DefaultModel())
	var sum float64
	for _, f := range p.ByFunction {
		sum += f.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v", sum)
	}
	// Sorted descending.
	for i := 1; i < len(p.ByFunction); i++ {
		if p.ByFunction[i].Cycles > p.ByFunction[i-1].Cycles {
			t.Error("profile not sorted by cycles")
		}
	}
}

func TestVSProfileShape(t *testing.T) {
	// The Fig 8 shape: the warp kernels dominate, and the
	// vision-library share is the clear majority of execution time.
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	m := fault.New()
	if _, err := app.Run(frames, m); err != nil {
		t.Fatalf("run: %v", err)
	}
	prof := Collect(m, energy.DefaultModel())
	if prof.TotalCycles == 0 {
		t.Fatal("no cycles accounted")
	}
	if prof.WarpFraction < 0.25 {
		t.Errorf("warp fraction = %v, want the dominant share (paper: 54.4%%)", prof.WarpFraction)
	}
	if prof.LibraryFraction < 0.45 {
		t.Errorf("library fraction = %v, want the majority (paper: ~68%%)", prof.LibraryFraction)
	}
	if prof.LibraryFraction <= prof.WarpFraction-1e-9 {
		t.Error("library share must include the warp share")
	}
}
