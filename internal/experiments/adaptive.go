package experiments

import (
	"context"
	"fmt"
	"io"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// AdaptiveConvergenceResult traces the confidence-driven planner's
// convergence on the baseline VS against the fixed-budget design the
// paper's methodology implies (every stratum sampled to the same
// worst-case count — tens of thousands of injections at paper
// precision). The figure shows where the adaptive campaign stops and
// what the fixed design would have spent for the same guarantee.
type AdaptiveConvergenceResult struct {
	// Rounds is the per-round convergence trace.
	Rounds []AdaptiveRoundPoint
	// Strata is the number of (region, bit-group) strata.
	Strata int
	// Trials is the adaptive campaign's total allocation.
	Trials int
	// FixedBudget is the fixed design's cost at the same
	// precision/confidence.
	FixedBudget int
	// Converged reports whether every stratum reached the target.
	Converged bool
	// Rates is the population-weighted whole-program estimate.
	Rates [fault.NumOutcomes]float64
}

// AdaptiveRoundPoint is one round of the convergence trace.
type AdaptiveRoundPoint struct {
	// Trials is the cumulative allocation after the round.
	Trials int
	// MaxHalfWidth is the widest per-stratum half-width after the round.
	MaxHalfWidth float64
	// StrataDone counts strata at the target.
	StrataDone int
}

// AdaptiveConvergence runs the adaptive GPR campaign on the baseline VS
// and records the trace.
func AdaptiveConvergence(ctx context.Context, o Options) (*AdaptiveConvergenceResult, error) {
	o = o.withDefaults()
	seq := virat.Input1(o.Preset)
	out := &AdaptiveConvergenceResult{}
	res, err := runner.RunAdaptive(ctx, campaign.Spec{
		Workload: campaign.VS(vs.AlgVS, seq, o.Seed),
		Class:    fault.GPR,
		Region:   fault.RAny,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Adaptive: &campaign.AdaptiveSpec{
			Precision:  o.Precision,
			Confidence: o.Confidence,
			OnRound: func(st campaign.RoundStatus) {
				out.Rounds = append(out.Rounds, AdaptiveRoundPoint{
					Trials:       st.Trials,
					MaxHalfWidth: st.MaxHalfWidth,
					StrataDone:   st.StrataDone,
				})
			},
		},
	}, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive campaign: %w", err)
	}
	out.Strata = len(res.Strata)
	out.Trials = res.Trials
	out.FixedBudget = res.FixedBudget
	out.Converged = res.Converged
	out.Rates = res.Stratified.WeightedRates()
	return out, nil
}

// Write prints the convergence figure.
func (r *AdaptiveConvergenceResult) Write(w io.Writer, o Options) {
	o = o.withDefaults()
	writeHeader(w, "Ablation: adaptive trial allocation vs fixed budget (GPR, baseline VS, Input 1)", o)
	fmt.Fprintf(w, "target: half-width <= %.3f at %.0f%% confidence, %d strata\n",
		o.Precision, o.Confidence*100, r.Strata)
	fmt.Fprintf(w, "%6s %8s %12s %12s\n", "round", "trials", "max-hw", "strata-done")
	for i, pt := range r.Rounds {
		fmt.Fprintf(w, "%6d %8d %12.4f %9d/%d\n", i, pt.Trials, pt.MaxHalfWidth, pt.StrataDone, r.Strata)
	}
	status := "converged"
	if !r.Converged {
		status = "budget exhausted"
	}
	fmt.Fprintf(w, "adaptive: %d trials (%s)\n", r.Trials, status)
	fmt.Fprintf(w, "fixed design: %d trials for the same guarantee\n", r.FixedBudget)
	if r.Trials > 0 {
		fmt.Fprintf(w, "savings: %.1fx\n", float64(r.FixedBudget)/float64(r.Trials))
	}
	fmt.Fprintf(w, "weighted rates: Mask %.3f  Crash %.3f  SDC %.3f  Hang %.3f\n",
		r.Rates[fault.OutcomeMask], r.Rates[fault.OutcomeCrash],
		r.Rates[fault.OutcomeSDC], r.Rates[fault.OutcomeHang])
	fmt.Fprintln(w, "expectation: near-pure strata converge in the first rounds; the budget concentrates on mixed-rate strata")
}
