package experiments

import (
	"context"
	"fmt"
	"io"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// Fig11bResult reproduces the hot-function case study (Fig 11b):
// outcome rates of GPR injections restricted to the two hot functions
// (warpPerspectiveInvoker and remapBilinear), observed at the end of
// the standalone WP toy benchmark vs the full VS application.
type Fig11bResult struct {
	// Rows are keyed "app/function".
	Rows []Fig11bRow
}

// Fig11bRow is one bar group of Fig 11b.
type Fig11bRow struct {
	App      string
	Function fault.Region
	Rates    [fault.NumOutcomes]float64
}

// Fig11b runs region-scoped campaigns on WP and on VS.
func Fig11b(ctx context.Context, o Options) (*Fig11bResult, error) {
	o = o.withDefaults()
	out := &Fig11bResult{}
	regions := []fault.Region{fault.RWarpInvoker, fault.RRemapBilinear}

	// Standalone WP benchmark. One golden capture serves both
	// region-scoped campaigns — the golden run is fault-free, so it is
	// independent of the injection region; the engine's cache shares
	// it.
	wpWorkload := campaign.WP(o.Preset)
	for _, region := range regions {
		res, err := runner.Run(ctx, campaign.Spec{
			Workload: wpWorkload,
			Class:    fault.GPR,
			Region:   region,
			Trials:   o.Trials,
			Seed:     o.Seed + uint64(region),
			Workers:  o.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: WP campaign %v: %w", region, err)
		}
		out.Rows = append(out.Rows, Fig11bRow{App: "WP", Function: region, Rates: res.Fault.Rates()})
	}

	// Full VS application, same functions.
	seq := virat.Input1(o.Preset)
	for _, region := range regions {
		res, err := campaignFor(ctx, o, vs.AlgVS, seq, fault.GPR, region, o.Trials, false)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig11bRow{App: "VS", Function: region, Rates: res.Rates()})
	}
	return out, nil
}

// MaskRate returns the Mask rate for an app/function row, or -1 when
// absent.
func (r *Fig11bResult) MaskRate(app string, fn fault.Region) float64 {
	for _, row := range r.Rows {
		if row.App == app && row.Function == fn {
			return row.Rates[fault.OutcomeMask]
		}
	}
	return -1
}

// SDCRate returns the SDC rate for an app/function row, or -1.
func (r *Fig11bResult) SDCRate(app string, fn fault.Region) float64 {
	for _, row := range r.Rows {
		if row.App == app && row.Function == fn {
			return row.Rates[fault.OutcomeSDC]
		}
	}
	return -1
}

// Write prints the comparison table.
func (r *Fig11bResult) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 11b: hot-function injections — standalone WP vs full VS", o)
	fmt.Fprintf(w, "%-4s %-24s %8s %8s %8s %8s\n", "app", "function", "Mask", "Crash", "SDC", "Hang")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4s %-24s %8.3f %8.3f %8.3f %8.3f\n",
			row.App, row.Function,
			row.Rates[fault.OutcomeMask], row.Rates[fault.OutcomeCrash],
			row.Rates[fault.OutcomeSDC], row.Rates[fault.OutcomeHang])
	}
	fmt.Fprintln(w, "paper shape: the full VS masks more of the same-function faults than standalone WP")
	fmt.Fprintln(w, "(compositional masking: later frames stitch over corrupted warp output)")
}
