package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"vsresil/internal/virat"
)

// TestMatrixShape runs a reduced scenario × summarizer matrix end to
// end through the campaign engine: every cell completes its trials,
// rates are well-formed, and the report names each cell.
func TestMatrixShape(t *testing.T) {
	o := tinyOptions()
	o.Preset = virat.TestScale()
	o.Preset.Frames = 8
	o.Trials = 60
	res, err := Matrix(context.Background(), o)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if want := len(MatrixCells()); len(res.Cells) != want {
		t.Fatalf("%d cells, want %d", len(res.Cells), want)
	}
	if len(res.Cells) < 3*2 {
		t.Fatalf("matrix smaller than 3 scenarios x 2 summarizers: %d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Completed != o.Trials {
			t.Errorf("cell %s completed %d/%d", c.Cell, c.Completed, o.Trials)
		}
		var sum float64
		for _, r := range c.Rates {
			sum += r
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("cell %s rates sum to %v", c.Cell, sum)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, o)
	out := buf.String()
	for _, label := range []string{"identity/vs/VS", "fog/storyboard/VS", "blocking+jitter/vs/VS"} {
		if !strings.Contains(out, label) {
			t.Errorf("report missing cell %s", label)
		}
	}
}

// TestMatrixRegistered ensures the matrix is reachable by name from
// cmd/experiments and vsd experiment jobs, and stays out of "run all".
func TestMatrixRegistered(t *testing.T) {
	e, err := Lookup("matrix")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Ablation {
		t.Error("matrix should be opt-in (Ablation), not part of run-all")
	}
	if e.Run == nil {
		t.Error("matrix has no runner")
	}
}
