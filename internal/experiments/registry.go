package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Experiment binds a figure name to its runner. The runner regenerates
// the figure's data at the given scale and prints the result to w.
type Experiment struct {
	Name string
	// Ablation marks this reproduction's opt-in extras — modeling-knob
	// studies and the scenario × summarizer matrix — which "run all"
	// skips because they are not the paper's figures.
	Ablation bool
	Run      func(ctx context.Context, o Options, w io.Writer) error
}

// Registry returns every experiment in presentation order. Both
// cmd/experiments and the vsd service dispatch through it, so a figure
// added here is immediately reachable from the CLI and the job API.
func Registry() []Experiment {
	return []Experiment{
		{Name: "5", Run: func(_ context.Context, o Options, w io.Writer) error {
			r, err := Fig5(o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "6", Run: func(_ context.Context, o Options, w io.Writer) error {
			r, err := Fig6(o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "8", Run: func(_ context.Context, o Options, w io.Writer) error {
			r, err := Fig8(o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "9", Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Fig9(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "10", Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Fig10(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "11a", Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Fig11a(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "11b", Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Fig11b(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "12", Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Fig12(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "13", Run: func(_ context.Context, o Options, w io.Writer) error {
			r, err := Fig13(o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "matrix", Ablation: true, Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := Matrix(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "adaptive", Ablation: true, Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := AdaptiveConvergence(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "ablation-window", Ablation: true, Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := AblationWindow(ctx, o, nil)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
		{Name: "ablation-blend", Ablation: true, Run: func(ctx context.Context, o Options, w io.Writer) error {
			r, err := AblationBlend(ctx, o)
			if err != nil {
				return err
			}
			r.Write(w, o)
			return nil
		}},
	}
}

// Lookup finds an experiment by figure name (case-insensitive).
func Lookup(name string) (Experiment, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.Name, name) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown figure %q", name)
}
