package experiments

import (
	"context"
	"fmt"
	"io"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
	"vsresil/internal/warp"
)

// AblationWindowResult studies the fault model's one free parameter:
// the register-liveness window (DESIGN.md §4). The paper's AFI works
// on real hardware where liveness is physical; our reproduction models
// it, so this ablation documents how sensitive the headline outcome
// rates are to the chosen window.
type AblationWindowResult struct {
	// Windows holds the tested GPR window sizes.
	Windows []uint64
	// Rates[i] are the outcome rates at Windows[i].
	Rates [][fault.NumOutcomes]float64
}

// AblationWindow sweeps the GPR liveness window on the baseline VS.
func AblationWindow(ctx context.Context, o Options, windows []uint64) (*AblationWindowResult, error) {
	o = o.withDefaults()
	if len(windows) == 0 {
		windows = []uint64{8, 32, 96, 256, 1024}
	}
	seq := virat.Input1(o.Preset)
	workload := campaign.VS(vs.AlgVS, seq, o.Seed)

	out := &AblationWindowResult{Windows: windows}
	for _, w := range windows {
		// The golden run is window-independent, so the sweep shares
		// one capture through the engine's cache.
		res, err := runner.Run(ctx, campaign.Spec{
			Workload: workload,
			Class:    fault.GPR,
			Region:   fault.RAny,
			Trials:   o.Trials,
			Window:   w,
			Seed:     o.Seed,
			Workers:  o.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: window %d: %w", w, err)
		}
		out.Rates = append(out.Rates, res.Fault.Rates())
	}
	return out, nil
}

// Write prints the sweep.
func (r *AblationWindowResult) Write(w io.Writer, o Options) {
	writeHeader(w, "Ablation: GPR liveness-window sensitivity (baseline VS, Input 1)", o)
	fmt.Fprintf(w, "%8s %8s %8s %8s %8s\n", "window", "Mask", "Crash", "SDC", "Hang")
	for i, win := range r.Windows {
		rates := r.Rates[i]
		fmt.Fprintf(w, "%8d %8.3f %8.3f %8.3f %8.3f\n", win,
			rates[fault.OutcomeMask], rates[fault.OutcomeCrash],
			rates[fault.OutcomeSDC], rates[fault.OutcomeHang])
	}
	fmt.Fprintln(w, "expectation: masking falls monotonically as the window widens (more flips meet a live use)")
}

// AblationBlendResult compares the two compositing modes' effect on
// the hot-function resiliency profile — the compositional-masking
// design decision (DESIGN.md §4b). Injections are scoped to the warp
// kernels, where the compositing mode decides whether a corrupted
// output pixel can be stitched over (overwrite) or always bleeds into
// the average (feather).
type AblationBlendResult struct {
	// Overwrite and Feather are the GPR outcome rates under each mode.
	Overwrite, Feather [fault.NumOutcomes]float64
}

// AblationBlend runs warp-scoped GPR campaigns under both canvas
// blend modes.
func AblationBlend(ctx context.Context, o Options) (*AblationBlendResult, error) {
	o = o.withDefaults()
	seq := virat.Input1(o.Preset)
	frames := seq.Frames()

	runMode := func(mode warp.BlendMode, seedSalt uint64) ([fault.NumOutcomes]float64, error) {
		scfg := stitch.DefaultConfig()
		scfg.Blend = mode
		cfg := vs.DefaultConfig(vs.AlgVS)
		cfg.Seed = o.Seed
		cfg.Stitch = &scfg
		// The stitcher override changes the golden run, so the blend
		// mode is part of the workload's cache identity.
		key := fmt.Sprintf("vs-blend:%d|seed=%d|%s:%dx%dx%d",
			mode, o.Seed, seq.Name, len(frames), seq.FrameW, seq.FrameH)
		res, err := runner.Run(ctx, campaign.Spec{
			Workload: campaign.VSApp(cfg, frames, seq.Name, key),
			Class:    fault.GPR,
			Region:   fault.RWarpInvoker,
			Trials:   o.Trials,
			Seed:     o.Seed + seedSalt,
			Workers:  o.Workers,
		})
		if err != nil {
			return [fault.NumOutcomes]float64{}, err
		}
		return res.Fault.Rates(), nil
	}

	out := &AblationBlendResult{}
	var err error
	if out.Overwrite, err = runMode(warp.BlendOverwrite, 0); err != nil {
		return nil, fmt.Errorf("experiments: overwrite mode: %w", err)
	}
	if out.Feather, err = runMode(warp.BlendFeather, 0); err != nil {
		return nil, fmt.Errorf("experiments: feather mode: %w", err)
	}
	return out, nil
}

// Write prints the comparison.
func (r *AblationBlendResult) Write(w io.Writer, o Options) {
	writeHeader(w, "Ablation: canvas compositing mode (warp-scoped GPR faults)", o)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "blend", "Mask", "Crash", "SDC", "Hang")
	fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f\n", "overwrite",
		r.Overwrite[fault.OutcomeMask], r.Overwrite[fault.OutcomeCrash],
		r.Overwrite[fault.OutcomeSDC], r.Overwrite[fault.OutcomeHang])
	fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f\n", "feather",
		r.Feather[fault.OutcomeMask], r.Feather[fault.OutcomeCrash],
		r.Feather[fault.OutcomeSDC], r.Feather[fault.OutcomeHang])
	fmt.Fprintln(w, "expectation: feather averaging leaks corrupted pixels into the output (higher SDC, lower Mask)")
}
