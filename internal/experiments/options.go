// Package experiments regenerates every figure of the paper's
// evaluation (Figs 5, 6, 8, 9, 10, 11, 12, 13). Each experiment is a
// function that runs the required workloads/campaigns and returns a
// typed result that knows how to print itself as the rows/series the
// paper reports.
//
// The paper's absolute numbers came from an IBM POWER testbed and two
// VIRAT clips; this reproduction targets the *shape* of each result
// (who wins, by what rough factor, where curves sit) on the synthetic
// substrate, at a configurable scale.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"vsresil/internal/virat"
)

// Options scales and seeds an experiment run.
type Options struct {
	// Preset sizes the synthetic inputs.
	Preset virat.Preset
	// Trials is the number of injections per campaign (paper: 1000).
	Trials int
	// QualityTrials is the number of injections for the SDC-quality
	// study (paper: 5000).
	QualityTrials int
	// Seed drives every stochastic choice.
	Seed uint64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// Precision is the adaptive experiment's target per-stratum Wilson
	// half-width (0 = 0.05).
	Precision float64
	// Confidence is the adaptive experiment's interval level (0 = 0.95).
	Confidence float64
	// ImageDir receives the qualitative outputs of Figs 6 and 13
	// ("" = do not write image files).
	ImageDir string
}

// DefaultOptions returns a scale that exercises every experiment in
// minutes on a small machine.
func DefaultOptions() Options {
	p := virat.TestScale()
	p.Frames = 24
	return Options{
		Preset:        p,
		Trials:        400,
		QualityTrials: 1000,
		Seed:          1,
	}
}

// PaperOptions returns the paper's experiment sizes (1000 frames, 1000
// injections per campaign, 5000 for SDC quality). Expect long runtimes.
func PaperOptions() Options {
	return Options{
		Preset:        virat.PaperScale(),
		Trials:        1000,
		QualityTrials: 5000,
		Seed:          1,
	}
}

// ParseScale maps an experiment-scale name to Options,
// case-insensitively: "small" (or ""), "bench" or "paper". The
// experiments CLI and the vsd experiment jobs share this parser.
func ParseScale(name string) (Options, error) {
	switch strings.ToLower(name) {
	case "", "small":
		return DefaultOptions(), nil
	case "bench":
		o := DefaultOptions()
		o.Preset = virat.BenchScale()
		o.Trials = 1000
		o.QualityTrials = 2000
		return o, nil
	case "paper":
		return PaperOptions(), nil
	default:
		return Options{}, fmt.Errorf("experiments: unknown scale %q (want small, bench or paper)", name)
	}
}

func (o Options) withDefaults() Options {
	if o.Preset.Frames == 0 {
		o.Preset = DefaultOptions().Preset
	}
	if o.Trials <= 0 {
		o.Trials = DefaultOptions().Trials
	}
	if o.QualityTrials <= 0 {
		o.QualityTrials = DefaultOptions().QualityTrials
	}
	if o.Precision <= 0 {
		o.Precision = 0.05
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	return o
}

// writeHeader prints a uniform experiment banner.
func writeHeader(w io.Writer, title string, o Options) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "scale: %d frames %dx%d, seed %d\n",
		o.Preset.Frames, o.Preset.FrameW, o.Preset.FrameH, o.Seed)
}
