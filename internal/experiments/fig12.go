package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/quality"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// MaxReportedED is the largest ED plotted on the Fig 12 X axis.
const MaxReportedED = 40

// Fig12Series is one curve of Fig 12.
type Fig12Series struct {
	Input     string
	Algorithm vs.Algorithm
	// Baseline names the golden reference: "VS_golden" (panels a, b)
	// or "Approx_golden" (panels c, d).
	Baseline string
	Curve    quality.Curve
	SDCs     int
}

// Fig12Result reproduces Fig 12: cumulative ED distributions of the
// SDCs produced by each algorithm, measured against both the baseline
// VS golden output and the corresponding approximate golden output.
type Fig12Result struct {
	Series []Fig12Series
	// GoldenED records the ED of each Approx_golden vs VS_golden per
	// input — the curve-shift offset the paper discusses (e.g. VS_SM
	// golden at ED 37 for Input 1).
	GoldenED map[string]quality.ED
}

// Fig12 runs SDC-quality campaigns for every algorithm on both inputs.
func Fig12(ctx context.Context, o Options) (*Fig12Result, error) {
	o = o.withDefaults()
	out := &Fig12Result{GoldenED: make(map[string]quality.ED)}
	qcfg := quality.DefaultConfig()
	classifyPanoramas := func(g, f *stitch.Panorama, cfg quality.Config) quality.ED {
		return quality.ClassifyPlaced(g.Image, f.Image,
			g.Bounds.MinX, g.Bounds.MinY, f.Bounds.MinX, f.Bounds.MinY, cfg)
	}
	for _, seq := range virat.Inputs(o.Preset) {
		// Golden primaries per algorithm, kept with their panorama
		// origins so cross-run comparisons stay registered.
		goldens := make(map[vs.Algorithm]*stitch.Panorama)
		for _, alg := range vs.Algorithms() {
			res, _, err := goldenRun(alg, seq, o.Seed)
			if err != nil {
				return nil, err
			}
			goldens[alg] = res.Primary()
			if alg != vs.AlgVS {
				key := seq.Name + "/" + alg.String()
				out.GoldenED[key] = classifyPanoramas(goldens[vs.AlgVS], goldens[alg], qcfg)
			}
		}
		for _, alg := range vs.Algorithms() {
			res, err := campaignFor(ctx, o, alg, seq, fault.GPR, fault.RAny, o.QualityTrials, true)
			if err != nil {
				return nil, err
			}
			var vsEDs, approxEDs []quality.ED
			for _, enc := range res.SDCOutputs() {
				faulty, fox, foy, err := stitch.DecodePrimary(enc)
				if err != nil {
					// A corrupted encoding that still differed from
					// golden: maximally corrupt output.
					faulty = nil
				}
				vsG := goldens[vs.AlgVS]
				ownG := goldens[alg]
				vsEDs = append(vsEDs, quality.ClassifyPlaced(
					vsG.Image, faulty, vsG.Bounds.MinX, vsG.Bounds.MinY, fox, foy, qcfg))
				approxEDs = append(approxEDs, quality.ClassifyPlaced(
					ownG.Image, faulty, ownG.Bounds.MinX, ownG.Bounds.MinY, fox, foy, qcfg))
			}
			out.Series = append(out.Series,
				Fig12Series{
					Input: seq.Name, Algorithm: alg, Baseline: "VS_golden",
					Curve: quality.NewCurve(vsEDs, MaxReportedED), SDCs: len(vsEDs),
				},
				Fig12Series{
					Input: seq.Name, Algorithm: alg, Baseline: "Approx_golden",
					Curve: quality.NewCurve(approxEDs, MaxReportedED), SDCs: len(approxEDs),
				})
		}
	}
	return out, nil
}

// Find returns the series for (input, alg, baseline), or nil.
func (r *Fig12Result) Find(input string, alg vs.Algorithm, baseline string) *Fig12Series {
	for i := range r.Series {
		s := &r.Series[i]
		if s.Input == input && s.Algorithm == alg && s.Baseline == baseline {
			return s
		}
	}
	return nil
}

// Write prints each curve at a set of representative ED thresholds.
func (r *Fig12Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 12: SDC quality (cumulative fraction of SDCs with ED <= X)", o)
	thresholds := []int{0, 2, 5, 10, 20, 40}
	fmt.Fprintf(w, "%-8s %-8s %-14s %5s |", "input", "alg", "baseline", "SDCs")
	for _, t := range thresholds {
		fmt.Fprintf(w, " ED<=%-3d", t)
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-8s %-8s %-14s %5d |", s.Input, s.Algorithm, s.Baseline, s.SDCs)
		for _, t := range thresholds {
			fmt.Fprintf(w, " %6.2f ", s.Curve.FractionAtOrBelow(t))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nApprox_golden vs VS_golden offsets (the curve-shift of panels a/b):")
	for key, ed := range r.GoldenED {
		if ed.Egregious {
			fmt.Fprintf(w, "%-20s egregious (norm %.1f%%)\n", key, ed.Norm)
		} else {
			fmt.Fprintf(w, "%-20s ED %d (norm %.1f%%)\n", key, ed.Degree, ed.Norm)
		}
	}
	fmt.Fprintln(w, "paper shape: vs Approx_golden the curves nearly coincide; most SDCs are benign")
}

// Fig13Result reproduces Fig 13: the qualitative comparison of the
// default output, the VS_SM output, their absolute pixel difference,
// and the thresholded difference, plus the relative_l2_norm values the
// paper quotes in §VII (~37% Input 1, ~8% Input 2).
type Fig13Result struct {
	// Norms maps input name to the VS vs VS_SM relative_l2_norm.
	Norms map[string]float64
	// Files lists written images (empty when ImageDir unset).
	Files []string
}

// Fig13 compares baseline and VS_SM golden outputs.
func Fig13(o Options) (*Fig13Result, error) {
	o = o.withDefaults()
	out := &Fig13Result{Norms: make(map[string]float64)}
	for _, seq := range virat.Inputs(o.Preset) {
		baseRes, _, err := goldenRun(vs.AlgVS, seq, o.Seed)
		if err != nil {
			return nil, err
		}
		smRes, _, err := goldenRun(vs.AlgSM, seq, o.Seed)
		if err != nil {
			return nil, err
		}
		gp, fp := baseRes.Primary(), smRes.Primary()
		g, f := quality.PlacePair(gp.Image, fp.Image,
			gp.Bounds.MinX, gp.Bounds.MinY, fp.Bounds.MinX, fp.Bounds.MinY)
		out.Norms[seq.Name] = quality.RelativeL2Norm(g, f, quality.DefaultConfig())
		if o.ImageDir != "" {
			if err := os.MkdirAll(o.ImageDir, 0o755); err != nil {
				return nil, fmt.Errorf("experiments: create image dir: %w", err)
			}
			diff := imgproc.AbsDiff(g, f)
			thr := imgproc.Threshold(diff, quality.DiffThreshold)
			for name, img := range map[string]*imgproc.Gray{
				"a_default": g, "b_vssm": f, "c_absdiff": diff, "d_thresholded": thr,
			} {
				path := filepath.Join(o.ImageDir, fmt.Sprintf("fig13_%s_%s.pgm", seq.Name, name))
				if err := imgproc.SavePGM(path, img); err != nil {
					return nil, err
				}
				out.Files = append(out.Files, path)
			}
		}
	}
	return out, nil
}

// Write prints the norm values and the written files.
func (r *Fig13Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 13: VS vs VS_SM output comparison", o)
	for input, norm := range r.Norms {
		fmt.Fprintf(w, "%-8s relative_l2_norm(VS, VS_SM) = %.1f%%\n", input, norm)
	}
	fmt.Fprintln(w, "paper: ~37% for Input 1, ~8% for Input 2 — large metric values despite visually acceptable output")
	for _, f := range r.Files {
		fmt.Fprintf(w, "wrote %s\n", f)
	}
}
