package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
)

func ablationOptions() Options {
	p := virat.TestScale()
	p.Frames = 8
	return Options{Preset: p, Trials: 100, Seed: 1}
}

func TestAblationWindowMonotoneMasking(t *testing.T) {
	res, err := AblationWindow(context.Background(), ablationOptions(), []uint64{4, 64, 512})
	if err != nil {
		t.Fatalf("AblationWindow: %v", err)
	}
	if len(res.Rates) != 3 {
		t.Fatalf("rates = %d", len(res.Rates))
	}
	// Wider window => more flips land on live values => less masking.
	// Allow small statistical slack at 100 trials.
	first := res.Rates[0][fault.OutcomeMask]
	last := res.Rates[len(res.Rates)-1][fault.OutcomeMask]
	if last > first+0.05 {
		t.Errorf("mask rate rose with window: %.3f -> %.3f", first, last)
	}
	var buf bytes.Buffer
	res.Write(&buf, ablationOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestAblationBlendFeatherLeaksSDCs(t *testing.T) {
	res, err := AblationBlend(context.Background(), ablationOptions())
	if err != nil {
		t.Fatalf("AblationBlend: %v", err)
	}
	// Feather averaging cannot erase corrupted warp output, so its SDC
	// rate must be at least the overwrite mode's (allowing slack).
	if res.Feather[fault.OutcomeSDC] < res.Overwrite[fault.OutcomeSDC]-0.05 {
		t.Errorf("feather SDC %.3f below overwrite %.3f",
			res.Feather[fault.OutcomeSDC], res.Overwrite[fault.OutcomeSDC])
	}
	var buf bytes.Buffer
	res.Write(&buf, ablationOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestAdaptiveConvergenceShape(t *testing.T) {
	o := tinyOptions()
	o.Workers = 4
	// Loose targets keep the trace short; the shape is what matters.
	o.Precision = 0.2
	o.Confidence = 0.8
	res, err := AdaptiveConvergence(context.Background(), o)
	if err != nil {
		t.Fatalf("AdaptiveConvergence: %v", err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds traced")
	}
	if res.Strata == 0 {
		t.Fatal("no strata")
	}
	prev := 0
	for i, pt := range res.Rounds {
		if pt.Trials <= prev {
			t.Errorf("round %d: cumulative trials %d did not grow past %d", i, pt.Trials, prev)
		}
		prev = pt.Trials
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Trials != res.Trials {
		t.Errorf("trace ends at %d trials, result says %d", last.Trials, res.Trials)
	}
	if !res.Converged {
		t.Errorf("did not converge at half-width 0.2 within %d trials", res.Trials)
	}
	if res.Trials > res.FixedBudget {
		t.Errorf("adaptive spent %d trials, fixed design %d", res.Trials, res.FixedBudget)
	}
	var buf bytes.Buffer
	res.Write(&buf, o)
	if !strings.Contains(buf.String(), "savings:") {
		t.Error("report missing the savings line")
	}
}
