package experiments

import (
	"bytes"
	"context"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// tinyOptions keeps the integration tests fast (single-core CI).
func tinyOptions() Options {
	p := virat.TestScale()
	p.Frames = 14
	return Options{Preset: p, Trials: 150, QualityTrials: 200, Seed: 1}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(tinyOptions())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 algs x 2 inputs)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Algorithm == vs.AlgVS {
			if row.Norm.Time != 1 || row.Norm.Energy != 1 {
				t.Errorf("%s baseline not unity: %+v", row.Input, row.Norm)
			}
			continue
		}
		// Approximations must not be slower than baseline, and IPC
		// must stay roughly flat (the Fig 5 observation).
		if row.Norm.Time > 1.02 {
			t.Errorf("%s/%s time %.3f > 1", row.Input, row.Algorithm, row.Norm.Time)
		}
		if row.Norm.Energy > 1.02 {
			t.Errorf("%s/%s energy %.3f > 1", row.Input, row.Algorithm, row.Norm.Energy)
		}
		if row.Norm.IPC < 0.8 || row.Norm.IPC > 1.2 {
			t.Errorf("%s/%s IPC %.3f not ~1", row.Input, row.Algorithm, row.Norm.IPC)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig6WritesImages(t *testing.T) {
	o := tinyOptions()
	o.ImageDir = t.TempDir()
	res, err := Fig6(o)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(res.Files) != 8 {
		t.Errorf("wrote %d images, want 8", len(res.Files))
	}
	if len(res.Sizes) != 8 {
		t.Errorf("sizes = %d, want 8", len(res.Sizes))
	}
	var buf bytes.Buffer
	res.Write(&buf, o)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(tinyOptions())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if res.Profile.WarpFraction < 0.25 {
		t.Errorf("warp fraction %.3f, want dominant", res.Profile.WarpFraction)
	}
	if res.Profile.LibraryFraction < 0.45 {
		t.Errorf("library fraction %.3f, want majority", res.Profile.LibraryFraction)
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig9Coverage(t *testing.T) {
	res, err := Fig9(context.Background(), tinyOptions())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if res.Knee <= 0 || res.Knee > tinyOptions().Trials {
		t.Errorf("knee = %d", res.Knee)
	}
	// Uniformity: with 150 samples over 32 registers the chi-square
	// should be around 31; allow a broad band.
	if res.Chi2 > 70 {
		t.Errorf("register coverage chi2 = %.1f, not uniform", res.Chi2)
	}
	if res.Campaign.BitHist.Total() != tinyOptions().Trials {
		t.Error("bit histogram incomplete")
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(context.Background(), tinyOptions())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		var sum float64
		for _, r := range c.Rates {
			sum += r
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s/%s rates sum %.3f", c.Input, c.Class, sum)
		}
		switch c.Class {
		case fault.FPR:
			// The paper's headline: FPR faults are masked > 99.5% of
			// the time. Allow a margin at tiny scale.
			if c.Rates[fault.OutcomeMask] < 0.95 {
				t.Errorf("%s FPR mask rate %.3f, want > 0.95", c.Input, c.Rates[fault.OutcomeMask])
			}
		case fault.GPR:
			// GPR faults crash substantially (paper: ~40%).
			if c.Rates[fault.OutcomeCrash] < 0.10 {
				t.Errorf("%s GPR crash rate %.3f, want substantial", c.Input, c.Rates[fault.OutcomeCrash])
			}
			if c.Rates[fault.OutcomeMask] < 0.2 {
				t.Errorf("%s GPR mask rate %.3f implausibly low", c.Input, c.Rates[fault.OutcomeMask])
			}
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig11aShape(t *testing.T) {
	res, err := Fig11a(context.Background(), tinyOptions())
	if err != nil {
		t.Fatalf("Fig11a: %v", err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// The approximations' profiles must track the baseline: crash and
	// mask rates within a loose band of the same-input baseline.
	base := map[string][fault.NumOutcomes]float64{}
	for _, c := range res.Cells {
		if c.Algorithm == vs.AlgVS {
			base[c.Input] = c.Rates
		}
	}
	for _, c := range res.Cells {
		if c.Algorithm == vs.AlgVS {
			continue
		}
		b := base[c.Input]
		// "Very similar" profiles (§VI-B); the band is generous because
		// the tiny test scale amplifies per-variant differences.
		if diff := c.Rates[fault.OutcomeCrash] - b[fault.OutcomeCrash]; diff > 0.2 || diff < -0.2 {
			t.Errorf("%s/%s crash rate deviates %.3f from baseline", c.Input, c.Algorithm, diff)
		}
		if diff := c.Rates[fault.OutcomeMask] - b[fault.OutcomeMask]; diff > 0.2 || diff < -0.2 {
			t.Errorf("%s/%s mask rate deviates %.3f from baseline", c.Input, c.Algorithm, diff)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig11bCompositionalMasking(t *testing.T) {
	res, err := Fig11b(context.Background(), tinyOptions())
	if err != nil {
		t.Fatalf("Fig11b: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's conclusion: the full application masks more of the
	// hot-function faults than the standalone kernel (compositional
	// masking). Compare the combined mask rates.
	for _, fn := range []fault.Region{fault.RWarpInvoker, fault.RRemapBilinear} {
		wpMask := res.MaskRate("WP", fn)
		vsMask := res.MaskRate("VS", fn)
		if wpMask < 0 || vsMask < 0 {
			t.Fatalf("missing rows for %v", fn)
		}
		if vsMask < wpMask-0.05 {
			t.Errorf("%v: VS mask rate %.3f below WP %.3f — no compositional masking", fn, vsMask, wpMask)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(context.Background(), tinyOptions())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(res.Series) != 16 {
		t.Fatalf("series = %d, want 16 (4 algs x 2 inputs x 2 baselines)", len(res.Series))
	}
	for _, s := range res.Series {
		// Cumulative curves must be monotone.
		for k := 1; k < len(s.Curve.Fraction); k++ {
			if s.Curve.Fraction[k] < s.Curve.Fraction[k-1] {
				t.Fatalf("%s/%s/%s curve not monotone", s.Input, s.Algorithm, s.Baseline)
			}
		}
	}
	var buf bytes.Buffer
	res.Write(&buf, tinyOptions())
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}

func TestFig13Norms(t *testing.T) {
	o := tinyOptions()
	o.ImageDir = t.TempDir()
	res, err := Fig13(o)
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	if len(res.Norms) != 2 {
		t.Fatalf("norms = %d", len(res.Norms))
	}
	for input, n := range res.Norms {
		if n < 0 {
			t.Errorf("%s norm %v negative", input, n)
		}
	}
	if len(res.Files) != 8 {
		t.Errorf("wrote %d images, want 8", len(res.Files))
	}
	var buf bytes.Buffer
	res.Write(&buf, o)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}
