package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vsresil/internal/energy"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/profilesim"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// goldenRun executes one algorithm variant on one input fault-free,
// returning the result and the machine with its op accounting.
func goldenRun(alg vs.Algorithm, seq *virat.Sequence, seed uint64) (*stitch.Result, *fault.Machine, error) {
	frames := seq.Frames()
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = seed
	app := vs.New(cfg, len(frames))
	m := fault.New()
	res, err := app.Run(frames, m)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %v on %s: %w", alg, seq.Name, err)
	}
	return res, m, nil
}

// Fig5Row is one bar group of Fig 5: a variant's metrics normalized to
// the same-input baseline.
type Fig5Row struct {
	Input     string
	Algorithm vs.Algorithm
	Norm      energy.Normalized
}

// Fig5Result reproduces Fig 5: IPC, execution time and energy of
// VS_RFD, VS_KDS and VS_SM normalized to baseline VS per input.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 runs all four variants on both inputs and normalizes the
// energy-model metrics to each input's baseline.
func Fig5(o Options) (*Fig5Result, error) {
	o = o.withDefaults()
	model := energy.DefaultModel()
	out := &Fig5Result{}
	for _, seq := range virat.Inputs(o.Preset) {
		_, baseM, err := goldenRun(vs.AlgVS, seq, o.Seed)
		if err != nil {
			return nil, err
		}
		base := model.Measure(baseM)
		for _, alg := range vs.Algorithms() {
			_, m, err := goldenRun(alg, seq, o.Seed)
			if err != nil {
				return nil, err
			}
			n, err := energy.Normalize(model.Measure(m), base)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Fig5Row{Input: seq.Name, Algorithm: alg, Norm: n})
		}
	}
	return out, nil
}

// Write prints the figure's series.
func (r *Fig5Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 5: IPC / execution time / energy, normalized to baseline VS", o)
	fmt.Fprintf(w, "%-8s %-8s %8s %8s %8s\n", "input", "alg", "IPC", "time", "energy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-8s %8.3f %8.3f %8.3f\n",
			row.Input, row.Algorithm, row.Norm.IPC, row.Norm.Time, row.Norm.Energy)
	}
}

// Fig6Result reproduces Fig 6: the output panoramas of every variant
// on both inputs, written as PGM images for visual comparison.
type Fig6Result struct {
	// Files lists the written image paths (empty if ImageDir unset).
	Files []string
	// Sizes records primary panorama dimensions per (input, variant).
	Sizes map[string][2]int
}

// Fig6 renders every variant's primary panorama.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.withDefaults()
	out := &Fig6Result{Sizes: make(map[string][2]int)}
	for _, seq := range virat.Inputs(o.Preset) {
		for _, alg := range vs.Algorithms() {
			res, _, err := goldenRun(alg, seq, o.Seed)
			if err != nil {
				return nil, err
			}
			prim := res.Primary()
			key := seq.Name + "/" + alg.String()
			out.Sizes[key] = [2]int{prim.Image.W, prim.Image.H}
			if o.ImageDir != "" {
				if err := os.MkdirAll(o.ImageDir, 0o755); err != nil {
					return nil, fmt.Errorf("experiments: create image dir: %w", err)
				}
				path := filepath.Join(o.ImageDir, fmt.Sprintf("fig6_%s_%s.pgm", seq.Name, alg))
				if err := imgproc.SavePGM(path, prim.Image); err != nil {
					return nil, err
				}
				out.Files = append(out.Files, path)
			}
		}
	}
	return out, nil
}

// Write prints the panorama inventory.
func (r *Fig6Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 6: output panoramas per algorithm and input", o)
	for key, size := range r.Sizes {
		fmt.Fprintf(w, "%-24s %dx%d\n", key, size[0], size[1])
	}
	for _, f := range r.Files {
		fmt.Fprintf(w, "wrote %s\n", f)
	}
}

// Fig8Result reproduces Fig 8: the execution-time profile by function.
type Fig8Result struct {
	Profile profilesim.Profile
}

// Fig8 profiles the baseline VS on Input 1.
func Fig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	seq := virat.Input1(o.Preset)
	_, m, err := goldenRun(vs.AlgVS, seq, o.Seed)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Profile: profilesim.Collect(m, energy.DefaultModel())}, nil
}

// Write prints the profile table.
func (r *Fig8Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 8: execution profile of the VS application", o)
	for _, f := range r.Profile.ByFunction {
		fmt.Fprintf(w, "%-24s %6.1f%%\n", f.Region, f.Fraction*100)
	}
	fmt.Fprintf(w, "%-24s %6.1f%%  (paper: 54.4%%)\n", "warp kernels total", r.Profile.WarpFraction*100)
	fmt.Fprintf(w, "%-24s %6.1f%%  (paper: ~68%%)\n", "vision library total", r.Profile.LibraryFraction*100)
}
