package experiments

import (
	"sync"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// goldenKey identifies everything that determines a golden run: the
// application configuration and the input it runs on. Campaign
// parameters (class, region, trial count, campaign seed) deliberately
// do not appear — the golden run is fault-free, so one capture is
// valid for every campaign over the same app+input.
type goldenKey struct {
	alg    vs.Algorithm
	input  string
	preset virat.Preset
	seed   uint64
}

// sharedGoldens caches golden runs across the figure harnesses: Fig 9
// and Fig 10 reuse the VS golden per input across classes, Fig 11b
// reuses it across regions, and Fig 12 reuses the Fig 11a captures
// when run in the same process. The population is bounded by
// algorithms x inputs x presets actually exercised (a handful), so no
// eviction is needed.
var (
	goldenMu      sync.Mutex
	sharedGoldens = map[goldenKey]*fault.GoldenRun{}
)

// sharedGolden returns the cached golden run for key, capturing it
// with a fault-free execution of app on first use.
func sharedGolden(key goldenKey, app *vs.App, frames []*imgproc.Gray) (*fault.GoldenRun, error) {
	goldenMu.Lock()
	g := sharedGoldens[key]
	goldenMu.Unlock()
	if g != nil {
		return g, nil
	}
	g, err := fault.CaptureGolden(app.RunEncoded(frames))
	if err != nil {
		return nil, err
	}
	goldenMu.Lock()
	if cached := sharedGoldens[key]; cached != nil {
		g = cached // a concurrent capture won; keep one canonical copy
	} else {
		sharedGoldens[key] = g
	}
	goldenMu.Unlock()
	return g, nil
}
