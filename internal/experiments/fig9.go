package experiments

import (
	"context"
	"fmt"
	"io"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// runner is the campaign engine all figure harnesses share: one
// golden cache across Fig 9/10/11/12, so campaigns sweeping classes,
// regions and algorithms over the same workload reuse a single
// fault-free capture. The population is bounded by algorithms x
// inputs x presets actually exercised (a handful), so the cache is
// unbounded.
var runner = campaign.Runner{Goldens: campaign.NewGoldenCache(0)}

// campaignFor runs a fault-injection campaign for one algorithm on one
// input.
func campaignFor(ctx context.Context, o Options, alg vs.Algorithm, seq *virat.Sequence,
	class fault.Class, region fault.Region, trials int, keepSDC bool) (*fault.Result, error) {
	res, err := runner.Run(ctx, campaign.Spec{
		Workload: campaign.VS(alg, seq, o.Seed),
		Class:    class,
		Region:   region,
		Trials:   trials,
		Seed:     o.Seed + uint64(alg)*101 + uint64(class)*7919,
		Workers:  o.Workers,
		SDC:      campaign.SDCPolicy{Keep: keepSDC},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign %v/%s/%v: %w", alg, seq.Name, class, err)
	}
	return res.Fault, nil
}

// Fig9Result reproduces Fig 9: (a) outcome rates vs number of
// injections with the knee of the curves, and (b) the injections-per-
// register coverage histogram.
type Fig9Result struct {
	Campaign *fault.Result
	// Knee is the injection count after which all outcome rates stay
	// within 2 percentage points of their final values.
	Knee int
	// Chi2 is the register histogram's chi-square against uniform
	// (32 bins: values near 31 indicate uniform coverage).
	Chi2 float64
}

// Fig9 runs the coverage study on baseline VS, Input 1, GPR faults.
func Fig9(ctx context.Context, o Options) (*Fig9Result, error) {
	o = o.withDefaults()
	seq := virat.Input1(o.Preset)
	res, err := campaignFor(ctx, o, vs.AlgVS, seq, fault.GPR, fault.RAny, o.Trials, false)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Campaign: res,
		Knee:     res.Curve.Knee(0.02),
		Chi2:     res.RegHist.ChiSquareUniform(),
	}, nil
}

// Write prints the trend curve checkpoints and the register histogram.
func (r *Fig9Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 9a: outcome rates vs number of error injections", o)
	fmt.Fprintf(w, "%8s %8s %8s %8s %8s\n", "inj", "Mask", "Crash", "SDC", "Hang")
	for i, n := range r.Campaign.Curve.Checkpoints {
		s := r.Campaign.Curve.Snapshots[i]
		fmt.Fprintf(w, "%8d %8.3f %8.3f %8.3f %8.3f\n",
			n, s[fault.OutcomeMask], s[fault.OutcomeCrash], s[fault.OutcomeSDC], s[fault.OutcomeHang])
	}
	fmt.Fprintf(w, "knee of the curves: ~%d injections (paper: ~1000)\n", r.Knee)
	fmt.Fprintf(w, "\n== Fig 9b: injections per GPR register ==\n")
	fmt.Fprintf(w, "%s\n", r.Campaign.RegHist)
	fmt.Fprintf(w, "chi-square vs uniform over %d registers: %.1f (expect ~%d for uniform)\n",
		fault.NumRegisters, r.Chi2, fault.NumRegisters-1)
}

// Fig10Cell is one bar group of Fig 10.
type Fig10Cell struct {
	Input string
	Class fault.Class
	Rates [fault.NumOutcomes]float64
	// SegvFraction and AbortFraction subdivide the Crash rate
	// (paper: 92% / 8%).
	SegvFraction, AbortFraction float64
}

// Fig10Result reproduces Fig 10: the baseline VS resiliency profile
// for GPR and FPR injections on both inputs.
type Fig10Result struct {
	Cells []Fig10Cell
}

// Fig10 runs four campaigns: {GPR, FPR} x {Input1, Input2} on VS.
func Fig10(ctx context.Context, o Options) (*Fig10Result, error) {
	o = o.withDefaults()
	out := &Fig10Result{}
	for _, seq := range virat.Inputs(o.Preset) {
		for _, class := range []fault.Class{fault.GPR, fault.FPR} {
			res, err := campaignFor(ctx, o, vs.AlgVS, seq, class, fault.RAny, o.Trials, false)
			if err != nil {
				return nil, err
			}
			cell := Fig10Cell{Input: seq.Name, Class: class, Rates: res.Rates()}
			if crashes := res.Counts[fault.OutcomeCrash]; crashes > 0 {
				cell.SegvFraction = float64(res.CrashCounts[fault.CrashSegv]) / float64(crashes)
				cell.AbortFraction = float64(res.CrashCounts[fault.CrashAbort]) / float64(crashes)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// Write prints the resiliency profile table.
func (r *Fig10Result) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 10: VS resiliency profile (GPR vs FPR)", o)
	fmt.Fprintf(w, "%-8s %-5s %8s %8s %8s %8s %14s\n",
		"input", "class", "Mask", "Crash", "SDC", "Hang", "crash=segv/abort")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8s %-5s %8.3f %8.3f %8.3f %8.3f %7.0f%%/%2.0f%%\n",
			c.Input, c.Class,
			c.Rates[fault.OutcomeMask], c.Rates[fault.OutcomeCrash],
			c.Rates[fault.OutcomeSDC], c.Rates[fault.OutcomeHang],
			c.SegvFraction*100, c.AbortFraction*100)
	}
	fmt.Fprintln(w, "paper shape: GPR -> large Crash share (~40%); FPR -> Mask > 99.5%")
}

// Fig11aCell is one bar group of Fig 11a.
type Fig11aCell struct {
	Input     string
	Algorithm vs.Algorithm
	Rates     [fault.NumOutcomes]float64
}

// Fig11aResult reproduces Fig 11a: GPR resiliency of all four
// algorithms on both inputs.
type Fig11aResult struct {
	Cells []Fig11aCell
}

// Fig11a runs eight campaigns: 4 algorithms x 2 inputs, GPR.
func Fig11a(ctx context.Context, o Options) (*Fig11aResult, error) {
	o = o.withDefaults()
	out := &Fig11aResult{}
	for _, seq := range virat.Inputs(o.Preset) {
		for _, alg := range vs.Algorithms() {
			res, err := campaignFor(ctx, o, alg, seq, fault.GPR, fault.RAny, o.Trials, false)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Fig11aCell{
				Input: seq.Name, Algorithm: alg, Rates: res.Rates(),
			})
		}
	}
	return out, nil
}

// Write prints the per-algorithm resiliency table.
func (r *Fig11aResult) Write(w io.Writer, o Options) {
	writeHeader(w, "Fig 11a: resiliency of VS and its approximations (GPR)", o)
	fmt.Fprintf(w, "%-8s %-8s %8s %8s %8s %8s\n", "input", "alg", "Mask", "Crash", "SDC", "Hang")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8s %-8s %8.3f %8.3f %8.3f %8.3f\n",
			c.Input, c.Algorithm,
			c.Rates[fault.OutcomeMask], c.Rates[fault.OutcomeCrash],
			c.Rates[fault.OutcomeSDC], c.Rates[fault.OutcomeHang])
	}
	fmt.Fprintln(w, "paper shape: profiles track the baseline; SDC rises at most a few points (RFD/KDS)")
}
