package experiments

import (
	"bytes"
	"testing"
)

func TestDefaultOptionsComplete(t *testing.T) {
	o := DefaultOptions()
	if o.Preset.Frames <= 0 || o.Trials <= 0 || o.QualityTrials <= 0 {
		t.Errorf("incomplete defaults: %+v", o)
	}
}

func TestPaperOptionsMatchPaperSizes(t *testing.T) {
	o := PaperOptions()
	if o.Preset.Frames != 1000 {
		t.Errorf("paper frames = %d, want 1000 (§III-B)", o.Preset.Frames)
	}
	if o.Trials != 1000 {
		t.Errorf("paper trials = %d, want 1000 (§VI-A)", o.Trials)
	}
	if o.QualityTrials != 5000 {
		t.Errorf("paper quality trials = %d, want 5000 (§VI-D)", o.QualityTrials)
	}
}

func TestWithDefaultsFillsZeros(t *testing.T) {
	o := (Options{}).withDefaults()
	if o.Preset.Frames == 0 || o.Trials == 0 || o.QualityTrials == 0 {
		t.Errorf("withDefaults left zeros: %+v", o)
	}
	// Explicit values survive.
	o2 := (Options{Trials: 7}).withDefaults()
	if o2.Trials != 7 {
		t.Error("withDefaults overwrote explicit Trials")
	}
}

func TestWriteHeader(t *testing.T) {
	var buf bytes.Buffer
	writeHeader(&buf, "title", DefaultOptions())
	if buf.Len() == 0 {
		t.Error("empty header")
	}
}
