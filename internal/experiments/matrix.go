package experiments

import (
	"context"
	"fmt"
	"io"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
)

// MatrixCells returns the default scenario × summarizer cross-product:
// four capture scenarios (the clean identity baseline plus three
// degradation chains) against both summarizer backends, all on the
// baseline VS variant. This is the repo's first result outside the
// paper's single-workload design point.
func MatrixCells() []campaign.Cell {
	scenarios := []string{"identity", "fog", "lowlight", "blocking+jitter"}
	summarizers := []string{"vs", "storyboard"}
	cells := make([]campaign.Cell, 0, len(scenarios)*len(summarizers))
	for _, sum := range summarizers {
		for _, sc := range scenarios {
			cells = append(cells, campaign.Cell{Scenario: sc, Summarizer: sum})
		}
	}
	return cells
}

// MatrixCellResult is one cell's outcome-rate row.
type MatrixCellResult struct {
	Cell      campaign.Cell
	Workload  string
	Completed int
	Rates     [fault.NumOutcomes]float64
}

// MatrixResult holds the per-cell outcome rates of the scenario ×
// summarizer campaign matrix.
type MatrixResult struct {
	Input int
	Cells []MatrixCellResult
}

// Matrix runs a GPR fault-injection campaign on every cell of the
// default scenario × summarizer matrix (Input 2) and reports per-cell
// outcome rates — does the approximation-vs-SDC tradeoff the paper
// measures on one workload hold across capture conditions and
// summarizer families?
func Matrix(ctx context.Context, o Options) (*MatrixResult, error) {
	return MatrixOn(ctx, o, MatrixCells())
}

// MatrixOn runs the matrix campaign over an explicit cell list.
func MatrixOn(ctx context.Context, o Options, cells []campaign.Cell) (*MatrixResult, error) {
	o = o.withDefaults()
	const input = 2
	ms := campaign.MatrixSpec{
		Cells:   cells,
		Input:   input,
		Preset:  o.Preset,
		AppSeed: o.Seed,
		Spec: campaign.Spec{
			Class:   fault.GPR,
			Region:  fault.RAny,
			Trials:  o.Trials,
			Seed:    o.Seed + 33577,
			Workers: o.Workers,
		},
	}
	results, err := runner.RunMatrix(ctx, ms, 1)
	if err != nil {
		return nil, err
	}
	out := &MatrixResult{Input: input}
	for _, cr := range results {
		out.Cells = append(out.Cells, MatrixCellResult{
			Cell:      cr.Cell,
			Workload:  cr.Result.Spec.Workload.Name,
			Completed: cr.Result.Fault.Completed,
			Rates:     cr.Result.Fault.Rates(),
		})
	}
	return out, nil
}

// Write prints the per-cell outcome-rate table.
func (r *MatrixResult) Write(w io.Writer, o Options) {
	writeHeader(w, "Matrix: scenario x summarizer resiliency (GPR, Input 2)", o)
	fmt.Fprintf(w, "%-28s %-20s %8s %8s %8s %8s\n",
		"cell", "workload", "Mask", "Crash", "SDC", "Hang")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-28s %-20s %8.3f %8.3f %8.3f %8.3f\n",
			c.Cell, c.Workload,
			c.Rates[fault.OutcomeMask], c.Rates[fault.OutcomeCrash],
			c.Rates[fault.OutcomeSDC], c.Rates[fault.OutcomeHang])
	}
	fmt.Fprintln(w, "identity/vs cells reproduce the paper's single-workload profile; the rest are new territory")
}
