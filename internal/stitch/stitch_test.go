package stitch

import (
	"errors"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/match"
	"vsresil/internal/virat"
)

// testFrames renders a small Input2-style smooth sequence.
func testFrames(t testing.TB, n int) []*imgproc.Gray {
	t.Helper()
	p := virat.TestScale()
	p.Frames = n
	return virat.Input2(p).Frames()
}

func TestRunEmptyInput(t *testing.T) {
	st := New(DefaultConfig())
	if _, err := st.Run(nil, nil); !errors.Is(err, ErrNoFrames) {
		t.Errorf("expected ErrNoFrames, got %v", err)
	}
}

func TestRunSingleFrame(t *testing.T) {
	frames := testFrames(t, 1)
	st := New(DefaultConfig())
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Panoramas) != 1 {
		t.Fatalf("panoramas = %d", len(res.Panoramas))
	}
	p := res.Primary()
	if p == nil || p.Frames != 1 {
		t.Fatalf("primary = %+v", p)
	}
	// A single identity-placed frame should reproduce itself closely.
	img := p.Image
	if img.W < frames[0].W || img.H < frames[0].H {
		t.Errorf("panorama %dx%d smaller than frame", img.W, img.H)
	}
}

func TestRunSmoothSequenceStitches(t *testing.T) {
	frames := testFrames(t, 10)
	st := New(DefaultConfig())
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Panoramas) != 1 {
		t.Errorf("smooth sequence produced %d mini-panoramas, want 1", len(res.Panoramas))
	}
	if res.Discarded > 2 {
		t.Errorf("discarded %d of 10 smooth frames", res.Discarded)
	}
	prim := res.Primary()
	if prim.Frames < 8 {
		t.Errorf("primary panorama has only %d frames", prim.Frames)
	}
	// The panorama must be larger than a single frame (the camera
	// moved) and mostly covered.
	if prim.Image.W <= frames[0].W && prim.Image.H <= frames[0].H {
		t.Error("panorama no larger than one frame despite camera motion")
	}
}

func TestRunDeterministicUnderInstrumentation(t *testing.T) {
	frames := testFrames(t, 6)
	st := New(DefaultConfig())
	a, err := st.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Run(frames, fault.New())
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := a.Encode(), b.Encode()
	if len(ab) != len(bb) {
		t.Fatalf("encoded lengths differ: %d vs %d", len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("outputs differ at byte %d", i)
		}
	}
}

func TestRunSceneCutsCreateMiniPanoramas(t *testing.T) {
	p := virat.TestScale()
	seq := virat.Input1(p)
	st := New(DefaultConfig())
	res, err := st.Run(seq.Frames(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Panoramas) < 2 {
		t.Errorf("Input1 with cuts produced %d mini-panoramas, want >= 2", len(res.Panoramas))
	}
}

func TestInput1MoreMiniPanoramasThanInput2(t *testing.T) {
	// The paper's §III-B observation: Input 1 generates many more
	// mini-panoramas than Input 2.
	p := virat.TestScale()
	st := New(DefaultConfig())
	res1, err := st.Run(virat.Input1(p).Frames(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := st.Run(virat.Input2(p).Frames(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Panoramas) <= len(res2.Panoramas) {
		t.Errorf("Input1 panoramas (%d) not more than Input2 (%d)",
			len(res1.Panoramas), len(res2.Panoramas))
	}
}

func TestKeyPointStrideReducesMatches(t *testing.T) {
	frames := testFrames(t, 4)
	base := New(DefaultConfig())
	cfgKDS := DefaultConfig()
	cfgKDS.KeyPointStride = 3
	kds := New(cfgKDS)
	resBase, err := base.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	resKDS, err := kds.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mBase, mKDS int
	for i := range resBase.Reports {
		mBase += resBase.Reports[i].Matches
	}
	for i := range resKDS.Reports {
		mKDS += resKDS.Reports[i].Matches
	}
	if mKDS >= mBase {
		t.Errorf("KDS matches (%d) not fewer than baseline (%d)", mKDS, mBase)
	}
}

func TestSimpleMatchingStrategyRuns(t *testing.T) {
	frames := testFrames(t, 6)
	cfg := DefaultConfig()
	cfg.Match = match.SimpleConfig()
	st := New(cfg)
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatalf("VS_SM run failed: %v", err)
	}
	if res.Primary() == nil {
		t.Fatal("VS_SM produced no panorama")
	}
}

func TestReportsCoverAllFrames(t *testing.T) {
	frames := testFrames(t, 8)
	st := New(DefaultConfig())
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 8 {
		t.Fatalf("reports = %d, want 8", len(res.Reports))
	}
	for i, r := range res.Reports {
		if r.Index != i {
			t.Errorf("report %d has index %d", i, r.Index)
		}
	}
}

func TestEncodeFormat(t *testing.T) {
	frames := testFrames(t, 3)
	st := New(DefaultConfig())
	res, err := st.Run(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := res.Encode()
	if len(enc) < 4 {
		t.Fatal("encoding too short")
	}
	// First 4 bytes: panorama count (little endian).
	count := int(enc[0]) | int(enc[1])<<8 | int(enc[2])<<16 | int(enc[3])<<24
	if count != len(res.Panoramas) {
		t.Errorf("encoded count %d, want %d", count, len(res.Panoramas))
	}
	// Encoding must be repeatable.
	enc2 := res.Encode()
	if len(enc) != len(enc2) {
		t.Error("encoding not deterministic")
	}
}

func TestPrimaryNilOnEmptyResult(t *testing.T) {
	r := &Result{}
	if r.Primary() != nil {
		t.Error("empty result should have nil primary")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	st := New(Config{})
	cfg := st.Config()
	if cfg.MinMatchesHomography <= 0 || cfg.MinMatchesAffine <= 0 ||
		cfg.CutThreshold <= 0 || cfg.KeyPointStride != 1 ||
		cfg.MaxPanoramaPixels <= 0 || cfg.FAST.Threshold <= 0 ||
		cfg.ORB.PatchRadius <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestFrameStatusString(t *testing.T) {
	for s := FrameStatus(0); s < 5; s++ {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestUnstitchableFramesDiscardedNotFatal(t *testing.T) {
	// Alternate between two unrelated noise frames: almost nothing can
	// register, but the run must still produce a (degenerate) result
	// rather than an error — matching the paper's frame-discard path.
	frames := testFrames(t, 2)
	noise := imgproc.NewGray(frames[0].W, frames[0].H)
	for i := range noise.Pix {
		noise.Pix[i] = uint8((i*7919 + i*i*31) % 256)
	}
	seq := []*imgproc.Gray{frames[0], frames[1], noise, frames[0], frames[1]}
	st := New(DefaultConfig())
	res, err := st.Run(seq, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Discarded == 0 && len(res.Panoramas) < 2 {
		t.Error("expected discards or segmentation with a noise frame")
	}
}

func BenchmarkStitchSmooth(b *testing.B) {
	frames := testFrames(b, 8)
	st := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(frames, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStitchInstrumented(b *testing.B) {
	frames := testFrames(b, 8)
	st := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(frames, fault.New()); err != nil {
			b.Fatal(err)
		}
	}
}
