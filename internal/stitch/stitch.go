// Package stitch implements the VS algorithm's coverage-summarization
// core (§III-A): successive frames are pairwise registered via
// FAST+ORB key points, matched descriptors and a RANSAC homography
// (with the paper's affine fallback when too few matches exist, and
// frame discard when even the affine cannot be computed). Every frame
// is aligned to the first frame of its segment and composited onto a
// mini-panorama; hard registration breaks (scene changes) start new
// mini-panoramas.
package stitch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"vsresil/internal/features"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/match"
	"vsresil/internal/probe"
	"vsresil/internal/ransac"
	"vsresil/internal/warp"
)

// FrameStatus records how a frame was incorporated.
type FrameStatus uint8

// Frame dispositions, in the order the paper describes them: full
// homography, affine fallback, discarded, or the start of a new
// segment.
const (
	StatusHomography FrameStatus = iota
	StatusAffine
	StatusDiscarded
	StatusNewSegment
)

// String implements fmt.Stringer.
func (s FrameStatus) String() string {
	switch s {
	case StatusHomography:
		return "homography"
	case StatusAffine:
		return "affine"
	case StatusDiscarded:
		return "discarded"
	case StatusNewSegment:
		return "new-segment"
	default:
		return "unknown"
	}
}

// Config parameterizes the stitcher. The three approximation knobs of
// the paper map to: KeyPointStride (VS_KDS), Match.Strategy
// (VS_SM), and frame dropping applied by the caller (VS_RFD).
type Config struct {
	FAST features.FASTConfig
	ORB  features.ORBConfig
	// Match configures descriptor matching (RatioTest for baseline,
	// SimpleNearest for VS_SM).
	Match match.Config
	// KeyPointStride > 1 enables VS_KDS: matching runs on every
	// stride-th key point.
	KeyPointStride int
	// MinMatchesHomography is the absolute floor on the match count
	// needed to attempt a homography (default 8).
	MinMatchesHomography int
	// MinMatchesAffine is the absolute floor for the affine fallback
	// (default 6).
	MinMatchesAffine int
	// MinMatchFractionHomography is the required ratio of matches to
	// query key points for a homography — the registration-confidence
	// gate (default 0.14). The effective gate per pair is
	// max(floor, fraction*queryKeyPoints). A relative gate keeps the
	// behavior scale-free: a down-sampled key-point set (VS_KDS) is
	// judged against its own size, as a confidence measure would be.
	MinMatchFractionHomography float64
	// MinMatchFractionAffine is the confidence gate for the affine
	// fallback (default 0.12).
	MinMatchFractionAffine float64
	// CutThreshold is the number of consecutive registration failures
	// that starts a new mini-panorama (default 3).
	CutThreshold int
	// Seed drives RANSAC sampling.
	Seed uint64
	// MaxPanoramaPixels caps each mini-panorama canvas; transforms
	// that would exceed it are treated as registration failures
	// (default 1<<22).
	MaxPanoramaPixels int
	// Blend selects the canvas compositing mode. The zero value
	// (BlendOverwrite) is the paper-faithful mosaicking behavior;
	// BlendFeather averages overlapping frames (see DESIGN.md §4b).
	Blend warp.BlendMode
	// ExposureCompensation scales each frame's intensity to match the
	// panorama content it overlaps before compositing (seam
	// reduction; off by default).
	ExposureCompensation bool
}

// DefaultConfig returns the baseline (precise) VS configuration.
func DefaultConfig() Config {
	return Config{
		FAST:                       features.DefaultFASTConfig(),
		ORB:                        features.ORBConfig{PatchRadius: 12, AngleBins: 30},
		Match:                      match.DefaultConfig(),
		KeyPointStride:             1,
		MinMatchesHomography:       8,
		MinMatchesAffine:           6,
		MinMatchFractionHomography: 0.26,
		MinMatchFractionAffine:     0.22,
		CutThreshold:               3,
		MaxPanoramaPixels:          1 << 22,
	}
}

// FrameReport records the disposition of one input frame.
type FrameReport struct {
	Index   int
	Status  FrameStatus
	Matches int
	Inliers int
	// H maps the frame into its segment's panorama coordinates (valid
	// unless Status == StatusDiscarded).
	H geom.Homography
	// Segment is the mini-panorama index the frame belongs to.
	Segment int
}

// Panorama is one rendered mini-panorama.
type Panorama struct {
	Image  *imgproc.Gray
	Bounds warp.Bounds
	// Frames is the number of frames composited into this panorama.
	Frames int
}

// Result is the output of a stitching run.
type Result struct {
	Panoramas []*Panorama
	Reports   []FrameReport
	// Discarded counts frames dropped for insufficient matches.
	Discarded int
}

// Primary returns the mini-panorama built from the most frames (the
// representative output image the paper's quality metric compares),
// or nil if nothing was stitched.
func (r *Result) Primary() *Panorama {
	var best *Panorama
	for _, p := range r.Panoramas {
		if best == nil || p.Frames > best.Frames {
			best = p
		}
	}
	return best
}

// Encode serializes every panorama (count, dimensions, pixels) — the
// output artifact AFI's result check byte-compares.
func (r *Result) Encode() []byte {
	var size int
	for _, p := range r.Panoramas {
		size += 16 + len(p.Image.Pix)
	}
	out := make([]byte, 0, 4+size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(r.Panoramas)))
	out = append(out, hdr[:]...)
	for _, p := range r.Panoramas {
		var dims [16]byte
		binary.LittleEndian.PutUint32(dims[0:], uint32(p.Image.W))
		binary.LittleEndian.PutUint32(dims[4:], uint32(p.Image.H))
		binary.LittleEndian.PutUint32(dims[8:], uint32(int32(p.Bounds.MinX)))
		binary.LittleEndian.PutUint32(dims[12:], uint32(int32(p.Bounds.MinY)))
		out = append(out, dims[:]...)
		out = append(out, p.Image.Pix...)
	}
	return out
}

// ErrNoFrames is returned when the input holds no frames.
var ErrNoFrames = errors.New("stitch: no input frames")

// Stitcher runs the registration + compositing pipeline.
type Stitcher struct {
	cfg       Config
	extractor *features.Extractor
	matcher   *match.Matcher
}

// New builds a Stitcher, applying defaults for zero-valued knobs.
func New(cfg Config) *Stitcher {
	def := DefaultConfig()
	if cfg.MinMatchesHomography <= 0 {
		cfg.MinMatchesHomography = def.MinMatchesHomography
	}
	if cfg.MinMatchesAffine <= 0 {
		cfg.MinMatchesAffine = def.MinMatchesAffine
	}
	if cfg.MinMatchFractionHomography <= 0 {
		cfg.MinMatchFractionHomography = def.MinMatchFractionHomography
	}
	if cfg.MinMatchFractionAffine <= 0 {
		cfg.MinMatchFractionAffine = def.MinMatchFractionAffine
	}
	if cfg.CutThreshold <= 0 {
		cfg.CutThreshold = def.CutThreshold
	}
	if cfg.KeyPointStride <= 0 {
		cfg.KeyPointStride = 1
	}
	if cfg.MaxPanoramaPixels <= 0 {
		cfg.MaxPanoramaPixels = def.MaxPanoramaPixels
	}
	if cfg.FAST.Threshold == 0 {
		cfg.FAST = def.FAST
	}
	if cfg.ORB.PatchRadius == 0 {
		cfg.ORB = def.ORB
	}
	return &Stitcher{
		cfg:       cfg,
		extractor: features.NewExtractor(cfg.ORB),
		matcher:   match.New(cfg.Match),
	}
}

// Config returns the stitcher's effective configuration.
func (st *Stitcher) Config() Config { return st.cfg }

// FrameFeatures holds one frame's detected key points and ORB
// descriptors — the per-frame output of the feature stage, read-only
// once built (registration only consumes it), which is what lets
// golden checkpoints share it across resumed campaign trials.
type FrameFeatures struct {
	KPs   []features.KeyPoint
	Descs []features.Descriptor
}

// registration is the transform of a frame into segment coordinates.
type registration struct {
	frame   int
	segment int
	h       geom.Homography
}

// AlignState is the registration pass's loop state between frame
// pairs. It is a value type deliberately: a golden checkpoint captures
// it with Snapshot, and a resumed trial continues from a plain copy —
// appends in the copy allocate fresh storage, so the shared golden
// snapshot is never mutated.
type AlignState struct {
	// N is the (tapped, hence possibly fault-corrupted) frame count
	// bounding the pass; Next is the frame index the next AlignStep
	// registers. The pass is finished when Next >= N.
	N, Next int

	segment      int
	refFrame     int
	refToSegment geom.Homography
	failStreak   int
	regs         []registration
	reports      []FrameReport
	discarded    int
}

// Snapshot returns a copy safe to retain while the receiver keeps
// advancing: the slice prefixes are capped at their current length, so
// both the live state and any state resumed from the snapshot append
// into fresh storage instead of sharing a tail.
func (a AlignState) Snapshot() AlignState {
	a.regs = a.regs[:len(a.regs):len(a.regs)]
	a.reports = a.reports[:len(a.reports):len(a.reports)]
	return a
}

// DetectFrame runs the per-frame feature stage (FAST detection + ORB
// description) — the unit the pipeline checkpoints between frames.
func (st *Stitcher) DetectFrame(g *imgproc.Gray, m probe.Sink) FrameFeatures {
	m = probe.OrNop(m)
	kps := features.DetectFAST(g, st.cfg.FAST, m)
	kps, descs := st.extractor.Describe(g, kps, m)
	return FrameFeatures{KPs: kps, Descs: descs}
}

// BeginAlign starts the registration pass: frame 0 anchors segment 0
// with the identity transform, and the frame count crosses the tap
// seam (bound corruption is how injected faults reach this stage).
func (st *Stitcher) BeginAlign(frames []*imgproc.Gray, m probe.Sink) AlignState {
	m = probe.OrNop(m)
	a := AlignState{Next: 1, refToSegment: geom.Identity()}
	a.regs = append(a.regs, registration{frame: 0, segment: 0, h: geom.Identity()})
	a.reports = append(a.reports, FrameReport{Index: 0, Status: StatusNewSegment, H: geom.Identity()})
	a.N = m.Cnt(len(frames))
	return a
}

// AlignStep registers frame a.Next against the current reference frame
// (matching + RANSAC homography with affine fallback) and advances the
// state by one frame — the per-pair unit the pipeline checkpoints.
func (st *Stitcher) AlignStep(feats []FrameFeatures, a *AlignState, m probe.Sink) {
	m = probe.OrNop(m)
	i := a.Next
	a.Next++
	rep := FrameReport{Index: i, Segment: a.segment}
	h, status, matches, inliers := st.registerPair(&feats[i], &feats[a.refFrame], m)
	rep.Matches = matches
	rep.Inliers = inliers
	if status == StatusDiscarded {
		a.failStreak++
		a.discarded++
		rep.Status = StatusDiscarded
		if a.failStreak >= st.cfg.CutThreshold {
			// Scene change: start a new mini-panorama at this frame.
			a.segment++
			a.refFrame = i
			a.refToSegment = geom.Identity()
			a.failStreak = 0
			rep.Status = StatusNewSegment
			rep.Segment = a.segment
			rep.H = geom.Identity()
			a.regs = append(a.regs, registration{frame: i, segment: a.segment, h: geom.Identity()})
		}
		a.reports = append(a.reports, rep)
		return
	}
	a.failStreak = 0
	// Compose: frame -> ref -> segment origin.
	toSegment := a.refToSegment.Mul(h)
	if !toSegment.Reasonable(0.2, 5) {
		a.discarded++
		rep.Status = StatusDiscarded
		a.reports = append(a.reports, rep)
		return
	}
	rep.Status = status
	rep.H = toSegment
	a.reports = append(a.reports, rep)
	a.regs = append(a.regs, registration{frame: i, segment: a.segment, h: toSegment})
	a.refFrame = i
	a.refToSegment = toSegment
}

// Composite renders each segment's mini-panorama from the completed
// registration state and assembles the Result. It reads the state
// without mutating it, so a shared golden AlignState snapshot can feed
// many resumed trials.
func (st *Stitcher) Composite(frames []*imgproc.Gray, a *AlignState, m probe.Sink) (*Result, error) {
	return st.CompositePlanned(frames, a, nil, m)
}

// CompositePlanned is Composite with a precomputed canvas plan. A nil
// plan is computed on the spot (Composite's behavior); a checkpoint
// bucket passes the plan it computed once so every trial resumed from
// the composite boundary skips the redundant bounds pass.
func (st *Stitcher) CompositePlanned(frames []*imgproc.Gray, a *AlignState, plan *CompositePlan, m probe.Sink) (*Result, error) {
	m = probe.OrNop(m)
	if plan == nil {
		plan = st.PlanComposite(frames, a)
	}
	res := &Result{Reports: a.reports, Discarded: a.discarded}
	if err := st.composite(frames, a.regs, plan, res, m); err != nil {
		return nil, err
	}
	return res, nil
}

// CompositePlan is the tap-free geometry of a composite pass: each
// segment's canvas bounds and frame count. It is a pure function of
// the registration state and the frame dimensions — values no
// composite tap can perturb (warps write only canvas buffers) — so a
// plan computed once per checkpoint bucket is valid verbatim for every
// trial resumed from that boundary, and using it changes neither the
// tap stream nor any observable of the pass.
type CompositePlan struct {
	segs []segmentPlan
}

type segmentPlan struct {
	b     warp.Bounds
	count int
}

// PlanComposite computes the canvas plan Composite would derive from
// the registration state. It issues no taps.
func (st *Stitcher) PlanComposite(frames []*imgproc.Gray, a *AlignState) *CompositePlan {
	plan := &CompositePlan{segs: make([]segmentPlan, a.segment+1)}
	for _, r := range a.regs {
		if r.segment < 0 || r.segment > a.segment {
			continue
		}
		sp := &plan.segs[r.segment]
		fb := warp.ProjectBounds(r.h, frames[r.frame].W, frames[r.frame].H)
		sp.b = sp.b.Union(fb)
		sp.count++
	}
	return plan
}

// Run stitches the frames into mini-panoramas. m is any probe.Sink;
// pass probe.Nop{} for an uninstrumented run (nil is normalized). The
// stitcher's own taps are per-frame, so it threads the interface
// straight through; the per-pixel stages re-dispatch onto their
// devirtualized kernels at their own entry points.
//
// Run is the whole pipeline in one call: per-frame features, the
// registration pass, then compositing. Campaign trials instead drive
// the stage methods (DetectFrame, BeginAlign, AlignStep, Composite)
// through internal/vs so they can resume from a golden checkpoint
// rather than executing every stage.
func (st *Stitcher) Run(frames []*imgproc.Gray, m probe.Sink) (*Result, error) {
	m = probe.OrNop(m)
	defer m.Enter(probe.RApp)()
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	feats := make([]FrameFeatures, 0, len(frames))
	for i := range frames {
		feats = append(feats, st.DetectFrame(frames[i], m))
	}
	a := st.BeginAlign(frames, m)
	for a.Next < a.N {
		st.AlignStep(feats, &a, m)
	}
	return st.Composite(frames, &a, m)
}

// pairScratch holds the per-registration working set (match list and
// correspondence arrays). RANSAC only reads the correspondences and
// retains nothing but its own inlier indices, so the buffers can be
// recycled as soon as registerPair returns.
type pairScratch struct {
	matches  []match.Match
	src, dst []geom.Pt
}

var pairPool sync.Pool

// maxPooledPairElems bounds pooled scratch (a registration sees at
// most MaxFeatures matches in practice; anything bigger is left to
// the GC).
const maxPooledPairElems = 1 << 16

func getPairScratch() *pairScratch {
	if v, _ := pairPool.Get().(*pairScratch); v != nil {
		return v
	}
	return &pairScratch{}
}

func putPairScratch(s *pairScratch) {
	if cap(s.matches) > maxPooledPairElems || cap(s.src) > maxPooledPairElems {
		return
	}
	pairPool.Put(s)
}

// growPts returns a len-n point slice, reusing s's storage if it fits.
// Every element is overwritten by the caller.
func growPts(s []geom.Pt, n int) []geom.Pt {
	if cap(s) < n {
		return make([]geom.Pt, n)
	}
	return s[:n]
}

// registerPair estimates the transform mapping frame `cur` onto frame
// `ref`, trying a homography first and falling back to affine.
func (st *Stitcher) registerPair(cur, ref *FrameFeatures, m probe.Sink) (geom.Homography, FrameStatus, int, int) {
	curKps, curDescs := cur.KPs, cur.Descs
	if st.cfg.KeyPointStride > 1 {
		// VS_KDS: match only a fraction of the key points.
		curKps, curDescs = match.SubsampleStrongest(curKps, curDescs, st.cfg.KeyPointStride)
	}
	sc := getPairScratch()
	defer putPairScratch(sc)
	matches := st.matcher.AppendMatches(sc.matches, curDescs, ref.Descs, m)
	sc.matches = matches
	nm := len(matches)
	src := growPts(sc.src, nm)
	dst := growPts(sc.dst, nm)
	sc.src, sc.dst = src, dst
	for i, mm := range matches {
		x, y := curKps[mm.Query].Pt()
		src[i] = geom.Pt{X: x, Y: y}
		x, y = ref.KPs[mm.Train].Pt()
		dst[i] = geom.Pt{X: x, Y: y}
	}

	// Confidence gates scale with the query key-point count (floored
	// by the absolute minimums a model mathematically needs).
	gateH := gate(st.cfg.MinMatchesHomography, st.cfg.MinMatchFractionHomography, len(curKps))
	gateA := gate(st.cfg.MinMatchesAffine, st.cfg.MinMatchFractionAffine, len(curKps))
	if nm >= gateH {
		cfg := ransac.DefaultConfig(ransac.ModelHomography)
		cfg.Seed = st.cfg.Seed
		cfg.MinInliers = gateH
		if r, err := ransac.Estimate(src, dst, cfg, m); err == nil {
			return r.H, StatusHomography, nm, len(r.Inliers)
		}
	}
	// Affine fallback: "we estimate a simpler affine transformation
	// which requires fewer matching points" (§III-A).
	if nm >= gateA {
		cfg := ransac.DefaultConfig(ransac.ModelAffine)
		cfg.Seed = st.cfg.Seed + 1
		cfg.MinInliers = gateA
		if r, err := ransac.Estimate(src, dst, cfg, m); err == nil {
			return r.H, StatusAffine, nm, len(r.Inliers)
		}
	}
	return geom.Homography{}, StatusDiscarded, nm, 0
}

// gate returns the effective minimum match count: the larger of the
// absolute floor and the confidence fraction of the query size.
func gate(floor int, fraction float64, queryKps int) int {
	g := int(fraction * float64(queryKps))
	if g < floor {
		return floor
	}
	return g
}

// composite renders each segment's mini-panorama from the precomputed
// canvas plan. The pixel-budget check stays inside the loop so a
// too-large segment aborts at the same point of the pass (after the
// preceding segments' warps) as it always has.
func (st *Stitcher) composite(frames []*imgproc.Gray, regs []registration, plan *CompositePlan, res *Result, m probe.Sink) error {
	for seg := 0; seg < len(plan.segs); seg++ {
		b, count := plan.segs[seg].b, plan.segs[seg].count
		if count == 0 || b.Empty() {
			continue
		}
		if b.W()*b.H() > st.cfg.MaxPanoramaPixels {
			// A wildly wrong (possibly fault-corrupted) transform made
			// it through: the application aborts, as the original
			// would on a failed giant allocation.
			return fmt.Errorf("stitch: segment %d panorama %dx%d exceeds pixel budget", seg, b.W(), b.H())
		}
		canvas := warp.NewCanvasMode(b, st.cfg.Blend)
		canvas.GainCompensation = st.cfg.ExposureCompensation
		for _, r := range regs {
			if r.segment != seg {
				continue
			}
			if _, err := warp.WarpOntoCanvas(frames[r.frame], r.h, canvas, m); err != nil {
				return fmt.Errorf("stitch: warp frame %d: %w", r.frame, err)
			}
		}
		res.Panoramas = append(res.Panoramas, &Panorama{
			Image:  canvas.Resolve(m),
			Bounds: b,
			Frames: count,
		})
		// Only the resolved image survives; hand the float buffers back
		// for the next segment (and the next trial) to reuse.
		canvas.Recycle()
	}
	if len(res.Panoramas) == 0 {
		return errors.New("stitch: no panorama could be generated")
	}
	return nil
}
