package stitch

import (
	"testing"
	"testing/quick"

	"vsresil/internal/imgproc"
	"vsresil/internal/warp"
)

// makeResult builds a Result with the given panorama dimensions.
func makeResult(dims [][4]int) *Result {
	r := &Result{}
	for _, d := range dims {
		img := imgproc.NewGray(d[0], d[1])
		for i := range img.Pix {
			img.Pix[i] = uint8(i * 7)
		}
		r.Panoramas = append(r.Panoramas, &Panorama{
			Image:  img,
			Bounds: warp.Bounds{MinX: d[2], MinY: d[3], MaxX: d[2] + d[0], MaxY: d[3] + d[1]},
			Frames: 1,
		})
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := makeResult([][4]int{{8, 6, -3, 4}, {5, 5, 10, -10}})
	dec, err := Decode(r.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != 2 {
		t.Fatalf("decoded %d panoramas", len(dec))
	}
	for i, p := range dec {
		if !p.Image.Equal(r.Panoramas[i].Image) {
			t.Errorf("panorama %d pixels differ", i)
		}
		if p.OriginX != r.Panoramas[i].Bounds.MinX || p.OriginY != r.Panoramas[i].Bounds.MinY {
			t.Errorf("panorama %d origin (%d,%d), want (%d,%d)", i,
				p.OriginX, p.OriginY,
				r.Panoramas[i].Bounds.MinX, r.Panoramas[i].Bounds.MinY)
		}
	}
}

func TestDecodePrimaryPicksLargest(t *testing.T) {
	r := makeResult([][4]int{{4, 4, 0, 0}, {10, 10, 5, 7}, {6, 6, 0, 0}})
	img, ox, oy, err := DecodePrimary(r.Encode())
	if err != nil {
		t.Fatalf("DecodePrimary: %v", err)
	}
	if img.W != 10 || img.H != 10 {
		t.Errorf("primary %dx%d, want 10x10", img.W, img.H)
	}
	if ox != 5 || oy != 7 {
		t.Errorf("origin (%d,%d), want (5,7)", ox, oy)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"too short":     {1, 2},
		"huge count":    {0xff, 0xff, 0xff, 0x7f},
		"truncated hdr": {1, 0, 0, 0, 9, 9},
	}
	r := makeResult([][4]int{{8, 8, 0, 0}})
	enc := r.Encode()
	cases["truncated pixels"] = enc[:len(enc)-5]
	cases["trailing garbage"] = append(append([]byte{}, enc...), 0xAB)
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if name == "truncated hdr" {
				data = data[:6]
			}
			if _, err := Decode(data); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDecodePrimaryEmptyResult(t *testing.T) {
	r := &Result{}
	if _, _, _, err := DecodePrimary(r.Encode()); err == nil {
		t.Error("expected error for zero panoramas")
	}
}

// Property: Encode/Decode round-trips arbitrary small panorama sets.
func TestPropertyEncodeRoundTrip(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 4 {
			sizes = sizes[:4]
		}
		var dims [][4]int
		for i, s := range sizes {
			w := 1 + int(s%13)
			h := 1 + int(s/13%13)
			dims = append(dims, [4]int{w, h, i * 3, -i})
		}
		if len(dims) == 0 {
			return true
		}
		r := makeResult(dims)
		dec, err := Decode(r.Encode())
		if err != nil {
			return false
		}
		if len(dec) != len(dims) {
			return false
		}
		for i := range dec {
			if !dec[i].Image.Equal(r.Panoramas[i].Image) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
