package stitch

import (
	"encoding/binary"
	"fmt"

	"vsresil/internal/imgproc"
	"vsresil/internal/warp"
)

// DecodedPanorama is one panorama recovered from an encoded result.
type DecodedPanorama struct {
	Image            *imgproc.Gray
	OriginX, OriginY int
}

// Decode parses the byte format produced by Result.Encode. It is used
// by the SDC-quality analysis to recover corrupted output images from
// campaign trials.
func Decode(data []byte) ([]DecodedPanorama, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("stitch: encoded result too short (%d bytes)", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	off := 4
	if count > 1<<16 {
		return nil, fmt.Errorf("stitch: implausible panorama count %d", count)
	}
	out := make([]DecodedPanorama, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+16 > len(data) {
			return nil, fmt.Errorf("stitch: truncated panorama header %d", i)
		}
		w := int(binary.LittleEndian.Uint32(data[off:]))
		h := int(binary.LittleEndian.Uint32(data[off+4:]))
		ox := int(int32(binary.LittleEndian.Uint32(data[off+8:])))
		oy := int(int32(binary.LittleEndian.Uint32(data[off+12:])))
		off += 16
		if w < 0 || h < 0 || w*h > warp.MaxCanvasPixels {
			return nil, fmt.Errorf("stitch: implausible panorama size %dx%d", w, h)
		}
		if off+w*h > len(data) {
			return nil, fmt.Errorf("stitch: truncated panorama pixels %d", i)
		}
		img := imgproc.NewGray(w, h)
		copy(img.Pix, data[off:off+w*h])
		off += w * h
		out = append(out, DecodedPanorama{Image: img, OriginX: ox, OriginY: oy})
	}
	if off != len(data) {
		return nil, fmt.Errorf("stitch: %d trailing bytes after %d panoramas", len(data)-off, count)
	}
	return out, nil
}

// DecodePrimary returns the largest-area panorama from an encoded
// result — the representative output image used by the quality metric
// — together with its panorama-coordinate origin.
func DecodePrimary(data []byte) (*imgproc.Gray, int, int, error) {
	ps, err := Decode(data)
	if err != nil {
		return nil, 0, 0, err
	}
	var best *DecodedPanorama
	for i := range ps {
		p := &ps[i]
		if best == nil || p.Image.W*p.Image.H > best.Image.W*best.Image.H {
			best = p
		}
	}
	if best == nil {
		return nil, 0, 0, fmt.Errorf("stitch: encoded result holds no panoramas")
	}
	return best.Image, best.OriginX, best.OriginY, nil
}
