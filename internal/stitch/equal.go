// Bit-exact state equality for the convergence guard: a batched
// campaign declares a resumed trial converged only when its pipeline
// state at a stage boundary is indistinguishable — on IEEE-754 bits,
// not float comparison — from the golden snapshot of the same
// boundary, so +0/-0 and NaN-payload differences count as divergence.
package stitch

import (
	"math"

	"vsresil/internal/geom"
)

// homographyEqualBits compares two transforms on their raw float bits.
func homographyEqualBits(a, b geom.Homography) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// EqualBits reports bit-exact equality with b. Resumed trials share
// the golden snapshot's backing arrays for the prefix they did not
// recompute, so element pointer identity short-circuits most of the
// scan.
func (f *FrameFeatures) EqualBits(g *FrameFeatures) bool {
	if len(f.KPs) != len(g.KPs) || len(f.Descs) != len(g.Descs) {
		return false
	}
	if !(len(f.KPs) > 0 && &f.KPs[0] == &g.KPs[0]) {
		for i := range f.KPs {
			ka, kb := &f.KPs[i], &g.KPs[i]
			if ka.X != kb.X || ka.Y != kb.Y || ka.Score != kb.Score ||
				math.Float64bits(ka.Angle) != math.Float64bits(kb.Angle) {
				return false
			}
		}
	}
	if !(len(f.Descs) > 0 && &f.Descs[0] == &g.Descs[0]) {
		for i := range f.Descs {
			if f.Descs[i] != g.Descs[i] {
				return false
			}
		}
	}
	return true
}

// EqualBits reports bit-exact equality of two registration states,
// including the unexported loop state and every recorded report.
func (a *AlignState) EqualBits(b *AlignState) bool {
	if a.N != b.N || a.Next != b.Next || a.segment != b.segment ||
		a.refFrame != b.refFrame || a.failStreak != b.failStreak ||
		a.discarded != b.discarded ||
		len(a.regs) != len(b.regs) || len(a.reports) != len(b.reports) {
		return false
	}
	if !homographyEqualBits(a.refToSegment, b.refToSegment) {
		return false
	}
	for i := range a.regs {
		ra, rb := &a.regs[i], &b.regs[i]
		if ra.frame != rb.frame || ra.segment != rb.segment || !homographyEqualBits(ra.h, rb.h) {
			return false
		}
	}
	for i := range a.reports {
		ra, rb := &a.reports[i], &b.reports[i]
		if ra.Index != rb.Index || ra.Status != rb.Status || ra.Matches != rb.Matches ||
			ra.Inliers != rb.Inliers || ra.Segment != rb.Segment || !homographyEqualBits(ra.H, rb.H) {
			return false
		}
	}
	return true
}
