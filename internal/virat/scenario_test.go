package virat

import (
	"strings"
	"testing"
)

func TestParsePresetErrors(t *testing.T) {
	for _, scale := range []string{"huge", "TESTY", "bench2", "paper "} {
		if _, err := ParsePreset(scale, 0); err == nil {
			t.Errorf("ParsePreset(%q) succeeded, want error", scale)
		} else if !strings.Contains(err.Error(), scale) {
			t.Errorf("ParsePreset(%q) error %q does not name the bad scale", scale, err)
		}
	}
	// Valid names stay case-insensitive and "" defaults to test scale.
	for _, scale := range []string{"", "test", "TEST", "Bench", "paper"} {
		if _, err := ParsePreset(scale, 0); err != nil {
			t.Errorf("ParsePreset(%q): %v", scale, err)
		}
	}
	p, err := ParsePreset("test", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Frames != 5 {
		t.Errorf("frames override: got %d, want 5", p.Frames)
	}
}

func TestParseInputErrors(t *testing.T) {
	p := TestScale()
	for _, input := range []int{-1, 0, 3, 42} {
		if _, err := ParseInput(input, p); err == nil {
			t.Errorf("ParseInput(%d) succeeded, want error", input)
		}
	}
	for _, input := range []int{1, 2} {
		s, err := ParseInput(input, p)
		if err != nil {
			t.Fatalf("ParseInput(%d): %v", input, err)
		}
		if s.Len() != p.Frames {
			t.Errorf("input %d: %d frames, want %d", input, s.Len(), p.Frames)
		}
	}
}

func TestParseScenario(t *testing.T) {
	for _, expr := range []string{"", "identity", " IDENTITY ", "identity+identity"} {
		sc, err := ParseScenario(expr)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", expr, err)
		}
		if !sc.IsIdentity() || sc.Name != "identity" {
			t.Errorf("ParseScenario(%q) = %+v, want identity", expr, sc)
		}
	}
	sc, err := ParseScenario(" Fog + BLOCKING ")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "fog+blocking" || len(sc.Stages) != 2 {
		t.Errorf("got %q with %d stages, want fog+blocking with 2", sc.Name, len(sc.Stages))
	}
	if sc.Stages[0].Name() != "fog" || sc.Stages[1].Name() != "blocking" {
		t.Errorf("stage order %s,%s, want fog,blocking", sc.Stages[0].Name(), sc.Stages[1].Name())
	}
	// Identity tokens vanish from compositions.
	sc, err = ParseScenario("identity+noise")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "noise" || len(sc.Stages) != 1 {
		t.Errorf("identity+noise = %q with %d stages, want noise with 1", sc.Name, len(sc.Stages))
	}
	for _, expr := range []string{"fogg", "noise+", "+", "noise+blur", "rain"} {
		want := expr
		switch expr {
		case "noise+", "+":
			// Trailing separators leave an empty token which composes
			// as identity, so these parse; only unknown names fail.
			if _, err := ParseScenario(expr); err != nil {
				t.Errorf("ParseScenario(%q): %v, want success", expr, err)
			}
			continue
		case "noise+blur":
			want = "blur"
		}
		_, err := ParseScenario(expr)
		if err == nil {
			t.Errorf("ParseScenario(%q) succeeded, want error", expr)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseScenario(%q) error %q does not name token %q", expr, err, want)
		}
	}
}

// TestIdentityScenarioByteIdentical is the generator-layer half of the
// PR's core guarantee: rendering through GenerateInput with the
// identity scenario must be byte-for-byte the historical ParseInput
// output.
func TestIdentityScenarioByteIdentical(t *testing.T) {
	p := TestScale()
	p.Frames = 6
	for _, input := range []int{1, 2} {
		base, err := ParseInput(input, p)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := GenerateInput(input, p, Identity())
		if err != nil {
			t.Fatal(err)
		}
		if gen.Name != base.Name {
			t.Errorf("identity scenario renamed input: %q vs %q", gen.Name, base.Name)
		}
		for i := 0; i < p.Frames; i++ {
			if !gen.Frame(i).Equal(base.Frame(i)) {
				t.Fatalf("input %d frame %d differs under identity scenario", input, i)
			}
		}
	}
}

func TestScenarioDeterministicAndDistinct(t *testing.T) {
	p := TestScale()
	p.Frames = 4
	for _, name := range []string{"noise", "lowlight", "fog", "blocking", "jitter"} {
		sc, err := ParseScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := GenerateInput(2, p, sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateInput(2, p, sc)
		if err != nil {
			t.Fatal(err)
		}
		base, err := ParseInput(2, p)
		if err != nil {
			t.Fatal(err)
		}
		if wantName := "Input2/" + name; a.Name != wantName {
			t.Errorf("%s: sequence name %q, want %q", name, a.Name, wantName)
		}
		for i := 0; i < p.Frames; i++ {
			if !a.Frame(i).Equal(b.Frame(i)) {
				t.Fatalf("%s: frame %d not deterministic", name, i)
			}
			if a.Frame(i).Equal(base.Frame(i)) {
				t.Errorf("%s: frame %d identical to the clean input", name, i)
			}
		}
	}
}

func TestScenarioCompositionOrder(t *testing.T) {
	p := TestScale()
	p.Frames = 2
	ab, err := ParseScenario("lowlight+fog")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := ParseScenario("fog+lowlight")
	if err != nil {
		t.Fatal(err)
	}
	sa, err := GenerateInput(1, p, ab)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := GenerateInput(1, p, ba)
	if err != nil {
		t.Fatal(err)
	}
	// Gain-then-fog brightens toward airlight after crushing; the
	// reverse crushes the airlight too. The chains must not commute.
	same := true
	for i := 0; i < p.Frames && same; i++ {
		same = sa.Frame(i).Equal(sb.Frame(i))
	}
	if same {
		t.Error("lowlight+fog and fog+lowlight produced identical frames")
	}
}

func TestGenerateInputBadInput(t *testing.T) {
	if _, err := GenerateInput(7, TestScale(), Identity()); err == nil {
		t.Error("GenerateInput(7) succeeded, want error")
	}
}
