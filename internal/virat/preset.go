package virat

import (
	"fmt"
	"strings"
)

// ParsePreset maps a scale name to a Preset, case-insensitively:
// "test" (or ""), "bench" or "paper". frames > 0 overrides the
// preset's frame count. Every CLI and the vsd wire format share this
// parser instead of keeping their own switch.
func ParsePreset(scale string, frames int) (Preset, error) {
	var p Preset
	switch strings.ToLower(scale) {
	case "", "test":
		p = TestScale()
	case "bench":
		p = BenchScale()
	case "paper":
		p = PaperScale()
	default:
		return p, fmt.Errorf("virat: unknown scale %q (want test, bench or paper)", scale)
	}
	if frames > 0 {
		p.Frames = frames
	}
	return p, nil
}

// ParseInput builds the numbered paper input (1 or 2) at the given
// preset.
func ParseInput(input int, p Preset) (*Sequence, error) {
	switch input {
	case 1:
		return Input1(p), nil
	case 2:
		return Input2(p), nil
	default:
		return nil, fmt.Errorf("virat: unknown input %d (want 1 or 2)", input)
	}
}
