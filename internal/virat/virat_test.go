package virat

import (
	"math"
	"testing"

	"vsresil/internal/features"
	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
)

func TestGenerateWorldDeterministic(t *testing.T) {
	cfg := WorldConfig{Size: 128, Seed: 7, Buildings: 20, Roads: 3, Blobs: 10}
	a := GenerateWorld(cfg)
	b := GenerateWorld(cfg)
	if !a.Img.Equal(b.Img) {
		t.Error("same config produced different worlds")
	}
	cfg.Seed = 8
	c := GenerateWorld(cfg)
	if a.Img.Equal(c.Img) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestGenerateWorldHasTexture(t *testing.T) {
	w := GenerateWorld(WorldConfig{Size: 256, Seed: 1, Buildings: 40, Roads: 4, Blobs: 20})
	// The world must have contrast (std dev of pixels well above 0).
	mean := w.Img.Mean()
	var variance float64
	for _, v := range w.Img.Pix {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(len(w.Img.Pix))
	if math.Sqrt(variance) < 15 {
		t.Errorf("world too flat: stddev %v", math.Sqrt(variance))
	}
}

func TestWorldProvidesCorners(t *testing.T) {
	w := GenerateWorld(WorldConfig{Size: 256, Seed: 2, Buildings: 60, Roads: 4, Blobs: 20})
	kps := features.DetectFAST(w.Img, features.DefaultFASTConfig(), nil)
	if len(kps) < 50 {
		t.Errorf("world yields only %d FAST corners", len(kps))
	}
}

func TestPoseFrameToWorldCenterMapping(t *testing.T) {
	p := Pose{X: 100, Y: 200, Heading: 0.5, Zoom: 1.2}
	h := p.FrameToWorld(64, 48)
	center := h.Apply(geom.Pt{X: 32, Y: 24})
	if math.Abs(center.X-100) > 1e-9 || math.Abs(center.Y-200) > 1e-9 {
		t.Errorf("frame center maps to (%v,%v), want (100,200)", center.X, center.Y)
	}
}

func TestPoseValidate(t *testing.T) {
	if err := (Pose{Zoom: 1}).Validate(); err != nil {
		t.Errorf("valid pose rejected: %v", err)
	}
	if err := (Pose{Zoom: 0}).Validate(); err == nil {
		t.Error("zero zoom accepted")
	}
}

func TestInput1Characteristics(t *testing.T) {
	s := Input1(TestScale())
	if s.Name != "Input1" {
		t.Errorf("name = %q", s.Name)
	}
	if s.Len() != TestScale().Frames {
		t.Errorf("frames = %d", s.Len())
	}
	if len(s.Cuts) == 0 {
		t.Error("Input1 should contain scene cuts")
	}
	for _, p := range s.Poses {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid pose: %v", err)
		}
	}
}

func TestInput2Characteristics(t *testing.T) {
	s := Input2(TestScale())
	if len(s.Cuts) != 0 {
		t.Error("Input2 should have no scene cuts")
	}
	// Smooth: consecutive pose distance small and heading constant.
	for i := 1; i < s.Len(); i++ {
		d := math.Hypot(s.Poses[i].X-s.Poses[i-1].X, s.Poses[i].Y-s.Poses[i-1].Y)
		if d > float64(s.FrameW)*0.05 {
			t.Fatalf("Input2 jump of %v px between frames %d,%d", d, i-1, i)
		}
	}
}

func TestInput1MoreVariationThanInput2(t *testing.T) {
	p := TestScale()
	s1, s2 := Input1(p), Input2(p)
	v1 := meanPoseStep(s1)
	v2 := meanPoseStep(s2)
	if v1 <= v2 {
		t.Errorf("Input1 variation %v not greater than Input2 %v", v1, v2)
	}
}

func meanPoseStep(s *Sequence) float64 {
	var sum float64
	for i := 1; i < s.Len(); i++ {
		sum += math.Hypot(s.Poses[i].X-s.Poses[i-1].X, s.Poses[i].Y-s.Poses[i-1].Y)
		sum += math.Abs(s.Poses[i].Heading-s.Poses[i-1].Heading) * 50
	}
	return sum / float64(s.Len()-1)
}

func TestFrameRenderingDeterministicAndCached(t *testing.T) {
	s := Input2(TestScale())
	a := s.Frame(0)
	b := s.Frame(0)
	if a != b {
		t.Error("frame cache returned different instances")
	}
	s2 := Input2(TestScale())
	if !a.Equal(s2.Frame(0)) {
		t.Error("re-generated sequence differs")
	}
}

func TestFrameOutOfRangePanics(t *testing.T) {
	s := Input2(TestScale())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Frame(-1)
}

func TestFramesRendersAll(t *testing.T) {
	s := Input2(TestScale())
	fs := s.Frames()
	if len(fs) != s.Len() {
		t.Fatalf("Frames returned %d", len(fs))
	}
	for i, f := range fs {
		if f.W != s.FrameW || f.H != s.FrameH {
			t.Fatalf("frame %d has size %dx%d", i, f.W, f.H)
		}
	}
}

func TestConsecutiveFramesOverlap(t *testing.T) {
	// Adjacent frames within a segment must be visually similar
	// (stitchable); frames across a cut must differ sharply.
	s := Input1(TestScale())
	cutSet := map[int]bool{}
	for _, c := range s.Cuts {
		cutSet[c] = true
	}
	// Compare denoised frames: the sequences carry per-frame sensor
	// noise, which raw pixel differencing would mistake for motion.
	denoised := make([]*imgproc.Gray, s.Len())
	for i := range denoised {
		denoised[i] = imgproc.GaussianBlur(s.Frame(i), 2, 1.2)
	}
	var cutDiffs, smoothDiffs []float64
	for i := 1; i < s.Len(); i++ {
		d := frameDiff(denoised[i-1], denoised[i])
		if cutSet[i] {
			cutDiffs = append(cutDiffs, d)
		} else {
			smoothDiffs = append(smoothDiffs, d)
			if d > 70 {
				t.Errorf("frames %d,%d too different for stitching: diff %v", i-1, i, d)
			}
		}
	}
	if len(cutDiffs) == 0 {
		t.Fatal("no cuts in Input1")
	}
	// A cut must look markedly more different than a typical
	// within-segment step (the world is self-similar, so compare
	// relatively rather than against an absolute threshold).
	meanSmooth := 0.0
	for _, d := range smoothDiffs {
		meanSmooth += d
	}
	meanSmooth /= float64(len(smoothDiffs))
	meanCut := 0.0
	for _, d := range cutDiffs {
		meanCut += d
	}
	meanCut /= float64(len(cutDiffs))
	// At Input1's fast pan speed, within-segment motion is itself
	// large; cuts only need to be measurably more different.
	if meanCut < 1.05*meanSmooth {
		t.Errorf("cuts (mean diff %v) not distinct from smooth motion (mean diff %v)", meanCut, meanSmooth)
	}
}

func frameDiff(a, b *imgproc.Gray) float64 {
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a.Pix))
}

func TestTrueHomographyConsistency(t *testing.T) {
	s := Input2(TestScale())
	h01, err := s.TrueHomography(0, 1)
	if err != nil {
		t.Fatalf("TrueHomography: %v", err)
	}
	// A world point seen at p in frame 0 must appear at h01(p) in
	// frame 1: verify by round-tripping through the pose transforms.
	w0 := s.Poses[0].FrameToWorld(s.FrameW, s.FrameH)
	w1 := s.Poses[1].FrameToWorld(s.FrameW, s.FrameH)
	p := geom.Pt{X: 30, Y: 30}
	viaWorld := w0.Apply(p)
	inFrame1 := h01.Apply(p)
	back := w1.Apply(inFrame1)
	if back.Dist(viaWorld) > 1e-6 {
		t.Errorf("homography inconsistent: %v vs %v", back, viaWorld)
	}
}

func TestInputsReturnsBoth(t *testing.T) {
	both := Inputs(TestScale())
	if len(both) != 2 || both[0].Name != "Input1" || both[1].Name != "Input2" {
		t.Errorf("Inputs = %v", []string{both[0].Name, both[1].Name})
	}
}

func TestPresets(t *testing.T) {
	for _, p := range []Preset{PaperScale(), BenchScale(), TestScale()} {
		if p.Frames <= 0 || p.FrameW <= 0 || p.FrameH <= 0 || p.WorldSize <= 0 {
			t.Errorf("invalid preset %+v", p)
		}
	}
	if PaperScale().Frames != 1000 {
		t.Error("paper scale must use 1000 frames as in §III-B")
	}
}

func BenchmarkGenerateWorld(b *testing.B) {
	cfg := WorldConfig{Size: 512, Seed: 1, Buildings: 100, Roads: 8, Blobs: 60}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateWorld(cfg)
	}
}

func BenchmarkRenderFrame(b *testing.B) {
	s := Input2(TestScale())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.frames = nil // defeat the cache
		s.Frame(0)
	}
}
