package virat

import (
	"fmt"
	"math"
	"strings"

	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
)

// Scenario is a deterministic, composable degradation chain applied to
// every rendered frame of a Sequence. The empty chain is the identity
// scenario: it leaves frames byte-for-byte what the base presets
// produce, so every golden output and equivalence guarantee built on
// Input1/Input2 carries over unchanged. Non-identity scenarios model
// the capture conditions the paper's single VIRAT setting holds fixed
// (sensor grain, illumination, atmosphere, codec, shutter), making
// (Scenario, Summarizer) a workload axis instead of a constant.
type Scenario struct {
	// Name is the canonical "+"-joined stage list ("identity" when
	// empty); it keys golden caches and labels reports, so two
	// scenarios with equal names must degrade frames identically.
	Name string
	// Stages are applied in order to each frame after base rendering
	// (world sampling, sensor noise, moving objects).
	Stages []Degradation
}

// Degradation is one in-place frame transform of a scenario chain.
// Implementations must be deterministic in (frame contents, frameIdx):
// any randomness is derived from a fixed per-stage seed and the frame
// index, never from shared state, so sequences stay replayable and
// safe to render from concurrent goroutines holding distinct frames.
type Degradation interface {
	// Name is the stage's parser token ("noise", "fog", ...).
	Name() string
	// Apply transforms the frame in place.
	Apply(g *imgproc.Gray, frameIdx int)
}

// Identity returns the do-nothing scenario.
func Identity() Scenario { return Scenario{Name: "identity"} }

// IsIdentity reports whether the scenario has no stages. The zero
// Scenario is identity too, so an unset field degrades nothing.
func (sc Scenario) IsIdentity() bool { return len(sc.Stages) == 0 }

// apply runs the stage chain over one frame.
func (sc Scenario) apply(g *imgproc.Gray, frameIdx int) {
	for _, d := range sc.Stages {
		d.Apply(g, frameIdx)
	}
}

// ScenarioNames lists the stage tokens ParseScenario accepts, in
// canonical order — the vocabulary CLIs and the vsd wire format
// advertise.
func ScenarioNames() []string {
	return []string{"identity", "noise", "lowlight", "fog", "blocking", "jitter"}
}

// ParseScenario parses a "+"-separated stage expression into a
// Scenario: "" and "identity" yield the identity scenario;
// "fog+blocking" composes fog then compression blocking. Tokens are
// case-insensitive and surrounding space is ignored. The returned
// Name is the canonical lower-case joined form.
func ParseScenario(expr string) (Scenario, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return Identity(), nil
	}
	var sc Scenario
	var names []string
	for _, tok := range strings.Split(expr, "+") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		switch tok {
		case "", "identity":
			// Identity composes as a no-op: "identity+fog" == "fog".
			continue
		case "noise":
			sc.Stages = append(sc.Stages, SensorNoise{Sigma: 6})
		case "lowlight":
			sc.Stages = append(sc.Stages, LowLight{Gain: 0.35, ReadSigma: 2.5})
		case "fog":
			sc.Stages = append(sc.Stages, Fog{Density: 0.45, Airlight: 235})
		case "blocking":
			sc.Stages = append(sc.Stages, Blocking{Block: 8, Step: 12})
		case "jitter":
			sc.Stages = append(sc.Stages, Jitter{Amplitude: 2.5, Period: 24})
		default:
			return Scenario{}, fmt.Errorf("virat: unknown scenario stage %q (want one of %s)",
				tok, strings.Join(ScenarioNames(), ", "))
		}
		names = append(names, tok)
	}
	if len(sc.Stages) == 0 {
		return Identity(), nil
	}
	sc.Name = strings.Join(names, "+")
	return sc, nil
}

// GenerateInput builds the numbered paper input at the given preset
// with the scenario's degradations applied to every frame. The
// identity scenario returns exactly ParseInput's sequence; otherwise
// the sequence name gains a "/<scenario>" suffix so reports and golden
// keys distinguish the cell.
func GenerateInput(input int, p Preset, sc Scenario) (*Sequence, error) {
	s, err := ParseInput(input, p)
	if err != nil {
		return nil, err
	}
	if !sc.IsIdentity() {
		s.Scenario = sc
		s.Name += "/" + sc.Name
	}
	return s, nil
}

// stageSeed derives the per-frame RNG seed for one stage from its
// fixed salt, keeping stages independent of each other and of the base
// sensor noise stream.
func stageSeed(salt, frameIdx uint64) uint64 {
	return salt ^ stats.Hash64(frameIdx)
}

// SensorNoise adds zero-mean Gaussian grain on top of whatever sensor
// noise the base input already has — the heavier-grain variant of the
// paper's VIRAT footage.
type SensorNoise struct {
	// Sigma is the noise standard deviation in intensity levels.
	Sigma float64
}

// Name implements Degradation.
func (d SensorNoise) Name() string { return "noise" }

// Apply implements Degradation.
func (d SensorNoise) Apply(g *imgproc.Gray, frameIdx int) {
	rng := stats.NewRNG(stageSeed(0x5E4501, uint64(frameIdx)))
	for i, v := range g.Pix {
		g.Pix[i] = imgproc.SaturateUint8(float64(v) + rng.NormFloat64()*d.Sigma)
	}
}

// LowLight models underexposure: a multiplicative gain collapse plus
// read noise that dominates once the signal is crushed.
type LowLight struct {
	// Gain scales intensities toward black (0 < Gain <= 1).
	Gain float64
	// ReadSigma is the post-gain Gaussian read noise.
	ReadSigma float64
}

// Name implements Degradation.
func (d LowLight) Name() string { return "lowlight" }

// Apply implements Degradation.
func (d LowLight) Apply(g *imgproc.Gray, frameIdx int) {
	rng := stats.NewRNG(stageSeed(0x10110, uint64(frameIdx)))
	for i, v := range g.Pix {
		g.Pix[i] = imgproc.SaturateUint8(float64(v)*d.Gain + rng.NormFloat64()*d.ReadSigma)
	}
}

// Fog blends every pixel toward a bright airlight with density growing
// down the frame (scene depth increases toward the bottom for an
// oblique aerial camera), flattening the contrast key-point detectors
// feed on.
type Fog struct {
	// Density in [0,1] is the haze strength at the most distant row.
	Density float64
	// Airlight is the atmospheric intensity fogged pixels approach.
	Airlight float64
}

// Name implements Degradation.
func (d Fog) Name() string { return "fog" }

// Apply implements Degradation.
func (d Fog) Apply(g *imgproc.Gray, frameIdx int) {
	if g.H == 0 {
		return
	}
	for y := 0; y < g.H; y++ {
		// Near rows keep half the density, far rows the full amount.
		t := d.Density * (0.5 + 0.5*float64(y)/float64(g.H))
		row := g.Pix[y*g.W : (y+1)*g.W]
		for x, v := range row {
			row[x] = imgproc.SaturateUint8(float64(v)*(1-t) + d.Airlight*t)
		}
	}
}

// Blocking imitates aggressive block-transform compression: within
// each Block×Block tile, deviations from the tile mean are quantized
// to Step levels, producing the blocking artifacts of a starved
// encoder.
type Blocking struct {
	// Block is the tile edge length in pixels.
	Block int
	// Step is the quantization step applied to deviations from the
	// tile mean.
	Step int
}

// Name implements Degradation.
func (d Blocking) Name() string { return "blocking" }

// Apply implements Degradation.
func (d Blocking) Apply(g *imgproc.Gray, frameIdx int) {
	b, q := d.Block, float64(d.Step)
	if b <= 0 || q <= 0 {
		return
	}
	for by := 0; by < g.H; by += b {
		for bx := 0; bx < g.W; bx += b {
			x1, y1 := bx+b, by+b
			if x1 > g.W {
				x1 = g.W
			}
			if y1 > g.H {
				y1 = g.H
			}
			var sum, n float64
			for y := by; y < y1; y++ {
				for x := bx; x < x1; x++ {
					sum += float64(g.Pix[y*g.W+x])
					n++
				}
			}
			mean := sum / n
			for y := by; y < y1; y++ {
				for x := bx; x < x1; x++ {
					dev := float64(g.Pix[y*g.W+x]) - mean
					g.Pix[y*g.W+x] = imgproc.SaturateUint8(mean + math.Floor(dev/q)*q)
				}
			}
		}
	}
}

// Jitter models rolling-shutter wobble: each row shifts horizontally
// by a sinusoid of the row index whose phase advances per frame, the
// characteristic jello of an unstabilized airborne sensor.
type Jitter struct {
	// Amplitude is the peak row shift in pixels.
	Amplitude float64
	// Period is the sinusoid wavelength in rows.
	Period float64
}

// Name implements Degradation.
func (d Jitter) Name() string { return "jitter" }

// Apply implements Degradation.
func (d Jitter) Apply(g *imgproc.Gray, frameIdx int) {
	if d.Period == 0 || g.W == 0 {
		return
	}
	// The per-frame phase comes from the hashed frame index so
	// consecutive frames wobble out of phase, as a real shutter does.
	phase := float64(stats.Hash64(uint64(frameIdx))%4096) / 4096 * 2 * math.Pi
	row := make([]uint8, g.W)
	for y := 0; y < g.H; y++ {
		dx := int(math.Round(d.Amplitude * math.Sin(2*math.Pi*float64(y)/d.Period+phase)))
		if dx == 0 {
			continue
		}
		src := g.Pix[y*g.W : (y+1)*g.W]
		for x := 0; x < g.W; x++ {
			sx := x - dx
			if sx < 0 {
				sx = 0
			} else if sx >= g.W {
				sx = g.W - 1
			}
			row[x] = src[sx]
		}
		copy(src, row)
	}
}
