package virat

import (
	"fmt"
	"math"

	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
)

// Preset scales a generated input (the paper runs 1000 frames; tests
// run far smaller).
type Preset struct {
	// Frames is the number of frames in the sequence.
	Frames int
	// FrameW, FrameH are the frame dimensions.
	FrameW, FrameH int
	// WorldSize is the procedural landscape edge length.
	WorldSize int
}

// PaperScale approximates the paper's input sizes (1000 frames after
// temporal sampling; VIRAT aerial footage downsampled by 3).
func PaperScale() Preset {
	return Preset{Frames: 1000, FrameW: 320, FrameH: 240, WorldSize: 4096}
}

// BenchScale is the default for the benchmark harness: large enough to
// show the paper's contrasts, small enough to run campaigns in
// minutes.
func BenchScale() Preset {
	return Preset{Frames: 60, FrameW: 128, FrameH: 96, WorldSize: 1024}
}

// TestScale keeps unit tests fast.
func TestScale() Preset {
	return Preset{Frames: 16, FrameW: 96, FrameH: 72, WorldSize: 512}
}

// Sequence is a deterministic synthetic input video with ground truth.
type Sequence struct {
	// Name labels the input in reports ("Input1", "Input2").
	Name string
	// World is the landscape the camera observed.
	World *World
	// Poses holds the camera pose of every frame.
	Poses []Pose
	// FrameW, FrameH are the rendered frame dimensions.
	FrameW, FrameH int
	// Cuts marks frame indices that begin a new camera segment (hard
	// scene changes — the mini-panorama boundaries of §III).
	Cuts []int
	// NoiseSigma is the per-frame Gaussian sensor noise (graininess of
	// real aerial footage), deterministic per frame index. Noise makes
	// registration quality degrade with inter-frame displacement the
	// way the paper's VIRAT inputs do.
	NoiseSigma float64
	// Objects are moving ground objects (vehicles, pedestrians)
	// rendered into the frames — the raw material of the event
	// summarization stage (Fig 2 of the paper).
	Objects []MovingObject
	// Scenario is the degradation chain applied to every frame after
	// base rendering. The zero value is the identity scenario, which
	// leaves frames byte-identical to the historical presets. It must
	// be set before any frame is rendered (GenerateInput does this).
	Scenario Scenario

	frames []*imgproc.Gray // lazily rendered cache
}

// MovingObject is a ground object moving linearly through world
// coordinates.
type MovingObject struct {
	// X0, Y0 is the world position at frame 0; VX, VY the per-frame
	// velocity in world pixels.
	X0, Y0, VX, VY float64
	// Size is the square object's edge length in world pixels.
	Size int
	// Shade is the object's intensity.
	Shade uint8
}

// At returns the object's world position at frame t.
func (o MovingObject) At(t int) (float64, float64) {
	return o.X0 + o.VX*float64(t), o.Y0 + o.VY*float64(t)
}

// AddMovingObjects populates the sequence with n objects moving along
// deterministic linear paths near the camera's trajectory, so that a
// useful fraction appears in view. It must be called before any frame
// is rendered.
func (s *Sequence) AddMovingObjects(n int, seed uint64) {
	if s.frames != nil {
		panic("virat: AddMovingObjects after frames were rendered")
	}
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		// Anchor each object near the camera position of a random
		// frame so objects actually enter the field of view.
		anchor := s.Poses[rng.Intn(len(s.Poses))]
		speed := 0.4 + rng.Float64()*1.6
		angle := rng.Float64() * 2 * math.Pi
		s.Objects = append(s.Objects, MovingObject{
			X0:    anchor.X + (rng.Float64()-0.5)*float64(s.FrameW),
			Y0:    anchor.Y + (rng.Float64()-0.5)*float64(s.FrameH),
			VX:    math.Cos(angle) * speed,
			VY:    math.Sin(angle) * speed,
			Size:  3 + rng.Intn(4),
			Shade: 255, // white: high contrast against any terrain
		})
	}
}

// Len returns the number of frames.
func (s *Sequence) Len() int { return len(s.Poses) }

// Frame renders (and caches) frame i.
func (s *Sequence) Frame(i int) *imgproc.Gray {
	if i < 0 || i >= len(s.Poses) {
		panic(fmt.Sprintf("virat: frame index %d out of range [0,%d)", i, len(s.Poses)))
	}
	if s.frames == nil {
		s.frames = make([]*imgproc.Gray, len(s.Poses))
	}
	if s.frames[i] == nil {
		s.frames[i] = s.render(s.Poses[i], uint64(i))
	}
	return s.frames[i]
}

// Frames renders all frames.
func (s *Sequence) Frames() []*imgproc.Gray {
	out := make([]*imgproc.Gray, s.Len())
	for i := range out {
		out[i] = s.Frame(i)
	}
	return out
}

// render samples the world through the pose with bilinear
// interpolation; off-world samples fade to a dark border. Sensor noise
// is added deterministically from the frame index.
func (s *Sequence) render(p Pose, frameIdx uint64) *imgproc.Gray {
	h := p.FrameToWorld(s.FrameW, s.FrameH)
	out := imgproc.NewGray(s.FrameW, s.FrameH)
	var rng *stats.RNG
	if s.NoiseSigma > 0 {
		rng = stats.NewRNG(0xF0A3 + frameIdx*0x9e3779b97f4a7c15)
	}
	for y := 0; y < s.FrameH; y++ {
		for x := 0; x < s.FrameW; x++ {
			wp := h.Apply(geom.Pt{X: float64(x), Y: float64(y)})
			v, ok := imgproc.SampleBilinear(s.World.Img, wp.X, wp.Y)
			if !ok {
				v = 20
			}
			if rng != nil {
				out.Set(x, y, imgproc.SaturateUint8(float64(v)+rng.NormFloat64()*s.NoiseSigma))
			} else {
				out.Set(x, y, v)
			}
		}
	}
	s.renderObjects(out, h, int(frameIdx))
	if !s.Scenario.IsIdentity() {
		s.Scenario.apply(out, int(frameIdx))
	}
	return out
}

// renderObjects stamps the moving objects visible in this frame.
func (s *Sequence) renderObjects(out *imgproc.Gray, frameToWorld geom.Homography, t int) {
	if len(s.Objects) == 0 {
		return
	}
	worldToFrame, err := frameToWorld.Inverse()
	if err != nil {
		return
	}
	for _, o := range s.Objects {
		wx, wy := o.At(t)
		fp := worldToFrame.Apply(geom.Pt{X: wx, Y: wy})
		half := o.Size / 2
		for dy := -half; dy <= half; dy++ {
			for dx := -half; dx <= half; dx++ {
				x := int(fp.X) + dx
				y := int(fp.Y) + dy
				if out.InBounds(x, y) {
					out.Set(x, y, o.Shade)
				}
			}
		}
	}
}

// ObjectFramePosition returns the frame-coordinate position of object
// oi at frame t and whether it is inside the frame — ground truth for
// the event summarization tests.
func (s *Sequence) ObjectFramePosition(oi, t int) (geom.Pt, bool) {
	worldToFrame, err := s.Poses[t].FrameToWorld(s.FrameW, s.FrameH).Inverse()
	if err != nil {
		return geom.Pt{}, false
	}
	wx, wy := s.Objects[oi].At(t)
	fp := worldToFrame.Apply(geom.Pt{X: wx, Y: wy})
	in := fp.X >= 0 && fp.Y >= 0 && fp.X < float64(s.FrameW) && fp.Y < float64(s.FrameH)
	return fp, in
}

// TrueHomography returns the ground-truth transform mapping frame i
// coordinates to frame j coordinates.
func (s *Sequence) TrueHomography(i, j int) (geom.Homography, error) {
	wi := s.Poses[i].FrameToWorld(s.FrameW, s.FrameH)
	wj := s.Poses[j].FrameToWorld(s.FrameW, s.FrameH)
	wjInv, err := wj.Inverse()
	if err != nil {
		return geom.Homography{}, fmt.Errorf("virat: pose %d not invertible: %w", j, err)
	}
	return wjInv.Mul(wi), nil
}

// Input1 generates the reproduction's analogue of VIRAT clip
// 09152008flight2tape1_2: fast panning with frequent heading and
// altitude changes plus hard scene cuts, producing many mini-panoramas
// and pronounced frame-to-frame variation.
func Input1(p Preset) *Sequence {
	world := GenerateWorld(worldConfigFor(p, 0xA1))
	rng := stats.NewRNG(0x1A1)
	margin := float64(p.FrameW) * 2
	span := float64(p.WorldSize) - 2*margin

	s := &Sequence{
		Name:       "Input1",
		World:      world,
		FrameW:     p.FrameW,
		FrameH:     p.FrameH,
		NoiseSigma: 7,
	}
	x := margin + rng.Float64()*span
	y := margin + rng.Float64()*span
	heading := rng.Float64() * 2 * math.Pi
	zoom := 1.0
	speed := float64(p.FrameW) * 0.14 // fast pan: ~14% of frame per step

	segment := 0
	for i := 0; i < p.Frames; i++ {
		// Hard scene cut roughly every ~18% of the sequence: jump to a
		// new world region with a new heading — unstitchable, starting
		// a new mini-panorama. Segments never get shorter than 8
		// frames so within-segment overlap (and hence compositional
		// masking) exists at every preset scale.
		cutEvery := p.Frames / 6
		if cutEvery < 8 {
			cutEvery = 8
		}
		if i > 0 && i%cutEvery == 0 {
			x = margin + rng.Float64()*span
			y = margin + rng.Float64()*span
			heading = rng.Float64() * 2 * math.Pi
			zoom = 0.9 + rng.Float64()*0.3
			s.Cuts = append(s.Cuts, i)
			segment++
		}
		// Frequent heading and altitude drift within a segment.
		heading += (rng.Float64() - 0.5) * 0.22
		zoom *= 1 + (rng.Float64()-0.5)*0.05
		if zoom < 0.7 {
			zoom = 0.7
		}
		if zoom > 1.4 {
			zoom = 1.4
		}
		x += math.Cos(heading) * speed * zoom
		y += math.Sin(heading) * speed * zoom
		x = clampF(x, margin, margin+span)
		y = clampF(y, margin, margin+span)
		s.Poses = append(s.Poses, Pose{X: x, Y: y, Heading: heading, Zoom: zoom})
	}
	return s
}

// Input2 generates the analogue of VIRAT clip 09152008flight2tape2_4:
// a slow, smooth, nearly straight sweep at constant altitude — low
// frame-to-frame variation and no scene cuts.
func Input2(p Preset) *Sequence {
	world := GenerateWorld(worldConfigFor(p, 0xB2))
	rng := stats.NewRNG(0x2B2)
	margin := float64(p.FrameW) * 2

	s := &Sequence{
		Name:       "Input2",
		World:      world,
		FrameW:     p.FrameW,
		FrameH:     p.FrameH,
		NoiseSigma: 4,
	}
	// A gentle diagonal sweep sized to stay inside the world.
	x := margin
	y := margin
	heading := 0.6
	zoom := 1.0
	span := float64(p.WorldSize) - 2*margin
	speed := span * 1.2 / float64(p.Frames) // slow: sized to cross once
	if max := float64(p.FrameW) * 0.03; speed > max {
		speed = max
	}
	for i := 0; i < p.Frames; i++ {
		heading += (rng.Float64() - 0.5) * 0.012 // barely drifts
		x += math.Cos(heading) * speed
		y += math.Sin(heading) * speed
		x = clampF(x, margin, margin+span)
		y = clampF(y, margin, margin+span)
		s.Poses = append(s.Poses, Pose{X: x, Y: y, Heading: 0.15, Zoom: zoom})
	}
	return s
}

// Inputs returns both paper inputs at the given preset.
func Inputs(p Preset) []*Sequence {
	return []*Sequence{Input1(p), Input2(p)}
}

func worldConfigFor(p Preset, seed uint64) WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Size = p.WorldSize
	cfg.Seed = seed
	// Feature density is fixed per unit area so every frame sees
	// enough structure for key-point registration regardless of the
	// preset's world size.
	area := p.WorldSize * p.WorldSize
	cfg.Buildings = area / 300
	cfg.Roads = p.WorldSize/96 + 4
	cfg.Blobs = area / 500
	cfg.Rocks = area / 120
	return cfg
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
