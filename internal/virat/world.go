// Package virat generates synthetic aerial surveillance video,
// standing in for the VIRAT dataset clips the paper evaluates
// (09152008flight2tape1_2 = "Input 1", 09152008flight2tape2_4 =
// "Input 2", §III-B).
//
// The substitution preserves what the paper's experiments depend on:
// Input 1 exhibits fast panning, heading and altitude changes and hard
// scene cuts (many mini-panoramas, strong approximation speedups,
// higher SDC exposure); Input 2 is a slow, smooth, mostly
// translational sweep (robust to approximation). Ground-truth
// frame-to-frame homographies are available for tests and for the
// quality metric's alignment step.
//
// The generator is fully deterministic in its seed.
package virat

import (
	"fmt"
	"math"

	"vsresil/internal/geom"
	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
)

// WorldConfig parameterizes the procedural landscape.
type WorldConfig struct {
	// Size is the world bitmap edge length in pixels.
	Size int
	// Seed drives all procedural content.
	Seed uint64
	// Buildings is the number of high-contrast rectangular structures
	// (these provide FAST corners).
	Buildings int
	// Roads is the number of road polylines crossing the world.
	Roads int
	// Blobs is the number of soft circular features (vegetation).
	Blobs int
	// Rocks is the number of small high-contrast point features
	// (boulders, vehicles, debris). They are the dominant source of
	// stable FAST corners, giving frames the key-point density of real
	// aerial footage.
	Rocks int
}

// DefaultWorldConfig returns a corner-rich landscape sized for the
// reproduction's default experiments.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{Size: 1024, Seed: 0xA1, Buildings: 260, Roads: 14, Blobs: 160, Rocks: 2600}
}

// World is a procedural overhead landscape that cameras sample frames
// from.
type World struct {
	Img *imgproc.Gray
}

// GenerateWorld renders the procedural landscape.
func GenerateWorld(cfg WorldConfig) *World {
	if cfg.Size <= 0 {
		cfg.Size = 1024
	}
	rng := stats.NewRNG(cfg.Seed)
	img := imgproc.NewGray(cfg.Size, cfg.Size)

	// Layer 1: multi-octave value noise for fields and terrain.
	noise := newValueNoise(rng.Split(), 5)
	for y := 0; y < cfg.Size; y++ {
		for x := 0; x < cfg.Size; x++ {
			v := 90 + 70*noise.at(float64(x)/float64(cfg.Size), float64(y)/float64(cfg.Size))
			img.Set(x, y, imgproc.SaturateUint8(v))
		}
	}

	// Layer 2: roads — dark anti-aliased polylines.
	for r := 0; r < cfg.Roads; r++ {
		drawRoad(img, rng)
	}

	// Layer 3: buildings — bright/dark rectangles with sharp edges.
	for b := 0; b < cfg.Buildings; b++ {
		drawBuilding(img, rng)
	}

	// Layer 4: vegetation blobs.
	for b := 0; b < cfg.Blobs; b++ {
		drawBlob(img, rng)
	}

	// Layer 5: small high-contrast point features (rocks, vehicles).
	for r := 0; r < cfg.Rocks; r++ {
		drawRock(img, rng)
	}

	return &World{Img: img}
}

// valueNoise is seeded multi-octave bilinear value noise on a lattice.
type valueNoise struct {
	octaves []noiseLattice
}

type noiseLattice struct {
	n    int
	grid []float64
}

func newValueNoise(rng *stats.RNG, octaves int) *valueNoise {
	vn := &valueNoise{}
	n := 4
	for o := 0; o < octaves; o++ {
		lat := noiseLattice{n: n, grid: make([]float64, (n+1)*(n+1))}
		for i := range lat.grid {
			lat.grid[i] = rng.Float64()*2 - 1
		}
		vn.octaves = append(vn.octaves, lat)
		n *= 2
	}
	return vn
}

// at samples the noise at normalized coordinates in [0, 1); the result
// is roughly in [-1, 1].
func (vn *valueNoise) at(u, v float64) float64 {
	var sum, amp, norm float64
	amp = 1
	for _, lat := range vn.octaves {
		sum += amp * lat.at(u, v)
		norm += amp
		amp *= 0.55
	}
	return sum / norm
}

func (lat noiseLattice) at(u, v float64) float64 {
	fx := u * float64(lat.n)
	fy := v * float64(lat.n)
	x0 := int(fx)
	y0 := int(fy)
	if x0 >= lat.n {
		x0 = lat.n - 1
	}
	if y0 >= lat.n {
		y0 = lat.n - 1
	}
	tx := smooth(fx - float64(x0))
	ty := smooth(fy - float64(y0))
	s := lat.n + 1
	g00 := lat.grid[y0*s+x0]
	g10 := lat.grid[y0*s+x0+1]
	g01 := lat.grid[(y0+1)*s+x0]
	g11 := lat.grid[(y0+1)*s+x0+1]
	top := g00 + tx*(g10-g00)
	bot := g01 + tx*(g11-g01)
	return top + ty*(bot-top)
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

func drawRoad(img *imgproc.Gray, rng *stats.RNG) {
	size := img.W
	x := rng.Float64() * float64(size)
	y := rng.Float64() * float64(size)
	angle := rng.Float64() * 2 * math.Pi
	width := 2 + rng.Float64()*3
	length := float64(size) * (0.5 + rng.Float64())
	shade := uint8(35 + rng.Intn(30))
	steps := int(length)
	for s := 0; s < steps; s++ {
		angle += (rng.Float64() - 0.5) * 0.02 // gentle curvature
		x += math.Cos(angle)
		y += math.Sin(angle)
		stampDisc(img, int(x), int(y), width, shade)
	}
}

func drawBuilding(img *imgproc.Gray, rng *stats.RNG) {
	size := img.W
	w := 6 + rng.Intn(22)
	h := 6 + rng.Intn(22)
	x0 := rng.Intn(size - w)
	y0 := rng.Intn(size - h)
	var shade uint8
	if rng.Intn(2) == 0 {
		shade = uint8(190 + rng.Intn(60)) // bright roof
	} else {
		shade = uint8(10 + rng.Intn(40)) // dark roof / shadow
	}
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			img.Set(x, y, shade)
		}
	}
	// A contrasting inner block gives each building internal corners.
	if w > 10 && h > 10 {
		inner := uint8(int(shade)/2 + 60)
		for y := y0 + h/4; y < y0+3*h/4; y++ {
			for x := x0 + w/4; x < x0+w/2; x++ {
				img.Set(x, y, inner)
			}
		}
	}
}

func drawBlob(img *imgproc.Gray, rng *stats.RNG) {
	size := img.W
	cx := rng.Intn(size)
	cy := rng.Intn(size)
	r := 3 + rng.Float64()*8
	shade := uint8(50 + rng.Intn(60))
	stampDisc(img, cx, cy, r, shade)
}

func drawRock(img *imgproc.Gray, rng *stats.RNG) {
	size := img.W
	cx := rng.Intn(size)
	cy := rng.Intn(size)
	w := 2 + rng.Intn(3)
	h := 2 + rng.Intn(3)
	base := int(img.AtClamped(cx, cy))
	// Contrast against the local background, clipped to valid range.
	shade := base + 70 + rng.Intn(80)
	if rng.Intn(2) == 0 {
		shade = base - 70 - rng.Intn(80)
	}
	v := imgproc.SaturateUint8(float64(shade))
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			x, y := cx+dx, cy+dy
			if img.InBounds(x, y) {
				img.Set(x, y, v)
			}
		}
	}
}

func stampDisc(img *imgproc.Gray, cx, cy int, r float64, shade uint8) {
	ri := int(r) + 1
	for dy := -ri; dy <= ri; dy++ {
		for dx := -ri; dx <= ri; dx++ {
			if float64(dx*dx+dy*dy) > r*r {
				continue
			}
			x, y := cx+dx, cy+dy
			if img.InBounds(x, y) {
				img.Set(x, y, shade)
			}
		}
	}
}

// Pose is a camera pose over the world: position of the frame center
// in world coordinates, heading (rotation) and zoom (ground sampling
// scale; >1 means each frame pixel covers more world area — higher
// altitude).
type Pose struct {
	X, Y    float64
	Heading float64
	Zoom    float64
}

// FrameToWorld returns the homography mapping frame pixel coordinates
// (origin top-left of a frameW x frameH image) to world coordinates.
func (p Pose) FrameToWorld(frameW, frameH int) geom.Homography {
	center := geom.Translation(-float64(frameW)/2, -float64(frameH)/2)
	zoom := geom.Scaling(p.Zoom, p.Zoom)
	rot := geom.Rotation(p.Heading)
	trans := geom.Translation(p.X, p.Y)
	return trans.Mul(rot).Mul(zoom).Mul(center)
}

// Validate reports configuration problems early.
func (p Pose) Validate() error {
	if p.Zoom <= 0 {
		return fmt.Errorf("virat: non-positive zoom %v", p.Zoom)
	}
	return nil
}
