package summarize

import (
	"bytes"
	"strings"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func testFrames(t *testing.T, n int) []*imgproc.Gray {
	t.Helper()
	p := virat.TestScale()
	p.Frames = n
	seq, err := virat.ParseInput(2, p)
	if err != nil {
		t.Fatal(err)
	}
	return seq.Frames()
}

func TestParse(t *testing.T) {
	cfg := vs.DefaultConfig(vs.AlgKDS)
	for name, want := range map[string]string{"": "vs", "vs": "vs", "VS": "vs",
		"storyboard": "storyboard", "StoryBoard": "storyboard"} {
		s, err := Parse(name, cfg)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := Parse("collage", cfg); err == nil {
		t.Error("Parse(collage) succeeded, want error")
	} else if !strings.Contains(err.Error(), "collage") {
		t.Errorf("error %q does not name the bad summarizer", err)
	}
}

// TestVSAdapterByteIdentical proves the seam adds nothing: the VS
// adapter's fault.App produces byte-for-byte what the direct vs.App
// construction always produced.
func TestVSAdapterByteIdentical(t *testing.T) {
	frames := testFrames(t, 8)
	cfg := vs.DefaultConfig(vs.AlgVS)

	direct := vs.New(cfg, len(frames))
	res, err := direct.Run(frames, probe.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Encode()

	app, staged := VS{Cfg: cfg}.Bind(frames)
	got, err := app(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("VS adapter app output differs from direct vs.App run")
	}
	golden, err := fault.CaptureGoldenStaged(staged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Output, want) {
		t.Error("VS adapter staged golden output differs from direct run")
	}
}

func TestStoryboardDeterministicAndDecodable(t *testing.T) {
	frames := testFrames(t, 10)
	sb := DefaultStoryboard()
	app, _ := sb.Bind(frames)
	a, err := app(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	b, err := app(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("storyboard output not deterministic")
	}
	img, _, _, err := stitch.DecodePrimary(a)
	if err != nil {
		t.Fatalf("storyboard output not decodable: %v", err)
	}
	k := sb.norm().Panels
	fw, fh := frames[0].W, frames[0].H
	wantW := k*fw + (k-1)*sb.norm().Gap
	if img.W != wantW || img.H != fh {
		t.Errorf("storyboard %dx%d, want %dx%d", img.W, img.H, wantW, fh)
	}
}

// TestStoryboardStagedEquivalence checks the StagedApp contract: the
// golden capture's output matches the one-shot app, and resuming from
// every checkpoint with seeded counters reproduces the golden bytes.
func TestStoryboardStagedEquivalence(t *testing.T) {
	frames := testFrames(t, 10)
	app, staged := DefaultStoryboard().Bind(frames)
	want, err := app(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := fault.CaptureGoldenStaged(staged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden.Output, want) {
		t.Fatal("staged golden output differs from one-shot app")
	}
	if len(golden.Checkpoints) != len(frames)+2 {
		t.Fatalf("%d checkpoints, want %d (score[i] each frame + select + render)",
			len(golden.Checkpoints), len(frames)+2)
	}
	for _, cp := range golden.Checkpoints {
		m := fault.New()
		m.SeedCounters(cp.Counters)
		got, err := staged.Resume(m, cp.State)
		if err != nil {
			t.Fatalf("resume from %s: %v", cp.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("resume from %s diverges from golden output", cp.Name)
		}
		end := fault.TapCounters{Steps: golden.Steps, GPR: golden.GPRTaps, FPR: golden.FPRTaps,
			RegionGPR: golden.RegionGPR, RegionFPR: golden.RegionFPR}
		if m.Counters() != end {
			t.Errorf("resume from %s ends at different tap counters", cp.Name)
		}
	}
}

// TestStoryboardSensitiveToInput guards against a degenerate
// summarizer: different scenarios must produce different storyboards.
func TestStoryboardSensitiveToInput(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 10
	clean, err := virat.GenerateInput(2, p, virat.Identity())
	if err != nil {
		t.Fatal(err)
	}
	fog, err := virat.ParseScenario("fog")
	if err != nil {
		t.Fatal(err)
	}
	foggy, err := virat.GenerateInput(2, p, fog)
	if err != nil {
		t.Fatal(err)
	}
	sb := DefaultStoryboard()
	appA, _ := sb.Bind(clean.Frames())
	appB, _ := sb.Bind(foggy.Frames())
	a, err := appA(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	b, err := appB(fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("storyboard identical across clean and fog scenarios")
	}
}

func TestStoryboardEmptyInput(t *testing.T) {
	app, staged := DefaultStoryboard().Bind(nil)
	if _, err := app(fault.New()); err == nil {
		t.Error("storyboard on empty input succeeded, want error")
	}
	if _, err := staged.RunFull(fault.New(), nil); err == nil {
		t.Error("staged storyboard on empty input succeeded, want error")
	}
}

// widthFaultSink passes all traffic through untouched except the
// first Idx tap inside the blend region — the filmstrip width in
// render — which it replaces with an enormous positive value, the
// shape a high-bit register flip produces.
type widthFaultSink struct {
	probe.Sink
	region probe.Region
	width  int
	hit    bool
}

func (s *widthFaultSink) Enter(r probe.Region) func() {
	prev := s.region
	s.region = r
	return func() { s.region = prev }
}

func (s *widthFaultSink) Idx(v int) int {
	if s.region == probe.RBlend && !s.hit {
		s.hit = true
		return s.width
	}
	return v
}

// TestStoryboardCorruptedWidth pins the allocation guard in render: a
// fault-corrupted filmstrip width must come back as an error (a crash
// outcome), never reach the allocator. Without the guard this test
// dies with a fatal runtime OOM trying to allocate terabytes.
func TestStoryboardCorruptedWidth(t *testing.T) {
	frames := virat.Input2(virat.TestScale()).Frames()
	a := &storyboardApp{cfg: DefaultStoryboard().norm(), frames: frames}
	for _, w := range []int{1 << 40, 1 << 62, 0, -5} {
		s := &widthFaultSink{Sink: probe.Nop{}, width: w}
		_, err := a.runFrom(sbState{}, s, nil)
		if err == nil {
			t.Errorf("width %d: render succeeded, want corrupted-width error", w)
			continue
		}
		if !s.hit {
			t.Fatalf("width %d: sink never saw the blend-region width tap", w)
		}
		if !strings.Contains(err.Error(), "corrupted filmstrip width") {
			t.Errorf("width %d: error %q, want corrupted filmstrip width", w, err)
		}
	}
}

func TestStoryboardKeyStable(t *testing.T) {
	if DefaultStoryboard().Key() != DefaultStoryboard().Key() {
		t.Error("storyboard key unstable")
	}
	a := Storyboard{Cfg: StoryboardConfig{Panels: 6, ScoreStride: 7, Gap: 2}}
	if a.Key() == DefaultStoryboard().Key() {
		t.Error("different configs share a key")
	}
}
