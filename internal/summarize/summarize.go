// Package summarize defines the pluggable summarizer seam of the
// workload matrix. The paper studies exactly one summarizer — the
// panorama-stitching VS pipeline of internal/vs — on one capture
// setting; this package lifts that choice into an interface so the
// fault-injection engine can ask whether the approximation-vs-SDC
// tradeoff generalizes across summarizer families (ROADMAP's "scenario
// matrix + pluggable summarizer backends").
//
// Two backends ship: the VS adapter (the paper's pipeline, all four
// approximation variants) and a storyboard keyframe summarizer in
// VideoSum's segment-scoring shape. Both expose the full campaign
// contract — a fault.App for one-shot runs and a fault.StagedApp so
// golden-prefix checkpointing, bucket batching, sharding and the
// fabric carry over unchanged.
package summarize

import (
	"fmt"
	"strings"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/vs"
)

// Summarizer is one summarization backend, immutable after
// construction and safe to share across campaign workers.
type Summarizer interface {
	// Name is the backend's parser token ("vs", "storyboard").
	Name() string
	// Key is the canonical configuration fingerprint used in golden
	// cache keys: two summarizers with equal keys must produce
	// byte-identical output on identical input.
	Key() string
	// Bind fixes the input frames and returns the campaign views: the
	// one-shot fault.App and the stage-resumable fault.StagedApp.
	// Both views run the same computation — same taps, same bytes.
	Bind(frames []*imgproc.Gray) (fault.App, fault.StagedApp)
}

// Names lists the backend tokens Parse accepts.
func Names() []string { return []string{"vs", "storyboard"} }

// Parse maps a backend token (case-insensitively; "" defaults to the
// paper's VS pipeline) to a Summarizer. cfg carries the VS variant
// selection and the shared determinism seed; the storyboard backend
// uses only the seed.
func Parse(name string, cfg vs.Config) (Summarizer, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "vs":
		return VS{Cfg: cfg}, nil
	case "storyboard":
		// The storyboard is RNG-free; the VS config's variant and seed
		// axes do not apply to it.
		return DefaultStoryboard(), nil
	default:
		return nil, fmt.Errorf("summarize: unknown summarizer %q (want one of %s)",
			name, strings.Join(Names(), ", "))
	}
}

// VS adapts the paper's panorama-stitching pipeline (internal/vs) to
// the Summarizer seam. The algorithm axis (VS, VS_RFD, VS_KDS, VS_SM)
// lives inside its Config.
type VS struct {
	Cfg vs.Config
}

// Name implements Summarizer.
func (VS) Name() string { return "vs" }

// Key implements Summarizer. It matches the historical campaign
// workload key prefix so identity-scenario golden cache entries mean
// the same workload they always did.
func (v VS) Key() string {
	return fmt.Sprintf("vs:%s|seed=%d", v.Cfg.Algorithm, v.Cfg.Seed)
}

// Bind implements Summarizer: exactly vs.New + RunEncoded/Staged, the
// construction every call site used before the seam existed.
func (v VS) Bind(frames []*imgproc.Gray) (fault.App, fault.StagedApp) {
	app := vs.New(v.Cfg, len(frames))
	return app.RunEncoded(frames), app.Staged(frames)
}

// Run executes the summarizer once outside the fault machinery, under
// an arbitrary probe sink — the serving path cmd/vsrun and the vsd
// summarize job share. The result decodes the same way for every
// backend: a panorama set whose primary image is the summary.
func Run(sum Summarizer, frames []*imgproc.Gray, sink probe.Sink) (*stitch.Result, error) {
	switch s := sum.(type) {
	case VS:
		return vs.New(s.Cfg, len(frames)).Run(frames, sink)
	case Storyboard:
		return s.Run(frames, sink)
	default:
		return nil, fmt.Errorf("summarize: %s has no serving path", sum.Name())
	}
}
