package summarize

import (
	"fmt"
	"math"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/warp"
)

// StoryboardConfig parameterizes the storyboard summarizer.
type StoryboardConfig struct {
	// Panels is the number of keyframes in the storyboard (K).
	Panels int
	// ScoreStride is the pixel sampling stride of the content-change
	// scoring pass.
	ScoreStride int
	// Gap is the separator width between panels, in pixels.
	Gap int
}

// DefaultStoryboard returns the standard storyboard configuration.
func DefaultStoryboard() Storyboard {
	return Storyboard{Cfg: StoryboardConfig{Panels: 4, ScoreStride: 7, Gap: 2}}
}

// Storyboard is a keyframe summarizer in VideoSum's segment-scoring
// shape: score every frame by content change against its predecessor,
// partition the timeline into Panels segments of equal cumulative
// score mass, pick the highest-scoring frame of each segment, and
// composite the picks into one filmstrip image. It is fully
// deterministic (no RNG) and, unlike the stitching pipeline, carries
// no geometric registration — a structurally different summarizer
// family for the resiliency matrix.
//
// The output is a single-panorama stitch.Result, so the encoded
// artifact, DecodePrimary and the quality metrics all work unchanged.
type Storyboard struct {
	Cfg StoryboardConfig
}

// Name implements Summarizer.
func (Storyboard) Name() string { return "storyboard" }

// Key implements Summarizer.
func (sb Storyboard) Key() string {
	c := sb.norm()
	return fmt.Sprintf("storyboard:k=%d|ss=%d|gap=%d", c.Panels, c.ScoreStride, c.Gap)
}

// norm returns the config with zero fields defaulted.
func (sb Storyboard) norm() StoryboardConfig {
	c := sb.Cfg
	if c.Panels < 1 {
		c.Panels = 4
	}
	if c.ScoreStride < 1 {
		c.ScoreStride = 7
	}
	if c.Gap < 0 {
		c.Gap = 0
	}
	return c
}

// Bind implements Summarizer.
func (sb Storyboard) Bind(frames []*imgproc.Gray) (fault.App, fault.StagedApp) {
	a := &storyboardApp{cfg: sb.norm(), frames: frames}
	return func(m *fault.Machine) ([]byte, error) {
		return a.RunFull(m, nil)
	}, a
}

// Run executes the summarizer on frames under any sink (a Meter for
// serving runs, Nop for the clean path; nil is normalized to Nop) and
// returns the storyboard as a stitching result.
func (sb Storyboard) Run(frames []*imgproc.Gray, s probe.Sink) (*stitch.Result, error) {
	a := &storyboardApp{cfg: sb.norm(), frames: frames}
	return a.runFrom(sbState{}, probe.OrNop(s), nil)
}

// Storyboard pipeline phases, in execution order.
const (
	sbScore  int8 = iota // per-frame content-change scoring
	sbSelect             // segment partition + keyframe argmax
	sbRender             // filmstrip compositing
)

// sbState is the resumable state between storyboard stages. Like
// vs.pipeState it is copyable by design: snapshots cap their slices so
// appends by resumed trials allocate instead of sharing a tail.
type sbState struct {
	phase  int8
	next   int       // frames scored so far
	scores []float64 // per-frame content-change scores
	keys   []int     // selected keyframe indices (set by sbSelect)
}

// snapshot returns a copy safe to retain across further progress.
func (st sbState) snapshot() sbState {
	st.scores = st.scores[:len(st.scores):len(st.scores)]
	st.keys = st.keys[:len(st.keys):len(st.keys)]
	return st
}

// storyboardApp is the campaign view of a Storyboard over a fixed
// input: a fault.StagedApp whose RunFull with a nil snap hook executes
// exactly what the one-shot fault.App does.
type storyboardApp struct {
	cfg    StoryboardConfig
	frames []*imgproc.Gray
}

var _ fault.StagedApp = (*storyboardApp)(nil)

// RunFull implements fault.StagedApp. Boundaries are placed before
// each frame's scoring pass ("score[i]"), before the selection stage
// ("select") and before compositing ("render").
func (a *storyboardApp) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	var snapState func(string, sbState)
	if snap != nil {
		snapState = func(name string, st sbState) { snap(name, st) }
	}
	res, err := a.runFrom(sbState{}, m, snapState)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}

// Resume implements fault.StagedApp on a value copy of the shared
// golden state; the snapshot's capped slices keep it immutable.
func (a *storyboardApp) Resume(m *fault.Machine, state any) ([]byte, error) {
	st, ok := state.(sbState)
	if !ok {
		return nil, fmt.Errorf("summarize: resume state is %T, want sbState", state)
	}
	res, err := a.runFrom(st, m, nil)
	if err != nil {
		return nil, err
	}
	return res.Encode(), nil
}

// runFrom executes the pipeline from st onward. snap, when non-nil,
// receives a labeled snapshot at every stage boundary before the
// boundary's first tap — the golden checkpoint capture.
func (a *storyboardApp) runFrom(st sbState, s probe.Sink, snap func(name string, st sbState)) (*stitch.Result, error) {
	boundary := func(name string) {
		if snap != nil {
			snap(name, st.snapshot())
		}
	}
	if st.phase == sbScore {
		if len(a.frames) == 0 {
			return nil, stitch.ErrNoFrames
		}
		if st.scores == nil {
			st.scores = make([]float64, 0, len(a.frames))
		}
		for st.next < len(a.frames) {
			boundary(fmt.Sprintf("score[%d]", st.next))
			v, err := a.scoreFrame(st.next, s)
			if err != nil {
				return nil, err
			}
			st.scores = append(st.scores, v)
			st.next++
		}
		boundary("select")
		st.phase = sbSelect
	}
	if st.phase == sbSelect {
		keys, err := a.selectKeyframes(st.scores, s)
		if err != nil {
			return nil, err
		}
		st.keys = keys
		st.phase = sbRender
		boundary("render")
	}
	return a.render(st.keys, s)
}

// scoreFrame computes frame i's content-change score: the sum of
// absolute intensity differences against the previous frame over a
// strided pixel sample (frame 0 scores against black, so a sequence
// always carries mass). The pixel traffic runs through sink taps in
// the decode region — the storyboard's analogue of the VS pipeline's
// instrumented decode stage.
func (a *storyboardApp) scoreFrame(i int, s probe.Sink) (float64, error) {
	defer s.Enter(probe.RDecode)()
	cur := a.frames[i]
	var prev *imgproc.Gray
	if i > 0 {
		prev = a.frames[i-1]
	}
	n := s.Cnt(len(cur.Pix))
	if n < 0 || n > len(cur.Pix) {
		return 0, fmt.Errorf("summarize: corrupted pixel count %d", n)
	}
	var sum float64
	var samples uint64
	for j := 0; j < n; j += a.cfg.ScoreStride {
		idx := s.Idx(j)
		if idx < 0 || idx >= len(cur.Pix) {
			return 0, fmt.Errorf("summarize: corrupted sample index %d", idx)
		}
		v := float64(s.Pix(cur.Pix[idx]))
		var p float64
		if prev != nil && idx < len(prev.Pix) {
			p = float64(prev.Pix[idx])
		}
		sum = s.F64(sum + math.Abs(v-p))
		samples++
	}
	s.Ops(probe.OpLoad, samples*2)
	s.Ops(probe.OpInt, samples*2)
	s.Ops(probe.OpFloat, samples*3)
	s.Ops(probe.OpBranch, samples)
	return sum, nil
}

// selectKeyframes partitions the timeline into Panels segments of
// equal cumulative score mass (equal-length segments when the video is
// static) and returns the highest-scoring frame of each segment, ties
// to the earliest.
func (a *storyboardApp) selectKeyframes(scores []float64, s probe.Sink) ([]int, error) {
	defer s.Enter(probe.RApp)()
	k := s.Cnt(a.cfg.Panels)
	if k < 1 || k > 1<<20 {
		return nil, fmt.Errorf("summarize: corrupted panel count %d", k)
	}
	if k > len(scores) {
		k = len(scores)
	}
	var total float64
	for _, v := range scores {
		total += v
	}
	total = s.F64(total)
	// bounds[j] is the first frame of segment j; segment j covers
	// [bounds[j], bounds[j+1]).
	bounds := make([]int, k+1)
	if total <= 0 || math.IsNaN(total) {
		for j := 0; j <= k; j++ {
			bounds[j] = j * len(scores) / k
		}
	} else {
		j := 1
		var cum float64
		for i, v := range scores {
			cum = s.F64(cum + v)
			for j < k && cum >= total*float64(j)/float64(k) {
				bounds[j] = i + 1
				j++
			}
		}
		for ; j <= k; j++ {
			bounds[j] = len(scores)
		}
	}
	keys := make([]int, 0, k)
	for j := 0; j < k; j++ {
		lo, hi := bounds[j], bounds[j+1]
		if lo >= hi {
			// Mass so concentrated the segment is empty: reuse the
			// boundary frame so the storyboard always has k panels.
			idx := lo
			if idx >= len(scores) {
				idx = len(scores) - 1
			}
			keys = append(keys, idx)
			continue
		}
		best, bi := math.Inf(-1), lo
		for i := lo; i < hi; i++ {
			if scores[i] > best {
				best, bi = scores[i], i
			}
		}
		keys = append(keys, s.Idx(bi))
	}
	s.Ops(probe.OpFloat, uint64(len(scores))*2)
	s.Ops(probe.OpBranch, uint64(len(scores)))
	return keys, nil
}

// render composites the keyframes into one horizontal filmstrip with
// Gap-pixel black separators, passing a strided sample of the pixel
// traffic through blend-region taps (the same 97-stride idiom as the
// VS decode stage — tapping every byte would dominate the tap space).
func (a *storyboardApp) render(keys []int, s probe.Sink) (*stitch.Result, error) {
	defer s.Enter(probe.RBlend)()
	if len(keys) == 0 {
		return nil, stitch.ErrNoFrames
	}
	fw, fh := a.frames[0].W, a.frames[0].H
	w := s.Idx(len(keys)*fw + (len(keys)-1)*a.cfg.Gap)
	// A corrupted width must fail like the warp canvas guard does —
	// returning an error the fault monitor classifies as a crash — not
	// hand the runtime an unbounded allocation (a high-bit flip here
	// asks for terabytes, which is a fatal OOM, not a recoverable
	// panic). Divide instead of multiplying so a near-MaxInt width
	// cannot overflow past the check.
	if w < 1 || fh < 1 || w > warp.MaxCanvasPixels/fh {
		return nil, fmt.Errorf("summarize: corrupted filmstrip width %d", w)
	}
	canvas := imgproc.NewGray(w, fh)
	for j, ki := range keys {
		if ki < 0 || ki >= len(a.frames) {
			return nil, fmt.Errorf("summarize: corrupted keyframe index %d", ki)
		}
		src := a.frames[ki]
		x0 := j * (fw + a.cfg.Gap)
		for y := 0; y < fh && y < src.H; y++ {
			lo := y*canvas.W + x0
			if lo >= len(canvas.Pix) {
				break
			}
			hi := lo + fw
			if hi > (y+1)*canvas.W {
				hi = (y + 1) * canvas.W
			}
			if hi > len(canvas.Pix) {
				hi = len(canvas.Pix)
			}
			copy(canvas.Pix[lo:hi], src.Pix[y*src.W:])
		}
		for t := 0; t < fw*fh; t += 97 {
			idx := s.Idx(t)
			if idx < 0 || idx >= fw*fh {
				return nil, fmt.Errorf("summarize: corrupted panel offset %d", idx)
			}
			cx, cy := x0+idx%fw, idx/fw
			if canvas.InBounds(cx, cy) {
				canvas.Set(cx, cy, s.Pix(canvas.At(cx, cy)))
			}
		}
		px := uint64(fw * fh)
		s.Ops(probe.OpLoad, px*2)
		s.Ops(probe.OpStore, px)
		s.Ops(probe.OpInt, px*2)
		s.Ops(probe.OpBranch, px/8)
	}
	pano := &stitch.Panorama{
		Image:  canvas,
		Bounds: warp.Bounds{MinX: 0, MinY: 0, MaxX: canvas.W, MaxY: canvas.H},
		Frames: len(keys),
	}
	return &stitch.Result{Panoramas: []*stitch.Panorama{pano}}, nil
}
