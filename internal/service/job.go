// Package service is the job-queue layer that turns the vsresil
// engines into a long-running daemon: summarization requests and
// fault-injection campaigns are submitted as jobs over HTTP (cmd/vsd),
// executed on a bounded worker pool with priorities and per-job
// cancellation, and journaled so queued and half-finished work
// survives a restart.
//
// The design mirrors how production injection services (AVFI-style
// campaign managers) treat campaigns: as long-running, interruptible
// workloads that checkpoint per-trial progress. A campaign job streams
// fault.TrialRecord checkpoints into the journal; after a crash or
// SIGTERM the replayed job resumes from the completed-trial set and —
// because campaign plans are pre-generated from the seed — finishes
// with the same outcome counts an uninterrupted run produces.
package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"time"

	"vsresil/internal/experiments"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// JobType identifies what a job runs.
type JobType string

// The three job types: one application run, one fault-injection
// campaign, one paper-figure experiment.
const (
	JobSummarize  JobType = "summarize"
	JobCampaign   JobType = "campaign"
	JobExperiment JobType = "experiment"
)

// JobState is a job's lifecycle state.
type JobState string

// Lifecycle: queued -> running -> done | failed | canceled. A running
// job interrupted by daemon shutdown is re-queued from the journal on
// the next start.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// InputSpec selects the frames a job runs on: a generated VIRAT-style
// preset, or PGM frames uploaded inline.
type InputSpec struct {
	// Input selects the synthetic sequence: 1 (fast-panning, scene
	// cuts) or 2 (slow, smooth). Default 1.
	Input int `json:"input,omitempty"`
	// Scale is the preset size: "test", "bench" or "paper" (default
	// "test").
	Scale string `json:"scale,omitempty"`
	// Frames overrides the preset's frame count (0 = preset default).
	Frames int `json:"frames,omitempty"`
	// Scenario degrades the generated sequence: "" or "identity" for
	// the clean baseline, or a "+"-chain of noise, lowlight, fog,
	// blocking, jitter. Rejected for uploaded frames.
	Scenario string `json:"scenario,omitempty"`
	// FramesPGM uploads the input directly: base64-encoded binary PGM
	// (P5) frames, all the same size. When set, Input/Scale/Frames are
	// ignored.
	FramesPGM []string `json:"frames_pgm,omitempty"`
}

// SummarizeSpec parameterizes a summarize job: one end-to-end run of a
// summarizer backend producing a panorama (or filmstrip) set.
type SummarizeSpec struct {
	InputSpec
	// Summarizer selects the backend: "" or "vs" for panorama
	// stitching, "storyboard" for the keyframe filmstrip.
	Summarizer string `json:"summarizer,omitempty"`
	// Algorithm is the VS variant name: VS, VS_RFD, VS_KDS or VS_SM
	// (default VS). Applies to the vs backend.
	Algorithm string `json:"algorithm,omitempty"`
	// Seed fixes the variant's stochastic choices.
	Seed uint64 `json:"seed,omitempty"`
	// IncludePGM returns the primary panorama as base64 PGM in the
	// result (off by default: panoramas can be large).
	IncludePGM bool `json:"include_pgm,omitempty"`
}

// CampaignSpec parameterizes a fault-injection campaign job.
type CampaignSpec struct {
	InputSpec
	// Summarizer selects the backend under test: "" or "vs" for
	// panorama stitching, "storyboard" for the keyframe filmstrip.
	Summarizer string `json:"summarizer,omitempty"`
	// Algorithm is the VS variant under test (default VS). Applies to
	// the vs backend.
	Algorithm string `json:"algorithm,omitempty"`
	// Class is the register class: "gpr" or "fpr" (default gpr).
	Class string `json:"class,omitempty"`
	// Region restricts injections to one function ("" = whole app).
	Region string `json:"region,omitempty"`
	// Trials is the number of injections (required for fixed-budget
	// campaigns, > 0; ignored when Adaptive is set).
	Trials int `json:"trials"`
	// Adaptive switches from the fixed Trials budget to
	// confidence-driven allocation: the campaign rounds trials into the
	// widest-interval strata and stops once every per-stratum outcome
	// rate reaches the target half-width.
	Adaptive bool `json:"adaptive,omitempty"`
	// Precision is the adaptive target half-width (0 = 0.05).
	Precision float64 `json:"precision,omitempty"`
	// Confidence is the adaptive interval level (0 = 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// RoundSize is the adaptive per-round trial budget (0 = planner
	// default).
	RoundSize int `json:"round_size,omitempty"`
	// MaxTrials caps the adaptive allocation (0 = the fixed-budget
	// equivalent for the same precision/confidence/strata).
	MaxTrials int `json:"max_trials,omitempty"`
	// Seed makes the campaign reproducible (and resumable).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the campaign's own trial parallelism
	// (0 = GOMAXPROCS). The service worker running the job is a
	// separate, coarser bound.
	Workers int `json:"workers,omitempty"`
	// Shards splits the campaign into that many disjoint sub-campaigns
	// executed concurrently and merged bit-identically to the unsharded
	// run (0 or 1 = unsharded). Workers applies per shard.
	Shards int `json:"shards,omitempty"`
}

// ExperimentSpec parameterizes a paper-figure experiment job.
type ExperimentSpec struct {
	// Fig is the figure name from the experiments registry
	// (5, 6, 8, 9, 10, 11a, 11b, 12, 13, ablation-*).
	Fig string `json:"fig"`
	// Scale is "small", "bench" or "paper" (default small).
	Scale string `json:"scale,omitempty"`
	// Frames/Trials/QualityTrials override the scale's sizes when > 0.
	Frames        int    `json:"frames,omitempty"`
	Trials        int    `json:"trials,omitempty"`
	QualityTrials int    `json:"quality_trials,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	// Precision/Confidence parameterize the adaptive convergence
	// experiment (0 = the planner defaults, 0.05 at 0.95).
	Precision  float64 `json:"precision,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// JobSpec is the wire form of a job submission: a type, a scheduling
// priority and exactly one populated spec matching the type.
type JobSpec struct {
	Type JobType `json:"type"`
	// Priority orders the queue: higher runs first; equal priorities
	// run FIFO. Default 0.
	Priority   int             `json:"priority,omitempty"`
	Summarize  *SummarizeSpec  `json:"summarize,omitempty"`
	Campaign   *CampaignSpec   `json:"campaign,omitempty"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
}

// Validate checks the spec without running anything.
func (s *JobSpec) Validate() error {
	switch s.Type {
	case JobSummarize:
		if s.Summarize == nil {
			return fmt.Errorf("service: summarize job missing \"summarize\" spec")
		}
		if _, err := vs.ParseAlgorithm(s.Summarize.Algorithm); err != nil {
			return err
		}
		if _, err := summarize.Parse(s.Summarize.Summarizer, vs.DefaultConfig(vs.AlgVS)); err != nil {
			return err
		}
		return s.Summarize.InputSpec.validate()
	case JobCampaign:
		c := s.Campaign
		if c == nil {
			return fmt.Errorf("service: campaign job missing \"campaign\" spec")
		}
		if c.Adaptive {
			if c.Precision < 0 || c.Precision >= 0.5 {
				return fmt.Errorf("service: adaptive precision %v outside (0, 0.5)", c.Precision)
			}
			if c.Confidence < 0 || c.Confidence >= 1 {
				return fmt.Errorf("service: adaptive confidence %v outside (0, 1)", c.Confidence)
			}
			if c.RoundSize < 0 || c.MaxTrials < 0 {
				return fmt.Errorf("service: adaptive round_size/max_trials must be >= 0")
			}
		} else {
			if c.Trials <= 0 {
				return fmt.Errorf("service: campaign needs trials > 0, got %d", c.Trials)
			}
			if c.Precision != 0 || c.Confidence != 0 {
				return fmt.Errorf("service: precision/confidence are adaptive knobs; set \"adaptive\": true")
			}
		}
		if c.Shards < 0 {
			return fmt.Errorf("service: campaign shards must be >= 0, got %d", c.Shards)
		}
		if _, err := vs.ParseAlgorithm(c.Algorithm); err != nil {
			return err
		}
		if _, err := summarize.Parse(c.Summarizer, vs.DefaultConfig(vs.AlgVS)); err != nil {
			return err
		}
		if _, err := fault.ParseClass(c.Class); err != nil {
			return err
		}
		if _, err := fault.ParseRegion(c.Region); err != nil {
			return err
		}
		return c.InputSpec.validate()
	case JobExperiment:
		if s.Experiment == nil {
			return fmt.Errorf("service: experiment job missing \"experiment\" spec")
		}
		if s.Experiment.Fig == "" {
			return fmt.Errorf("service: experiment needs a \"fig\" name")
		}
		if _, err := experiments.ParseScale(s.Experiment.Scale); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("service: unknown job type %q (want summarize, campaign or experiment)", s.Type)
	}
}

func (in *InputSpec) validate() error {
	sc, err := virat.ParseScenario(in.Scenario)
	if err != nil {
		return err
	}
	if len(in.FramesPGM) > 0 {
		if !sc.IsIdentity() {
			return fmt.Errorf("service: scenario %q applies to generated inputs, not uploaded frames", in.Scenario)
		}
		return nil // frames decoded (and errors reported) at run time
	}
	if in.Input != 0 && in.Input != 1 && in.Input != 2 {
		return fmt.Errorf("service: input must be 1 or 2, got %d", in.Input)
	}
	if _, err := virat.ParsePreset(in.Scale, in.Frames); err != nil {
		return err
	}
	return nil
}

// frames materializes the input frames (and a label for results).
func (in *InputSpec) frames() ([]*imgproc.Gray, string, error) {
	if len(in.FramesPGM) > 0 {
		frames := make([]*imgproc.Gray, 0, len(in.FramesPGM))
		for i, enc := range in.FramesPGM {
			raw, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return nil, "", fmt.Errorf("service: frame %d: invalid base64: %w", i, err)
			}
			g, err := imgproc.ReadPGM(bytes.NewReader(raw))
			if err != nil {
				return nil, "", fmt.Errorf("service: frame %d: %w", i, err)
			}
			frames = append(frames, g)
		}
		return frames, fmt.Sprintf("uploaded[%d]", len(frames)), nil
	}
	preset, err := virat.ParsePreset(in.Scale, in.Frames)
	if err != nil {
		return nil, "", err
	}
	sc, err := virat.ParseScenario(in.Scenario)
	if err != nil {
		return nil, "", err
	}
	input := in.Input
	if input == 0 {
		input = 1
	}
	seq, err := virat.GenerateInput(input, preset, sc)
	if err != nil {
		return nil, "", err
	}
	return seq.Frames(), seq.Name, nil
}

// Progress reports how far a job has advanced. For campaigns, Done
// counts completed trials; for the other types it is coarse (0 or 1
// unit of work).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Job is the service's unit of work. All mutable fields are guarded by
// the owning Service's mutex.
type Job struct {
	ID         string
	seq        int // enqueue order, tie-breaker within a priority
	Spec       JobSpec
	State      JobState
	Err        string
	EnqueuedAt time.Time
	StartedAt  time.Time
	FinishedAt time.Time
	Progress   Progress
	// Result is the job's serialized result, set once State == done.
	Result json.RawMessage

	// resume accumulates campaign checkpoint records (journal replayed
	// plus live), handed to fault.Config.Resume on (re)start.
	resume []fault.TrialRecord
	// cancel aborts the running job's context; non-nil only while
	// running.
	cancel func()
	// cancelRequested distinguishes a user DELETE (-> canceled) from a
	// shutdown interruption (-> requeued on next start).
	cancelRequested bool
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID         string     `json:"id"`
	Type       JobType    `json:"type"`
	State      JobState   `json:"state"`
	Priority   int        `json:"priority"`
	Progress   Progress   `json:"progress"`
	Error      string     `json:"error,omitempty"`
	EnqueuedAt time.Time  `json:"enqueued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// status snapshots the job; caller holds the service mutex.
func (j *Job) status() JobStatus {
	st := JobStatus{
		ID:         j.ID,
		Type:       j.Spec.Type,
		State:      j.State,
		Priority:   j.Spec.Priority,
		Progress:   j.Progress,
		Error:      j.Err,
		EnqueuedAt: j.EnqueuedAt,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		st.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		st.FinishedAt = &t
	}
	return st
}
