package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fabric"
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the number of concurrent job executors (default 2).
	// Campaigns additionally parallelize their own trials, so the
	// effective CPU bound is Workers x per-campaign workers.
	Workers int
	// JournalPath enables durability: queued/running jobs and campaign
	// checkpoints are written there and replayed by the next start
	// ("" = in-memory only).
	JournalPath string
	// CheckpointEvery batches campaign trial records per journal write
	// (default 25). Smaller loses less work on a crash; larger writes
	// less.
	CheckpointEvery int
	// CompactEvery rewrites the journal from live job state after that
	// many appended records (default 4096), so a long-lived daemon's
	// journal stays proportional to its live state instead of its
	// history. Startup always compacts after replay.
	CompactEvery int
	// Fabric, when non-nil, is the campaign-cluster coordinator this
	// daemon fronts: its lease/heartbeat/result API is mounted next to
	// the job API and its gauges append to /metrics.
	Fabric *fabric.Coordinator
}

// Service is the job queue: it accepts JobSpecs, schedules them by
// priority on a bounded worker pool, exposes status and results, and
// journals everything needed to survive a restart.
type Service struct {
	cfg     Config
	journal *journal
	metrics *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	pending jobHeap
	seq     int
	busy    int
	closed  bool

	// runner is the campaign engine all campaign jobs run through. Its
	// golden cache (bounded by maxGoldenCache, keyed by goldenKey) lets
	// repeated campaigns over the same workload skip the fault-free
	// capture run.
	runner *campaign.Runner

	// fabric is the optional cluster coordinator this daemon fronts.
	fabric *fabric.Coordinator
}

// Errors the HTTP layer maps to status codes.
var (
	ErrNotFound     = errors.New("service: no such job")
	ErrNotFinished  = errors.New("service: job has not finished")
	ErrNoResult     = errors.New("service: job finished without a result")
	ErrShuttingDown = errors.New("service: shutting down")
	ErrTerminal     = errors.New("service: job already in a terminal state")
)

// New builds a Service, replays and compacts its journal (if
// configured) and starts the worker pool. Jobs that were queued or
// running when the previous process died are scheduled again;
// half-finished campaigns resume from their checkpoints.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 25
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4096
	}
	s := &Service{
		cfg:     cfg,
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
		fabric:  cfg.Fabric,
	}
	s.runner = &campaign.Runner{
		Goldens:        campaign.NewGoldenCache(maxGoldenCache),
		OnGoldenLookup: s.metrics.goldenLookup,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	if cfg.JournalPath != "" {
		replayed, maxSeq, err := replayJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		if err := compactJournal(cfg.JournalPath, replayed); err != nil {
			return nil, err
		}
		jl, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.seq = maxSeq
		for _, j := range replayed {
			s.jobs[j.ID] = j
			if j.State == StateQueued {
				heap.Push(&s.pending, j)
			}
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Enqueue validates and schedules a job, returning its status.
func (s *Service) Enqueue(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrShuttingDown
	}
	s.seq++
	j := &Job{
		ID:         fmt.Sprintf("j%d", s.seq),
		seq:        s.seq,
		Spec:       spec,
		State:      StateQueued,
		EnqueuedAt: time.Now().UTC(),
	}
	if spec.Type == JobCampaign {
		j.Progress = Progress{Total: spec.Campaign.Trials}
	} else {
		j.Progress = Progress{Total: 1}
	}
	s.jobs[j.ID] = j
	heap.Push(&s.pending, j)
	st := j.status()
	s.cond.Signal()
	s.mu.Unlock()

	s.journal.job(j)
	s.metrics.jobAccepted()
	return st, nil
}

// Get returns a job's status.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return j.status(), nil
}

// List returns every job's status in enqueue order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].EnqueuedAt.Before(out[b].EnqueuedAt) })
	return out
}

// Result returns a finished job's serialized result.
func (s *Service) Result(id string) (json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.State.terminal() {
		return nil, ErrNotFinished
	}
	if j.Result == nil {
		if j.Err != "" {
			return nil, fmt.Errorf("%w: %s", ErrNoResult, j.Err)
		}
		return nil, ErrNoResult
	}
	return j.Result, nil
}

// Cancel aborts a job: a queued job is marked canceled immediately, a
// running one has its context canceled and transitions when the runner
// notices.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	if j.State.terminal() {
		st := j.status()
		s.mu.Unlock()
		return st, ErrTerminal
	}
	j.cancelRequested = true
	var finished bool
	switch j.State {
	case StateQueued:
		for i, p := range s.pending {
			if p == j {
				heap.Remove(&s.pending, i)
				break
			}
		}
		j.State = StateCanceled
		j.FinishedAt = time.Now().UTC()
		finished = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := j.status()
	s.mu.Unlock()
	if finished {
		s.journal.state(j.ID, StateCanceled, "")
		s.metrics.jobFinished(j.Spec.Type, StateCanceled, 0)
	}
	return st, nil
}

// gauges snapshots queue state for /metrics.
func (s *Service) gauges() gauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := gauges{
		queueDepth:  len(s.pending),
		workers:     s.cfg.Workers,
		busyWorkers: s.busy,
		jobsByState: make(map[JobState]int),
	}
	for _, j := range s.jobs {
		g.jobsByState[j.State]++
	}
	return g
}

// Shutdown drains the service: no new jobs are accepted, running job
// contexts are canceled (campaigns checkpoint their completed trials
// to the journal), and workers are awaited until ctx expires. The
// journal is closed last, after every in-flight checkpoint write.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.baseCancel()

	doneCh := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(doneCh)
	}()
	var err error
	select {
	case <-doneCh:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if cerr := s.journal.close(); err == nil {
		err = cerr
	}
	return err
}

// maybeCompact rewrites the journal from live job state once enough
// records accumulated since the last compaction. Called from the
// append-heavy paths; the check is one mutex and an int compare, the
// rewrite itself is rare.
func (s *Service) maybeCompact() {
	if s.journal == nil || s.journal.appendedSinceCompact() < s.cfg.CompactEvery {
		return
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	recs := snapshotRecords(jobs)
	s.mu.Unlock()
	s.journal.rewrite(recs)
}

// worker pulls the highest-priority pending job and runs it.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.pending).(*Job)
		jctx, cancel := context.WithCancel(s.baseCtx)
		j.State = StateRunning
		j.StartedAt = time.Now().UTC()
		j.cancel = cancel
		s.busy++
		s.mu.Unlock()

		s.journal.state(j.ID, StateRunning, "")
		s.execute(jctx, j)
		cancel()

		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}
}

// jobHeap orders pending jobs by priority (higher first), then by
// enqueue sequence (FIFO within a priority).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
