package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fabric"
	"vsresil/internal/fault"
)

// fabricToyApp is a tiny deterministic workload for cluster tests —
// the fabric package proves bit-identity on it; here we only exercise
// the daemon seam (mounting, metrics, lifecycle).
func fabricToyApp(m *fault.Machine) ([]byte, error) {
	buf := make([]uint8, 32)
	out := make([]uint8, 32)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		out[m.Idx(i)] = m.Pix(uint8(i * 5))
	}
	return out, nil
}

func fabricToyBuild(cs fabric.CampaignSpec) (campaign.Workload, error) {
	return campaign.NewWorkload("toy", "svc-toy", fabricToyApp), nil
}

// TestFabricMountedOnService drives a cluster campaign end to end
// through the daemon's own HTTP handler: the fabric API is served next
// to the job API, a worker executes the shards, and /metrics reports
// the fabric gauges.
func TestFabricMountedOnService(t *testing.T) {
	coord, err := fabric.NewCoordinator(fabric.Config{
		LeaseTTL: time.Second,
		Workload: fabricToyBuild,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(func() { coord.Close() })

	svc := newTestService(t, Config{Workers: 1, Fabric: coord})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := fabric.CampaignSpec{Algorithm: "toy", Class: "gpr", Trials: 24, Seed: 3}
	cl := &fabric.Client{Base: ts.URL}
	id, err := cl.Submit(context.Background(), spec, 3)
	if err != nil {
		t.Fatalf("submit via service handler: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &fabric.Worker{
		ID:       "w1",
		Client:   &fabric.Client{Base: ts.URL},
		Workload: fabricToyBuild,
		Poll:     10 * time.Millisecond,
	}
	go w.Run(ctx)

	waitFor(t, 30*time.Second, "cluster campaign to finish", func() bool {
		st, err := cl.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == "failed" {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		return st.State == "done"
	})

	res, err := cl.Result(context.Background(), id)
	if err != nil {
		t.Fatalf("result via service handler: %v", err)
	}
	if res.Completed != spec.Trials || res.Shards != 3 {
		t.Errorf("result completed=%d shards=%d, want %d/3", res.Completed, res.Shards, spec.Trials)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{"vsd_fabric_workers_alive", "vsd_fabric_shards_done 3", "vsd_fabric_campaigns{state=\"done\"} 1"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}

// TestJournalRuntimeCompaction: with a small CompactEvery, a campaign
// that appends hundreds of checkpoint records leaves a journal sized
// by live state, not history — and the compacted journal still replays
// to the finished job.
func TestJournalRuntimeCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vsd.journal")
	svc := newTestService(t, Config{
		Workers:         1,
		JournalPath:     path,
		CheckpointEvery: 1, // one journal record per trial
		CompactEvery:    8,
	})
	st, err := svc.Enqueue(testCampaignSpec(60))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitFor(t, 120*time.Second, "campaign to finish", func() bool {
		got, err := svc.Get(st.ID)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		return got.State.terminal()
	})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.Count(data, []byte("\n"))
	// 60 trials at CheckpointEvery=1 would append 60+ records; the
	// rewrite folds them into a handful of snapshot lines plus at most
	// CompactEvery stragglers.
	if lines > 8+4 {
		t.Errorf("journal has %d lines after compaction, want <= %d", lines, 8+4)
	}

	// The compacted journal must still replay to the same terminal job.
	svc2 := newTestService(t, Config{Workers: 1, JournalPath: path})
	got, err := svc2.Get(st.ID)
	if err != nil {
		t.Fatalf("job missing after replaying compacted journal: %v", err)
	}
	if got.State != StateDone {
		t.Errorf("replayed job state = %s, want done", got.State)
	}
	raw, err := svc2.Result(st.ID)
	if err != nil {
		t.Fatalf("replayed result: %v", err)
	}
	var res map[string]any
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("replayed result does not parse: %v", err)
	}
}
