package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/experiments"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// SummarizeResult is the wire form of a summarize job's output.
type SummarizeResult struct {
	Summarizer string `json:"summarizer"`
	Algorithm  string `json:"algorithm"`
	Input      string `json:"input"`
	Frames     int    `json:"frames"`
	// Dropped is how many input frames VS_RFD removed.
	Dropped int `json:"dropped"`
	// Discarded counts frames rejected for insufficient matches.
	Discarded int            `json:"discarded"`
	Panoramas []PanoramaInfo `json:"panoramas"`
	// PrimaryPGM is the primary panorama as base64 PGM when the spec
	// set include_pgm.
	PrimaryPGM string  `json:"primary_pgm,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Stages is the probe.Meter's per-stage profile of this run; only
	// stages with activity are listed.
	Stages []StageStat `json:"stages,omitempty"`
}

// StageStat is one pipeline stage's share of a summarize run, as
// recorded by the probe.Meter the service threads through the
// pipeline.
type StageStat struct {
	Stage     string  `json:"stage"`
	WallSec   float64 `json:"wall_sec"`
	Ops       uint64  `json:"ops"`
	IntTaps   uint64  `json:"int_taps"`
	FloatTaps uint64  `json:"float_taps"`
}

// PanoramaInfo describes one rendered mini-panorama.
type PanoramaInfo struct {
	W      int `json:"w"`
	H      int `json:"h"`
	MinX   int `json:"min_x"`
	MinY   int `json:"min_y"`
	Frames int `json:"frames"`
}

// CampaignResult is the wire form of a campaign job's output.
type CampaignResult struct {
	Scenario    string             `json:"scenario"`
	Summarizer  string             `json:"summarizer"`
	Algorithm   string             `json:"algorithm"`
	Input       string             `json:"input"`
	Class       string             `json:"class"`
	Region      string             `json:"region"`
	Trials      int                `json:"trials"`
	Shards      int                `json:"shards,omitempty"`
	Completed   int                `json:"completed"`
	Resumed     int                `json:"resumed"`
	TotalTaps   uint64             `json:"total_taps"`
	GoldenSteps uint64             `json:"golden_steps"`
	Counts      map[string]int     `json:"counts"`
	Rates       map[string]float64 `json:"rates"`
	CrashSplit  map[string]int     `json:"crash_split,omitempty"`
	ElapsedSec  float64            `json:"elapsed_sec"`
	// TrialsPerSec covers only the trials this process executed.
	TrialsPerSec float64 `json:"trials_per_sec"`

	// Adaptive campaigns fill the planner section: the precision target,
	// per-stratum estimates and the fixed-budget savings baseline.
	Adaptive    bool          `json:"adaptive,omitempty"`
	Precision   float64       `json:"precision,omitempty"`
	Confidence  float64       `json:"confidence,omitempty"`
	Rounds      int           `json:"rounds,omitempty"`
	FixedBudget int           `json:"fixed_budget,omitempty"`
	Converged   bool          `json:"converged,omitempty"`
	Strata      []StratumInfo `json:"strata,omitempty"`
}

// StratumInfo is one adaptive stratum's final estimate on the wire.
type StratumInfo struct {
	Region     string  `json:"region"`
	Bits       string  `json:"bits"`
	Population uint64  `json:"population"`
	Trials     int     `json:"trials"`
	HalfWidth  float64 `json:"half_width"`
	Done       bool    `json:"done"`
}

// ExperimentResult is the wire form of an experiment job's output: the
// figure harness's textual report.
type ExperimentResult struct {
	Fig        string  `json:"fig"`
	Text       string  `json:"text"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// execute runs a job to a terminal state (or back to queued on
// shutdown interruption) and records journal + metrics.
func (s *Service) execute(ctx context.Context, j *Job) {
	started := time.Now()
	var result any
	var err error
	switch j.Spec.Type {
	case JobSummarize:
		result, err = s.runSummarize(ctx, j)
	case JobCampaign:
		result, err = s.runCampaign(ctx, j)
	case JobExperiment:
		result, err = s.runExperiment(ctx, j)
	default:
		err = fmt.Errorf("service: unknown job type %q", j.Spec.Type)
	}
	elapsed := time.Since(started)

	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(result)
	}

	s.mu.Lock()
	j.cancel = nil
	canceled := err != nil && errors.Is(err, context.Canceled)
	state := StateDone
	switch {
	case canceled && j.cancelRequested:
		state = StateCanceled
		j.Err = "canceled"
	case canceled:
		// Shutdown interruption: the journaled state stays "running",
		// so the next start re-queues the job and resumes it.
		state = StateQueued
	case err != nil:
		state = StateFailed
		j.Err = err.Error()
	default:
		j.Result = raw
		j.Progress.Done = j.Progress.Total
	}
	j.State = state
	if state.terminal() {
		j.FinishedAt = time.Now().UTC()
	}
	errMsg := j.Err
	s.mu.Unlock()

	if state.terminal() {
		if raw != nil && state == StateDone {
			s.journal.result(j.ID, raw)
		}
		s.journal.state(j.ID, state, errMsg)
		s.maybeCompact()
	}
	s.metrics.jobFinished(j.Spec.Type, state, elapsed)
}

// runSummarize executes one VS variant run. The pipeline itself is not
// context-aware, so it runs in a goroutine and cancellation abandons
// the run (the goroutine finishes and its result is discarded).
func (s *Service) runSummarize(ctx context.Context, j *Job) (any, error) {
	spec := j.Spec.Summarize
	started := time.Now()
	alg, err := vs.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	frames, inputName, err := spec.InputSpec.frames()
	if err != nil {
		return nil, err
	}
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = spec.Seed
	sum, err := summarize.Parse(spec.Summarizer, cfg)
	if err != nil {
		return nil, err
	}

	type runOut struct {
		res     *stitch.Result
		dropped int
		stats   []probe.RegionStats
		err     error
	}
	ch := make(chan runOut, 1)
	go func() {
		// Thread a Meter through the pipeline: summarize traffic is the
		// service's live source of per-stage latency and op profiles.
		meter := probe.NewMeter()
		var out runOut
		if v, ok := sum.(summarize.VS); ok {
			// The vs backend runs through its App so the frame-drop count
			// (a VS_RFD-only statistic) survives into the result.
			app := vs.New(v.Cfg, len(frames))
			out.res, out.err = app.Run(frames, meter)
			out.dropped = app.Dropped()
		} else {
			out.res, out.err = summarize.Run(sum, frames, meter)
		}
		out.stats = meter.Snapshot()
		ch <- out
	}()
	var out runOut
	select {
	case out = <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if out.err != nil {
		return nil, out.err
	}
	s.metrics.stagesDone(out.stats)

	sr := &SummarizeResult{
		Summarizer: sum.Name(),
		Algorithm:  alg.String(),
		Input:      inputName,
		Frames:     len(frames),
		Dropped:    out.dropped,
		Discarded:  out.res.Discarded,
		ElapsedSec: time.Since(started).Seconds(),
	}
	for _, p := range out.res.Panoramas {
		sr.Panoramas = append(sr.Panoramas, PanoramaInfo{
			W: p.Image.W, H: p.Image.H,
			MinX: p.Bounds.MinX, MinY: p.Bounds.MinY,
			Frames: p.Frames,
		})
	}
	for _, rs := range out.stats {
		var ops uint64
		for _, n := range rs.Ops {
			ops += n
		}
		if ops == 0 && rs.IntTaps == 0 && rs.FPTaps == 0 && rs.Wall == 0 {
			continue
		}
		sr.Stages = append(sr.Stages, StageStat{
			Stage:     rs.Region.String(),
			WallSec:   rs.Wall.Seconds(),
			Ops:       ops,
			IntTaps:   rs.IntTaps,
			FloatTaps: rs.FPTaps,
		})
	}
	if spec.IncludePGM {
		if prim := out.res.Primary(); prim != nil {
			var buf bytes.Buffer
			if err := imgproc.WritePGM(&buf, prim.Image); err != nil {
				return nil, err
			}
			sr.PrimaryPGM = base64.StdEncoding.EncodeToString(buf.Bytes())
		}
	}
	return sr, nil
}

// runCampaign executes a fault-injection campaign through the campaign
// engine, with per-trial checkpointing: every completed trial updates
// the job's progress and is journaled in batches of CheckpointEvery, so
// an interrupted campaign resumes instead of restarting. Specs with
// shards > 1 fan out across concurrent shard runs and merge; trial
// record indices are plan indices, so the journal replays into any
// shard decomposition.
func (s *Service) runCampaign(ctx context.Context, j *Job) (any, error) {
	spec := j.Spec.Campaign
	started := time.Now()
	alg, err := vs.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, err
	}
	class, err := fault.ParseClass(spec.Class)
	if err != nil {
		return nil, err
	}
	region, err := fault.ParseRegion(spec.Region)
	if err != nil {
		return nil, err
	}
	frames, inputName, err := spec.InputSpec.frames()
	if err != nil {
		return nil, err
	}
	vcfg := vs.DefaultConfig(alg)
	vcfg.Seed = spec.Seed
	sum, err := summarize.Parse(spec.Summarizer, vcfg)
	if err != nil {
		return nil, err
	}
	// Canonical workload-cell labels for the result and /metrics: the
	// uploaded-frames path is always identity (validation rejects the
	// combination), so the scenario label comes straight from the spec.
	sc, err := virat.ParseScenario(spec.Scenario)
	if err != nil {
		return nil, err
	}
	cell := workloadCell{Scenario: sc.Name, Summarizer: sum.Name(), Algorithm: alg.String()}

	s.mu.Lock()
	resume := append([]fault.TrialRecord(nil), j.resume...)
	j.Progress = Progress{Done: len(resume), Total: spec.Trials}
	s.mu.Unlock()

	// pendingRecs batches checkpoint records between journal writes;
	// guarded by s.mu alongside the job's progress.
	var pendingRecs []fault.TrialRecord
	flush := func(recs []fault.TrialRecord) {
		s.journal.trials(j.ID, recs)
		s.maybeCompact()
	}
	onTrial := func(rec fault.TrialRecord) {
		s.mu.Lock()
		j.Progress.Done++
		j.resume = append(j.resume, rec)
		pendingRecs = append(pendingRecs, rec)
		var batch []fault.TrialRecord
		if len(pendingRecs) >= s.cfg.CheckpointEvery {
			batch = pendingRecs
			pendingRecs = nil
		}
		s.mu.Unlock()
		s.metrics.trialsDone(1)
		s.metrics.workloadTrialsDone(cell, 1)
		if batch != nil {
			flush(batch)
		}
	}

	// The runner resolves the golden run through the service-wide
	// cache: repeated campaigns over the same app+input (sweeping
	// classes, regions or trial counts) skip the capture entirely.
	cspec := campaign.Spec{
		Workload: campaign.SummarizeApp(sum, frames, inputName, spec.goldenKey()),
		Class:    class,
		Region:   region,
		Trials:   spec.Trials,
		Seed:     spec.Seed,
		Workers:  spec.Workers,
		OnTrial:  onTrial,
		Resume:   resume,
	}
	var (
		res  *campaign.Result
		ares *campaign.AdaptiveResult
	)
	if spec.Adaptive {
		cspec.Trials = 0
		cspec.Adaptive = &campaign.AdaptiveSpec{
			Precision:  spec.Precision,
			Confidence: spec.Confidence,
			RoundSize:  spec.RoundSize,
			MaxTrials:  spec.MaxTrials,
			OnRound: func(st campaign.RoundStatus) {
				// The allocation is decided round by round, so the
				// progress denominator grows with it.
				s.mu.Lock()
				j.Progress.Total = st.Trials
				s.mu.Unlock()
				s.metrics.roundDone(st)
			},
		}
		k := spec.Shards
		if k < 1 {
			k = 1
		}
		ares, err = s.runner.RunAdaptive(ctx, cspec, k)
	} else {
		res, err = s.runner.RunSharded(ctx, cspec, spec.Shards)
	}

	// Flush the tail of the checkpoint batch whether the campaign
	// finished, failed or was interrupted — these records are exactly
	// what the next start resumes from.
	s.mu.Lock()
	tail := pendingRecs
	pendingRecs = nil
	s.mu.Unlock()
	flush(tail)
	if err != nil {
		return nil, err
	}

	elapsed := time.Since(started)
	cr := &CampaignResult{
		Scenario:   cell.Scenario,
		Summarizer: cell.Summarizer,
		Algorithm:  cell.Algorithm,
		Input:      inputName,
		Class:      class.String(),
		Region:     region.String(),
		Trials:     spec.Trials,
		Shards:     spec.Shards,
		Resumed:    len(resume),
		Counts:     make(map[string]int),
		Rates:      make(map[string]float64),
		ElapsedSec: elapsed.Seconds(),
	}
	executed := 0
	if spec.Adaptive {
		// The effective targets after planner defaulting.
		cr.Adaptive = true
		cr.Precision, cr.Confidence = spec.Precision, spec.Confidence
		if cr.Precision <= 0 {
			cr.Precision = 0.05
		}
		if cr.Confidence <= 0 || cr.Confidence >= 1 {
			cr.Confidence = 0.95
		}
		cr.Trials = ares.Trials
		cr.Completed = ares.Trials
		cr.Rounds = ares.Rounds
		cr.FixedBudget = ares.FixedBudget
		cr.Converged = ares.Converged
		rates := ares.Stratified.WeightedRates()
		for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
			cr.Counts[o.String()] = ares.Counts[o]
			cr.Rates[o.String()] = rates[o]
		}
		for _, st := range ares.Strata {
			cr.Strata = append(cr.Strata, StratumInfo{
				Region:     st.Region.String(),
				Bits:       st.Bits.String(),
				Population: st.Population,
				Trials:     st.Trials,
				HalfWidth:  st.HalfWidth,
				Done:       st.Done,
			})
		}
		s.metrics.adaptiveDone(cr.Class, ares.Strata, ares.Converged)
		s.metrics.sessionDone(ares.Session)
		executed = ares.Executed
	} else {
		fres := res.Fault
		s.metrics.bucketsDone(fres.Sched)
		cr.Completed = fres.Completed
		cr.TotalTaps = fres.TotalTaps
		cr.GoldenSteps = fres.GoldenSteps
		for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
			cr.Counts[o.String()] = fres.Counts[o]
			cr.Rates[o.String()] = fres.Rate(o)
		}
		if len(fres.CrashCounts) > 0 {
			cr.CrashSplit = make(map[string]int)
			for k, n := range fres.CrashCounts {
				cr.CrashSplit[k.String()] = n
			}
		}
		executed = res.Executed
	}
	if executed > 0 && elapsed > 0 {
		cr.TrialsPerSec = float64(executed) / elapsed.Seconds()
	}
	return cr, nil
}

// runExperiment regenerates one paper figure and captures its report.
func (s *Service) runExperiment(ctx context.Context, j *Job) (any, error) {
	spec := j.Spec.Experiment
	started := time.Now()
	exp, err := experiments.Lookup(spec.Fig)
	if err != nil {
		return nil, err
	}
	o, err := experiments.ParseScale(spec.Scale)
	if err != nil {
		return nil, err
	}
	if spec.Frames > 0 {
		o.Preset.Frames = spec.Frames
	}
	if spec.Trials > 0 {
		o.Trials = spec.Trials
	}
	if spec.QualityTrials > 0 {
		o.QualityTrials = spec.QualityTrials
	}
	if spec.Seed != 0 {
		o.Seed = spec.Seed
	}
	o.Workers = spec.Workers
	o.Precision = spec.Precision
	o.Confidence = spec.Confidence

	var buf bytes.Buffer
	if err := exp.Run(ctx, o, &buf); err != nil {
		return nil, err
	}
	return &ExperimentResult{
		Fig:        exp.Name,
		Text:       buf.String(),
		ElapsedSec: time.Since(started).Seconds(),
	}, nil
}
