package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"vsresil/internal/fault"
)

// The journal is an append-only JSONL file that makes the job queue
// durable. Every record is one line:
//
//	{"op":"job","job":{"id":"j1","seq":1,"spec":{...},"enqueued_at":...}}
//	{"op":"state","id":"j1","state":"running"}
//	{"op":"trials","id":"j1","recs":[{"i":0,"o":2},...]}   (campaign checkpoint batch)
//	{"op":"result","id":"j1","result":{...}}
//
// Replay folds the records per job: terminal jobs keep their state and
// result; queued and running jobs are re-enqueued, a running campaign
// carrying its accumulated trial records so fault.RunCampaign resumes
// instead of rerunning completed trials. On startup the journal is
// compacted: the folded state is rewritten to a fresh file, dropping
// superseded records.
type journalRecord struct {
	Op     string              `json:"op"`
	ID     string              `json:"id,omitempty"`
	Job    *journalJob         `json:"job,omitempty"`
	State  JobState            `json:"state,omitempty"`
	Err    string              `json:"err,omitempty"`
	Recs   []fault.TrialRecord `json:"recs,omitempty"`
	Result json.RawMessage     `json:"result,omitempty"`
}

type journalJob struct {
	ID         string    `json:"id"`
	Seq        int       `json:"seq"`
	Spec       JobSpec   `json:"spec"`
	EnqueuedAt time.Time `json:"enqueued_at"`
}

// journal serializes appends; a nil *journal (no JournalPath) is a
// valid no-op sink so in-memory services skip every durability branch.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return // unserializable record: skip rather than wedge the queue
	}
	jl.w.Write(data)
	jl.w.WriteByte('\n')
	jl.w.Flush()
}

func (jl *journal) job(j *Job) {
	jl.append(journalRecord{Op: "job", Job: &journalJob{
		ID: j.ID, Seq: j.seq, Spec: j.Spec, EnqueuedAt: j.EnqueuedAt,
	}})
}

func (jl *journal) state(id string, s JobState, errMsg string) {
	jl.append(journalRecord{Op: "state", ID: id, State: s, Err: errMsg})
}

func (jl *journal) trials(id string, recs []fault.TrialRecord) {
	if len(recs) == 0 {
		return
	}
	jl.append(journalRecord{Op: "trials", ID: id, Recs: recs})
}

func (jl *journal) result(id string, result json.RawMessage) {
	jl.append(journalRecord{Op: "result", ID: id, Result: result})
}

func (jl *journal) close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.w.Flush()
	err := jl.f.Close()
	jl.f = nil
	return err
}

// replayJournal reads a journal and folds it into jobs, ordered by
// enqueue sequence. Missing file means a fresh start. Malformed lines
// (e.g. a torn final write from a crash) are skipped, not fatal.
func replayJournal(path string) (jobs []*Job, maxSeq int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: open journal for replay: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*Job)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results can be large lines
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		switch rec.Op {
		case "job":
			if rec.Job == nil || rec.Job.ID == "" {
				continue
			}
			if rec.Job.Spec.Validate() != nil {
				continue
			}
			j := &Job{
				ID:         rec.Job.ID,
				seq:        rec.Job.Seq,
				Spec:       rec.Job.Spec,
				State:      StateQueued,
				EnqueuedAt: rec.Job.EnqueuedAt,
			}
			byID[j.ID] = j
		case "state":
			if j := byID[rec.ID]; j != nil {
				j.State = rec.State
				j.Err = rec.Err
			}
		case "trials":
			if j := byID[rec.ID]; j != nil {
				j.resume = append(j.resume, rec.Recs...)
			}
		case "result":
			if j := byID[rec.ID]; j != nil {
				j.Result = rec.Result
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("service: replay journal: %w", err)
	}

	for _, j := range byID {
		if j.seq > maxSeq {
			maxSeq = j.seq
		}
		// Interrupted work resumes: a job caught running when the
		// daemon died goes back to the queue, keeping its checkpoint.
		if !j.State.terminal() {
			j.State = StateQueued
		}
		if j.Spec.Type == JobCampaign && j.Spec.Campaign != nil {
			j.Progress = Progress{Done: len(j.resume), Total: j.Spec.Campaign.Trials}
		} else {
			j.Progress = Progress{Total: 1}
			if j.State == StateDone {
				j.Progress.Done = 1
			}
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	return jobs, maxSeq, nil
}

// compactJournal rewrites the folded job state to path atomically,
// dropping superseded records accumulated before the restart.
func compactJournal(path string, jobs []*Job) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		enc.Encode(journalRecord{Op: "job", Job: &journalJob{
			ID: j.ID, Seq: j.seq, Spec: j.Spec, EnqueuedAt: j.EnqueuedAt,
		}})
		if len(j.resume) > 0 {
			enc.Encode(journalRecord{Op: "trials", ID: j.ID, Recs: j.resume})
		}
		if j.State != StateQueued {
			enc.Encode(journalRecord{Op: "state", ID: j.ID, State: j.State, Err: j.Err})
		}
		if j.Result != nil {
			enc.Encode(journalRecord{Op: "result", ID: j.ID, Result: j.Result})
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	return os.Rename(tmp, path)
}
