package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"vsresil/internal/fault"
)

// The journal is an append-only JSONL file that makes the job queue
// durable. Every record is one line:
//
//	{"op":"job","job":{"id":"j1","seq":1,"spec":{...},"enqueued_at":...}}
//	{"op":"state","id":"j1","state":"running"}
//	{"op":"trials","id":"j1","recs":[{"i":0,"o":2},...]}   (campaign checkpoint batch)
//	{"op":"result","id":"j1","result":{...}}
//
// Replay folds the records per job: terminal jobs keep their state and
// result; queued and running jobs are re-enqueued, a running campaign
// carrying its accumulated trial records so fault.RunCampaign resumes
// instead of rerunning completed trials. On startup the journal is
// compacted: the folded state is rewritten to a fresh file, dropping
// superseded records.
type journalRecord struct {
	Op     string              `json:"op"`
	ID     string              `json:"id,omitempty"`
	Job    *journalJob         `json:"job,omitempty"`
	State  JobState            `json:"state,omitempty"`
	Err    string              `json:"err,omitempty"`
	Recs   []fault.TrialRecord `json:"recs,omitempty"`
	Result json.RawMessage     `json:"result,omitempty"`
}

type journalJob struct {
	ID         string    `json:"id"`
	Seq        int       `json:"seq"`
	Spec       JobSpec   `json:"spec"`
	EnqueuedAt time.Time `json:"enqueued_at"`
}

// journal serializes appends; a nil *journal (no JournalPath) is a
// valid no-op sink so in-memory services skip every durability branch.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// appended counts records written since the last compaction; the
	// service rewrites the journal from live state once it crosses
	// Config.CompactEvery, bounding replay work however long the
	// daemon lives.
	appended int
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	return &journal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return // unserializable record: skip rather than wedge the queue
	}
	jl.w.Write(data)
	jl.w.WriteByte('\n')
	jl.w.Flush()
	jl.appended++
}

// appendedSinceCompact reports how many records landed since the last
// rewrite.
func (jl *journal) appendedSinceCompact() int {
	if jl == nil {
		return 0
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.appended
}

// rewrite atomically replaces the journal with the folded live state
// and reopens it for appending. An append racing the snapshot may
// re-land its record after the rewrite; replay dedups trial records by
// index, so the worst case is a few redundant lines, never lost or
// double-applied state.
func (jl *journal) rewrite(recs []journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.w.Flush()
	if err := writeJournalFile(jl.path, recs); err != nil {
		return err
	}
	jl.f.Close()
	f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		jl.f = nil
		return fmt.Errorf("service: reopen compacted journal: %w", err)
	}
	jl.f = f
	jl.w = bufio.NewWriter(f)
	jl.appended = 0
	return nil
}

func (jl *journal) job(j *Job) {
	jl.append(journalRecord{Op: "job", Job: &journalJob{
		ID: j.ID, Seq: j.seq, Spec: j.Spec, EnqueuedAt: j.EnqueuedAt,
	}})
}

func (jl *journal) state(id string, s JobState, errMsg string) {
	jl.append(journalRecord{Op: "state", ID: id, State: s, Err: errMsg})
}

func (jl *journal) trials(id string, recs []fault.TrialRecord) {
	if len(recs) == 0 {
		return
	}
	jl.append(journalRecord{Op: "trials", ID: id, Recs: recs})
}

func (jl *journal) result(id string, result json.RawMessage) {
	jl.append(journalRecord{Op: "result", ID: id, Result: result})
}

func (jl *journal) close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	jl.w.Flush()
	err := jl.f.Close()
	jl.f = nil
	return err
}

// replayJournal reads a journal and folds it into jobs, ordered by
// enqueue sequence. Missing file means a fresh start. Malformed lines
// (e.g. a torn final write from a crash) are skipped, not fatal.
func replayJournal(path string) (jobs []*Job, maxSeq int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: open journal for replay: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*Job)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // results can be large lines
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		switch rec.Op {
		case "job":
			if rec.Job == nil || rec.Job.ID == "" {
				continue
			}
			if rec.Job.Spec.Validate() != nil {
				continue
			}
			j := &Job{
				ID:         rec.Job.ID,
				seq:        rec.Job.Seq,
				Spec:       rec.Job.Spec,
				State:      StateQueued,
				EnqueuedAt: rec.Job.EnqueuedAt,
			}
			byID[j.ID] = j
		case "state":
			if j := byID[rec.ID]; j != nil {
				j.State = rec.State
				j.Err = rec.Err
			}
		case "trials":
			if j := byID[rec.ID]; j != nil {
				j.resume = append(j.resume, rec.Recs...)
			}
		case "result":
			if j := byID[rec.ID]; j != nil {
				j.Result = rec.Result
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("service: replay journal: %w", err)
	}

	for _, j := range byID {
		if j.seq > maxSeq {
			maxSeq = j.seq
		}
		// Interrupted work resumes: a job caught running when the
		// daemon died goes back to the queue, keeping its checkpoint.
		if !j.State.terminal() {
			j.State = StateQueued
		}
		// Runtime compaction can race a checkpoint append and leave a
		// trial recorded both in the snapshot and after it; the resume
		// path rejects duplicate indices, so fold them here.
		j.resume = dedupTrialRecords(j.resume)
		if j.Spec.Type == JobCampaign && j.Spec.Campaign != nil {
			j.Progress = Progress{Done: len(j.resume), Total: j.Spec.Campaign.Trials}
		} else {
			j.Progress = Progress{Total: 1}
			if j.State == StateDone {
				j.Progress.Done = 1
			}
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	return jobs, maxSeq, nil
}

// dedupTrialRecords sorts checkpoint records by plan index and keeps
// the first occurrence of each.
func dedupTrialRecords(recs []fault.TrialRecord) []fault.TrialRecord {
	if len(recs) == 0 {
		return nil
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Index < recs[b].Index })
	n := 1
	for i := 1; i < len(recs); i++ {
		if recs[i].Index != recs[n-1].Index {
			recs[n] = recs[i]
			n++
		}
	}
	return recs[:n]
}

// snapshotRecords renders jobs back to the minimal journal record set
// that replays to the same state: one job record each, the latest
// checkpoints, the state if it moved past queued, and the result.
// Both the startup compaction and the runtime rewrite produce exactly
// this shape.
func snapshotRecords(jobs []*Job) []journalRecord {
	var recs []journalRecord
	for _, j := range jobs {
		recs = append(recs, journalRecord{Op: "job", Job: &journalJob{
			ID: j.ID, Seq: j.seq, Spec: j.Spec, EnqueuedAt: j.EnqueuedAt,
		}})
		if len(j.resume) > 0 {
			recs = append(recs, journalRecord{Op: "trials", ID: j.ID, Recs: j.resume})
		}
		if j.State != StateQueued {
			recs = append(recs, journalRecord{Op: "state", ID: j.ID, State: j.State, Err: j.Err})
		}
		if j.Result != nil {
			recs = append(recs, journalRecord{Op: "result", ID: j.ID, Result: j.Result})
		}
	}
	return recs
}

// writeJournalFile writes records to path atomically via a temp file.
func writeJournalFile(path string, recs []journalRecord) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range recs {
		enc.Encode(recs[i])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	return os.Rename(tmp, path)
}

// compactJournal rewrites the folded job state to path atomically,
// dropping superseded records accumulated before the restart.
func compactJournal(path string, jobs []*Job) error {
	return writeJournalFile(path, snapshotRecords(jobs))
}
