package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs           submit a JobSpec, returns the job status
//	GET    /v1/jobs           list all jobs
//	GET    /v1/jobs/{id}      status + progress of one job
//	GET    /v1/jobs/{id}/result   the finished job's result document
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /healthz           liveness probe
//	GET    /metrics           text counters/gauges/histograms
//
// When the daemon runs as a fabric coordinator, the cluster API
// (POST /v1/fabric/lease, /heartbeat, /results, /campaigns — see
// fabric.Coordinator.Mount) is served from the same mux and the
// fabric gauges append to /metrics.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.fabric != nil {
		s.fabric.Mount(mux)
	}
	return mux
}

// maxSpecBytes bounds a job submission body (uploaded PGM frame sets
// are the large case).
const maxSpecBytes = 256 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Enqueue(spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil && !errors.Is(err, ErrTerminal) {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.write(w, s.gauges())
	if s.fabric != nil {
		s.fabric.WriteMetrics(w)
	}
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		return http.StatusConflict
	case errors.Is(err, ErrNoResult):
		return http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
