package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// testCampaignSpec is the shared small campaign the tests run: big
// enough to interrupt mid-flight, small enough to finish in seconds.
func testCampaignSpec(trials int) JobSpec {
	return JobSpec{
		Type: JobCampaign,
		Campaign: &CampaignSpec{
			InputSpec: InputSpec{Input: 2, Scale: "test", Frames: 6},
			Algorithm: "VS",
			Class:     "gpr",
			Trials:    trials,
			Seed:      7,
		},
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- HTTP helpers ----------------------------------------------------

func postJob(t *testing.T, ts *httptest.Server, spec any) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs status %d: %v", resp.StatusCode, e)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func getResult(t *testing.T, ts *httptest.Server, id string, into any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode result: %v", err)
	}
}

// --- tests -----------------------------------------------------------

func TestEnqueueRunResultRoundTrip(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sum := postJob(t, ts, JobSpec{
		Type: JobSummarize,
		Summarize: &SummarizeSpec{
			InputSpec:  InputSpec{Input: 1, Scale: "test", Frames: 8},
			Algorithm:  "VS_RFD",
			IncludePGM: true,
		},
	})
	camp := postJob(t, ts, testCampaignSpec(60))

	waitFor(t, 60*time.Second, "both jobs done", func() bool {
		return getStatus(t, ts, sum.ID).State == StateDone &&
			getStatus(t, ts, camp.ID).State == StateDone
	})

	var sr SummarizeResult
	getResult(t, ts, sum.ID, &sr)
	if sr.Algorithm != "VS_RFD" || sr.Frames != 8 {
		t.Errorf("summarize result header = %q/%d frames", sr.Algorithm, sr.Frames)
	}
	if len(sr.Panoramas) == 0 {
		t.Error("summarize produced no panoramas")
	}
	if sr.PrimaryPGM == "" {
		t.Error("include_pgm did not return the panorama")
	}
	raw, err := base64.StdEncoding.DecodeString(sr.PrimaryPGM)
	if err != nil {
		t.Fatalf("primary_pgm base64: %v", err)
	}
	if _, err := imgproc.ReadPGM(bytes.NewReader(raw)); err != nil {
		t.Errorf("primary_pgm is not a valid PGM: %v", err)
	}

	var cr CampaignResult
	getResult(t, ts, camp.ID, &cr)
	if cr.Completed != 60 {
		t.Errorf("campaign completed %d trials, want 60", cr.Completed)
	}
	total := 0
	for _, n := range cr.Counts {
		total += n
	}
	if total != 60 {
		t.Errorf("outcome counts sum to %d, want 60", total)
	}
	st := getStatus(t, ts, camp.ID)
	if st.Progress.Done != 60 || st.Progress.Total != 60 {
		t.Errorf("campaign progress = %+v, want 60/60", st.Progress)
	}
}

func TestSummarizeUploadedPGMFrames(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	p := virat.TestScale()
	p.Frames = 6
	var encoded []string
	for _, f := range virat.Input1(p).Frames() {
		var buf bytes.Buffer
		if err := imgproc.WritePGM(&buf, f); err != nil {
			t.Fatal(err)
		}
		encoded = append(encoded, base64.StdEncoding.EncodeToString(buf.Bytes()))
	}
	st := postJob(t, ts, JobSpec{
		Type:      JobSummarize,
		Summarize: &SummarizeSpec{InputSpec: InputSpec{FramesPGM: encoded}},
	})
	waitFor(t, 60*time.Second, "uploaded-frames job done", func() bool {
		return getStatus(t, ts, st.ID).State == StateDone
	})
	var sr SummarizeResult
	getResult(t, ts, st.ID, &sr)
	if sr.Frames != 6 || !strings.HasPrefix(sr.Input, "uploaded") {
		t.Errorf("result = %d frames from %q, want 6 uploaded", sr.Frames, sr.Input)
	}
	if len(sr.Panoramas) == 0 {
		t.Error("no panoramas from uploaded frames")
	}
}

func TestCancelMidCampaign(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postJob(t, ts, testCampaignSpec(100000))
	waitFor(t, 60*time.Second, "campaign making progress", func() bool {
		s := getStatus(t, ts, st.ID)
		return s.State == StateRunning && s.Progress.Done > 0
	})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	waitFor(t, 60*time.Second, "campaign canceled", func() bool {
		return getStatus(t, ts, st.ID).State == StateCanceled
	})
	s := getStatus(t, ts, st.ID)
	if s.Progress.Done >= s.Progress.Total {
		t.Errorf("canceled campaign reports full progress %+v", s.Progress)
	}
	// The result endpoint must refuse: the job never produced one.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job returned status %d, want 409", resp.StatusCode)
	}
}

func TestJournalReplayResumesCampaign(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "vsd.journal")
	const trials = 400
	spec := testCampaignSpec(trials)

	// First life: start the campaign, wait for some progress, then
	// drain — simulating kill -TERM mid-campaign.
	svcA, err := New(Config{Workers: 1, JournalPath: journalPath, CheckpointEvery: 5})
	if err != nil {
		t.Fatalf("service A: %v", err)
	}
	stA, err := svcA.Enqueue(spec)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitFor(t, 60*time.Second, "campaign progress before shutdown", func() bool {
		s, _ := svcA.Get(stA.ID)
		return s.Progress.Done >= 25
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := svcA.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown A: %v", err)
	}
	cancel()

	// Second life: replay the journal; the job must resume from its
	// checkpoint, not restart.
	svcB := newTestService(t, Config{Workers: 1, JournalPath: journalPath, CheckpointEvery: 5})
	s, err := svcB.Get(stA.ID)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", stA.ID, err)
	}
	if s.Progress.Done < 25 {
		t.Errorf("replayed progress %d, want >= 25 (checkpoint lost)", s.Progress.Done)
	}
	waitFor(t, 120*time.Second, "resumed campaign done", func() bool {
		s, _ := svcB.Get(stA.ID)
		return s.State == StateDone
	})
	raw, err := svcB.Result(stA.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var cr CampaignResult
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Resumed == 0 {
		t.Error("campaign did not resume from checkpoint (Resumed == 0)")
	}
	if cr.Completed != trials {
		t.Errorf("resumed campaign completed %d, want %d", cr.Completed, trials)
	}

	// Seeded determinism across the interruption: the resumed result
	// must match a cold, uninterrupted run of the identical campaign.
	p := virat.TestScale()
	p.Frames = 6
	frames := virat.Input2(p).Frames()
	vcfg := vs.DefaultConfig(vs.AlgVS)
	vcfg.Seed = spec.Campaign.Seed
	app := vs.New(vcfg, len(frames))
	cold, err := fault.RunCampaign(context.Background(), fault.Config{
		Trials: trials, Class: fault.GPR, Region: fault.RAny, Seed: spec.Campaign.Seed,
	}, app.RunEncoded(frames))
	if err != nil {
		t.Fatalf("cold campaign: %v", err)
	}
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		if cr.Counts[o.String()] != cold.Counts[o] {
			t.Errorf("outcome %s: resumed %d, cold %d", o, cr.Counts[o.String()], cold.Counts[o])
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Occupy the single worker, then enqueue low before high: the
	// high-priority job must finish first.
	blocker := postJob(t, ts, testCampaignSpec(200))
	low := postJob(t, ts, JobSpec{
		Type:      JobSummarize,
		Priority:  1,
		Summarize: &SummarizeSpec{InputSpec: InputSpec{Scale: "test", Frames: 4}},
	})
	high := postJob(t, ts, JobSpec{
		Type:      JobSummarize,
		Priority:  9,
		Summarize: &SummarizeSpec{InputSpec: InputSpec{Scale: "test", Frames: 4}},
	})
	waitFor(t, 120*time.Second, "all three jobs done", func() bool {
		for _, id := range []string{blocker.ID, low.ID, high.ID} {
			if getStatus(t, ts, id).State != StateDone {
				return false
			}
		}
		return true
	})
	lowSt := getStatus(t, ts, low.ID)
	highSt := getStatus(t, ts, high.ID)
	if lowSt.StartedAt == nil || highSt.StartedAt == nil {
		t.Fatal("missing start times")
	}
	if highSt.StartedAt.After(*lowSt.StartedAt) {
		t.Errorf("high-priority job started at %v, after low-priority %v",
			highSt.StartedAt, lowSt.StartedAt)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"bad-type":       `{"type":"transcode"}`,
		"missing-spec":   `{"type":"campaign"}`,
		"zero-trials":    `{"type":"campaign","campaign":{"trials":0}}`,
		"bad-algorithm":  `{"type":"summarize","summarize":{"algorithm":"VS_XX"}}`,
		"bad-class":      `{"type":"campaign","campaign":{"trials":10,"class":"vpr"}}`,
		"bad-fig":        `{"type":"experiment","experiment":{"fig":""}}`,
		"unknown-field":  `{"type":"summarize","summarize":{},"bogus":1}`,
		"malformed-json": `{"type":`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j999"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job status %d, want 404", resp.StatusCode)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postJob(t, ts, testCampaignSpec(40))
	waitFor(t, 60*time.Second, "metrics campaign done", func() bool {
		return getStatus(t, ts, st.ID).State == StateDone
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"vsd_jobs_accepted_total 1",
		"vsd_trials_total 40",
		`vsd_jobs{state="done"} 1`,
		`vsd_job_latency_seconds_count{type="campaign"} 1`,
		"vsd_queue_depth 0",
		"vsd_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestExperimentJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postJob(t, ts, JobSpec{
		Type:       JobExperiment,
		Experiment: &ExperimentSpec{Fig: "5", Frames: 8, Trials: 10, QualityTrials: 10},
	})
	waitFor(t, 120*time.Second, "experiment done", func() bool {
		s := getStatus(t, ts, st.ID)
		return s.State == StateDone || s.State == StateFailed
	})
	if s := getStatus(t, ts, st.ID); s.State != StateDone {
		t.Fatalf("experiment state %s: %s", s.State, s.Error)
	}
	var er ExperimentResult
	getResult(t, ts, st.ID, &er)
	if er.Fig != "5" || !strings.Contains(er.Text, "==") {
		t.Errorf("experiment result fig=%q text=%q", er.Fig, er.Text)
	}
}

func TestJournalToleratesTornWrites(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "vsd.journal")

	svcA, err := New(Config{Workers: 1, JournalPath: journalPath})
	if err != nil {
		t.Fatal(err)
	}
	stA, err := svcA.Enqueue(JobSpec{
		Type:      JobSummarize,
		Summarize: &SummarizeSpec{InputSpec: InputSpec{Scale: "test", Frames: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svcA.Shutdown(ctx)
	cancel()

	// Simulate a crash mid-append: a torn, non-JSON trailing line.
	f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"op":"state","id":%q,"sta`, stA.ID)
	f.Close()

	svcB := newTestService(t, Config{Workers: 1, JournalPath: journalPath})
	if _, err := svcB.Get(stA.ID); err != nil {
		t.Fatalf("job lost after torn journal write: %v", err)
	}
	waitFor(t, 60*time.Second, "replayed job done", func() bool {
		s, _ := svcB.Get(stA.ID)
		return s.State == StateDone
	})
}
