package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWorkloadCellCampaignJob runs a campaign job on a non-default
// (scenario, summarizer) cell: the job completes through the same
// engine path as the paper workload, the result names the cell, and
// /metrics exposes the per-workload trial series.
func TestWorkloadCellCampaignJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postJob(t, ts, JobSpec{
		Type: JobCampaign,
		Campaign: &CampaignSpec{
			InputSpec:  InputSpec{Input: 2, Scale: "test", Frames: 6, Scenario: "fog"},
			Summarizer: "storyboard",
			Class:      "gpr",
			Trials:     30,
			Seed:       7,
		},
	})
	waitFor(t, 60*time.Second, "cell campaign done", func() bool {
		s := getStatus(t, ts, st.ID)
		if s.State == StateFailed {
			t.Fatalf("cell campaign failed: %s", s.Error)
		}
		return s.State == StateDone
	})

	var cr CampaignResult
	getResult(t, ts, st.ID, &cr)
	if cr.Scenario != "fog" || cr.Summarizer != "storyboard" || cr.Algorithm != "VS" {
		t.Errorf("result cell = %s/%s/%s, want fog/storyboard/VS",
			cr.Scenario, cr.Summarizer, cr.Algorithm)
	}
	if cr.Input != "Input2/fog" {
		t.Errorf("result input = %q, want Input2/fog", cr.Input)
	}
	if cr.Completed != 30 {
		t.Errorf("completed %d/30 trials", cr.Completed)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	want := `vsd_campaign_workload_trials_total{scenario="fog",summarizer="storyboard",algorithm="VS"} 30`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q in:\n%s", want, buf.String())
	}
}

// TestMatrixExperimentJob submits the scenario × summarizer matrix as
// a vsd experiment job and checks the per-cell table comes back.
func TestMatrixExperimentJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postJob(t, ts, JobSpec{
		Type:       JobExperiment,
		Experiment: &ExperimentSpec{Fig: "matrix", Frames: 8, Trials: 20},
	})
	waitFor(t, 120*time.Second, "matrix experiment done", func() bool {
		s := getStatus(t, ts, st.ID)
		if s.State == StateFailed {
			t.Fatalf("matrix experiment failed: %s", s.Error)
		}
		return s.State == StateDone
	})
	var er ExperimentResult
	getResult(t, ts, st.ID, &er)
	for _, cell := range []string{"identity/vs/VS", "fog/storyboard/VS", "lowlight/vs/VS"} {
		if !strings.Contains(er.Text, cell) {
			t.Errorf("matrix report missing cell %s in:\n%s", cell, er.Text)
		}
	}
}

// TestWorkloadSpecValidation rejects malformed workload-axis fields at
// submission time, before any frames are generated.
func TestWorkloadSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Type: JobCampaign, Campaign: &CampaignSpec{
			InputSpec: InputSpec{Scenario: "blur"}, Trials: 5}},
		{Type: JobCampaign, Campaign: &CampaignSpec{
			Summarizer: "mosaic", Trials: 5}},
		{Type: JobSummarize, Summarize: &SummarizeSpec{
			Summarizer: "mosaic"}},
		{Type: JobCampaign, Campaign: &CampaignSpec{
			InputSpec: InputSpec{Scenario: "fog", FramesPGM: []string{"UDU="}}, Trials: 5}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d validated, want error", i)
		}
	}
	ok := JobSpec{Type: JobCampaign, Campaign: &CampaignSpec{
		InputSpec:  InputSpec{Input: 2, Scale: "test", Frames: 6, Scenario: "Identity+fog"},
		Summarizer: "storyboard", Trials: 5}}
	if err := ok.Validate(); err != nil {
		t.Errorf("canonicalizable spec rejected: %v", err)
	}
}
