package service

import (
	"testing"
	"time"
)

// campaignSpecWith builds the shared small campaign with one knob
// varied, to probe the golden-cache key.
func campaignSpecWith(class string, seed uint64) JobSpec {
	return JobSpec{
		Type: JobCampaign,
		Campaign: &CampaignSpec{
			InputSpec: InputSpec{Input: 2, Scale: "test", Frames: 6},
			Algorithm: "VS",
			Class:     class,
			Trials:    5,
			Seed:      seed,
		},
	}
}

// TestGoldenCacheSharing checks that campaign jobs over the same
// workload share one golden capture — and that changing the app seed
// (which changes the golden run) does not.
func TestGoldenCacheSharing(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})

	run := func(spec JobSpec) {
		st, err := svc.Enqueue(spec)
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		waitFor(t, 60*time.Second, "job "+st.ID+" done", func() bool {
			got, err := svc.Get(st.ID)
			if err != nil {
				t.Fatalf("get %s: %v", st.ID, err)
			}
			if got.State == StateFailed {
				t.Fatalf("job %s failed: %s", st.ID, got.Error)
			}
			return got.State == StateDone
		})
	}

	run(campaignSpecWith("gpr", 7)) // miss: first sight of the workload
	run(campaignSpecWith("fpr", 7)) // hit: class is not part of the key
	run(campaignSpecWith("gpr", 7)) // hit: identical workload
	run(campaignSpecWith("gpr", 8)) // miss: different app seed

	svc.metrics.mu.Lock()
	hits, misses := svc.metrics.goldenHits, svc.metrics.goldenMisses
	svc.metrics.mu.Unlock()
	if hits != 2 || misses != 2 {
		t.Errorf("golden cache hits/misses = %d/%d, want 2/2", hits, misses)
	}
}
