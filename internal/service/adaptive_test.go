package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// adaptiveJobSpec is a small confidence-driven campaign: loose targets
// and a hard cap keep it in the same runtime class as the fixed
// 60-trial test campaigns.
func adaptiveJobSpec() JobSpec {
	return JobSpec{
		Type: JobCampaign,
		Campaign: &CampaignSpec{
			InputSpec:  InputSpec{Input: 2, Scale: "test", Frames: 6},
			Algorithm:  "VS",
			Class:      "gpr",
			Adaptive:   true,
			Precision:  0.15,
			Confidence: 0.9,
			MaxTrials:  150,
			Seed:       7,
		},
	}
}

func TestAdaptiveCampaignJob(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	job := postJob(t, ts, adaptiveJobSpec())
	waitFor(t, 120*time.Second, "adaptive job done", func() bool {
		st := getStatus(t, ts, job.ID)
		if st.State == StateFailed {
			t.Fatalf("adaptive job failed: %s", st.Error)
		}
		return st.State == StateDone
	})

	var cr CampaignResult
	getResult(t, ts, job.ID, &cr)
	if !cr.Adaptive {
		t.Error("result not marked adaptive")
	}
	if cr.Precision != 0.15 || cr.Confidence != 0.9 {
		t.Errorf("result targets = %v/%v, want 0.15/0.9", cr.Precision, cr.Confidence)
	}
	if cr.Rounds == 0 || cr.Trials == 0 {
		t.Errorf("adaptive result rounds=%d trials=%d, want both > 0", cr.Rounds, cr.Trials)
	}
	if cr.Trials > 150 {
		t.Errorf("adaptive spent %d trials, cap was 150", cr.Trials)
	}
	if cr.FixedBudget <= 0 {
		t.Errorf("fixed budget %d, want > 0", cr.FixedBudget)
	}
	if len(cr.Strata) == 0 {
		t.Fatal("adaptive result has no strata")
	}
	total := 0
	for _, s := range cr.Strata {
		if s.Population == 0 {
			t.Errorf("stratum %s/%s has zero population", s.Region, s.Bits)
		}
		total += s.Trials
	}
	if total != cr.Trials {
		t.Errorf("per-stratum trials sum to %d, result says %d", total, cr.Trials)
	}

	st := getStatus(t, ts, job.ID)
	if st.Progress.Done != cr.Trials || st.Progress.Total != cr.Trials {
		t.Errorf("progress = %+v, want %d/%d", st.Progress, cr.Trials, cr.Trials)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"vsd_campaign_round_campaigns_total 1",
		"vsd_campaign_round_count_total",
		"vsd_campaign_round_trials_total",
		"vsd_campaign_stratum_half_width{class=\"GPR\",",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestAdaptiveSpecValidationService(t *testing.T) {
	for name, mutate := range map[string]func(*CampaignSpec){
		"precision too wide":  func(c *CampaignSpec) { c.Precision = 0.5 },
		"negative precision":  func(c *CampaignSpec) { c.Precision = -0.1 },
		"confidence at one":   func(c *CampaignSpec) { c.Confidence = 1 },
		"negative round size": func(c *CampaignSpec) { c.RoundSize = -1 },
		"precision without adaptive": func(c *CampaignSpec) {
			c.Adaptive = false
			c.Trials = 10
		},
	} {
		spec := adaptiveJobSpec()
		mutate(spec.Campaign)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted the spec", name)
		}
	}
	ok := adaptiveJobSpec()
	ok.Campaign.Precision = 0
	ok.Campaign.Confidence = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("defaulted adaptive spec rejected: %v", err)
	}
}
