package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fault"
	"vsresil/internal/plan"
	"vsresil/internal/probe"
)

// latencyBuckets are the per-job-type latency histogram upper bounds,
// in seconds. Summarize jobs land in the sub-second buckets at test
// scale; paper-scale campaigns reach the tail.
var latencyBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

// trialWindow is the sliding window the trials/sec gauge is computed
// over.
const trialWindow = 10 * time.Second

// metrics collects the service's counters and gauges. Everything is
// guarded by one mutex: update rates are bounded by trial batches and
// job completions, far below contention range.
type metrics struct {
	mu    sync.Mutex
	start time.Time

	jobsAccepted  uint64
	jobsCompleted map[JobType]map[JobState]uint64
	trialsTotal   uint64
	goldenHits    uint64
	goldenMisses  uint64

	// workloadTrials splits the trial counter by campaign workload
	// cell, backing the per-workload /metrics series.
	workloadTrials map[workloadCell]uint64

	// bucket scheduler accumulators fed by fault.SchedStats after each
	// campaign run; bucketMax is the largest single bucket seen, the
	// histogram's interesting tail for a text exposition.
	bucketCampaigns     uint64
	bucketsTotal        uint64
	bucketTrialsTotal   uint64
	bucketRestoresSaved uint64
	bucketMax           int
	bucketEarlyMasks    uint64
	bucketConverged     uint64

	// adaptive round accumulators fed per completed planner round and
	// per finished adaptive campaign; strataHW holds each stratum's
	// latest estimate for the half-width gauge series.
	roundCampaigns uint64
	roundsTotal    uint64
	roundTrials    uint64
	roundConverged uint64
	roundLastMaxHW float64
	strataHW       map[stratumCell]stratumGauge

	// executor-session accumulators fed by fault.SessionStats after
	// each adaptive campaign: how much the persistent session amortized
	// across its round loop.
	sessionCampaigns  uint64
	sessionPrepHits   uint64
	sessionPrepMisses uint64
	sessionRounds     uint64
	sessionReused     uint64

	// trialTimes is a per-second ring of trial completions backing the
	// trials/sec gauge.
	trialTimes [16]struct {
		sec int64
		n   uint64
	}

	// latency histograms: per type, count per bucket (+ overflow) and
	// a running sum for the mean.
	latCounts map[JobType][]uint64
	latSum    map[JobType]float64
	latN      map[JobType]uint64

	// per-stage accumulators fed by probe.Meter snapshots from
	// summarize runs; indexed by probe.Region.
	stageRuns    uint64
	stageWall    [probe.NumRegions]time.Duration
	stageOps     [probe.NumRegions][probe.NumOpClasses]uint64
	stageIntTaps [probe.NumRegions]uint64
	stageFPTaps  [probe.NumRegions]uint64
}

func newMetrics() *metrics {
	return &metrics{
		start:          time.Now(),
		jobsCompleted:  make(map[JobType]map[JobState]uint64),
		workloadTrials: make(map[workloadCell]uint64),
		latCounts:      make(map[JobType][]uint64),
		latSum:         make(map[JobType]float64),
		latN:           make(map[JobType]uint64),
	}
}

// workloadCell identifies one campaign workload in canonical label
// form: the (scenario, summarizer, algorithm) tuple of the matrix.
type workloadCell struct {
	Scenario   string
	Summarizer string
	Algorithm  string
}

// workloadTrialsDone records n completed trials against a workload
// cell's /metrics series.
func (m *metrics) workloadTrialsDone(c workloadCell, n int) {
	m.mu.Lock()
	m.workloadTrials[c] += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) jobAccepted() {
	m.mu.Lock()
	m.jobsAccepted++
	m.mu.Unlock()
}

// trialsDone records n completed injection trials.
func (m *metrics) trialsDone(n int) {
	now := time.Now()
	m.mu.Lock()
	m.trialsTotal += uint64(n)
	sec := now.Unix()
	slot := &m.trialTimes[sec%int64(len(m.trialTimes))]
	if slot.sec != sec {
		slot.sec = sec
		slot.n = 0
	}
	slot.n += uint64(n)
	m.mu.Unlock()
}

// trialsPerSec returns the trial completion rate over the sliding
// window; caller holds mu.
func (m *metrics) trialsPerSec(now time.Time) float64 {
	cutoff := now.Add(-trialWindow).Unix()
	var n uint64
	for _, s := range m.trialTimes {
		if s.sec > cutoff {
			n += s.n
		}
	}
	return float64(n) / trialWindow.Seconds()
}

// goldenLookup records a golden-run cache lookup.
func (m *metrics) goldenLookup(hit bool) {
	m.mu.Lock()
	if hit {
		m.goldenHits++
	} else {
		m.goldenMisses++
	}
	m.mu.Unlock()
}

// stagesDone folds one metered pipeline run's per-region stats into
// the service-lifetime stage accumulators.
func (m *metrics) stagesDone(snap []probe.RegionStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stageRuns++
	for _, rs := range snap {
		if rs.Region >= probe.NumRegions {
			continue
		}
		m.stageWall[rs.Region] += rs.Wall
		m.stageIntTaps[rs.Region] += rs.IntTaps
		m.stageFPTaps[rs.Region] += rs.FPTaps
		for c := probe.OpClass(0); c < probe.NumOpClasses; c++ {
			m.stageOps[rs.Region][c] += rs.Ops[c]
		}
	}
}

// stratumCell identifies one adaptive stratum's /metrics series.
type stratumCell struct {
	Class  string
	Region string
	Bits   string
}

// stratumGauge is a stratum's latest observed estimate.
type stratumGauge struct {
	Trials    int
	HalfWidth float64
	Done      bool
}

// roundDone records one completed adaptive planner round.
func (m *metrics) roundDone(st campaign.RoundStatus) {
	m.mu.Lock()
	m.roundsTotal++
	m.roundTrials += uint64(st.RoundTrials)
	m.roundLastMaxHW = st.MaxHalfWidth
	m.mu.Unlock()
}

// adaptiveDone folds one finished adaptive campaign's final strata into
// the half-width gauge series.
func (m *metrics) adaptiveDone(class string, strata []plan.StratumStatus, converged bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roundCampaigns++
	if converged {
		m.roundConverged++
	}
	if m.strataHW == nil {
		m.strataHW = make(map[stratumCell]stratumGauge)
	}
	for _, st := range strata {
		m.strataHW[stratumCell{Class: class, Region: st.Region.String(), Bits: st.Bits.String()}] =
			stratumGauge{Trials: st.Trials, HalfWidth: st.HalfWidth, Done: st.Done}
	}
}

// sessionDone folds one campaign's executor-session counters into the
// service-lifetime session gauges.
func (m *metrics) sessionDone(s fault.SessionStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionCampaigns++
	m.sessionPrepHits += s.BucketPrepHits
	m.sessionPrepMisses += s.BucketPrepMisses
	m.sessionRounds += s.RoundsServed
	m.sessionReused += s.WorkersReused
}

// bucketsDone folds one campaign's scheduler statistics into the
// service-lifetime bucket gauges.
func (m *metrics) bucketsDone(s fault.SchedStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bucketCampaigns++
	m.bucketsTotal += uint64(s.Buckets)
	m.bucketTrialsTotal += uint64(s.Batched)
	m.bucketRestoresSaved += uint64(s.RestoresSaved)
	m.bucketEarlyMasks += uint64(s.EarlyMasks)
	m.bucketConverged += uint64(s.Converged)
	for _, n := range s.BucketSizes {
		if n > m.bucketMax {
			m.bucketMax = n
		}
	}
}

// jobFinished records a job reaching a terminal (or requeued) state
// with its run latency.
func (m *metrics) jobFinished(t JobType, s JobState, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byState := m.jobsCompleted[t]
	if byState == nil {
		byState = make(map[JobState]uint64)
		m.jobsCompleted[t] = byState
	}
	byState[s]++
	counts := m.latCounts[t]
	if counts == nil {
		counts = make([]uint64, len(latencyBuckets)+1)
		m.latCounts[t] = counts
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	counts[i]++
	m.latSum[t] += sec
	m.latN[t]++
}

// gauges is the point-in-time queue state the Service supplies to the
// /metrics rendering.
type gauges struct {
	queueDepth  int
	workers     int
	busyWorkers int
	jobsByState map[JobState]int
}

// write renders the Prometheus-style text exposition.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	fmt.Fprintf(w, "# vsd job-queue service metrics\n")
	fmt.Fprintf(w, "vsd_uptime_seconds %.1f\n", now.Sub(m.start).Seconds())
	fmt.Fprintf(w, "vsd_jobs_accepted_total %d\n", m.jobsAccepted)
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "vsd_jobs{state=%q} %d\n", st, g.jobsByState[st])
	}
	types := make([]JobType, 0, len(m.jobsCompleted))
	for t := range m.jobsCompleted {
		types = append(types, t)
	}
	sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
	for _, t := range types {
		states := make([]JobState, 0, len(m.jobsCompleted[t]))
		for s := range m.jobsCompleted[t] {
			states = append(states, s)
		}
		sort.Slice(states, func(a, b int) bool { return states[a] < states[b] })
		for _, s := range states {
			fmt.Fprintf(w, "vsd_jobs_finished_total{type=%q,state=%q} %d\n", t, s, m.jobsCompleted[t][s])
		}
	}
	fmt.Fprintf(w, "vsd_queue_depth %d\n", g.queueDepth)
	fmt.Fprintf(w, "vsd_workers %d\n", g.workers)
	fmt.Fprintf(w, "vsd_workers_busy %d\n", g.busyWorkers)
	if g.workers > 0 {
		fmt.Fprintf(w, "vsd_worker_utilization %.3f\n", float64(g.busyWorkers)/float64(g.workers))
	}
	fmt.Fprintf(w, "vsd_trials_total %d\n", m.trialsTotal)
	fmt.Fprintf(w, "vsd_trials_per_sec %.1f\n", m.trialsPerSec(now))
	if len(m.workloadTrials) > 0 {
		cells := make([]workloadCell, 0, len(m.workloadTrials))
		for c := range m.workloadTrials {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].Scenario != cells[b].Scenario {
				return cells[a].Scenario < cells[b].Scenario
			}
			if cells[a].Summarizer != cells[b].Summarizer {
				return cells[a].Summarizer < cells[b].Summarizer
			}
			return cells[a].Algorithm < cells[b].Algorithm
		})
		for _, c := range cells {
			fmt.Fprintf(w, "vsd_campaign_workload_trials_total{scenario=%q,summarizer=%q,algorithm=%q} %d\n",
				c.Scenario, c.Summarizer, c.Algorithm, m.workloadTrials[c])
		}
	}
	fmt.Fprintf(w, "vsd_golden_cache_hits_total %d\n", m.goldenHits)
	fmt.Fprintf(w, "vsd_golden_cache_misses_total %d\n", m.goldenMisses)
	if m.bucketCampaigns > 0 {
		fmt.Fprintf(w, "vsd_campaign_bucket_campaigns_total %d\n", m.bucketCampaigns)
		fmt.Fprintf(w, "vsd_campaign_bucket_count_total %d\n", m.bucketsTotal)
		fmt.Fprintf(w, "vsd_campaign_bucket_trials_total %d\n", m.bucketTrialsTotal)
		fmt.Fprintf(w, "vsd_campaign_bucket_restores_saved_total %d\n", m.bucketRestoresSaved)
		fmt.Fprintf(w, "vsd_campaign_bucket_max_trials %d\n", m.bucketMax)
		if m.bucketsTotal > 0 {
			fmt.Fprintf(w, "vsd_campaign_bucket_mean_trials %.2f\n",
				float64(m.bucketTrialsTotal)/float64(m.bucketsTotal))
		}
		fmt.Fprintf(w, "vsd_campaign_bucket_early_masks_total %d\n", m.bucketEarlyMasks)
		fmt.Fprintf(w, "vsd_campaign_bucket_converged_total %d\n", m.bucketConverged)
	}
	if m.roundsTotal > 0 {
		fmt.Fprintf(w, "vsd_campaign_round_campaigns_total %d\n", m.roundCampaigns)
		fmt.Fprintf(w, "vsd_campaign_round_count_total %d\n", m.roundsTotal)
		fmt.Fprintf(w, "vsd_campaign_round_trials_total %d\n", m.roundTrials)
		fmt.Fprintf(w, "vsd_campaign_round_converged_total %d\n", m.roundConverged)
		fmt.Fprintf(w, "vsd_campaign_round_last_max_half_width %.4f\n", m.roundLastMaxHW)
	}
	if m.sessionCampaigns > 0 {
		fmt.Fprintf(w, "vsd_campaign_session_campaigns_total %d\n", m.sessionCampaigns)
		fmt.Fprintf(w, "vsd_campaign_session_bucket_prep_hits %d\n", m.sessionPrepHits)
		fmt.Fprintf(w, "vsd_campaign_session_bucket_prep_misses %d\n", m.sessionPrepMisses)
		fmt.Fprintf(w, "vsd_campaign_session_rounds_served %d\n", m.sessionRounds)
		fmt.Fprintf(w, "vsd_campaign_session_workers_reused %d\n", m.sessionReused)
	}
	if len(m.strataHW) > 0 {
		cells := make([]stratumCell, 0, len(m.strataHW))
		for c := range m.strataHW {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].Class != cells[b].Class {
				return cells[a].Class < cells[b].Class
			}
			if cells[a].Region != cells[b].Region {
				return cells[a].Region < cells[b].Region
			}
			return cells[a].Bits < cells[b].Bits
		})
		for _, c := range cells {
			g := m.strataHW[c]
			fmt.Fprintf(w, "vsd_campaign_stratum_half_width{class=%q,region=%q,bits=%q} %.4f\n",
				c.Class, c.Region, c.Bits, g.HalfWidth)
			fmt.Fprintf(w, "vsd_campaign_stratum_trials{class=%q,region=%q,bits=%q} %d\n",
				c.Class, c.Region, c.Bits, g.Trials)
			done := 0
			if g.Done {
				done = 1
			}
			fmt.Fprintf(w, "vsd_campaign_stratum_done{class=%q,region=%q,bits=%q} %d\n",
				c.Class, c.Region, c.Bits, done)
		}
	}
	if m.stageRuns > 0 {
		fmt.Fprintf(w, "vsd_stage_metered_runs_total %d\n", m.stageRuns)
		for r := probe.Region(0); r < probe.NumRegions; r++ {
			fmt.Fprintf(w, "vsd_stage_latency_seconds_total{stage=%q} %.6f\n", r, m.stageWall[r].Seconds())
		}
		for r := probe.Region(0); r < probe.NumRegions; r++ {
			for c := probe.OpClass(0); c < probe.NumOpClasses; c++ {
				if n := m.stageOps[r][c]; n > 0 {
					fmt.Fprintf(w, "vsd_stage_ops_total{stage=%q,class=%q} %d\n", r, c, n)
				}
			}
		}
		for r := probe.Region(0); r < probe.NumRegions; r++ {
			if n := m.stageIntTaps[r]; n > 0 {
				fmt.Fprintf(w, "vsd_stage_taps_total{stage=%q,kind=\"int\"} %d\n", r, n)
			}
			if n := m.stageFPTaps[r]; n > 0 {
				fmt.Fprintf(w, "vsd_stage_taps_total{stage=%q,kind=\"fp\"} %d\n", r, n)
			}
		}
	}
	for _, t := range types {
		counts := m.latCounts[t]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += counts[i]
			fmt.Fprintf(w, "vsd_job_latency_seconds_bucket{type=%q,le=%q} %d\n", t, fmt.Sprintf("%g", ub), cum)
		}
		cum += counts[len(latencyBuckets)]
		fmt.Fprintf(w, "vsd_job_latency_seconds_bucket{type=%q,le=\"+Inf\"} %d\n", t, cum)
		fmt.Fprintf(w, "vsd_job_latency_seconds_sum{type=%q} %.3f\n", t, m.latSum[t])
		fmt.Fprintf(w, "vsd_job_latency_seconds_count{type=%q} %d\n", t, m.latN[t])
	}
}
