package service

import (
	"fmt"
	"hash/fnv"
	"sync"

	"vsresil/internal/fault"
)

// maxGoldenCache bounds the service's golden-run cache. Entries hold
// the golden output bytes (a serialized panorama set), so the cache is
// kept small; when full, an arbitrary entry is evicted — the access
// pattern (campaign sweeps over a few workloads) does not reward LRU.
const maxGoldenCache = 16

// goldenEntry is one cached golden run. The once gate makes
// concurrent campaigns over the same workload share a single capture
// instead of racing duplicate fault-free runs.
type goldenEntry struct {
	once   sync.Once
	golden *fault.GoldenRun
	err    error
}

// goldenKey canonicalizes the campaign spec fields that determine the
// golden run: the app (algorithm + seed) and the input. Class, region,
// trials, campaign seed and worker count are irrelevant — the golden
// run is fault-free and shared across them.
func (spec *CampaignSpec) goldenKey() string {
	alg, _ := parseAlgorithm(spec.Algorithm)
	in := spec.InputSpec
	if len(in.FramesPGM) > 0 {
		h := fnv.New64a()
		for _, enc := range in.FramesPGM {
			h.Write([]byte(enc))
			h.Write([]byte{0})
		}
		return fmt.Sprintf("%s|%d|pgm:%d:%x", alg, spec.Seed, len(in.FramesPGM), h.Sum64())
	}
	input := in.Input
	if input == 0 {
		input = 1
	}
	return fmt.Sprintf("%s|%d|gen:%d:%s:%d", alg, spec.Seed, input, in.Scale, in.Frames)
}

// goldenFor returns the golden run for key, capturing it with a
// fault-free execution of app on first use. The capture itself runs
// outside the service mutex; only cache bookkeeping is locked.
func (s *Service) goldenFor(key string, app fault.App) (*fault.GoldenRun, error) {
	s.goldenMu.Lock()
	e := s.goldenCache[key]
	hit := e != nil
	if e == nil {
		if len(s.goldenCache) >= maxGoldenCache {
			for k := range s.goldenCache {
				delete(s.goldenCache, k)
				break
			}
		}
		e = &goldenEntry{}
		s.goldenCache[key] = e
	}
	s.goldenMu.Unlock()
	s.metrics.goldenLookup(hit)

	e.once.Do(func() {
		e.golden, e.err = fault.CaptureGolden(app)
		if e.err != nil {
			// Do not cache failures: the next campaign retries the
			// capture (the input may be transiently bad, e.g. a
			// canceled upload).
			s.goldenMu.Lock()
			if s.goldenCache[key] == e {
				delete(s.goldenCache, key)
			}
			s.goldenMu.Unlock()
		}
	})
	return e.golden, e.err
}
