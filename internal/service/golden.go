package service

import (
	"fmt"
	"hash/fnv"

	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// maxGoldenCache bounds the service's golden-run cache. Entries hold
// the golden output bytes (a serialized panorama set), so the cache is
// kept small; when full, an arbitrary entry is evicted — the access
// pattern (campaign sweeps over a few workloads) does not reward LRU.
const maxGoldenCache = 16

// goldenKey canonicalizes the campaign spec fields that determine the
// golden run: the workload cell (scenario, summarizer, algorithm), the
// app seed and the input. Class, region, trials, campaign seed and
// worker count are irrelevant — the golden run is fault-free and
// shared across them. The key is the workload's identity in the
// campaign engine's golden cache. Scenario and summarizer tokens are
// canonicalized (spec validation guarantees they parse), so
// "Identity+fog" and "fog" key the same workload.
func (spec *CampaignSpec) goldenKey() string {
	alg, _ := vs.ParseAlgorithm(spec.Algorithm)
	sc, _ := virat.ParseScenario(spec.Scenario)
	sumName := "vs"
	if sum, err := summarize.Parse(spec.Summarizer, vs.DefaultConfig(alg)); err == nil {
		sumName = sum.Name()
	}
	cell := fmt.Sprintf("%s/%s/%s", sc.Name, sumName, alg)
	in := spec.InputSpec
	if len(in.FramesPGM) > 0 {
		h := fnv.New64a()
		for _, enc := range in.FramesPGM {
			h.Write([]byte(enc))
			h.Write([]byte{0})
		}
		return fmt.Sprintf("%s|%d|pgm:%d:%x", cell, spec.Seed, len(in.FramesPGM), h.Sum64())
	}
	input := in.Input
	if input == 0 {
		input = 1
	}
	return fmt.Sprintf("%s|%d|gen:%d:%s:%d", cell, spec.Seed, input, in.Scale, in.Frames)
}
