// Package fastpath gates the bit-exact performance fast paths used by
// the per-trial hot loops (scanline warp kernel, direct-index pixel
// reads, precomputed feature scratch).
//
// Every fast path in the tree carries a hard equivalence obligation:
// with the gate on or off, an application run must produce identical
// output bytes, an identical fault-tap stream, and identical modelled
// op counts, so that fault-injection campaign results never depend on
// the optimization level. The gate exists so the equivalence guard
// tests can execute both implementations and compare them; production
// code leaves it enabled.
package fastpath

// enabled is read once per pipeline-stage call, never per pixel, so a
// plain bool is cheap. It is not synchronized: the only writers are
// tests toggling it between (not during) runs.
var enabled = true

// Enabled reports whether the optimized kernels are active.
func Enabled() bool { return enabled }

// SetEnabled switches between the optimized kernels and the retained
// reference implementations. It must not be called concurrently with a
// pipeline run; it exists for equivalence tests and A/B benchmarks.
func SetEnabled(v bool) { enabled = v }
