// Package fastpath gates the bit-exact performance fast paths used by
// the per-trial hot loops (scanline warp kernel, direct-index pixel
// reads, precomputed feature scratch).
//
// Every fast path in the tree carries a hard equivalence obligation:
// with the gate on or off, an application run must produce identical
// output bytes, an identical fault-tap stream, and identical modelled
// op counts, so that fault-injection campaign results never depend on
// the optimization level. The gate exists so the equivalence guard
// tests can execute both implementations and compare them; production
// code leaves it enabled.
package fastpath

// enabled is read once per pipeline-stage call, never per pixel, so a
// plain bool is cheap. It is not synchronized: the only writers are
// tests toggling it between (not during) runs.
var enabled = true

// Enabled reports whether the optimized kernels are active.
func Enabled() bool { return enabled }

// SetEnabled switches between the optimized kernels and the retained
// reference implementations. It must not be called concurrently with a
// pipeline run; it exists for equivalence tests and A/B benchmarks.
func SetEnabled(v bool) { enabled = v }

// prefixSkip gates golden-prefix checkpoint restoration in
// fault-injection campaigns: when on, a trial whose injection site
// lies past a recorded stage boundary resumes from that boundary's
// golden snapshot instead of re-executing the fault-free prefix. The
// equivalence obligation is the same as for the kernel fast paths —
// campaign results must be bit-identical with the gate on or off.
var prefixSkip = true

// PrefixSkip reports whether campaigns may skip the fault-free prefix
// of a trial by resuming from a golden checkpoint.
func PrefixSkip() bool { return prefixSkip }

// SetPrefixSkip forces full re-execution of every trial (false) or
// re-enables prefix skipping (true). Like SetEnabled it must not be
// called concurrently with a running campaign; it exists for the
// equivalence guard tests and A/B benchmarks.
func SetPrefixSkip(v bool) { prefixSkip = v }

// batching gates the checkpoint-bucket campaign scheduler: when on,
// trials that resume from the same golden stage boundary are grouped
// into buckets that share one restored checkpoint view, and the
// campaign applies the resolved-plan suffix cutoffs (early-mask and
// boundary convergence) that the bucket scheduler's soundness argument
// covers. Results are accumulated in plan-index order either way, so
// the switch carries the usual obligation: campaign results must be
// bit-identical with batching on or off.
var batching = true

// Batching reports whether campaigns schedule trials in checkpoint
// buckets (with the associated suffix cutoffs).
func Batching() bool { return batching }

// SetBatching switches between the bucket scheduler and the classic
// one-trial-at-a-time loop. It must not be called concurrently with a
// running campaign; it exists for the equivalence matrix tests and A/B
// benchmarks.
func SetBatching(v bool) { batching = v }

// tiling gates the devirtualized suffix kernels: warp scanline
// projection, canvas blending and canvas resolve run their tap-free
// clean mirrors — row-tiled across goroutines when GOMAXPROCS allows —
// whenever the machine proves no armed plan can fire inside the kernel
// (fault.Machine.CanSkipTaps), with the tap counters bulk-advanced by
// the kernel's exact footprint. Rows are partitioned disjointly, so
// output bytes are identical for any tile count including one.
var tiling = true

// Tiling reports whether inert kernel invocations may run the tiled
// clean mirrors instead of the instrumented loops.
func Tiling() bool { return tiling }

// SetTiling forces every kernel invocation through the instrumented
// loop (false) or re-enables the tiled clean mirrors (true). Like the
// other gates it must not be toggled during a run; it exists for the
// equivalence matrix tests and A/B benchmarks.
func SetTiling(v bool) { tiling = v }
