// Package fastpath gates the bit-exact performance fast paths used by
// the per-trial hot loops (scanline warp kernel, direct-index pixel
// reads, precomputed feature scratch).
//
// Every fast path in the tree carries a hard equivalence obligation:
// with the gate on or off, an application run must produce identical
// output bytes, an identical fault-tap stream, and identical modelled
// op counts, so that fault-injection campaign results never depend on
// the optimization level. The gate exists so the equivalence guard
// tests can execute both implementations and compare them; production
// code leaves it enabled.
package fastpath

// enabled is read once per pipeline-stage call, never per pixel, so a
// plain bool is cheap. It is not synchronized: the only writers are
// tests toggling it between (not during) runs.
var enabled = true

// Enabled reports whether the optimized kernels are active.
func Enabled() bool { return enabled }

// SetEnabled switches between the optimized kernels and the retained
// reference implementations. It must not be called concurrently with a
// pipeline run; it exists for equivalence tests and A/B benchmarks.
func SetEnabled(v bool) { enabled = v }

// prefixSkip gates golden-prefix checkpoint restoration in
// fault-injection campaigns: when on, a trial whose injection site
// lies past a recorded stage boundary resumes from that boundary's
// golden snapshot instead of re-executing the fault-free prefix. The
// equivalence obligation is the same as for the kernel fast paths —
// campaign results must be bit-identical with the gate on or off.
var prefixSkip = true

// PrefixSkip reports whether campaigns may skip the fault-free prefix
// of a trial by resuming from a golden checkpoint.
func PrefixSkip() bool { return prefixSkip }

// SetPrefixSkip forces full re-execution of every trial (false) or
// re-enables prefix skipping (true). Like SetEnabled it must not be
// called concurrently with a running campaign; it exists for the
// equivalence guard tests and A/B benchmarks.
func SetPrefixSkip(v bool) { prefixSkip = v }
