package campaign

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"vsresil/internal/fault"
)

// runShards executes each shard of toySpec()'s k-way decomposition
// independently and returns the per-shard results in index order.
func runShards(t *testing.T, k int) []*Result {
	t.Helper()
	var runner Runner
	shards := toySpec().Shards(k)
	results := make([]*Result, len(shards))
	for i, s := range shards {
		r, err := runner.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, k, err)
		}
		results[i] = r
	}
	return results
}

// TestMergeShardSetError checks that a broken decomposition fails with
// a *ShardSetError naming the exact plan-index windows to repair, not
// just the first violation. toySpec's 60 trials split 3 ways into
// [0,20) [20,40) [40,60).
func TestMergeShardSetError(t *testing.T) {
	results := runShards(t, 3)

	_, err := Merge(results[0], results[2])
	var se *ShardSetError
	if !errors.As(err, &se) {
		t.Fatalf("merge with a missing shard: got %v, want *ShardSetError", err)
	}
	if se.PlanTrials != 60 {
		t.Errorf("PlanTrials = %d, want 60", se.PlanTrials)
	}
	if want := [][2]int{{20, 40}}; !reflect.DeepEqual(se.Missing, want) {
		t.Errorf("Missing = %v, want %v", se.Missing, want)
	}
	if len(se.Overlaps) != 0 {
		t.Errorf("Overlaps = %v, want none", se.Overlaps)
	}
	if msg := err.Error(); !strings.Contains(msg, "[20,40)") {
		t.Errorf("error %q does not name the missing window", msg)
	}

	// A duplicated shard is both a gap (its donor window is unclaimed)
	// and an overlap.
	se = nil
	_, err = Merge(results[1], results[1], results[2])
	if !errors.As(err, &se) {
		t.Fatalf("merge with a duplicated shard: got %v, want *ShardSetError", err)
	}
	if want := [][2]int{{0, 20}}; !reflect.DeepEqual(se.Missing, want) {
		t.Errorf("Missing = %v, want %v", se.Missing, want)
	}
	if want := [][2]int{{20, 40}}; !reflect.DeepEqual(se.Overlaps, want) {
		t.Errorf("Overlaps = %v, want %v", se.Overlaps, want)
	}

	// A trailing gap is reported up to the plan-space end.
	se = nil
	_, err = Merge(results[0])
	if !errors.As(err, &se) {
		t.Fatalf("merge of one shard: got %v, want *ShardSetError", err)
	}
	if want := [][2]int{{20, 60}}; !reflect.DeepEqual(se.Missing, want) {
		t.Errorf("Missing = %v, want %v", se.Missing, want)
	}
}

// TestPartialMergeAggregates feeds partialMerge the typical
// interruption shape — some shards reported, some never did (nil) —
// and checks the best-effort aggregate: summed counts and histograms,
// concatenated trials, no rate curve, no bit-identity pretensions.
func TestPartialMergeAggregates(t *testing.T) {
	results := runShards(t, 3)
	parts := []*Result{results[0], nil, results[2]} // shard 1 lost

	got := partialMerge(toySpec(), parts)
	if got == nil || got.Fault == nil {
		t.Fatal("partialMerge returned nil for a set with live parts")
	}
	alive := []*Result{results[0], results[2]}

	wantCompleted := 0
	for _, p := range alive {
		wantCompleted += p.Fault.Completed
	}
	if got.Fault.Completed != wantCompleted {
		t.Errorf("Completed = %d, want %d", got.Fault.Completed, wantCompleted)
	}
	counted := 0
	for o, n := range got.Fault.Counts {
		counted += n
		want := 0
		for _, p := range alive {
			want += p.Fault.Counts[o]
		}
		if n != want {
			t.Errorf("Counts[%v] = %d, want %d", fault.Outcome(o), n, want)
		}
	}
	if counted != wantCompleted {
		t.Errorf("counts sum to %d, completed %d", counted, wantCompleted)
	}
	for i, n := range got.Fault.RegHist.Counts {
		if want := alive[0].Fault.RegHist.Counts[i] + alive[1].Fault.RegHist.Counts[i]; n != want {
			t.Errorf("RegHist[%d] = %d, want %d", i, n, want)
		}
	}
	if want := len(alive[0].Fault.Trials) + len(alive[1].Fault.Trials); len(got.Fault.Trials) != want {
		t.Errorf("kept %d trials, want %d", len(got.Fault.Trials), want)
	}
	if want := alive[0].Executed + alive[1].Executed; got.Executed != want {
		t.Errorf("Executed = %d, want %d", got.Executed, want)
	}
	if len(got.Fault.Curve.Snapshots) != 0 {
		t.Errorf("partial merge produced %d rate-curve snapshots, want none", len(got.Fault.Curve.Snapshots))
	}
	if got.Spec.Shard != (Shard{}) {
		t.Errorf("merged spec still carries shard coordinates %+v", got.Spec.Shard)
	}
}

// TestPartialMergeEmpty: a shard set where nothing reported yields nil,
// the signal that there is nothing to say about the campaign.
func TestPartialMergeEmpty(t *testing.T) {
	if got := partialMerge(toySpec(), nil); got != nil {
		t.Errorf("partialMerge(nil parts) = %v, want nil", got)
	}
	if got := partialMerge(toySpec(), []*Result{nil, nil, nil}); got != nil {
		t.Errorf("partialMerge(all-nil parts) = %v, want nil", got)
	}
}
