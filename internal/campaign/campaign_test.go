package campaign

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vsresil/internal/fault"
)

// toyApp is a miniature fault.App with a realistic mix of tap classes
// (crash-prone indices, SDC-prone pixels, mask-prone saturated
// floats), cheap enough for property-style campaign sweeps.
func toyApp(m *fault.Machine) ([]byte, error) {
	buf := make([]uint8, 64)
	for i := range buf {
		buf[i] = uint8(i * 3)
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx]) // panics if idx out of range
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

// toySpec is the campaign the decomposition tests shard and merge.
func toySpec() Spec {
	return Spec{
		Workload: NewWorkload("toy", "", toyApp),
		Class:    fault.GPR,
		Region:   fault.RAny,
		Trials:   60,
		Seed:     7,
		Workers:  2,
		SDC:      SDCPolicy{Keep: true, Max: 3},
	}
}

// requireIdentical compares every campaign observable of two results.
func requireIdentical(t *testing.T, label string, a, b *fault.Result) {
	t.Helper()
	if a.Completed != b.Completed {
		t.Errorf("%s: completed %d vs %d", label, a.Completed, b.Completed)
	}
	if a.Counts != b.Counts {
		t.Errorf("%s: outcome counts differ: %v vs %v", label, a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.CrashCounts, b.CrashCounts) {
		t.Errorf("%s: crash splits differ: %v vs %v", label, a.CrashCounts, b.CrashCounts)
	}
	if !reflect.DeepEqual(a.RegHist.Counts, b.RegHist.Counts) {
		t.Errorf("%s: register histograms differ", label)
	}
	if !reflect.DeepEqual(a.BitHist.Counts, b.BitHist.Counts) {
		t.Errorf("%s: bit histograms differ", label)
	}
	if !reflect.DeepEqual(a.Curve.Checkpoints, b.Curve.Checkpoints) {
		t.Errorf("%s: rate-curve checkpoints differ: %v vs %v", label, a.Curve.Checkpoints, b.Curve.Checkpoints)
	}
	if !reflect.DeepEqual(a.Curve.Snapshots, b.Curve.Snapshots) {
		t.Errorf("%s: rate-curve snapshots differ", label)
	}
	if !bytes.Equal(a.GoldenOutput, b.GoldenOutput) {
		t.Errorf("%s: golden outputs differ", label)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Outcome != tb.Outcome || ta.Crash != tb.Crash || ta.Landed != tb.Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, ta.Outcome, ta.Crash, ta.Landed, tb.Outcome, tb.Crash, tb.Landed)
		}
		if (ta.Output == nil) != (tb.Output == nil) || !bytes.Equal(ta.Output, tb.Output) {
			t.Errorf("%s: trial %d SDC output retention differs", label, i)
		}
	}
}

// TestShardMergeEquivalence is the headline property: for any shard
// count, RunSharded merges bit-identically to the unsharded run —
// outcome counts, crash split, coverage histograms, rate curve and the
// deterministic SDC-output retention.
func TestShardMergeEquivalence(t *testing.T) {
	var runner Runner
	base, err := runner.Run(context.Background(), toySpec())
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	for _, k := range []int{1, 2, 5} {
		merged, err := runner.RunSharded(context.Background(), toySpec(), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		requireIdentical(t, "k="+string(rune('0'+k)), base.Fault, merged.Fault)
		if merged.Executed != base.Executed {
			t.Errorf("k=%d: executed %d, want %d", k, merged.Executed, base.Executed)
		}
	}
}

// TestShardedResume interrupts a sharded run mid-campaign, then
// replays its checkpoint stream into a fresh sharded run: the resumed
// merge must still be bit-identical to the unsharded campaign. Record
// indices are plan indices, so the journal needs no per-shard
// bookkeeping. The specs here carry no SDC retention policy: a
// checkpoint record has no output bytes, so in-memory retention
// cannot survive a resume — callers wanting outputs across restarts
// stream them at first execution via SDC.OnOutput, as vsd does.
func TestShardedResume(t *testing.T) {
	noRetention := func() Spec {
		s := toySpec()
		s.SDC = SDCPolicy{}
		return s
	}
	var runner Runner
	base, err := runner.Run(context.Background(), noRetention())
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var recs []fault.TrialRecord
	spec := noRetention()
	spec.OnTrial = func(rec fault.TrialRecord) {
		mu.Lock()
		recs = append(recs, rec)
		n := len(recs)
		mu.Unlock()
		if n == 10 {
			cancel()
		}
	}
	partial, err := runner.RunSharded(ctx, spec, 3)
	if err == nil {
		t.Fatal("interrupted sharded run returned no error")
	}
	mu.Lock()
	checkpoint := append([]fault.TrialRecord(nil), recs...)
	mu.Unlock()
	// Interruption still yields a best-effort aggregate for reporting.
	if partial == nil || partial.Fault == nil {
		t.Fatal("interrupted sharded run returned no partial result")
	}
	if got := partial.Fault.Completed; got == 0 || got >= toySpec().Trials {
		t.Fatalf("partial result completed %d trials, want partial coverage", got)
	}
	counted := 0
	for _, n := range partial.Fault.Counts {
		counted += n
	}
	if counted != partial.Fault.Completed {
		t.Errorf("partial counts sum to %d, completed %d", counted, partial.Fault.Completed)
	}
	if len(checkpoint) == 0 || len(checkpoint) >= toySpec().Trials {
		t.Fatalf("interruption checkpointed %d trials, want partial coverage", len(checkpoint))
	}

	resumed := noRetention()
	resumed.Resume = checkpoint
	merged, err := runner.RunSharded(context.Background(), resumed, 3)
	if err != nil {
		t.Fatalf("resumed sharded run: %v", err)
	}
	requireIdentical(t, "resumed shards", base.Fault, merged.Fault)
	if want := base.Fault.Completed - len(checkpoint); merged.Executed != want {
		t.Errorf("resumed run executed %d trials, want %d", merged.Executed, want)
	}
}

// TestResumeWorkerCountSkew resumes one interrupted k=5 campaign
// journal under several different worker counts: the cluster promises
// that parallelism never shows in the results, so every resumed merge
// must be bit-identical to the unsharded base run, and the SDC outputs
// streamed across interrupt + resume must be byte-identical to the
// base run's. (Resumed trials never re-execute, so the two runs'
// streams partition the SDC set exactly.)
func TestResumeWorkerCountSkew(t *testing.T) {
	collect := func(spec Spec, sink map[int][]byte) Spec {
		spec.SDC = SDCPolicy{OnOutput: func(rec fault.TrialRecord, out []byte) {
			if _, dup := sink[rec.Index]; dup {
				t.Errorf("SDC output for trial %d streamed twice", rec.Index)
			}
			sink[rec.Index] = append([]byte(nil), out...)
		}}
		return spec
	}
	var runner Runner
	baseSDC := map[int][]byte{}
	base, err := runner.Run(context.Background(), collect(toySpec(), baseSDC))
	if err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	if len(baseSDC) == 0 {
		t.Fatal("base campaign produced no SDC outputs; the skew test needs some")
	}

	for _, w := range []int{1, 3, 7} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		var recs []fault.TrialRecord
		sdc := map[int][]byte{}
		spec := collect(toySpec(), sdc)
		spec.OnTrial = func(rec fault.TrialRecord) {
			mu.Lock()
			recs = append(recs, rec)
			n := len(recs)
			mu.Unlock()
			if n == 10 {
				cancel()
			}
		}
		if _, err := runner.RunSharded(ctx, spec, 5); err == nil {
			t.Fatalf("workers=%d: interrupted run returned no error", w)
		}
		cancel()
		mu.Lock()
		checkpoint := append([]fault.TrialRecord(nil), recs...)
		mu.Unlock()

		resumed := collect(toySpec(), sdc)
		resumed.Workers = w
		resumed.Resume = checkpoint
		merged, err := runner.RunSharded(context.Background(), resumed, 5)
		if err != nil {
			t.Fatalf("workers=%d: resumed run: %v", w, err)
		}
		requireIdentical(t, "workers="+string(rune('0'+w)), base.Fault, merged.Fault)
		if !reflect.DeepEqual(sdc, baseSDC) {
			t.Errorf("workers=%d: streamed SDC outputs differ from base run (%d vs %d indices)",
				w, len(sdc), len(baseSDC))
		}
	}
}

// TestMergeValidation rejects decompositions that do not reassemble
// the original campaign.
func TestMergeValidation(t *testing.T) {
	var runner Runner
	shards := toySpec().Shards(3)
	results := make([]*Result, len(shards))
	for i, s := range shards {
		r, err := runner.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		results[i] = r
	}
	if _, err := Merge(results...); err != nil {
		t.Fatalf("full merge: %v", err)
	}
	if _, err := Merge(results[0], results[2]); err == nil {
		t.Error("merge with a missing shard succeeded")
	}
	if _, err := Merge(results[1], results[1], results[2]); err == nil {
		t.Error("merge with a duplicated shard succeeded")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge succeeded")
	}
}

// TestGoldenCacheSharing checks that a keyed workload captures its
// golden run once and that the runner reports hits and misses.
func TestGoldenCacheSharing(t *testing.T) {
	var calls atomic.Int64
	counted := func(m *fault.Machine) ([]byte, error) {
		calls.Add(1)
		return toyApp(m)
	}
	hits, misses := 0, 0
	runner := Runner{
		Goldens: NewGoldenCache(4),
		OnGoldenLookup: func(hit bool) {
			if hit {
				hits++
			} else {
				misses++
			}
		},
	}
	spec := toySpec()
	spec.Workload = NewWorkload("toy", "toy-key", counted)
	spec.Trials = 10
	for i := 0; i < 3; i++ {
		if _, err := runner.Run(context.Background(), spec); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	// One golden capture plus one invocation per trial: a cache miss on
	// any later run would add a second capture.
	if want := int64(3*spec.Trials + 1); calls.Load() != want {
		t.Errorf("app invoked %d times, want %d (one shared golden capture)", calls.Load(), want)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("lookup stats hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// TestSpecValidation covers the cheap declarative checks.
func TestSpecValidation(t *testing.T) {
	var runner Runner
	bad := []Spec{
		{},                                       // no app
		{Workload: NewWorkload("x", "", toyApp)}, // no trials
		{Workload: NewWorkload("x", "", toyApp), Trials: 4, Shard: Shard{Index: 2, Count: 2}}, // index out of range
		{Workload: NewWorkload("x", "", toyApp), Trials: 4, Shard: Shard{Index: 0, Count: 9}}, // more shards than trials
	}
	for i, s := range bad {
		if _, err := runner.Run(context.Background(), s); err == nil {
			t.Errorf("spec %d validated unexpectedly", i)
		}
	}
}
