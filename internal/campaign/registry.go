package campaign

import (
	"context"
	"fmt"

	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// Cell names one workload of the (scenario, summarizer, algorithm)
// matrix in wire-friendly string form: the scenario expression
// virat.ParseScenario accepts ("" = identity), the backend token
// summarize.Parse accepts ("" = vs), and the VS variant name
// vs.ParseAlgorithm accepts ("" = VS; it applies only to the vs
// backend). Every surface — CLIs, the vsd job API, the fabric wire
// spec — names workloads this way and resolves them through
// Cell.Workload, so a matrix campaign means the same thing everywhere.
type Cell struct {
	Scenario   string
	Summarizer string
	Algorithm  string
}

// String returns the canonical cell label used in reports and metrics,
// with defaults made explicit ("identity/vs/VS").
func (c Cell) String() string {
	sc := c.Scenario
	if sc == "" {
		sc = "identity"
	}
	sum := c.Summarizer
	if sum == "" {
		sum = "vs"
	}
	alg := c.Algorithm
	if alg == "" {
		alg = vs.AlgVS.String()
	}
	return sc + "/" + sum + "/" + alg
}

// Workload resolves the cell against a numbered paper input at the
// given preset: parse the three axes, generate the degraded sequence,
// and bind the summarizer to its frames. appSeed fixes the workload's
// stochastic choices exactly as the historical VS constructor did.
// The identity/vs cell reproduces that constructor's workload — same
// name, same golden-cache key, same bytes.
func (c Cell) Workload(input int, p virat.Preset, appSeed uint64) (Workload, error) {
	sc, err := virat.ParseScenario(c.Scenario)
	if err != nil {
		return Workload{}, err
	}
	alg, err := vs.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return Workload{}, err
	}
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = appSeed
	sum, err := summarize.Parse(c.Summarizer, cfg)
	if err != nil {
		return Workload{}, err
	}
	seq, err := virat.GenerateInput(input, p, sc)
	if err != nil {
		return Workload{}, err
	}
	return Summarize(sum, seq), nil
}

// Summarize binds a resolved summarizer backend to a generated
// sequence as a campaign workload. The golden-cache key is derived
// from the (summarizer config, sequence identity) tuple; the sequence
// name carries the scenario suffix, so every matrix cell caches its
// golden run under a distinct key while the identity/vs cell keys
// exactly as the pre-matrix constructors did.
func Summarize(sum summarize.Summarizer, seq *virat.Sequence) Workload {
	frames := seq.Frames()
	app, staged := sum.Bind(frames)
	key := fmt.Sprintf("%s|%s:%dx%dx%d", sum.Key(),
		seq.Name, len(frames), seq.FrameW, seq.FrameH)
	return Workload{Name: seq.Name, Key: key, App: app, Staged: staged}
}

// MatrixSpec declares a campaign cross-product: every cell runs the
// same fault model (class, region, trials, seed) on the same generated
// input, so per-cell outcome rates are directly comparable.
type MatrixSpec struct {
	// Cells are the matrix points to run, in order.
	Cells []Cell
	// Input is the paper input number (1 or 2).
	Input int
	// Preset scales the generated input.
	Preset virat.Preset
	// AppSeed fixes each workload's stochastic choices.
	AppSeed uint64
	// Spec is the fault-model and execution template every cell runs
	// with; its Workload field is ignored and replaced per cell.
	Spec Spec
}

// Expand resolves every cell into a runnable Spec. The returned Specs
// feed Runner.Run, Runner.RunSharded, Spec.Shards and the fabric
// exactly like hand-built ones — the matrix adds no execution path.
func (ms MatrixSpec) Expand() ([]Spec, error) {
	if len(ms.Cells) == 0 {
		return nil, fmt.Errorf("campaign: matrix has no cells")
	}
	specs := make([]Spec, 0, len(ms.Cells))
	for _, cell := range ms.Cells {
		w, err := cell.Workload(ms.Input, ms.Preset, ms.AppSeed)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell %s: %w", cell, err)
		}
		spec := ms.Spec
		spec.Workload = w
		specs = append(specs, spec)
	}
	return specs, nil
}

// CellResult pairs one matrix cell with its campaign result.
type CellResult struct {
	Cell   Cell
	Result *Result
}

// RunMatrix executes every cell of the matrix sequentially (each
// campaign parallelizes internally across shards × workers) and
// returns the per-cell results in cell order. shards < 2 runs each
// cell unsharded. On error the completed prefix of cells is returned
// alongside it.
func (r *Runner) RunMatrix(ctx context.Context, ms MatrixSpec, shards int) ([]CellResult, error) {
	specs, err := ms.Expand()
	if err != nil {
		return nil, err
	}
	out := make([]CellResult, 0, len(specs))
	for i, spec := range specs {
		res, err := r.RunSharded(ctx, spec, shards)
		if err != nil {
			return out, fmt.Errorf("campaign: cell %s: %w", ms.Cells[i], err)
		}
		out = append(out, CellResult{Cell: ms.Cells[i], Result: res})
	}
	return out, nil
}
