package campaign

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// TestVSConstructorKeyUnchanged pins the golden-cache key of the
// historical VS constructor: the registry refactor must not silently
// re-key cached goldens (vsd's cross-job cache hits depend on it).
func TestVSConstructorKeyUnchanged(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 4
	seq, err := virat.ParseInput(2, p)
	if err != nil {
		t.Fatal(err)
	}
	w := VS(vs.AlgKDS, seq, 0x5EED)
	want := fmt.Sprintf("vs:%s|seed=%d|%s:%dx%dx%d", vs.AlgKDS, 0x5EED,
		seq.Name, p.Frames, p.FrameW, p.FrameH)
	if w.Key != want {
		t.Errorf("VS workload key %q, want historical %q", w.Key, want)
	}
	if w.Name != "Input2" {
		t.Errorf("VS workload name %q, want Input2", w.Name)
	}
}

// TestCellIdentityMatchesVSConstructor proves the registry's default
// cell is the historical workload: same name, same key, and a golden
// capture with byte-identical output.
func TestCellIdentityMatchesVSConstructor(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 6
	seq, err := virat.ParseInput(2, p)
	if err != nil {
		t.Fatal(err)
	}
	legacy := VS(vs.AlgVS, seq, 0x5EED)
	cellW, err := Cell{}.Workload(2, p, 0x5EED)
	if err != nil {
		t.Fatal(err)
	}
	if cellW.Key != legacy.Key || cellW.Name != legacy.Name {
		t.Errorf("identity cell (%q,%q) differs from legacy constructor (%q,%q)",
			cellW.Name, cellW.Key, legacy.Name, legacy.Key)
	}
	ga, err := fault.CaptureGoldenStaged(legacy.Staged)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := fault.CaptureGoldenStaged(cellW.Staged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga.Output, gb.Output) {
		t.Error("identity cell golden output differs from legacy constructor")
	}
}

func TestCellString(t *testing.T) {
	if got := (Cell{}).String(); got != "identity/vs/VS" {
		t.Errorf("zero cell = %q, want identity/vs/VS", got)
	}
	c := Cell{Scenario: "fog+blocking", Summarizer: "storyboard", Algorithm: "VS_SM"}
	if got := c.String(); got != "fog+blocking/storyboard/VS_SM" {
		t.Errorf("cell label %q", got)
	}
}

func TestCellWorkloadErrors(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 4
	bad := []Cell{
		{Scenario: "rain"},
		{Summarizer: "collage"},
		{Algorithm: "VS_XX"},
	}
	for _, c := range bad {
		if _, err := c.Workload(2, p, 1); err == nil {
			t.Errorf("cell %+v resolved, want error", c)
		}
	}
	if _, err := (Cell{}).Workload(9, p, 1); err == nil {
		t.Error("input 9 resolved, want error")
	}
	if _, err := (MatrixSpec{}).Expand(); err == nil {
		t.Error("empty matrix expanded, want error")
	}
}

// TestMatrixRun runs a small scenario × summarizer matrix through the
// engine and checks each cell produces a complete campaign with
// distinct workload identities and well-formed outcome rates.
func TestMatrixRun(t *testing.T) {
	p := virat.TestScale()
	p.Frames = 6
	ms := MatrixSpec{
		Cells: []Cell{
			{},
			{Scenario: "fog"},
			{Scenario: "fog", Summarizer: "storyboard"},
			{Summarizer: "storyboard"},
		},
		Input:   2,
		Preset:  p,
		AppSeed: 0x5EED,
		Spec: Spec{
			Class:  fault.GPR,
			Region: fault.RAny,
			Trials: 20,
			Seed:   11,
		},
	}
	specs, err := ms.Expand()
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]Cell{}
	for i, spec := range specs {
		if prev, dup := keys[spec.Workload.Key]; dup {
			t.Fatalf("cells %s and %s share key %q", prev, ms.Cells[i], spec.Workload.Key)
		}
		keys[spec.Workload.Key] = ms.Cells[i]
		if spec.Workload.Staged == nil {
			t.Errorf("cell %s has no staged view", ms.Cells[i])
		}
	}
	var runner Runner
	runner.Goldens = NewGoldenCache(8)
	results, err := runner.RunMatrix(context.Background(), ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ms.Cells) {
		t.Fatalf("%d cell results, want %d", len(results), len(ms.Cells))
	}
	for _, cr := range results {
		if cr.Result.Fault.Completed != ms.Spec.Trials {
			t.Errorf("cell %s completed %d/%d trials", cr.Cell, cr.Result.Fault.Completed, ms.Spec.Trials)
		}
		var sum float64
		for _, r := range cr.Result.Fault.Rates() {
			if r < 0 || r > 1 {
				t.Errorf("cell %s rate %v outside [0,1]", cr.Cell, r)
			}
			sum += r
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("cell %s rates sum to %v", cr.Cell, sum)
		}
	}
}
