package campaign

import (
	"context"
	"sync"
	"time"

	"vsresil/internal/fault"
	"vsresil/internal/plan"
)

// Runner executes campaign Specs. The zero value is usable (no golden
// caching); long-lived owners (the experiment harnesses, the vsd
// service) configure a shared GoldenCache so campaign sweeps over the
// same workload skip repeated fault-free captures.
type Runner struct {
	// Goldens caches golden runs across campaigns, keyed by
	// Workload.Key. nil (or an empty Workload.Key) captures a fresh
	// golden per run.
	Goldens *GoldenCache
	// OnGoldenLookup, if set, observes every cache lookup (for
	// metrics). Not called for uncacheable workloads or Specs that
	// supply their own Golden.
	OnGoldenLookup func(hit bool)
}

// Result is one campaign run's outcome: the fault-layer aggregates
// plus engine-level accounting.
type Result struct {
	// Spec is the campaign as executed (including its shard window).
	Spec Spec
	// Fault holds the outcome counts, crash split, coverage
	// histograms, rate curve and trials.
	Fault *fault.Result
	// Executed counts the trials this run actually executed —
	// Fault.Completed minus the checkpoints resumed without
	// re-execution. Throughput metrics divide by this, not Completed.
	Executed int
	// Elapsed is the wall time of the run, golden capture included.
	Elapsed time.Duration
}

// golden acquires the fault-free golden run for spec: the Spec's own,
// the cache's, or a fresh capture. Staged workloads capture with
// checkpoints so every campaign sharing the golden can skip trial
// prefixes.
func (r *Runner) golden(spec *Spec) (*fault.GoldenRun, error) {
	capture := func() (*fault.GoldenRun, error) {
		if spec.Workload.Staged != nil {
			return fault.CaptureGoldenStaged(spec.Workload.Staged)
		}
		return fault.CaptureGolden(spec.Workload.App)
	}
	if spec.Golden != nil {
		return spec.Golden, nil
	}
	if r.Goldens != nil && spec.Workload.Key != "" {
		g, hit, err := r.Goldens.Get(spec.Workload.Key, capture)
		if r.OnGoldenLookup != nil {
			r.OnGoldenLookup(hit)
		}
		return g, err
	}
	return capture()
}

// Run executes one campaign (or one shard of one, when spec.Shard is
// set). If ctx is canceled mid-campaign, Run returns the partial
// Result together with a non-nil error wrapping ctx's error, exactly
// like fault.RunCampaign — callers wanting partial data on
// interruption must check the Result even when err != nil.
//
// Run routes plan generation through the planner seam: a plan.Static
// planner emits the spec's window, which is bit-identical to the
// stream the executor would pre-generate itself (the identity suite
// pins this). Spec.Adaptive is ignored here — adaptive campaigns go
// through RunAdaptive.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	golden, err := r.golden(&spec)
	if err != nil {
		return nil, err
	}
	cfg := spec.faultConfig(golden)
	if cfg.Trials > 0 {
		static, serr := plan.NewStatic(golden, plan.StaticConfig{
			Class:      spec.Class,
			Region:     spec.Region,
			Seed:       spec.Seed,
			Window:     spec.Window,
			Trials:     cfg.Trials,
			PlanTrials: cfg.PlanTrials,
			PlanOffset: cfg.PlanOffset,
		})
		if serr != nil {
			return nil, serr
		}
		round, _ := static.Next()
		cfg.Plans = round.Plans
		if cfg.PlanTrials == 0 {
			cfg.PlanTrials = cfg.PlanOffset + cfg.Trials
		}
	}
	resumed := len(cfg.Resume)
	fres, err := fault.RunCampaign(ctx, cfg, spec.Workload.App)
	if fres == nil {
		return nil, err
	}
	return &Result{
		Spec:     spec,
		Fault:    fres,
		Executed: fres.Completed - resumed,
		Elapsed:  time.Since(start),
	}, err
}

// RunSharded splits the campaign into k shards, executes them
// concurrently (each on its own trial worker pool) and merges the
// results. The merged Result is bit-identical to Run with the same
// unsharded Spec. Spec hooks (OnTrial, SDC.OnOutput) are serialized
// across shards. On cancellation the error is non-nil and the Result
// is a best-effort partial aggregate (matching Run's contract) —
// sufficient for reporting, but not bit-identical to anything;
// callers resume from the OnTrial checkpoint stream.
func (r *Runner) RunSharded(ctx context.Context, spec Spec, k int) (*Result, error) {
	shards := spec.Shards(k)
	if len(shards) == 1 {
		return r.Run(ctx, shards[0])
	}
	// Serialize the caller's hooks: each shard's fault campaign
	// serializes its own invocations, but shards run concurrently.
	var hookMu sync.Mutex
	if onTrial := spec.OnTrial; onTrial != nil {
		wrapped := func(rec fault.TrialRecord) {
			hookMu.Lock()
			defer hookMu.Unlock()
			onTrial(rec)
		}
		for i := range shards {
			shards[i].OnTrial = wrapped
		}
	}
	if onOutput := spec.SDC.OnOutput; onOutput != nil {
		wrapped := func(rec fault.TrialRecord, output []byte) {
			hookMu.Lock()
			defer hookMu.Unlock()
			onOutput(rec, output)
		}
		for i := range shards {
			shards[i].SDC.OnOutput = wrapped
		}
	}
	// One golden capture up front for all shards. The cache would
	// dedup concurrent captures anyway; this also covers uncacheable
	// workloads.
	start := time.Now()
	golden, err := r.golden(&spec)
	if err != nil {
		return nil, err
	}
	for i := range shards {
		shards[i].Golden = golden
	}

	results := make([]*Result, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(ctx, shards[i])
		}(i)
	}
	wg.Wait()
	for _, serr := range errs {
		if serr != nil {
			partial := partialMerge(spec, results)
			if partial != nil {
				partial.Elapsed = time.Since(start)
			}
			return partial, serr
		}
	}
	merged, err := Merge(results...)
	if err != nil {
		return nil, err
	}
	merged.Elapsed = time.Since(start)
	return merged, nil
}
