package campaign

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"vsresil/internal/fault"
)

// requireStitchedTrials folds per-window results back into plan order
// and compares the execution observables trial by trial against the
// one-shot baseline.
func requireStitchedTrials(t *testing.T, label string, total int, wins []*Result, offsets []int, base []fault.Trial) {
	t.Helper()
	trials := make([]fault.Trial, total)
	seen := make([]bool, total)
	for w, res := range wins {
		for i := range res.Fault.Trials {
			gi := offsets[w] + i
			if seen[gi] {
				t.Fatalf("%s: plan index %d covered twice", label, gi)
			}
			trials[gi] = res.Fault.Trials[i]
			seen[gi] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("%s: plan index %d not covered", label, i)
		}
	}
	if len(trials) != len(base) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(trials), len(base))
	}
	for i := range trials {
		a, b := trials[i], base[i]
		if a.Outcome != b.Outcome || a.Crash != b.Crash || a.Landed != b.Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, a.Outcome, a.Crash, a.Landed, b.Outcome, b.Crash, b.Landed)
		}
	}
}

// TestSessionPathEquivalence pins the tentpole property at the
// campaign layer: a persistent session serving a campaign's plan space
// as any decomposition of windows, at any worker count, reproduces the
// classic one-shot run bit for bit.
func TestSessionPathEquivalence(t *testing.T) {
	var runner Runner
	spec := toySpec()
	spec.SDC = SDCPolicy{} // retention caps are per-window by design; compare raw outcomes
	base, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}

	for _, workers := range []int{1, 4} {
		for _, nwin := range []int{1, 3, 8} {
			s := spec
			s.Workers = workers
			sess, err := runner.OpenSession(s)
			if err != nil {
				t.Fatalf("workers=%d windows=%d: OpenSession: %v", workers, nwin, err)
			}
			golden := sess.Golden()
			plans := fault.GeneratePlans(s.Seed, s.Class, s.Region,
				fault.WindowFor(s.Class, s.Window), s.Trials, golden.Taps(s.Class, s.Region))
			var wins []*Result
			var offsets []int
			for j := 0; j < nwin; j++ {
				lo, hi := j*len(plans)/nwin, (j+1)*len(plans)/nwin
				res, err := sess.RunPlans(context.Background(), s, plans[lo:hi], lo)
				if err != nil {
					sess.Close()
					t.Fatalf("workers=%d windows=%d: window [%d,%d): %v", workers, nwin, lo, hi, err)
				}
				wins = append(wins, res)
				offsets = append(offsets, lo)
			}
			st := sess.Stats()
			sess.Close()
			if st.RoundsServed != uint64(nwin) {
				t.Errorf("workers=%d windows=%d: RoundsServed = %d", workers, nwin, st.RoundsServed)
			}
			requireStitchedTrials(t, "session path", s.Trials, wins, offsets, base.Fault.Trials)
		}
	}
}

// TestSessionResumeIndexManyRounds drives the sorted resume index
// through the worst case the old per-window rescan was quadratic in:
// a large journal resumed across many small rounds. The journal is
// replayed in reverse order to prove the index, not the caller,
// establishes plan order.
func TestSessionResumeIndexManyRounds(t *testing.T) {
	var runner Runner
	small := func() Spec {
		s := adaptiveSpec()
		s.Adaptive.RoundSize = 4
		s.Adaptive.MinPerStratum = 4
		return s
	}

	var mu sync.Mutex
	var journal []fault.TrialRecord
	spec := small()
	spec.OnTrial = func(rec fault.TrialRecord) {
		mu.Lock()
		journal = append(journal, rec)
		mu.Unlock()
	}
	base, err := runner.RunAdaptive(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if base.Rounds < 6 {
		t.Fatalf("round size 4 produced only %d rounds, want many", base.Rounds)
	}
	if len(journal) != base.Trials {
		t.Fatalf("journal has %d records, campaign observed %d trials", len(journal), base.Trials)
	}

	cut := 2 * len(journal) / 3
	rev := make([]fault.TrialRecord, cut)
	for i := 0; i < cut; i++ {
		rev[i] = journal[cut-1-i]
	}
	resumed := small()
	resumed.Resume = rev
	rres, err := runner.RunAdaptive(context.Background(), resumed, 1)
	if err != nil {
		t.Fatalf("resumed RunAdaptive: %v", err)
	}
	if !reflect.DeepEqual(rres.Records, base.Records) {
		t.Error("resumed records differ from the uninterrupted run")
	}
	if want := base.Trials - cut; rres.Executed != want {
		t.Errorf("resumed run executed %d trials, want %d", rres.Executed, want)
	}
	if rres.Session.RoundsServed == 0 {
		t.Error("resumed run reported no session rounds")
	}
}

// TestAdaptiveCancellationMidRound cancels an adaptive campaign in the
// middle of a round: the partial AdaptiveResult must carry exactly the
// completed rounds with a non-nil error, and resuming from the
// partial run's journal must replay onto the identical trial sequence.
func TestAdaptiveCancellationMidRound(t *testing.T) {
	var runner Runner
	mk := func() Spec {
		s := adaptiveSpec()
		s.Adaptive.RoundSize = 8
		return s
	}

	var roundSizes []int
	spec := mk()
	spec.Adaptive.OnRound = func(st RoundStatus) { roundSizes = append(roundSizes, st.RoundTrials) }
	base, err := runner.RunAdaptive(context.Background(), spec, 2)
	if err != nil {
		t.Fatalf("baseline RunAdaptive: %v", err)
	}
	if len(roundSizes) < 2 {
		t.Fatalf("baseline ran %d rounds, need at least 2", len(roundSizes))
	}
	cancelAt := roundSizes[0] + roundSizes[1]/2
	if cancelAt <= roundSizes[0] {
		cancelAt = roundSizes[0] + 1
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var journal []fault.TrialRecord
	interrupted := mk()
	interrupted.OnTrial = func(rec fault.TrialRecord) {
		mu.Lock()
		journal = append(journal, rec)
		n := len(journal)
		mu.Unlock()
		if n == cancelAt {
			cancel()
		}
	}
	pres, err := runner.RunAdaptive(ctx, interrupted, 2)
	if err == nil {
		t.Fatal("canceled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation error %v does not wrap context.Canceled", err)
	}
	if pres == nil {
		t.Fatal("canceled campaign returned no partial result")
	}
	if len(pres.Records) == 0 || len(pres.Records) >= len(base.Records) {
		t.Fatalf("partial run carries %d records, want a non-empty strict subset of %d",
			len(pres.Records), len(base.Records))
	}
	if !reflect.DeepEqual(pres.Records, base.Records[:len(pres.Records)]) {
		t.Error("partial records are not a prefix of the uninterrupted run's")
	}

	mu.Lock()
	resume := append([]fault.TrialRecord(nil), journal...)
	mu.Unlock()
	if len(resume) == 0 || len(resume) >= base.Trials {
		t.Fatalf("interruption journaled %d trials, want partial coverage of %d", len(resume), base.Trials)
	}
	resumed := mk()
	resumed.Resume = resume
	rres, err := runner.RunAdaptive(context.Background(), resumed, 2)
	if err != nil {
		t.Fatalf("resumed RunAdaptive: %v", err)
	}
	if !reflect.DeepEqual(rres.Records, base.Records) {
		t.Error("resumed records differ from the uninterrupted run")
	}
	if want := base.Trials - len(resume); rres.Executed != want {
		t.Errorf("resumed run executed %d trials, want %d", rres.Executed, want)
	}
}

// TestAdaptiveSessionStats checks the campaign-level reuse counters on
// a staged workload: the round loop must serve every round from one
// session, hitting the bucket-preparation cache on rounds after the
// first.
func TestAdaptiveSessionStats(t *testing.T) {
	var runner Runner
	st := newStagedToy()
	spec := stagedToySpec(st)
	spec.SDC = SDCPolicy{}
	spec.Adaptive = &AdaptiveSpec{Precision: 0.05, Confidence: 0.95}
	res, err := runner.RunAdaptive(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	s := res.Session
	if s.RoundsServed < 2 {
		t.Fatalf("RoundsServed = %d, want the whole round loop", s.RoundsServed)
	}
	if uint64(res.Rounds) > s.RoundsServed {
		t.Errorf("planner ran %d rounds but the session served only %d", res.Rounds, s.RoundsServed)
	}
	if s.BucketPrepMisses == 0 {
		t.Error("BucketPrepMisses = 0: no bucket was ever prepared")
	}
	if s.BucketPrepHits == 0 {
		t.Error("BucketPrepHits = 0: later rounds did not reuse the prep cache")
	}
	if st.resumes.Load() == 0 {
		t.Error("no trial resumed from a checkpoint — staged path never engaged")
	}
}

// TestAdaptiveRoundLoopAllocs is the allocation regression guard for
// the adaptive round loop: per executed trial, the whole campaign —
// planner, session scheduling and trial execution included — must stay
// under a fixed allocation ceiling. Catches accidental per-round
// executor rebuilds, which show up as hundreds of extra allocations
// per trial.
func TestAdaptiveRoundLoopAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	var runner Runner
	spec := adaptiveSpec()
	spec.Workers = 1
	// Pre-resolve the golden so capture is not billed to the loop.
	sess, err := runner.OpenSession(spec)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	spec.Golden = sess.Golden()
	sess.Close()

	executed := 0
	allocs := testing.AllocsPerRun(3, func() {
		res, err := runner.RunAdaptive(context.Background(), spec, 1)
		if err != nil {
			panic(err)
		}
		executed = res.Executed
	})
	if executed == 0 {
		t.Fatal("adaptive campaign executed no trials")
	}
	perTrial := allocs / float64(executed)
	// Measured ~9 objects per executed trial (toyApp's own buffers
	// included). The ceiling leaves slack for toolchain drift without
	// letting a per-round executor rebuild — which shows up as tens of
	// extra objects per trial — through.
	const ceiling = 20.0
	if perTrial > ceiling {
		t.Errorf("adaptive round loop allocates %.1f objects per trial, over the %.0f ceiling", perTrial, ceiling)
	}
}
