// Package campaign is the one engine every fault-injection campaign in
// the repo runs through. A declarative Spec names the workload, the
// fault model knobs (class, region, trials, window, seed) and the
// execution knobs (workers, SDC-output policy, checkpoint streaming);
// a Runner owns the campaign lifecycle around it — golden capture and
// caching, the trial worker pool, checkpoint/resume streaming and
// context cancellation. The study API (internal/core), every figure
// harness (internal/experiments), the vsd service and cmd/afirun all
// sit on this package instead of hand-building fault.Config literals.
//
// The capability the shared engine unlocks is deterministic shard
// decomposition. Campaign plans are pre-generated from Spec.Seed, so
// Spec.Shards(k) splits one campaign into k disjoint sub-campaigns
// over trial-index windows, and Merge recombines their Results —
// outcome counts, crash splits, coverage histograms and the rate
// curve — bit-identically to the unsharded run. Shards execute across
// local worker pools today (Runner.RunSharded) and are the seam for
// fanning a single vsd campaign job out across machines next.
package campaign

import (
	"fmt"

	"vsresil/internal/fault"
)

// Workload is the application a campaign injects into.
type Workload struct {
	// Name labels the workload in results and reports (e.g. "Input1",
	// "WP", "uploaded[12]").
	Name string
	// Key is the golden-cache identity: it must capture everything
	// that determines the fault-free run (application, configuration,
	// input). "" marks the workload uncacheable — every campaign
	// captures a fresh golden run.
	Key string
	// App is the instrumented application under test.
	App fault.App
	// Staged, when non-nil, is the stage-resumable view of the same
	// app. Campaigns then capture checkpointed goldens and skip the
	// fault-free prefix of every trial; a nil Staged runs each trial in
	// full.
	Staged fault.StagedApp
}

// NewWorkload wraps an arbitrary fault.App as a campaign workload.
// Pass key "" unless the app+input pair has a stable identity worth
// caching the golden run under. Workloads built this way run every
// trial in full; use NewStagedWorkload when the app has a resumable
// stage decomposition.
func NewWorkload(name, key string, app fault.App) Workload {
	return Workload{Name: name, Key: key, App: app}
}

// NewStagedWorkload wraps an app that also has a stage-resumable view,
// letting campaigns skip the fault-free prefix of each trial. app and
// staged must be two views of the same computation: RunFull under a
// nil snapshot hook must produce the same taps and bytes as app.
func NewStagedWorkload(name, key string, app fault.App, staged fault.StagedApp) Workload {
	return Workload{Name: name, Key: key, App: app, Staged: staged}
}

// SDCPolicy says what happens to the corrupted output bytes of SDC
// trials.
type SDCPolicy struct {
	// Keep retains SDC outputs in the result for quality analysis
	// (Fig 12, the ED study).
	Keep bool
	// Max caps how many outputs Keep retains (<= 0 = unlimited). The
	// Max lowest-index SDC trials keep their bytes, deterministically
	// regardless of worker count or shard decomposition.
	Max int
	// OnOutput, if set, streams each SDC output to the callback
	// instead of retaining it, bounding memory regardless of SDC
	// count. Keep and Max are ignored when OnOutput is set.
	OnOutput func(rec fault.TrialRecord, output []byte)
}

// Shard selects the trial-index window a Spec executes: shard Index of
// Count, covering [Index*Trials/Count, (Index+1)*Trials/Count). The
// zero value (Count 0) runs the whole campaign.
type Shard struct {
	Index, Count int
}

// window returns the trial-index range the shard covers out of a
// trials-sized campaign.
func (s Shard) window(trials int) (lo, hi int) {
	if s.Count <= 1 {
		return 0, trials
	}
	return s.Index * trials / s.Count, (s.Index + 1) * trials / s.Count
}

// Spec declares one fault-injection campaign. Trials always counts the
// whole campaign; Shard (when set) selects the sub-window this Spec
// executes.
type Spec struct {
	// Workload is the application under test.
	Workload Workload
	// Class selects GPR or FPR injections.
	Class fault.Class
	// Region restricts injections to one function (RAny = whole app).
	Region fault.Region
	// Trials is the number of error injections in the full campaign.
	Trials int
	// Window overrides the register-liveness window (0 = class
	// default).
	Window uint64
	// Seed makes the campaign reproducible: plans are pre-generated
	// from it, which is what makes sharding and resume deterministic.
	Seed uint64
	// Workers bounds trial parallelism (0 = GOMAXPROCS). When sharded,
	// the bound applies per shard.
	Workers int
	// StepFactor sizes the hang budget as a multiple of golden steps
	// (0 = fault.DefaultStepFactor).
	StepFactor float64
	// CheckpointEvery controls the rate-curve snapshot interval
	// (0 = Trials/20).
	CheckpointEvery int
	// SDC is the SDC-output retention policy.
	SDC SDCPolicy
	// Shard selects the trial window to execute (zero value = all).
	Shard Shard
	// Golden, when non-nil, supplies a precomputed golden run,
	// bypassing both capture and the Runner's cache.
	Golden *fault.GoldenRun
	// OnTrial, if set, receives every completed trial's checkpoint
	// record. Invocations are serialized, including across the
	// concurrent shards of RunSharded. Record indices are plan
	// indices, valid across any shard decomposition of the same Spec.
	OnTrial func(rec fault.TrialRecord)
	// Resume holds checkpoint records from an interrupted run of the
	// same Spec. Records outside this Spec's shard window are ignored,
	// so a journal replayed from a whole campaign can be handed to
	// every shard unchanged.
	Resume []fault.TrialRecord
	// Adaptive, when non-nil, switches the campaign from the fixed
	// Trials budget to confidence-driven allocation (Runner.RunAdaptive):
	// rounds of trials flow to the strata with the widest outcome-rate
	// intervals until every rate is within Adaptive.Precision at
	// Adaptive.Confidence. Trials is ignored; the planner's budget cap
	// is Adaptive.MaxTrials. Run/RunSharded ignore this field.
	Adaptive *AdaptiveSpec
}

// Shards splits the campaign into k disjoint sub-campaigns whose
// merged Results are bit-identical to the unsharded run. k is clamped
// to [1, Trials]. The returned Specs share the receiver's hooks
// (OnTrial, SDC.OnOutput); RunSharded serializes them — callers
// driving shards themselves must make the hooks safe for concurrent
// use or run shards sequentially.
func (s Spec) Shards(k int) []Spec {
	if k < 1 {
		k = 1
	}
	if s.Trials > 0 && k > s.Trials {
		k = s.Trials
	}
	out := make([]Spec, k)
	for i := range out {
		out[i] = s
		out[i].Shard = Shard{Index: i, Count: k}
	}
	return out
}

// validate checks the Spec before any work is spent on it.
func (s *Spec) validate() error {
	if s.Workload.App == nil {
		return fmt.Errorf("campaign: spec has no workload app")
	}
	if s.Trials <= 0 {
		return fmt.Errorf("campaign: non-positive trial count %d", s.Trials)
	}
	if s.Shard.Count < 0 || s.Shard.Count > s.Trials {
		return fmt.Errorf("campaign: shard count %d outside [0,%d]", s.Shard.Count, s.Trials)
	}
	if s.Shard.Count > 0 && (s.Shard.Index < 0 || s.Shard.Index >= s.Shard.Count) {
		return fmt.Errorf("campaign: shard index %d outside [0,%d)", s.Shard.Index, s.Shard.Count)
	}
	return nil
}

// faultConfig translates the Spec (and its shard window) into the
// fault-layer campaign config.
func (s *Spec) faultConfig(golden *fault.GoldenRun) fault.Config {
	lo, hi := s.Shard.window(s.Trials)
	cfg := fault.Config{
		Trials:          hi - lo,
		Class:           s.Class,
		Region:          s.Region,
		Window:          s.Window,
		Seed:            s.Seed,
		Workers:         s.Workers,
		StepFactor:      s.StepFactor,
		CheckpointEvery: s.CheckpointEvery,
		KeepSDCOutputs:  s.SDC.Keep,
		MaxSDCOutputs:   s.SDC.Max,
		OnSDCOutput:     s.SDC.OnOutput,
		OnTrial:         s.OnTrial,
		Golden:          golden,
		Staged:          s.Workload.Staged,
	}
	if s.Shard.Count > 1 {
		cfg.PlanTrials = s.Trials
		cfg.PlanOffset = lo
	}
	for _, rec := range s.Resume {
		if rec.Index >= lo && rec.Index < hi {
			cfg.Resume = append(cfg.Resume, rec)
		}
	}
	return cfg
}
