package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vsresil/internal/fault"
	"vsresil/internal/plan"
)

// This file is the engine side of the planner seam (internal/plan):
// planners decide which trials run, and the Runner executes each
// emitted round through the same trial executor — golden cache, prefix
// skip, bucket batching and checkpoint streaming included — that
// fixed-budget campaigns use.

// AdaptiveSpec configures confidence-driven trial allocation.
type AdaptiveSpec struct {
	// Precision is the target Wilson half-width for every per-stratum
	// outcome rate (0 = 0.05).
	Precision float64
	// Confidence is the interval confidence level (0 = 0.95).
	Confidence float64
	// RoundSize is the trial budget per post-bootstrap round
	// (0 = 8 per stratum).
	RoundSize int
	// MinPerStratum is the bootstrap allocation per stratum (0 = 8).
	MinPerStratum int
	// MaxTrials caps the total allocation (0 = the fixed-budget
	// equivalent — the adaptive campaign never spends more than the
	// non-adaptive design would).
	MaxTrials int
	// OnRound, if set, observes every completed round (for metrics and
	// progress display). Called after the round's outcomes are folded
	// into the planner, in round order.
	OnRound func(RoundStatus)
}

// RoundStatus is the per-round progress snapshot OnRound receives.
type RoundStatus struct {
	// Round is the 0-based index of the round that just completed.
	Round int
	// RoundTrials is the number of trials the round allocated.
	RoundTrials int
	// Trials is the cumulative allocation so far.
	Trials int
	// MaxHalfWidth is the widest per-stratum half-width after the
	// round.
	MaxHalfWidth float64
	// StrataDone / Strata count converged and total strata.
	StrataDone, Strata int
}

// AdaptiveResult aggregates a confidence-driven campaign.
type AdaptiveResult struct {
	// Spec is the campaign as executed.
	Spec Spec
	// Strata are the final per-stratum estimates.
	Strata []plan.StratumStatus
	// Stratified is the population-weighted whole-program estimate,
	// comparable to a fixed stratified campaign's.
	Stratified *fault.StratifiedResult
	// Counts are the raw (unweighted) outcome totals.
	Counts [fault.NumOutcomes]int
	// Rounds is the number of rounds the planner emitted.
	Rounds int
	// Trials is the total trials observed (executed + resumed).
	Trials int
	// Executed counts trials actually executed this run (Trials minus
	// journal-resumed ones).
	Executed int
	// Converged reports whether every stratum reached the target
	// half-width (false = the MaxTrials budget ran out first).
	Converged bool
	// FixedBudget is the fixed-budget equivalent trial count for the
	// same precision/confidence/strata — the savings baseline.
	FixedBudget int
	// Records are the checkpoint records of every observed trial, in
	// plan-index order. Identical across worker counts, shard counts
	// and resume for equal seeds.
	Records []fault.TrialRecord
	// Session reports what the campaign's executor session amortized
	// across the round loop (bucket-preparation cache hits, pool
	// reuse). Observational only.
	Session fault.SessionStats
	// Elapsed is the wall time, golden capture included.
	Elapsed time.Duration
}

// GoldenFor resolves the workload's golden run through the Runner's
// cache, exactly as a campaign over it would. The fabric coordinator
// uses this to size planner strata without running a campaign.
func (r *Runner) GoldenFor(w Workload) (*fault.GoldenRun, error) {
	spec := Spec{Workload: w}
	return r.golden(&spec)
}

// planConfig translates spec + an explicit plan window into the
// fault-layer config. lo is the plan index of plans[0]; planTrials
// must cover lo+len(plans) (it names the plan space so TrialRecord
// indices stay unambiguous). resume holds the records falling inside
// the window — the Session slices them from its sorted index, so the
// round loop never rescans the full journal per window.
func (s *Spec) planConfig(golden *fault.GoldenRun, plans []fault.Plan, lo, planTrials int, resume []fault.TrialRecord) fault.Config {
	cfg := fault.Config{
		Trials:          len(plans),
		Class:           s.Class,
		Region:          s.Region,
		Window:          s.Window,
		Seed:            s.Seed,
		Workers:         s.Workers,
		StepFactor:      s.StepFactor,
		CheckpointEvery: s.CheckpointEvery,
		KeepSDCOutputs:  s.SDC.Keep,
		MaxSDCOutputs:   s.SDC.Max,
		OnSDCOutput:     s.SDC.OnOutput,
		OnTrial:         s.OnTrial,
		Golden:          golden,
		Staged:          s.Workload.Staged,
		Plans:           plans,
		PlanOffset:      lo,
		PlanTrials:      planTrials,
		Resume:          resume,
	}
	return cfg
}

// RunPlans executes an explicit window of planner-emitted plans
// through the trial executor. lo is the plan index of plans[0];
// records stream through spec.OnTrial with plan indices, and
// spec.Resume records inside the window are honored without
// re-execution. spec.Trials and spec.Shard are ignored.
//
// RunPlans is the one-shot form: it opens a Session for the single
// window and closes it. Round loops hold a Session open instead.
func (r *Runner) RunPlans(ctx context.Context, spec Spec, plans []fault.Plan, lo int) (*Result, error) {
	if spec.Workload.App == nil {
		return nil, fmt.Errorf("campaign: spec has no workload app")
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("campaign: empty plan window")
	}
	sess, err := r.OpenSession(spec)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.RunPlans(ctx, spec, plans, lo)
}

// RunStratified executes the fixed Relyzer-style stratified campaign
// through the planner seam: plan.Stratified emits the classic
// per-stratum draw and the round runs on the ordinary trial executor.
func (r *Runner) RunStratified(ctx context.Context, w Workload, cfg fault.StratifiedConfig) (*fault.StratifiedResult, error) {
	spec := Spec{
		Workload:   w,
		Class:      cfg.Class,
		Region:     fault.RAny,
		Window:     cfg.Window,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		StepFactor: cfg.StepFactor,
	}
	sess, err := r.OpenSession(spec)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	spec.Golden = sess.Golden()
	planner, err := plan.NewStratified(spec.Golden, cfg)
	if err != nil {
		return nil, err
	}
	round, ok := planner.Next()
	if !ok {
		return nil, fmt.Errorf("campaign: stratified planner emitted no round")
	}
	res, err := sess.RunPlans(ctx, spec, round.Plans, round.Lo)
	if err != nil {
		return nil, err
	}
	outcomes := make([]fault.Outcome, len(res.Fault.Trials))
	for i := range res.Fault.Trials {
		outcomes[i] = res.Fault.Trials[i].Outcome
	}
	planner.Observe(round, outcomes)
	return planner.Result(), nil
}

// RunAdaptive executes a confidence-driven campaign: plan.Adaptive
// allocates rounds to the widest-interval strata and the Runner
// executes each round as k concurrent sub-shards (k <= 1 runs rounds
// unsharded). The observed trial set is bit-identical for every k and
// every worker count at equal seeds, because allocation depends only
// on outcomes and outcomes only on plans; spec.Resume records replay
// the same way, so an interrupted adaptive campaign resumes onto the
// identical trial sequence.
//
// On cancellation RunAdaptive returns the partial result with the
// rounds completed so far together with a non-nil error.
func (r *Runner) RunAdaptive(ctx context.Context, spec Spec, k int) (*AdaptiveResult, error) {
	if spec.Adaptive == nil {
		return nil, fmt.Errorf("campaign: RunAdaptive needs spec.Adaptive")
	}
	if spec.Workload.App == nil {
		return nil, fmt.Errorf("campaign: spec has no workload app")
	}
	a := *spec.Adaptive
	start := time.Now()
	// One executor session serves every round: worker pool, bucket
	// preparations and the resume index outlive the round loop.
	sess, err := r.OpenSession(spec)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	golden := sess.Golden()
	spec.Golden = golden
	planner, err := plan.NewAdaptive(golden, plan.AdaptiveConfig{
		Class:         spec.Class,
		Region:        spec.Region,
		Seed:          spec.Seed,
		Window:        spec.Window,
		Precision:     a.Precision,
		Confidence:    a.Confidence,
		RoundSize:     a.RoundSize,
		MinPerStratum: a.MinPerStratum,
		MaxTrials:     a.MaxTrials,
	})
	if err != nil {
		return nil, err
	}
	resume := make(map[int]fault.TrialRecord, len(spec.Resume))
	for _, rec := range spec.Resume {
		resume[rec.Index] = rec
	}

	res := &AdaptiveResult{Spec: spec}
	finish := func(err error) (*AdaptiveResult, error) {
		res.Strata = planner.Strata()
		res.Stratified = planner.Result()
		for _, st := range res.Stratified.Strata {
			for o, c := range st.Counts {
				res.Counts[o] += c
			}
		}
		res.Rounds = planner.Rounds()
		res.Trials = planner.Total()
		res.Converged = planner.Converged()
		cfg := planner.Config()
		res.FixedBudget = plan.FixedBudget(cfg.Precision, cfg.Confidence, len(res.Strata))
		res.Session = sess.Stats()
		res.Elapsed = time.Since(start)
		return res, err
	}

	for {
		round, ok := planner.Next()
		if !ok {
			return finish(nil)
		}
		outcomes, recs, executed, err := runRound(ctx, sess, spec, round, k, resume)
		if err != nil {
			return finish(err)
		}
		planner.Observe(round, outcomes)
		res.Records = append(res.Records, recs...)
		res.Executed += executed
		if a.OnRound != nil {
			strata := planner.Strata()
			st := RoundStatus{
				Round:       round.Index,
				RoundTrials: len(round.Plans),
				Trials:      planner.Total(),
				Strata:      len(strata),
			}
			for _, s := range strata {
				if s.Done {
					st.StrataDone++
				}
				if s.HalfWidth > st.MaxHalfWidth {
					st.MaxHalfWidth = s.HalfWidth
				}
			}
			a.OnRound(st)
		}
	}
}

// runRound executes one planner round as k concurrent sub-shards
// through the campaign's session and returns the outcomes and
// checkpoint records in plan-index order. Rounds fully covered by
// resume records are observed without any execution (and without
// re-firing spec hooks).
func runRound(ctx context.Context, sess *Session, spec Spec, round plan.Round, k int, resume map[int]fault.TrialRecord) ([]fault.Outcome, []fault.TrialRecord, int, error) {
	n := len(round.Plans)
	covered := 0
	for i := 0; i < n; i++ {
		if _, ok := resume[round.Lo+i]; ok {
			covered++
		}
	}
	if covered == n {
		outcomes := make([]fault.Outcome, n)
		recs := make([]fault.TrialRecord, n)
		for i := 0; i < n; i++ {
			rec := resume[round.Lo+i]
			outcomes[i] = rec.Outcome
			recs[i] = rec
		}
		return outcomes, recs, 0, nil
	}

	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Serialize spec hooks across the round's concurrent sub-shards,
	// mirroring RunSharded.
	var hookMu sync.Mutex
	sub := spec
	if onTrial := spec.OnTrial; onTrial != nil {
		sub.OnTrial = func(rec fault.TrialRecord) {
			hookMu.Lock()
			defer hookMu.Unlock()
			onTrial(rec)
		}
	}
	if onOutput := spec.SDC.OnOutput; onOutput != nil {
		sub.SDC.OnOutput = func(rec fault.TrialRecord, output []byte) {
			hookMu.Lock()
			defer hookMu.Unlock()
			onOutput(rec, output)
		}
	}

	results := make([]*Result, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		lo, hi := j*n/k, (j+1)*n/k
		wg.Add(1)
		go func(j, lo, hi int) {
			defer wg.Done()
			results[j], errs[j] = sess.RunPlans(ctx, sub, round.Plans[lo:hi], round.Lo+lo)
		}(j, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	outcomes := make([]fault.Outcome, n)
	recs := make([]fault.TrialRecord, n)
	executed := 0
	for j := 0; j < k; j++ {
		lo := j * n / k
		executed += results[j].Executed
		for i := range results[j].Fault.Trials {
			tr := &results[j].Fault.Trials[i]
			outcomes[lo+i] = tr.Outcome
			recs[lo+i] = tr.Record(round.Lo + lo + i)
		}
	}
	return outcomes, recs, executed, nil
}
