package campaign

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"vsresil/internal/fault"
)

// ---- stratified campaigns through the planner seam ----
// (These drivers moved here from internal/fault when the private
// stratified loop was re-routed through plan.Stratified.)

func TestStratifiedCampaignStructure(t *testing.T) {
	var runner Runner
	res, err := runner.RunStratified(context.Background(), NewWorkload("toy", "", toyApp), fault.StratifiedConfig{
		TrialsPerStratum: 10,
		Class:            fault.GPR,
		Seed:             1,
		Workers:          2,
	})
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	if len(res.Strata) == 0 {
		t.Fatal("no strata")
	}
	if res.Trials != len(res.Strata)*10 {
		t.Errorf("trials = %d, want %d", res.Trials, len(res.Strata)*10)
	}
	var popSum uint64
	for i := range res.Strata {
		s := &res.Strata[i]
		popSum += s.Population
		total := 0
		for _, c := range s.Counts {
			total += c
		}
		if total != 10 {
			t.Errorf("stratum %s/%s sampled %d, want 10", s.Region, s.Bits, total)
		}
	}
	if popSum != res.TotalPopulation {
		t.Error("population sum mismatch")
	}
	// Weighted rates are a convex combination: they sum to 1.
	var sum float64
	for _, r := range res.WeightedRates() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weighted rates sum to %v", sum)
	}
}

func TestStratifiedMatchesUniformEstimate(t *testing.T) {
	// The Relyzer-style weighted estimate should agree with a plain
	// uniform campaign on the same app within statistical noise.
	uniform, err := fault.RunCampaign(context.Background(), fault.Config{
		Trials: 600, Class: fault.GPR, Region: fault.RAny, Seed: 5, Workers: 2,
	}, toyApp)
	if err != nil {
		t.Fatalf("uniform campaign: %v", err)
	}
	var runner Runner
	strat, err := runner.RunStratified(context.Background(), NewWorkload("toy", "", toyApp), fault.StratifiedConfig{
		TrialsPerStratum: 60, Class: fault.GPR, Seed: 5, Workers: 2,
	})
	if err != nil {
		t.Fatalf("stratified campaign: %v", err)
	}
	u := uniform.Rates()
	s := strat.WeightedRates()
	for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
		if d := math.Abs(u[o] - s[o]); d > 0.12 {
			t.Errorf("%s: uniform %.3f vs stratified %.3f (diff %.3f)", o, u[o], s[o], d)
		}
	}
}

func TestStratifiedDeterministicInSeed(t *testing.T) {
	var runner Runner
	cfg := fault.StratifiedConfig{TrialsPerStratum: 8, Class: fault.GPR, Seed: 17, Workers: 4}
	one, err := runner.RunStratified(context.Background(), NewWorkload("toy", "", toyApp), cfg)
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	cfg.Workers = 1
	two, err := runner.RunStratified(context.Background(), NewWorkload("toy", "", toyApp), cfg)
	if err != nil {
		t.Fatalf("RunStratified: %v", err)
	}
	if !reflect.DeepEqual(one, two) {
		t.Error("stratified results differ across worker counts")
	}
}

func TestStratifiedNoTaps(t *testing.T) {
	var runner Runner
	app := func(m *fault.Machine) ([]byte, error) { return []byte{1}, nil }
	if _, err := runner.RunStratified(context.Background(), NewWorkload("flat", "", app), fault.StratifiedConfig{
		TrialsPerStratum: 5, Class: fault.GPR,
	}); !errors.Is(err, fault.ErrNoTaps) {
		t.Errorf("expected ErrNoTaps, got %v", err)
	}
}

func TestStratifiedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runner Runner
	if _, err := runner.RunStratified(ctx, NewWorkload("toy", "", toyApp), fault.StratifiedConfig{
		TrialsPerStratum: 1000, Class: fault.GPR, Seed: 1,
	}); err == nil {
		t.Error("expected cancellation error")
	}
}

func TestStratifiedGoldenFailure(t *testing.T) {
	var runner Runner
	app := func(m *fault.Machine) ([]byte, error) { return nil, context.Canceled }
	if _, err := runner.RunStratified(context.Background(), NewWorkload("bad", "", app), fault.StratifiedConfig{
		TrialsPerStratum: 1, Class: fault.GPR,
	}); err == nil {
		t.Error("expected golden failure error")
	}
}

// ---- adaptive campaigns ----

func adaptiveSpec() Spec {
	return Spec{
		Workload: NewWorkload("toy", "", toyApp),
		Class:    fault.FPR,
		Region:   fault.RAny,
		Seed:     23,
		Workers:  2,
		Adaptive: &AdaptiveSpec{Precision: 0.05, Confidence: 0.95},
	}
}

// The acceptance demo: at the default precision/confidence the
// adaptive campaign must converge on every stratum with at least 5x
// fewer trials than the fixed-budget design needs to guarantee the
// same precision blind.
func TestAdaptiveCampaignSavings(t *testing.T) {
	var runner Runner
	res, err := runner.RunAdaptive(context.Background(), adaptiveSpec(), 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if !res.Converged {
		t.Fatalf("adaptive campaign did not converge in %d trials", res.Trials)
	}
	for _, s := range res.Strata {
		if !s.Done {
			t.Errorf("stratum %s/%s not at target (half-width %.4f)", s.Region, s.Bits, s.HalfWidth)
		}
	}
	if res.Trials*5 > res.FixedBudget {
		t.Errorf("adaptive spent %d trials vs fixed budget %d — want >=5x savings", res.Trials, res.FixedBudget)
	}
	if res.Trials != len(res.Records) {
		t.Errorf("Trials %d != len(Records) %d", res.Trials, len(res.Records))
	}
	if res.Executed != res.Trials {
		t.Errorf("fresh run: Executed %d != Trials %d", res.Executed, res.Trials)
	}
	if res.Stratified == nil || res.Stratified.Trials != res.Trials {
		t.Error("weighted stratified view missing or inconsistent")
	}
}

// Determinism across execution strategies: the observed trial set
// (records, in plan order) is identical for every worker count and
// round-shard count at equal seeds, and identical again when a prefix
// of the journal is replayed through Resume.
func TestAdaptiveCampaignDeterministicAcrossExecution(t *testing.T) {
	var runner Runner
	base, err := runner.RunAdaptive(context.Background(), adaptiveSpec(), 1)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if len(base.Records) == 0 {
		t.Fatal("no records")
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 5} {
			spec := adaptiveSpec()
			spec.Workers = workers
			res, err := runner.RunAdaptive(context.Background(), spec, shards)
			if err != nil {
				t.Fatalf("RunAdaptive(workers=%d, shards=%d): %v", workers, shards, err)
			}
			if !reflect.DeepEqual(res.Records, base.Records) {
				t.Errorf("workers=%d shards=%d: trial records diverge from baseline", workers, shards)
			}
			if res.Trials != base.Trials || res.Rounds != base.Rounds || res.Converged != base.Converged {
				t.Errorf("workers=%d shards=%d: aggregate drift (trials %d vs %d, rounds %d vs %d)",
					workers, shards, res.Trials, base.Trials, res.Rounds, base.Rounds)
			}
		}
	}

	// Journal resume: replay a prefix of the baseline's records; the
	// campaign must land on the identical trial set while executing
	// only the remainder.
	for _, cut := range []int{len(base.Records) / 3, len(base.Records) / 2, len(base.Records)} {
		spec := adaptiveSpec()
		spec.Resume = append([]fault.TrialRecord(nil), base.Records[:cut]...)
		res, err := runner.RunAdaptive(context.Background(), spec, 5)
		if err != nil {
			t.Fatalf("resumed RunAdaptive(cut=%d): %v", cut, err)
		}
		if !reflect.DeepEqual(res.Records, base.Records) {
			t.Errorf("cut=%d: resumed records diverge from baseline", cut)
		}
		if res.Executed != base.Trials-cut {
			t.Errorf("cut=%d: executed %d trials, want %d", cut, res.Executed, base.Trials-cut)
		}
	}
}

// OnRound observes every round with a monotone trial count; OnTrial
// streams a record for every executed trial.
func TestAdaptiveCampaignHooks(t *testing.T) {
	var rounds []RoundStatus
	var streamed []fault.TrialRecord
	spec := adaptiveSpec()
	spec.Adaptive.OnRound = func(st RoundStatus) { rounds = append(rounds, st) }
	spec.OnTrial = func(rec fault.TrialRecord) { streamed = append(streamed, rec) }
	var runner Runner
	res, err := runner.RunAdaptive(context.Background(), spec, 2)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if len(rounds) != res.Rounds {
		t.Errorf("OnRound fired %d times for %d rounds", len(rounds), res.Rounds)
	}
	prev := 0
	for i, st := range rounds {
		if st.Round != i {
			t.Errorf("round %d reported index %d", i, st.Round)
		}
		if st.Trials <= prev {
			t.Errorf("round %d: cumulative trials %d not increasing", i, st.Trials)
		}
		prev = st.Trials
	}
	if last := rounds[len(rounds)-1]; last.StrataDone != last.Strata {
		t.Errorf("final round reports %d/%d strata done", last.StrataDone, last.Strata)
	}
	if len(streamed) != res.Executed {
		t.Errorf("OnTrial streamed %d records for %d executed trials", len(streamed), res.Executed)
	}
	// Streamed records cover the same plan indices as the result set.
	seen := map[int]bool{}
	for _, rec := range streamed {
		seen[rec.Index] = true
	}
	for _, rec := range res.Records {
		if !seen[rec.Index] {
			t.Errorf("record %d missing from OnTrial stream", rec.Index)
		}
	}
}

func TestAdaptiveCampaignValidation(t *testing.T) {
	var runner Runner
	spec := adaptiveSpec()
	spec.Adaptive = nil
	if _, err := runner.RunAdaptive(context.Background(), spec, 1); err == nil {
		t.Error("expected error without Adaptive config")
	}
	spec = adaptiveSpec()
	spec.Workload = Workload{}
	if _, err := runner.RunAdaptive(context.Background(), spec, 1); err == nil {
		t.Error("expected error without workload")
	}
}

func TestAdaptiveCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runner Runner
	if _, err := runner.RunAdaptive(ctx, adaptiveSpec(), 1); err == nil {
		t.Error("expected cancellation error")
	}
}
