//go:build race

package campaign

// raceEnabled gates allocation-count assertions: the race detector
// instruments allocations and would fail any pinned ceiling.
const raceEnabled = true
