package campaign

import (
	"fmt"

	"vsresil/internal/imgproc"
	"vsresil/internal/summarize"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
	"vsresil/internal/wp"
)

// VS returns the workload for one VS variant on a synthetic input
// sequence — the cell of the workload matrix every paper campaign
// injects into. It is the registry path specialized to the vs backend:
// the cache key covers the variant, the app seed and the input
// identity (scenario included, via the sequence name), so campaigns
// sweeping classes, regions or trial counts over the same workload
// share one golden capture.
func VS(alg vs.Algorithm, seq *virat.Sequence, appSeed uint64) Workload {
	cfg := vs.DefaultConfig(alg)
	cfg.Seed = appSeed
	return Summarize(summarize.VS{Cfg: cfg}, seq)
}

// VSApp returns the workload for a fully specified VS configuration
// over explicit frames — uploaded inputs, stitcher overrides, and any
// other case VS's defaults don't cover. cacheKey must capture
// everything that determines the fault-free run; pass "" to disable
// golden caching (e.g. when cfg carries overrides with no stable
// identity).
func VSApp(cfg vs.Config, frames []*imgproc.Gray, name, cacheKey string) Workload {
	app := vs.New(cfg, len(frames))
	return Workload{
		Name:   name,
		Key:    cacheKey,
		App:    app.RunEncoded(frames),
		Staged: app.Staged(frames),
	}
}

// SummarizeApp binds any summarizer backend to explicit frames —
// uploaded inputs and other cases where no virat.Sequence exists.
// cacheKey must capture everything that determines the fault-free run;
// pass "" to disable golden caching.
func SummarizeApp(sum summarize.Summarizer, frames []*imgproc.Gray, name, cacheKey string) Workload {
	app, staged := sum.Bind(frames)
	return Workload{Name: name, Key: cacheKey, App: app, Staged: staged}
}

// WP returns the standalone WarpPerspective toy-benchmark workload of
// the Fig 11b case study.
func WP(preset virat.Preset) Workload {
	bench := wp.Default(preset)
	key := fmt.Sprintf("wp:%dx%dx%d", preset.Frames, preset.FrameW, preset.FrameH)
	return Workload{Name: "WP", Key: key, App: bench.App(), Staged: bench.Staged()}
}
