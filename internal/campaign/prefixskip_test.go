package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
)

// stagedToy is a two-stage fault.StagedApp over the same tap mix as
// toyApp: stage "fill" builds the input buffer through pixel taps,
// stage "transform" computes the output. The boundary snapshot is the
// filled buffer, shared read-only by every resumed trial. Invocation
// counters let the tests assert the skip path actually engaged.
type stagedToy struct {
	fulls, resumes *atomic.Int64
}

func newStagedToy() stagedToy {
	return stagedToy{fulls: new(atomic.Int64), resumes: new(atomic.Int64)}
}

func (s stagedToy) run(m *fault.Machine, snap func(string, any), buf []uint8) ([]byte, error) {
	if buf == nil {
		b := make([]uint8, 64)
		for i := range b {
			b[i] = m.Pix(uint8(i * 3))
		}
		if snap != nil {
			snap("transform", b[:len(b):len(b)])
		}
		buf = b
	}
	out := make([]uint8, 64)
	n := m.Cnt(len(buf))
	if n < 0 || n > len(buf) {
		return nil, errors.New("toy: invalid length")
	}
	for i := 0; i < n; i++ {
		idx := m.Idx(i)
		v := m.Pix(buf[idx]) // panics if idx out of range
		f := m.F64(float64(v) * 1.5)
		if f > 255 {
			f = 255
		}
		if f < 0 {
			f = 0
		}
		out[m.Idx(i)] = uint8(f)
	}
	return out, nil
}

func (s stagedToy) RunFull(m *fault.Machine, snap func(name string, state any)) ([]byte, error) {
	s.fulls.Add(1)
	return s.run(m, snap, nil)
}

func (s stagedToy) Resume(m *fault.Machine, state any) ([]byte, error) {
	s.resumes.Add(1)
	return s.run(m, nil, state.([]uint8))
}

// stagedToySpec is toySpec over the staged workload.
func stagedToySpec(st stagedToy) Spec {
	s := toySpec()
	s.Workload = NewStagedWorkload("toy-staged", "",
		func(m *fault.Machine) ([]byte, error) { return st.RunFull(m, nil) }, st)
	return s
}

// TestPrefixSkipEquivalence is the engine-level half of the prefix-skip
// guard: with skipping on, every campaign observable — outcome counts,
// crash split, histograms, rate curve, retained SDC outputs — must be
// bit-identical to full execution, for both register classes, and the
// skip path must demonstrably engage.
func TestPrefixSkipEquivalence(t *testing.T) {
	defer fastpath.SetPrefixSkip(true)
	var runner Runner
	for _, class := range []fault.Class{fault.GPR, fault.FPR} {
		st := newStagedToy()
		spec := stagedToySpec(st)
		spec.Class = class

		fastpath.SetPrefixSkip(false)
		full, err := runner.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%v full run: %v", class, err)
		}
		if st.resumes.Load() != 0 {
			t.Fatalf("%v: kill switch off still resumed %d trials", class, st.resumes.Load())
		}

		fastpath.SetPrefixSkip(true)
		skipped, err := runner.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%v skipping run: %v", class, err)
		}
		if st.resumes.Load() == 0 {
			t.Errorf("%v: no trial resumed from the checkpoint — skip path never engaged", class)
		}
		requireIdentical(t, "prefix skip on vs off, class "+class.String(), full.Fault, skipped.Fault)
	}
}

// TestPrefixSkipShardMergeEquivalence layers sharding on top: each
// shard buckets its own plan window against the shared checkpointed
// golden, and the merged result must still match the full-execution
// unsharded run bit for bit.
func TestPrefixSkipShardMergeEquivalence(t *testing.T) {
	defer fastpath.SetPrefixSkip(true)
	var runner Runner
	st := newStagedToy()
	spec := stagedToySpec(st)

	fastpath.SetPrefixSkip(false)
	base, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("unsharded full run: %v", err)
	}

	fastpath.SetPrefixSkip(true)
	for _, k := range []int{1, 2, 5} {
		before := st.resumes.Load()
		merged, err := runner.RunSharded(context.Background(), spec, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if st.resumes.Load() == before {
			t.Errorf("k=%d: no trial resumed from the checkpoint", k)
		}
		requireIdentical(t, "skipping shards k="+string(rune('0'+k)), base.Fault, merged.Fault)
	}
}

// TestPrefixSkipShardedResume interrupts a sharded skipping run, then
// replays its checkpoint journal into a fresh sharded skipping run: a
// resumed shard must bucket and skip its remaining plans identically,
// landing on the same bit-identical result as full execution.
func TestPrefixSkipShardedResume(t *testing.T) {
	defer fastpath.SetPrefixSkip(true)
	var runner Runner
	st := newStagedToy()
	noRetention := func() Spec {
		s := stagedToySpec(st)
		s.SDC = SDCPolicy{}
		return s
	}

	fastpath.SetPrefixSkip(false)
	base, err := runner.Run(context.Background(), noRetention())
	if err != nil {
		t.Fatalf("unsharded full run: %v", err)
	}

	fastpath.SetPrefixSkip(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var recs []fault.TrialRecord
	spec := noRetention()
	spec.OnTrial = func(rec fault.TrialRecord) {
		mu.Lock()
		recs = append(recs, rec)
		n := len(recs)
		mu.Unlock()
		if n == 10 {
			cancel()
		}
	}
	if _, err := runner.RunSharded(ctx, spec, 3); err == nil {
		t.Fatal("interrupted sharded run returned no error")
	}
	mu.Lock()
	journal := append([]fault.TrialRecord(nil), recs...)
	mu.Unlock()
	if len(journal) == 0 || len(journal) >= noRetention().Trials {
		t.Fatalf("interruption journaled %d trials, want partial coverage", len(journal))
	}

	resumed := noRetention()
	resumed.Resume = journal
	merged, err := runner.RunSharded(context.Background(), resumed, 3)
	if err != nil {
		t.Fatalf("resumed sharded run: %v", err)
	}
	requireIdentical(t, "resumed skipping shards", base.Fault, merged.Fault)
	if want := base.Fault.Completed - len(journal); merged.Executed != want {
		t.Errorf("resumed run executed %d trials, want %d", merged.Executed, want)
	}
}
