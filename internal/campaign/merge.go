package campaign

import (
	"fmt"
	"sort"
	"strings"

	"vsresil/internal/fault"
)

// ShardSetError reports a shard set that does not tile the plan space
// exactly once. Missing lists uncovered plan-index ranges, Overlaps
// lists ranges covered by more than one part; both are half-open
// [lo, hi) windows in ascending order. Callers that assemble shard
// sets dynamically (the cluster coordinator, resumed campaigns) can
// match with errors.As and re-dispatch exactly the missing windows.
type ShardSetError struct {
	PlanTrials int
	Missing    [][2]int
	Overlaps   [][2]int
}

func (e *ShardSetError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: shards do not tile the %d-trial plan space", e.PlanTrials)
	writeWindows := func(label string, ws [][2]int) {
		if len(ws) == 0 {
			return
		}
		fmt.Fprintf(&b, "; %s", label)
		for i, w := range ws {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " [%d,%d)", w[0], w[1])
		}
	}
	writeWindows("missing trials", e.Missing)
	writeWindows("overlapping trials", e.Overlaps)
	return b.String()
}

// Merge recombines the results of a complete shard decomposition into
// the Result the unsharded campaign would have produced. Because
// every shard drew its plans from the same seeded pre-generation and
// Merge re-aggregates trials in plan-index order through the same
// fault.NewResult/Accumulate path RunCampaign uses, the merged outcome
// counts, crash split, coverage histograms and rate curve are
// bit-identical to the unsharded run's; retained SDC outputs are
// trimmed to the same lowest-index set the unsharded cap would keep.
//
// The parts must cover the full plan space exactly once, agree on the
// campaign parameters, and each be complete (no interrupted shards —
// resume those first). Order does not matter. A set that leaves gaps
// or double-covers trials fails with a *ShardSetError naming every
// missing and overlapping plan-index window.
func Merge(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("campaign: merge of zero results")
	}
	sorted := append([]*Result(nil), parts...)
	for i, p := range sorted {
		if p == nil || p.Fault == nil {
			return nil, fmt.Errorf("campaign: merge part %d is nil", i)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Fault.Config.PlanOffset < sorted[j].Fault.Config.PlanOffset
	})

	// The base campaign every shard must agree on.
	first := sorted[0].Fault.Config
	planTrials := first.PlanTrials
	if planTrials == 0 {
		planTrials = first.Trials
	}
	next := 0
	executed := 0
	var shardErr ShardSetError
	for i, p := range sorted {
		cfg := p.Fault.Config
		pt := cfg.PlanTrials
		if pt == 0 {
			pt = cfg.Trials
		}
		if pt != planTrials {
			return nil, fmt.Errorf("campaign: merge part %d covers plan space %d, want %d", i, pt, planTrials)
		}
		if cfg.Class != first.Class || cfg.Region != first.Region ||
			cfg.Seed != first.Seed || cfg.Window != first.Window ||
			cfg.StepFactor != first.StepFactor || cfg.CheckpointEvery != first.CheckpointEvery {
			return nil, fmt.Errorf("campaign: merge part %d ran different campaign parameters", i)
		}
		if p.Fault.Completed != cfg.Trials {
			return nil, fmt.Errorf("campaign: merge part %d is incomplete (%d/%d trials) — resume it before merging",
				i, p.Fault.Completed, cfg.Trials)
		}
		if p.Fault.TotalTaps != sorted[0].Fault.TotalTaps || p.Fault.GoldenSteps != sorted[0].Fault.GoldenSteps {
			return nil, fmt.Errorf("campaign: merge part %d ran a different golden run", i)
		}
		// Tiling check: with parts sorted by offset, a window starting
		// past the high-water mark leaves a gap; one starting before it
		// re-covers trials another part owns. Collect every violation so
		// the error names the full repair set, not just the first hole.
		off, end := cfg.PlanOffset, cfg.PlanOffset+cfg.Trials
		if off > next {
			shardErr.Missing = append(shardErr.Missing, [2]int{next, off})
		} else if off < next {
			hi := end
			if hi > next {
				hi = next
			}
			shardErr.Overlaps = append(shardErr.Overlaps, [2]int{off, hi})
		}
		if end > next {
			next = end
		}
		executed += p.Executed
	}
	if next < planTrials {
		shardErr.Missing = append(shardErr.Missing, [2]int{next, planTrials})
	}
	if len(shardErr.Missing) > 0 || len(shardErr.Overlaps) > 0 {
		shardErr.PlanTrials = planTrials
		return nil, &shardErr
	}

	mergedCfg := first
	mergedCfg.Trials = planTrials
	mergedCfg.PlanTrials = 0
	mergedCfg.PlanOffset = 0
	mergedCfg.Resume = nil
	mergedCfg.OnTrial = nil
	mergedCfg.OnSDCOutput = nil

	fres := fault.NewResult(mergedCfg,
		sorted[0].Fault.GoldenOutput, sorted[0].Fault.GoldenSteps, sorted[0].Fault.TotalTaps)
	trials := make([]fault.Trial, 0, planTrials)
	for _, p := range sorted {
		trials = append(trials, p.Fault.Trials...)
		// Scheduler statistics are additive across disjoint shard
		// windows (they describe how trials were executed, not what
		// they computed, so they carry no bit-identity obligation).
		fres.MergeSched(p.Fault)
	}
	fres.Trials = trials
	for i := range trials {
		fres.Accumulate(&trials[i])
	}

	spec := sorted[0].Spec
	spec.Shard = Shard{}
	spec.Golden = nil
	// Each shard kept its own lowest-index SDC outputs; the union
	// contains the global lowest-index set, so trimming in plan order
	// reproduces the unsharded retention exactly.
	if max := spec.SDC.Max; spec.SDC.Keep && max > 0 {
		kept := 0
		for i := range fres.Trials {
			if fres.Trials[i].Output == nil {
				continue
			}
			kept++
			if kept > max {
				fres.Trials[i].Output = nil
			}
		}
	}

	var elapsed = sorted[0].Elapsed
	for _, p := range sorted[1:] {
		if p.Elapsed > elapsed {
			elapsed = p.Elapsed
		}
	}
	return &Result{Spec: spec, Fault: fres, Executed: executed, Elapsed: elapsed}, nil
}

// partialMerge aggregates whatever an interrupted shard set completed
// into one best-effort Result: summed outcome counts, crash split and
// coverage histograms, concatenated trial windows. Unlike Merge it
// makes no bit-identity claim — an interrupted campaign's completion
// set depends on scheduling — and leaves the rate curve empty, so it
// only backs partial reporting on cancellation. nil parts (shards
// that never produced a result) are skipped; returns nil if none did.
func partialMerge(spec Spec, parts []*Result) *Result {
	var alive []*Result
	for _, p := range parts {
		if p != nil && p.Fault != nil {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	sort.Slice(alive, func(i, j int) bool {
		return alive[i].Fault.Config.PlanOffset < alive[j].Fault.Config.PlanOffset
	})

	first := alive[0].Fault
	cfg := first.Config
	planTrials := cfg.PlanTrials
	if planTrials == 0 {
		planTrials = cfg.Trials
	}
	cfg.Trials = planTrials
	cfg.PlanTrials = 0
	cfg.PlanOffset = 0
	cfg.Resume = nil
	cfg.OnTrial = nil
	cfg.OnSDCOutput = nil

	fres := fault.NewResult(cfg, first.GoldenOutput, first.GoldenSteps, first.TotalTaps)
	executed := 0
	for _, p := range alive {
		fres.Completed += p.Fault.Completed
		for o, n := range p.Fault.Counts {
			fres.Counts[o] += n
		}
		for k, n := range p.Fault.CrashCounts {
			fres.CrashCounts[k] += n
		}
		for i, n := range p.Fault.RegHist.Counts {
			fres.RegHist.Counts[i] += n
		}
		for i, n := range p.Fault.BitHist.Counts {
			fres.BitHist.Counts[i] += n
		}
		fres.Trials = append(fres.Trials, p.Fault.Trials...)
		fres.MergeSched(p.Fault)
		executed += p.Executed
	}

	spec.Shard = Shard{}
	spec.Golden = nil
	return &Result{Spec: spec, Fault: fres, Executed: executed}
}
