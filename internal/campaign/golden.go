package campaign

import (
	"sync"

	"vsresil/internal/fault"
)

// goldenEntry is one cached golden run. The once gate makes
// concurrent campaigns over the same workload share a single capture
// instead of racing duplicate fault-free runs.
type goldenEntry struct {
	once   sync.Once
	golden *fault.GoldenRun
	err    error
}

// GoldenCache shares golden runs across campaigns, keyed by
// Workload.Key. Entries hold the golden output bytes (for VS, a
// serialized panorama set), so caches are kept small; when full, an
// arbitrary entry is evicted — the access pattern (campaign sweeps
// over a few workloads) does not reward LRU.
type GoldenCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*goldenEntry
}

// NewGoldenCache returns a cache bounded to max entries (max <= 0
// means unbounded).
func NewGoldenCache(max int) *GoldenCache {
	return &GoldenCache{max: max, entries: make(map[string]*goldenEntry)}
}

// Get returns the golden run for key, invoking capture (one fault-free
// execution of the workload — the runner picks the checkpointed staged
// capture when the workload supports it) on first use. hit reports
// whether the capture was skipped. The capture itself runs outside the
// cache lock; only bookkeeping is locked.
func (c *GoldenCache) Get(key string, capture func() (*fault.GoldenRun, error)) (g *fault.GoldenRun, hit bool, err error) {
	c.mu.Lock()
	e := c.entries[key]
	hit = e != nil
	if e == nil {
		if c.max > 0 && len(c.entries) >= c.max {
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		e = &goldenEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.golden, e.err = capture()
		if e.err != nil {
			// Do not cache failures: the next campaign retries the
			// capture (the input may be transiently bad, e.g. a
			// canceled upload).
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
	})
	return e.golden, hit, e.err
}
