package campaign

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vsresil/internal/fault"
)

// Session is a campaign-lifetime executor handle: one resolved golden
// run, one fault.Session (worker pool + checkpoint-bucket preparation
// cache) and one resume-record index, shared by every plan window of
// the campaign. The planner round loop (RunAdaptive, RunStratified)
// and fabric round-shard leases run all their windows through a single
// Session, so per-window cost is the trials themselves rather than
// executor setup; Runner.RunPlans opens and closes one per call.
//
// RunPlans may be called concurrently (a round's sub-shards share the
// session); Close must not race with RunPlans.
type Session struct {
	fs *fault.Session
	// resume is the session spec's Resume records sorted by plan index,
	// built once at open; per-window slices come from two binary
	// searches instead of the O(windows × records) rescans the per-call
	// path used to pay.
	resume []fault.TrialRecord
}

// OpenSession resolves spec's workload golden (through the runner's
// cache, like any campaign) and opens a persistent executor session
// for it. Successive RunPlans calls reuse the session's worker pool,
// bucket preparations and resume index; the caller must Close it when
// the campaign is over.
func (r *Runner) OpenSession(spec Spec) (*Session, error) {
	if spec.Workload.App == nil {
		return nil, fmt.Errorf("campaign: spec has no workload app")
	}
	golden, err := r.golden(&spec)
	if err != nil {
		return nil, err
	}
	fs, err := fault.NewSession(fault.SessionConfig{
		App:     spec.Workload.App,
		Staged:  spec.Workload.Staged,
		Golden:  golden,
		Workers: spec.Workers,
	})
	if err != nil {
		return nil, err
	}
	resume := append([]fault.TrialRecord(nil), spec.Resume...)
	sort.SliceStable(resume, func(i, j int) bool { return resume[i].Index < resume[j].Index })
	return &Session{fs: fs, resume: resume}, nil
}

// Golden returns the session's resolved golden run.
func (s *Session) Golden() *fault.GoldenRun { return s.fs.Golden() }

// Stats returns a snapshot of the executor session's reuse counters.
func (s *Session) Stats() fault.SessionStats { return s.fs.Stats() }

// Close releases the session's worker pool. Idempotent.
func (s *Session) Close() { s.fs.Close() }

// resumeWindow slices the sorted resume index to records with plan
// indices in [lo, hi).
func (s *Session) resumeWindow(lo, hi int) []fault.TrialRecord {
	a := sort.Search(len(s.resume), func(i int) bool { return s.resume[i].Index >= lo })
	b := sort.Search(len(s.resume), func(i int) bool { return s.resume[i].Index >= hi })
	return s.resume[a:b]
}

// RunPlans executes one window of planner-emitted plans through the
// session, bit-identical to Runner.RunPlans with the same arguments.
// spec carries the per-window hooks (a round's sub-shards wrap them);
// its Resume field is ignored — resume records were indexed from the
// spec the session was opened with.
func (s *Session) RunPlans(ctx context.Context, spec Spec, plans []fault.Plan, lo int) (*Result, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("campaign: empty plan window")
	}
	start := time.Now()
	cfg := spec.planConfig(s.Golden(), plans, lo, lo+len(plans), s.resumeWindow(lo, lo+len(plans)))
	resumed := len(cfg.Resume)
	fres, err := s.fs.Run(ctx, cfg)
	if fres == nil {
		return nil, err
	}
	return &Result{
		Spec:     spec,
		Fault:    fres,
		Executed: fres.Completed - resumed,
		Elapsed:  time.Since(start),
	}, err
}
