package imgproc

import "math"

// GaussianKernel returns a normalized 1-D Gaussian kernel with the
// given radius (kernel length 2*radius+1) and standard deviation
// sigma. sigma <= 0 derives sigma from the radius the way OpenCV does
// for getGaussianKernel.
func GaussianKernel(radius int, sigma float64) []float64 {
	if radius < 0 {
		radius = 0
	}
	if sigma <= 0 {
		sigma = 0.3*(float64(radius)-1) + 0.8
	}
	k := make([]float64, 2*radius+1)
	var sum float64
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur smooths g with a separable Gaussian of the given radius
// and sigma. The intermediate accumulation is floating point and the
// result is saturate-cast back to uint8 (the paper's FPR masking
// funnel).
func GaussianBlur(g *Gray, radius int, sigma float64) *Gray {
	if g.W == 0 || g.H == 0 {
		return g.Clone()
	}
	k := GaussianKernel(radius, sigma)
	tmp := NewMat(g.W, g.H)
	// Horizontal pass.
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var acc float64
			for i, kv := range k {
				acc += kv * float64(g.AtClamped(x+i-radius, y))
			}
			tmp.Data[y*g.W+x] = acc
		}
	}
	// Vertical pass.
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var acc float64
			for i, kv := range k {
				yy := clampInt(y+i-radius, 0, g.H-1)
				acc += kv * tmp.Data[yy*g.W+x]
			}
			out.Pix[y*g.W+x] = SaturateUint8(acc)
		}
	}
	return out
}

// BoxBlur smooths g with an integer box filter of the given radius
// using an integral image, so the cost is independent of the radius.
func BoxBlur(g *Gray, radius int) *Gray {
	if radius <= 0 || g.W == 0 || g.H == 0 {
		return g.Clone()
	}
	ii := NewIntegral(g)
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			x0 := clampInt(x-radius, 0, g.W-1)
			x1 := clampInt(x+radius, 0, g.W-1)
			y0 := clampInt(y-radius, 0, g.H-1)
			y1 := clampInt(y+radius, 0, g.H-1)
			area := (x1 - x0 + 1) * (y1 - y0 + 1)
			sum := ii.Sum(x0, y0, x1, y1)
			out.Pix[y*g.W+x] = SaturateUint8(float64(sum) / float64(area))
		}
	}
	return out
}

// Integral is a summed-area table: I[y][x] holds the sum of all pixels
// strictly above and to the left, so rectangle sums are four lookups.
type Integral struct {
	W, H int // dimensions of the source image
	sums []uint64
}

// NewIntegral builds the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	w, h := g.W+1, g.H+1
	sums := make([]uint64, w*h)
	for y := 1; y < h; y++ {
		var rowSum uint64
		for x := 1; x < w; x++ {
			rowSum += uint64(g.Pix[(y-1)*g.W+(x-1)])
			sums[y*w+x] = sums[(y-1)*w+x] + rowSum
		}
	}
	return &Integral{W: g.W, H: g.H, sums: sums}
}

// Sum returns the sum of pixels in the inclusive rectangle
// [x0,x1]x[y0,y1]. Coordinates must be in range.
func (ii *Integral) Sum(x0, y0, x1, y1 int) uint64 {
	w := ii.W + 1
	a := ii.sums[y0*w+x0]
	b := ii.sums[y0*w+x1+1]
	c := ii.sums[(y1+1)*w+x0]
	d := ii.sums[(y1+1)*w+x1+1]
	return d + a - b - c
}

// Downsample returns g reduced by an integer factor using box
// averaging, the decimation the paper applies to its inputs ("we
// further downsampled the video by a factor of 3").
func Downsample(g *Gray, factor int) *Gray {
	if factor <= 1 {
		return g.Clone()
	}
	w, h := g.W/factor, g.H/factor
	out := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum int
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sum += int(g.Pix[(y*factor+dy)*g.W+x*factor+dx])
				}
			}
			out.Pix[y*w+x] = SaturateUint8(float64(sum) / float64(factor*factor))
		}
	}
	return out
}

// SampleBilinear samples g at the (possibly fractional) coordinate
// (x, y) with bilinear interpolation. Samples outside the image return
// (0, false). This is the access pattern of OpenCV's remapBilinear,
// the inner loop of the paper's hot function.
func SampleBilinear(g *Gray, x, y float64) (uint8, bool) {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0, false
	}
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	if x0 < 0 || y0 < 0 || x0 >= g.W-1 || y0 >= g.H-1 {
		// Allow exact sampling on the last row/column.
		if x0 == g.W-1 && y0 <= g.H-1 && y0 >= 0 && x == float64(x0) {
			if y0 == g.H-1 && y == float64(y0) {
				return g.At(x0, y0), true
			}
			if y0 < g.H-1 {
				fy := y - float64(y0)
				v := (1-fy)*float64(g.At(x0, y0)) + fy*float64(g.At(x0, y0+1))
				return SaturateUint8(v), true
			}
		}
		if y0 == g.H-1 && x0 >= 0 && x0 < g.W-1 && y == float64(y0) {
			fx := x - float64(x0)
			v := (1-fx)*float64(g.At(x0, y0)) + fx*float64(g.At(x0+1, y0))
			return SaturateUint8(v), true
		}
		return 0, false
	}
	fx := x - float64(x0)
	fy := y - float64(y0)
	p00 := float64(g.Pix[y0*g.W+x0])
	p10 := float64(g.Pix[y0*g.W+x0+1])
	p01 := float64(g.Pix[(y0+1)*g.W+x0])
	p11 := float64(g.Pix[(y0+1)*g.W+x0+1])
	top := p00 + fx*(p10-p00)
	bot := p01 + fx*(p11-p01)
	return SaturateUint8(top + fy*(bot-top)), true
}

// AbsDiff returns |a - b| per pixel. The images must have identical
// dimensions; if they differ, the result covers the intersection and
// treats missing pixels as maximal difference, which is what the SDC
// quality metric needs when a fault changes the output panorama size.
func AbsDiff(a, b *Gray) *Gray {
	w := a.W
	if b.W < w {
		w = b.W
	}
	h := a.H
	if b.H < h {
		h = b.H
	}
	ow := a.W
	if b.W > ow {
		ow = b.W
	}
	oh := a.H
	if b.H > oh {
		oh = b.H
	}
	out := NewGray(ow, oh)
	out.Fill(255)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			av := int(a.Pix[y*a.W+x])
			bv := int(b.Pix[y*b.W+x])
			d := av - bv
			if d < 0 {
				d = -d
			}
			out.Pix[y*ow+x] = uint8(d)
		}
	}
	return out
}

// Threshold returns a copy of g where pixels < t become 0 and pixels
// >= t are kept. This implements the paper's pixel_128_diff_img step.
func Threshold(g *Gray, t uint8) *Gray {
	out := NewGray(g.W, g.H)
	for i, v := range g.Pix {
		if v >= t {
			out.Pix[i] = v
		}
	}
	return out
}
