// Package imgproc provides the image-processing substrate for the
// video summarization pipeline: 8-bit grayscale images, float64
// matrices, saturating conversions between them, smoothing filters and
// geometric resampling helpers.
//
// The package deliberately mirrors the structure the paper attributes
// to its OpenCV-based workload: pixels are stored as 8-bit integers,
// and floating point enters only transiently (filter accumulation,
// coordinate algebra) before being saturate-cast back to uint8. That
// saturation step is the mechanism behind the paper's observation that
// >99% of floating-point register faults are masked (§VI-A).
package imgproc

import (
	"errors"
	"fmt"
	"math"
)

// Gray is an 8-bit single channel image. Pix holds rows top-to-bottom,
// each row W bytes, with stride exactly W (no padding).
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray returns a zeroed (black) WxH image. It panics if either
// dimension is negative, matching the behavior of a failed allocation
// in the original application (the fault monitor classifies recovered
// panics as crashes).
func NewGray(w, h int) *Gray {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Out-of-range access panics (this is
// the analogue of a segmentation fault in the paper's crash taxonomy).
func (g *Gray) At(x, y int) uint8 {
	if uint(x) >= uint(g.W) || uint(y) >= uint(g.H) {
		panic(fmt.Sprintf("imgproc: pixel access (%d,%d) outside %dx%d", x, y, g.W, g.H))
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y). Out-of-range access panics.
func (g *Gray) Set(x, y int, v uint8) {
	if uint(x) >= uint(g.W) || uint(y) >= uint(g.H) {
		panic(fmt.Sprintf("imgproc: pixel write (%d,%d) outside %dx%d", x, y, g.W, g.H))
	}
	g.Pix[y*g.W+x] = v
}

// AtClamped returns the pixel at (x, y) with coordinates clamped to
// the image border (border replication, as used by filters).
func (g *Gray) AtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// InBounds reports whether (x, y) is a valid pixel coordinate.
func (g *Gray) InBounds(x, y int) bool {
	return uint(x) < uint(g.W) && uint(y) < uint(g.H)
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Equal reports whether two images have identical dimensions and
// pixels. This is the AFI result-checking predicate: any difference at
// all classifies an outcome as an SDC.
func (g *Gray) Equal(o *Gray) bool {
	if o == nil || g.W != o.W || g.H != o.H {
		return false
	}
	for i, v := range g.Pix {
		if o.Pix[i] != v {
			return false
		}
	}
	return true
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// SubImage copies the rectangle [x0,x1)x[y0,y1) into a new image,
// clamping the rectangle to the image bounds.
func (g *Gray) SubImage(x0, y0, x1, y1 int) *Gray {
	x0 = clampInt(x0, 0, g.W)
	x1 = clampInt(x1, 0, g.W)
	y0 = clampInt(y0, 0, g.H)
	y1 = clampInt(y1, 0, g.H)
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	out := NewGray(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], g.Pix[y*g.W+x0:y*g.W+x1])
	}
	return out
}

// Mean returns the average pixel intensity; 0 for empty images.
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range g.Pix {
		sum += uint64(v)
	}
	return float64(sum) / float64(len(g.Pix))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SaturateUint8 converts a float to a uint8 with saturation, matching
// OpenCV's saturate_cast<uchar>: NaN maps to 0, values below 0 clamp
// to 0, values above 255 clamp to 255, everything else rounds to
// nearest. This clamp is the FPR-fault masking mechanism the paper
// describes.
func SaturateUint8(v float64) uint8 {
	if math.IsNaN(v) {
		return 0
	}
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Mat is a float64 matrix used for transient filter and transform
// computation. Rows are stored contiguously with stride W.
type Mat struct {
	W, H int
	Data []float64
}

// NewMat returns a zeroed WxH matrix.
func NewMat(w, h int) *Mat {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: invalid mat size %dx%d", w, h))
	}
	return &Mat{W: w, H: h, Data: make([]float64, w*h)}
}

// At returns the element at (x, y); out of range panics.
func (m *Mat) At(x, y int) float64 {
	if uint(x) >= uint(m.W) || uint(y) >= uint(m.H) {
		panic(fmt.Sprintf("imgproc: mat access (%d,%d) outside %dx%d", x, y, m.W, m.H))
	}
	return m.Data[y*m.W+x]
}

// Set writes the element at (x, y); out of range panics.
func (m *Mat) Set(x, y int, v float64) {
	if uint(x) >= uint(m.W) || uint(y) >= uint(m.H) {
		panic(fmt.Sprintf("imgproc: mat write (%d,%d) outside %dx%d", x, y, m.W, m.H))
	}
	m.Data[y*m.W+x] = v
}

// ToGray saturate-casts the matrix to an 8-bit image.
func (m *Mat) ToGray() *Gray {
	out := NewGray(m.W, m.H)
	for i, v := range m.Data {
		out.Pix[i] = SaturateUint8(v)
	}
	return out
}

// MatFromGray widens an 8-bit image into a float matrix.
func MatFromGray(g *Gray) *Mat {
	out := NewMat(g.W, g.H)
	for i, v := range g.Pix {
		out.Data[i] = float64(v)
	}
	return out
}

// ErrEmptyImage is returned by operations that require a non-empty image.
var ErrEmptyImage = errors.New("imgproc: empty image")
