package imgproc

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"strings"
)

// WritePGM writes g in binary PGM (P5) format.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return fmt.Errorf("imgproc: write pgm header: %w", err)
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return fmt.Errorf("imgproc: write pgm pixels: %w", err)
	}
	return bw.Flush()
}

// ReadPGM reads a binary PGM (P5) image.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imgproc: read pgm magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imgproc: unsupported pgm magic %q", magic)
	}
	readToken := func() (int, error) {
		// Skip whitespace and '#' comments between header tokens.
		for {
			b, err := br.ReadByte()
			if err != nil {
				return 0, err
			}
			if b == '#' {
				if _, err := br.ReadString('\n'); err != nil {
					return 0, err
				}
				continue
			}
			if strings.ContainsRune(" \t\r\n", rune(b)) {
				continue
			}
			if err := br.UnreadByte(); err != nil {
				return 0, err
			}
			break
		}
		var v int
		if _, err := fmt.Fscan(br, &v); err != nil {
			return 0, err
		}
		return v, nil
	}
	w, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: read pgm width: %w", err)
	}
	h, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: read pgm height: %w", err)
	}
	maxVal, err := readToken()
	if err != nil {
		return nil, fmt.Errorf("imgproc: read pgm maxval: %w", err)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("imgproc: unsupported pgm maxval %d", maxVal)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imgproc: implausible pgm size %dx%d", w, h)
	}
	// Exactly one whitespace byte separates the header from the pixels.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imgproc: read pgm separator: %w", err)
	}
	g := NewGray(w, h)
	if _, err := io.ReadFull(br, g.Pix); err != nil {
		return nil, fmt.Errorf("imgproc: read pgm pixels: %w", err)
	}
	return g, nil
}

// SavePGM writes g to the named file in PGM format.
func SavePGM(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgproc: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WritePGM(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("imgproc: close %s: %w", path, err)
	}
	return nil
}

// LoadPGM reads the named PGM file.
func LoadPGM(path string) (*Gray, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imgproc: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadPGM(f)
}

// WritePNG writes g as a grayscale PNG.
func WritePNG(w io.Writer, g *Gray) error {
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	copy(img.Pix, g.Pix)
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("imgproc: encode png: %w", err)
	}
	return nil
}

// SavePNG writes g to the named file as a grayscale PNG.
func SavePNG(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgproc: create %s: %w", path, err)
	}
	defer f.Close()
	if err := WritePNG(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("imgproc: close %s: %w", path, err)
	}
	return nil
}

// LoadPNG reads the named PNG file and converts it to grayscale using
// the Rec. 601 luma weights.
func LoadPNG(path string) (*Gray, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imgproc: open %s: %w", path, err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("imgproc: decode %s: %w", path, err)
	}
	b := img.Bounds()
	g := NewGray(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := color.GrayModel.Convert(img.At(x, y)).(color.Gray)
			g.Set(x-b.Min.X, y-b.Min.Y, c.Y)
		}
	}
	return g, nil
}
