package imgproc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewGray(t *testing.T) {
	g := NewGray(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("NewGray(4,3) = %dx%d len %d", g.W, g.H, len(g.Pix))
	}
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("new image not zeroed")
		}
	}
}

func TestNewGrayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative size")
		}
	}()
	NewGray(-1, 3)
}

func TestAtSetRoundTrip(t *testing.T) {
	g := NewGray(5, 5)
	g.Set(2, 3, 77)
	if got := g.At(2, 3); got != 77 {
		t.Errorf("At = %d, want 77", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	g := NewGray(2, 2)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for access %v", c)
				}
			}()
			g.At(c[0], c[1])
		}()
	}
}

func TestAtClamped(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(0, 0, 11)
	g.Set(2, 2, 22)
	if got := g.AtClamped(-5, -5); got != 11 {
		t.Errorf("AtClamped(-5,-5) = %d, want 11", got)
	}
	if got := g.AtClamped(99, 99); got != 22 {
		t.Errorf("AtClamped(99,99) = %d, want 22", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 200)
	if g.At(0, 0) != 1 {
		t.Error("Clone shares pixel storage with original")
	}
}

func TestEqual(t *testing.T) {
	a := NewGray(3, 2)
	b := NewGray(3, 2)
	if !a.Equal(b) {
		t.Error("identical zero images should be equal")
	}
	b.Set(1, 1, 5)
	if a.Equal(b) {
		t.Error("differing images should not be equal")
	}
	if a.Equal(NewGray(2, 3)) {
		t.Error("different shapes should not be equal")
	}
	if a.Equal(nil) {
		t.Error("nil should not be equal")
	}
}

func TestSubImage(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i)
	}
	s := g.SubImage(1, 1, 3, 3)
	if s.W != 2 || s.H != 2 {
		t.Fatalf("SubImage shape %dx%d", s.W, s.H)
	}
	if s.At(0, 0) != g.At(1, 1) || s.At(1, 1) != g.At(2, 2) {
		t.Error("SubImage pixels wrong")
	}
	// Clamped to bounds.
	s2 := g.SubImage(-5, -5, 100, 100)
	if !s2.Equal(g) {
		t.Error("clamped SubImage should equal original")
	}
}

func TestMean(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{0, 100, 200, 100}
	if got := g.Mean(); got != 100 {
		t.Errorf("Mean = %v, want 100", got)
	}
	empty := NewGray(0, 0)
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
}

func TestSaturateUint8(t *testing.T) {
	cases := []struct {
		in   float64
		want uint8
	}{
		{-10, 0},
		{0, 0},
		{0.4, 0},
		{0.6, 1},
		{254.9, 255},
		{255, 255},
		{1e18, 255},
		{math.Inf(1), 255},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
		{127.5, 128},
	}
	for _, tc := range cases {
		if got := SaturateUint8(tc.in); got != tc.want {
			t.Errorf("SaturateUint8(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// Property: saturate-cast always lands in [0,255] and is monotone.
func TestPropertySaturateMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return SaturateUint8(a) <= SaturateUint8(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMatGrayRoundTrip(t *testing.T) {
	g := NewGray(3, 3)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 28)
	}
	back := MatFromGray(g).ToGray()
	if !back.Equal(g) {
		t.Error("Mat round trip changed pixels")
	}
}

func TestMatAtSet(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(1, 0, 3.5)
	if got := m.At(1, 0); got != 3.5 {
		t.Errorf("Mat.At = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out of range mat access")
		}
	}()
	m.At(5, 5)
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, r := range []int{0, 1, 3, 7} {
		k := GaussianKernel(r, 0)
		if len(k) != 2*r+1 {
			t.Errorf("radius %d: kernel length %d", r, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("radius %d: kernel sum %v", r, sum)
		}
		// Symmetric and peaked at center.
		for i := 0; i < len(k)/2; i++ {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Errorf("radius %d: kernel asymmetric", r)
			}
		}
	}
}

func TestGaussianBlurConstantImage(t *testing.T) {
	g := NewGray(8, 8)
	g.Fill(97)
	b := GaussianBlur(g, 2, 1.0)
	for i, v := range b.Pix {
		if v != 97 {
			t.Fatalf("blur of constant image changed pixel %d to %d", i, v)
		}
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	g := NewGray(9, 9)
	g.Set(4, 4, 255)
	b := GaussianBlur(g, 2, 1.0)
	if b.At(4, 4) >= 255 {
		t.Error("blur did not reduce the impulse peak")
	}
	if b.At(3, 4) == 0 {
		t.Error("blur did not spread the impulse")
	}
}

func TestBoxBlurMatchesBruteForce(t *testing.T) {
	g := NewGray(7, 5)
	for i := range g.Pix {
		g.Pix[i] = uint8((i * 37) % 256)
	}
	radius := 1
	got := BoxBlur(g, radius)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum, n int
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || yy < 0 || xx >= g.W || yy >= g.H {
						continue
					}
					sum += int(g.At(xx, yy))
					n++
				}
			}
			want := SaturateUint8(float64(sum) / float64(n))
			if got.At(x, y) != want {
				t.Fatalf("BoxBlur(%d,%d) = %d, want %d", x, y, got.At(x, y), want)
			}
		}
	}
}

func TestIntegralSum(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 1
	}
	ii := NewIntegral(g)
	if got := ii.Sum(0, 0, 3, 3); got != 16 {
		t.Errorf("full sum = %d, want 16", got)
	}
	if got := ii.Sum(1, 1, 2, 2); got != 4 {
		t.Errorf("center sum = %d, want 4", got)
	}
	if got := ii.Sum(2, 3, 2, 3); got != 1 {
		t.Errorf("single pixel sum = %d, want 1", got)
	}
}

func TestDownsample(t *testing.T) {
	g := NewGray(6, 6)
	g.Fill(50)
	d := Downsample(g, 3)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("Downsample shape %dx%d", d.W, d.H)
	}
	for _, v := range d.Pix {
		if v != 50 {
			t.Errorf("downsample of constant image gave %d", v)
		}
	}
	if got := Downsample(g, 1); !got.Equal(g) {
		t.Error("factor 1 should be a copy")
	}
}

func TestSampleBilinear(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{0, 100, 100, 200}
	if v, ok := SampleBilinear(g, 0, 0); !ok || v != 0 {
		t.Errorf("corner sample = %d,%v", v, ok)
	}
	if v, ok := SampleBilinear(g, 0.5, 0.5); !ok || v != 100 {
		t.Errorf("center sample = %d,%v want 100", v, ok)
	}
	if _, ok := SampleBilinear(g, -1, 0); ok {
		t.Error("outside sample should fail")
	}
	if _, ok := SampleBilinear(g, 5, 5); ok {
		t.Error("outside sample should fail")
	}
	if _, ok := SampleBilinear(g, math.NaN(), 0); ok {
		t.Error("NaN sample should fail")
	}
	// Exact sample on the last row/column corner is valid.
	if v, ok := SampleBilinear(g, 1, 1); !ok || v != 200 {
		t.Errorf("last corner sample = %d,%v want 200", v, ok)
	}
}

func TestAbsDiff(t *testing.T) {
	a := NewGray(2, 2)
	b := NewGray(2, 2)
	a.Pix = []uint8{10, 200, 0, 255}
	b.Pix = []uint8{20, 100, 0, 0}
	d := AbsDiff(a, b)
	want := []uint8{10, 100, 0, 255}
	for i := range want {
		if d.Pix[i] != want[i] {
			t.Errorf("AbsDiff[%d] = %d, want %d", i, d.Pix[i], want[i])
		}
	}
}

func TestAbsDiffMismatchedSizes(t *testing.T) {
	a := NewGray(3, 3)
	b := NewGray(2, 2)
	d := AbsDiff(a, b)
	if d.W != 3 || d.H != 3 {
		t.Fatalf("AbsDiff shape %dx%d", d.W, d.H)
	}
	// Intersection identical (both zero), outside = 255.
	if d.At(0, 0) != 0 {
		t.Error("intersection should be 0")
	}
	if d.At(2, 2) != 255 {
		t.Error("non-overlap should be max difference")
	}
}

func TestThreshold(t *testing.T) {
	g := NewGray(1, 4)
	g.Pix = []uint8{0, 127, 128, 255}
	th := Threshold(g, 128)
	want := []uint8{0, 0, 128, 255}
	for i := range want {
		if th.Pix[i] != want[i] {
			t.Errorf("Threshold[%d] = %d, want %d", i, th.Pix[i], want[i])
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := NewGray(5, 3)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 17)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if !back.Equal(g) {
		t.Error("PGM round trip changed pixels")
	}
}

func TestReadPGMWithComment(t *testing.T) {
	data := []byte("P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04")
	g, err := ReadPGM(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if g.W != 2 || g.H != 2 || g.Pix[3] != 4 {
		t.Errorf("parsed %dx%d pix %v", g.W, g.H, g.Pix)
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":   "P6\n2 2\n255\n....",
		"bad maxval":  "P5\n2 2\n65535\n....",
		"truncated":   "P5\n4 4\n255\n\x01",
		"no header":   "",
		"absurd size": "P5\n999999999 999999999\n255\n",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPGM(bytes.NewReader([]byte(data))); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPNGRoundTrip(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 15)
	}
	dir := t.TempDir()
	path := dir + "/x.png"
	if err := SavePNG(path, g); err != nil {
		t.Fatalf("SavePNG: %v", err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatalf("LoadPNG: %v", err)
	}
	if !back.Equal(g) {
		t.Error("PNG round trip changed pixels")
	}
}

func TestSaveLoadPGMFile(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(1, 1, 42)
	dir := t.TempDir()
	path := dir + "/x.pgm"
	if err := SavePGM(path, g); err != nil {
		t.Fatalf("SavePGM: %v", err)
	}
	back, err := LoadPGM(path)
	if err != nil {
		t.Fatalf("LoadPGM: %v", err)
	}
	if !back.Equal(g) {
		t.Error("file round trip changed pixels")
	}
}

// Property: PGM round-trips arbitrary small images bit-exactly.
func TestPropertyPGMRoundTrip(t *testing.T) {
	f := func(pix []uint8) bool {
		n := len(pix)
		if n == 0 {
			return true
		}
		w := 1
		for w*w < n {
			w++
		}
		g := NewGray(w, (n+w-1)/w)
		copy(g.Pix, pix)
		var buf bytes.Buffer
		if err := WritePGM(&buf, g); err != nil {
			return false
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			return false
		}
		return back.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGaussianBlur(b *testing.B) {
	g := NewGray(320, 240)
	for i := range g.Pix {
		g.Pix[i] = uint8(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussianBlur(g, 2, 1.0)
	}
}

func BenchmarkSampleBilinear(b *testing.B) {
	g := NewGray(320, 240)
	for i := range g.Pix {
		g.Pix[i] = uint8(i)
	}
	for i := 0; i < b.N; i++ {
		SampleBilinear(g, 100.3, 100.7)
	}
}
