// Package match implements brute-force descriptor matching between
// frames (§III-A): for each key point in the current frame it finds
// nearest neighbors among the incoming frame's key points by Hamming
// distance.
//
// Two strategies reproduce the paper's algorithms:
//
//   - RatioTest: the baseline VS matcher. The two nearest neighbors
//     are found and a match is kept only when the nearest is
//     sufficiently closer than the second nearest (Lowe's ratio test),
//     which suppresses false positives.
//   - SimpleNearest: the VS_SM approximation. Only the single nearest
//     neighbor is computed and the match is kept when its absolute
//     distance is below a fixed bound — cheaper, but identical objects
//     can alias (§IV(3)).
//
// The O(n²) scan over key-point pairs is the computation VS_KDS
// attacks by down-sampling key points (package vs).
package match

import (
	"sort"

	"vsresil/internal/fault"
	"vsresil/internal/features"
	"vsresil/internal/probe"
)

// Match pairs a query key point index with its matched train index.
type Match struct {
	Query    int
	Train    int
	Distance int
}

// Strategy selects the matching algorithm.
type Strategy uint8

// Matching strategies.
const (
	// RatioTest keeps matches whose nearest neighbor beats the second
	// nearest by the configured ratio (baseline VS).
	RatioTest Strategy = iota
	// SimpleNearest keeps the single nearest neighbor under an
	// absolute distance bound (VS_SM).
	SimpleNearest
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case RatioTest:
		return "ratio-test"
	case SimpleNearest:
		return "simple-nearest"
	default:
		return "unknown"
	}
}

// Config parameterizes a Matcher.
type Config struct {
	Strategy Strategy
	// Ratio is the RatioTest threshold: keep when d1 < Ratio*d2
	// (default 0.75).
	Ratio float64
	// MaxDistance is the SimpleNearest absolute bound in bits
	// (default 48 of 256).
	MaxDistance int
}

// DefaultConfig returns the baseline VS matcher configuration.
func DefaultConfig() Config {
	return Config{Strategy: RatioTest, Ratio: 0.75, MaxDistance: 48}
}

// SimpleConfig returns the VS_SM matcher configuration.
func SimpleConfig() Config {
	return Config{Strategy: SimpleNearest, MaxDistance: 52}
}

// Matcher matches descriptor sets between frames.
type Matcher struct {
	cfg Config
}

// New returns a Matcher; zero-value fields in cfg fall back to
// defaults.
func New(cfg Config) *Matcher {
	if cfg.Ratio <= 0 || cfg.Ratio >= 1 {
		cfg.Ratio = 0.75
	}
	if cfg.MaxDistance <= 0 {
		cfg.MaxDistance = 48
	}
	return &Matcher{cfg: cfg}
}

// Config returns the matcher's effective configuration.
func (mt *Matcher) Config() Config { return mt.cfg }

// Match finds matches from query descriptors to train descriptors.
// s is any probe.Sink; pass probe.Nop{} for an uninstrumented run
// (nil is normalized).
func (mt *Matcher) Match(query, train []features.Descriptor, s probe.Sink) []Match {
	return mt.AppendMatches(nil, query, train, s)
}

// AppendMatches is Match appending into dst (which may be nil),
// reusing its capacity — callers that match every frame pair of every
// campaign trial pass a recycled buffer to keep the steady state
// allocation-free. It emits exactly Match's tap stream.
func (mt *Matcher) AppendMatches(dst []Match, query, train []features.Descriptor, s probe.Sink) []Match {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return appendMatches(mt, dst, query, train, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return appendMatches(mt, dst, query, train, m)
	}
	return appendMatches(mt, dst, query, train, s)
}

func appendMatches[S probe.Sink](mt *Matcher, dst []Match, query, train []features.Descriptor, m S) []Match {
	defer m.Enter(probe.RMatch)()
	if len(train) == 0 {
		return dst[:0]
	}
	out := dst[:0]
	if cap(out) < len(query) {
		out = make([]Match, 0, len(query))
	}
	nq := m.Cnt(len(query))
	for qi := 0; qi < nq; qi++ {
		q := query[m.Idx(qi)]
		switch mt.cfg.Strategy {
		case SimpleNearest:
			best, bestDist := nearest1(q, train, mt.cfg.MaxDistance/2, m)
			// Absolute bound: only near-perfect matches survive.
			if bestDist <= m.Cnt(mt.cfg.MaxDistance) {
				out = append(out, Match{Query: qi, Train: best, Distance: bestDist})
			}
		default: // RatioTest
			best, bestDist, secondDist := nearest2(q, train, m)
			// The 2-NN bookkeeping costs extra comparisons per
			// candidate relative to the single-NN scan.
			m.Ops(probe.OpBranch, uint64(len(train)))
			// Keep only when the best is sufficiently closer than the
			// runner-up; with a single candidate the runner-up is
			// treated as maximally distant.
			if float64(bestDist) < mt.cfg.Ratio*float64(secondDist) {
				out = append(out, Match{Query: qi, Train: best, Distance: bestDist})
			}
		}
	}
	return out
}

// nearest1 scans train for the single nearest neighbor of q. Because
// VS_SM only accepts near-perfect matches anyway, the scan terminates
// early once a candidate within earlyExit bits is found — the
// algorithmic source of the approximation's speedup (§IV(3)).
func nearest1[S probe.Sink](q features.Descriptor, train []features.Descriptor, earlyExit int, m S) (int, int) {
	best, bestDist := -1, features.DescriptorBits+1
	nt := m.Cnt(len(train))
	m.Ops(probe.OpBranch, uint64(nt))
	for ti := 0; ti < nt; ti++ {
		d := features.HammingDist(q, train[m.Idx(ti)], m)
		if d < bestDist {
			best, bestDist = ti, d
			if bestDist <= earlyExit {
				break
			}
		}
	}
	return best, bestDist
}

// nearest2 scans train for the two nearest neighbors of q.
func nearest2[S probe.Sink](q features.Descriptor, train []features.Descriptor, m S) (best, bestDist, secondDist int) {
	best = -1
	bestDist = features.DescriptorBits + 1
	secondDist = features.DescriptorBits + 1
	nt := m.Cnt(len(train))
	m.Ops(probe.OpBranch, uint64(nt))
	for ti := 0; ti < nt; ti++ {
		d := features.HammingDist(q, train[m.Idx(ti)], m)
		switch {
		case d < bestDist:
			secondDist = bestDist
			best, bestDist = ti, d
		case d < secondDist:
			secondDist = d
		}
	}
	return best, bestDist, secondDist
}

// SubsampleStrongest keeps the strongest 1/stride of the key points
// (by FAST corner score) — the VS_KDS approximation performs matching
// on one third of the key points, and keeping the most salient ones
// preserves the most matchable structure. The returned slices use
// fresh storage and keep the original deterministic ordering.
func SubsampleStrongest(kps []features.KeyPoint, descs []features.Descriptor, stride int) ([]features.KeyPoint, []features.Descriptor) {
	if stride <= 1 || len(kps) == 0 {
		return kps, descs
	}
	n := len(kps)
	if len(descs) < n {
		n = len(descs)
	}
	keep := (n + stride - 1) / stride
	// Select indices of the top-keep scores without disturbing order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if kps[idx[a]].Score != kps[idx[b]].Score {
			return kps[idx[a]].Score > kps[idx[b]].Score
		}
		return idx[a] < idx[b]
	})
	chosen := idx[:keep]
	sort.Ints(chosen)
	outK := make([]features.KeyPoint, 0, keep)
	outD := make([]features.Descriptor, 0, keep)
	for _, i := range chosen {
		outK = append(outK, kps[i])
		outD = append(outD, descs[i])
	}
	return outK, outD
}

// Subsample keeps every stride-th key point/descriptor pair — the
// VS_KDS approximation performs matching on one third of the key
// points (stride 3). The returned slices alias fresh storage.
func Subsample(kps []features.KeyPoint, descs []features.Descriptor, stride int) ([]features.KeyPoint, []features.Descriptor) {
	if stride <= 1 {
		return kps, descs
	}
	outK := make([]features.KeyPoint, 0, (len(kps)+stride-1)/stride)
	outD := make([]features.Descriptor, 0, cap(outK))
	for i := 0; i < len(kps) && i < len(descs); i += stride {
		outK = append(outK, kps[i])
		outD = append(outD, descs[i])
	}
	return outK, outD
}
