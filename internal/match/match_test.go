package match

import (
	"testing"
	"testing/quick"

	"vsresil/internal/fault"
	"vsresil/internal/features"
)

// desc builds a descriptor with the given bits set.
func desc(bits ...int) features.Descriptor {
	var d features.Descriptor
	for _, b := range bits {
		d[b>>6] |= 1 << uint(b&63)
	}
	return d
}

func TestRatioTestKeepsUnambiguous(t *testing.T) {
	q := []features.Descriptor{desc(0, 1, 2)}
	train := []features.Descriptor{
		desc(0, 1, 2),        // distance 0: perfect
		desc(10, 20, 30, 40), // far away
		desc(100, 120, 140),  // far away
	}
	mt := New(DefaultConfig())
	ms := mt.Match(q, train, nil)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0].Train != 0 || ms[0].Distance != 0 {
		t.Errorf("match = %+v", ms[0])
	}
}

func TestRatioTestRejectsAmbiguous(t *testing.T) {
	q := []features.Descriptor{desc(0, 1, 2)}
	// Two nearly identical candidates: ratio test must reject.
	train := []features.Descriptor{
		desc(0, 1, 2, 50),
		desc(0, 1, 2, 51),
	}
	mt := New(DefaultConfig())
	if ms := mt.Match(q, train, nil); len(ms) != 0 {
		t.Errorf("ambiguous match kept: %+v", ms)
	}
}

func TestSimpleNearestKeepsCloseMatch(t *testing.T) {
	q := []features.Descriptor{desc(0, 1, 2)}
	train := []features.Descriptor{
		desc(0, 1, 2, 50),
		desc(0, 1, 2, 51),
	}
	// VS_SM takes the single nearest under the bound even when
	// ambiguous — the failure mode the paper describes for identical
	// objects.
	mt := New(SimpleConfig())
	ms := mt.Match(q, train, nil)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0].Distance != 1 {
		t.Errorf("distance = %d", ms[0].Distance)
	}
}

func TestSimpleNearestRejectsFarMatch(t *testing.T) {
	q := []features.Descriptor{desc(0, 1, 2)}
	var far features.Descriptor
	for i := 0; i < 200; i++ {
		far[i>>6] |= 1 << uint(i&63)
	}
	train := []features.Descriptor{far}
	mt := New(SimpleConfig())
	if ms := mt.Match(q, train, nil); len(ms) != 0 {
		t.Errorf("far match kept: %+v", ms)
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	mt := New(DefaultConfig())
	if ms := mt.Match(nil, nil, nil); ms != nil {
		t.Errorf("nil inputs gave %v", ms)
	}
	if ms := mt.Match([]features.Descriptor{desc(1)}, nil, nil); ms != nil {
		t.Errorf("empty train gave %v", ms)
	}
	if ms := mt.Match(nil, []features.Descriptor{desc(1)}, nil); len(ms) != 0 {
		t.Errorf("empty query gave %v", ms)
	}
}

func TestMatchSingleTrainCandidate(t *testing.T) {
	// With one candidate the ratio test compares against "infinite"
	// second distance, so a good match is kept.
	q := []features.Descriptor{desc(0)}
	train := []features.Descriptor{desc(0)}
	mt := New(DefaultConfig())
	if ms := mt.Match(q, train, nil); len(ms) != 1 {
		t.Errorf("single perfect candidate rejected: %v", ms)
	}
}

func TestConfigDefaults(t *testing.T) {
	mt := New(Config{})
	cfg := mt.Config()
	if cfg.Ratio != 0.75 || cfg.MaxDistance != 48 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	mt2 := New(Config{Ratio: 1.5})
	if mt2.Config().Ratio != 0.75 {
		t.Error("out-of-range ratio not clamped")
	}
}

func TestStrategyString(t *testing.T) {
	if RatioTest.String() == "" || SimpleNearest.String() == "" || Strategy(9).String() == "" {
		t.Error("empty strategy string")
	}
}

func TestMatchInstrumentedIdentical(t *testing.T) {
	var q, train []features.Descriptor
	for i := 0; i < 20; i++ {
		q = append(q, desc(i, i+1, i+2))
		train = append(train, desc(i, i+1, i+3))
	}
	mt := New(DefaultConfig())
	bare := mt.Match(q, train, nil)
	inst := mt.Match(q, train, fault.New())
	if len(bare) != len(inst) {
		t.Fatalf("instrumentation changed results: %d vs %d", len(bare), len(inst))
	}
	for i := range bare {
		if bare[i] != inst[i] {
			t.Fatalf("match %d differs", i)
		}
	}
}

func TestMatchTapsInRegion(t *testing.T) {
	q := []features.Descriptor{desc(0)}
	train := []features.Descriptor{desc(0), desc(1)}
	m := fault.New()
	New(DefaultConfig()).Match(q, train, m)
	if m.RegionTaps(fault.GPR, fault.RMatch) == 0 {
		t.Error("matching executed no taps in its region")
	}
}

func TestSubsample(t *testing.T) {
	kps := make([]features.KeyPoint, 10)
	descs := make([]features.Descriptor, 10)
	for i := range kps {
		kps[i].X = i
	}
	outK, outD := Subsample(kps, descs, 3)
	if len(outK) != 4 || len(outD) != 4 {
		t.Fatalf("subsample kept %d/%d, want 4", len(outK), len(outD))
	}
	want := []int{0, 3, 6, 9}
	for i, k := range outK {
		if k.X != want[i] {
			t.Errorf("kept wrong points: %v", outK)
		}
	}
}

func TestSubsampleStrideOne(t *testing.T) {
	kps := make([]features.KeyPoint, 5)
	descs := make([]features.Descriptor, 5)
	outK, outD := Subsample(kps, descs, 1)
	if len(outK) != 5 || len(outD) != 5 {
		t.Error("stride 1 should keep all")
	}
}

func TestSubsampleMismatchedLengths(t *testing.T) {
	kps := make([]features.KeyPoint, 5)
	descs := make([]features.Descriptor, 3)
	outK, outD := Subsample(kps, descs, 2)
	if len(outK) != len(outD) {
		t.Error("outputs must stay parallel")
	}
	if len(outK) != 2 {
		t.Errorf("kept %d, want 2", len(outK))
	}
}

// Property: every match returned by either strategy refers to valid
// indices and reports the true Hamming distance.
func TestPropertyMatchIndicesValid(t *testing.T) {
	f := func(seeds []uint64, simple bool) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 30 {
			seeds = seeds[:30]
		}
		var q, train []features.Descriptor
		for i, s := range seeds {
			d := features.Descriptor{s, s >> 1, s << 1, s ^ 0xff}
			if i%2 == 0 {
				q = append(q, d)
			} else {
				train = append(train, d)
			}
		}
		cfg := DefaultConfig()
		if simple {
			cfg = SimpleConfig()
		}
		for _, mm := range New(cfg).Match(q, train, nil) {
			if mm.Query < 0 || mm.Query >= len(q) || mm.Train < 0 || mm.Train >= len(train) {
				return false
			}
			if mm.Distance != q[mm.Query].Hamming(train[mm.Train], nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchRatio(b *testing.B) {
	var q, train []features.Descriptor
	for i := 0; i < 250; i++ {
		q = append(q, features.Descriptor{uint64(i) * 0x9e37, uint64(i) << 7, uint64(i), ^uint64(i)})
		train = append(train, features.Descriptor{uint64(i) * 0x1234, uint64(i) << 3, uint64(i) ^ 5, uint64(i)})
	}
	mt := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Match(q, train, nil)
	}
}

func BenchmarkMatchSimple(b *testing.B) {
	var q, train []features.Descriptor
	for i := 0; i < 250; i++ {
		q = append(q, features.Descriptor{uint64(i) * 0x9e37, uint64(i) << 7, uint64(i), ^uint64(i)})
		train = append(train, features.Descriptor{uint64(i) * 0x1234, uint64(i) << 3, uint64(i) ^ 5, uint64(i)})
	}
	mt := New(SimpleConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Match(q, train, nil)
	}
}
