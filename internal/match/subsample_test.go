package match

import (
	"testing"
	"testing/quick"

	"vsresil/internal/features"
)

func TestSubsampleStrongestKeepsTopScores(t *testing.T) {
	kps := []features.KeyPoint{
		{X: 0, Score: 5}, {X: 1, Score: 50}, {X: 2, Score: 10},
		{X: 3, Score: 40}, {X: 4, Score: 1}, {X: 5, Score: 30},
	}
	descs := make([]features.Descriptor, len(kps))
	outK, outD := SubsampleStrongest(kps, descs, 3)
	if len(outK) != 2 || len(outD) != 2 {
		t.Fatalf("kept %d, want 2", len(outK))
	}
	// Top-2 scores are 50 (X=1) and 40 (X=3), in original order.
	if outK[0].X != 1 || outK[1].X != 3 {
		t.Errorf("kept %v, want X=1 then X=3", outK)
	}
}

func TestSubsampleStrongestPreservesOrder(t *testing.T) {
	kps := []features.KeyPoint{
		{X: 0, Score: 10}, {X: 1, Score: 10}, {X: 2, Score: 10},
		{X: 3, Score: 10}, {X: 4, Score: 10}, {X: 5, Score: 10},
	}
	descs := make([]features.Descriptor, len(kps))
	outK, _ := SubsampleStrongest(kps, descs, 2)
	for i := 1; i < len(outK); i++ {
		if outK[i].X <= outK[i-1].X {
			t.Fatalf("order not preserved: %v", outK)
		}
	}
}

func TestSubsampleStrongestEdgeCases(t *testing.T) {
	kps := make([]features.KeyPoint, 3)
	descs := make([]features.Descriptor, 3)
	if outK, _ := SubsampleStrongest(kps, descs, 1); len(outK) != 3 {
		t.Error("stride 1 should keep all")
	}
	if outK, _ := SubsampleStrongest(nil, nil, 3); len(outK) != 0 {
		t.Error("empty input should stay empty")
	}
	// Mismatched lengths stay parallel.
	outK, outD := SubsampleStrongest(make([]features.KeyPoint, 5), make([]features.Descriptor, 3), 2)
	if len(outK) != len(outD) {
		t.Error("outputs must stay parallel")
	}
}

// Property: SubsampleStrongest keeps ceil(n/stride) items whose
// minimum score is >= the maximum score of the discarded items.
func TestPropertySubsampleStrongestDominates(t *testing.T) {
	f := func(scores []uint8, strideRaw uint8) bool {
		stride := 2 + int(strideRaw%4)
		kps := make([]features.KeyPoint, len(scores))
		descs := make([]features.Descriptor, len(scores))
		for i, s := range scores {
			kps[i] = features.KeyPoint{X: i, Score: int(s)}
		}
		outK, outD := SubsampleStrongest(kps, descs, stride)
		if len(outK) != len(outD) {
			return false
		}
		if len(kps) == 0 {
			return len(outK) == 0
		}
		wantKeep := (len(kps) + stride - 1) / stride
		if len(outK) != wantKeep {
			return false
		}
		kept := map[int]bool{}
		minKept := 1 << 30
		for _, k := range outK {
			kept[k.X] = true
			if k.Score < minKept {
				minKept = k.Score
			}
		}
		for _, k := range kps {
			if !kept[k.X] && k.Score > minKept {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimpleNearestEarlyExitStillValid(t *testing.T) {
	// With many near-identical candidates, early exit must return a
	// match within the bound whose reported distance is correct.
	q := []features.Descriptor{desc(0, 1)}
	var train []features.Descriptor
	for i := 0; i < 50; i++ {
		train = append(train, desc(0, 1, 100+i))
	}
	ms := New(SimpleConfig()).Match(q, train, nil)
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	if got := q[0].Hamming(train[ms[0].Train], nil); got != ms[0].Distance {
		t.Errorf("reported distance %d, true %d", ms[0].Distance, got)
	}
	if ms[0].Distance > SimpleConfig().MaxDistance {
		t.Error("match beyond the bound")
	}
}
