// Package probe defines the instrumentation plane of the pipeline: the
// narrow Sink seam every stage taps its architecturally meaningful
// values through, plus the sink implementations that do not inject
// faults (Nop for clean serving runs, Meter for live observability).
//
// The paper's AFI methodology (§V-A) works because injection and
// telemetry are a plane layered over an unmodified application. This
// package is that plane's contract: stage packages (vs, stitch,
// features, match, ransac, warp, events, wp) accept any Sink, and the
// three shipped implementations cover the three uses —
//
//   - *fault.Machine injects single-bit register faults and accounts
//     taps/ops for the campaign (it satisfies Sink unchanged);
//   - Nop is the devirtualized zero-cost path for summarize-only
//     traffic: stages instantiate their generic kernels with Nop so
//     every tap compiles to an identity and op accounting disappears;
//   - Meter records per-region tap counts, op counts and wall-time,
//     feeding the energy/profilesim models and the vsd /metrics
//     per-stage gauges from live runs.
//
// # Tap-ordering invariant
//
// A Sink implementation must be passive: it may observe and (for the
// fault machine) perturb the tapped value, but it must not change
// which taps execute or their order — the campaign's notion of a
// "cycle" is the dynamic tap index, so the tap stream itself is part
// of the application's architectural behavior. Conversely, stages must
// issue the identical tap sequence for every Sink; optimizations that
// skip taps on one sink but not another would desynchronize the fault
// site space. The equivalence tests at the repo root pin this.
package probe

import "fmt"

// Region identifies the function-level scope a tap executes in. It
// serves two purposes: the Fig 11b case study injects faults only
// inside the hot functions, and the Fig 8 execution profile attributes
// operation counts to functions.
type Region uint8

// Regions of the video summarization application. RWarpInvoker and
// RRemapBilinear are the paper's two hot functions (WarpPerspective's
// callees); the remaining vision kernels model the rest of the OpenCV
// share; RApp covers application-level orchestration.
const (
	RApp Region = iota
	RFASTDetect
	RORBDescribe
	RMatch
	RRANSAC
	RWarpInvoker
	RRemapBilinear
	RBlend
	RDecode
	NumRegions

	// RAny is used in fault plans to mean "no region restriction".
	RAny Region = 255
)

var regionNames = [NumRegions]string{
	"app", "FASTDetect", "ORBDescribe", "match", "RANSAC",
	"WarpPerspectiveInvoker", "remapBilinear", "blend", "decode",
}

// String implements fmt.Stringer.
func (r Region) String() string {
	if r == RAny {
		return "any"
	}
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// OpClass categorizes accounted operations for the performance/energy
// model (package energy).
type OpClass uint8

// Operation classes with distinct per-operation cycle costs.
const (
	OpInt OpClass = iota
	OpFloat
	OpLoad
	OpStore
	OpBranch
	NumOpClasses
)

// String implements fmt.Stringer.
func (o OpClass) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpFloat:
		return "float"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(o))
	}
}

// Sink is the instrumentation seam. Every stage threads one Sink
// through its kernels and feeds it the architecturally meaningful
// value crossings: integer taps (Idx, Cnt, Pix, Word) model values
// held in general-purpose registers, F64 models floating-point
// registers, Ops records bulk operation counts for the performance
// model, and Enter/Swap/CurrentRegion attribute all of it to the
// current function-level Region.
//
// Tap methods return the value (possibly perturbed — that is how the
// fault machine injects); kernels must write the returned value back.
// Implementations may panic from a tap to model bounded execution (the
// fault machine's step budget raises its hang sentinel this way);
// kernels therefore must stay exception-safe via defers, not explicit
// cleanup calls.
type Sink interface {
	// Enter switches the current region and returns a restore
	// function; use as: defer s.Enter(probe.RMatch)().
	Enter(r Region) func()
	// Swap switches the current region and returns the previous one —
	// the allocation-free alternative to Enter for per-pixel paths.
	Swap(r Region) Region
	// CurrentRegion returns the active attribution region.
	CurrentRegion() Region

	// Idx taps an address-forming integer (array index, offset).
	Idx(v int) int
	// Cnt taps a loop bound or trip count.
	Cnt(v int) int
	// Pix taps an 8-bit pixel held in a 64-bit register.
	Pix(v uint8) uint8
	// Word taps a full-width integer datum (descriptor word).
	Word(v uint64) uint64
	// F64 taps a floating-point intermediate held in an FPR.
	F64(v float64) float64

	// Ops records n operations of class c in the current region.
	Ops(c OpClass, n uint64)
}

// Counters is the read side of op accounting shared by the fault
// machine and the Meter: anything that can report per-region operation
// counts can drive the energy and profilesim models, so Fig 5 and
// Fig 8 inputs come equally from campaign runs and live metered runs.
type Counters interface {
	// OpCount returns the accounted operations of class c within
	// region r.
	OpCount(r Region, c OpClass) uint64
}

// TotalOps sums c's operation count over all regions of any Counters.
func TotalOps(cs Counters, c OpClass) uint64 {
	var t uint64
	for r := Region(0); r < NumRegions; r++ {
		t += cs.OpCount(r, c)
	}
	return t
}

// Nop is the uninstrumented sink: every tap is an identity and all
// accounting is dropped. Stage packages special-case it — their public
// entry points instantiate generic kernels with the concrete Nop type,
// so the compiler inlines the methods below into nothing and clean
// runs pay no tap overhead at all (not even the nil checks the old
// nil-*Machine convention cost).
type Nop struct{}

// nopRestore is shared by every Enter call so Nop never allocates.
var nopRestore = func() {}

// Enter implements Sink as a no-op.
func (Nop) Enter(Region) func() { return nopRestore }

// Swap implements Sink as a no-op.
func (Nop) Swap(Region) Region { return RApp }

// CurrentRegion implements Sink; a Nop is always "in" RApp.
func (Nop) CurrentRegion() Region { return RApp }

// Idx implements Sink as the identity.
func (Nop) Idx(v int) int { return v }

// Cnt implements Sink as the identity.
func (Nop) Cnt(v int) int { return v }

// Pix implements Sink as the identity.
func (Nop) Pix(v uint8) uint8 { return v }

// Word implements Sink as the identity.
func (Nop) Word(v uint64) uint64 { return v }

// F64 implements Sink as the identity.
func (Nop) F64(v float64) float64 { return v }

// Ops implements Sink as a no-op.
func (Nop) Ops(OpClass, uint64) {}

var _ Sink = Nop{}

// IsNop reports whether s is the no-op sink (or nil, which stages
// treat the same way). Stage entry points use it to dispatch onto the
// devirtualized clean instantiation of their kernels.
func IsNop(s Sink) bool {
	if s == nil {
		return true
	}
	_, ok := s.(Nop)
	return ok
}

// OrNop normalizes a possibly-nil Sink. Stage entry points call it
// once so kernels never need nil checks; callers should still prefer
// passing Nop{} explicitly.
func OrNop(s Sink) Sink {
	if s == nil {
		return Nop{}
	}
	return s
}
