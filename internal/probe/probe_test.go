package probe

import (
	"testing"
	"time"
)

func TestNopIdentity(t *testing.T) {
	n := Nop{}
	if n.Idx(7) != 7 || n.Cnt(-3) != -3 || n.Pix(200) != 200 ||
		n.Word(1<<63) != 1<<63 || n.F64(2.5) != 2.5 {
		t.Error("Nop tap is not the identity")
	}
	restore := n.Enter(RMatch)
	if n.CurrentRegion() != RApp {
		t.Error("Nop left RApp")
	}
	restore()
	if n.Swap(RBlend) != RApp {
		t.Error("Nop Swap did not report RApp")
	}
}

func TestIsNopAndOrNop(t *testing.T) {
	if !IsNop(nil) || !IsNop(Nop{}) {
		t.Error("nil / Nop{} not recognized as no-op")
	}
	if IsNop(NewMeter()) {
		t.Error("Meter misclassified as no-op")
	}
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) is not Nop{}")
	}
	m := NewMeter()
	if OrNop(m) != Sink(m) {
		t.Error("OrNop rewrote a non-nil sink")
	}
}

func TestMeterAttribution(t *testing.T) {
	m := NewMeter()
	restore := m.Enter(RMatch)
	m.Idx(1)
	m.Cnt(2)
	m.F64(3.5)
	m.Ops(OpInt, 10)

	// Swap must move tap attribution without disturbing the Enter
	// stack.
	prev := m.Swap(RBlend)
	if prev != RMatch {
		t.Fatalf("Swap returned %v, want RMatch", prev)
	}
	m.Pix(9)
	m.Swap(prev)
	restore()

	if m.CurrentRegion() != RApp {
		t.Errorf("after restore region = %v, want RApp", m.CurrentRegion())
	}
	if got := m.IntTaps(RMatch); got != 2 {
		t.Errorf("RMatch int taps = %d, want 2", got)
	}
	if got := m.FPTaps(RMatch); got != 1 {
		t.Errorf("RMatch fp taps = %d, want 1", got)
	}
	if got := m.IntTaps(RBlend); got != 1 {
		t.Errorf("RBlend int taps = %d, want 1", got)
	}
	if got := m.OpCount(RMatch, OpInt); got != 10 {
		t.Errorf("RMatch int ops = %d, want 10", got)
	}
	if got := TotalOps(m, OpInt); got != 10 {
		t.Errorf("TotalOps = %d, want 10", got)
	}
}

func TestMeterTapsAreIdentity(t *testing.T) {
	m := NewMeter()
	if m.Idx(7) != 7 || m.Cnt(-3) != -3 || m.Pix(200) != 200 ||
		m.Word(1<<63) != 1<<63 || m.F64(2.5) != 2.5 {
		t.Error("Meter tap perturbed a value")
	}
}

func TestMeterNestedEnter(t *testing.T) {
	m := NewMeter()
	outer := m.Enter(RFASTDetect)
	inner := m.Enter(RORBDescribe)
	if m.CurrentRegion() != RORBDescribe {
		t.Fatal("inner Enter did not switch")
	}
	inner()
	if m.CurrentRegion() != RFASTDetect {
		t.Error("inner restore did not return to outer region")
	}
	outer()
	if m.CurrentRegion() != RApp {
		t.Error("outer restore did not return to RApp")
	}
}

func TestMeterWallAccumulates(t *testing.T) {
	m := NewMeter()
	restore := m.Enter(RRANSAC)
	time.Sleep(2 * time.Millisecond)
	restore()
	snap := m.Snapshot()
	if snap[RRANSAC].Wall <= 0 {
		t.Error("no wall time charged to entered region")
	}
	var total time.Duration
	for _, rs := range snap {
		total += rs.Wall
	}
	if total < snap[RRANSAC].Wall {
		t.Error("snapshot wall times inconsistent")
	}
}

func TestMeterEnterDoesNotAllocate(t *testing.T) {
	m := NewMeter()
	allocs := testing.AllocsPerRun(100, func() {
		restore := m.Enter(RMatch)
		m.Idx(1)
		restore()
	})
	if allocs > 0 {
		t.Errorf("Enter/restore allocates %.0f per call, want 0", allocs)
	}
}

func TestRegionAndOpClassStrings(t *testing.T) {
	if RAny.String() != "any" {
		t.Errorf("RAny = %q", RAny.String())
	}
	if RRemapBilinear.String() != "remapBilinear" {
		t.Errorf("RRemapBilinear = %q", RRemapBilinear.String())
	}
	if OpFloat.String() != "float" {
		t.Errorf("OpFloat = %q", OpFloat.String())
	}
	if Region(200).String() == "" || OpClass(99).String() == "" {
		t.Error("out-of-range String empty")
	}
}
