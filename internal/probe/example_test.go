package probe_test

import (
	"fmt"

	"vsresil/internal/probe"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// tapHistogram is a custom probe.Sink: it counts taps per region,
// demonstrating that a study can bring its own instrumentation without
// touching any stage package. Per the tap-ordering invariant it is
// strictly passive — every tap method returns its argument unchanged.
type tapHistogram struct {
	region probe.Region
	taps   [probe.NumRegions]uint64
	stack  []probe.Region
}

func (h *tapHistogram) Enter(r probe.Region) func() {
	h.stack = append(h.stack, h.region)
	if r < probe.NumRegions {
		h.region = r
	}
	return func() {
		h.region = h.stack[len(h.stack)-1]
		h.stack = h.stack[:len(h.stack)-1]
	}
}

func (h *tapHistogram) Swap(r probe.Region) probe.Region {
	prev := h.region
	if r < probe.NumRegions {
		h.region = r
	}
	return prev
}

func (h *tapHistogram) CurrentRegion() probe.Region { return h.region }

func (h *tapHistogram) Idx(v int) int         { h.taps[h.region]++; return v }
func (h *tapHistogram) Cnt(v int) int         { h.taps[h.region]++; return v }
func (h *tapHistogram) Pix(v uint8) uint8     { h.taps[h.region]++; return v }
func (h *tapHistogram) Word(v uint64) uint64  { h.taps[h.region]++; return v }
func (h *tapHistogram) F64(v float64) float64 { h.taps[h.region]++; return v }

func (h *tapHistogram) Ops(probe.OpClass, uint64) {}

// Example_customSink runs the summarization pipeline under a
// user-defined sink and reports which stages carry the most tappable
// state — the fault-site census behind the paper's per-function
// injection study.
func Example_customSink() {
	p := virat.TestScale()
	p.Frames = 6
	frames := virat.Input1(p).Frames()

	hist := &tapHistogram{}
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	if _, err := app.Run(frames, hist); err != nil {
		panic(err)
	}

	warp := hist.taps[probe.RWarpInvoker] + hist.taps[probe.RRemapBilinear]
	fmt.Println("hot warp functions expose fault sites:", warp > 0)
	fmt.Println("decode stage exposes fault sites:", hist.taps[probe.RDecode] > 0)
	// Output:
	// hot warp functions expose fault sites: true
	// decode stage exposes fault sites: true
}
