package probe

import "time"

// Meter is the observability sink: it records per-region tap counts,
// operation counts and wall-clock time for one pipeline run, without
// perturbing any value. A metered run therefore produces byte-identical
// output to a Nop (or plan-free fault machine) run, while yielding the
// same per-region operation profile the campaign machine collects — so
// the energy model (Fig 5) and execution profile (Fig 8) can be fed
// from live serving traffic, and vsd can export per-stage gauges.
//
// Wall-time is attributed at Enter granularity: the clock flushes into
// the currently entered region on every Enter and restore. Swap — used
// by per-pixel hot paths — switches only the tap/op attribution region
// and deliberately never reads the clock, so time spent in Swap-scoped
// regions (e.g. remapBilinear) is charged to the enclosing stage.
//
// Meter is not safe for concurrent use; give every run its own and
// merge snapshots afterwards.
type Meter struct {
	region     Region // tap/op attribution (Enter and Swap)
	timeRegion Region // wall-time attribution (Enter only)
	last       time.Time

	intTaps [NumRegions]uint64
	fpTaps  [NumRegions]uint64
	ops     [NumRegions][NumOpClasses]uint64
	wall    [NumRegions]time.Duration

	// regionStack holds the (tap, time) region pairs saved by Enter;
	// restoreFn pops it. One preallocated restore function keeps Enter
	// allocation-free even through non-inlinable generic kernels.
	regionStack []enteredRegions
	restoreFn   func()
}

// enteredRegions is one Enter's saved attribution state.
type enteredRegions struct {
	region, timeRegion Region
}

var _ Sink = (*Meter)(nil)
var _ Counters = (*Meter)(nil)

// NewMeter returns a Meter with its clock running, attributing to RApp
// until the first Enter.
func NewMeter() *Meter {
	mt := &Meter{
		region: RApp, timeRegion: RApp, last: time.Now(),
		regionStack: make([]enteredRegions, 0, 8),
	}
	mt.restoreFn = mt.restoreRegion
	return mt
}

// restoreRegion pops the state saved by the matching Enter. Enter and
// restore pair LIFO (callers defer the restore), so the shared pop is
// equivalent to per-call capture.
func (mt *Meter) restoreRegion() {
	n := len(mt.regionStack)
	if n == 0 {
		return
	}
	saved := mt.regionStack[n-1]
	mt.regionStack = mt.regionStack[:n-1]
	mt.flush()
	mt.region, mt.timeRegion = saved.region, saved.timeRegion
}

// flush charges the elapsed wall time to the current time region.
func (mt *Meter) flush() {
	now := time.Now()
	mt.wall[mt.timeRegion] += now.Sub(mt.last)
	mt.last = now
}

// Enter implements Sink, switching both tap and wall-time attribution.
func (mt *Meter) Enter(r Region) func() {
	if r >= NumRegions {
		return nopRestore
	}
	mt.flush()
	mt.regionStack = append(mt.regionStack, enteredRegions{mt.region, mt.timeRegion})
	mt.region, mt.timeRegion = r, r
	return mt.restoreFn
}

// Swap implements Sink, switching tap/op attribution only (no clock
// read — it is called per pixel).
func (mt *Meter) Swap(r Region) Region {
	prev := mt.region
	if r < NumRegions {
		mt.region = r
	}
	return prev
}

// CurrentRegion implements Sink.
func (mt *Meter) CurrentRegion() Region { return mt.region }

// Idx implements Sink, counting one integer tap.
func (mt *Meter) Idx(v int) int {
	mt.intTaps[mt.region]++
	return v
}

// Cnt implements Sink, counting one integer tap.
func (mt *Meter) Cnt(v int) int {
	mt.intTaps[mt.region]++
	return v
}

// Pix implements Sink, counting one integer tap.
func (mt *Meter) Pix(v uint8) uint8 {
	mt.intTaps[mt.region]++
	return v
}

// Word implements Sink, counting one integer tap.
func (mt *Meter) Word(v uint64) uint64 {
	mt.intTaps[mt.region]++
	return v
}

// F64 implements Sink, counting one floating-point tap.
func (mt *Meter) F64(v float64) float64 {
	mt.fpTaps[mt.region]++
	return v
}

// Ops implements Sink.
func (mt *Meter) Ops(c OpClass, n uint64) {
	if c < NumOpClasses {
		mt.ops[mt.region][c] += n
	}
}

// OpCount implements Counters.
func (mt *Meter) OpCount(r Region, c OpClass) uint64 {
	if r >= NumRegions || c >= NumOpClasses {
		return 0
	}
	return mt.ops[r][c]
}

// IntTaps returns the integer (GPR-class) taps recorded in region r.
func (mt *Meter) IntTaps(r Region) uint64 {
	if r >= NumRegions {
		return 0
	}
	return mt.intTaps[r]
}

// FPTaps returns the floating-point taps recorded in region r.
func (mt *Meter) FPTaps(r Region) uint64 {
	if r >= NumRegions {
		return 0
	}
	return mt.fpTaps[r]
}

// Wall returns the wall time charged to region r so far. It does not
// flush the running clock; use Snapshot for a consistent view.
func (mt *Meter) Wall(r Region) time.Duration {
	if r >= NumRegions {
		return 0
	}
	return mt.wall[r]
}

// RegionStats is one region's row of a Meter snapshot.
type RegionStats struct {
	Region  Region
	IntTaps uint64
	FPTaps  uint64
	Ops     [NumOpClasses]uint64
	Wall    time.Duration
}

// Snapshot flushes the running clock and returns one row per region,
// in region order. Rows with no activity are included so consumers can
// index by Region.
func (mt *Meter) Snapshot() []RegionStats {
	mt.flush()
	out := make([]RegionStats, NumRegions)
	for r := Region(0); r < NumRegions; r++ {
		out[r] = RegionStats{
			Region:  r,
			IntTaps: mt.intTaps[r],
			FPTaps:  mt.fpTaps[r],
			Ops:     mt.ops[r],
			Wall:    mt.wall[r],
		}
	}
	return out
}
