// Package features implements the key-point pipeline of the VS
// algorithm (§III-A): FAST corner detection (Rosten & Drummond) and
// ORB descriptors (Rublee et al.: intensity-centroid orientation plus
// rotation-steered BRIEF), the exact detector/descriptor pair the
// paper's OpenCV pipeline uses.
//
// All pixel and index traffic flows through fault-machine taps so the
// AFI reproduction can corrupt the detector the same way a register
// bit flip would.
package features

import (
	"sort"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
)

// KeyPoint is a detected corner with its FAST score and ORB
// orientation.
type KeyPoint struct {
	X, Y  int
	Score int     // FAST corner score (sum of absolute threshold excess)
	Angle float64 // intensity-centroid orientation, radians
}

// Pt returns the key point location as a float pair for geometry code.
func (k KeyPoint) Pt() (float64, float64) { return float64(k.X), float64(k.Y) }

// circleOffsets16 is the Bresenham circle of radius 3 used by FAST-9,
// in clockwise order starting from (0,-3).
var circleOffsets16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// FASTConfig parameterizes the detector.
type FASTConfig struct {
	// Threshold is the intensity difference needed for a circle pixel
	// to count as brighter/darker than the center (OpenCV default 20).
	Threshold int
	// Arc is the contiguous arc length required (9 for FAST-9).
	Arc int
	// NonMaxSuppress enables 3x3 non-maximum suppression on scores.
	NonMaxSuppress bool
	// MaxFeatures caps the number of returned key points, keeping the
	// strongest (0 = unlimited).
	MaxFeatures int
	// Border excludes a margin from detection so descriptor patches
	// stay inside the image.
	Border int
}

// DefaultFASTConfig mirrors the pipeline defaults used throughout the
// reproduction.
func DefaultFASTConfig() FASTConfig {
	return FASTConfig{
		Threshold:      15,
		Arc:            9,
		NonMaxSuppress: true,
		MaxFeatures:    500,
		Border:         16,
	}
}

// DetectFAST finds FAST corners in g. The machine m may be nil for
// uninstrumented runs.
func DetectFAST(g *imgproc.Gray, cfg FASTConfig, m *fault.Machine) []KeyPoint {
	defer m.Enter(fault.RFASTDetect)()
	if cfg.Threshold <= 0 {
		cfg.Threshold = 20
	}
	if cfg.Arc <= 0 || cfg.Arc > 16 {
		cfg.Arc = 9
	}
	border := cfg.Border
	if border < 3 {
		border = 3
	}
	w := m.Cnt(g.W)
	h := m.Cnt(g.H)
	if w != g.W || h != g.H {
		// A corrupted dimension register: accesses below will use the
		// corrupted bound and fault naturally, as on real hardware.
	}
	if w-border <= border || h-border <= border {
		return nil
	}

	// scores is indexed by the uncorrupted geometry; a corrupted index
	// from a tap panics inside At(), which the campaign classifies as
	// a crash — the segmentation-fault analogue.
	var scores *imgproc.Gray
	if cfg.NonMaxSuppress {
		scores = imgproc.NewGray(g.W, g.H)
	}

	var raw []KeyPoint
	for y := border; y < h-border; y++ {
		m.Ops(fault.OpBranch, uint64(w-2*border))
		for x := border; x < w-border; x++ {
			center := int(m.Pix(g.At(m.Idx(x), m.Idx(y))))
			lo := center - cfg.Threshold
			hi := center + cfg.Threshold

			// Fast rejection: for arc >= 9 at least one of each
			// opposing cardinal pair must be outside the band.
			p0 := int(g.At(x, y-3))
			p8 := int(g.At(x, y+3))
			if cfg.Arc >= 9 && !(p0 > hi || p0 < lo || p8 > hi || p8 < lo) {
				p4 := int(g.At(x+3, y))
				p12 := int(g.At(x-3, y))
				if !(p4 > hi || p4 < lo || p12 > hi || p12 < lo) {
					continue
				}
			}

			score := fastScore(g, x, y, lo, hi, cfg.Arc, m)
			if score <= 0 {
				continue
			}
			m.Ops(fault.OpLoad, 16)
			if scores != nil {
				s := score
				if s > 255 {
					s = 255
				}
				scores.Set(x, y, uint8(s))
			}
			raw = append(raw, KeyPoint{X: x, Y: y, Score: score})
		}
	}

	kps := raw
	if cfg.NonMaxSuppress {
		kps = kps[:0]
		for _, kp := range raw {
			if isLocalMax(scores, kp.X, kp.Y) {
				kps = append(kps, kp)
			}
		}
	}

	if cfg.MaxFeatures > 0 && len(kps) > cfg.MaxFeatures {
		sort.Slice(kps, func(i, j int) bool {
			if kps[i].Score != kps[j].Score {
				return kps[i].Score > kps[j].Score
			}
			if kps[i].Y != kps[j].Y {
				return kps[i].Y < kps[j].Y
			}
			return kps[i].X < kps[j].X
		})
		kps = kps[:cfg.MaxFeatures]
	}
	// Deterministic order for downstream stages.
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	return kps
}

// fastScore checks the contiguous-arc criterion at (x, y) and returns
// a corner score (0 = not a corner). The score is the larger of the
// bright-arc and dark-arc total threshold excess, the same measure
// OpenCV uses for non-max suppression.
func fastScore(g *imgproc.Gray, x, y, lo, hi, arc int, m *fault.Machine) int {
	var bright, dark [16]bool
	var diffs [16]int
	for i, off := range circleOffsets16 {
		v := int(g.At(x+off[0], y+off[1]))
		diffs[i] = v
		bright[i] = v > hi
		dark[i] = v < lo
	}
	center := (lo + hi) / 2
	th := (hi - lo) / 2

	best := 0
	// Check both polarities by scanning the doubled circle for a run
	// of length >= arc.
	for polarity := 0; polarity < 2; polarity++ {
		flags := bright
		if polarity == 1 {
			flags = dark
		}
		run := 0
		sum := 0
		for i := 0; i < 32; i++ {
			idx := i & 15
			if flags[idx] {
				run++
				d := diffs[idx] - center
				if d < 0 {
					d = -d
				}
				sum += d - th
				if run >= arc && sum > best {
					best = sum
				}
			} else {
				run = 0
				sum = 0
			}
			if run >= 16 {
				break
			}
		}
	}
	if best > 0 {
		// Tap the score: it is an integer register value that decides
		// downstream control flow (key point selection).
		best = m.Cnt(best)
		if best < 0 {
			best = 0
		}
	}
	return best
}

// isLocalMax reports whether (x, y) has the strictly greatest score in
// its 3x3 neighborhood (ties broken toward the earlier raster pixel).
func isLocalMax(scores *imgproc.Gray, x, y int) bool {
	s := scores.At(x, y)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := scores.AtClamped(x+dx, y+dy)
			if n > s {
				return false
			}
			if n == s && (dy < 0 || (dy == 0 && dx < 0)) {
				return false
			}
		}
	}
	return true
}
