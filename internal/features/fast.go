// Package features implements the key-point pipeline of the VS
// algorithm (§III-A): FAST corner detection (Rosten & Drummond) and
// ORB descriptors (Rublee et al.: intensity-centroid orientation plus
// rotation-steered BRIEF), the exact detector/descriptor pair the
// paper's OpenCV pipeline uses.
//
// All pixel and index traffic flows through probe.Sink taps so the
// AFI reproduction can corrupt the detector the same way a register
// bit flip would, while clean runs instantiate the kernels with the
// no-op sink and pay nothing.
package features

import (
	"sort"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
)

// KeyPoint is a detected corner with its FAST score and ORB
// orientation.
type KeyPoint struct {
	X, Y  int
	Score int     // FAST corner score (sum of absolute threshold excess)
	Angle float64 // intensity-centroid orientation, radians
}

// Pt returns the key point location as a float pair for geometry code.
func (k KeyPoint) Pt() (float64, float64) { return float64(k.X), float64(k.Y) }

// circleOffsets16 is the Bresenham circle of radius 3 used by FAST-9,
// in clockwise order starting from (0,-3).
var circleOffsets16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// FASTConfig parameterizes the detector.
type FASTConfig struct {
	// Threshold is the intensity difference needed for a circle pixel
	// to count as brighter/darker than the center (OpenCV default 20).
	Threshold int
	// Arc is the contiguous arc length required (9 for FAST-9).
	Arc int
	// NonMaxSuppress enables 3x3 non-maximum suppression on scores.
	NonMaxSuppress bool
	// MaxFeatures caps the number of returned key points, keeping the
	// strongest (0 = unlimited).
	MaxFeatures int
	// Border excludes a margin from detection so descriptor patches
	// stay inside the image.
	Border int
}

// DefaultFASTConfig mirrors the pipeline defaults used throughout the
// reproduction.
func DefaultFASTConfig() FASTConfig {
	return FASTConfig{
		Threshold:      15,
		Arc:            9,
		NonMaxSuppress: true,
		MaxFeatures:    500,
		Border:         16,
	}
}

// DetectFAST finds FAST corners in g. s is any probe.Sink; pass
// probe.Nop{} for an uninstrumented run (nil is normalized).
func DetectFAST(g *imgproc.Gray, cfg FASTConfig, s probe.Sink) []KeyPoint {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return detectFAST(g, cfg, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return detectFAST(g, cfg, m)
	}
	return detectFAST(g, cfg, s)
}

func detectFAST[S probe.Sink](g *imgproc.Gray, cfg FASTConfig, m S) []KeyPoint {
	defer m.Enter(probe.RFASTDetect)()
	if cfg.Threshold <= 0 {
		cfg.Threshold = 20
	}
	if cfg.Arc <= 0 || cfg.Arc > 16 {
		cfg.Arc = 9
	}
	border := cfg.Border
	if border < 3 {
		border = 3
	}
	w := m.Cnt(g.W)
	h := m.Cnt(g.H)
	if w != g.W || h != g.H {
		// A corrupted dimension register: accesses below will use the
		// corrupted bound and fault naturally, as on real hardware.
	}
	if w-border <= border || h-border <= border {
		return nil
	}

	// scores is indexed by the uncorrupted geometry; a corrupted index
	// from a tap panics inside At(), which the campaign classifies as
	// a crash — the segmentation-fault analogue.
	var scores *imgproc.Gray
	if cfg.NonMaxSuppress {
		scores = getScores(g.W, g.H)
		defer putScores(scores)
	}

	// The direct-index scan is valid only while every coordinate that
	// reaches pixel memory is provably inside the real image: the
	// tapped dimensions must match reality (checked once here) and the
	// tapped center coordinates must match the loop variables (checked
	// per pixel below). Any corrupted value falls back to the
	// reference path, whose At() calls reproduce the original
	// bounds-check / crash behavior exactly.
	fast := fastpath.Enabled() && w == g.W && h == g.H
	var circleDeltas [16]int
	if fast {
		for i, off := range circleOffsets16 {
			circleDeltas[i] = off[1]*g.W + off[0]
		}
	}

	raw := getKeyPoints()
	defer func() { putKeyPoints(raw) }()
	for y := border; y < h-border; y++ {
		m.Ops(probe.OpBranch, uint64(w-2*border))
		rowBase := y * g.W
		for x := border; x < w-border; x++ {
			xt := m.Idx(x)
			yt := m.Idx(y)
			direct := fast && xt == x && yt == y
			var center int
			if direct {
				center = int(m.Pix(g.Pix[rowBase+x]))
			} else {
				center = int(m.Pix(g.At(xt, yt)))
			}
			lo := center - cfg.Threshold
			hi := center + cfg.Threshold

			// Fast rejection: for arc >= 9 at least one of each
			// opposing cardinal pair must be outside the band.
			var p0, p8 int
			if direct {
				p0 = int(g.Pix[rowBase-3*g.W+x])
				p8 = int(g.Pix[rowBase+3*g.W+x])
			} else {
				p0 = int(g.At(x, y-3))
				p8 = int(g.At(x, y+3))
			}
			if cfg.Arc >= 9 && !(p0 > hi || p0 < lo || p8 > hi || p8 < lo) {
				var p4, p12 int
				if direct {
					p4 = int(g.Pix[rowBase+x+3])
					p12 = int(g.Pix[rowBase+x-3])
				} else {
					p4 = int(g.At(x+3, y))
					p12 = int(g.At(x-3, y))
				}
				if !(p4 > hi || p4 < lo || p12 > hi || p12 < lo) {
					continue
				}
			}

			var score int
			if direct {
				score = fastScoreDirect(g, rowBase+x, &circleDeltas, lo, hi, cfg.Arc, m)
			} else {
				score = fastScore(g, x, y, lo, hi, cfg.Arc, m)
			}
			if score <= 0 {
				continue
			}
			m.Ops(probe.OpLoad, 16)
			if scores != nil {
				s := score
				if s > 255 {
					s = 255
				}
				scores.Set(x, y, uint8(s))
			}
			raw = append(raw, KeyPoint{X: x, Y: y, Score: score})
		}
	}

	kps := raw
	if cfg.NonMaxSuppress {
		kps = kps[:0]
		for _, kp := range raw {
			if isLocalMax(scores, kp.X, kp.Y) {
				kps = append(kps, kp)
			}
		}
	}

	if cfg.MaxFeatures > 0 && len(kps) > cfg.MaxFeatures {
		sort.Slice(kps, func(i, j int) bool {
			if kps[i].Score != kps[j].Score {
				return kps[i].Score > kps[j].Score
			}
			if kps[i].Y != kps[j].Y {
				return kps[i].Y < kps[j].Y
			}
			return kps[i].X < kps[j].X
		})
		kps = kps[:cfg.MaxFeatures]
	}
	// Deterministic order for downstream stages.
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	// kps aliases the pooled accumulator; hand the caller an exact-size
	// copy so the (much larger) candidate storage can be recycled.
	if len(kps) == 0 {
		return nil
	}
	out := make([]KeyPoint, len(kps))
	copy(out, kps)
	return out
}

// fastScore checks the contiguous-arc criterion at (x, y) and returns
// a corner score (0 = not a corner). The score is the larger of the
// bright-arc and dark-arc total threshold excess, the same measure
// OpenCV uses for non-max suppression.
func fastScore[S probe.Sink](g *imgproc.Gray, x, y, lo, hi, arc int, m S) int {
	var bright, dark [16]bool
	var diffs [16]int
	var brightMask, darkMask uint32
	for i, off := range circleOffsets16 {
		v := int(g.At(x+off[0], y+off[1]))
		diffs[i] = v
		if v > hi {
			bright[i] = true
			brightMask |= 1 << uint(i)
		}
		if v < lo {
			dark[i] = true
			darkMask |= 1 << uint(i)
		}
	}
	return arcScore(&diffs, &bright, &dark, brightMask, darkMask, lo, hi, arc, m)
}

// fastScoreDirect is fastScore reading the circle through precomputed
// linear offsets from the center's raw index — valid only when the
// caller has proven the center (and so the whole radius-3 circle,
// border >= 3) lies inside the image, in which case every read returns
// exactly what At would.
func fastScoreDirect[S probe.Sink](g *imgproc.Gray, base int, deltas *[16]int, lo, hi, arc int, m S) int {
	var bright, dark [16]bool
	var diffs [16]int
	var brightMask, darkMask uint32
	for i, d := range deltas {
		v := int(g.Pix[base+d])
		diffs[i] = v
		if v > hi {
			bright[i] = true
			brightMask |= 1 << uint(i)
		}
		if v < lo {
			dark[i] = true
			darkMask |= 1 << uint(i)
		}
	}
	return arcScore(&diffs, &bright, &dark, brightMask, darkMask, lo, hi, arc, m)
}

// hasArcRun reports whether the 16-bit circle mask contains a run of
// at least arc consecutive set bits, counting wrap-around (the doubled
// 32-bit mask makes wrapping runs contiguous). It is the pure
// predicate behind arcScore's run counter: the scan sets a positive
// score iff such a run exists.
func hasArcRun(mask uint32, arc int) bool {
	m := mask | mask<<16
	for i := 1; i < arc && m != 0; i++ {
		m &= m >> 1
	}
	return m != 0
}

// arcScore runs the doubled-circle contiguous-arc scan shared by both
// read paths.
func arcScore[S probe.Sink](diffs *[16]int, bright, dark *[16]bool, brightMask, darkMask uint32, lo, hi, arc int, m S) int {
	center := (lo + hi) / 2
	th := (hi - lo) / 2

	best := 0
	// Check both polarities by scanning the doubled circle for a run
	// of length >= arc. A polarity whose mask provably holds no such
	// run is skipped: the scan would leave best untouched (every
	// flagged pixel contributes sum only once run >= arc), so the
	// result — and the single score tap below — are unchanged.
	for polarity := 0; polarity < 2; polarity++ {
		flags := bright
		mask := brightMask
		if polarity == 1 {
			flags = dark
			mask = darkMask
		}
		if !hasArcRun(mask, arc) {
			continue
		}
		run := 0
		sum := 0
		for i := 0; i < 32; i++ {
			idx := i & 15
			if flags[idx] {
				run++
				d := diffs[idx] - center
				if d < 0 {
					d = -d
				}
				sum += d - th
				if run >= arc && sum > best {
					best = sum
				}
			} else {
				run = 0
				sum = 0
			}
			if run >= 16 {
				break
			}
		}
	}
	if best > 0 {
		// Tap the score: it is an integer register value that decides
		// downstream control flow (key point selection).
		best = m.Cnt(best)
		if best < 0 {
			best = 0
		}
	}
	return best
}

// isLocalMax reports whether (x, y) has the strictly greatest score in
// its 3x3 neighborhood (ties broken toward the earlier raster pixel).
func isLocalMax(scores *imgproc.Gray, x, y int) bool {
	s := scores.At(x, y)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := scores.AtClamped(x+dx, y+dy)
			if n > s {
				return false
			}
			if n == s && (dy < 0 || (dy == 0 && dx < 0)) {
				return false
			}
		}
	}
	return true
}
