package features

import (
	"math"
	"testing"
	"testing/quick"

	"vsresil/internal/fault"
	vssim "vsresil/internal/imgproc"
)

// cornerGrid returns a dark image with a grid of isolated bright
// squares. Square corners are L-junctions, which FAST-9 detects (an
// ideal checkerboard X-corner is a saddle point with a maximum
// contiguous arc of 8 and is correctly rejected by FAST-9).
func cornerGrid(w, h, cell int) *vssim.Gray {
	g := vssim.NewGray(w, h)
	g.Fill(30)
	margin := cell / 4
	if margin < 2 {
		margin = 2
	}
	for by := 0; by < h/cell; by++ {
		for bx := 0; bx < w/cell; bx++ {
			for y := by*cell + margin; y < (by+1)*cell-margin && y < h; y++ {
				for x := bx*cell + margin; x < (bx+1)*cell-margin && x < w; x++ {
					g.Set(x, y, 220)
				}
			}
		}
	}
	return g
}

func TestDetectFASTFlatImage(t *testing.T) {
	g := vssim.NewGray(64, 64)
	g.Fill(128)
	kps := DetectFAST(g, DefaultFASTConfig(), nil)
	if len(kps) != 0 {
		t.Errorf("flat image produced %d corners", len(kps))
	}
}

func TestDetectFASTFindsCheckerboardCorners(t *testing.T) {
	g := cornerGrid(96, 96, 16)
	cfg := DefaultFASTConfig()
	cfg.Border = 8
	kps := DetectFAST(g, cfg, nil)
	if len(kps) == 0 {
		t.Fatal("no corners on block grid")
	}
	// Every detection must sit near a block corner: with cell=16 and
	// margin=4 the squares span [4,12) in each cell, so corners are at
	// offsets ~4 and ~11.
	for _, kp := range kps {
		dx := kp.X % 16
		dy := kp.Y % 16
		nearX := (dx >= 1 && dx <= 7) || (dx >= 8 && dx <= 14)
		nearY := (dy >= 1 && dy <= 7) || (dy >= 8 && dy <= 14)
		if !nearX || !nearY {
			t.Errorf("corner at (%d,%d) not near a block corner", kp.X, kp.Y)
		}
	}
}

func TestDetectFASTRespectsBorder(t *testing.T) {
	g := cornerGrid(64, 64, 8)
	cfg := DefaultFASTConfig()
	cfg.Border = 12
	for _, kp := range DetectFAST(g, cfg, nil) {
		if kp.X < 12 || kp.Y < 12 || kp.X >= 52 || kp.Y >= 52 {
			t.Errorf("corner (%d,%d) inside border margin", kp.X, kp.Y)
		}
	}
}

func TestDetectFASTMaxFeatures(t *testing.T) {
	g := cornerGrid(128, 128, 8)
	cfg := DefaultFASTConfig()
	cfg.Border = 8
	cfg.MaxFeatures = 10
	kps := DetectFAST(g, cfg, nil)
	if len(kps) > 10 {
		t.Errorf("MaxFeatures=10 returned %d", len(kps))
	}
}

func TestDetectFASTDeterministic(t *testing.T) {
	g := cornerGrid(96, 96, 12)
	cfg := DefaultFASTConfig()
	a := DetectFAST(g, cfg, nil)
	b := DetectFAST(g, cfg, fault.New())
	if len(a) != len(b) {
		t.Fatalf("instrumented run found %d corners, bare run %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corner %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectFASTTinyImage(t *testing.T) {
	g := vssim.NewGray(8, 8)
	if kps := DetectFAST(g, DefaultFASTConfig(), nil); len(kps) != 0 {
		t.Error("tiny image should produce no corners")
	}
}

func TestDetectFASTCountsTaps(t *testing.T) {
	g := cornerGrid(64, 64, 8)
	m := fault.New()
	cfg := DefaultFASTConfig()
	cfg.Border = 8
	DetectFAST(g, cfg, m)
	if m.RegionTaps(fault.GPR, fault.RFASTDetect) == 0 {
		t.Error("detection executed no taps in its region")
	}
}

func TestNonMaxSuppressionReduces(t *testing.T) {
	g := cornerGrid(96, 96, 12)
	cfg := DefaultFASTConfig()
	cfg.Border = 8
	cfg.MaxFeatures = 0
	with := DetectFAST(g, cfg, nil)
	cfg.NonMaxSuppress = false
	without := DetectFAST(g, cfg, nil)
	if len(with) >= len(without) {
		t.Errorf("NMS did not reduce corners: %d vs %d", len(with), len(without))
	}
}

func TestHammingBasics(t *testing.T) {
	var a, b Descriptor
	if d := a.Hamming(b, nil); d != 0 {
		t.Errorf("identical descriptors: distance %d", d)
	}
	b[0] = 1
	if d := a.Hamming(b, nil); d != 1 {
		t.Errorf("one bit: distance %d", d)
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	if d := a.Hamming(b, nil); d != DescriptorBits {
		t.Errorf("all bits: distance %d", d)
	}
}

// Property: Hamming distance is a metric on descriptors (symmetry,
// identity, triangle inequality).
func TestPropertyHammingMetric(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3, c0, c1, c2, c3 uint64) bool {
		a := Descriptor{a0, a1, a2, a3}
		b := Descriptor{b0, b1, b2, b3}
		c := Descriptor{c0, c1, c2, c3}
		dab := a.Hamming(b, nil)
		dba := b.Hamming(a, nil)
		if dab != dba {
			return false
		}
		if a.Hamming(a, nil) != 0 {
			return false
		}
		dac := a.Hamming(c, nil)
		dcb := c.Hamming(b, nil)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOnesCount64(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {3, 2}, {^uint64(0), 64}, {0x8000000000000000, 1},
		{0x5555555555555555, 32},
	}
	for _, tc := range cases {
		if got := onesCount64(tc.x); got != tc.want {
			t.Errorf("onesCount64(%#x) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestNewPatternDeterministic(t *testing.T) {
	a := NewPattern(15, 7)
	b := NewPattern(15, 7)
	if a.pairs != b.pairs {
		t.Error("same seed produced different patterns")
	}
	c := NewPattern(15, 8)
	if a.pairs == c.pairs {
		t.Error("different seeds produced identical patterns")
	}
}

func TestNewPatternWithinRadius(t *testing.T) {
	p := NewPattern(8, 3)
	for _, pr := range p.pairs {
		for _, v := range pr {
			if int(v) < -8 || int(v) > 8 {
				t.Fatalf("pattern offset %d outside radius 8", v)
			}
		}
	}
}

func TestNewPatternClampsRadius(t *testing.T) {
	if p := NewPattern(0, 1); p.Radius < 2 {
		t.Error("radius not clamped up")
	}
	if p := NewPattern(1000, 1); p.Radius > 127 {
		t.Error("radius not clamped down")
	}
}

func TestOrientationGradient(t *testing.T) {
	// Horizontal ramp: centroid lies toward +x, angle ~ 0.
	g := vssim.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			g.Set(x, y, uint8(x*4))
		}
	}
	e := NewExtractor(ORBConfig{PatchRadius: 8})
	a := e.Orientation(g, 32, 32, nil)
	if math.Abs(a) > 0.1 {
		t.Errorf("horizontal ramp angle = %v, want ~0", a)
	}
	// Vertical ramp: angle ~ pi/2.
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			g.Set(x, y, uint8(y*4))
		}
	}
	a = e.Orientation(g, 32, 32, nil)
	if math.Abs(a-math.Pi/2) > 0.1 {
		t.Errorf("vertical ramp angle = %v, want ~pi/2", a)
	}
}

func TestDescribeDropsBorderPoints(t *testing.T) {
	g := cornerGrid(64, 64, 8)
	e := NewExtractor(ORBConfig{PatchRadius: 10})
	kps := []KeyPoint{{X: 2, Y: 2}, {X: 32, Y: 32}, {X: 62, Y: 62}}
	outKps, descs := e.Describe(g, kps, nil)
	if len(outKps) != 1 || len(descs) != 1 {
		t.Fatalf("Describe kept %d points, want 1", len(outKps))
	}
	if outKps[0].X != 32 {
		t.Errorf("kept wrong point: %+v", outKps[0])
	}
}

func TestDescribeDeterministic(t *testing.T) {
	g := cornerGrid(96, 96, 12)
	cfg := DefaultFASTConfig()
	cfg.Border = 16
	kps := DetectFAST(g, cfg, nil)
	e := NewExtractor(ORBConfig{PatchRadius: 12})
	_, d1 := e.Describe(g, kps, nil)
	_, d2 := e.Describe(g, kps, fault.New())
	if len(d1) != len(d2) {
		t.Fatalf("lengths differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("descriptor %d differs under instrumentation", i)
		}
	}
}

func TestDescriptorRotationInvariance(t *testing.T) {
	// A descriptor of a pattern and the same pattern rotated 90
	// degrees should be much closer than two random descriptors,
	// thanks to the orientation steering.
	size := 64
	src := vssim.NewGray(size, size)
	// Asymmetric blob pattern around the center.
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0
			if (x-40)*(x-40)+(y-32)*(y-32) < 64 {
				v = 200
			}
			if (x-28)*(x-28)+(y-24)*(y-24) < 25 {
				v = 120
			}
			src.Set(x, y, uint8(v))
		}
	}
	// Rotate the image 90 degrees clockwise about the center.
	rot := vssim.NewGray(size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			rot.Set(size-1-y, x, src.At(x, y))
		}
	}
	e := NewExtractor(ORBConfig{PatchRadius: 14})
	_, d1 := e.Describe(src, []KeyPoint{{X: 32, Y: 32}}, nil)
	_, d2 := e.Describe(rot, []KeyPoint{{X: 31, Y: 32}}, nil)
	if len(d1) != 1 || len(d2) != 1 {
		t.Fatal("descriptors missing")
	}
	dist := d1[0].Hamming(d2[0], nil)
	if dist > DescriptorBits/3 {
		t.Errorf("rotated descriptor distance %d too large (not rotation-steered?)", dist)
	}
}

func TestKeyPointPt(t *testing.T) {
	kp := KeyPoint{X: 3, Y: 4}
	x, y := kp.Pt()
	if x != 3 || y != 4 {
		t.Errorf("Pt = (%v,%v)", x, y)
	}
}

func TestRotatePoint(t *testing.T) {
	sin, cos := math.Sincos(math.Pi / 2)
	x, y := rotatePoint(1, 0, sin, cos)
	if x != 0 || y != 1 {
		t.Errorf("rotate (1,0) by 90deg = (%d,%d)", x, y)
	}
}

func BenchmarkDetectFAST(b *testing.B) {
	g := cornerGrid(320, 240, 16)
	cfg := DefaultFASTConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectFAST(g, cfg, nil)
	}
}

func BenchmarkDescribe(b *testing.B) {
	g := cornerGrid(320, 240, 16)
	cfg := DefaultFASTConfig()
	kps := DetectFAST(g, cfg, nil)
	e := NewExtractor(DefaultORBConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Describe(g, kps, nil)
	}
}

func BenchmarkHamming(b *testing.B) {
	d1 := Descriptor{0xdeadbeef, 0x12345678, 0xabcdef, 0x55aa55aa}
	d2 := Descriptor{0xfeedface, 0x87654321, 0xfedcba, 0xaa55aa55}
	for i := 0; i < b.N; i++ {
		d1.Hamming(d2, nil)
	}
}
