package features

import (
	"math"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/stats"
)

// DescriptorWords is the number of 64-bit words per ORB descriptor
// (256 bits, as in the original rBRIEF).
const DescriptorWords = 4

// DescriptorBits is the descriptor length in bits.
const DescriptorBits = DescriptorWords * 64

// Descriptor is a 256-bit binary feature descriptor.
type Descriptor [DescriptorWords]uint64

// Hamming returns the Hamming distance between two descriptors,
// accumulating through sink taps (the accumulator and the descriptor
// words are GPR state in the original binary). s is any probe.Sink;
// pass probe.Nop{} for an uninstrumented distance (nil is normalized).
func (d Descriptor) Hamming(o Descriptor, s probe.Sink) int {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return HammingDist(d, o, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return HammingDist(d, o, m)
	}
	return HammingDist(d, o, s)
}

// HammingDist is the generic kernel behind Descriptor.Hamming. The
// matcher calls it with its own concrete sink type so the per-pair
// inner loop never boxes the sink into an interface.
func HammingDist[S probe.Sink](d, o Descriptor, m S) int {
	dist := 0
	for i := 0; i < DescriptorWords; i++ {
		x := m.Word(d[i]) ^ o[i]
		dist += onesCount64(x)
	}
	return m.Cnt(dist)
}

// onesCount64 is a branch-free popcount (math/bits is stdlib, but an
// explicit implementation keeps the op accounting story simple and
// mirrors the scalar code the paper's binary runs).
func onesCount64(x uint64) int {
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Pattern is the BRIEF point-pair sampling pattern. ORB uses a fixed
// learned pattern; we generate a deterministic pseudo-random pattern
// (isotropic Gaussian around the patch center, as in the original
// BRIEF paper) from a fixed seed so every run of the reproduction uses
// identical descriptors.
type Pattern struct {
	Radius int
	pairs  [DescriptorBits][4]int8 // x1, y1, x2, y2
}

// NewPattern builds a sampling pattern for the given patch radius.
func NewPattern(radius int, seed uint64) *Pattern {
	if radius < 2 {
		radius = 2
	}
	if radius > 127 {
		radius = 127
	}
	p := &Pattern{Radius: radius}
	rng := stats.NewRNG(seed)
	sigma := float64(radius) / 2
	sample := func() int8 {
		for {
			v := rng.NormFloat64() * sigma
			if v > -float64(radius) && v < float64(radius) {
				return int8(math.Round(v))
			}
		}
	}
	for i := range p.pairs {
		p.pairs[i] = [4]int8{sample(), sample(), sample(), sample()}
	}
	return p
}

// ORBConfig parameterizes descriptor extraction.
type ORBConfig struct {
	// PatchRadius is the half-size of the square patch used for
	// orientation and sampling (ORB uses 15 → 31x31 patches).
	PatchRadius int
	// PatternSeed seeds the deterministic BRIEF pattern.
	PatternSeed uint64
	// AngleBins quantizes the steering rotation (ORB uses 30 bins of
	// 12 degrees).
	AngleBins int
}

// DefaultORBConfig mirrors the original ORB parameters.
func DefaultORBConfig() ORBConfig {
	return ORBConfig{PatchRadius: 15, PatternSeed: 0x08b, AngleBins: 30}
}

// Extractor computes oriented BRIEF descriptors with a shared pattern.
// All fields — including the precomputed fast-path tables below — are
// immutable after NewExtractor, so one Extractor is safe to share
// across concurrent campaign workers.
type Extractor struct {
	cfg     ORBConfig
	pattern *Pattern
	// binLo/rot/rotSin/rotCos cache the rotated sampling pattern for
	// every quantized steering bin Describe can produce: rot[bin-binLo]
	// holds the 256 pre-rotated point pairs computed from exactly the
	// Sincos values Describe would compute for that bin (recorded in
	// rotSin/rotCos so a fault-corrupted sin/cos can be detected and
	// sent down the live-rotation reference path).
	binLo  int
	rot    [][DescriptorBits][4]int16
	rotSin []float64
	rotCos []float64
	// rotMax[bi] is the largest |offset| in rot[bi]: a key point at
	// least that far from every border samples without clamping, so
	// raw indexing reads exactly what AtClamped would.
	rotMax []int
	// dxLim[dy+r] is the largest |dx| with dx^2+dy^2 <= r^2 — the
	// orientation loop's circle mask as per-row bounds.
	dxLim []int
}

// NewExtractor builds an extractor for the given configuration.
func NewExtractor(cfg ORBConfig) *Extractor {
	if cfg.PatchRadius <= 0 {
		cfg.PatchRadius = 15
	}
	if cfg.AngleBins <= 0 {
		cfg.AngleBins = 30
	}
	e := &Extractor{cfg: cfg, pattern: NewPattern(cfg.PatchRadius, cfg.PatternSeed)}

	// Steering bins: bin = Round(angle/binWidth) with angle in [-pi,
	// pi], so |bin| <= AngleBins/2 + 1 covers every reachable value
	// (the +1 absorbs the odd-AngleBins half-bin at the range ends).
	binWidth := 2 * math.Pi / float64(cfg.AngleBins)
	e.binLo = -(cfg.AngleBins/2 + 1)
	nbins := cfg.AngleBins + 3
	e.rot = make([][DescriptorBits][4]int16, nbins)
	e.rotSin = make([]float64, nbins)
	e.rotCos = make([]float64, nbins)
	e.rotMax = make([]int, nbins)
	for bi := 0; bi < nbins; bi++ {
		// Identical expression to Describe's quantization: a float bin
		// times binWidth (float64(int) of a small integer is exact).
		qa := float64(e.binLo+bi) * binWidth
		sin, cos := math.Sincos(qa)
		e.rotSin[bi], e.rotCos[bi] = sin, cos
		for b := range e.pattern.pairs {
			pr := e.pattern.pairs[b]
			x1, y1 := rotatePoint(int(pr[0]), int(pr[1]), sin, cos)
			x2, y2 := rotatePoint(int(pr[2]), int(pr[3]), sin, cos)
			e.rot[bi][b] = [4]int16{int16(x1), int16(y1), int16(x2), int16(y2)}
			for _, v := range [4]int{x1, y1, x2, y2} {
				if v < 0 {
					v = -v
				}
				if v > e.rotMax[bi] {
					e.rotMax[bi] = v
				}
			}
		}
	}

	r := cfg.PatchRadius
	e.dxLim = make([]int, 2*r+1)
	for dy := -r; dy <= r; dy++ {
		k := r*r - dy*dy
		lim := int(math.Sqrt(float64(k)))
		for lim*lim > k {
			lim--
		}
		for (lim+1)*(lim+1) <= k {
			lim++
		}
		e.dxLim[dy+r] = lim
	}
	return e
}

// Orientation computes the intensity-centroid angle of the patch
// around (x, y): atan2(m01, m10) over the circular patch, as in ORB.
// s is any probe.Sink; pass probe.Nop{} for an uninstrumented run
// (nil is normalized).
func (e *Extractor) Orientation(g *imgproc.Gray, x, y int, s probe.Sink) float64 {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return orientation(e, g, x, y, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return orientation(e, g, x, y, m)
	}
	return orientation(e, g, x, y, s)
}

func orientation[S probe.Sink](e *Extractor, g *imgproc.Gray, x, y int, m S) float64 {
	r := e.cfg.PatchRadius
	var m01, m10 float64
	if fastpath.Enabled() && e.dxLim != nil && x >= r && y >= r && x < g.W-r && y < g.H-r {
		// Patch fully inside the image: AtClamped never clamps, so raw
		// row indexing reads the same bytes, and the precomputed circle
		// half-widths visit exactly the dx the masked loop accepts, in
		// the same order — the moment sums are bit-identical.
		for dy := -r; dy <= r; dy++ {
			yy := y + dy
			m.Ops(probe.OpLoad, uint64(2*r+1))
			m.Ops(probe.OpFloat, uint64(2*(2*r+1)))
			lim := e.dxLim[dy+r]
			row := g.Pix[yy*g.W+x-lim : yy*g.W+x+lim+1]
			fdy := float64(dy)
			for dx := -lim; dx <= lim; dx++ {
				v := float64(row[dx+lim])
				m10 += float64(dx) * v
				m01 += fdy * v
			}
		}
	} else {
		r2 := r * r
		for dy := -r; dy <= r; dy++ {
			yy := y + dy
			m.Ops(probe.OpLoad, uint64(2*r+1))
			m.Ops(probe.OpFloat, uint64(2*(2*r+1)))
			for dx := -r; dx <= r; dx++ {
				if dx*dx+dy*dy > r2 {
					continue
				}
				v := float64(g.AtClamped(x+dx, yy))
				m10 += float64(dx) * v
				m01 += float64(dy) * v
			}
		}
	}
	// The moments are floating-point register values.
	m01 = m.F64(m01)
	m10 = m.F64(m10)
	a := math.Atan2(m01, m10)
	if math.IsNaN(a) {
		a = 0
	}
	return a
}

// Describe computes ORB descriptors for the key points, filling in
// their Angle fields. Key points too close to the border for the
// patch are dropped; the returned slices are parallel. s is any
// probe.Sink; pass probe.Nop{} for an uninstrumented run (nil is
// normalized).
func (e *Extractor) Describe(g *imgproc.Gray, kps []KeyPoint, s probe.Sink) ([]KeyPoint, []Descriptor) {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return describe(e, g, kps, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return describe(e, g, kps, m)
	}
	return describe(e, g, kps, s)
}

func describe[S probe.Sink](e *Extractor, g *imgproc.Gray, kps []KeyPoint, m S) ([]KeyPoint, []Descriptor) {
	defer m.Enter(probe.RORBDescribe)()
	r := e.cfg.PatchRadius
	binWidth := 2 * math.Pi / float64(e.cfg.AngleBins)

	outKps := make([]KeyPoint, 0, len(kps))
	outDescs := make([]Descriptor, 0, len(kps))
	n := m.Cnt(len(kps))
	for i := 0; i < n; i++ {
		kp := kps[m.Idx(i)]
		if kp.X < r || kp.Y < r || kp.X >= g.W-r || kp.Y >= g.H-r {
			continue
		}
		angle := orientation(e, g, kp.X, kp.Y, m)
		// Quantize the steering angle like ORB (12-degree bins) so the
		// rotated pattern can be reused across features.
		bin := math.Round(angle / binWidth)
		qa := bin * binWidth
		sin, cos := math.Sincos(qa)
		sin = m.F64(sin)
		cos = m.F64(cos)

		// The pre-rotated pattern for this bin applies only when the
		// tapped sin/cos still equal the values it was built from; a
		// corrupted (or out-of-range, e.g. NaN-angled) value rotates
		// live, exactly as the reference path always does.
		var rot *[DescriptorBits][4]int16
		margin := 0
		if fastpath.Enabled() {
			if bi := int(bin) - e.binLo; bi >= 0 && bi < len(e.rot) &&
				sin == e.rotSin[bi] && cos == e.rotCos[bi] {
				rot = &e.rot[bi]
				margin = e.rotMax[bi]
			}
		}

		var d Descriptor
		if rot != nil && kp.X >= margin && kp.Y >= margin &&
			kp.X < g.W-margin && kp.Y < g.H-margin {
			// Every sample stays inside the image, so AtClamped never
			// clamps and raw indexing reads the same bytes.
			base := kp.Y*g.W + kp.X
			for b := 0; b < DescriptorBits; b++ {
				rp := &rot[b]
				p1 := m.Pix(g.Pix[base+int(rp[1])*g.W+int(rp[0])])
				p2 := g.Pix[base+int(rp[3])*g.W+int(rp[2])]
				if p1 < p2 {
					d[b>>6] |= 1 << uint(b&63)
				}
			}
		} else if rot != nil {
			for b := 0; b < DescriptorBits; b++ {
				rp := &rot[b]
				p1 := m.Pix(g.AtClamped(kp.X+int(rp[0]), kp.Y+int(rp[1])))
				p2 := g.AtClamped(kp.X+int(rp[2]), kp.Y+int(rp[3]))
				if p1 < p2 {
					d[b>>6] |= 1 << uint(b&63)
				}
			}
		} else {
			for b := 0; b < DescriptorBits; b++ {
				pr := e.pattern.pairs[b]
				x1, y1 := rotatePoint(int(pr[0]), int(pr[1]), sin, cos)
				x2, y2 := rotatePoint(int(pr[2]), int(pr[3]), sin, cos)
				p1 := m.Pix(g.AtClamped(kp.X+x1, kp.Y+y1))
				p2 := g.AtClamped(kp.X+x2, kp.Y+y2)
				if p1 < p2 {
					d[b>>6] |= 1 << uint(b&63)
				}
			}
		}
		m.Ops(probe.OpLoad, DescriptorBits*2)
		m.Ops(probe.OpInt, DescriptorBits)

		kp.Angle = angle
		outKps = append(outKps, kp)
		outDescs = append(outDescs, d)
	}
	return outKps, outDescs
}

// rotatePoint rotates the integer offset (x, y) by the angle whose
// sine/cosine are given, rounding to the nearest pixel.
func rotatePoint(x, y int, sin, cos float64) (int, int) {
	fx := float64(x)
	fy := float64(y)
	return int(math.Round(cos*fx - sin*fy)), int(math.Round(sin*fx + cos*fy))
}
