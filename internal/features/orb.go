package features

import (
	"math"

	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/stats"
)

// DescriptorWords is the number of 64-bit words per ORB descriptor
// (256 bits, as in the original rBRIEF).
const DescriptorWords = 4

// DescriptorBits is the descriptor length in bits.
const DescriptorBits = DescriptorWords * 64

// Descriptor is a 256-bit binary feature descriptor.
type Descriptor [DescriptorWords]uint64

// Hamming returns the Hamming distance between two descriptors,
// accumulating through fault-machine taps (the accumulator and the
// descriptor words are GPR state in the original binary).
func (d Descriptor) Hamming(o Descriptor, m *fault.Machine) int {
	dist := 0
	for i := 0; i < DescriptorWords; i++ {
		x := m.Word(d[i]) ^ o[i]
		dist += onesCount64(x)
	}
	return m.Cnt(dist)
}

// onesCount64 is a branch-free popcount (math/bits is stdlib, but an
// explicit implementation keeps the op accounting story simple and
// mirrors the scalar code the paper's binary runs).
func onesCount64(x uint64) int {
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Pattern is the BRIEF point-pair sampling pattern. ORB uses a fixed
// learned pattern; we generate a deterministic pseudo-random pattern
// (isotropic Gaussian around the patch center, as in the original
// BRIEF paper) from a fixed seed so every run of the reproduction uses
// identical descriptors.
type Pattern struct {
	Radius int
	pairs  [DescriptorBits][4]int8 // x1, y1, x2, y2
}

// NewPattern builds a sampling pattern for the given patch radius.
func NewPattern(radius int, seed uint64) *Pattern {
	if radius < 2 {
		radius = 2
	}
	if radius > 127 {
		radius = 127
	}
	p := &Pattern{Radius: radius}
	rng := stats.NewRNG(seed)
	sigma := float64(radius) / 2
	sample := func() int8 {
		for {
			v := rng.NormFloat64() * sigma
			if v > -float64(radius) && v < float64(radius) {
				return int8(math.Round(v))
			}
		}
	}
	for i := range p.pairs {
		p.pairs[i] = [4]int8{sample(), sample(), sample(), sample()}
	}
	return p
}

// ORBConfig parameterizes descriptor extraction.
type ORBConfig struct {
	// PatchRadius is the half-size of the square patch used for
	// orientation and sampling (ORB uses 15 → 31x31 patches).
	PatchRadius int
	// PatternSeed seeds the deterministic BRIEF pattern.
	PatternSeed uint64
	// AngleBins quantizes the steering rotation (ORB uses 30 bins of
	// 12 degrees).
	AngleBins int
}

// DefaultORBConfig mirrors the original ORB parameters.
func DefaultORBConfig() ORBConfig {
	return ORBConfig{PatchRadius: 15, PatternSeed: 0x08b, AngleBins: 30}
}

// Extractor computes oriented BRIEF descriptors with a shared pattern.
type Extractor struct {
	cfg     ORBConfig
	pattern *Pattern
}

// NewExtractor builds an extractor for the given configuration.
func NewExtractor(cfg ORBConfig) *Extractor {
	if cfg.PatchRadius <= 0 {
		cfg.PatchRadius = 15
	}
	if cfg.AngleBins <= 0 {
		cfg.AngleBins = 30
	}
	return &Extractor{cfg: cfg, pattern: NewPattern(cfg.PatchRadius, cfg.PatternSeed)}
}

// Orientation computes the intensity-centroid angle of the patch
// around (x, y): atan2(m01, m10) over the circular patch, as in ORB.
func (e *Extractor) Orientation(g *imgproc.Gray, x, y int, m *fault.Machine) float64 {
	r := e.cfg.PatchRadius
	var m01, m10 float64
	r2 := r * r
	for dy := -r; dy <= r; dy++ {
		yy := y + dy
		m.Ops(fault.OpLoad, uint64(2*r+1))
		m.Ops(fault.OpFloat, uint64(2*(2*r+1)))
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy > r2 {
				continue
			}
			v := float64(g.AtClamped(x+dx, yy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	// The moments are floating-point register values.
	m01 = m.F64(m01)
	m10 = m.F64(m10)
	a := math.Atan2(m01, m10)
	if math.IsNaN(a) {
		a = 0
	}
	return a
}

// Describe computes ORB descriptors for the key points, filling in
// their Angle fields. Key points too close to the border for the
// patch are dropped; the returned slices are parallel.
func (e *Extractor) Describe(g *imgproc.Gray, kps []KeyPoint, m *fault.Machine) ([]KeyPoint, []Descriptor) {
	defer m.Enter(fault.RORBDescribe)()
	r := e.cfg.PatchRadius
	binWidth := 2 * math.Pi / float64(e.cfg.AngleBins)

	outKps := make([]KeyPoint, 0, len(kps))
	outDescs := make([]Descriptor, 0, len(kps))
	n := m.Cnt(len(kps))
	for i := 0; i < n; i++ {
		kp := kps[m.Idx(i)]
		if kp.X < r || kp.Y < r || kp.X >= g.W-r || kp.Y >= g.H-r {
			continue
		}
		angle := e.Orientation(g, kp.X, kp.Y, m)
		// Quantize the steering angle like ORB (12-degree bins) so the
		// rotated pattern can be reused across features.
		bin := math.Round(angle / binWidth)
		qa := bin * binWidth
		sin, cos := math.Sincos(qa)
		sin = m.F64(sin)
		cos = m.F64(cos)

		var d Descriptor
		for b := 0; b < DescriptorBits; b++ {
			pr := e.pattern.pairs[b]
			x1, y1 := rotatePoint(int(pr[0]), int(pr[1]), sin, cos)
			x2, y2 := rotatePoint(int(pr[2]), int(pr[3]), sin, cos)
			p1 := m.Pix(g.AtClamped(kp.X+x1, kp.Y+y1))
			p2 := g.AtClamped(kp.X+x2, kp.Y+y2)
			if p1 < p2 {
				d[b>>6] |= 1 << uint(b&63)
			}
		}
		m.Ops(fault.OpLoad, DescriptorBits*2)
		m.Ops(fault.OpInt, DescriptorBits)

		kp.Angle = angle
		outKps = append(outKps, kp)
		outDescs = append(outDescs, d)
	}
	return outKps, outDescs
}

// rotatePoint rotates the integer offset (x, y) by the angle whose
// sine/cosine are given, rounding to the nearest pixel.
func rotatePoint(x, y int, sin, cos float64) (int, int) {
	fx := float64(x)
	fy := float64(y)
	return int(math.Round(cos*fx - sin*fy)), int(math.Round(sin*fx + cos*fy))
}
