// Per-trial scratch pools for the detector. FAST re-allocates a
// score image and a raw candidate list for every frame of every
// campaign trial; recycling both removes the bulk of the detection
// stage's steady-state allocations. The pooled state is never visible
// to callers: the score buffer is re-zeroed on acquisition and the
// candidate list is copied into an exact-size slice before it is
// returned.
package features

import (
	"sync"

	"vsresil/internal/imgproc"
)

// maxPooledBytes caps pooled buffer sizes; a corrupted dimension can
// demand a huge frame once, and pooling it would pin that memory for
// the rest of the campaign.
const maxPooledBytes = 1 << 22

var (
	scorePool sync.Pool // *imgproc.Gray
	kpPool    sync.Pool // *[]KeyPoint
)

// getScores returns a zeroed w x h score image, reusing pooled pixel
// storage when possible. Indistinguishable from imgproc.NewGray(w, h).
func getScores(w, h int) *imgproc.Gray {
	n := w * h
	if v, _ := scorePool.Get().(*imgproc.Gray); v != nil && cap(v.Pix) >= n {
		v.W, v.H = w, h
		v.Pix = v.Pix[:n]
		for i := range v.Pix {
			v.Pix[i] = 0
		}
		return v
	}
	return imgproc.NewGray(w, h)
}

// putScores recycles a score image obtained from getScores.
func putScores(g *imgproc.Gray) {
	if g == nil || cap(g.Pix) == 0 || cap(g.Pix) > maxPooledBytes {
		return
	}
	scorePool.Put(g)
}

// getKeyPoints returns an empty key-point accumulator with pooled
// capacity.
func getKeyPoints() []KeyPoint {
	if v, _ := kpPool.Get().(*[]KeyPoint); v != nil {
		return (*v)[:0]
	}
	return nil
}

// putKeyPoints recycles a key-point accumulator. The caller must not
// retain any alias of the slice's backing array.
func putKeyPoints(s []KeyPoint) {
	const maxPooledKps = maxPooledBytes / 32 // ~sizeof(KeyPoint)
	if cap(s) == 0 || cap(s) > maxPooledKps {
		return
	}
	s = s[:0]
	kpPool.Put(&s)
}
