package core

import (
	"context"
	"testing"

	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

func tinyInput() *virat.Sequence {
	p := virat.TestScale()
	p.Frames = 8
	return virat.Input2(p)
}

func TestRunGoldenOnly(t *testing.T) {
	res, err := Run(context.Background(), StudyConfig{
		Input:     tinyInput(),
		Algorithm: vs.AlgVS,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Golden == nil || res.GoldenImage == nil {
		t.Fatal("missing golden output")
	}
	if res.Metrics.Instructions == 0 {
		t.Error("no metrics collected")
	}
	if res.Campaign != nil {
		t.Error("campaign ran with Trials == 0")
	}
	zero := res.Rates()
	for _, r := range zero {
		if r != 0 {
			t.Error("rates should be zero without a campaign")
		}
	}
}

func TestRunWithCampaign(t *testing.T) {
	res, err := Run(context.Background(), StudyConfig{
		Input:     tinyInput(),
		Algorithm: vs.AlgVS,
		Trials:    60,
		Class:     fault.GPR,
		Seed:      2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Campaign == nil {
		t.Fatal("campaign missing")
	}
	var sum float64
	for _, r := range res.Rates() {
		sum += r
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rates sum %v", sum)
	}
}

func TestRunWithSDCQuality(t *testing.T) {
	res, err := Run(context.Background(), StudyConfig{
		Input:             tinyInput(),
		Algorithm:         vs.AlgRFD,
		Trials:            150,
		Class:             fault.GPR,
		AnalyzeSDCQuality: true,
		Seed:              3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sdcs := res.Campaign.Counts[fault.OutcomeSDC]
	if len(res.EDsVsOwnGolden) != sdcs || len(res.EDsVsBaseline) != sdcs {
		t.Errorf("ED counts %d/%d, want %d each",
			len(res.EDsVsOwnGolden), len(res.EDsVsBaseline), sdcs)
	}
	if sdcs > 0 {
		frac := res.TolerableSDCFraction(100)
		if frac < 0 || frac > 1 {
			t.Errorf("tolerable fraction %v", frac)
		}
	}
}

func TestRunNilInput(t *testing.T) {
	if _, err := Run(context.Background(), StudyConfig{}); err == nil {
		t.Error("expected error for nil input")
	}
}

func TestTolerableFractionEmpty(t *testing.T) {
	r := &StudyResult{}
	if r.TolerableSDCFraction(10) != 0 {
		t.Error("empty study should report 0")
	}
	if r.ProtectionBudget(10) != 0 {
		t.Error("no campaign should need no budget")
	}
}

func TestProtectionBudgetBounds(t *testing.T) {
	res, err := Run(context.Background(), StudyConfig{
		Input:             tinyInput(),
		Algorithm:         vs.AlgVS,
		Trials:            200,
		Class:             fault.GPR,
		AnalyzeSDCQuality: true,
		Seed:              4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sdcRate := res.Campaign.Rate(fault.OutcomeSDC)
	for _, tol := range []int{0, 10, 100} {
		b := res.ProtectionBudget(tol)
		if b < 0 || b > sdcRate+1e-12 {
			t.Errorf("budget(%d) = %v outside [0, %v]", tol, b, sdcRate)
		}
	}
	// Budget must be non-increasing in the tolerance.
	if res.ProtectionBudget(0) < res.ProtectionBudget(100) {
		t.Error("budget not monotone in tolerance")
	}
}
