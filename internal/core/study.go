// Package core implements the paper's primary contribution: the
// joint study of software approximation and application resiliency.
// A Study runs one VS variant on one input and produces everything the
// paper derives from that combination — the golden output and its
// performance/energy metrics, a fault-injection campaign with the
// Mask/Crash/SDC/Hang breakdown, and the SDC quality (Egregiousness
// Degree) analysis against both the variant's own golden output and
// the precise baseline's.
//
// The package is the high-level entry point a downstream user adopts;
// the root vsresil package re-exports its API.
package core

import (
	"context"
	"fmt"

	"vsresil/internal/campaign"
	"vsresil/internal/energy"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/quality"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// StudyConfig describes one (input, algorithm) resiliency study.
type StudyConfig struct {
	// Input is the video under study. Use virat.Input1/Input2 for the
	// paper's inputs or provide any synthetic sequence.
	Input *virat.Sequence
	// Algorithm selects the VS variant.
	Algorithm vs.Algorithm
	// Trials is the number of fault injections (paper: 1000 per
	// register class; 0 skips the campaign).
	Trials int
	// Class selects the register file to inject into.
	Class fault.Class
	// AnalyzeSDCQuality computes EDs for every SDC (requires Trials).
	AnalyzeSDCQuality bool
	// Seed drives all stochastic components.
	Seed uint64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
}

// StudyResult aggregates everything the study produced.
type StudyResult struct {
	Config StudyConfig
	// Golden is the fault-free stitching result.
	Golden *stitch.Result
	// GoldenImage is the primary panorama of the golden run.
	GoldenImage *imgproc.Gray
	// Metrics is the energy model's view of the golden run.
	Metrics energy.Metrics
	// Campaign holds the fault-injection outcome statistics (nil when
	// Trials == 0).
	Campaign *fault.Result
	// EDsVsOwnGolden classifies each SDC against this variant's own
	// golden output (the paper's Approx_golden comparison).
	EDsVsOwnGolden []quality.ED
	// EDsVsBaseline classifies each SDC against the precise VS golden
	// output (the paper's VS_golden comparison). Populated only when
	// AnalyzeSDCQuality is set; equal to EDsVsOwnGolden for AlgVS.
	EDsVsBaseline []quality.ED
}

// Run executes the study.
func Run(ctx context.Context, cfg StudyConfig) (*StudyResult, error) {
	if cfg.Input == nil {
		return nil, fmt.Errorf("core: nil input sequence")
	}
	frames := cfg.Input.Frames()
	appCfg := vs.DefaultConfig(cfg.Algorithm)
	appCfg.Seed = cfg.Seed
	app := vs.New(appCfg, len(frames))

	m := fault.New()
	golden, err := app.Run(frames, m)
	if err != nil {
		return nil, fmt.Errorf("core: golden run: %w", err)
	}
	res := &StudyResult{
		Config:      cfg,
		Golden:      golden,
		GoldenImage: golden.Primary().Image,
		Metrics:     energy.DefaultModel().Measure(m),
	}

	if cfg.Trials <= 0 {
		return res, nil
	}
	var runner campaign.Runner
	crun, err := runner.Run(ctx, campaign.Spec{
		Workload: campaign.NewStagedWorkload(cfg.Input.Name, "", app.RunEncoded(frames), app.Staged(frames)),
		Class:    cfg.Class,
		Region:   fault.RAny,
		Trials:   cfg.Trials,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
		SDC:      campaign.SDCPolicy{Keep: cfg.AnalyzeSDCQuality},
	})
	if err != nil {
		return nil, fmt.Errorf("core: campaign: %w", err)
	}
	res.Campaign = crun.Fault

	if !cfg.AnalyzeSDCQuality {
		return res, nil
	}
	ownPrim := res.Golden.Primary()
	baselineImage := res.GoldenImage
	baseOX, baseOY := ownPrim.Bounds.MinX, ownPrim.Bounds.MinY
	if cfg.Algorithm != vs.AlgVS {
		baseCfg := vs.DefaultConfig(vs.AlgVS)
		baseCfg.Seed = cfg.Seed
		baseApp := vs.New(baseCfg, len(frames))
		baseGolden, err := baseApp.Run(frames, probe.Nop{})
		if err != nil {
			return nil, fmt.Errorf("core: baseline golden run: %w", err)
		}
		basePrim := baseGolden.Primary()
		baselineImage = basePrim.Image
		baseOX, baseOY = basePrim.Bounds.MinX, basePrim.Bounds.MinY
	}
	qcfg := quality.DefaultConfig()
	for _, enc := range res.Campaign.SDCOutputs() {
		faulty, fox, foy, err := stitch.DecodePrimary(enc)
		if err != nil {
			faulty = nil // undecodable output: maximally corrupt
		}
		res.EDsVsOwnGolden = append(res.EDsVsOwnGolden,
			quality.ClassifyPlaced(res.GoldenImage, faulty, ownPrim.Bounds.MinX, ownPrim.Bounds.MinY, fox, foy, qcfg))
		res.EDsVsBaseline = append(res.EDsVsBaseline,
			quality.ClassifyPlaced(baselineImage, faulty, baseOX, baseOY, fox, foy, qcfg))
	}
	return res, nil
}

// Rates returns the campaign's outcome rates, or zeros when no
// campaign ran.
func (r *StudyResult) Rates() [fault.NumOutcomes]float64 {
	if r.Campaign == nil {
		return [fault.NumOutcomes]float64{}
	}
	return r.Campaign.Rates()
}

// TolerableSDCFraction returns the fraction of this study's SDCs with
// an ED at or below maxED (measured against the variant's own golden
// output) — the paper's "a large majority of the SDC causing
// error-sites need not be protected if an error of 10% is acceptable".
func (r *StudyResult) TolerableSDCFraction(maxED int) float64 {
	if len(r.EDsVsOwnGolden) == 0 {
		return 0
	}
	curve := quality.NewCurve(r.EDsVsOwnGolden, maxED)
	return curve.FractionAtOrBelow(maxED)
}

// ProtectionBudget quantifies §VI-D's protection-cost argument: the
// fraction of all error sites that still needs expensive protection
// (i.e. produces an SDC whose ED exceeds the tolerance), assuming
// crashes and hangs are covered by cheap symptom-based detectors as
// the paper argues. Requires a campaign with AnalyzeSDCQuality.
func (r *StudyResult) ProtectionBudget(maxTolerableED int) float64 {
	if r.Campaign == nil {
		return 0
	}
	sdcRate := r.Campaign.Rate(fault.OutcomeSDC)
	if len(r.EDsVsOwnGolden) == 0 {
		return sdcRate // no quality data: protect every SDC site
	}
	return sdcRate * (1 - r.TolerableSDCFraction(maxTolerableED))
}
